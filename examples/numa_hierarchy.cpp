// Hierarchical NUMA partitioning (Section 7).
//
// Models a machine with b1 sockets × b2 cores (transfer cost g1 across
// sockets, 1 within) and compares:
//   * the hierarchy-agnostic two-step method (Section 7.2),
//   * recursive splitting along the hierarchy (Section 7.1),
//   * direct k-way + optimal assignment + hierarchical refinement.
//
//   ./numa_hierarchy [b1] [b2] [g1]

#include <cstdlib>
#include <iostream>

#include "hyperpart/hier/hier_cost.hpp"
#include "hyperpart/hier/hier_partitioner.hpp"
#include "hyperpart/hier/two_step.hpp"
#include "hyperpart/io/generators.hpp"

int main(int argc, char** argv) {
  const hp::PartId b1 = argc > 1 ? static_cast<hp::PartId>(std::atoi(argv[1]))
                                 : 2;
  const hp::PartId b2 = argc > 2 ? static_cast<hp::PartId>(std::atoi(argv[2]))
                                 : 4;
  const double g1 = argc > 3 ? std::atof(argv[3]) : 8.0;
  const double epsilon = 0.05;

  const hp::HierTopology machine{{b1, b2}, {g1, 1.0}};
  std::cout << "machine: " << b1 << " sockets x " << b2
            << " cores, cross-socket cost g1 = " << g1 << "\n";

  const hp::Hypergraph workload = hp::spmv_hypergraph(300, 300, 4000, 21);
  std::cout << "workload: " << workload.summary() << "\n\n";

  hp::MultilevelConfig config;
  config.seed = 4;

  const auto two_step =
      hp::two_step_multilevel(workload, machine, epsilon, config);
  if (two_step) {
    std::cout << "two-step (hierarchy-agnostic):\n"
              << "  standard cut = " << two_step->standard_cost
              << ", hierarchical cost = " << two_step->hierarchical_cost
              << "\n";
  }

  const auto recursive =
      hp::hier_recursive_partition(workload, machine, epsilon, config);
  if (recursive) {
    std::cout << "recursive along the hierarchy:\n"
              << "  hierarchical cost = "
              << hp::hier_cost(workload, *recursive, machine) << "\n";
  }

  const auto direct =
      hp::hier_direct_partition(workload, machine, epsilon, config);
  if (direct) {
    std::cout << "direct k-way + assignment + hierarchical refinement:\n"
              << "  hierarchical cost = "
              << hp::hier_cost(workload, *direct, machine) << "\n";
  }
  return 0;
}
