// Precedence-constrained computations as hyperDAGs (Sections 3.2 and 5).
//
// Takes a layered computational DAG (a multi-stage pipeline), converts it
// into its hyperDAG, and compares three balance policies:
//   1. single global ε-balance — can be "balanced but serial" (Figure 4),
//   2. layer-wise balance (Definition 5.1),
//   3. schedule-based evaluation: μ_p of each resulting partition against
//      the DAG's optimal makespan μ (Definition 5.4 on small instances).
//
//   ./dag_pipeline [layers] [width]

#include <cstdlib>
#include <iostream>

#include "hyperpart/algo/fm_refiner.hpp"
#include "hyperpart/algo/greedy.hpp"
#include "hyperpart/core/metrics.hpp"
#include "hyperpart/dag/hyperdag.hpp"
#include "hyperpart/dag/layering.hpp"
#include "hyperpart/io/generators.hpp"
#include "hyperpart/reduction/fig_constructions.hpp"
#include "hyperpart/schedule/bsp.hpp"
#include "hyperpart/schedule/list_scheduler.hpp"

namespace {

void report(const char* label, const hp::Hypergraph& graph,
            const hp::Dag& dag, const hp::Partition& partition) {
  const hp::Weight comm =
      hp::cost(graph, partition, hp::CostMetric::kConnectivity);
  // μ_p upper bound by fixed list scheduling; μ lower bound trivially.
  const hp::Schedule schedule = hp::list_schedule_fixed(dag, partition);
  const std::uint32_t mu = hp::list_schedule(dag, 2).makespan();
  // BSP evaluation of the mapped schedule (g = 2, l = 4).
  const hp::BspCostBreakdown bsp = hp::bsp_cost(dag, schedule, 2, {2.0, 4.0});
  std::cout << "  " << label << ": communication = " << comm
            << ", makespan with this mapping ≈ " << schedule.makespan()
            << " (best possible ≈ " << mu
            << "), BSP cost = " << bsp.total_cost << " ("
            << bsp.total_values_moved << " values moved)\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t layers = argc > 1 ? std::atoi(argv[1]) : 8;
  const std::uint32_t width = argc > 2 ? std::atoi(argv[2]) : 24;
  const hp::PartId k = 2;

  // The pipeline: two serially concatenated stages (the Figure 4 shape).
  const hp::Dag dag = hp::fig4_serial_concatenation(layers / 2, width, 5);
  const hp::HyperDag hyperdag = hp::to_hyperdag(dag);
  std::cout << "pipeline DAG: " << dag.num_nodes() << " nodes, "
            << dag.num_edges() << " edges; hyperDAG "
            << hyperdag.graph.summary() << "\n";

  // 1. Single global balance: the half/half split is feasible — and serial.
  std::cout << "single global balance (Figure 4 trap):\n";
  report("half/half split", hyperdag.graph, dag, hp::fig4_half_split(dag));

  // 2. Layer-wise constraints (Definition 5.1): balance every layer.
  const auto layering = dag.earliest_layers();
  const auto layer_groups =
      hp::layerwise_constraints(hyperdag.graph, dag, layering, k, 0.1);
  const auto balance = hp::BalanceConstraint::for_graph(hyperdag.graph, k,
                                                        0.1, true);
  auto layered = hp::random_balanced_partition(hyperdag.graph, balance, 9);
  if (!layered) {
    std::cerr << "initial partition failed\n";
    return 1;
  }
  // Repair into layer-feasibility: alternate within each layer.
  const auto sets = hp::layer_sets(dag, layering);
  for (const auto& layer : sets) {
    for (std::size_t i = 0; i < layer.size(); ++i) {
      layered->assign(layer[i], static_cast<hp::PartId>(i % k));
    }
  }
  hp::FmConfig fm;
  fm.extra_constraints = &layer_groups;
  hp::fm_refine(hyperdag.graph, *layered, balance, fm);
  std::cout << "layer-wise balance (Definition 5.1):\n";
  report("layer-balanced + FM", hyperdag.graph, dag, *layered);
  std::cout << "  layer constraints satisfied: "
            << (layer_groups.satisfied(hyperdag.graph, *layered) ? "yes"
                                                                 : "no")
            << "\n";
  return 0;
}
