// Quickstart: build a hypergraph, partition it k ways, inspect both cost
// metrics (Section 3.1 of the paper).
//
//   ./quickstart [k] [epsilon]

#include <cstdlib>
#include <iostream>

#include "hyperpart/algo/multilevel.hpp"
#include "hyperpart/core/metrics.hpp"
#include "hyperpart/io/generators.hpp"

int main(int argc, char** argv) {
  const hp::PartId k = argc > 1 ? static_cast<hp::PartId>(std::atoi(argv[1]))
                                : 4;
  const double epsilon = argc > 2 ? std::atof(argv[2]) : 0.05;

  // A random hypergraph standing in for e.g. a circuit netlist.
  const hp::Hypergraph graph = hp::random_hypergraph(
      /*n=*/2000, /*m=*/3000, /*min_edge_size=*/2, /*max_edge_size=*/6,
      /*seed=*/42);
  std::cout << graph.summary() << "\n";

  const auto balance =
      hp::BalanceConstraint::for_graph(graph, k, epsilon, /*relaxed=*/true);
  std::cout << "k = " << k << ", epsilon = " << epsilon
            << ", per-part capacity = " << balance.capacity() << "\n";

  hp::MultilevelConfig config;
  config.seed = 1;
  const auto partition = hp::multilevel_partition(graph, balance, config);
  if (!partition) {
    std::cerr << "no feasible partition found\n";
    return 1;
  }

  std::cout << "cut-net cost      = "
            << hp::cost(graph, *partition, hp::CostMetric::kCutNet) << "\n";
  std::cout << "connectivity cost = "
            << hp::cost(graph, *partition, hp::CostMetric::kConnectivity)
            << "\n";
  std::cout << "part weights      =";
  for (const hp::Weight w : partition->part_weights(graph)) {
    std::cout << ' ' << w;
  }
  std::cout << "\nbalanced          = "
            << (balance.satisfied(graph, *partition) ? "yes" : "no") << "\n";
  return 0;
}
