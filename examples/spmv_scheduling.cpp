// Parallel SpMV partitioning — the paper's motivating manycore workload
// (Sections 1, 3.1 and the 2-regular SpMV hypergraphs of [30]).
//
// Each matrix nonzero is a computation node; each row and each column is a
// hyperedge (the vector entries shared by those nonzeros). λ_e − 1 counts
// exactly the value transfers, so the connectivity cost of a partition IS
// the communication volume of the parallel SpMV.
//
//   ./spmv_scheduling [rows] [cols] [nnz] [k]

#include <cstdlib>
#include <iostream>

#include "hyperpart/algo/greedy.hpp"
#include "hyperpart/algo/multilevel.hpp"
#include "hyperpart/core/metrics.hpp"
#include "hyperpart/io/generators.hpp"
#include "hyperpart/util/timer.hpp"

int main(int argc, char** argv) {
  const std::uint32_t rows = argc > 1 ? std::atoi(argv[1]) : 400;
  const std::uint32_t cols = argc > 2 ? std::atoi(argv[2]) : 400;
  const std::uint64_t nnz = argc > 3 ? std::atoll(argv[3]) : 6000;
  const hp::PartId k = argc > 4 ? static_cast<hp::PartId>(std::atoi(argv[4]))
                                : 4;

  const hp::Hypergraph matrix = hp::spmv_hypergraph(rows, cols, nnz, 7);
  std::cout << "SpMV hypergraph: " << matrix.summary()
            << "  (degree exactly 2 on every node)\n";

  const auto balance =
      hp::BalanceConstraint::for_graph(matrix, k, 0.03, /*relaxed=*/true);

  // Baseline: random balanced assignment of nonzeros to processors.
  const auto random_assignment =
      hp::random_balanced_partition(matrix, balance, 3);
  // Multilevel partitioner.
  hp::Timer timer;
  hp::MultilevelConfig config;
  config.seed = 11;
  const auto optimized = hp::multilevel_partition(matrix, balance, config);
  const double elapsed_ms = timer.millis();

  if (!random_assignment || !optimized) {
    std::cerr << "partitioning failed\n";
    return 1;
  }
  const hp::Weight random_volume =
      hp::cost(matrix, *random_assignment, hp::CostMetric::kConnectivity);
  const hp::Weight optimized_volume =
      hp::cost(matrix, *optimized, hp::CostMetric::kConnectivity);

  std::cout << "communication volume (values moved per SpMV):\n";
  std::cout << "  random balanced   : " << random_volume << "\n";
  std::cout << "  multilevel        : " << optimized_volume << "  ("
            << elapsed_ms << " ms)\n";
  std::cout << "  reduction         : "
            << (100.0 -
                100.0 * static_cast<double>(optimized_volume) /
                    static_cast<double>(random_volume))
            << "%\n";
  return 0;
}
