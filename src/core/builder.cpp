#include "hyperpart/core/builder.hpp"

#include <stdexcept>
#include <utility>

namespace hp {

EdgeId HypergraphBuilder::add_edge(std::vector<NodeId> pins) {
  for (const NodeId v : pins) {
    if (v >= num_nodes_) {
      throw std::invalid_argument("HypergraphBuilder::add_edge: unknown node");
    }
  }
  edges_.push_back(std::move(pins));
  edge_weights_.push_back(1);
  return static_cast<EdgeId>(edges_.size() - 1);
}

void HypergraphBuilder::set_last_edge_weight(Weight w) {
  if (edges_.empty()) {
    throw std::logic_error("set_last_edge_weight: no edges yet");
  }
  if (w < 0) {
    throw std::invalid_argument("set_last_edge_weight: negative weight");
  }
  edge_weights_.back() = w;
  any_weighted_ = any_weighted_ || w != 1;
}

Hypergraph HypergraphBuilder::build() {
  Hypergraph g = Hypergraph::from_edges(num_nodes_, std::move(edges_));
  if (any_weighted_) g.set_edge_weights(std::move(edge_weights_));
  num_nodes_ = 0;
  edges_.clear();
  edge_weights_.clear();
  any_weighted_ = false;
  return g;
}

}  // namespace hp
