#include "hyperpart/core/partition.hpp"

#include <algorithm>

#include "hyperpart/util/overflow.hpp"

namespace hp {

bool Partition::complete() const noexcept {
  return std::all_of(part_.begin(), part_.end(),
                     [this](PartId p) { return p < k_; });
}

std::vector<Weight> Partition::part_weights(const Hypergraph& g) const {
  std::vector<Weight> w(k_, 0);
  for (NodeId v = 0; v < num_nodes(); ++v) {
    if (part_[v] < k_) w[part_[v]] = sat_add(w[part_[v]], g.node_weight(v));
  }
  return w;
}

PartId Partition::num_nonempty_parts() const noexcept {
  std::vector<bool> seen(k_, false);
  for (const PartId p : part_) {
    if (p < k_) seen[p] = true;
  }
  return static_cast<PartId>(std::count(seen.begin(), seen.end(), true));
}

Partition Partition::prefix(NodeId prefix_size) const {
  return Partition{
      std::vector<PartId>(part_.begin(), part_.begin() + prefix_size), k_};
}

}  // namespace hp
