#include "hyperpart/core/subhypergraph.hpp"

#include <stdexcept>

namespace hp {

SubHypergraph induced_subhypergraph(const Hypergraph& g,
                                    const std::vector<NodeId>& nodes) {
  std::vector<NodeId> to_sub(g.num_nodes(), kInvalidNode);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (to_sub[nodes[i]] != kInvalidNode) {
      throw std::invalid_argument("induced_subhypergraph: duplicate node");
    }
    to_sub[nodes[i]] = static_cast<NodeId>(i);
  }

  std::vector<std::vector<NodeId>> edges;
  std::vector<Weight> edge_weights;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    std::vector<NodeId> pins;
    for (const NodeId v : g.pins(e)) {
      if (to_sub[v] != kInvalidNode) pins.push_back(to_sub[v]);
    }
    if (pins.size() < 2) continue;
    edges.push_back(std::move(pins));
    edge_weights.push_back(g.edge_weight(e));
  }

  SubHypergraph sub;
  sub.original_node = nodes;
  sub.graph = Hypergraph::from_edges(static_cast<NodeId>(nodes.size()),
                                     std::move(edges));
  if (g.has_edge_weights()) sub.graph.set_edge_weights(std::move(edge_weights));
  if (g.has_node_weights()) {
    std::vector<Weight> nw(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      nw[i] = g.node_weight(nodes[i]);
    }
    sub.graph.set_node_weights(std::move(nw));
  }
  return sub;
}

}  // namespace hp
