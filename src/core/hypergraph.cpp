#include "hyperpart/core/hypergraph.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "hyperpart/util/overflow.hpp"

namespace hp {

Hypergraph Hypergraph::from_edges(NodeId num_nodes,
                                  std::vector<std::vector<NodeId>> edges) {
  Hypergraph g;
  g.edge_offsets_.assign(1, 0);
  g.edge_offsets_.reserve(edges.size() + 1);
  std::uint64_t total_pins = 0;
  for (auto& e : edges) {
    std::sort(e.begin(), e.end());
    e.erase(std::unique(e.begin(), e.end()), e.end());
    for (const NodeId v : e) {
      if (v >= num_nodes) {
        throw std::invalid_argument("Hypergraph::from_edges: pin out of range");
      }
    }
    total_pins += e.size();
  }
  g.pins_.reserve(total_pins);
  for (const auto& e : edges) {
    g.pins_.insert(g.pins_.end(), e.begin(), e.end());
    g.edge_offsets_.push_back(g.pins_.size());
  }

  // Mirror: node -> incident edges, via counting sort over pins.
  g.node_offsets_.assign(static_cast<std::size_t>(num_nodes) + 1, 0);
  for (const NodeId v : g.pins_) ++g.node_offsets_[v + 1];
  std::partial_sum(g.node_offsets_.begin(), g.node_offsets_.end(),
                   g.node_offsets_.begin());
  g.incident_.resize(g.pins_.size());
  std::vector<std::uint64_t> cursor(g.node_offsets_.begin(),
                                    g.node_offsets_.end() - 1);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    for (const NodeId v : g.pins(e)) g.incident_[cursor[v]++] = e;
  }
  return g;
}

std::uint32_t Hypergraph::max_degree() const noexcept {
  std::uint32_t best = 0;
  for (NodeId v = 0; v < num_nodes(); ++v) best = std::max(best, degree(v));
  return best;
}

std::uint32_t Hypergraph::max_edge_size() const noexcept {
  std::uint32_t best = 0;
  for (EdgeId e = 0; e < num_edges(); ++e) best = std::max(best, edge_size(e));
  return best;
}

Weight Hypergraph::total_node_weight() const noexcept {
  if (node_weights_.empty()) return static_cast<Weight>(num_nodes());
  return std::accumulate(
      node_weights_.begin(), node_weights_.end(), Weight{0},
      [](Weight a, Weight b) { return sat_add(a, b); });
}

void Hypergraph::set_node_weights(std::vector<Weight> w) {
  if (w.size() != num_nodes()) {
    throw std::invalid_argument("set_node_weights: size mismatch");
  }
  for (const Weight x : w) {
    if (x < 0) throw std::invalid_argument("set_node_weights: negative weight");
  }
  node_weights_ = std::move(w);
}

void Hypergraph::set_edge_weights(std::vector<Weight> w) {
  if (w.size() != num_edges()) {
    throw std::invalid_argument("set_edge_weights: size mismatch");
  }
  for (const Weight x : w) {
    if (x < 0) throw std::invalid_argument("set_edge_weights: negative weight");
  }
  edge_weights_ = std::move(w);
}

void Hypergraph::update_node_weight(NodeId v, Weight w) {
  if (v >= num_nodes()) {
    throw std::invalid_argument("update_node_weight: node out of range");
  }
  if (w < 0) throw std::invalid_argument("update_node_weight: negative weight");
  if (node_weights_.empty()) node_weights_.assign(num_nodes(), 1);
  node_weights_[v] = w;
}

void Hypergraph::update_edge_weight(EdgeId e, Weight w) {
  if (e >= num_edges()) {
    throw std::invalid_argument("update_edge_weight: edge out of range");
  }
  if (w < 0) throw std::invalid_argument("update_edge_weight: negative weight");
  if (edge_weights_.empty()) edge_weights_.assign(num_edges(), 1);
  edge_weights_[e] = w;
}

void Hypergraph::apply_structural_batch(std::vector<EdgeRewrite> rewrites,
                                        std::vector<NewEdge> appended) {
  const NodeId n = num_nodes();
  const EdgeId m = num_edges();
  for (auto& r : rewrites) {
    if (r.edge >= m) {
      throw std::invalid_argument(
          "apply_structural_batch: rewrite edge out of range");
    }
    std::sort(r.pins.begin(), r.pins.end());
    r.pins.erase(std::unique(r.pins.begin(), r.pins.end()), r.pins.end());
    if (!r.pins.empty() && r.pins.back() >= n) {
      throw std::invalid_argument("apply_structural_batch: pin out of range");
    }
  }
  bool nonunit_new = false;
  for (auto& a : appended) {
    if (a.weight < 0) {
      throw std::invalid_argument(
          "apply_structural_batch: negative edge weight");
    }
    if (a.weight != 1) nonunit_new = true;
    std::sort(a.pins.begin(), a.pins.end());
    a.pins.erase(std::unique(a.pins.begin(), a.pins.end()), a.pins.end());
    if (!a.pins.empty() && a.pins.back() >= n) {
      throw std::invalid_argument("apply_structural_batch: pin out of range");
    }
  }

  // Later rewrites of the same edge win.
  std::vector<const std::vector<NodeId>*> rewrite_of(m, nullptr);
  for (const auto& r : rewrites) rewrite_of[r.edge] = &r.pins;

  const EdgeId m_after = m + static_cast<EdgeId>(appended.size());
  std::vector<std::uint64_t> edge_offsets;
  edge_offsets.reserve(static_cast<std::size_t>(m_after) + 1);
  edge_offsets.push_back(0);
  std::vector<NodeId> pins;
  pins.reserve(pins_.size());
  for (EdgeId e = 0; e < m; ++e) {
    if (rewrite_of[e]) {
      pins.insert(pins.end(), rewrite_of[e]->begin(), rewrite_of[e]->end());
    } else {
      const auto old = this->pins(e);
      pins.insert(pins.end(), old.begin(), old.end());
    }
    edge_offsets.push_back(pins.size());
  }
  for (const auto& a : appended) {
    pins.insert(pins.end(), a.pins.begin(), a.pins.end());
    edge_offsets.push_back(pins.size());
  }

  std::vector<Weight> edge_weights;
  if (nonunit_new || !edge_weights_.empty()) {
    edge_weights.reserve(m_after);
    if (edge_weights_.empty()) {
      edge_weights.assign(m, 1);
    } else {
      edge_weights = edge_weights_;
    }
    for (const auto& a : appended) edge_weights.push_back(a.weight);
    edge_weights_ = std::move(edge_weights);
  }

  edge_offsets_ = std::move(edge_offsets);
  pins_ = std::move(pins);

  // Rebuild the incidence mirror exactly as from_edges does.
  node_offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (const NodeId v : pins_) ++node_offsets_[v + 1];
  std::partial_sum(node_offsets_.begin(), node_offsets_.end(),
                   node_offsets_.begin());
  incident_.assign(pins_.size(), 0);
  std::vector<std::uint64_t> cursor(node_offsets_.begin(),
                                    node_offsets_.end() - 1);
  for (EdgeId e = 0; e < m_after; ++e) {
    for (const NodeId v : this->pins(e)) incident_[cursor[v]++] = e;
  }
}

namespace {

inline void fnv_mix(std::uint64_t& h, std::uint64_t x) noexcept {
  // FNV-1a over the 8 bytes of x.
  for (int i = 0; i < 8; ++i) {
    h ^= (x >> (8 * i)) & 0xff;
    h *= 0x100000001b3ULL;
  }
}

}  // namespace

std::uint64_t Hypergraph::content_hash() const noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  fnv_mix(h, num_nodes());
  fnv_mix(h, num_edges());
  for (const std::uint64_t o : edge_offsets_) fnv_mix(h, o);
  for (const NodeId p : pins_) fnv_mix(h, p);
  // Unit weights hash like an explicit all-ones vector, so materializing
  // the lazy vector (update_node_weight on a unit graph) never moves the
  // hash by itself.
  fnv_mix(h, 0x9e3779b97f4a7c15ULL);
  if (node_weights_.empty()) {
    for (NodeId v = 0; v < num_nodes(); ++v) fnv_mix(h, 1);
  } else {
    for (const Weight w : node_weights_) {
      fnv_mix(h, static_cast<std::uint64_t>(w));
    }
  }
  fnv_mix(h, 0x9e3779b97f4a7c15ULL);
  if (edge_weights_.empty()) {
    for (EdgeId e = 0; e < num_edges(); ++e) fnv_mix(h, 1);
  } else {
    for (const Weight w : edge_weights_) {
      fnv_mix(h, static_cast<std::uint64_t>(w));
    }
  }
  return h;
}

bool Hypergraph::validate() const noexcept {
  if (edge_offsets_.empty() || node_offsets_.empty()) return false;
  if (edge_offsets_.front() != 0 || node_offsets_.front() != 0) return false;
  if (edge_offsets_.back() != pins_.size()) return false;
  if (node_offsets_.back() != incident_.size()) return false;
  if (pins_.size() != incident_.size()) return false;
  if (!std::is_sorted(edge_offsets_.begin(), edge_offsets_.end())) return false;
  if (!std::is_sorted(node_offsets_.begin(), node_offsets_.end())) return false;
  const NodeId n = num_nodes();
  for (const NodeId v : pins_) {
    if (v >= n) return false;
  }
  // Pins within an edge must be sorted and distinct.
  for (EdgeId e = 0; e < num_edges(); ++e) {
    const auto p = pins(e);
    for (std::size_t i = 1; i < p.size(); ++i) {
      if (p[i - 1] >= p[i]) return false;
    }
  }
  // The incidence mirror must contain exactly the same (v, e) pairs.
  std::vector<std::uint64_t> expect_deg(n, 0);
  for (EdgeId e = 0; e < num_edges(); ++e) {
    for (const NodeId v : pins(e)) ++expect_deg[v];
  }
  for (NodeId v = 0; v < n; ++v) {
    if (expect_deg[v] != degree(v)) return false;
    for (const EdgeId e : incident_edges(v)) {
      const auto p = pins(e);
      if (!std::binary_search(p.begin(), p.end(), v)) return false;
    }
  }
  if (!node_weights_.empty() && node_weights_.size() != n) return false;
  if (!edge_weights_.empty() && edge_weights_.size() != num_edges()) {
    return false;
  }
  return true;
}

std::string Hypergraph::summary() const {
  std::ostringstream os;
  os << "Hypergraph(n=" << num_nodes() << ", m=" << num_edges()
     << ", pins=" << num_pins() << ", max_degree=" << max_degree() << ")";
  return os.str();
}

}  // namespace hp
