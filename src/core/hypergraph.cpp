#include "hyperpart/core/hypergraph.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "hyperpart/util/overflow.hpp"

namespace hp {

Hypergraph Hypergraph::from_edges(NodeId num_nodes,
                                  std::vector<std::vector<NodeId>> edges) {
  Hypergraph g;
  g.edge_offsets_.assign(1, 0);
  g.edge_offsets_.reserve(edges.size() + 1);
  std::uint64_t total_pins = 0;
  for (auto& e : edges) {
    std::sort(e.begin(), e.end());
    e.erase(std::unique(e.begin(), e.end()), e.end());
    for (const NodeId v : e) {
      if (v >= num_nodes) {
        throw std::invalid_argument("Hypergraph::from_edges: pin out of range");
      }
    }
    total_pins += e.size();
  }
  g.pins_.reserve(total_pins);
  for (const auto& e : edges) {
    g.pins_.insert(g.pins_.end(), e.begin(), e.end());
    g.edge_offsets_.push_back(g.pins_.size());
  }

  // Mirror: node -> incident edges, via counting sort over pins.
  g.node_offsets_.assign(static_cast<std::size_t>(num_nodes) + 1, 0);
  for (const NodeId v : g.pins_) ++g.node_offsets_[v + 1];
  std::partial_sum(g.node_offsets_.begin(), g.node_offsets_.end(),
                   g.node_offsets_.begin());
  g.incident_.resize(g.pins_.size());
  std::vector<std::uint64_t> cursor(g.node_offsets_.begin(),
                                    g.node_offsets_.end() - 1);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    for (const NodeId v : g.pins(e)) g.incident_[cursor[v]++] = e;
  }
  return g;
}

std::uint32_t Hypergraph::max_degree() const noexcept {
  std::uint32_t best = 0;
  for (NodeId v = 0; v < num_nodes(); ++v) best = std::max(best, degree(v));
  return best;
}

std::uint32_t Hypergraph::max_edge_size() const noexcept {
  std::uint32_t best = 0;
  for (EdgeId e = 0; e < num_edges(); ++e) best = std::max(best, edge_size(e));
  return best;
}

Weight Hypergraph::total_node_weight() const noexcept {
  if (node_weights_.empty()) return static_cast<Weight>(num_nodes());
  return std::accumulate(
      node_weights_.begin(), node_weights_.end(), Weight{0},
      [](Weight a, Weight b) { return sat_add(a, b); });
}

void Hypergraph::set_node_weights(std::vector<Weight> w) {
  if (w.size() != num_nodes()) {
    throw std::invalid_argument("set_node_weights: size mismatch");
  }
  for (const Weight x : w) {
    if (x < 0) throw std::invalid_argument("set_node_weights: negative weight");
  }
  node_weights_ = std::move(w);
}

void Hypergraph::set_edge_weights(std::vector<Weight> w) {
  if (w.size() != num_edges()) {
    throw std::invalid_argument("set_edge_weights: size mismatch");
  }
  for (const Weight x : w) {
    if (x < 0) throw std::invalid_argument("set_edge_weights: negative weight");
  }
  edge_weights_ = std::move(w);
}

bool Hypergraph::validate() const noexcept {
  if (edge_offsets_.empty() || node_offsets_.empty()) return false;
  if (edge_offsets_.front() != 0 || node_offsets_.front() != 0) return false;
  if (edge_offsets_.back() != pins_.size()) return false;
  if (node_offsets_.back() != incident_.size()) return false;
  if (pins_.size() != incident_.size()) return false;
  if (!std::is_sorted(edge_offsets_.begin(), edge_offsets_.end())) return false;
  if (!std::is_sorted(node_offsets_.begin(), node_offsets_.end())) return false;
  const NodeId n = num_nodes();
  for (const NodeId v : pins_) {
    if (v >= n) return false;
  }
  // Pins within an edge must be sorted and distinct.
  for (EdgeId e = 0; e < num_edges(); ++e) {
    const auto p = pins(e);
    for (std::size_t i = 1; i < p.size(); ++i) {
      if (p[i - 1] >= p[i]) return false;
    }
  }
  // The incidence mirror must contain exactly the same (v, e) pairs.
  std::vector<std::uint64_t> expect_deg(n, 0);
  for (EdgeId e = 0; e < num_edges(); ++e) {
    for (const NodeId v : pins(e)) ++expect_deg[v];
  }
  for (NodeId v = 0; v < n; ++v) {
    if (expect_deg[v] != degree(v)) return false;
    for (const EdgeId e : incident_edges(v)) {
      const auto p = pins(e);
      if (!std::binary_search(p.begin(), p.end(), v)) return false;
    }
  }
  if (!node_weights_.empty() && node_weights_.size() != n) return false;
  if (!edge_weights_.empty() && edge_weights_.size() != num_edges()) {
    return false;
  }
  return true;
}

std::string Hypergraph::summary() const {
  std::ostringstream os;
  os << "Hypergraph(n=" << num_nodes() << ", m=" << num_edges()
     << ", pins=" << num_pins() << ", max_degree=" << max_degree() << ")";
  return os.str();
}

}  // namespace hp
