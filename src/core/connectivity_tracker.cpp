#include "hyperpart/core/connectivity_tracker.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "hyperpart/util/overflow.hpp"
#include "hyperpart/util/prefetch.hpp"
#include "hyperpart/util/thread_pool.hpp"

namespace hp {

namespace {
constexpr std::uint32_t kNotInBoundary =
    std::numeric_limits<std::uint32_t>::max();
// Largest per-net pin count the narrow uint16 table can hold exactly.
constexpr std::uint32_t kNarrowMax = 0xFFFF;
// Lookahead distance (in loop iterations) for the software prefetches in
// the CSR pin walks: far enough to cover an L2 miss at these loop bodies,
// near enough that the line is still resident when used.
constexpr std::size_t kPrefetchAhead = 4;

// Collect the parts present in one count row into `out` (ascending part id)
// without reading all k counts: load several counts per word, skip all-zero
// words, and stop as soon as all λ present parts are found. This is the
// k > 64 replacement for the present-parts bitset — λ is typically a handful
// while k can be hundreds, so most words are zero.
template <typename C>
void collect_present_parts(const C* row, PartId k, PartId lambda,
                           std::vector<PartId>& out) {
  constexpr PartId kPerWord = static_cast<PartId>(sizeof(std::uint64_t) /
                                                  sizeof(C));
  const PartId nwords = k / kPerWord;
  PartId q = 0;
  for (PartId wi = 0; wi < nwords; ++wi, q += kPerWord) {
    std::uint64_t word;
    std::memcpy(&word, row + q, sizeof(word));
    if (word == 0) continue;
    for (PartId j = 0; j < kPerWord; ++j) {
      if (row[q + j] != 0) out.push_back(q + j);
    }
    if (static_cast<PartId>(out.size()) == lambda) return;
  }
  for (; q < k && static_cast<PartId>(out.size()) < lambda; ++q) {
    if (row[q] != 0) out.push_back(q);
  }
}
}  // namespace

template <typename C>
void ConnectivityTracker::build_counts(unsigned threads) {
  // Each edge's counts/λ slice is independent, so the edge loop shards
  // cleanly; the totals are integer sums and therefore identical for every
  // chunking.
  std::atomic<Weight> cut{0};
  std::atomic<Weight> conn{0};
  C* counts = counts_data<C>();
  parallel_for_chunks(
      g_.num_edges(), threads, [&](std::uint64_t begin, std::uint64_t end) {
        Weight local_cut = 0;
        Weight local_conn = 0;
        for (EdgeId e = static_cast<EdgeId>(begin);
             e < static_cast<EdgeId>(end); ++e) {
          const std::size_t base = static_cast<std::size_t>(e) * k_;
          PartId l = 0;
          std::uint64_t mask = 0;
          const auto pins = g_.pins(e);
          for (std::size_t i = 0; i < pins.size(); ++i) {
            // The edge walk itself is sequential (hardware-prefetched); the
            // per-pin part lookup is the one scattered access worth hinting.
            if (i + kPrefetchAhead < pins.size()) {
              prefetch(part_.data() + pins[i + kPrefetchAhead]);
            }
            const PartId q = part_[pins[i]];
            C& c = counts[base + q];
            if (c == 0) {
              ++l;
              mask |= std::uint64_t{1} << (q & 63);
            }
            ++c;
          }
          if (!present_.empty()) present_[e] = mask;
          lambda_[e] = l;
          if (l > 1) {
            local_cut += g_.edge_weight(e);
            local_conn += g_.edge_weight(e) * static_cast<Weight>(l - 1);
          }
        }
        cut.fetch_add(local_cut, std::memory_order_relaxed);
        conn.fetch_add(local_conn, std::memory_order_relaxed);
      });
  cut_net_ = cut.load();
  connectivity_ = conn.load();
}

ConnectivityTracker::ConnectivityTracker(const Hypergraph& g,
                                         const Partition& p, unsigned threads)
    : g_(g), k_(p.k()) {
  if (!p.complete()) {
    throw std::invalid_argument("ConnectivityTracker: incomplete partition");
  }
  part_.assign(p.raw().begin(), p.raw().end());
  narrow_ = g.max_edge_size() <= kNarrowMax;
  const std::size_t slots = static_cast<std::size_t>(g.num_edges()) * k_;
  if (narrow_) {
    counts16_.assign(slots, 0);
  } else {
    counts32_.assign(slots, 0);
  }
  if (k_ <= 64) present_.assign(g.num_edges(), 0);
  lambda_.assign(g.num_edges(), 0);
  part_weight_.assign(k_, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    part_weight_[part_[v]] += g.node_weight(v);
  }
  if (narrow_) {
    build_counts<std::uint16_t>(threads);
  } else {
    build_counts<std::uint32_t>(threads);
  }
}

void ConnectivityTracker::widen_counts() {
  counts32_.assign(counts16_.begin(), counts16_.end());
  counts16_.clear();
  counts16_.shrink_to_fit();
  narrow_ = false;
}

template <typename C>
Weight ConnectivityTracker::gain_impl(NodeId v, PartId to,
                                      CostMetric m) const {
  const PartId from = part_[v];
  if (from == to) return 0;
  Weight gain = 0;
  const C* counts = counts_data<C>();
  const auto edges = g_.incident_edges(v);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (i + kPrefetchAhead < edges.size()) {
      prefetch(counts +
               static_cast<std::size_t>(edges[i + kPrefetchAhead]) * k_);
    }
    const EdgeId e = edges[i];
    const std::size_t base = static_cast<std::size_t>(e) * k_;
    const std::uint32_t in_from = counts[base + from];
    const std::uint32_t in_to = counts[base + to];
    const Weight w = g_.edge_weight(e);
    if (m == CostMetric::kConnectivity) {
      // Branchless delta rule: +w when the from-part disappears from e,
      // −w when the to-part newly appears.
      gain += w * (static_cast<Weight>(in_from == 1) -
                   static_cast<Weight>(in_to == 0));
    } else {
      const PartId l = lambda_[e];
      const PartId l_after = l - static_cast<PartId>(in_from == 1) +
                             static_cast<PartId>(in_to == 0);
      gain +=
          w * (static_cast<Weight>(l > 1) - static_cast<Weight>(l_after > 1));
    }
  }
  return gain;
}

Weight ConnectivityTracker::gain(NodeId v, PartId to, CostMetric m) const {
  return narrow_ ? gain_impl<std::uint16_t>(v, to, m)
                 : gain_impl<std::uint32_t>(v, to, m);
}

template <typename C>
void ConnectivityTracker::move_plain(NodeId v, PartId to) {
  const PartId from = part_[v];
  C* counts = counts_data<C>();
  for (const EdgeId e : g_.incident_edges(v)) {
    const Weight w = g_.edge_weight(e);
    const std::size_t base = static_cast<std::size_t>(e) * k_;
    const PartId l_before = lambda_[e];
    C& cf = counts[base + from];
    C& ct = counts[base + to];
    assert(cf > 0);
    // Branchless λ update from the pre-move counts; the cost deltas below
    // are exact zeros when λ did not change.
    const PartId l_after = l_before - static_cast<PartId>(cf == 1) +
                           static_cast<PartId>(ct == 0);
    if (!present_.empty()) {
      const std::uint64_t fbit = std::uint64_t{1} << from;
      const std::uint64_t tbit = std::uint64_t{1} << to;
      present_[e] = (present_[e] & ~(fbit * (cf == 1))) | (tbit * (ct == 0));
    }
    --cf;
    ++ct;
    lambda_[e] = l_after;
    connectivity_ +=
        w * (static_cast<Weight>(l_after) - static_cast<Weight>(l_before));
    cut_net_ += w * (static_cast<Weight>(l_after > 1) -
                     static_cast<Weight>(l_before > 1));
  }
  part_weight_[from] -= g_.node_weight(v);
  part_weight_[to] += g_.node_weight(v);
  part_[v] = to;
}

void ConnectivityTracker::move(NodeId v, PartId to) {
  const PartId from = part_[v];
  if (from == to) return;
  if (cache_enabled_) {
    if (narrow_) {
      move_with_cache<std::uint16_t>(v, to);
    } else {
      move_with_cache<std::uint32_t>(v, to);
    }
    return;
  }
  if (narrow_) {
    move_plain<std::uint16_t>(v, to);
  } else {
    move_plain<std::uint32_t>(v, to);
  }
}

Partition ConnectivityTracker::to_partition() const {
  return Partition{std::vector<PartId>(part_.begin(), part_.end()), k_};
}

void ConnectivityTracker::begin_structural_patch(
    std::span<const EdgeId> touched) {
  if (patch_edges_before_ != kInvalidEdge) {
    throw std::logic_error("begin_structural_patch: patch already active");
  }
  patch_edges_before_ = g_.num_edges();
  for (const EdgeId e : touched) {
    if (e >= patch_edges_before_) {
      patch_edges_before_ = kInvalidEdge;
      throw std::invalid_argument("begin_structural_patch: edge out of range");
    }
  }
  for (const EdgeId e : touched) {
    const PartId l = lambda_[e];
    if (l > 1) {
      const Weight w = g_.edge_weight(e);
      cut_net_ -= w;
      connectivity_ -= w * static_cast<Weight>(l - 1);
    }
  }
  // Gain cache and boundary set are repaired by refilling, not patching.
  cache_enabled_ = false;
  benefit_.clear();
  aux_.clear();
  best_to_.clear();
  boundary_.clear();
  touched_.clear();
}

template <typename C>
void ConnectivityTracker::recount_net(EdgeId e) {
  C* counts = counts_data<C>();
  const std::size_t base = static_cast<std::size_t>(e) * k_;
  std::fill(counts + base, counts + base + k_, C{0});
  PartId l = 0;
  std::uint64_t mask = 0;
  for (const NodeId v : g_.pins(e)) {
    C& c = counts[base + part_[v]];
    if (c == 0) {
      ++l;
      mask |= std::uint64_t{1} << (part_[v] & 63);
    }
    ++c;
  }
  if (!present_.empty()) present_[e] = mask;
  lambda_[e] = l;
  if (l > 1) {
    const Weight w = g_.edge_weight(e);
    cut_net_ += w;
    connectivity_ += w * static_cast<Weight>(l - 1);
  }
}

void ConnectivityTracker::finish_structural_patch(
    std::span<const EdgeId> touched) {
  if (patch_edges_before_ == kInvalidEdge) {
    throw std::logic_error("finish_structural_patch: no active patch");
  }
  const EdgeId m_before = patch_edges_before_;
  patch_edges_before_ = kInvalidEdge;
  const EdgeId m_after = g_.num_edges();
  if (m_after < m_before) {
    throw std::logic_error("finish_structural_patch: edge count shrank");
  }
  // A patch can grow a net past what the narrow table holds; widen before
  // recounting so the counts stay exact.
  if (narrow_) {
    bool still_narrow = true;
    for (const EdgeId e : touched) {
      if (g_.edge_size(e) > kNarrowMax) still_narrow = false;
    }
    for (EdgeId e = m_before; e < m_after && still_narrow; ++e) {
      if (g_.edge_size(e) > kNarrowMax) still_narrow = false;
    }
    if (!still_narrow) widen_counts();
  }
  const std::size_t slots = static_cast<std::size_t>(m_after) * k_;
  if (narrow_) {
    counts16_.resize(slots, 0);
  } else {
    counts32_.resize(slots, 0);
  }
  lambda_.resize(m_after, 0);
  if (k_ <= 64) present_.resize(m_after, 0);
  const auto recount = [&](EdgeId e) {
    if (narrow_) {
      recount_net<std::uint16_t>(e);
    } else {
      recount_net<std::uint32_t>(e);
    }
  };
  for (const EdgeId e : touched) recount(e);
  for (EdgeId e = m_before; e < m_after; ++e) recount(e);
}

// --- Gain cache ------------------------------------------------------------

void ConnectivityTracker::enable_gain_cache(CostMetric m, unsigned threads) {
  const NodeId n = g_.num_nodes();
  cache_metric_ = m;
  benefit_.assign(static_cast<std::size_t>(n) * k_, 0);
  NodeAux blank;
  blank.boundary_pos = kNotInBoundary;
  aux_.assign(n, blank);
  boundary_.clear();
  touched_.clear();
  epoch_ = 0;

  // Edge-centric fill: each edge lists its present parts once (O(k)
  // sequential scan of its count row) and then adds w to exactly the
  // λ benefit slots of each pin — O(pins·λ) scattered writes instead of
  // the O(pins·k) scattered count reads a node-centric fill would do.
  // Both paths compute the same exact integer sums, so the tables are
  // identical for every thread count.
  if (narrow_) {
    if (threads <= 1) {
      fill_cache_tables<false, std::uint16_t>(m, 1);
    } else {
      fill_cache_tables<true, std::uint16_t>(m, threads);
    }
  } else {
    if (threads <= 1) {
      fill_cache_tables<false, std::uint32_t>(m, 1);
    } else {
      fill_cache_tables<true, std::uint32_t>(m, threads);
    }
  }

  // Best-target index over the finished benefit rows; a pure function of
  // the rows, so the parallel build is deterministic.
  best_to_.assign(n, 0);
  parallel_for_chunks(n, threads,
                      [&](std::uint64_t begin, std::uint64_t end) {
                        for (NodeId v = static_cast<NodeId>(begin);
                             v < static_cast<NodeId>(end); ++v) {
                          rescan_best(v);
                        }
                      });

  for (NodeId v = 0; v < n; ++v) {
    if (aux_[v].cut_incident > 0) boundary_insert(v);
  }
  cache_enabled_ = true;
}

void ConnectivityTracker::rescan_best(NodeId v) noexcept {
  // Lowest-id argmax over q ≠ part(v); ties carry equal gain, so any
  // deterministic choice yields the same cached_best_gain().
  const Weight* row = benefit_.data() + static_cast<std::size_t>(v) * k_;
  const PartId from = part_[v];
  PartId best = (from == 0 && k_ > 1) ? 1 : 0;
  for (PartId q = best + 1; q < k_; ++q) {
    if (q != from && row[q] > row[best]) best = q;
  }
  best_to_[v] = best;
}

void ConnectivityTracker::benefit_add(NodeId v, PartId q, Weight w) noexcept {
  const std::size_t row = static_cast<std::size_t>(v) * k_;
  benefit_[row + q] += w;
  // A grown slot can only steal the argmax (strict: keep the incumbent on
  // ties — the gain is equal either way).
  const PartId b = best_to_[v];
  if (q != b && q != part_[v] && benefit_[row + q] > benefit_[row + b]) {
    best_to_[v] = q;
  }
}

void ConnectivityTracker::benefit_sub(NodeId v, PartId q, Weight w) noexcept {
  benefit_[static_cast<std::size_t>(v) * k_ + q] -= w;
  // Only a shrink at the argmax invalidates it; the row is cache-hot right
  // now, so the O(k) rescan is cheap and rare (~1/λ of decreases).
  if (best_to_[v] == q) rescan_best(v);
}

template <bool Atomic, typename C>
void ConnectivityTracker::fill_cache_tables(CostMetric m, unsigned threads) {
  const auto add = [](auto& slot, auto w) {
    if constexpr (Atomic) {
      std::atomic_ref(slot).fetch_add(w, std::memory_order_relaxed);
    } else {
      slot += w;
    }
  };
  const C* counts = counts_data<C>();
  parallel_for_chunks(
      g_.num_edges(), threads, [&](std::uint64_t begin, std::uint64_t end) {
        std::vector<PartId> present;
        present.reserve(k_);
        for (EdgeId e = static_cast<EdgeId>(begin);
             e < static_cast<EdgeId>(end); ++e) {
          const Weight w = g_.edge_weight(e);
          const std::size_t base = static_cast<std::size_t>(e) * k_;
          const PartId l = lambda_[e];
          const auto pins = g_.pins(e);
          if (m == CostMetric::kConnectivity) {
            present.clear();
            if (!present_.empty()) {
              // Bit iteration over the per-net present-parts word replaces
              // the O(k) count scan; order (ascending part id) matches.
              for (std::uint64_t mask = present_[e]; mask != 0;
                   mask &= mask - 1) {
                present.push_back(
                    static_cast<PartId>(std::countr_zero(mask)));
              }
            } else {
              collect_present_parts(counts + base, k_, l, present);
            }
            for (std::size_t i = 0; i < pins.size(); ++i) {
              if (i + kPrefetchAhead < pins.size()) {
                // The benefit row and aux record of a pin a few iterations
                // out are the scattered write targets of this loop.
                const NodeId ahead = pins[i + kPrefetchAhead];
                prefetch_write(benefit_.data() +
                               static_cast<std::size_t>(ahead) * k_);
                prefetch_write(aux_.data() + ahead);
              }
              const NodeId u = pins[i];
              NodeAux& a = aux_[u];
              add(a.degw, w);
              if (counts[base + part_[u]] == 1) add(a.penalty, w);
              Weight* row = benefit_.data() + static_cast<std::size_t>(u) * k_;
              for (const PartId q : present) add(row[q], w);
              if (l > 1) add(a.cut_incident, std::uint32_t{1});
            }
          } else {
            if (l == 1) {
              if (g_.edge_size(e) >= 2) {
                for (const NodeId u : pins) add(aux_[u].penalty, w);
              }
            } else if (l == 2) {
              // Exactly two present parts a < b: a lone pin in one side
              // benefits toward the other.
              const auto [a, b] = two_present_parts<C>(e);
              for (const NodeId u : pins) {
                const PartId pu = part_[u];
                if (counts[base + pu] == 1) {
                  const PartId other = pu == a ? b : a;
                  add(benefit_[static_cast<std::size_t>(u) * k_ + other], w);
                }
                add(aux_[u].cut_incident, std::uint32_t{1});
              }
            } else {
              for (const NodeId u : pins) {
                add(aux_[u].cut_incident, std::uint32_t{1});
              }
            }
          }
        }
      });
}

void ConnectivityTracker::touch(NodeId v) {
  if (aux_[v].stamp != epoch_) {
    aux_[v].stamp = epoch_;
    touched_.push_back(v);
  }
}

void ConnectivityTracker::boundary_insert(NodeId v) {
  if (aux_[v].boundary_pos != kNotInBoundary) return;
  aux_[v].boundary_pos = static_cast<std::uint32_t>(boundary_.size());
  boundary_.push_back(v);
}

void ConnectivityTracker::boundary_erase(NodeId v) {
  const std::uint32_t pos = aux_[v].boundary_pos;
  if (pos == kNotInBoundary) return;
  const NodeId last = boundary_.back();
  boundary_[pos] = last;
  aux_[last].boundary_pos = pos;
  boundary_.pop_back();
  aux_[v].boundary_pos = kNotInBoundary;
}

template <typename C>
void ConnectivityTracker::apply_connectivity_deltas(EdgeId e, NodeId u,
                                                    PartId from, PartId to) {
  // Called with pre-move counts. Benefit terms do not depend on the pin's
  // own part, so those deltas apply to every pin (including u, whose
  // benefit row stays delta-maintained; only its penalty is rebuilt).
  const Weight w = g_.edge_weight(e);
  const C* counts = counts_data<C>();
  const std::size_t base = static_cast<std::size_t>(e) * k_;
  const std::uint32_t in_from = counts[base + from];
  const std::uint32_t in_to = counts[base + to];
  const bool to_appears = in_to == 0;       // `to` newly appears in e
  const bool from_vanishes = in_from == 1;  // `from` disappears from e
  bool from_lone = in_from == 2;  // remaining from-pin becomes the lone one
  bool to_crowded = in_to == 1;   // previously lone to-pin gains company
  if (to_appears | from_vanishes) {
    // One fused pin walk covering every firing rule (separate passes per
    // rule would re-stream the same pin slice up to three times). Every pin
    // is touched in pin order either way, so the touched_ sequence — and
    // with it downstream heap tie-breaking — is unchanged.
    for (const NodeId x : g_.pins(e)) {
      if (to_appears) benefit_add(x, to, w);
      if (from_vanishes) benefit_sub(x, from, w);
      if ((from_lone | to_crowded) && x != u) {
        const PartId px = part_[x];
        if (from_lone && px == from) {
          aux_[x].penalty += w;
          from_lone = false;
        } else if (to_crowded && px == to) {
          aux_[x].penalty -= w;
          to_crowded = false;
        }
      }
      touch(x);
    }
    return;
  }
  // Only the single-pin rules fire: two early-exit searches, kept in this
  // order so touched_ records the lone from-pin before the crowded to-pin
  // (the order the unfused code produced).
  if (from_lone) {
    for (const NodeId x : g_.pins(e)) {
      if (x != u && part_[x] == from) {
        aux_[x].penalty += w;
        touch(x);
        break;
      }
    }
  }
  if (to_crowded) {
    for (const NodeId x : g_.pins(e)) {
      if (x != u && part_[x] == to) {
        aux_[x].penalty -= w;
        touch(x);
        break;
      }
    }
  }
}

template <typename C>
void ConnectivityTracker::remove_cut_contributions(EdgeId e, NodeId u) {
  // Pre-move state: strip e's cut-metric contributions from every pin
  // except the mover (whose row is rebuilt from scratch afterwards).
  const Weight w = g_.edge_weight(e);
  const C* counts = counts_data<C>();
  const std::size_t base = static_cast<std::size_t>(e) * k_;
  const PartId l = lambda_[e];
  if (l == 1) {
    for (const NodeId x : g_.pins(e)) {
      if (x == u) continue;
      aux_[x].penalty -= w;
      touch(x);
    }
  } else if (l == 2) {
    const auto [a, b] = two_present_parts<C>(e);
    for (const NodeId x : g_.pins(e)) {
      if (x == u) continue;
      const PartId px = part_[x];
      if (counts[base + px] == 1) {
        benefit_sub(x, px == a ? b : a, w);
        touch(x);
      }
    }
  }
}

template <typename C>
void ConnectivityTracker::add_cut_contributions(EdgeId e, NodeId u) {
  // Post-move state: mirror of remove_cut_contributions.
  const Weight w = g_.edge_weight(e);
  const C* counts = counts_data<C>();
  const std::size_t base = static_cast<std::size_t>(e) * k_;
  const PartId l = lambda_[e];
  if (l == 1) {
    for (const NodeId x : g_.pins(e)) {
      if (x == u) continue;
      aux_[x].penalty += w;
      touch(x);
    }
  } else if (l == 2) {
    const auto [a, b] = two_present_parts<C>(e);
    for (const NodeId x : g_.pins(e)) {
      if (x == u) continue;
      const PartId px = part_[x];
      if (counts[base + px] == 1) {
        benefit_add(x, px == a ? b : a, w);
        touch(x);
      }
    }
  }
}

template <typename C>
void ConnectivityTracker::rebuild_mover_cache_row(NodeId u) {
  // Post-move state; part_[u] is already the destination part.
  const PartId pu = part_[u];
  const C* counts = counts_data<C>();
  if (cache_metric_ == CostMetric::kConnectivity) {
    Weight p = 0;
    for (const EdgeId e : g_.incident_edges(u)) {
      p += g_.edge_weight(e) *
           static_cast<Weight>(counts[static_cast<std::size_t>(e) * k_ + pu] ==
                               1);
    }
    aux_[u].penalty = p;
    // The mover's own part changed, which redraws which slots are targets
    // (old part becomes one, new part stops being one).
    rescan_best(u);
    return;
  }
  Weight* row = benefit_.data() + static_cast<std::size_t>(u) * k_;
  std::fill(row, row + k_, 0);
  Weight p = 0;
  for (const EdgeId e : g_.incident_edges(u)) {
    const Weight w = g_.edge_weight(e);
    const std::size_t base = static_cast<std::size_t>(e) * k_;
    const PartId l = lambda_[e];
    if (l == 1) {
      if (g_.edge_size(e) >= 2) p += w;
    } else if (l == 2 && counts[base + pu] == 1) {
      const auto [a, b] = two_present_parts<C>(e);
      row[a == pu ? b : a] += w;
    }
  }
  aux_[u].penalty = p;
  rescan_best(u);  // row rebuilt wholesale; re-derive the argmax
}

void ConnectivityTracker::update_boundary_after_lambda_change(EdgeId e,
                                                              PartId l_before,
                                                              PartId l_after) {
  if (l_before == 1 && l_after > 1) {
    for (const NodeId x : g_.pins(e)) {
      if (aux_[x].cut_incident++ == 0) boundary_insert(x);
    }
  } else if (l_before > 1 && l_after == 1) {
    for (const NodeId x : g_.pins(e)) {
      assert(aux_[x].cut_incident > 0);
      if (--aux_[x].cut_incident == 0) boundary_erase(x);
    }
  }
}

template <typename C>
void ConnectivityTracker::move_with_cache(NodeId u, PartId to) {
  const PartId from = part_[u];
  if (!batch_active_) {  // apply_batch owns the epoch for the whole batch
    ++epoch_;
    touched_.clear();
  }
  touch(u);
  const bool conn = cache_metric_ == CostMetric::kConnectivity;
  C* counts = counts_data<C>();
  // The delta rules below write scattered benefit rows of this move's
  // neighborhood; start pulling them in before the count updates need them.
  for (const EdgeId e : g_.incident_edges(u)) {
    prefetch(counts + static_cast<std::size_t>(e) * k_);
    for (const NodeId v : g_.pins(e)) prefetch_gain_row(v);
  }
  for (const EdgeId e : g_.incident_edges(u)) {
    const Weight w = g_.edge_weight(e);
    const std::size_t base = static_cast<std::size_t>(e) * k_;
    const PartId l_before = lambda_[e];
    C& cf = counts[base + from];
    C& ct = counts[base + to];
    assert(cf > 0);
    const PartId l_after = l_before - static_cast<PartId>(cf == 1) +
                           static_cast<PartId>(ct == 0);
    // λ ≥ 3 before and after means no pin's cut-metric contribution
    // changes; those edges cost O(1).
    const bool cut_relevant = !conn && (l_before <= 2 || l_after <= 2);
    if (conn) {
      apply_connectivity_deltas<C>(e, u, from, to);
    } else if (cut_relevant) {
      remove_cut_contributions<C>(e, u);
    }
    if (!present_.empty()) {
      const std::uint64_t fbit = std::uint64_t{1} << from;
      const std::uint64_t tbit = std::uint64_t{1} << to;
      present_[e] = (present_[e] & ~(fbit * (cf == 1))) | (tbit * (ct == 0));
    }
    --cf;
    ++ct;
    lambda_[e] = l_after;
    connectivity_ +=
        w * (static_cast<Weight>(l_after) - static_cast<Weight>(l_before));
    cut_net_ += w * (static_cast<Weight>(l_after > 1) -
                     static_cast<Weight>(l_before > 1));
    if (cut_relevant) add_cut_contributions<C>(e, u);
    update_boundary_after_lambda_change(e, l_before, l_after);
  }
  part_weight_[from] -= g_.node_weight(u);
  part_weight_[to] += g_.node_weight(u);
  part_[u] = to;
  rebuild_mover_cache_row<C>(u);
}

template <typename C>
std::pair<PartId, PartId> ConnectivityTracker::two_present_parts(
    EdgeId e) const noexcept {
  if (!present_.empty()) {
    const std::uint64_t m = present_[e];
    return {static_cast<PartId>(std::countr_zero(m)),
            static_cast<PartId>(std::countr_zero(m & (m - 1)))};
  }
  const C* counts = counts_data<C>();
  const std::size_t base = static_cast<std::size_t>(e) * k_;
  PartId a = kInvalidPart;
  for (PartId q = 0; q < k_; ++q) {
    if (counts[base + q] > 0) {
      if (a == kInvalidPart) {
        a = q;
      } else {
        return {a, q};
      }
    }
  }
  return {a, kInvalidPart};
}

BatchCommitResult ConnectivityTracker::apply_batch(
    std::span<const BatchMove> moves, Weight capacity, Weight min_gain) {
  if (!cache_enabled_) {
    throw std::logic_error(
        "ConnectivityTracker::apply_batch requires an enabled gain cache");
  }
  BatchCommitResult result;
  ++epoch_;
  touched_.clear();
  batch_active_ = true;
  for (const BatchMove& m : moves) {
    // Revalidate against the CURRENT state: earlier commits in this batch
    // may have changed the gain or the balance headroom. The cached gain is
    // exact, so this is the same accept/reject decision a sequential pass
    // re-examining the node right now would make.
    if (part_[m.node] == m.to) {
      ++result.conflicted;
      continue;
    }
    const Weight fresh = cached_gain(m.node, m.to);
    if (fresh < min_gain ||
        sat_add(part_weight_[m.to], g_.node_weight(m.node)) > capacity) {
      ++result.conflicted;
      continue;
    }
    if (narrow_) {
      move_with_cache<std::uint16_t>(m.node, m.to);
    } else {
      move_with_cache<std::uint32_t>(m.node, m.to);
    }
    ++result.applied;
    result.total_gain += fresh;
  }
  batch_active_ = false;
  return result;
}

}  // namespace hp
