#include "hyperpart/core/connectivity_tracker.hpp"

#include <cassert>
#include <stdexcept>

namespace hp {

ConnectivityTracker::ConnectivityTracker(const Hypergraph& g,
                                         const Partition& p)
    : g_(g), k_(p.k()) {
  if (!p.complete()) {
    throw std::invalid_argument("ConnectivityTracker: incomplete partition");
  }
  part_.assign(p.raw().begin(), p.raw().end());
  counts_.assign(static_cast<std::size_t>(g.num_edges()) * k_, 0);
  lambda_.assign(g.num_edges(), 0);
  part_weight_.assign(k_, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    part_weight_[part_[v]] += g.node_weight(v);
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    for (const NodeId v : g.pins(e)) {
      auto& c = counts_[static_cast<std::size_t>(e) * k_ + part_[v]];
      if (c == 0) ++lambda_[e];
      ++c;
    }
    if (lambda_[e] > 1) {
      cut_net_ += g.edge_weight(e);
      connectivity_ += g.edge_weight(e) * static_cast<Weight>(lambda_[e] - 1);
    }
  }
}

Weight ConnectivityTracker::gain(NodeId v, PartId to, CostMetric m) const {
  const PartId from = part_[v];
  if (from == to) return 0;
  Weight gain = 0;
  for (const EdgeId e : g_.incident_edges(v)) {
    const std::uint32_t in_from = pins_in_part(e, from);
    const std::uint32_t in_to = pins_in_part(e, to);
    const Weight w = g_.edge_weight(e);
    if (m == CostMetric::kConnectivity) {
      if (in_from == 1) gain += w;  // from-part disappears from e
      if (in_to == 0) gain -= w;    // to-part newly appears in e
    } else {
      const PartId l = lambda_[e];
      const PartId l_after =
          l - static_cast<PartId>(in_from == 1) + static_cast<PartId>(in_to == 0);
      gain += w * (static_cast<Weight>(l > 1) - static_cast<Weight>(l_after > 1));
    }
  }
  return gain;
}

void ConnectivityTracker::move(NodeId v, PartId to) {
  const PartId from = part_[v];
  if (from == to) return;
  for (const EdgeId e : g_.incident_edges(v)) {
    const Weight w = g_.edge_weight(e);
    const std::size_t base = static_cast<std::size_t>(e) * k_;
    const PartId l_before = lambda_[e];
    auto& cf = counts_[base + from];
    auto& ct = counts_[base + to];
    assert(cf > 0);
    --cf;
    PartId l = l_before;
    if (cf == 0) --l;
    if (ct == 0) ++l;
    ++ct;
    lambda_[e] = l;
    if (l != l_before) {
      connectivity_ +=
          w * (static_cast<Weight>(l) - static_cast<Weight>(l_before));
      cut_net_ +=
          w * (static_cast<Weight>(l > 1) - static_cast<Weight>(l_before > 1));
    }
  }
  part_weight_[from] -= g_.node_weight(v);
  part_weight_[to] += g_.node_weight(v);
  part_[v] = to;
}

Partition ConnectivityTracker::to_partition() const {
  return Partition{std::vector<PartId>(part_.begin(), part_.end()), k_};
}

}  // namespace hp
