#include "hyperpart/core/balance.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "hyperpart/util/overflow.hpp"

namespace hp {

namespace {

/// floor((1+eps)·total/k) with a guard against floating-point error on exact
/// integer thresholds: the paper's constructions choose sizes so that the
/// threshold is an exact integer, and a naive floor() could land one short.
/// The result is clamped to the Weight range — near-INT64_MAX totals with a
/// large epsilon would otherwise overflow the float-to-int cast (UB).
[[nodiscard]] Weight threshold(Weight total, PartId k, double epsilon,
                               bool relaxed) {
  const long double x =
      (1.0L + static_cast<long double>(epsilon)) *
      static_cast<long double>(total) / static_cast<long double>(k);
  const long double y = relaxed ? std::ceil(x - 1e-9L) : std::floor(x + 1e-9L);
  constexpr long double kMax =
      static_cast<long double>(std::numeric_limits<Weight>::max());
  if (y >= kMax) return std::numeric_limits<Weight>::max();
  if (y <= -kMax) return std::numeric_limits<Weight>::min();
  return static_cast<Weight>(y);
}

}  // namespace

BalanceConstraint BalanceConstraint::for_graph(const Hypergraph& g, PartId k,
                                               double epsilon, bool relaxed) {
  return for_total_weight(g.total_node_weight(), k, epsilon, relaxed);
}

BalanceConstraint BalanceConstraint::for_total_weight(Weight total, PartId k,
                                                      double epsilon,
                                                      bool relaxed) {
  if (k < 1) throw std::invalid_argument("BalanceConstraint: k must be >= 1");
  if (epsilon < 0) {
    throw std::invalid_argument("BalanceConstraint: epsilon must be >= 0");
  }
  BalanceConstraint b;
  b.k_ = k;
  b.epsilon_ = epsilon;
  b.capacity_ = threshold(total, k, epsilon, relaxed);
  return b;
}

BalanceConstraint BalanceConstraint::with_capacity(PartId k, Weight capacity,
                                                   double epsilon) {
  BalanceConstraint b;
  b.k_ = k;
  b.epsilon_ = epsilon;
  b.capacity_ = capacity;
  return b;
}

bool BalanceConstraint::satisfied(const Hypergraph& g,
                                  const Partition& p) const {
  return satisfied(p.part_weights(g));
}

bool BalanceConstraint::satisfied(const std::vector<Weight>& pw) const {
  for (const Weight w : pw) {
    if (w > capacity_) return false;
  }
  return true;
}

ConstraintSet ConstraintSet::for_subsets(
    const Hypergraph& g, std::vector<std::vector<NodeId>> subsets, PartId k,
    double epsilon, bool relaxed) {
  ConstraintSet cs;
  for (auto& nodes : subsets) {
    Weight total = 0;
    for (const NodeId v : nodes) total = sat_add(total, g.node_weight(v));
    const auto cap =
        BalanceConstraint::for_total_weight(total, k, epsilon, relaxed)
            .capacity();
    cs.add_group(ConstraintGroup{std::move(nodes), cap});
  }
  return cs;
}

bool ConstraintSet::satisfied(const Hypergraph& g, const Partition& p) const {
  return first_violated(g, p) == groups_.size();
}

std::size_t ConstraintSet::first_violated(const Hypergraph& g,
                                          const Partition& p) const {
  std::vector<Weight> in_part(p.k());
  for (std::size_t j = 0; j < groups_.size(); ++j) {
    std::fill(in_part.begin(), in_part.end(), Weight{0});
    for (const NodeId v : groups_[j].nodes) {
      const PartId q = p[v];
      if (q < p.k()) in_part[q] = sat_add(in_part[q], g.node_weight(v));
    }
    for (const Weight w : in_part) {
      if (w > groups_[j].capacity) return j;
    }
  }
  return groups_.size();
}

}  // namespace hp
