#include "hyperpart/core/metrics.hpp"

#include <cstdint>
#include <vector>

namespace hp {

const char* to_string(CostMetric m) noexcept {
  switch (m) {
    case CostMetric::kCutNet:
      return "cut-net";
    case CostMetric::kConnectivity:
      return "connectivity";
  }
  return "?";
}

namespace {

/// Count the distinct parts appearing in e. λ_e is rarely large, so a
/// linear scan over a small stack buffer beats hashing; once more than 64
/// distinct parts show up, switch to a dense seen-array over [0, k) (the
/// ConnectivityTracker counting scheme) so membership tests stay O(1)
/// instead of the former O(λ) overflow scan.
[[nodiscard]] PartId count_distinct_parts(const Hypergraph& g,
                                          const Partition& p, EdgeId e) {
  constexpr PartId kSmall = 64;
  PartId distinct[kSmall];
  PartId count = 0;
  std::vector<std::uint8_t> seen;  // dense [0, k) marks, large-λ edges only
  for (const NodeId v : g.pins(e)) {
    const PartId q = p[v];
    if (q >= p.k()) continue;  // unassigned
    if (seen.empty()) {
      bool found = false;
      for (PartId i = 0; i < count; ++i) {
        if (distinct[i] == q) {
          found = true;
          break;
        }
      }
      if (found) continue;
      if (count < kSmall) {
        distinct[count++] = q;
        continue;
      }
      seen.assign(p.k(), 0);
      for (PartId i = 0; i < kSmall; ++i) seen[distinct[i]] = 1;
    }
    if (!seen[q]) {
      seen[q] = 1;
      ++count;
    }
  }
  return count;
}

}  // namespace

PartId lambda(const Hypergraph& g, const Partition& p, EdgeId e) {
  return count_distinct_parts(g, p, e);
}

bool is_cut(const Hypergraph& g, const Partition& p, EdgeId e) {
  // Cut queries need only "≥ 2 distinct parts": stop at the first pin whose
  // part differs from the first assigned pin's, instead of counting λ_e.
  PartId first = kInvalidPart;
  for (const NodeId v : g.pins(e)) {
    const PartId q = p[v];
    if (q >= p.k()) continue;  // unassigned
    if (first == kInvalidPart) {
      first = q;
    } else if (q != first) {
      return true;
    }
  }
  return false;
}

Weight cost(const Hypergraph& g, const Partition& p, CostMetric metric) {
  Weight total = 0;
  if (metric == CostMetric::kCutNet) {
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      if (is_cut(g, p, e)) total += g.edge_weight(e);
    }
    return total;
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const PartId l = lambda(g, p, e);
    if (l <= 1) continue;
    total += g.edge_weight(e) * static_cast<Weight>(l - 1);
  }
  return total;
}

std::vector<EdgeId> cut_edges(const Hypergraph& g, const Partition& p) {
  std::vector<EdgeId> out;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (is_cut(g, p, e)) out.push_back(e);
  }
  return out;
}

Weight sum_external_degrees(const Hypergraph& g, const Partition& p) {
  Weight total = 0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const PartId l = lambda(g, p, e);
    if (l > 1) total += g.edge_weight(e) * static_cast<Weight>(l);
  }
  return total;
}

}  // namespace hp
