#include "hyperpart/core/metrics.hpp"

#include <cstdint>
#include <vector>

namespace hp {

const char* to_string(CostMetric m) noexcept {
  switch (m) {
    case CostMetric::kCutNet:
      return "cut-net";
    case CostMetric::kConnectivity:
      return "connectivity";
  }
  return "?";
}

PartId lambda(const Hypergraph& g, const Partition& p, EdgeId e) {
  return lambda_of(g, p, e);
}

bool is_cut(const Hypergraph& g, const Partition& p, EdgeId e) {
  return is_cut_of(g, p, e);
}

Weight cost(const Hypergraph& g, const Partition& p, CostMetric metric) {
  return cost_of(g, p, metric);
}

std::vector<EdgeId> cut_edges(const Hypergraph& g, const Partition& p) {
  std::vector<EdgeId> out;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (is_cut(g, p, e)) out.push_back(e);
  }
  return out;
}

Weight sum_external_degrees(const Hypergraph& g, const Partition& p) {
  Weight total = 0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const PartId l = lambda(g, p, e);
    if (l > 1) {
      total = sat_add(total, sat_mul(g.edge_weight(e),
                                     static_cast<Weight>(l)));
    }
  }
  return total;
}

}  // namespace hp
