#include "hyperpart/core/metrics.hpp"

#include <algorithm>

namespace hp {

const char* to_string(CostMetric m) noexcept {
  switch (m) {
    case CostMetric::kCutNet:
      return "cut-net";
    case CostMetric::kConnectivity:
      return "connectivity";
  }
  return "?";
}

namespace {

/// Collect the distinct parts appearing in e into a small stack buffer; λ_e
/// is rarely large, so a linear scan over distinct parts beats hashing.
[[nodiscard]] PartId count_distinct_parts(const Hypergraph& g,
                                          const Partition& p, EdgeId e) {
  PartId distinct[64];
  PartId count = 0;
  std::vector<PartId> overflow;
  for (const NodeId v : g.pins(e)) {
    const PartId q = p[v];
    if (q >= p.k()) continue;  // unassigned
    bool seen = false;
    for (PartId i = 0; i < std::min<PartId>(count, 64); ++i) {
      if (distinct[i] == q) {
        seen = true;
        break;
      }
    }
    if (!seen && count >= 64) {
      seen = std::find(overflow.begin(), overflow.end(), q) != overflow.end();
    }
    if (!seen) {
      if (count < 64) {
        distinct[count] = q;
      } else {
        overflow.push_back(q);
      }
      ++count;
    }
  }
  return count;
}

}  // namespace

PartId lambda(const Hypergraph& g, const Partition& p, EdgeId e) {
  return count_distinct_parts(g, p, e);
}

bool is_cut(const Hypergraph& g, const Partition& p, EdgeId e) {
  return lambda(g, p, e) > 1;
}

Weight cost(const Hypergraph& g, const Partition& p, CostMetric metric) {
  Weight total = 0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const PartId l = lambda(g, p, e);
    if (l <= 1) continue;
    total += metric == CostMetric::kCutNet
                 ? g.edge_weight(e)
                 : g.edge_weight(e) * static_cast<Weight>(l - 1);
  }
  return total;
}

std::vector<EdgeId> cut_edges(const Hypergraph& g, const Partition& p) {
  std::vector<EdgeId> out;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (is_cut(g, p, e)) out.push_back(e);
  }
  return out;
}

Weight sum_external_degrees(const Hypergraph& g, const Partition& p) {
  Weight total = 0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const PartId l = lambda(g, p, e);
    if (l > 1) total += g.edge_weight(e) * static_cast<Weight>(l);
  }
  return total;
}

}  // namespace hp
