#include "hyperpart/reduction/mpu.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <unordered_set>

#include "hyperpart/core/builder.hpp"
#include "hyperpart/reduction/blocks.hpp"
#include "hyperpart/util/rng.hpp"

namespace hp {

std::uint32_t union_size(const MpuInstance& inst,
                         const std::vector<std::uint32_t>& chosen) {
  std::vector<bool> seen(inst.num_elements, false);
  std::uint32_t count = 0;
  for (const std::uint32_t s : chosen) {
    for (const NodeId v : inst.sets[s]) {
      if (!seen[v]) {
        seen[v] = true;
        ++count;
      }
    }
  }
  return count;
}

namespace {

std::optional<std::uint32_t> enumerate(const MpuInstance& inst,
                                       std::vector<std::uint32_t>* collect) {
  const auto m = static_cast<std::uint32_t>(inst.sets.size());
  if (inst.p > m) return std::nullopt;
  std::uint32_t best = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> chosen;
  const auto recurse = [&](auto&& self, std::uint32_t next) -> void {
    if (chosen.size() == inst.p) {
      const std::uint32_t u = union_size(inst, chosen);
      if (u < best) {
        best = u;
        if (collect != nullptr) *collect = chosen;
      }
      return;
    }
    const auto need = inst.p - static_cast<std::uint32_t>(chosen.size());
    for (std::uint32_t s = next; s < m && m - s >= need; ++s) {
      chosen.push_back(s);
      self(self, s + 1);
      chosen.pop_back();
    }
  };
  recurse(recurse, 0);
  return best;
}

}  // namespace

std::optional<std::uint32_t> mpu_optimum(const MpuInstance& inst) {
  return enumerate(inst, nullptr);
}

std::optional<std::vector<std::uint32_t>> mpu_optimal_sets(
    const MpuInstance& inst) {
  std::vector<std::uint32_t> chosen;
  if (!enumerate(inst, &chosen)) return std::nullopt;
  return chosen;
}

MpuInstance random_mpu(NodeId elements, std::uint32_t sets,
                       std::uint32_t min_size, std::uint32_t max_size,
                       std::uint32_t p, std::uint64_t seed) {
  if (min_size < 1 || min_size > max_size || max_size > elements) {
    throw std::invalid_argument("random_mpu: bad set sizes");
  }
  Rng rng{seed};
  MpuInstance inst;
  inst.num_elements = elements;
  inst.p = p;
  for (std::uint32_t s = 0; s < sets; ++s) {
    const auto size =
        static_cast<std::uint32_t>(rng.next_in(min_size, max_size));
    std::unordered_set<NodeId> members;
    while (members.size() < size) {
      members.insert(static_cast<NodeId>(rng.next_below(elements)));
    }
    inst.sets.emplace_back(members.begin(), members.end());
  }
  return inst;
}

MpuReduction build_mpu_reduction(const MpuInstance& inst,
                                 std::uint32_t eps_num,
                                 std::uint32_t eps_den) {
  if (eps_den == 0 || eps_num >= eps_den) {
    throw std::invalid_argument("build_mpu_reduction: need 0 <= eps < 1");
  }
  const auto n = static_cast<std::uint64_t>(inst.num_elements);
  const auto num_sets = static_cast<std::uint64_t>(inst.sets.size());
  if (inst.p > num_sets) {
    throw std::invalid_argument("build_mpu_reduction: p > number of sets");
  }

  MpuReduction red;
  red.instance = inst;
  // Blocks must dominate every reasonable cut (≤ n main hyperedges cut).
  red.block_size = static_cast<NodeId>(std::max<std::uint64_t>(n + 1, 3));
  const std::uint64_t m = red.block_size;
  const std::uint64_t s = num_sets * m + n;

  const std::uint64_t unit = 2ull * eps_den;
  const auto lower = [&](std::uint64_t total) {
    return total / 2 - total / 2 * eps_num / eps_den;
  };
  std::uint64_t n_prime =
      ((2 * (s + 4 + inst.p * m) * eps_den / (eps_den - eps_num)) / unit + 1) *
      unit;
  while (lower(n_prime) < s + 4 + inst.p * m) n_prime += unit;
  const std::uint64_t min_side = lower(n_prime);
  const std::uint64_t capacity = n_prime - min_side;
  const std::uint64_t a_prime_size = min_side - inst.p * m;
  const std::uint64_t a_size = n_prime - s - a_prime_size;
  if (a_prime_size < 3 || a_size < 3) {
    throw std::logic_error("build_mpu_reduction: anchor sizing failed");
  }

  HypergraphBuilder b;
  red.element_nodes.resize(n);
  for (std::uint64_t v = 0; v < n; ++v) red.element_nodes[v] = b.add_node();
  for (std::uint64_t e = 0; e < num_sets; ++e) {
    red.set_blocks.push_back(add_block(b, red.block_size));
  }
  red.block_a = add_block(b, static_cast<NodeId>(a_size));
  red.block_a_prime = add_block(b, static_cast<NodeId>(a_prime_size));

  // Main hyperedge per element v: b_v plus a distinct port in every
  // incident set block (up to n ports per block — Appendix C.5's remark).
  for (std::uint64_t v = 0; v < n; ++v) {
    std::vector<NodeId> pins{red.element_nodes[v]};
    for (std::uint64_t e = 0; e < num_sets; ++e) {
      const auto& members = inst.sets[e];
      const auto it =
          std::find(members.begin(), members.end(), static_cast<NodeId>(v));
      if (it != members.end()) {
        const auto port = static_cast<std::size_t>(it - members.begin()) %
                          red.set_blocks[e].size();
        pins.push_back(red.set_blocks[e][port]);
      }
    }
    b.add_edge(std::move(pins));
  }
  for (std::uint64_t v = 0; v < n; ++v) {
    for (std::uint64_t i = 0; i < m; ++i) {
      b.add_edge2(red.block_a[i % a_size], red.element_nodes[v]);
    }
  }

  red.graph = b.build();
  if (red.graph.num_nodes() != n_prime) {
    throw std::logic_error("build_mpu_reduction: size accounting failed");
  }
  red.balance = BalanceConstraint::with_capacity(
      2, static_cast<Weight>(capacity),
      static_cast<double>(eps_num) / eps_den);
  red.min_part_weight = static_cast<Weight>(min_side);
  return red;
}

Partition MpuReduction::partition_from_sets(
    const std::vector<std::uint32_t>& red_sets) const {
  if (red_sets.size() != instance.p) {
    throw std::invalid_argument("partition_from_sets: need exactly p sets");
  }
  Partition p(graph.num_nodes(), 2);
  for (NodeId v = 0; v < graph.num_nodes(); ++v) p.assign(v, 1);
  for (const NodeId v : block_a_prime) p.assign(v, 0);
  for (const std::uint32_t s : red_sets) {
    for (const NodeId v : set_blocks[s]) p.assign(v, 0);
  }
  return p;
}

}  // namespace hp
