#include "hyperpart/reduction/scheduling_hardness.hpp"

#include <stdexcept>
#include <utility>
#include <vector>

namespace hp {

namespace {

constexpr PartId kRed = 0;
constexpr PartId kBlue = 1;

}  // namespace

MuPInstance level_order_mu_p_instance(const ThreePartitionInstance& inst) {
  const std::uint32_t b = inst.target;
  std::uint64_t sum = 0;
  for (const std::uint32_t a : inst.numbers) sum += a;
  if (b == 0 || sum % b != 0) {
    throw std::invalid_argument(
        "level_order_mu_p_instance: sum of numbers must be a multiple of b");
  }
  const auto t = static_cast<std::uint32_t>(sum / b);
  std::vector<std::pair<NodeId, NodeId>> edges;
  std::vector<PartId> color;

  // Main path: alternating blocks of b blue then b red, 2t·b nodes.
  NodeId next = 0;
  for (std::uint32_t block = 0; block < 2 * t; ++block) {
    for (std::uint32_t i = 0; i < b; ++i) {
      if (next > 0) edges.emplace_back(next - 1, next);
      color.push_back(block % 2 == 0 ? kBlue : kRed);
      ++next;
    }
  }
  // One path per number: a_i red then a_i blue.
  for (const std::uint32_t a : inst.numbers) {
    const NodeId first = next;
    for (std::uint32_t i = 0; i < 2 * a; ++i) {
      if (next > first) edges.emplace_back(next - 1, next);
      color.push_back(i < a ? kRed : kBlue);
      ++next;
    }
  }

  MuPInstance out;
  out.dag = Dag::from_edges(next, std::move(edges));
  out.partition = Partition{std::move(color), 2};
  out.target_makespan = 2 * t * b;  // n / 2
  return out;
}

MuPInstance out_tree_mu_p_instance(const ThreePartitionInstance& inst) {
  MuPInstance base = level_order_mu_p_instance(inst);
  // Prepend a common source (node ids shift by 1).
  const NodeId n = base.dag.num_nodes();
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (const auto& [u, v] : base.dag.edge_list()) {
    edges.emplace_back(u + 1, v + 1);
  }
  for (NodeId v = 0; v < n; ++v) {
    if (base.dag.in_degree(v) == 0) edges.emplace_back(0, v + 1);
  }
  std::vector<PartId> color(n + 1);
  color[0] = kBlue;
  for (NodeId v = 0; v < n; ++v) color[v + 1] = base.partition[v];

  MuPInstance out;
  out.dag = Dag::from_edges(n + 1, std::move(edges));
  out.partition = Partition{std::move(color), 2};
  out.target_makespan = base.target_makespan + 1;
  return out;
}

MuPInstance bounded_height_mu_p_instance(const ColoringInstance& graph,
                                         std::uint32_t clique_size) {
  const NodeId nv = graph.num_vertices;
  const auto ne = static_cast<std::uint32_t>(graph.edges.size());
  const std::uint32_t pairs = clique_size * (clique_size - 1) / 2;
  if (clique_size > nv || pairs > ne) {
    throw std::invalid_argument(
        "bounded_height_mu_p_instance: clique size out of range");
  }

  std::vector<std::pair<NodeId, NodeId>> edges;
  std::vector<PartId> color;
  // Vertex nodes (blue), then edge nodes (red) with incidence arcs.
  for (NodeId v = 0; v < nv; ++v) color.push_back(kBlue);
  for (std::uint32_t e = 0; e < ne; ++e) {
    const NodeId edge_node = nv + e;
    color.push_back(kRed);
    edges.emplace_back(graph.edges[e].first, edge_node);
    edges.emplace_back(graph.edges[e].second, edge_node);
  }
  // Serial component C: four fully-connected layers
  // (L red | C(L,2) blue | |V|−L red | |E|−C(L,2) blue).
  const std::uint32_t sizes[4] = {clique_size, pairs, nv - clique_size,
                                  ne - pairs};
  const PartId layer_color[4] = {kRed, kBlue, kRed, kBlue};
  std::vector<NodeId> prev_layer;
  NodeId next = nv + ne;
  for (int layer = 0; layer < 4; ++layer) {
    std::vector<NodeId> current;
    for (std::uint32_t i = 0; i < sizes[layer]; ++i) {
      color.push_back(layer_color[layer]);
      for (const NodeId u : prev_layer) edges.emplace_back(u, next);
      current.push_back(next++);
    }
    if (!current.empty()) prev_layer = std::move(current);
  }

  MuPInstance out;
  out.dag = Dag::from_edges(next, std::move(edges));
  out.partition = Partition{std::move(color), 2};
  out.target_makespan = nv + ne;
  return out;
}

bool has_clique(const ColoringInstance& graph, std::uint32_t size) {
  const NodeId n = graph.num_vertices;
  std::vector<std::vector<bool>> adj(n, std::vector<bool>(n, false));
  for (const auto& [u, v] : graph.edges) {
    adj[u][v] = true;
    adj[v][u] = true;
  }
  std::vector<NodeId> chosen;
  const auto recurse = [&](auto&& self, NodeId start) -> bool {
    if (chosen.size() == size) return true;
    for (NodeId v = start; v < n; ++v) {
      bool ok = true;
      for (const NodeId u : chosen) {
        if (!adj[u][v]) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      chosen.push_back(v);
      if (self(self, v + 1)) return true;
      chosen.pop_back();
    }
    return false;
  };
  return recurse(recurse, 0);
}

}  // namespace hp
