#include "hyperpart/reduction/multiconstraint_reduction.hpp"

#include <stdexcept>

#include "hyperpart/reduction/blocks.hpp"

namespace hp {

MulticonstraintReduction reduce_multiconstraint_to_section(
    const Hypergraph& g, const std::vector<std::vector<NodeId>>& classes,
    PartId k) {
  const NodeId n = g.num_nodes();
  std::vector<std::uint32_t> class_of(n, 0);  // 0 = unconstrained
  NodeId unconstrained = n;
  for (std::size_t j = 0; j < classes.size(); ++j) {
    if (classes[j].size() % k != 0) {
      throw std::invalid_argument(
          "reduce_multiconstraint_to_section: class size not divisible by k");
    }
    for (const NodeId v : classes[j]) {
      if (class_of[v] != 0) {
        throw std::invalid_argument(
            "reduce_multiconstraint_to_section: classes must be disjoint");
      }
      class_of[v] = static_cast<std::uint32_t>(j + 1);
      --unconstrained;
    }
  }

  // Weights m_i = n0^i with n0 = (number of weight-1 units) + 1, so class
  // i dominates the total weight of everything lighter (the lemma's block
  // sizing). Filler nodes ((k−1) per unconstrained node) let the
  // unconstrained weight-1 mass balance itself in any configuration.
  const std::uint64_t fillers =
      static_cast<std::uint64_t>(k - 1) * unconstrained;
  // n0 exceeds the total unit count, so (anything of weight < m_j) sums to
  // strictly less than m_j — the lemma's domination property.
  const std::uint64_t n0 = n + fillers + 1;
  std::vector<Weight> weight_of_class(classes.size() + 1, 1);
  for (std::size_t j = 1; j <= classes.size(); ++j) {
    const auto prev = static_cast<std::uint64_t>(weight_of_class[j - 1]);
    const std::uint64_t w = j == 1 ? n0 : prev * n0;
    if (w > (1ull << 56)) {
      throw std::invalid_argument(
          "reduce_multiconstraint_to_section: too many classes (weight "
          "overflow)");
    }
    weight_of_class[j] = static_cast<Weight>(w);
  }

  Hypergraph reduced = pad_with_isolated_nodes(g, static_cast<NodeId>(fillers));
  std::vector<Weight> weights(reduced.num_nodes(), 1);
  for (NodeId v = 0; v < n; ++v) weights[v] = weight_of_class[class_of[v]];
  reduced.set_node_weights(std::move(weights));

  MulticonstraintReduction red;
  red.balance = BalanceConstraint::for_total_weight(
      reduced.total_node_weight(), k, 0.0);
  red.graph = std::move(reduced);
  red.original_nodes = n;
  return red;
}

}  // namespace hp
