#include "hyperpart/reduction/layerwise_reduction.hpp"

#include <stdexcept>
#include <utility>

namespace hp {

namespace {

/// Builder for the parallel-path DAG: units with a base node per layer and
/// optional widened layers (extra nodes between the neighbouring base
/// nodes).
struct UnitBuilder {
  std::uint32_t num_layers;
  NodeId next_node = 0;
  std::vector<std::pair<NodeId, NodeId>> edges;
  std::vector<std::vector<NodeId>> unit_nodes;   // all nodes per unit
  std::vector<std::vector<NodeId>> base;         // base[unit][layer]
  std::vector<std::vector<NodeId>> layer_nodes;  // nodes per layer

  explicit UnitBuilder(std::uint32_t layers) : num_layers(layers) {
    layer_nodes.resize(layers);
  }

  std::uint32_t add_unit() {
    const auto unit = static_cast<std::uint32_t>(base.size());
    base.emplace_back();
    unit_nodes.emplace_back();
    for (std::uint32_t t = 0; t < num_layers; ++t) {
      const NodeId v = next_node++;
      base[unit].push_back(v);
      unit_nodes[unit].push_back(v);
      layer_nodes[t].push_back(v);
      if (t > 0) edges.emplace_back(base[unit][t - 1], v);
    }
    return unit;
  }

  /// Widen `unit` at layer t (1 ≤ t ≤ ℓ−2) by one extra node.
  void add_extra(std::uint32_t unit, std::uint32_t t) {
    const NodeId x = next_node++;
    unit_nodes[unit].push_back(x);
    layer_nodes[t].push_back(x);
    edges.emplace_back(base[unit][t - 1], x);
    edges.emplace_back(x, base[unit][t + 1]);
  }
};

}  // namespace

LayerwiseReduction build_layerwise_reduction(const ColoringInstance& inst) {
  LayerwiseReduction red;
  red.instance = inst;
  const NodeId nv = inst.num_vertices;
  const auto ne = static_cast<std::uint32_t>(inst.edges.size());

  // Layers: 0 plain | 1 R≠B | 2 .. 2+C−1 constraints | final plain.
  const std::uint32_t num_constraints = 2 * nv + 3 * ne;
  const std::uint32_t ell = num_constraints + 3;
  red.num_layers = ell;
  UnitBuilder ub(ell);

  // Choice units and controls.
  red.choice_unit.resize(nv);
  for (NodeId v = 0; v < nv; ++v) {
    for (int i = 0; i < 3; ++i) red.choice_unit[v][i] = ub.add_unit();
  }
  red.control_red = ub.add_unit();
  red.control_blue = ub.add_unit();

  // Layer 1: R and B widened by one extra each (forces R ≠ B).
  ub.add_extra(red.control_red, 1);
  ub.add_extra(red.control_blue, 1);

  // Constraint layers. Each gets its own pad units (extra in that layer
  // only) and control extras sized so the exact half/half balance encodes
  // the desired red-count window on the constrained units.
  red.layer_spec.assign(ell, std::nullopt);
  red.pads.assign(ell, {});
  std::uint32_t t = 2;
  const auto add_constraint_layer =
      [&](std::vector<std::uint32_t> s_units, std::uint32_t target,
          std::uint32_t slack, std::uint32_t r_extras,
          std::uint32_t b_extras) {
        for (const std::uint32_t u : s_units) ub.add_extra(u, t);
        for (std::uint32_t i = 0; i < slack; ++i) {
          const std::uint32_t pad = ub.add_unit();
          ub.add_extra(pad, t);
          red.pads[t].push_back(pad);
        }
        for (std::uint32_t i = 0; i < r_extras; ++i) {
          ub.add_extra(red.control_red, t);
        }
        for (std::uint32_t i = 0; i < b_extras; ++i) {
          ub.add_extra(red.control_blue, t);
        }
        LayerwiseReduction::LayerSpec spec;
        spec.s_units = std::move(s_units);
        spec.target = target;
        spec.slack = slack;
        red.layer_spec[t] = std::move(spec);
        ++t;
      };

  for (NodeId v = 0; v < nv; ++v) {
    const auto& cu = red.choice_unit[v];
    // ≤ 1 color chosen: s_red + pads_red = 1 with 1 pad (r=2, b=0).
    add_constraint_layer({cu[0], cu[1], cu[2]}, 1, 1, 2, 0);
    // ≥ 1 color chosen: s_red + pads_red = 3 with 2 pads (r=0, b=1).
    add_constraint_layer({cu[0], cu[1], cu[2]}, 3, 2, 0, 1);
  }
  for (std::uint32_t e = 0; e < ne; ++e) {
    const auto [u, v] = inst.edges[e];
    for (int i = 0; i < 3; ++i) {
      // Endpoints cannot both pick color i: s_red + pads_red = 1, 1 pad
      // (r=1, b=0).
      add_constraint_layer({red.choice_unit[u][i], red.choice_unit[v][i]}, 1,
                           1, 1, 0);
    }
  }

  // Fillers: enough to absorb any red count of the other units, with an
  // even total unit count.
  const auto meaningful = static_cast<std::uint32_t>(3 * nv + 2);
  std::uint32_t total_pads = 0;
  for (const auto& pads : red.pads) {
    total_pads += static_cast<std::uint32_t>(pads.size());
  }
  std::uint32_t fillers = meaningful + total_pads;
  if ((meaningful + total_pads + fillers) % 2 != 0) ++fillers;
  for (std::uint32_t i = 0; i < fillers; ++i) {
    red.filler_units.push_back(ub.add_unit());
  }

  // Materialize.
  red.dag = Dag::from_edges(ub.next_node, std::move(ub.edges));
  red.hyperdag = to_hyperdag(red.dag);
  red.unit_nodes = std::move(ub.unit_nodes);
  red.layers = red.dag.earliest_layers();
  for (std::uint32_t layer = 0; layer < ell; ++layer) {
    ConstraintGroup group;
    group.nodes = ub.layer_nodes[layer];
    if (group.nodes.size() % 2 != 0) {
      throw std::logic_error("layerwise reduction: odd layer size");
    }
    group.capacity = static_cast<Weight>(group.nodes.size() / 2);
    red.layer_constraints.add_group(std::move(group));
  }
  return red;
}

Partition LayerwiseReduction::partition_from_coloring(
    const std::vector<std::uint8_t>& coloring) const {
  const auto num_units = static_cast<std::uint32_t>(unit_nodes.size());
  std::vector<PartId> unit_color(num_units, 1);  // blue default
  unit_color[control_red] = 0;
  std::uint32_t red_units = 1;  // R
  for (NodeId v = 0; v < instance.num_vertices; ++v) {
    if (coloring[v] > 2) {
      throw std::invalid_argument("partition_from_coloring: bad color");
    }
    unit_color[choice_unit[v][coloring[v]]] = 0;
    ++red_units;
  }
  // Pads: red count forced per layer.
  for (std::uint32_t t = 0; t < num_layers; ++t) {
    if (!layer_spec[t]) continue;
    const auto& spec = *layer_spec[t];
    std::uint32_t s_red = 0;
    for (const std::uint32_t u : spec.s_units) s_red += unit_color[u] == 0;
    if (s_red > spec.target || spec.target - s_red > spec.slack) {
      throw std::invalid_argument(
          "partition_from_coloring: coloring violates a constraint layer");
    }
    const std::uint32_t pad_red = spec.target - s_red;
    for (std::uint32_t i = 0; i < pad_red; ++i) {
      unit_color[pads[t][i]] = 0;
      ++red_units;
    }
  }
  // Fillers: fix the global half/half unit balance.
  const std::uint32_t half = num_units / 2;
  if (red_units > half || half - red_units > filler_units.size()) {
    throw std::invalid_argument(
        "partition_from_coloring: filler range exceeded");
  }
  for (std::uint32_t i = 0; i < half - red_units; ++i) {
    unit_color[filler_units[i]] = 0;
  }

  Partition p(dag.num_nodes(), 2);
  for (std::uint32_t u = 0; u < num_units; ++u) {
    for (const NodeId v : unit_nodes[u]) p.assign(v, unit_color[u]);
  }
  return p;
}

bool LayerwiseReduction::cost0_feasible() const {
  const NodeId nv = instance.num_vertices;
  const std::uint32_t bits = 3 * nv;
  if (bits > 24) {
    throw std::invalid_argument("cost0_feasible: instance too large");
  }
  const auto num_units = static_cast<std::uint32_t>(unit_nodes.size());
  const std::uint32_t half = num_units / 2;

  // WLOG R is red (the layer-exact constraints are color-symmetric, so a
  // feasible solution with R blue maps to the complemented choice pattern).
  std::vector<PartId> unit_color(num_units);
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << bits); ++mask) {
    std::uint32_t red_units = 1;  // R
    bool ok = true;
    std::vector<std::uint8_t> choice_red(bits);
    for (std::uint32_t b = 0; b < bits; ++b) {
      choice_red[b] = (mask >> b) & 1;
      red_units += choice_red[b];
    }
    // Per constraint layer: the forced pad count must be within range.
    for (std::uint32_t t = 0; t < num_layers && ok; ++t) {
      if (!layer_spec[t]) continue;
      const auto& spec = *layer_spec[t];
      std::uint32_t s_red = 0;
      for (const std::uint32_t u : spec.s_units) {
        s_red += choice_red[u];  // choice units have indices 0..3nv−1
      }
      if (s_red > spec.target || spec.target - s_red > spec.slack) {
        ok = false;
        break;
      }
      red_units += spec.target - s_red;
    }
    if (!ok) continue;
    // Fillers must be able to absorb the remainder.
    if (red_units <= half && half - red_units <= filler_units.size()) {
      return true;
    }
  }
  return false;
}

}  // namespace hp
