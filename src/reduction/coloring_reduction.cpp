#include "hyperpart/reduction/coloring_reduction.hpp"

#include <array>
#include <stdexcept>
#include <unordered_set>

#include "hyperpart/core/builder.hpp"
#include "hyperpart/reduction/blocks.hpp"
#include "hyperpart/util/rng.hpp"

namespace hp {

std::optional<std::vector<std::uint8_t>> three_color(
    const ColoringInstance& inst) {
  std::vector<std::vector<NodeId>> adj(inst.num_vertices);
  for (const auto& [u, v] : inst.edges) {
    adj[u].push_back(v);
    adj[v].push_back(u);
  }
  std::vector<std::uint8_t> color(inst.num_vertices, 3);
  const auto recurse = [&](auto&& self, NodeId v) -> bool {
    if (v == inst.num_vertices) return true;
    // Symmetry breaking: vertex 0 may only take color 0, vertex 1 colors
    // {0, 1}; harmless and prunes the search.
    const std::uint8_t limit = v == 0 ? 1 : (v == 1 ? 2 : 3);
    for (std::uint8_t c = 0; c < limit; ++c) {
      bool ok = true;
      for (const NodeId u : adj[v]) {
        if (u < v && color[u] == c) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      color[v] = c;
      if (self(self, v + 1)) return true;
    }
    color[v] = 3;
    return false;
  };
  if (!recurse(recurse, 0)) return std::nullopt;
  return color;
}

ColoringInstance random_coloring_instance(NodeId vertices,
                                          std::uint32_t edges,
                                          std::uint64_t seed) {
  if (static_cast<std::uint64_t>(edges) * 2 >
      static_cast<std::uint64_t>(vertices) * (vertices - 1)) {
    throw std::invalid_argument(
        "random_coloring_instance: more edges than C(n,2)");
  }
  Rng rng{seed};
  ColoringInstance inst;
  inst.num_vertices = vertices;
  std::unordered_set<std::uint64_t> taken;
  while (inst.edges.size() < edges) {
    auto u = static_cast<NodeId>(rng.next_below(vertices));
    auto v = static_cast<NodeId>(rng.next_below(vertices));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    if (taken.insert((static_cast<std::uint64_t>(u) << 32) | v).second) {
      inst.edges.emplace_back(u, v);
    }
  }
  return inst;
}

ColoringInstance planted_3colorable(NodeId vertices, std::uint32_t edges,
                                    std::uint64_t seed) {
  Rng rng{seed};
  ColoringInstance inst;
  inst.num_vertices = vertices;
  std::vector<std::uint8_t> plant(vertices);
  for (NodeId v = 0; v < vertices; ++v) {
    plant[v] = static_cast<std::uint8_t>(rng.next_below(3));
  }
  std::unordered_set<std::uint64_t> taken;
  std::uint32_t attempts = 0;
  while (inst.edges.size() < edges && attempts < 100 * edges + 100) {
    ++attempts;
    auto u = static_cast<NodeId>(rng.next_below(vertices));
    auto v = static_cast<NodeId>(rng.next_below(vertices));
    if (u == v || plant[u] == plant[v]) continue;
    if (u > v) std::swap(u, v);
    if (taken.insert((static_cast<std::uint64_t>(u) << 32) | v).second) {
      inst.edges.emplace_back(u, v);
    }
  }
  return inst;
}

ColoringReduction build_coloring_reduction(const ColoringInstance& inst) {
  ColoringReduction red;
  HypergraphBuilder b;
  FixedColorPool pool(b);

  const NodeId n = inst.num_vertices;
  // w_nodes[v][i][slot]: one node per incident edge slot of v for color i.
  std::vector<std::vector<NodeId>> incident(n);
  for (std::uint32_t e = 0; e < inst.edges.size(); ++e) {
    incident[inst.edges[e].first].push_back(e);
    incident[inst.edges[e].second].push_back(e);
  }
  // w_of[v][i] maps edge-slot index to node id.
  std::vector<std::array<std::vector<NodeId>, 3>> w_of(n);
  std::vector<std::array<NodeId, 3>> w_hat1(n);
  red.selector.assign(n, std::vector<NodeId>(3));

  for (NodeId v = 0; v < n; ++v) {
    for (int i = 0; i < 3; ++i) {
      for (std::size_t s = 0; s < incident[v].size(); ++s) {
        w_of[v][i].push_back(b.add_node());
      }
      w_hat1[v][i] = b.add_node();
      red.selector[v][i] = b.add_node();  // ŵ_{v,i,2}
    }
  }
  // Gadget hyperedge per (v, i).
  for (NodeId v = 0; v < n; ++v) {
    for (int i = 0; i < 3; ++i) {
      std::vector<NodeId> pins = w_of[v][i];
      pins.push_back(w_hat1[v][i]);
      pins.push_back(red.selector[v][i]);
      b.add_edge(std::move(pins));
    }
  }

  // Per vertex: ≤ 1 chosen color, ≥ 1 chosen color.
  for (NodeId v = 0; v < n; ++v) {
    pool.constrain_red_count(
        red.constraints, {w_hat1[v][0], w_hat1[v][1], w_hat1[v][2]}, 1,
        RedCount::kAtMost);
    pool.constrain_red_count(
        red.constraints,
        {red.selector[v][0], red.selector[v][1], red.selector[v][2]}, 1,
        RedCount::kAtLeast);
  }
  // Per edge and color: endpoints cannot both pick color i.
  for (std::uint32_t e = 0; e < inst.edges.size(); ++e) {
    const auto [u, v] = inst.edges[e];
    // Slot of e within each endpoint's incident list.
    const auto slot = [&](NodeId vertex) {
      for (std::size_t s = 0; s < incident[vertex].size(); ++s) {
        if (incident[vertex][s] == e) return s;
      }
      return incident[vertex].size();
    };
    const std::size_t su = slot(u);
    const std::size_t sv = slot(v);
    for (int i = 0; i < 3; ++i) {
      pool.constrain_red_count(red.constraints,
                               {w_of[u][i][su], w_of[v][i][sv]}, 1,
                               RedCount::kAtMost);
    }
  }
  pool.finalize(red.constraints);

  red.graph = b.build();
  red.balance = BalanceConstraint::with_capacity(
      2, static_cast<Weight>(red.graph.num_nodes()));
  return red;
}

}  // namespace hp
