#include "hyperpart/reduction/hyperdag_hardness.hpp"

#include <stdexcept>

#include "hyperpart/core/builder.hpp"

namespace hp {

HyperdagHardnessReduction build_hyperdag_hardness(const Hypergraph& original,
                                                  PartId k,
                                                  std::uint32_t eps_num,
                                                  std::uint32_t eps_den) {
  if (eps_num == 0 || eps_den == 0) {
    throw std::invalid_argument("hyperdag_hardness: need eps > 0");
  }
  const std::uint64_t nv = original.num_nodes();
  const std::uint64_t ne = original.num_edges();
  if (nv == 0) throw std::invalid_argument("hyperdag_hardness: empty input");

  HyperdagHardnessReduction red;
  // m = m0 + L with m0 > L·|V| + |E| and L ≤ (k−1)·|E| (any larger cost is
  // trivial): splitting the last m0 nodes of a block costs > L.
  const std::uint64_t l_max = static_cast<std::uint64_t>(k - 1) * ne + 1;
  const std::uint64_t m = l_max * (nv + 1) + ne + l_max + 1;
  red.block_size = static_cast<NodeId>(m);

  HypergraphBuilder b;
  red.blocks.resize(nv);
  for (std::uint64_t v = 0; v < nv; ++v) {
    // Densest hyperDAG block: node i generates hyperedge {i, …, m−1}.
    const NodeId first = b.add_nodes(red.block_size);
    auto& block = red.blocks[v];
    block.resize(m);
    for (std::uint64_t i = 0; i < m; ++i) {
      block[i] = first + static_cast<NodeId>(i);
    }
    for (std::uint64_t i = 0; i + 1 < m; ++i) {
      std::vector<NodeId> pins(block.begin() +
                                   static_cast<std::ptrdiff_t>(i),
                               block.end());
      b.add_edge(std::move(pins));
    }
  }
  // Original hyperedges: last node of each member block + a light node
  // (the hyperedge's generator — keeps the whole graph a hyperDAG).
  for (EdgeId e = 0; e < ne; ++e) {
    std::vector<NodeId> pins;
    for (const NodeId v : original.pins(e)) {
      pins.push_back(red.blocks[v].back());
    }
    red.light.push_back(b.add_node());
    pins.push_back(red.light.back());
    b.add_edge(std::move(pins));
  }
  red.graph = b.build();

  // Capacity (1+ε′)·n′/k = m·⌊(1+ε)|V|/k⌋ + |E|: a part holds at most the
  // allowed number of blocks plus all light nodes.
  const auto original_cap =
      BalanceConstraint::for_total_weight(static_cast<Weight>(nv), k,
                                          static_cast<double>(eps_num) /
                                              eps_den)
          .capacity();
  red.balance = BalanceConstraint::with_capacity(
      k, static_cast<Weight>(m) * original_cap + static_cast<Weight>(ne));
  return red;
}

Partition HyperdagHardnessReduction::lift(const Hypergraph& original,
                                          const Partition& p) const {
  Partition out(graph.num_nodes(), p.k());
  for (NodeId v = 0; v < original.num_nodes(); ++v) {
    for (const NodeId x : blocks[v]) out.assign(x, p[v]);
  }
  for (EdgeId e = 0; e < original.num_edges(); ++e) {
    const auto pins = original.pins(e);
    out.assign(light[e], pins.empty() ? 0 : p[pins[0]]);
  }
  return out;
}

Partition HyperdagHardnessReduction::project(const Partition& p) const {
  Partition out(static_cast<NodeId>(blocks.size()), p.k());
  for (NodeId v = 0; v < blocks.size(); ++v) {
    out.assign(v, p[blocks[v].back()]);
  }
  return out;
}

}  // namespace hp
