#include "hyperpart/reduction/ovp.hpp"

#include <stdexcept>

#include "hyperpart/core/builder.hpp"
#include "hyperpart/reduction/blocks.hpp"
#include "hyperpart/util/rng.hpp"

namespace hp {

std::optional<std::pair<std::uint32_t, std::uint32_t>> find_orthogonal_pair(
    const OvpInstance& inst) {
  const auto m = static_cast<std::uint32_t>(inst.vectors.size());
  for (std::uint32_t i = 0; i < m; ++i) {
    for (std::uint32_t j = i + 1; j < m; ++j) {
      bool orthogonal = true;
      for (std::uint32_t d = 0; d < inst.dimensions; ++d) {
        if (inst.vectors[i][d] && inst.vectors[j][d]) {
          orthogonal = false;
          break;
        }
      }
      if (orthogonal) return std::make_pair(i, j);
    }
  }
  return std::nullopt;
}

OvpInstance random_ovp(std::uint32_t m, std::uint32_t dims, double density,
                       std::uint64_t seed) {
  Rng rng{seed};
  OvpInstance inst;
  inst.dimensions = dims;
  inst.vectors.assign(m, std::vector<bool>(dims, false));
  for (auto& vec : inst.vectors) {
    for (std::uint32_t d = 0; d < dims; ++d) vec[d] = rng.next_bool(density);
  }
  return inst;
}

OvpReduction build_ovp_reduction(const OvpInstance& inst) {
  const auto m = static_cast<std::uint32_t>(inst.vectors.size());
  const std::uint32_t dims = inst.dimensions;
  if (m < 2) throw std::invalid_argument("build_ovp_reduction: need m >= 2");

  OvpReduction red;
  HypergraphBuilder b;
  FixedColorPool pool(b);

  red.anchors.resize(m);
  red.dim_nodes.assign(m, {});
  for (std::uint32_t i = 0; i < m; ++i) {
    red.anchors[i] = b.add_node();
    red.dim_nodes[i].resize(dims);
    for (std::uint32_t j = 0; j < dims; ++j) {
      red.dim_nodes[i][j] = b.add_node();
    }
  }
  // Vector hyperedge: anchor plus the 1-coordinates' nodes.
  for (std::uint32_t i = 0; i < m; ++i) {
    std::vector<NodeId> pins{red.anchors[i]};
    for (std::uint32_t j = 0; j < dims; ++j) {
      if (inst.vectors[i][j]) pins.push_back(red.dim_nodes[i][j]);
    }
    b.add_edge(std::move(pins));
  }

  // Balance groups: at least 2 red anchors; per dimension j, at most 1 red
  // among the v_i^(j).
  pool.constrain_red_count(red.constraints, red.anchors, 2,
                           RedCount::kAtLeast);
  for (std::uint32_t j = 0; j < dims; ++j) {
    std::vector<NodeId> column(m);
    for (std::uint32_t i = 0; i < m; ++i) column[i] = red.dim_nodes[i][j];
    pool.constrain_red_count(red.constraints, std::move(column), 1,
                             RedCount::kAtMost);
  }
  pool.finalize(red.constraints);

  red.graph = b.build();
  // Loose single constraint: nothing beyond the groups.
  red.balance = BalanceConstraint::with_capacity(
      2, static_cast<Weight>(red.graph.num_nodes()));
  return red;
}

}  // namespace hp
