#include "hyperpart/reduction/three_dim_matching.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "hyperpart/util/rng.hpp"

namespace hp {

bool has_perfect_matching(const ThreeDMInstance& inst) {
  const std::uint32_t q = inst.q;
  std::vector<bool> used_y(q, false);
  std::vector<bool> used_z(q, false);
  // Match X elements 0..q−1 in order.
  const auto recurse = [&](auto&& self, std::uint32_t x) -> bool {
    if (x == q) return true;
    for (const auto& [tx, ty, tz] : inst.triples) {
      if (tx != x || used_y[ty] || used_z[tz]) continue;
      used_y[ty] = true;
      used_z[tz] = true;
      if (self(self, x + 1)) return true;
      used_y[ty] = false;
      used_z[tz] = false;
    }
    return false;
  };
  return recurse(recurse, 0);
}

ThreeDMInstance planted_3dm(std::uint32_t q, std::uint32_t extra_triples,
                            std::uint64_t seed) {
  Rng rng{seed};
  ThreeDMInstance inst;
  inst.q = q;
  std::vector<std::uint32_t> perm_y(q);
  std::vector<std::uint32_t> perm_z(q);
  for (std::uint32_t i = 0; i < q; ++i) perm_y[i] = perm_z[i] = i;
  rng.shuffle(perm_y);
  rng.shuffle(perm_z);
  for (std::uint32_t x = 0; x < q; ++x) {
    inst.triples.push_back({x, perm_y[x], perm_z[x]});
  }
  std::uint32_t added = 0;
  std::uint32_t attempts = 0;
  while (added < extra_triples && attempts < 100 * extra_triples + 100) {
    ++attempts;
    const std::array<std::uint32_t, 3> t{
        static_cast<std::uint32_t>(rng.next_below(q)),
        static_cast<std::uint32_t>(rng.next_below(q)),
        static_cast<std::uint32_t>(rng.next_below(q))};
    if (std::find(inst.triples.begin(), inst.triples.end(), t) ==
        inst.triples.end()) {
      inst.triples.push_back(t);
      ++added;
    }
  }
  return inst;
}

ThreeDMInstance random_3dm(std::uint32_t q, std::uint32_t num_triples,
                           std::uint64_t seed) {
  Rng rng{seed};
  ThreeDMInstance inst;
  inst.q = q;
  std::uint32_t attempts = 0;
  while (inst.triples.size() < num_triples &&
         attempts < 100 * num_triples + 100) {
    ++attempts;
    const std::array<std::uint32_t, 3> t{
        static_cast<std::uint32_t>(rng.next_below(q)),
        static_cast<std::uint32_t>(rng.next_below(q)),
        static_cast<std::uint32_t>(rng.next_below(q))};
    if (std::find(inst.triples.begin(), inst.triples.end(), t) ==
        inst.triples.end()) {
      inst.triples.push_back(t);
    }
  }
  return inst;
}

ThreeDMReduction build_3dm_reduction(const ThreeDMInstance& inst, double g1) {
  const std::uint32_t q = inst.q;
  if (q < 2) throw std::invalid_argument("build_3dm_reduction: q >= 2");
  const PartId k = 3 * q;
  // Node layout: X = 0..q−1, Y = q..2q−1, Z = 2q..3q−1.
  const auto xn = [&](std::uint32_t x) { return static_cast<NodeId>(x); };
  const auto yn = [&](std::uint32_t y) { return static_cast<NodeId>(q + y); };
  const auto zn = [&](std::uint32_t z) {
    return static_cast<NodeId>(2 * q + z);
  };

  ThreeDMReduction red;
  red.topology = HierTopology{{q, 3}, {g1, 1.0}};
  red.w0 = static_cast<Weight>(10) * k * k;

  // Weighted edge map: pairs and triples with accumulated weights.
  std::map<std::vector<NodeId>, Weight> edges;
  std::vector<bool> original(static_cast<std::size_t>(q) * q * q, false);
  for (const auto& [x, y, z] : inst.triples) {
    original[(static_cast<std::size_t>(x) * q + y) * q + z] = true;
    // (i) three pair edges per original triple.
    edges[{std::min(xn(x), yn(y)), std::max(xn(x), yn(y))}] += 1;
    edges[{std::min(xn(x), zn(z)), std::max(xn(x), zn(z))}] += 1;
    edges[{std::min(yn(y), zn(z)), std::max(yn(y), zn(z))}] += 1;
  }
  // (ii) every node triple that is not an original hyperedge gets weight 1;
  // (iii) every tripartite triple additionally gets weight w0.
  for (NodeId a = 0; a < k; ++a) {
    for (NodeId b = a + 1; b < k; ++b) {
      for (NodeId c = b + 1; c < k; ++c) {
        Weight w = 0;
        const bool tripartite = a < q && b >= q && b < 2 * q && c >= 2 * q;
        bool orig = false;
        if (tripartite) {
          orig = original[(static_cast<std::size_t>(a) * q + (b - q)) * q +
                          (c - 2 * q)];
          w += red.w0;
        }
        if (!orig) w += 1;
        if (w > 0) edges[{a, b, c}] += w;
      }
    }
  }

  std::vector<std::vector<NodeId>> pin_lists;
  std::vector<Weight> weights;
  Weight worst = 0;  // Σ w_e (|e|−1)
  for (const auto& [pins, w] : edges) {
    pin_lists.push_back(pins);
    weights.push_back(w);
    worst += w * static_cast<Weight>(pins.size() - 1);
  }
  red.contracted = Hypergraph::from_edges(k, std::move(pin_lists));
  red.contracted.set_edge_weights(std::move(weights));

  // Perfect matching ⟺ gain ≥ G_max ⟺ optimal hierarchical cost ≤
  // g1·W − (g1−1)·G_max, with per-triplet gain 3(k−3) + 3 + (k−1)·w0.
  const double g_max =
      static_cast<double>(q) *
      (3.0 * (k - 3) + 3.0 + static_cast<double>(k - 1) * red.w0);
  red.cost_threshold =
      g1 * static_cast<double>(worst) - (g1 - 1.0) * g_max + 1e-6;
  return red;
}

}  // namespace hp
