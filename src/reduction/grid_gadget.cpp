#include "hyperpart/reduction/grid_gadget.hpp"

#include <algorithm>
#include <stdexcept>

#include "hyperpart/core/metrics.hpp"

namespace hp {

GridGadget add_grid_gadget(HypergraphBuilder& builder, std::uint32_t side,
                           std::uint32_t num_outsiders) {
  if (side < 2) throw std::invalid_argument("add_grid_gadget: side >= 2");
  if (num_outsiders > 2 * side) {
    throw std::invalid_argument("add_grid_gadget: > 2*side outsiders");
  }
  GridGadget grid;
  grid.side = side;
  const NodeId first = builder.add_nodes(side * side);
  grid.body.resize(static_cast<std::size_t>(side) * side);
  for (std::uint32_t i = 0; i < side * side; ++i) grid.body[i] = first + i;
  for (std::uint32_t i = 0; i < num_outsiders; ++i) {
    grid.outsiders.push_back(builder.add_node());
  }
  for (std::uint32_t r = 0; r < side; ++r) {
    std::vector<NodeId> pins;
    pins.reserve(side + 1);
    for (std::uint32_t c = 0; c < side; ++c) pins.push_back(grid.at(r, c));
    if (r < num_outsiders) pins.push_back(grid.outsiders[r]);
    grid.row_edges.push_back(builder.add_edge(std::move(pins)));
  }
  for (std::uint32_t c = 0; c < side; ++c) {
    std::vector<NodeId> pins;
    pins.reserve(side + 1);
    for (std::uint32_t r = 0; r < side; ++r) pins.push_back(grid.at(r, c));
    if (side + c < num_outsiders) pins.push_back(grid.outsiders[side + c]);
    grid.col_edges.push_back(builder.add_edge(std::move(pins)));
  }
  return grid;
}

std::uint32_t grid_minority_count(const GridGadget& grid, const Hypergraph& g,
                                  const Partition& p) {
  (void)g;
  std::uint32_t red = 0;
  for (const NodeId v : grid.body) {
    if (p[v] == 0) ++red;
  }
  const auto total = static_cast<std::uint32_t>(grid.body.size());
  return std::min(red, total - red);
}

std::uint32_t grid_cut_edges(const GridGadget& grid, const Hypergraph& g,
                             const Partition& p) {
  std::uint32_t cut = 0;
  for (const EdgeId e : grid.row_edges) {
    if (is_cut(g, p, e)) ++cut;
  }
  for (const EdgeId e : grid.col_edges) {
    if (is_cut(g, p, e)) ++cut;
  }
  return cut;
}

}  // namespace hp
