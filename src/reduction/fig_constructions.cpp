#include "hyperpart/reduction/fig_constructions.hpp"

#include <stdexcept>
#include <utility>

#include "hyperpart/core/builder.hpp"
#include "hyperpart/io/generators.hpp"
#include "hyperpart/reduction/blocks.hpp"

namespace hp {

// ---------------------------------------------------------------- Figure 4

Dag fig4_serial_concatenation(std::uint32_t half_layers, std::uint32_t width,
                              std::uint64_t seed) {
  const Dag g1 = layered_dag(half_layers, width, 0.4, seed);
  const Dag g2 = layered_dag(half_layers, width, 0.4, seed + 1);
  const NodeId half = g1.num_nodes();
  std::vector<std::pair<NodeId, NodeId>> edges = g1.edge_list();
  for (const auto& [u, v] : g2.edge_list()) {
    edges.emplace_back(half + u, half + v);
  }
  // Every sink of G1 feeds every source of G2: strict serialization.
  for (const NodeId s : g1.sinks()) {
    for (const NodeId t : g2.sources()) edges.emplace_back(s, half + t);
  }
  return Dag::from_edges(half + g2.num_nodes(), std::move(edges));
}

Partition fig4_half_split(const Dag& dag) {
  const NodeId n = dag.num_nodes();
  Partition p(n, 2);
  for (NodeId v = 0; v < n; ++v) p.assign(v, v < n / 2 ? 0 : 1);
  return p;
}

// ---------------------------------------------------------------- Figure 6

Fig6Construction build_fig6(std::uint32_t b) {
  Fig6Construction fig;
  std::vector<std::pair<NodeId, NodeId>> edges;
  NodeId next = 0;
  const NodeId source = next++;
  // Upper branch: source → U (b nodes) → u2 → u3.
  for (std::uint32_t i = 0; i < b; ++i) fig.upper_set.push_back(next++);
  const NodeId u2 = next++;
  const NodeId u3 = next++;
  for (const NodeId u : fig.upper_set) {
    edges.emplace_back(source, u);
    edges.emplace_back(u, u2);
  }
  edges.emplace_back(u2, u3);
  // Lower branch: source → l1 → L (b nodes) → l3.
  const NodeId l1 = next++;
  edges.emplace_back(source, l1);
  for (std::uint32_t i = 0; i < b; ++i) fig.lower_set.push_back(next++);
  const NodeId l3 = next++;
  for (const NodeId l : fig.lower_set) {
    edges.emplace_back(l1, l);
    edges.emplace_back(l, l3);
  }
  const NodeId sink = next++;
  edges.emplace_back(u3, sink);
  edges.emplace_back(l3, sink);

  fig.dag = Dag::from_edges(next, std::move(edges));
  fig.branch_partition = Partition(next, 2);
  for (NodeId v = 0; v < next; ++v) fig.branch_partition.assign(v, 1);
  fig.branch_partition.assign(source, 0);
  for (const NodeId u : fig.upper_set) fig.branch_partition.assign(u, 0);
  fig.branch_partition.assign(u2, 0);
  fig.branch_partition.assign(u3, 0);
  return fig;
}

// ------------------------------------------------- Figure 8 (Lemma 7.2)

Fig8Construction build_fig8(PartId b1, PartId b2, double g1,
                            std::uint32_t scale) {
  if (b1 < 2 || b2 < 2 || scale < 3) {
    throw std::invalid_argument("build_fig8: need b1,b2 >= 2, scale >= 3");
  }
  const PartId bp = b2;  // b′ (d = 2)
  const NodeId small_size = scale;
  const NodeId large_size = bp * scale;

  Fig8Construction fig;
  fig.topology = HierTopology{{b1, b2}, {g1, 1.0}};
  fig.block_cost_floor = large_size - 1;

  HypergraphBuilder b;
  std::vector<std::vector<NodeId>> large_blocks;   // chain 0
  std::vector<std::vector<std::vector<NodeId>>> small_chains(b1 - 1);

  for (PartId i = 0; i < bp + 1; ++i) {
    large_blocks.push_back(add_block(b, large_size));
    if (i > 0) b.add_edge2(large_blocks[i - 1][0], large_blocks[i][0]);
  }
  for (PartId c = 0; c + 1 < b1; ++c) {
    for (PartId i = 0; i < bp * (bp + 1); ++i) {
      small_chains[c].push_back(add_block(b, small_size));
      if (i > 0) {
        b.add_edge2(small_chains[c][i - 1][0], small_chains[c][i][0]);
      }
    }
  }
  fig.graph = b.build();

  // Direct solution (right side of Figure 8): pair every large block with
  // one small block; group the remaining small blocks into (b′+1)-tuples.
  const PartId k = b1 * b2;
  fig.direct_solution = Partition(fig.graph.num_nodes(), k);
  PartId part = 0;
  std::size_t next_small_chain = 0;
  std::size_t next_small_index = 0;
  const auto take_small = [&]() -> const std::vector<NodeId>& {
    if (next_small_index == small_chains[next_small_chain].size()) {
      ++next_small_chain;
      next_small_index = 0;
    }
    return small_chains[next_small_chain][next_small_index++];
  };
  for (PartId i = 0; i < bp + 1; ++i) {
    for (const NodeId v : large_blocks[i]) fig.direct_solution.assign(v, part);
    for (const NodeId v : take_small()) fig.direct_solution.assign(v, part);
    ++part;
  }
  while (part < k) {
    for (PartId j = 0; j < bp + 1; ++j) {
      for (const NodeId v : take_small()) fig.direct_solution.assign(v, part);
    }
    ++part;
  }
  return fig;
}

// ------------------------------------------------ Figure 9 (Theorem 7.4)

Fig9Construction build_fig9(PartId b1, PartId b2, double g1,
                            std::uint32_t unit, std::uint32_t m) {
  const PartId k = b1 * b2;
  if (k < 4) throw std::invalid_argument("build_fig9: need k >= 4");
  if (unit % (k - 1) != 0 || unit / (k - 1) < 3) {
    throw std::invalid_argument(
        "build_fig9: unit must be a multiple of k-1, with unit/(k-1) >= 3");
  }
  const NodeId small = unit / (k - 1);          // |B_i| = |D| = |E_i|
  const NodeId c_size = unit - small;           // |C_i|

  Fig9Construction fig;
  fig.topology = HierTopology{{b1, b2}, {g1, 1.0}};
  fig.m = m;

  HypergraphBuilder b;
  const auto block_a = add_block(b, unit);
  std::vector<std::vector<NodeId>> blocks_b;
  for (PartId i = 0; i + 1 < k; ++i) blocks_b.push_back(add_block(b, small));
  std::vector<std::vector<NodeId>> blocks_c;
  for (PartId i = 0; i + 2 < k; ++i) blocks_c.push_back(add_block(b, c_size));
  const auto block_d = add_block(b, small);
  std::vector<std::vector<NodeId>> blocks_e;
  for (PartId i = 0; i + 3 < k; ++i) blocks_e.push_back(add_block(b, small));

  // m edges A ↔ B_i each; single edges B_i ↔ C_i and B_{k−1} ↔ D.
  for (PartId i = 0; i + 1 < k; ++i) {
    for (std::uint32_t j = 0; j < m; ++j) {
      b.add_edge2(block_a[j % block_a.size()],
                  blocks_b[i][j % blocks_b[i].size()]);
    }
  }
  for (PartId i = 0; i + 2 < k; ++i) {
    b.add_edge2(blocks_b[i][0], blocks_c[i][0]);
  }
  b.add_edge2(blocks_b[k - 2][0], block_d[0]);
  fig.graph = b.build();

  const auto assign_block = [&](Partition& p, const std::vector<NodeId>& blk,
                                PartId part) {
    for (const NodeId v : blk) p.assign(v, part);
  };

  // Hierarchical optimum: A at leaf 0, all B_i at leaf 1 (A's sibling for
  // b2 ≥ 2), then C_i/E_i pairs and C_{k−2}/D.
  fig.hier_optimal = Partition(fig.graph.num_nodes(), k);
  assign_block(fig.hier_optimal, block_a, 0);
  for (const auto& blk : blocks_b) assign_block(fig.hier_optimal, blk, 1);
  PartId part = 2;
  for (PartId i = 0; i + 3 < k; ++i) {
    assign_block(fig.hier_optimal, blocks_c[i], part);
    assign_block(fig.hier_optimal, blocks_e[i], part);
    ++part;
  }
  assign_block(fig.hier_optimal, blocks_c[k - 3], part);
  assign_block(fig.hier_optimal, block_d, part);

  // Standard-cut optimum: B_i travels with C_i; the last part collects
  // B_{k−1}, D and all E_i.
  fig.standard_optimal = Partition(fig.graph.num_nodes(), k);
  assign_block(fig.standard_optimal, block_a, 0);
  for (PartId i = 0; i + 2 < k; ++i) {
    assign_block(fig.standard_optimal, blocks_b[i], i + 1);
    assign_block(fig.standard_optimal, blocks_c[i], i + 1);
  }
  assign_block(fig.standard_optimal, blocks_b[k - 2], k - 1);
  assign_block(fig.standard_optimal, block_d, k - 1);
  for (const auto& blk : blocks_e) assign_block(fig.standard_optimal, blk,
                                                k - 1);
  return fig;
}

// ------------------------------------------------------- Appendix B intro

Dag sources_to_sinks_dag(std::uint32_t sources, std::uint32_t sinks) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (std::uint32_t s = 0; s < sources; ++s) {
    for (std::uint32_t t = 0; t < sinks; ++t) {
      edges.emplace_back(s, sources + t);
    }
  }
  return Dag::from_edges(sources + sinks, std::move(edges));
}

}  // namespace hp
