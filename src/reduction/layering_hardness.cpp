#include "hyperpart/reduction/layering_hardness.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <utility>

namespace hp {

LayeringHardnessReduction build_layering_hardness(
    const ThreePartitionInstance& inst, std::uint32_t multiplier) {
  const std::uint32_t b = inst.target;
  std::uint64_t sum = 0;
  for (const std::uint32_t a : inst.numbers) sum += a;
  if (b == 0 || sum % b != 0) {
    throw std::invalid_argument(
        "build_layering_hardness: number sum must be a multiple of b");
  }
  const auto t = static_cast<std::uint32_t>(sum / b);
  if (multiplier == 0) multiplier = static_cast<std::uint32_t>(t * b + 1);
  if (multiplier <= t * b) {
    throw std::invalid_argument("build_layering_hardness: m must be > t·b");
  }

  LayeringHardnessReduction red;
  red.instance = inst;
  red.phases = t;
  red.num_layers = 2 * t + 2;
  red.multiplier = multiplier;
  red.odd_capacity = b;
  red.even_demand = b * multiplier;

  // The red component's spine: one node per layer; layer 2p+1 (odd) holds
  // the phase-p first-level groups, layer 2p+2 the second-level groups.
  std::vector<std::pair<NodeId, NodeId>> edges;
  NodeId next = 0;
  std::vector<NodeId> spine(red.num_layers);
  for (std::uint32_t layer = 0; layer < red.num_layers; ++layer) {
    spine[layer] = next++;
    if (layer > 0) edges.emplace_back(spine[layer - 1], spine[layer]);
  }
  // Group gadgets. First-level nodes hang off the spine entry node (so
  // their earliest layer is 1) and feed every node of their second-level
  // group; second-level nodes feed the spine exit node (latest layer
  // 2t+1), so a first-level group placed in layer j puts its second-level
  // group anywhere in (j, 2t+1] — the flexible layering choice.
  for (const std::uint32_t a : inst.numbers) {
    std::vector<NodeId> first;
    std::vector<NodeId> second;
    for (std::uint32_t i = 0; i < a; ++i) {
      first.push_back(next++);
      edges.emplace_back(spine[0], first.back());
    }
    for (std::uint32_t i = 0; i < a * multiplier; ++i) {
      second.push_back(next++);
      for (const NodeId f : first) edges.emplace_back(f, second.back());
      edges.emplace_back(second.back(), spine[red.num_layers - 1]);
    }
    red.first_level.push_back(std::move(first));
    red.second_level.push_back(std::move(second));
  }
  red.dag = Dag::from_edges(next, std::move(edges));
  red.hyperdag = to_hyperdag(red.dag);
  return red;
}

bool LayeringHardnessReduction::valid_phase_assignment(
    const std::vector<std::uint32_t>& phase_of_number) const {
  if (phase_of_number.size() != instance.numbers.size()) return false;
  std::vector<std::uint64_t> load(phases, 0);
  for (std::size_t i = 0; i < instance.numbers.size(); ++i) {
    if (phase_of_number[i] >= phases) return false;
    load[phase_of_number[i]] += instance.numbers[i];
  }
  for (const std::uint64_t l : load) {
    if (l != instance.target) return false;
  }
  return true;
}

bool LayeringHardnessReduction::feasible_layering_exists() const {
  // Backtracking over the assignment of numbers to phases: each phase must
  // receive total first-level size exactly b. Numbers sorted descending
  // for pruning; phases filled greedily (first open phase anchors the
  // largest unassigned number to break symmetry).
  const auto n = static_cast<std::uint32_t>(instance.numbers.size());
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::uint32_t x, std::uint32_t y) {
    return instance.numbers[x] > instance.numbers[y];
  });
  std::vector<std::uint64_t> load(phases, 0);
  const auto recurse = [&](auto&& self, std::uint32_t idx) -> bool {
    if (idx == n) return true;
    const std::uint32_t a = instance.numbers[order[idx]];
    bool tried_empty = false;
    for (std::uint32_t p = 0; p < phases; ++p) {
      if (load[p] + a > instance.target) continue;
      if (load[p] == 0) {
        if (tried_empty) continue;  // empty phases are interchangeable
        tried_empty = true;
      }
      load[p] += a;
      if (self(self, idx + 1)) return true;
      load[p] -= a;
    }
    return false;
  };
  return recurse(recurse, 0);
}

std::vector<std::uint32_t> LayeringHardnessReduction::phases_from_solution(
    const std::vector<std::array<std::uint32_t, 3>>& triplets) const {
  std::vector<std::uint32_t> phase_of(instance.numbers.size(),
                                      static_cast<std::uint32_t>(-1));
  for (std::size_t p = 0; p < triplets.size(); ++p) {
    for (const std::uint32_t i : triplets[p]) {
      phase_of[i] = static_cast<std::uint32_t>(p);
    }
  }
  if (!valid_phase_assignment(phase_of)) {
    throw std::invalid_argument("phases_from_solution: invalid triplets");
  }
  return phase_of;
}

}  // namespace hp
