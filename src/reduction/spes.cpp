#include "hyperpart/reduction/spes.hpp"

#include <algorithm>
#include <stdexcept>
#include <limits>
#include <unordered_set>

#include "hyperpart/util/rng.hpp"

namespace hp {

std::uint32_t vertices_covered(const SpesInstance& inst,
                               const std::vector<std::uint32_t>& edge_subset) {
  std::vector<bool> seen(inst.num_vertices, false);
  std::uint32_t count = 0;
  for (const std::uint32_t e : edge_subset) {
    const auto& [u, v] = inst.edges[e];
    if (!seen[u]) {
      seen[u] = true;
      ++count;
    }
    if (!seen[v]) {
      seen[v] = true;
      ++count;
    }
  }
  return count;
}

namespace {

/// Enumerate all p-subsets of edges, tracking the best cover count; also
/// returns the best subset when `collect` is set.
std::optional<std::uint32_t> enumerate(const SpesInstance& inst,
                                       std::vector<std::uint32_t>* collect) {
  const auto m = static_cast<std::uint32_t>(inst.edges.size());
  if (inst.p > m) return std::nullopt;
  std::uint32_t best = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> chosen;
  const auto recurse = [&](auto&& self, std::uint32_t next) -> void {
    if (chosen.size() == inst.p) {
      const std::uint32_t covered = vertices_covered(inst, chosen);
      if (covered < best) {
        best = covered;
        if (collect != nullptr) *collect = chosen;
      }
      return;
    }
    const auto need = inst.p - static_cast<std::uint32_t>(chosen.size());
    for (std::uint32_t e = next; e < m && m - e >= need; ++e) {
      chosen.push_back(e);
      self(self, e + 1);
      chosen.pop_back();
    }
  };
  recurse(recurse, 0);
  return best;
}

}  // namespace

std::optional<std::uint32_t> spes_optimum(const SpesInstance& inst) {
  return enumerate(inst, nullptr);
}

std::optional<std::vector<std::uint32_t>> spes_optimal_edges(
    const SpesInstance& inst) {
  std::vector<std::uint32_t> chosen;
  if (!enumerate(inst, &chosen)) return std::nullopt;
  return chosen;
}

std::optional<std::uint32_t> spes_greedy(const SpesInstance& inst) {
  const auto m = static_cast<std::uint32_t>(inst.edges.size());
  if (inst.p > m) return std::nullopt;
  std::vector<bool> covered(inst.num_vertices, false);
  std::vector<bool> used(m, false);
  std::uint32_t total = 0;
  for (std::uint32_t round = 0; round < inst.p; ++round) {
    std::uint32_t best_edge = m;
    std::uint32_t best_new = 3;
    for (std::uint32_t e = 0; e < m; ++e) {
      if (used[e]) continue;
      const auto& [u, v] = inst.edges[e];
      const std::uint32_t fresh =
          static_cast<std::uint32_t>(!covered[u]) +
          static_cast<std::uint32_t>(!covered[v]);
      if (fresh < best_new) {
        best_new = fresh;
        best_edge = e;
      }
    }
    used[best_edge] = true;
    covered[inst.edges[best_edge].first] = true;
    covered[inst.edges[best_edge].second] = true;
    total += best_new;
  }
  return total;
}

SpesInstance random_spes(NodeId vertices, std::uint32_t edges, std::uint32_t p,
                         std::uint64_t seed) {
  if (static_cast<std::uint64_t>(edges) * 2 >
      static_cast<std::uint64_t>(vertices) * (vertices - 1)) {
    throw std::invalid_argument("random_spes: more edges than C(n,2)");
  }
  Rng rng{seed};
  SpesInstance inst;
  inst.num_vertices = vertices;
  inst.p = p;
  std::unordered_set<std::uint64_t> taken;
  while (inst.edges.size() < edges) {
    auto u = static_cast<NodeId>(rng.next_below(vertices));
    auto v = static_cast<NodeId>(rng.next_below(vertices));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    if (taken.insert((static_cast<std::uint64_t>(u) << 32) | v).second) {
      inst.edges.emplace_back(u, v);
    }
  }
  return inst;
}

}  // namespace hp
