#include "hyperpart/reduction/spes_delta2.hpp"

#include <cmath>
#include <stdexcept>

#include "hyperpart/core/builder.hpp"

namespace hp {

namespace {

[[nodiscard]] std::uint64_t isqrt(std::uint64_t x) {
  auto r = static_cast<std::uint64_t>(std::sqrt(static_cast<double>(x)));
  while (r * r > x) --r;
  while ((r + 1) * (r + 1) <= x) ++r;
  return r;
}

}  // namespace

SpesDelta2Reduction build_spes_delta2(const SpesInstance& inst,
                                      std::uint32_t eps_num,
                                      std::uint32_t eps_den) {
  if (eps_den == 0 || eps_num >= eps_den) {
    throw std::invalid_argument("build_spes_delta2: need 0 <= eps < 1");
  }
  const std::uint64_t n = inst.num_vertices;
  const std::uint64_t num_edges = inst.edges.size();
  if (inst.p > num_edges || n < 1) {
    throw std::invalid_argument("build_spes_delta2: bad instance");
  }

  const std::uint64_t ell = 2 * n < 2 ? 2 : 2 * n;  // ℓ = 2n
  const std::uint64_t q = ell * ell + 2;            // |B_e| incl. outsiders
  const std::uint64_t base = num_edges * q + n;     // all but A, A′ material

  const std::uint64_t unit = 2ull * eps_den;
  const auto lower_side = [&](std::uint64_t total) {
    return total / 2 - total / 2 * eps_num / eps_den;  // (1−ε)·total/2
  };

  // Search for a feasible n′ (multiple of 2·eps_den): red side must fit A′
  // plus p edge grids; A's grid must be large enough for its outsiders;
  // both pad counts must fit in 2ℓ outsider slots.
  std::uint64_t n_prime =
      ((4 * (base + inst.p * q + (n + 3) * (n + 3) + 16)) / unit + 1) * unit;
  std::uint64_t ell_a = 0;
  std::uint64_t pad_a = 0;
  std::uint64_t ell_ap = 0;
  std::uint64_t pad_ap = 0;
  bool found = false;
  for (int tries = 0; tries < 100000; ++tries, n_prime += unit) {
    const std::uint64_t min_side = lower_side(n_prime);
    if (min_side < inst.p * q + 6) continue;
    const std::uint64_t ap_total = min_side - inst.p * q;  // A′ incl. extras
    ell_ap = isqrt(ap_total - 1);
    if (ell_ap < 2) continue;
    pad_ap = ap_total - 1 - ell_ap * ell_ap;
    if (pad_ap > 2 * ell_ap) continue;
    const std::uint64_t rest = num_edges * q + n + ap_total;
    if (n_prime < rest + (n + 3) * (n + 3)) continue;
    const std::uint64_t a_total = n_prime - rest;  // A body + extra + pads
    ell_a = isqrt(a_total - 1);
    pad_a = a_total - 1 - ell_a * ell_a;
    if (ell_a < n + 2) continue;
    if (n + 1 + pad_a > 2 * ell_a) continue;
    found = true;
    break;
  }
  if (!found) {
    throw std::logic_error("build_spes_delta2: sizing search failed");
  }

  SpesDelta2Reduction red;
  red.instance = inst;
  HypergraphBuilder b;

  // Edge grids with two outsider ports each.
  for (std::uint64_t e = 0; e < num_edges; ++e) {
    red.edge_grids.push_back(
        add_grid_gadget(b, static_cast<std::uint32_t>(ell), 2));
  }
  // A: b_v outsiders first, then the hyperDAG extra, then pads.
  red.grid_a = add_grid_gadget(b, static_cast<std::uint32_t>(ell_a),
                               static_cast<std::uint32_t>(n + 1 + pad_a));
  red.vertex_nodes.assign(red.grid_a.outsiders.begin(),
                          red.grid_a.outsiders.begin() +
                              static_cast<std::ptrdiff_t>(n));
  // A′: the hyperDAG extra plus pads.
  red.grid_a_prime = add_grid_gadget(b, static_cast<std::uint32_t>(ell_ap),
                                     static_cast<std::uint32_t>(1 + pad_ap));

  // Main hyperedges: b_v plus v's port outsiders in incident edge grids.
  for (std::uint64_t v = 0; v < n; ++v) {
    std::vector<NodeId> pins{red.vertex_nodes[v]};
    for (std::uint64_t e = 0; e < num_edges; ++e) {
      const auto& [x, y] = inst.edges[e];
      if (x == v) pins.push_back(red.edge_grids[e].outsiders[0]);
      if (y == v) pins.push_back(red.edge_grids[e].outsiders[1]);
    }
    red.main_edges.push_back(b.add_edge(std::move(pins)));
  }

  red.graph = b.build();
  if (red.graph.num_nodes() != n_prime) {
    throw std::logic_error("build_spes_delta2: size accounting failed");
  }
  const std::uint64_t min_side = lower_side(n_prime);
  red.balance = BalanceConstraint::with_capacity(
      2, static_cast<Weight>(n_prime - min_side),
      static_cast<double>(eps_num) / eps_den);
  red.min_part_weight = static_cast<Weight>(min_side);
  return red;
}

Partition SpesDelta2Reduction::partition_from_edges(
    const std::vector<std::uint32_t>& red_edges) const {
  if (red_edges.size() != instance.p) {
    throw std::invalid_argument("partition_from_edges: need exactly p edges");
  }
  Partition p(graph.num_nodes(), 2);
  for (NodeId v = 0; v < graph.num_nodes(); ++v) p.assign(v, 1);  // blue
  for (const NodeId v : grid_a_prime.body) p.assign(v, 0);
  for (const NodeId v : grid_a_prime.outsiders) p.assign(v, 0);
  for (const std::uint32_t e : red_edges) {
    for (const NodeId v : edge_grids[e].body) p.assign(v, 0);
    for (const NodeId v : edge_grids[e].outsiders) p.assign(v, 0);
  }
  return p;
}

}  // namespace hp
