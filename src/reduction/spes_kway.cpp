#include "hyperpart/reduction/spes_kway.hpp"

#include <stdexcept>

#include "hyperpart/core/builder.hpp"
#include "hyperpart/reduction/blocks.hpp"

namespace hp {

SpesKwayReduction build_spes_kway_reduction(const SpesInstance& inst,
                                            PartId k, std::uint32_t eps_num,
                                            std::uint32_t eps_den) {
  if (k < 2) throw std::invalid_argument("spes_kway: k >= 2");
  if (eps_den == 0 || eps_num >= eps_den) {
    throw std::invalid_argument("spes_kway: need 0 <= eps < 1");
  }
  const auto n = static_cast<std::uint64_t>(inst.num_vertices);
  const auto num_edges = static_cast<std::uint64_t>(inst.edges.size());
  if (inst.p > num_edges) throw std::invalid_argument("spes_kway: p > |E|");

  SpesKwayReduction red;
  red.instance = inst;
  red.k = k;
  red.block_size = static_cast<NodeId>(n + 1);
  const std::uint64_t m = red.block_size;
  const std::uint64_t core = num_edges * m + n;  // B_e blocks + b_v nodes

  // k₀ = ⌈k·den / (den+num)⌉ parts suffice to cover everything.
  const std::uint64_t k0 =
      (static_cast<std::uint64_t>(k) * eps_den + eps_den + eps_num - 1) /
      (eps_den + eps_num);
  const std::uint64_t components = k0 - 1;  // non-A top-level components

  // n′ a multiple of k·den·(k₀−1) keeps the capacity and the component
  // size T₀ integral.
  const std::uint64_t unit =
      static_cast<std::uint64_t>(k) * eps_den * components;
  const auto capacity_of = [&](std::uint64_t total) {
    return total / (static_cast<std::uint64_t>(k) * eps_den) *
           (eps_den + eps_num);
  };
  std::uint64_t n_prime = ((2 * k * (core + inst.p * m + 8)) / unit + 1) * unit;
  std::uint64_t cap = 0;
  std::uint64_t t0 = 0;
  for (;; n_prime += unit) {
    cap = capacity_of(n_prime);
    t0 = (n_prime - cap) / components;
    if (cap < (num_edges - inst.p) * m + n + 3) continue;
    if (t0 < inst.p * m + 3) continue;
    break;
  }
  const std::uint64_t a_size = cap - (num_edges - inst.p) * m - n;
  const std::uint64_t a_prime_size = t0 - inst.p * m;

  HypergraphBuilder b;
  red.vertex_nodes.resize(n);
  for (std::uint64_t v = 0; v < n; ++v) red.vertex_nodes[v] = b.add_node();
  for (std::uint64_t e = 0; e < num_edges; ++e) {
    red.edge_blocks.push_back(add_block(b, red.block_size));
  }
  red.block_a = add_block(b, static_cast<NodeId>(a_size));
  red.block_a_prime = add_block(b, static_cast<NodeId>(a_prime_size));
  for (std::uint64_t c = 0; c + 2 < k0; ++c) {
    red.extra_blocks.push_back(add_block(b, static_cast<NodeId>(t0)));
  }

  for (std::uint64_t v = 0; v < n; ++v) {
    std::vector<NodeId> pins{red.vertex_nodes[v]};
    for (std::uint64_t e = 0; e < num_edges; ++e) {
      const auto& [x, y] = inst.edges[e];
      if (x == v) pins.push_back(red.edge_blocks[e][0]);
      if (y == v) pins.push_back(red.edge_blocks[e][1]);
    }
    b.add_edge(std::move(pins));
  }
  for (std::uint64_t v = 0; v < n; ++v) {
    for (std::uint64_t i = 0; i < m; ++i) {
      b.add_edge2(red.block_a[i % a_size], red.vertex_nodes[v]);
    }
  }

  red.graph = b.build();
  if (red.graph.num_nodes() != n_prime) {
    throw std::logic_error("spes_kway: size accounting failed");
  }
  red.balance = BalanceConstraint::with_capacity(
      k, static_cast<Weight>(cap),
      static_cast<double>(eps_num) / eps_den);
  return red;
}

Partition SpesKwayReduction::partition_from_edges(
    const std::vector<std::uint32_t>& red_edges) const {
  if (red_edges.size() != instance.p) {
    throw std::invalid_argument("spes_kway: need exactly p edges");
  }
  Partition p(graph.num_nodes(), k);
  for (NodeId v = 0; v < graph.num_nodes(); ++v) p.assign(v, 0);  // blue
  for (const NodeId v : block_a_prime) p.assign(v, 1);
  for (const std::uint32_t e : red_edges) {
    for (const NodeId v : edge_blocks[e]) p.assign(v, 1);
  }
  for (std::size_t c = 0; c < extra_blocks.size(); ++c) {
    for (const NodeId v : extra_blocks[c]) {
      p.assign(v, static_cast<PartId>(c + 2));
    }
  }
  return p;
}

}  // namespace hp
