#include "hyperpart/reduction/blocks.hpp"

#include <algorithm>
#include <stdexcept>

namespace hp {

std::vector<NodeId> add_block(HypergraphBuilder& builder, NodeId b) {
  if (b < 3) throw std::invalid_argument("add_block: need b >= 3");
  const NodeId first = builder.add_nodes(b);
  std::vector<NodeId> nodes(b);
  for (NodeId i = 0; i < b; ++i) nodes[i] = first + i;
  for (NodeId skip = 0; skip < b; ++skip) {
    std::vector<NodeId> pins;
    pins.reserve(b - 1);
    for (NodeId i = 0; i < b; ++i) {
      if (i != skip) pins.push_back(nodes[i]);
    }
    builder.add_edge(std::move(pins));
  }
  return nodes;
}

std::vector<NodeId> add_single_edge_block(HypergraphBuilder& builder,
                                          NodeId b) {
  if (b < 2) throw std::invalid_argument("add_single_edge_block: b >= 2");
  const NodeId first = builder.add_nodes(b);
  std::vector<NodeId> nodes(b);
  for (NodeId i = 0; i < b; ++i) nodes[i] = first + i;
  builder.add_edge(std::vector<NodeId>(nodes));
  return nodes;
}

Hypergraph pad_with_isolated_nodes(const Hypergraph& g, NodeId count) {
  std::vector<std::vector<NodeId>> edges;
  edges.reserve(g.num_edges());
  std::vector<Weight> ew;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto p = g.pins(e);
    edges.emplace_back(p.begin(), p.end());
    ew.push_back(g.edge_weight(e));
  }
  Hypergraph out =
      Hypergraph::from_edges(g.num_nodes() + count, std::move(edges));
  if (g.has_edge_weights()) out.set_edge_weights(std::move(ew));
  if (g.has_node_weights()) {
    std::vector<Weight> nw(g.num_nodes() + count, 1);
    for (NodeId v = 0; v < g.num_nodes(); ++v) nw[v] = g.node_weight(v);
    out.set_node_weights(std::move(nw));
  }
  return out;
}

NodeId FixedColorPool::make_fixed(PartId color) {
  if (finalized_) throw std::logic_error("FixedColorPool: already finalized");
  const NodeId v = builder_->add_node();
  fixed_[color].push_back(v);
  return v;
}

void FixedColorPool::constrain_red_count(ConstraintSet& cs,
                                         std::vector<NodeId> s, NodeId h,
                                         RedCount mode) {
  if (h > s.size()) {
    throw std::invalid_argument("constrain_red_count: h > |S|");
  }
  if (mode == RedCount::kAtMost) {
    // Pad with h free nodes, then require exactly h red (Appendix D.3).
    for (NodeId i = 0; i < h; ++i) s.push_back(builder_->add_node());
    mode = RedCount::kExactly;
  } else if (mode == RedCount::kAtLeast) {
    // red(S) ≥ h  ⇔  blue(S) ≤ |S|−h: pad with |S|−h free nodes and
    // require exactly |S| red over the padded set.
    const auto pads = static_cast<NodeId>(s.size()) - h;
    const auto target = static_cast<NodeId>(s.size());
    for (NodeId i = 0; i < pads; ++i) s.push_back(builder_->add_node());
    h = target;
    mode = RedCount::kExactly;
  }
  if (h > s.size()) {
    throw std::invalid_argument("constrain_red_count: h > |S|");
  }
  // Exactly h red in S: group S ∪ R0 ∪ B0 with |R0| = C − h,
  // |B0| = C − (|S| − h) and per-part capacity C = |S| + 1 (ε = 0 style
  // thresholds: red ≤ C ⇔ red(S) ≤ h, blue ≤ C ⇔ red(S) ≥ h).
  const auto size = static_cast<NodeId>(s.size());
  const NodeId capacity = size + 1;
  ConstraintGroup group;
  group.capacity = capacity;
  group.nodes = std::move(s);
  for (NodeId i = 0; i < capacity - h; ++i) {
    group.nodes.push_back(make_fixed(0));
  }
  for (NodeId i = 0; i < capacity - (size - h); ++i) {
    group.nodes.push_back(make_fixed(1));
  }
  cs.add_group(std::move(group));
}

void FixedColorPool::finalize(ConstraintSet& cs) {
  if (finalized_) throw std::logic_error("FixedColorPool: double finalize");
  finalized_ = true;
  // Pad both colors to a common size ≥ 2 and wrap each in one hyperedge.
  const NodeId size = std::max<NodeId>(
      2, static_cast<NodeId>(
             std::max(fixed_[0].size(), fixed_[1].size())));
  for (PartId color = 0; color < 2; ++color) {
    while (fixed_[color].size() < size) {
      fixed_[color].push_back(builder_->add_node());
    }
    builder_->add_edge(std::vector<NodeId>(fixed_[color]));
  }
  // Pairing group: the two blocks together, per-part capacity = one block —
  // so in any feasible cost-0 solution they take different colors.
  ConstraintGroup pair;
  pair.capacity = size;
  pair.nodes = fixed_[0];
  pair.nodes.insert(pair.nodes.end(), fixed_[1].begin(), fixed_[1].end());
  cs.add_group(std::move(pair));
}

}  // namespace hp
