#include "hyperpart/reduction/three_partition.hpp"

#include <algorithm>
#include <array>
#include <numeric>

#include "hyperpart/util/rng.hpp"

namespace hp {

bool ThreePartitionInstance::well_formed() const {
  if (numbers.size() % 3 != 0 || numbers.empty()) return false;
  std::uint64_t sum = 0;
  for (const std::uint32_t a : numbers) {
    if (4 * a <= target || 2 * a >= target) return false;
    sum += a;
  }
  return sum == static_cast<std::uint64_t>(t()) * target;
}

std::optional<std::vector<std::array<std::uint32_t, 3>>> solve_three_partition(
    const ThreePartitionInstance& inst) {
  const auto n = static_cast<std::uint32_t>(inst.numbers.size());
  if (n % 3 != 0) return std::nullopt;
  std::vector<bool> used(n, false);
  std::vector<std::array<std::uint32_t, 3>> triplets;

  // Always anchor on the first unused index — canonical, prunes symmetry.
  const auto recurse = [&](auto&& self) -> bool {
    std::uint32_t first = n;
    for (std::uint32_t i = 0; i < n; ++i) {
      if (!used[i]) {
        first = i;
        break;
      }
    }
    if (first == n) return true;
    used[first] = true;
    for (std::uint32_t j = first + 1; j < n; ++j) {
      if (used[j] || inst.numbers[first] + inst.numbers[j] >= inst.target) {
        continue;
      }
      used[j] = true;
      const std::uint32_t need =
          inst.target - inst.numbers[first] - inst.numbers[j];
      for (std::uint32_t l = j + 1; l < n; ++l) {
        if (used[l] || inst.numbers[l] != need) continue;
        used[l] = true;
        triplets.push_back({first, j, l});
        if (self(self)) return true;
        triplets.pop_back();
        used[l] = false;
      }
      used[j] = false;
    }
    used[first] = false;
    return false;
  };
  if (!recurse(recurse)) return std::nullopt;
  return triplets;
}

ThreePartitionInstance random_solvable_three_partition(std::uint32_t t,
                                                       std::uint32_t b,
                                                       std::uint64_t seed) {
  Rng rng{seed};
  ThreePartitionInstance inst;
  inst.target = b;
  for (std::uint32_t i = 0; i < t; ++i) {
    // a1, a2, a3 with a1+a2+a3 = b and each in (b/4, b/2): draw a1, a2
    // around b/3 until the remainder also fits the window.
    for (;;) {
      const auto lo = b / 4 + 1;
      const auto hi = (b - 1) / 2;
      const auto a1 = static_cast<std::uint32_t>(rng.next_in(lo, hi));
      const auto a2 = static_cast<std::uint32_t>(rng.next_in(lo, hi));
      if (a1 + a2 >= b) continue;
      const std::uint32_t a3 = b - a1 - a2;
      if (4 * a3 <= b || 2 * a3 >= b) continue;
      inst.numbers.push_back(a1);
      inst.numbers.push_back(a2);
      inst.numbers.push_back(a3);
      break;
    }
  }
  rng.shuffle(inst.numbers);
  return inst;
}

}  // namespace hp
