#include "hyperpart/reduction/spes_reduction.hpp"

#include <algorithm>
#include <stdexcept>

#include "hyperpart/core/builder.hpp"
#include "hyperpart/reduction/blocks.hpp"

namespace hp {

SpesReduction build_spes_reduction(const SpesInstance& inst,
                                   std::uint32_t eps_num,
                                   std::uint32_t eps_den) {
  if (eps_den == 0 || eps_num >= eps_den) {
    throw std::invalid_argument("build_spes_reduction: need 0 <= eps < 1");
  }
  const auto n = static_cast<std::uint64_t>(inst.num_vertices);
  const auto num_edges = static_cast<std::uint64_t>(inst.edges.size());
  if (inst.p > num_edges) {
    throw std::invalid_argument("build_spes_reduction: p > |E|");
  }

  SpesReduction red;
  red.instance = inst;
  red.block_size = static_cast<NodeId>(n + 1);  // m ≥ n + 1
  const std::uint64_t m = red.block_size;
  const std::uint64_t s = num_edges * m + n;  // everything except A, A′

  // Pick n′ ≡ 0 (mod 2·eps_den) minimal with (1−ε)·n′/2 ≥ s + 4 — the
  // slack keeps |A|, |A′| ≥ 2. Thresholds are exact integers by choice of
  // the modulus.
  const std::uint64_t unit = 2ull * eps_den;
  std::uint64_t n_prime =
      ((2 * (s + 4 + inst.p * m) * eps_den / (eps_den - eps_num)) / unit + 1) *
      unit;
  const auto lower = [&](std::uint64_t total) {
    return total / 2 - total / 2 * eps_num / eps_den;  // (1−ε)·total/2
  };
  while (lower(n_prime) < s + 4 + inst.p * m) n_prime += unit;
  const std::uint64_t min_side = lower(n_prime);
  const std::uint64_t capacity = n_prime - min_side;  // (1+ε)·n′/2

  const std::uint64_t a_prime_size = min_side - inst.p * m;
  const std::uint64_t a_size = n_prime - s - a_prime_size;
  if (a_prime_size < 3 || a_size < 3) {
    throw std::logic_error("build_spes_reduction: anchor sizing failed");
  }

  HypergraphBuilder b;
  // Vertex nodes b_v first, so tests can address them easily.
  red.vertex_nodes.resize(n);
  for (std::uint64_t v = 0; v < n; ++v) {
    red.vertex_nodes[v] = b.add_node();
  }
  for (std::uint64_t e = 0; e < num_edges; ++e) {
    red.edge_blocks.push_back(add_block(b, red.block_size));
  }
  red.block_a = add_block(b, static_cast<NodeId>(a_size));
  red.block_a_prime = add_block(b, static_cast<NodeId>(a_prime_size));

  // Main hyperedge of v: b_v plus one port node in every incident B_e
  // (the port is v's index within e, so ports are distinct per block).
  for (std::uint64_t v = 0; v < n; ++v) {
    std::vector<NodeId> pins{red.vertex_nodes[v]};
    for (std::uint64_t e = 0; e < num_edges; ++e) {
      const auto& [x, y] = inst.edges[e];
      if (x == v) pins.push_back(red.edge_blocks[e][0]);
      if (y == v) pins.push_back(red.edge_blocks[e][1]);
    }
    red.main_edges.push_back(b.add_edge(std::move(pins)));
  }
  // m distinct {A-node, b_v} edges tie every b_v to A's color.
  for (std::uint64_t v = 0; v < n; ++v) {
    for (std::uint64_t i = 0; i < m; ++i) {
      b.add_edge2(red.block_a[i % a_size], red.vertex_nodes[v]);
    }
  }

  red.graph = b.build();
  if (red.graph.num_nodes() != n_prime) {
    throw std::logic_error("build_spes_reduction: size accounting failed");
  }
  red.balance = BalanceConstraint::with_capacity(
      2, static_cast<Weight>(capacity),
      static_cast<double>(eps_num) / eps_den);
  red.min_part_weight = static_cast<Weight>(min_side);
  return red;
}

Partition SpesReduction::partition_from_edges(
    const std::vector<std::uint32_t>& red_edges) const {
  if (red_edges.size() != instance.p) {
    throw std::invalid_argument("partition_from_edges: need exactly p edges");
  }
  Partition p(graph.num_nodes(), 2);
  for (NodeId v = 0; v < graph.num_nodes(); ++v) p.assign(v, 1);  // blue
  for (const NodeId v : block_a_prime) p.assign(v, 0);            // red
  for (const std::uint32_t e : red_edges) {
    for (const NodeId v : edge_blocks[e]) p.assign(v, 0);
  }
  return p;
}

std::vector<std::uint32_t> SpesReduction::edges_from_partition(
    const Partition& p) const {
  // Majority color of A defines "blue"; blocks of the opposite majority are
  // the chosen edges.
  std::uint32_t a_red = 0;
  for (const NodeId v : block_a) a_red += p[v] == 0 ? 1 : 0;
  const PartId blue = 2 * a_red >= block_a.size() ? 0 : 1;
  std::vector<std::uint32_t> chosen;
  for (std::uint32_t e = 0; e < edge_blocks.size(); ++e) {
    std::uint32_t votes = 0;
    for (const NodeId v : edge_blocks[e]) votes += p[v] != blue ? 1 : 0;
    if (2 * votes >= edge_blocks[e].size()) chosen.push_back(e);
  }
  return chosen;
}

}  // namespace hp
