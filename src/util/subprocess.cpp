#include "hyperpart/util/subprocess.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <thread>

namespace hp::subprocess {

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] Clock::time_point deadline_from(double timeout_sec) {
  if (timeout_sec < 0) return Clock::time_point::max();
  return Clock::now() + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(timeout_sec));
}

}  // namespace

Child::Child(Child&& other) noexcept
    : pid_(other.pid_), stdout_fd_(other.stdout_fd_),
      own_group_(other.own_group_) {
  other.pid_ = -1;
  other.stdout_fd_ = -1;
}

Child& Child::operator=(Child&& other) noexcept {
  if (this != &other) {
    if (stdout_fd_ >= 0) close(stdout_fd_);
    pid_ = other.pid_;
    stdout_fd_ = other.stdout_fd_;
    own_group_ = other.own_group_;
    other.pid_ = -1;
    other.stdout_fd_ = -1;
  }
  return *this;
}

Child::~Child() {
  if (stdout_fd_ >= 0) close(stdout_fd_);
}

bool Child::read_stdout(std::string& out, double timeout_sec) {
  if (stdout_fd_ < 0) return true;
  const auto deadline = deadline_from(timeout_sec);
  fcntl(stdout_fd_, F_SETFL, O_NONBLOCK);
  char buf[4096];
  for (;;) {
    const ssize_t n = read(stdout_fd_, buf, sizeof(buf));
    if (n > 0) {
      out.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) return true;  // EOF: the child closed its stdout
    if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) return true;
    if (Clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

ExitStatus Child::wait(double timeout_sec) {
  ExitStatus st;
  if (pid_ <= 0) {
    st.exit_code = 126;
    return st;
  }
  const auto deadline = deadline_from(timeout_sec);
  int status = 0;
  for (;;) {
    const pid_t done = waitpid(pid_, &status, WNOHANG);
    if (done == pid_) break;
    if (done < 0) {  // already reaped elsewhere; treat as a crash
      status = 0;
      break;
    }
    if (Clock::now() > deadline) {
      st.timed_out = true;
      kill_group(SIGKILL);
      waitpid(pid_, &status, 0);
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  pid_ = -1;
  if (WIFEXITED(status)) {
    st.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    st.exit_code = -1;
    st.term_signal = WTERMSIG(status);
  }
  return st;
}

void Child::kill_group(int sig) const noexcept {
  if (pid_ <= 0) return;
  kill(own_group_ ? -pid_ : pid_, sig);
}

std::optional<Child> spawn(const std::string& exe,
                           const std::vector<std::string>& args,
                           const SpawnOptions& opts) {
  int pipefd[2] = {-1, -1};
  if (opts.capture_stdout && pipe(pipefd) != 0) return std::nullopt;
  const pid_t pid = fork();
  if (pid < 0) {
    if (opts.capture_stdout) {
      close(pipefd[0]);
      close(pipefd[1]);
    }
    return std::nullopt;
  }
  if (pid == 0) {
    if (opts.new_process_group) setpgid(0, 0);
    if (opts.capture_stdout) {
      close(pipefd[0]);
      dup2(pipefd[1], STDOUT_FILENO);
      close(pipefd[1]);
    } else if (!opts.stdout_to_file.empty()) {
      const int fd =
          open(opts.stdout_to_file.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
      if (fd >= 0) {
        dup2(fd, STDOUT_FILENO);
        dup2(fd, STDERR_FILENO);
        close(fd);
      }
    }
    if (!opts.chdir_to.empty() && chdir(opts.chdir_to.c_str()) != 0) _exit(125);
    std::vector<std::string> argv_store;
    argv_store.reserve(args.size() + 1);
    argv_store.push_back(exe);
    for (const std::string& a : args) argv_store.push_back(a);
    std::vector<char*> argv;
    argv.reserve(argv_store.size() + 1);
    for (std::string& a : argv_store) argv.push_back(a.data());
    argv.push_back(nullptr);
    execv(exe.c_str(), argv.data());
    _exit(127);
  }
  Child child;
  child.pid_ = pid;
  child.own_group_ = opts.new_process_group;
  if (opts.capture_stdout) {
    close(pipefd[1]);
    child.stdout_fd_ = pipefd[0];
  }
  return child;
}

ExitStatus run(const std::string& exe, const std::vector<std::string>& args,
               const SpawnOptions& opts, double timeout_sec) {
  auto child = spawn(exe, args, opts);
  if (!child) {
    ExitStatus st;
    st.exit_code = 126;
    return st;
  }
  return child->wait(timeout_sec);
}

std::optional<std::string> run_capture(const std::string& exe,
                                       const std::vector<std::string>& args,
                                       double timeout_sec) {
  SpawnOptions opts;
  opts.capture_stdout = true;
  auto child = spawn(exe, args, opts);
  if (!child) return std::nullopt;
  std::string out;
  const bool drained = child->read_stdout(out, timeout_sec);
  if (!drained) child->kill_group(SIGKILL);
  const ExitStatus st = child->wait(drained ? timeout_sec : 0.0);
  if (!drained || !st.ok()) return std::nullopt;
  return out;
}

}  // namespace hp::subprocess
