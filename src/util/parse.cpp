#include "hyperpart/util/parse.hpp"

#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <string>

namespace hp {

std::optional<std::uint64_t> parse_u64(std::string_view token,
                                       std::uint64_t min_value,
                                       std::uint64_t max_value) {
  if (token.empty() || token.front() == '+' || token.front() == '-') {
    return std::nullopt;
  }
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    return std::nullopt;
  }
  if (value < min_value || value > max_value) return std::nullopt;
  return value;
}

std::optional<std::int64_t> parse_i64(std::string_view token,
                                      std::int64_t min_value,
                                      std::int64_t max_value) {
  if (token.empty() || token.front() == '+') return std::nullopt;
  std::int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    return std::nullopt;
  }
  if (value < min_value || value > max_value) return std::nullopt;
  return value;
}

std::optional<double> parse_f64(std::string_view token, double min_value,
                                double max_value) {
  if (token.empty()) return std::nullopt;
  // strtod accepts leading whitespace, "nan", "inf", and hex floats; filter
  // the surprising ones up front so flag values stay plain decimals.
  const char c = token.front();
  if (!(c == '-' || c == '.' || (c >= '0' && c <= '9'))) return std::nullopt;
  const std::string buf(token);  // ensure NUL termination for strtod
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size() || errno == ERANGE ||
      !std::isfinite(value)) {
    return std::nullopt;
  }
  if (value < min_value || value > max_value) return std::nullopt;
  return value;
}

}  // namespace hp
