#include "hyperpart/util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

namespace hp {

namespace {

/// One submitted task batch. Lives on the submitter's stack for the
/// duration of run(); `next` hands out task indices, `done` counts
/// completions.
struct Batch {
  const std::vector<std::function<void()>>* tasks;
  std::size_t size;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  // First exception thrown by any task; claimed once, rethrown by run().
  std::atomic<bool> error_claimed{false};
  std::exception_ptr error;
};

/// Execute one task, capturing the batch's first exception. The remaining
/// tasks still run; the `done` increment that follows the call publishes
/// the stored exception_ptr to the submitter.
void run_task(Batch* b, std::size_t i) {
  try {
    (*b->tasks)[i]();
  } catch (...) {
    if (!b->error_claimed.exchange(true, std::memory_order_acq_rel)) {
      b->error = std::current_exception();
    }
  }
}

}  // namespace

struct ThreadPool::Impl {
  std::mutex mu;
  std::condition_variable work_cv;   // workers: queue non-empty or stopping
  std::condition_variable done_cv;   // submitters: batch completed
  std::deque<Batch*> queue;
  std::vector<std::thread> workers;
  std::atomic<std::uint64_t> batches{0};
  bool stop = false;

  void worker_loop() {
    std::unique_lock<std::mutex> lk(mu);
    for (;;) {
      work_cv.wait(lk, [&] { return stop || !queue.empty(); });
      if (stop) return;
      Batch* b = queue.front();
      const std::size_t i = b->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= b->size) {
        // Batch exhausted; retire it if it is still queued.
        if (!queue.empty() && queue.front() == b) queue.pop_front();
        continue;
      }
      const std::size_t bsize = b->size;
      lk.unlock();
      run_task(b, i);
      // After this increment the submitter may return and destroy *b, so
      // the batch must not be dereferenced again.
      const std::size_t d = b->done.fetch_add(1, std::memory_order_acq_rel) + 1;
      lk.lock();
      if (d == bsize) done_cv.notify_all();
    }
  }
};

ThreadPool::ThreadPool() : impl_(new Impl) {
  const unsigned hw = default_threads();
  const unsigned workers = hw > 1 ? hw - 1 : 0;  // submitter is an executor
  impl_->workers.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    impl_->stop = true;
  }
  impl_->work_cv.notify_all();
  for (auto& t : impl_->workers) t.join();
  delete impl_;
}

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool;
  return pool;
}

unsigned ThreadPool::num_workers() const noexcept {
  return static_cast<unsigned>(impl_->workers.size());
}

std::uint64_t ThreadPool::batches_executed() const noexcept {
  return impl_->batches.load(std::memory_order_relaxed);
}

void ThreadPool::run(const std::vector<std::function<void()>>& tasks) {
  if (tasks.empty()) return;
  impl_->batches.fetch_add(1, std::memory_order_relaxed);
  Batch batch{&tasks, tasks.size(), {}, {}, {}, {}};
  if (!impl_->workers.empty()) {
    std::lock_guard<std::mutex> lk(impl_->mu);
    impl_->queue.push_back(&batch);
    impl_->work_cv.notify_all();
  }
  // The submitter drains its own batch; with zero free workers this still
  // completes every task, which is what makes nested run() calls safe.
  for (;;) {
    const std::size_t i = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch.size) break;
    run_task(&batch, i);
    batch.done.fetch_add(1, std::memory_order_acq_rel);
  }
  if (!impl_->workers.empty()) {
    std::unique_lock<std::mutex> lk(impl_->mu);
    // The batch may still sit in the queue (no worker happened to touch
    // it); retire it so workers never see a dangling pointer after we
    // return.
    auto it = std::find(impl_->queue.begin(), impl_->queue.end(), &batch);
    if (it != impl_->queue.end()) impl_->queue.erase(it);
    impl_->done_cv.wait(
        lk, [&] { return batch.done.load(std::memory_order_acquire) >=
                         batch.size; });
  }
  if (batch.error) std::rethrow_exception(batch.error);
}

void run_parallel(const std::vector<std::function<void()>>& tasks,
                  unsigned threads) {
  if (tasks.empty()) return;
  const unsigned workers = std::max(
      1u, std::min<unsigned>(threads, static_cast<unsigned>(tasks.size())));
  if (workers == 1) {
    for (const auto& task : tasks) task();
    return;
  }
  ThreadPool& pool = ThreadPool::instance();
  if (workers >= tasks.size()) {
    pool.run(tasks);
    return;
  }
  // Honour the concurrency cap: `workers` drivers drain the full list.
  // Exceptions are trapped per task (not per driver) so a throwing task
  // never prevents the remaining tasks from running; the first exception
  // is rethrown to the caller once the batch completes.
  std::atomic<std::size_t> next{0};
  std::atomic<bool> error_claimed{false};
  std::exception_ptr error;
  std::vector<std::function<void()>> drivers;
  drivers.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    drivers.push_back([&]() {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= tasks.size()) return;
        try {
          tasks[i]();
        } catch (...) {
          if (!error_claimed.exchange(true, std::memory_order_acq_rel)) {
            error = std::current_exception();
          }
        }
      }
    });
  }
  pool.run(drivers);
  if (error) std::rethrow_exception(error);
}

void parallel_for_chunks(
    std::uint64_t count, unsigned threads,
    const std::function<void(std::uint64_t, std::uint64_t)>& fn) {
  if (count == 0) return;
  const unsigned workers = std::max<unsigned>(
      1, static_cast<unsigned>(
             std::min<std::uint64_t>(threads == 0 ? 1 : threads, count)));
  if (workers == 1) {
    fn(0, count);
    return;
  }
  std::vector<std::function<void()>> tasks;
  const std::uint64_t chunk = (count + workers - 1) / workers;
  for (std::uint64_t begin = 0; begin < count; begin += chunk) {
    const std::uint64_t end = std::min(count, begin + chunk);
    tasks.push_back([begin, end, &fn]() { fn(begin, end); });
  }
  run_parallel(tasks, workers);
}

void parallel_for_grain(
    std::uint64_t count, std::uint64_t grain, unsigned threads,
    const std::function<void(std::size_t, std::uint64_t, std::uint64_t)>&
        fn) {
  if (count == 0) return;  // no chunks — schedule nothing, not no-op tasks
  const std::uint64_t g = grain == 0 ? kStableGrain : grain;
  const std::size_t chunks = num_grain_chunks(count, g);
  const unsigned workers = std::max<unsigned>(
      1, static_cast<unsigned>(std::min<std::uint64_t>(
             threads == 0 ? 1 : threads, chunks)));
  if (workers == 1 || chunks == 1) {
    for (std::size_t c = 0; c < chunks; ++c) {
      fn(c, c * g, std::min<std::uint64_t>(count, (c + 1) * g));
    }
    return;
  }
  // One task per chunk; run_parallel caps concurrency at `workers` with its
  // own drivers, so a fine grain never floods the pool. Which executor runs
  // which chunk is scheduling noise — the (chunk, begin, end) triples are
  // fixed by count and g alone.
  std::vector<std::function<void()>> tasks;
  tasks.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::uint64_t begin = c * g;
    const std::uint64_t end = std::min<std::uint64_t>(count, begin + g);
    tasks.push_back([c, begin, end, &fn]() { fn(c, begin, end); });
  }
  run_parallel(tasks, workers);
}

unsigned default_threads() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace hp
