#include "hyperpart/util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <thread>

namespace hp {

void run_parallel(const std::vector<std::function<void()>>& tasks,
                  unsigned threads) {
  if (tasks.empty()) return;
  const unsigned workers = std::max(1u, std::min<unsigned>(
                                             threads,
                                             static_cast<unsigned>(
                                                 tasks.size())));
  if (workers == 1) {
    for (const auto& task : tasks) task();
    return;
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back([&]() {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= tasks.size()) return;
        tasks[i]();
      }
    });
  }
  for (auto& t : pool) t.join();
}

void parallel_for_chunks(
    std::uint64_t count, unsigned threads,
    const std::function<void(std::uint64_t, std::uint64_t)>& fn) {
  if (count == 0) return;
  const unsigned workers = std::max<unsigned>(
      1, static_cast<unsigned>(
             std::min<std::uint64_t>(threads == 0 ? 1 : threads, count)));
  std::vector<std::function<void()>> tasks;
  const std::uint64_t chunk = (count + workers - 1) / workers;
  for (std::uint64_t begin = 0; begin < count; begin += chunk) {
    const std::uint64_t end = std::min(count, begin + chunk);
    tasks.push_back([begin, end, &fn]() { fn(begin, end); });
  }
  run_parallel(tasks, workers);
}

unsigned default_threads() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace hp
