#include "hyperpart/util/timer.hpp"

namespace hp {

double Timer::seconds() const noexcept {
  return std::chrono::duration<double>(clock::now() - start_).count();
}

}  // namespace hp
