#include "hyperpart/algo/brute_force.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace hp {

std::optional<ExactResult> brute_force_partition(
    const Hypergraph& g, const BalanceConstraint& balance,
    const BruteForceOptions& opts) {
  const PartId k = balance.k();
  const NodeId n = g.num_nodes();
  Partition current(n, k);
  std::vector<Weight> load(k, 0);

  double best_cost = std::numeric_limits<double>::infinity();
  std::optional<Partition> best;
  std::uint64_t leaves = 0;

  const auto leaf_cost = [&](const Partition& p) -> double {
    if (opts.custom_cost) return opts.custom_cost(p);
    return static_cast<double>(cost(g, p, opts.metric));
  };

  const auto recurse = [&](auto&& self, NodeId v, PartId max_used) -> void {
    if (v == n) {
      ++leaves;
      if (opts.extra_constraints != nullptr &&
          !opts.extra_constraints->satisfied(g, current)) {
        return;
      }
      const double c = leaf_cost(current);
      if (c < best_cost) {
        best_cost = c;
        best = current;
      }
      return;
    }
    const PartId limit =
        opts.break_symmetry ? std::min<PartId>(k, max_used + 1) : k;
    for (PartId q = 0; q < limit; ++q) {
      if (load[q] + g.node_weight(v) > balance.capacity()) continue;
      current.assign(v, q);
      load[q] += g.node_weight(v);
      self(self, v + 1, std::max<PartId>(max_used, q + 1));
      load[q] -= g.node_weight(v);
    }
    current.assign(v, kInvalidPart);
  };
  recurse(recurse, 0, 0);

  if (!best) return std::nullopt;
  ExactResult res;
  res.cost = static_cast<Weight>(std::llround(best_cost));
  res.cost_value = best_cost;
  res.partition = std::move(*best);
  res.leaves_evaluated = leaves;
  return res;
}

}  // namespace hp
