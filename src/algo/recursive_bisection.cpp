#include "hyperpart/algo/recursive_bisection.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "hyperpart/core/subhypergraph.hpp"
#include "hyperpart/obs/telemetry.hpp"

namespace hp {

namespace {

/// Recursively split the sub-hypergraph induced by `nodes`; assign leaves
/// consecutive part ids starting at `first_part` into `out`.
/// Returns false when any split fails.
bool split(const Hypergraph& g, const std::vector<NodeId>& nodes,
           std::span<const PartId> arities, double epsilon,
           const MultilevelConfig& cfg, PartId first_part, PartId leaves_each,
           Partition& out, std::uint64_t seed) {
  if (arities.empty()) {
    for (const NodeId v : nodes) out.assign(v, first_part);
    return true;
  }
  const PartId b = arities.front();
  HP_SPAN("split", "part", first_part);
  HP_COUNTER_ADD("rb.splits", 1);
  const SubHypergraph sub = induced_subhypergraph(g, nodes);
  const auto balance =
      BalanceConstraint::for_graph(sub.graph, b, epsilon, /*relaxed=*/true);
  MultilevelConfig local = cfg;
  local.seed = seed;
  const auto p = multilevel_partition(sub.graph, balance, local);
  if (!p) return false;

  const PartId child_leaves = leaves_each / b;
  std::vector<std::vector<NodeId>> groups(b);
  for (NodeId i = 0; i < sub.graph.num_nodes(); ++i) {
    groups[(*p)[i]].push_back(sub.original_node[i]);
  }
  for (PartId i = 0; i < b; ++i) {
    if (!split(g, groups[i], arities.subspan(1), epsilon, cfg,
               first_part + i * child_leaves, child_leaves, out,
               seed * 0x9e3779b97f4a7c15ULL + i + 1)) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::optional<Partition> recursive_partition(const Hypergraph& g,
                                             const std::vector<PartId>& arities,
                                             double epsilon,
                                             const MultilevelConfig& cfg) {
  HP_SPAN("rb");
  PartId k = 1;
  std::size_t levels = 0;
  for (const PartId b : arities) {
    if (b < 1) throw std::invalid_argument("recursive_partition: arity < 1");
    k *= b;
    if (b > 1) ++levels;
  }
  // Imbalance compounds multiplicatively across levels; split each level's
  // budget so the product of per-level factors is (1+ε).
  const double level_epsilon =
      levels <= 1 ? epsilon
                  : std::pow(1.0 + epsilon, 1.0 / static_cast<double>(levels)) -
                        1.0;
  Partition out(g.num_nodes(), k);
  std::vector<NodeId> all(g.num_nodes());
  std::iota(all.begin(), all.end(), NodeId{0});
  if (!split(g, all, arities, level_epsilon, cfg, 0, k, out, cfg.seed)) {
    return std::nullopt;
  }
  return out;
}

std::optional<Partition> recursive_bisection(const Hypergraph& g, PartId k,
                                             double epsilon,
                                             const MultilevelConfig& cfg) {
  if (k == 0 || (k & (k - 1)) != 0) {
    throw std::invalid_argument("recursive_bisection: k must be a power of 2");
  }
  std::vector<PartId> arities;
  for (PartId x = k; x > 1; x /= 2) arities.push_back(2);
  return recursive_partition(g, arities, epsilon, cfg);
}

}  // namespace hp
