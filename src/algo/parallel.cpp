#include "hyperpart/algo/parallel.hpp"

#include <atomic>
#include <vector>

#include "hyperpart/util/thread_pool.hpp"

namespace hp {

Weight parallel_cost(const Hypergraph& g, const Partition& p,
                     CostMetric metric, unsigned threads) {
  std::atomic<Weight> total{0};
  parallel_for_chunks(
      g.num_edges(), threads,
      [&](std::uint64_t begin, std::uint64_t end) {
        Weight local = 0;
        for (EdgeId e = static_cast<EdgeId>(begin);
             e < static_cast<EdgeId>(end); ++e) {
          const PartId l = lambda(g, p, e);
          if (l <= 1) continue;
          local += metric == CostMetric::kCutNet
                       ? g.edge_weight(e)
                       : g.edge_weight(e) * static_cast<Weight>(l - 1);
        }
        total.fetch_add(local, std::memory_order_relaxed);
      });
  return total.load();
}

std::optional<Partition> multilevel_partition_multistart(
    const Hypergraph& g, const BalanceConstraint& balance,
    const MultilevelConfig& cfg, int starts, unsigned threads) {
  if (starts < 1) return std::nullopt;
  std::vector<std::optional<Partition>> results(
      static_cast<std::size_t>(starts));
  std::vector<std::function<void()>> tasks;
  tasks.reserve(static_cast<std::size_t>(starts));
  for (int i = 0; i < starts; ++i) {
    tasks.push_back([&, i]() {
      MultilevelConfig local = cfg;
      local.seed = cfg.seed + static_cast<std::uint64_t>(i);
      results[static_cast<std::size_t>(i)] =
          multilevel_partition(g, balance, local);
    });
  }
  run_parallel(tasks, threads);

  std::optional<Partition> best;
  Weight best_cost = 0;
  for (auto& candidate : results) {
    if (!candidate) continue;
    const Weight c = cost(g, *candidate, cfg.metric);
    if (!best || c < best_cost) {
      best = std::move(candidate);
      best_cost = c;
    }
  }
  return best;
}

}  // namespace hp
