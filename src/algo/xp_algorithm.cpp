#include "hyperpart/algo/xp_algorithm.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <string>
#include <unordered_set>
#include <vector>

namespace hp {

namespace {

/// Plain union-find over node ids.
class UnionFind {
 public:
  explicit UnionFind(NodeId n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), NodeId{0});
  }
  NodeId find(NodeId v) {
    while (parent_[v] != v) {
      parent_[v] = parent_[parent_[v]];
      v = parent_[v];
    }
    return v;
  }
  void unite(NodeId a, NodeId b) {
    a = find(a);
    b = find(b);
    if (a != b) parent_[a] = b;
  }

 private:
  std::vector<NodeId> parent_;
};

struct Component {
  Weight weight = 0;                    // total node weight
  std::uint32_t allowed = 0;            // bitmask of allowed colors
  std::vector<Weight> group_weight;     // weight per constraint group
  std::vector<NodeId> nodes;
};

/// Memoized feasibility: place components into k capacitated colors.
class Placer {
 public:
  Placer(std::vector<Component> comps, PartId k, Weight capacity,
         const ConstraintSet* groups)
      : comps_(std::move(comps)), k_(k), capacity_(capacity), groups_(groups) {
    // Heaviest components first: fail fast.
    std::sort(comps_.begin(), comps_.end(),
              [](const Component& a, const Component& b) {
                return a.weight > b.weight;
              });
    load_.assign(k_, 0);
    if (groups_ != nullptr) {
      group_load_.assign(groups_->num_constraints() * k_, 0);
    }
    colors_.assign(comps_.size(), 0);
  }

  [[nodiscard]] bool solve() { return place(0); }

  /// After a successful solve(): write component colors into a partition.
  void fill(Partition& p) const {
    for (std::size_t i = 0; i < comps_.size(); ++i) {
      for (const NodeId v : comps_[i].nodes) p.assign(v, colors_[i]);
    }
  }

 private:
  [[nodiscard]] std::string key(std::size_t idx) const {
    std::string s;
    s.reserve(8 + load_.size() * 8 + group_load_.size() * 8);
    const auto append = [&s](Weight w) {
      s.append(reinterpret_cast<const char*>(&w), sizeof(w));
    };
    append(static_cast<Weight>(idx));
    for (const Weight w : load_) append(w);
    for (const Weight w : group_load_) append(w);
    return s;
  }

  bool place(std::size_t idx) {
    if (idx == comps_.size()) return true;
    const std::string k = key(idx);
    if (failed_.count(k) != 0) return false;
    const Component& c = comps_[idx];
    for (PartId q = 0; q < k_; ++q) {
      if (!((c.allowed >> q) & 1)) continue;
      if (load_[q] + c.weight > capacity_) continue;
      bool group_ok = true;
      if (groups_ != nullptr) {
        for (std::size_t j = 0; j < groups_->num_constraints(); ++j) {
          if (group_load_[j * k_ + q] + c.group_weight[j] >
              groups_->group(j).capacity) {
            group_ok = false;
            break;
          }
        }
      }
      if (!group_ok) continue;
      load_[q] += c.weight;
      if (groups_ != nullptr) {
        for (std::size_t j = 0; j < groups_->num_constraints(); ++j) {
          group_load_[j * k_ + q] += c.group_weight[j];
        }
      }
      colors_[idx] = q;
      if (place(idx + 1)) return true;
      load_[q] -= c.weight;
      if (groups_ != nullptr) {
        for (std::size_t j = 0; j < groups_->num_constraints(); ++j) {
          group_load_[j * k_ + q] -= c.group_weight[j];
        }
      }
    }
    failed_.insert(k);
    return false;
  }

  std::vector<Component> comps_;
  PartId k_;
  Weight capacity_;
  const ConstraintSet* groups_;
  std::vector<Weight> load_;
  std::vector<Weight> group_load_;
  std::vector<PartId> colors_;
  std::unordered_set<std::string> failed_;
};

}  // namespace

XpResult xp_partition(const Hypergraph& g, const BalanceConstraint& balance,
                      double budget, const XpOptions& opts) {
  const PartId k = balance.k();
  const EdgeId m = g.num_edges();
  for (EdgeId e = 0; e < m; ++e) {
    if (g.edge_weight(e) < 1) {
      throw std::invalid_argument("xp_partition: edge weights must be >= 1");
    }
  }

  const auto default_edge_cost = [&](EdgeId e, std::uint32_t mask) -> double {
    const auto w = static_cast<double>(g.edge_weight(e));
    return opts.metric == CostMetric::kCutNet
               ? w
               : w * static_cast<double>(std::popcount(mask) - 1);
  };
  const auto edge_cost = opts.config_edge_cost
                             ? opts.config_edge_cost
                             : std::function<double(EdgeId, std::uint32_t)>(
                                   default_edge_cost);
  const auto default_solution_cost = [&](const Partition& p) -> double {
    return static_cast<double>(cost(g, p, opts.metric));
  };
  const auto sol_cost =
      opts.solution_cost
          ? opts.solution_cost
          : std::function<double(const Partition&)>(default_solution_cost);

  // Every cut edge costs at least 1 under all supported cost functions, so
  // at most floor(budget) edges can be cut.
  const EdgeId max_cut =
      static_cast<EdgeId>(std::min<double>(m, std::floor(budget + 1e-9)));

  // Color-set masks with at least two colors.
  std::vector<std::uint32_t> masks;
  for (std::uint32_t mask = 1; mask < (1u << k); ++mask) {
    if (std::popcount(mask) >= 2) masks.push_back(mask);
  }

  // Constraint groups may overlap (the fixed-color-pool constructions put
  // fixed nodes into both their Lemma D.2 group and the pairing group), so
  // component group-weights are accumulated per group below.
  const ConstraintSet* groups = opts.extra_constraints;

  XpResult result;
  result.status = XpStatus::kNoSolution;
  double best = std::numeric_limits<double>::infinity();
  std::uint64_t checked = 0;
  bool budget_hit = false;

  std::vector<EdgeId> chosen;
  std::vector<std::uint32_t> chosen_mask;

  // Evaluate one configuration: components of G − E₀, allowed colors,
  // capacitated placement; on success, compare the realized cost.
  const auto evaluate = [&](double config_cost) {
    ++checked;
    UnionFind uf(g.num_nodes());
    std::vector<bool> removed(m, false);
    for (const EdgeId e : chosen) removed[e] = true;
    for (EdgeId e = 0; e < m; ++e) {
      if (removed[e]) continue;
      const auto pins = g.pins(e);
      for (std::size_t i = 1; i < pins.size(); ++i) uf.unite(pins[0], pins[i]);
    }
    std::vector<NodeId> root_to_comp(g.num_nodes(), kInvalidNode);
    std::vector<Component> comps;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const NodeId r = uf.find(v);
      if (root_to_comp[r] == kInvalidNode) {
        root_to_comp[r] = static_cast<NodeId>(comps.size());
        comps.push_back(Component{});
        comps.back().allowed = (1u << k) - 1;
        if (groups != nullptr) {
          comps.back().group_weight.assign(groups->num_constraints(), 0);
        }
      }
      Component& c = comps[root_to_comp[r]];
      c.weight += g.node_weight(v);
      c.nodes.push_back(v);
    }
    if (groups != nullptr) {
      for (std::size_t j = 0; j < groups->num_constraints(); ++j) {
        for (const NodeId v : groups->group(j).nodes) {
          comps[root_to_comp[uf.find(v)]].group_weight[j] +=
              g.node_weight(v);
        }
      }
    }
    for (std::size_t i = 0; i < chosen.size(); ++i) {
      for (const NodeId v : g.pins(chosen[i])) {
        Component& c = comps[root_to_comp[uf.find(v)]];
        c.allowed &= chosen_mask[i];
      }
    }
    for (const Component& c : comps) {
      if (c.allowed == 0) return;  // infeasible configuration
    }

    Placer placer(std::move(comps), k, balance.capacity(), groups);
    if (!placer.solve()) return;
    Partition p(g.num_nodes(), k);
    placer.fill(p);
    const double realized = sol_cost(p);
    // realized ≤ config_cost always holds; keep the smaller realized cost.
    (void)config_cost;
    if (realized < best) {
      best = realized;
      result.partition = std::move(p);
    }
  };

  // DFS over subsets E₀ (with per-edge masks), pruned by the budget and by
  // the best configuration found so far.
  const auto dfs = [&](auto&& self, EdgeId next, double cost_so_far) -> void {
    if (checked >= opts.max_configurations) {
      budget_hit = true;
      return;
    }
    evaluate(cost_so_far);
    if (best == 0.0) return;  // optimum can not improve
    if (chosen.size() >= max_cut) return;
    for (EdgeId e = next; e < m; ++e) {
      for (const std::uint32_t mask : masks) {
        const double c = cost_so_far + edge_cost(e, mask);
        if (c > budget + 1e-9 || c >= best - 1e-9) continue;
        chosen.push_back(e);
        chosen_mask.push_back(mask);
        self(self, e + 1, c);
        chosen.pop_back();
        chosen_mask.pop_back();
        if (budget_hit || best == 0.0) return;
      }
      if (budget_hit || best == 0.0) return;
    }
  };
  dfs(dfs, 0, 0.0);

  result.configurations_checked = checked;
  if (best <= budget + 1e-9) result.cost = best;
  if (budget_hit && best != 0.0) {
    // Enumeration was cut short: the best found (if any) is not certified
    // optimal, and "no solution" is not proven.
    result.status = XpStatus::kBudgetExceeded;
  } else if (best <= budget + 1e-9) {
    result.status = XpStatus::kSolved;
  } else {
    result.status = XpStatus::kNoSolution;
  }
  return result;
}

}  // namespace hp
