#include "hyperpart/algo/greedy.hpp"

#include <algorithm>
#include <numeric>

#include "hyperpart/util/rng.hpp"

namespace hp {

std::optional<Partition> random_balanced_partition(
    const Hypergraph& g, const BalanceConstraint& balance,
    std::uint64_t seed) {
  const PartId k = balance.k();
  Rng rng{seed};
  std::vector<NodeId> order(g.num_nodes());
  std::iota(order.begin(), order.end(), NodeId{0});
  rng.shuffle(order);

  Partition p(g.num_nodes(), k);
  std::vector<Weight> load(k, 0);
  for (const NodeId v : order) {
    PartId best = kInvalidPart;
    for (PartId q = 0; q < k; ++q) {
      if (load[q] + g.node_weight(v) > balance.capacity()) continue;
      if (best == kInvalidPart || load[q] < load[best]) best = q;
    }
    if (best == kInvalidPart) return std::nullopt;
    p.assign(v, best);
    load[best] += g.node_weight(v);
  }
  return p;
}

std::optional<Partition> greedy_growing_partition(
    const Hypergraph& g, const BalanceConstraint& balance, CostMetric metric,
    std::uint64_t seed) {
  (void)metric;  // gain below is the cut-oriented growing score for both
  const PartId k = balance.k();
  const NodeId n = g.num_nodes();
  Rng rng{seed};

  Partition p(n, k);
  std::vector<bool> taken(n, false);
  NodeId assigned = 0;

  for (PartId q = 0; q + 1 < k; ++q) {
    // Target: an even share of the remaining weight across remaining parts.
    Weight remaining_weight = 0;
    for (NodeId v = 0; v < n; ++v) {
      if (!taken[v]) remaining_weight += g.node_weight(v);
    }
    const Weight target =
        std::min(balance.capacity(),
                 remaining_weight / static_cast<Weight>(k - q));

    // Affinity of each unassigned node to the growing part: number of pins
    // it shares with already-absorbed nodes, weighted by edge weight.
    std::vector<Weight> affinity(n, 0);
    Weight grown = 0;
    while (grown < target && assigned < n) {
      NodeId pick = kInvalidNode;
      // Prefer the highest-affinity frontier node; fall back to a random
      // unassigned node (fresh seed for a disconnected region).
      Weight best_aff = 0;
      for (NodeId v = 0; v < n; ++v) {
        if (taken[v] || grown + g.node_weight(v) > balance.capacity()) {
          continue;
        }
        if (affinity[v] > best_aff ||
            (pick == kInvalidNode && affinity[v] == best_aff)) {
          best_aff = affinity[v];
          pick = v;
        }
      }
      if (pick == kInvalidNode) break;
      if (best_aff == 0) {
        // No frontier: pick a random untaken node that fits.
        std::vector<NodeId> candidates;
        for (NodeId v = 0; v < n; ++v) {
          if (!taken[v] && grown + g.node_weight(v) <= balance.capacity()) {
            candidates.push_back(v);
          }
        }
        if (candidates.empty()) break;
        pick = candidates[rng.next_below(candidates.size())];
      }
      taken[pick] = true;
      p.assign(pick, q);
      grown += g.node_weight(pick);
      ++assigned;
      for (const EdgeId e : g.incident_edges(pick)) {
        for (const NodeId u : g.pins(e)) {
          if (!taken[u]) affinity[u] += g.edge_weight(e);
        }
      }
    }
  }

  // Everything left goes to the last part, capacity permitting; overflow to
  // the lightest feasible part.
  std::vector<Weight> load(k, 0);
  for (NodeId v = 0; v < n; ++v) {
    if (taken[v]) load[p[v]] += g.node_weight(v);
  }
  for (NodeId v = 0; v < n; ++v) {
    if (taken[v]) continue;
    PartId best = kInvalidPart;
    if (load[k - 1] + g.node_weight(v) <= balance.capacity()) {
      best = k - 1;
    } else {
      for (PartId q = 0; q < k; ++q) {
        if (load[q] + g.node_weight(v) > balance.capacity()) continue;
        if (best == kInvalidPart || load[q] < load[best]) best = q;
      }
    }
    if (best == kInvalidPart) return std::nullopt;
    p.assign(v, best);
    load[best] += g.node_weight(v);
  }
  return p;
}

}  // namespace hp
