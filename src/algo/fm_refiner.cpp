#include "hyperpart/algo/fm_refiner.hpp"

#include <algorithm>
#include <cassert>
#include <queue>
#include <vector>

#ifdef HP_FM_TRACE
#include <chrono>
#include <cstdio>
#endif

#include "hyperpart/core/connectivity_tracker.hpp"
#include "hyperpart/obs/telemetry.hpp"
#include "hyperpart/util/addressable_heap.hpp"
#include "hyperpart/util/overflow.hpp"
#include "hyperpart/util/thread_pool.hpp"

namespace hp {

namespace {

struct MoveCandidate {
  Weight gain;
  NodeId node;
  PartId to;
  bool operator<(const MoveCandidate& o) const noexcept {
    return gain < o.gain;  // max-heap by gain
  }
};

/// Per-group per-part weights for the extra constraints, kept
/// incrementally. A node may belong to several (overlapping) groups.
class GroupWeights {
 public:
  GroupWeights(const Hypergraph& g, const Partition& p,
               const ConstraintSet* cs)
      : cs_(cs) {
    if (cs_ == nullptr) return;
    const PartId k = p.k();
    groups_of_.assign(g.num_nodes(), {});
    weights_.assign(cs_->num_constraints() * k, 0);
    k_ = k;
    for (std::size_t j = 0; j < cs_->num_constraints(); ++j) {
      for (const NodeId v : cs_->group(j).nodes) {
        groups_of_[v].push_back(static_cast<std::uint32_t>(j));
        weights_[j * k + p[v]] += g.node_weight(v);
      }
    }
  }

  [[nodiscard]] bool move_feasible(const Hypergraph& g, NodeId v,
                                   PartId to) const {
    if (cs_ == nullptr) return true;
    for (const std::uint32_t j : groups_of_[v]) {
      if (sat_add(weights_[j * k_ + to], g.node_weight(v)) >
          cs_->group(j).capacity) {
        return false;
      }
    }
    return true;
  }

  void apply_move(const Hypergraph& g, NodeId v, PartId from, PartId to) {
    if (cs_ == nullptr) return;
    for (const std::uint32_t j : groups_of_[v]) {
      weights_[j * k_ + from] -= g.node_weight(v);
      weights_[j * k_ + to] += g.node_weight(v);
    }
  }

 private:
  const ConstraintSet* cs_;
  PartId k_ = 0;
  std::vector<std::vector<std::uint32_t>> groups_of_;
  std::vector<Weight> weights_;
};

struct AppliedMove {
  NodeId node;
  PartId from;
  PartId to;
};

// Equal-gain ties resolve by a deterministic (node, part) hash: unlike
// picking the lowest part id, this spreads plateau moves across parts
// instead of piling them onto one, without the longer improvement runs a
// lighter-part-first rule provokes. Shared by both engines so they pick
// the same target for the same gain row.
[[nodiscard]] std::uint64_t tie_rank(NodeId v, PartId q) noexcept {
  std::uint64_t x =
      (static_cast<std::uint64_t>(v) << 32) | static_cast<std::uint64_t>(q);
  x *= 0x9E3779B97F4A7C15ull;
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDull;
  x ^= x >> 33;
  return x;
}

// Fixed chunk grain for the synchronous propose phase. Boundary snapshots
// are much smaller than the node count, so a finer grain than kStableGrain
// keeps mid-size levels from collapsing into a single chunk. Never derived
// from the thread count — chunk boundaries must be a pure function of the
// snapshot size.
constexpr std::uint64_t kSyncProposeGrain = 1024;

/// Synchronous-round parallel engine: propose in parallel against frozen
/// state, commit sequentially in (gain desc, node id asc) order through
/// the tracker's revalidating batch API. See the header for the contract.
Weight sync_fm_refine(const Hypergraph& g, ConnectivityTracker& tracker,
                      Partition& p, const BalanceConstraint& balance,
                      const FmConfig& cfg, unsigned threads) {
  HP_SPAN("fm");
  const PartId k = p.k();
  const Weight capacity = balance.capacity();
  std::uint64_t total_moved = 0;

  std::vector<NodeId> snapshot;
  std::vector<std::vector<BatchMove>> chunk_out;
  std::vector<BatchMove> candidates;
  for (int round = 0; round < cfg.max_sync_rounds; ++round) {
    const auto& boundary = tracker.boundary_nodes();
    if (boundary.empty()) break;
    HP_SPAN("sync_round", round);
    HP_GAUGE_MAX("fm.boundary_peak",
                 static_cast<std::int64_t>(boundary.size()));
    // The boundary set mutates under commits; propose against a snapshot.
    // Its order is deterministic (node-id seeded, then shaped only by the
    // committed move sequence), so the chunking is too.
    snapshot.assign(boundary.begin(), boundary.end());
    const std::size_t chunks =
        num_grain_chunks(snapshot.size(), kSyncProposeGrain);
    chunk_out.assign(chunks, {});
    parallel_for_grain(
        snapshot.size(), kSyncProposeGrain, threads,
        [&](std::size_t c, std::uint64_t begin, std::uint64_t end) {
          auto& out = chunk_out[c];
          for (std::uint64_t i = begin; i < end; ++i) {
            if (i + 8 < end) tracker.prefetch_gain_row(snapshot[i + 8]);
            const NodeId v = snapshot[i];
            const Weight gain = tracker.cached_best_gain(v);
            if (gain <= 0) continue;  // only strict improvements move
            // Deterministic target among the parts attaining the best
            // gain, pre-filtered against the FROZEN part weights under the
            // hard capacity (no transient slack: nothing rolls back here).
            const PartId from = tracker.part_of(v);
            const Weight vw = g.node_weight(v);
            PartId best_q = k;
            std::uint64_t best_r = 0;
            for (PartId q = 0; q < k; ++q) {
              if (q == from || tracker.cached_gain(v, q) != gain) continue;
              const std::uint64_t rq = tie_rank(v, q);
              if (best_q != k && rq >= best_r) continue;
              if (sat_add(tracker.part_weight(q), vw) > capacity) continue;
              best_q = q;
              best_r = rq;
            }
            if (best_q == k) continue;
            out.push_back({v, best_q, gain});
          }
        });
    candidates.clear();
    for (auto& out : chunk_out) {
      candidates.insert(candidates.end(), out.begin(), out.end());
    }
    if (candidates.empty()) break;
    // Commit order is the engine's priority key: gain desc, node id asc.
    // Nodes appear at most once (one best move per boundary node), so the
    // key is total and the sort needs no stability.
    std::sort(candidates.begin(), candidates.end(),
              [](const BatchMove& a, const BatchMove& b) noexcept {
                return a.gain != b.gain ? a.gain > b.gain : a.node < b.node;
              });
    const BatchCommitResult res =
        tracker.apply_batch(candidates, capacity, /*min_gain=*/1);
    HP_COUNTER_ADD("fm.sync_rounds", 1);
    HP_COUNTER_ADD("fm.sync_moved", static_cast<std::int64_t>(res.applied));
    HP_COUNTER_ADD("fm.sync_conflicted",
                   static_cast<std::int64_t>(res.conflicted));
    total_moved += res.applied;
    if (res.applied == 0) break;  // every survivor went stale: converged
  }

  HP_COUNTER_ADD("fm.moves_applied", static_cast<std::int64_t>(total_moved));
  p = tracker.to_partition();
  return tracker.cost(cfg.metric);
}

}  // namespace

Weight fm_refine(const Hypergraph& g, Partition& p,
                 const BalanceConstraint& balance, const FmConfig& cfg) {
  const unsigned threads = cfg.threads == 0 ? default_threads() : cfg.threads;
  ConnectivityTracker tracker(g, p, threads);
  return fm_refine(g, tracker, p, balance, cfg);
}

Weight fm_refine(const Hypergraph& g, ConnectivityTracker& tracker,
                 Partition& p, const BalanceConstraint& balance,
                 const FmConfig& cfg) {
  const PartId k = p.k();
  const unsigned threads = cfg.threads == 0 ? default_threads() : cfg.threads;
  const bool cached = cfg.use_gain_cache;
  if (cached && (!tracker.gain_cache_enabled() ||
                 tracker.gain_cache_metric() != cfg.metric)) {
    tracker.enable_gain_cache(cfg.metric, threads);
  }
  if (cfg.sync_rounds && cached && cfg.extra_constraints == nullptr) {
    return sync_fm_refine(g, tracker, p, balance, cfg, threads);
  }
  HP_SPAN("fm");

  // Pass-invariant state, hoisted and reused across passes: the heaviest
  // node weight (for the transient-imbalance slack), the constraint-group
  // weights (kept exact through moves and rollbacks), and the per-pass
  // scratch buffers.
  Weight max_node_weight = 1;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    max_node_weight = std::max(max_node_weight, g.node_weight(v));
  }
  const Weight slack_capacity = sat_add(balance.capacity(), max_node_weight);
  GroupWeights groups(g, p, cfg.extra_constraints);
  std::vector<std::uint8_t> locked(g.num_nodes(), 0);
  std::vector<AppliedMove> moves;
  std::priority_queue<MoveCandidate> heap;  // legacy engine: (node, part)
  // Cached engine: addressable heap with exactly one entry per node, keyed
  // by the node's best feasible cached gain and updated in place — no
  // stale duplicates, heap size bounded by the boundary size.
  AddressableMaxHeap<Weight, NodeId> nheap(cached ? g.num_nodes() : 0);

  HP_TELEMETRY_ONLY(std::uint64_t obs_pushes = 0; std::uint64_t obs_pops = 0;
                    std::uint64_t obs_applied = 0;
                    std::uint64_t obs_rolled_back = 0;)
  const auto push_moves = [&](NodeId v) {
    const PartId from = tracker.part_of(v);
    for (PartId q = 0; q < k; ++q) {
      if (q == from) continue;
      heap.push({tracker.gain(v, q, cfg.metric), v, q});
      HP_TELEMETRY_ONLY(++obs_pushes;)
    }
  };
  // Feasible target of v among the parts attaining its cached best gain
  // (the popped heap key). The only O(k) row scan of the cached engine —
  // it runs once per pop, not per seeded/touched node, because the tracker
  // maintains the best gain itself. Returns k when every best-gain target
  // is infeasible right now; the node simply rejoins the heap the next
  // time one of its gains changes.
  const auto select_target = [&](NodeId v, Weight key) -> PartId {
    const PartId from = tracker.part_of(v);
    const Weight vw = g.node_weight(v);
    PartId best_q = k;
    std::uint64_t best_r = 0;
    for (PartId q = 0; q < k; ++q) {
      if (q == from || tracker.cached_gain(v, q) != key) continue;
      const std::uint64_t rq = tie_rank(v, q);
      if (best_q != k && rq >= best_r) continue;
      if (sat_add(tracker.part_weight(q), vw) > slack_capacity ||
          !groups.move_feasible(g, v, q)) {
        continue;
      }
      best_q = q;
      best_r = rq;
    }
    return best_q;
  };
  const auto all_balanced = [&]() {
    for (PartId q = 0; q < k; ++q) {
      if (tracker.part_weight(q) > balance.capacity()) return false;
    }
    return true;
  };

#ifdef HP_FM_TRACE
  long long trace_move_ns = 0, trace_touch_ns = 0, trace_seed_ns = 0;
  unsigned long long trace_touched = 0, trace_pops = 0, trace_fixes = 0;
#endif
  for (int pass = 0; pass < cfg.max_passes; ++pass) {
    HP_SPAN("pass", pass);
    HP_COUNTER_ADD("fm.passes", 1);
    HP_GAUGE_MAX("fm.boundary_peak",
                 static_cast<std::int64_t>(tracker.boundary_nodes().size()));
    heap = {};
    nheap.clear();
    std::fill(locked.begin(), locked.end(), std::uint8_t{0});
    moves.clear();
    if (cached) {
      // Only boundary nodes can have positive gain: moving a node with no
      // cut incident edge can only create cut. Classic FM still explores
      // zero/negative-gain moves, but only from the cut frontier.
      if (tracker.boundary_nodes().empty()) break;  // cost is already 0
#ifdef HP_FM_TRACE
      const auto t_seed0 = std::chrono::steady_clock::now();
#endif
      // Key = the tracker-maintained best cached gain, feasibility checked
      // at pop: O(1) per boundary node.
      const auto& boundary = tracker.boundary_nodes();
      for (std::size_t i = 0; i < boundary.size(); ++i) {
        if (i + 8 < boundary.size()) tracker.prefetch_gain_row(boundary[i + 8]);
        const NodeId v = boundary[i];
        nheap.upsert(v, tracker.cached_best_gain(v));
      }
      HP_TELEMETRY_ONLY(obs_pushes += boundary.size();)
#ifdef HP_FM_TRACE
      trace_seed_ns += std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now() - t_seed0)
                           .count();
#endif
    } else {
      for (NodeId v = 0; v < g.num_nodes(); ++v) push_moves(v);
    }

    const Weight start_cost = tracker.cost(cfg.metric);
    Weight running = start_cost;
    Weight best = start_cost;
    std::size_t best_prefix = 0;
    std::uint32_t since_improvement = 0;

    // Classic FM tolerates a transient one-node imbalance during a pass —
    // otherwise no single move is feasible from an exactly balanced
    // bisection. Only balanced prefixes are eligible as the rollback
    // target, so the result is always feasible.
    while (since_improvement < cfg.patience) {
      NodeId sel_node = 0;
      PartId sel_to = 0;
      Weight sel_gain = 0;
      bool found = false;
      if (cached) {
        // Keys are exact, not lazy: every gain change re-keys its node via
        // the touched list below, so the top key IS the node's current
        // best cached gain. Only balance feasibility is checked here.
        while (!nheap.empty()) {
#ifdef HP_FM_TRACE
          ++trace_pops;
#endif
          HP_TELEMETRY_ONLY(++obs_pops;)
          const NodeId v = nheap.top_id();
          const Weight key = nheap.top_key();
          assert(key == tracker.cached_best_gain(v));
          nheap.pop();
          const PartId to = select_target(v, key);
          if (to == k) continue;  // best-gain targets infeasible; drop
          sel_node = v;
          sel_to = to;
          sel_gain = key;
          found = true;
          break;
        }
      } else {
        while (!heap.empty()) {
          const MoveCandidate cand = heap.top();
          heap.pop();
          if (locked[cand.node]) continue;
          if (tracker.part_of(cand.node) == cand.to) continue;
          const Weight fresh = tracker.gain(cand.node, cand.to, cfg.metric);
          if (fresh != cand.gain) {
            heap.push({fresh, cand.node, cand.to});  // stale; reinsert
            continue;
          }
          if (sat_add(tracker.part_weight(cand.to), g.node_weight(cand.node)) >
                  slack_capacity ||
              !groups.move_feasible(g, cand.node, cand.to)) {
            continue;  // infeasible now; dropped for this pass
          }
          sel_node = cand.node;
          sel_to = cand.to;
          sel_gain = fresh;
          found = true;
          break;
        }
      }
      if (!found) break;

      const PartId from = tracker.part_of(sel_node);
#ifdef HP_FM_TRACE
      const auto t_move0 = std::chrono::steady_clock::now();
#endif
      tracker.move(sel_node, sel_to);
#ifdef HP_FM_TRACE
      trace_move_ns += std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now() - t_move0)
                           .count();
#endif
      groups.apply_move(g, sel_node, from, sel_to);
      locked[sel_node] = 1;
      moves.push_back({sel_node, from, sel_to});
      running -= sel_gain;
#ifdef HP_FM_TRACE
      if (moves.size() % 5000 == 0) {
        std::fprintf(stderr, "  at %zu moves running=%lld\n", moves.size(),
                     static_cast<long long>(running));
      }
#endif
      if (running < best && all_balanced()) {
        best = running;
        best_prefix = moves.size();
        since_improvement = 0;
      } else {
        ++since_improvement;
      }
      if (cached) {
#ifdef HP_FM_TRACE
        const auto t_touch0 = std::chrono::steady_clock::now();
        trace_touched += tracker.last_move_touched().size();
#endif
        // The tracker recorded exactly the nodes whose cached gains
        // changed; re-key those (one addressable-heap entry per node,
        // O(1) each — the tracker already knows the new best gain).
        const auto& touched = tracker.last_move_touched();
        for (std::size_t i = 0; i < touched.size(); ++i) {
          const NodeId u = touched[i];
          if (locked[u]) continue;
          if (!tracker.is_boundary(u)) {
            nheap.erase(u);  // left the cut frontier; all gains ≤ 0
          } else {
            nheap.upsert(u, tracker.cached_best_gain(u));
            HP_TELEMETRY_ONLY(++obs_pushes;)
          }
        }
#ifdef HP_FM_TRACE
        trace_touch_ns += std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now() - t_touch0)
                              .count();
#endif
      } else {
        // Gains of neighbors changed; push fresh candidates (lazy heap).
        for (const EdgeId e : g.incident_edges(sel_node)) {
          for (const NodeId u : g.pins(e)) {
            if (!locked[u]) push_moves(u);
          }
        }
      }
    }

#ifdef HP_FM_TRACE
    std::fprintf(stderr,
                 "pass %d engine=%s moves=%zu start=%lld best=%lld "
                 "move_ms=%.1f touch_ms=%.1f seed_ms=%.1f touched=%llu "
                 "pops=%llu fixes=%llu\n",
                 pass, cached ? "cached" : "legacy", moves.size(),
                 static_cast<long long>(start_cost),
                 static_cast<long long>(best), trace_move_ns * 1e-6,
                 trace_touch_ns * 1e-6, trace_seed_ns * 1e-6,
                 static_cast<unsigned long long>(trace_touched),
                 static_cast<unsigned long long>(trace_pops),
                 static_cast<unsigned long long>(trace_fixes));
    trace_move_ns = trace_touch_ns = trace_seed_ns = 0;
    trace_touched = trace_pops = trace_fixes = 0;
#endif
    // Roll back past the best prefix.
    for (std::size_t i = moves.size(); i > best_prefix; --i) {
      const auto& m = moves[i - 1];
      tracker.move(m.node, m.from);
      groups.apply_move(g, m.node, m.to, m.from);
    }
    HP_TELEMETRY_ONLY(obs_applied += best_prefix;
                      obs_rolled_back += moves.size() - best_prefix;)
    if (best >= start_cost) break;  // pass brought no improvement
    if (static_cast<double>(start_cost - best) <
        cfg.min_pass_improvement * static_cast<double>(start_cost)) {
      break;  // converged: the next pass would win even less
    }
  }

  HP_COUNTER_ADD("fm.heap_pushes", static_cast<std::int64_t>(obs_pushes));
  HP_COUNTER_ADD("fm.gain_cache_hits", static_cast<std::int64_t>(obs_pops));
  HP_COUNTER_ADD("fm.moves_applied", static_cast<std::int64_t>(obs_applied));
  HP_COUNTER_ADD("fm.moves_rolled_back",
                 static_cast<std::int64_t>(obs_rolled_back));
  p = tracker.to_partition();
  return tracker.cost(cfg.metric);
}

}  // namespace hp
