#include "hyperpart/algo/fm_refiner.hpp"

#include <algorithm>
#include <queue>
#include <vector>

#include "hyperpart/core/connectivity_tracker.hpp"

namespace hp {

namespace {

struct MoveCandidate {
  Weight gain;
  NodeId node;
  PartId to;
  bool operator<(const MoveCandidate& o) const noexcept {
    return gain < o.gain;  // max-heap by gain
  }
};

/// Per-group per-part weights for the extra constraints, kept
/// incrementally. A node may belong to several (overlapping) groups.
class GroupWeights {
 public:
  GroupWeights(const Hypergraph& g, const Partition& p,
               const ConstraintSet* cs)
      : cs_(cs) {
    if (cs_ == nullptr) return;
    const PartId k = p.k();
    groups_of_.assign(g.num_nodes(), {});
    weights_.assign(cs_->num_constraints() * k, 0);
    k_ = k;
    for (std::size_t j = 0; j < cs_->num_constraints(); ++j) {
      for (const NodeId v : cs_->group(j).nodes) {
        groups_of_[v].push_back(static_cast<std::uint32_t>(j));
        weights_[j * k + p[v]] += g.node_weight(v);
      }
    }
  }

  [[nodiscard]] bool move_feasible(const Hypergraph& g, NodeId v,
                                   PartId to) const {
    if (cs_ == nullptr) return true;
    for (const std::uint32_t j : groups_of_[v]) {
      if (weights_[j * k_ + to] + g.node_weight(v) >
          cs_->group(j).capacity) {
        return false;
      }
    }
    return true;
  }

  void apply_move(const Hypergraph& g, NodeId v, PartId from, PartId to) {
    if (cs_ == nullptr) return;
    for (const std::uint32_t j : groups_of_[v]) {
      weights_[j * k_ + from] -= g.node_weight(v);
      weights_[j * k_ + to] += g.node_weight(v);
    }
  }

 private:
  const ConstraintSet* cs_;
  PartId k_ = 0;
  std::vector<std::vector<std::uint32_t>> groups_of_;
  std::vector<Weight> weights_;
};

struct AppliedMove {
  NodeId node;
  PartId from;
  PartId to;
};

}  // namespace

Weight fm_refine(const Hypergraph& g, Partition& p,
                 const BalanceConstraint& balance, const FmConfig& cfg) {
  const PartId k = p.k();
  ConnectivityTracker tracker(g, p);

  for (int pass = 0; pass < cfg.max_passes; ++pass) {
    GroupWeights groups(g, tracker.to_partition(), cfg.extra_constraints);
    std::vector<bool> locked(g.num_nodes(), false);
    std::priority_queue<MoveCandidate> heap;
    const auto push_moves = [&](NodeId v) {
      const PartId from = tracker.part_of(v);
      for (PartId q = 0; q < k; ++q) {
        if (q == from) continue;
        heap.push({tracker.gain(v, q, cfg.metric), v, q});
      }
    };
    for (NodeId v = 0; v < g.num_nodes(); ++v) push_moves(v);

    const Weight start_cost = tracker.cost(cfg.metric);
    Weight running = start_cost;
    Weight best = start_cost;
    std::vector<AppliedMove> moves;
    std::size_t best_prefix = 0;
    std::uint32_t since_improvement = 0;

    // Classic FM tolerates a transient one-node imbalance during a pass —
    // otherwise no single move is feasible from an exactly balanced
    // bisection. Only balanced prefixes are eligible as the rollback
    // target, so the result is always feasible.
    Weight max_node_weight = 1;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      max_node_weight = std::max(max_node_weight, g.node_weight(v));
    }
    const Weight slack_capacity = balance.capacity() + max_node_weight;
    const auto all_balanced = [&]() {
      for (PartId q = 0; q < k; ++q) {
        if (tracker.part_weight(q) > balance.capacity()) return false;
      }
      return true;
    };

    while (!heap.empty() && since_improvement < cfg.patience) {
      const MoveCandidate cand = heap.top();
      heap.pop();
      if (locked[cand.node]) continue;
      const PartId from = tracker.part_of(cand.node);
      if (from == cand.to) continue;
      const Weight fresh = tracker.gain(cand.node, cand.to, cfg.metric);
      if (fresh != cand.gain) {
        heap.push({fresh, cand.node, cand.to});  // stale; reinsert
        continue;
      }
      if (tracker.part_weight(cand.to) + g.node_weight(cand.node) >
              slack_capacity ||
          !groups.move_feasible(g, cand.node, cand.to)) {
        continue;  // infeasible now; dropped for this pass
      }

      tracker.move(cand.node, cand.to);
      groups.apply_move(g, cand.node, from, cand.to);
      locked[cand.node] = true;
      moves.push_back({cand.node, from, cand.to});
      running -= fresh;
      if (running < best && all_balanced()) {
        best = running;
        best_prefix = moves.size();
        since_improvement = 0;
      } else {
        ++since_improvement;
      }
      // Gains of neighbors changed; push fresh candidates (lazy heap).
      for (const EdgeId e : g.incident_edges(cand.node)) {
        for (const NodeId u : g.pins(e)) {
          if (!locked[u]) push_moves(u);
        }
      }
    }

    // Roll back past the best prefix.
    for (std::size_t i = moves.size(); i > best_prefix; --i) {
      const auto& m = moves[i - 1];
      tracker.move(m.node, m.from);
    }
    if (best >= start_cost) break;  // pass brought no improvement
  }

  p = tracker.to_partition();
  return tracker.cost(cfg.metric);
}

}  // namespace hp
