#include "hyperpart/algo/annealing.hpp"

#include <cmath>

#include "hyperpart/algo/greedy.hpp"
#include "hyperpart/core/connectivity_tracker.hpp"
#include "hyperpart/util/rng.hpp"

namespace hp {

std::optional<Partition> annealing_partition(const Hypergraph& g,
                                             const BalanceConstraint& balance,
                                             const AnnealingConfig& cfg) {
  const auto start = random_balanced_partition(g, balance, cfg.seed);
  if (!start) return std::nullopt;
  const PartId k = balance.k();
  Rng rng{cfg.seed ^ 0xa22ea1ULL};
  ConnectivityTracker tracker(g, *start);

  Partition best = *start;
  Weight best_cost = tracker.cost(cfg.metric);
  double temperature = cfg.initial_temperature;

  const std::uint64_t moves_per_step =
      static_cast<std::uint64_t>(cfg.moves_per_node) * g.num_nodes();
  for (int step = 0; step < cfg.temperature_steps; ++step) {
    for (std::uint64_t attempt = 0; attempt < moves_per_step; ++attempt) {
      const auto v = static_cast<NodeId>(rng.next_below(g.num_nodes()));
      const auto to = static_cast<PartId>(rng.next_below(k));
      const PartId from = tracker.part_of(v);
      if (to == from) continue;
      if (tracker.part_weight(to) + g.node_weight(v) > balance.capacity()) {
        continue;
      }
      const Weight gain = tracker.gain(v, to, cfg.metric);
      // Metropolis: accept improvements, and regressions with probability
      // exp(gain / T).
      if (gain < 0 &&
          rng.next_double() >=
              std::exp(static_cast<double>(gain) / temperature)) {
        continue;
      }
      tracker.move(v, to);
      const Weight current = tracker.cost(cfg.metric);
      if (current < best_cost) {
        best_cost = current;
        best = tracker.to_partition();
      }
    }
    temperature *= cfg.cooling;
  }
  return best;
}

}  // namespace hp
