#include "hyperpart/algo/vcycle.hpp"

#include <vector>

#include "hyperpart/algo/coarsening.hpp"
#include "hyperpart/algo/fm_refiner.hpp"
#include "hyperpart/util/rng.hpp"
#include "hyperpart/util/thread_pool.hpp"

namespace hp {

namespace {

/// Coarse partition induced by a fine one under within-part clustering.
[[nodiscard]] Partition induce_coarse(const Partition& fine,
                                      const CoarseLevel& level) {
  Partition coarse(level.graph.num_nodes(), fine.k());
  for (NodeId v = 0; v < fine.num_nodes(); ++v) {
    coarse.assign(level.fine_to_coarse[v], fine[v]);
  }
  return coarse;
}

}  // namespace

Weight vcycle_refine(const Hypergraph& g, Partition& p,
                     const BalanceConstraint& balance,
                     const MultilevelConfig& cfg, int cycles) {
  Rng rng{cfg.seed ^ 0x5ec7c1e5ULL};
  FmConfig fm = cfg.fm;
  fm.metric = cfg.metric;
  const unsigned threads = fm.threads == 0 ? default_threads() : fm.threads;
  // Same size-gated engine choice as multilevel_partition: a pure function
  // of the level's node count, never of the thread count.
  const auto fm_for = [&](NodeId n) {
    FmConfig level_fm = fm;
    level_fm.sync_rounds = n >= cfg.sync_fm_min_nodes;
    return level_fm;
  };
  Weight result = fm_refine(g, p, balance, fm_for(g.num_nodes()));

  // Scratch pool shared by every coarsening level of every cycle.
  CoarsenMemory coarsen_mem;
  for (int cycle = 0; cycle < cycles; ++cycle) {
    // Partition-aware coarsening hierarchy.
    const Weight max_cluster = std::max<Weight>(1, balance.capacity() / 3);
    std::vector<CoarseLevel> levels;
    std::vector<Partition> partitions;  // per coarse level
    const Hypergraph* current = &g;
    const Partition* current_p = &p;
    const NodeId stop_at = std::max<NodeId>(cfg.coarsen_limit, 4 * p.k());
    while (current->num_nodes() > stop_at) {
      CoarseLevel next = coarsen_once(*current, max_cluster, rng(),
                                      current_p, threads, &coarsen_mem);
      if (next.graph.num_nodes() >
          static_cast<NodeId>(0.95 * current->num_nodes())) {
        break;
      }
      partitions.push_back(induce_coarse(*current_p, next));
      levels.push_back(std::move(next));
      current = &levels.back().graph;
      current_p = &partitions.back();
    }
    if (levels.empty()) break;

    // Refine bottom-up.
    Partition coarse = partitions.back();
    fm_refine(levels.back().graph, coarse, balance,
              fm_for(levels.back().graph.num_nodes()));
    for (std::size_t i = levels.size(); i-- > 0;) {
      Partition fine = project_partition(coarse, levels[i].fine_to_coarse);
      const Hypergraph& fine_graph = i == 0 ? g : levels[i - 1].graph;
      fm_refine(fine_graph, fine, balance, fm_for(fine_graph.num_nodes()));
      coarse = std::move(fine);
    }
    const Weight refined = cost(g, coarse, cfg.metric);
    if (refined < result) {
      result = refined;
      p = std::move(coarse);
    }
  }
  return result;
}

}  // namespace hp
