#include "hyperpart/algo/incremental.hpp"

#include <algorithm>

#include "hyperpart/obs/telemetry.hpp"

namespace hp {

bool rebalance_with_tracker(const Hypergraph& g, ConnectivityTracker& tracker,
                            const BalanceConstraint& balance, CostMetric metric,
                            unsigned threads) {
  HP_SPAN("rebalance");
  const PartId k = tracker.k();
  const Weight capacity = balance.capacity();
  if (!tracker.gain_cache_enabled() || tracker.gain_cache_metric() != metric) {
    tracker.enable_gain_cache(metric, threads);
  }
  const NodeId n = g.num_nodes();
  for (;;) {
    // Most-overweight part, ties broken toward the lowest id so the move
    // sequence is a pure function of the tracker state.
    PartId from = kInvalidPart;
    Weight worst_excess = 0;
    for (PartId q = 0; q < k; ++q) {
      const Weight excess = tracker.part_weight(q) - capacity;
      if (excess > worst_excess) {
        worst_excess = excess;
        from = q;
      }
    }
    if (from == kInvalidPart) return true;

    // Cheapest eviction: the (node, target) pair maximizing the cached gain
    // among feasible targets. Gains here are usually negative — balance
    // outranks cost, and the FM pass afterwards wins back what it can.
    NodeId best_v = kInvalidNode;
    PartId best_q = kInvalidPart;
    Weight best_gain = 0;
    for (NodeId v = 0; v < n; ++v) {
      if (tracker.part_of(v) != from) continue;
      const Weight w = g.node_weight(v);
      if (w == 0) continue;  // moving it cannot reduce the excess
      for (PartId q = 0; q < k; ++q) {
        if (q == from) continue;
        if (tracker.part_weight(q) + w > capacity) continue;
        const Weight gain = tracker.cached_gain(v, q);
        if (best_v == kInvalidNode || gain > best_gain ||
            (gain == best_gain && (v < best_v || (v == best_v && q < best_q)))) {
          best_v = v;
          best_q = q;
          best_gain = gain;
        }
      }
    }
    if (best_v == kInvalidNode) return false;  // nothing fits anywhere
    tracker.move(best_v, best_q);
    HP_COUNTER_ADD("delta_fm.rebalance_moves", 1);
  }
}

std::optional<Weight> delta_fm_refine(const Hypergraph& g,
                                      ConnectivityTracker& tracker,
                                      Partition& p,
                                      const BalanceConstraint& balance,
                                      const FmConfig& cfg) {
  HP_SPAN("delta_fm");
  const Weight capacity = balance.capacity();
  bool feasible = true;
  for (PartId q = 0; q < tracker.k(); ++q) {
    if (tracker.part_weight(q) > capacity) {
      feasible = false;
      break;
    }
  }
  if (!feasible &&
      !rebalance_with_tracker(g, tracker, balance, cfg.metric, cfg.threads)) {
    return std::nullopt;
  }
  p = tracker.to_partition();
  const Weight cost = fm_refine(g, tracker, p, balance, cfg);
  HP_COUNTER_ADD("delta_fm.runs", 1);
  return cost;
}

}  // namespace hp
