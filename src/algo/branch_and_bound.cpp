#include "hyperpart/algo/branch_and_bound.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <vector>

namespace hp {

namespace {

/// Incremental partial-cost tracker over a prefix of assigned nodes. The
/// partial cost (over assigned pins only) is monotone under further
/// assignments, hence a valid lower bound.
class PartialCost {
 public:
  PartialCost(const Hypergraph& g, PartId k, CostMetric metric)
      : g_(g), k_(k), metric_(metric),
        counts_(static_cast<std::size_t>(g.num_edges()) * k, 0),
        lambda_(g.num_edges(), 0) {}

  [[nodiscard]] Weight cost() const noexcept { return cost_; }

  void assign(NodeId v, PartId q) {
    for (const EdgeId e : g_.incident_edges(v)) {
      auto& c = counts_[static_cast<std::size_t>(e) * k_ + q];
      if (c == 0) {
        const PartId l = ++lambda_[e];
        if (l == 2) {
          cost_ += g_.edge_weight(e);
        } else if (l > 2 && metric_ == CostMetric::kConnectivity) {
          cost_ += g_.edge_weight(e);
        }
      }
      ++c;
    }
  }

  void unassign(NodeId v, PartId q) {
    for (const EdgeId e : g_.incident_edges(v)) {
      auto& c = counts_[static_cast<std::size_t>(e) * k_ + q];
      --c;
      if (c == 0) {
        const PartId l = lambda_[e]--;
        if (l == 2) {
          cost_ -= g_.edge_weight(e);
        } else if (l > 2 && metric_ == CostMetric::kConnectivity) {
          cost_ -= g_.edge_weight(e);
        }
      }
    }
  }

 private:
  const Hypergraph& g_;
  PartId k_;
  CostMetric metric_;
  std::vector<std::uint32_t> counts_;
  std::vector<PartId> lambda_;
  Weight cost_ = 0;
};

/// BFS order from the highest-degree node: consecutive nodes share edges,
/// so partial costs become informative early.
[[nodiscard]] std::vector<NodeId> search_order(const Hypergraph& g) {
  const NodeId n = g.num_nodes();
  std::vector<NodeId> order;
  order.reserve(n);
  std::vector<bool> seen(n, false);
  std::vector<NodeId> queue;
  for (NodeId round = 0; order.size() < n; ++round) {
    NodeId start = kInvalidNode;
    for (NodeId v = 0; v < n; ++v) {
      if (!seen[v] &&
          (start == kInvalidNode || g.degree(v) > g.degree(start))) {
        start = v;
      }
    }
    queue.assign(1, start);
    seen[start] = true;
    while (!queue.empty()) {
      const NodeId v = queue.front();
      queue.erase(queue.begin());
      order.push_back(v);
      for (const EdgeId e : g.incident_edges(v)) {
        for (const NodeId u : g.pins(e)) {
          if (!seen[u]) {
            seen[u] = true;
            queue.push_back(u);
          }
        }
      }
    }
  }
  return order;
}

}  // namespace

std::optional<BnbResult> branch_and_bound_partition(
    const Hypergraph& g, const BalanceConstraint& balance,
    const BnbOptions& opts) {
  const PartId k = balance.k();
  const NodeId n = g.num_nodes();
  const auto order = search_order(g);

  PartialCost partial(g, k, opts.metric);
  std::vector<Weight> load(k, 0);
  Partition current(n, k);

  Weight best_cost = opts.initial_upper_bound
                         ? *opts.initial_upper_bound + 1
                         : std::numeric_limits<Weight>::max();
  std::optional<Partition> best;
  std::uint64_t explored = 0;
  bool budget_hit = false;

  const auto recurse = [&](auto&& self, std::size_t idx,
                           PartId max_used) -> void {
    if (++explored > opts.max_nodes) {
      budget_hit = true;
      return;
    }
    if (partial.cost() >= best_cost) return;  // bound
    if (idx == n) {
      best_cost = partial.cost();
      best = current;
      return;
    }
    const NodeId v = order[idx];
    const PartId limit = std::min<PartId>(k, max_used + 1);
    for (PartId q = 0; q < limit && !budget_hit; ++q) {
      if (load[q] + g.node_weight(v) > balance.capacity()) continue;
      load[q] += g.node_weight(v);
      partial.assign(v, q);
      current.assign(v, q);
      self(self, idx + 1, std::max<PartId>(max_used, q + 1));
      current.assign(v, kInvalidPart);
      partial.unassign(v, q);
      load[q] -= g.node_weight(v);
    }
  };
  recurse(recurse, 0, 0);

  if (!best) return std::nullopt;
  BnbResult res;
  res.proven_optimal = !budget_hit;
  res.cost = best_cost;
  res.partition = std::move(*best);
  res.nodes_explored = explored;
  return res;
}

}  // namespace hp
