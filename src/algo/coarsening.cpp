#include "hyperpart/algo/coarsening.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "hyperpart/util/rng.hpp"

namespace hp {

CoarseLevel coarsen_once(const Hypergraph& g, Weight max_cluster_weight,
                         std::uint64_t seed,
                         const Partition* restrict_parts) {
  const NodeId n = g.num_nodes();
  Rng rng{seed};
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), NodeId{0});
  rng.shuffle(order);

  std::vector<NodeId> match(n, kInvalidNode);
  // Scratch ratings, reset sparsely between nodes.
  std::vector<double> rating(n, 0.0);
  std::vector<NodeId> touched;
  for (const NodeId v : order) {
    if (match[v] != kInvalidNode) continue;
    touched.clear();
    for (const EdgeId e : g.incident_edges(v)) {
      const auto pins = g.pins(e);
      if (pins.size() < 2) continue;
      // Heavy-edge rating w(e)/(|e|−1), the standard multilevel score.
      const double score = static_cast<double>(g.edge_weight(e)) /
                           static_cast<double>(pins.size() - 1);
      for (const NodeId u : pins) {
        if (u == v || match[u] != kInvalidNode) continue;
        if (g.node_weight(u) + g.node_weight(v) > max_cluster_weight) continue;
        if (restrict_parts != nullptr &&
            (*restrict_parts)[u] != (*restrict_parts)[v]) {
          continue;
        }
        if (rating[u] == 0.0) touched.push_back(u);
        rating[u] += score;
      }
    }
    NodeId best = kInvalidNode;
    double best_rating = 0.0;
    for (const NodeId u : touched) {
      if (rating[u] > best_rating) {
        best_rating = rating[u];
        best = u;
      }
      rating[u] = 0.0;
    }
    if (best != kInvalidNode) {
      match[v] = best;
      match[best] = v;
    }
  }

  // Assign cluster ids.
  CoarseLevel level;
  level.fine_to_coarse.assign(n, kInvalidNode);
  NodeId clusters = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (level.fine_to_coarse[v] != kInvalidNode) continue;
    level.fine_to_coarse[v] = clusters;
    if (match[v] != kInvalidNode) level.fine_to_coarse[match[v]] = clusters;
    ++clusters;
  }

  // Build coarse edges; merge duplicates by hashing the sorted pin list.
  std::vector<Weight> coarse_node_weight(clusters, 0);
  for (NodeId v = 0; v < n; ++v) {
    coarse_node_weight[level.fine_to_coarse[v]] += g.node_weight(v);
  }
  struct VectorHash {
    std::size_t operator()(const std::vector<NodeId>& v) const noexcept {
      std::size_t h = v.size();
      for (const NodeId x : v) {
        h ^= x + 0x9e3779b9 + (h << 6) + (h >> 2);
      }
      return h;
    }
  };
  std::unordered_map<std::vector<NodeId>, Weight, VectorHash> merged;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    std::vector<NodeId> pins;
    pins.reserve(g.edge_size(e));
    for (const NodeId v : g.pins(e)) {
      pins.push_back(level.fine_to_coarse[v]);
    }
    std::sort(pins.begin(), pins.end());
    pins.erase(std::unique(pins.begin(), pins.end()), pins.end());
    if (pins.size() < 2) continue;
    merged[std::move(pins)] += g.edge_weight(e);
  }
  std::vector<std::vector<NodeId>> edges;
  std::vector<Weight> weights;
  edges.reserve(merged.size());
  for (auto& [pins, w] : merged) {
    edges.push_back(pins);
    weights.push_back(w);
  }
  level.graph = Hypergraph::from_edges(clusters, std::move(edges));
  level.graph.set_edge_weights(std::move(weights));
  level.graph.set_node_weights(std::move(coarse_node_weight));
  return level;
}

Partition project_partition(const Partition& coarse,
                            const std::vector<NodeId>& fine_to_coarse) {
  Partition fine(static_cast<NodeId>(fine_to_coarse.size()), coarse.k());
  for (NodeId v = 0; v < fine.num_nodes(); ++v) {
    fine.assign(v, coarse[fine_to_coarse[v]]);
  }
  return fine;
}

}  // namespace hp
