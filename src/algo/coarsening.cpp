#include "hyperpart/algo/coarsening.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "hyperpart/obs/telemetry.hpp"
#include "hyperpart/util/rng.hpp"
#include "hyperpart/util/thread_pool.hpp"

namespace hp {

namespace {

struct VectorHash {
  std::size_t operator()(const std::vector<NodeId>& v) const noexcept {
    std::size_t h = v.size();
    for (const NodeId x : v) {
      h ^= x + 0x9e3779b9 + (h << 6) + (h >> 2);
    }
    return h;
  }
};

/// A coarse pin list awaiting dedup, tagged with its weight.
struct PendingEdge {
  std::vector<NodeId> pins;
  Weight weight;
};

// Shard count for the parallel dedup. Fixed (not thread-derived) so the
// coarse edge order — shards concatenated in order, first-occurrence order
// within each shard — is identical for every thread count.
constexpr std::size_t kDedupShards = 32;

}  // namespace

CoarseLevel coarsen_once(const Hypergraph& g, Weight max_cluster_weight,
                         std::uint64_t seed,
                         const Partition* restrict_parts, unsigned threads) {
  const NodeId n = g.num_nodes();
  Rng rng{seed};
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), NodeId{0});
  rng.shuffle(order);

  std::vector<NodeId> match(n, kInvalidNode);
  {
    HP_SPAN("match");
    // Scratch ratings, reset sparsely between nodes.
    std::vector<double> rating(n, 0.0);
    std::vector<NodeId> touched;
    for (const NodeId v : order) {
      if (match[v] != kInvalidNode) continue;
      touched.clear();
      for (const EdgeId e : g.incident_edges(v)) {
        const auto pins = g.pins(e);
        if (pins.size() < 2) continue;
        // Heavy-edge rating w(e)/(|e|−1), the standard multilevel score.
        const double score = static_cast<double>(g.edge_weight(e)) /
                             static_cast<double>(pins.size() - 1);
        for (const NodeId u : pins) {
          if (u == v || match[u] != kInvalidNode) continue;
          if (g.node_weight(u) + g.node_weight(v) > max_cluster_weight) {
            continue;
          }
          if (restrict_parts != nullptr &&
              (*restrict_parts)[u] != (*restrict_parts)[v]) {
            continue;
          }
          if (rating[u] == 0.0) touched.push_back(u);
          rating[u] += score;
        }
      }
      NodeId best = kInvalidNode;
      double best_rating = 0.0;
      for (const NodeId u : touched) {
        if (rating[u] > best_rating) {
          best_rating = rating[u];
          best = u;
        }
        rating[u] = 0.0;
      }
      if (best != kInvalidNode) {
        match[v] = best;
        match[best] = v;
      }
    }
  }

  // Assign cluster ids.
  CoarseLevel level;
  level.fine_to_coarse.assign(n, kInvalidNode);
  NodeId clusters = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (level.fine_to_coarse[v] != kInvalidNode) continue;
    level.fine_to_coarse[v] = clusters;
    if (match[v] != kInvalidNode) level.fine_to_coarse[match[v]] = clusters;
    ++clusters;
  }

  std::vector<Weight> coarse_node_weight(clusters, 0);
  for (NodeId v = 0; v < n; ++v) {
    coarse_node_weight[level.fine_to_coarse[v]] += g.node_weight(v);
  }

  HP_SPAN("dedup");
  HP_COUNTER_ADD("coarsen.rounds", 1);
  // Build coarse edges and merge duplicates with sharded hash maps: edge
  // chunks project their pin lists and scatter them into per-chunk shard
  // buckets (by pin-list hash), then each shard merges its buckets
  // independently. Shards only ever see disjoint key sets, so the merge
  // phase is embarrassingly parallel.
  const EdgeId m = g.num_edges();
  const unsigned workers = std::max<unsigned>(
      1, static_cast<unsigned>(std::min<std::uint64_t>(
             threads == 0 ? 1 : threads, m == 0 ? 1 : m)));
  const EdgeId chunk = m == 0 ? 1 : (m + workers - 1) / workers;
  std::vector<std::vector<std::vector<PendingEdge>>> buckets(
      workers, std::vector<std::vector<PendingEdge>>(kDedupShards));
  {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(workers);
    for (unsigned c = 0; c < workers; ++c) {
      const EdgeId begin = std::min<EdgeId>(m, c * chunk);
      const EdgeId end = std::min<EdgeId>(m, begin + chunk);
      tasks.push_back([&, c, begin, end]() {
        VectorHash hasher;
        for (EdgeId e = begin; e < end; ++e) {
          std::vector<NodeId> pins;
          pins.reserve(g.edge_size(e));
          for (const NodeId v : g.pins(e)) {
            pins.push_back(level.fine_to_coarse[v]);
          }
          std::sort(pins.begin(), pins.end());
          pins.erase(std::unique(pins.begin(), pins.end()), pins.end());
          if (pins.size() < 2) continue;
          const std::size_t shard = hasher(pins) % kDedupShards;
          buckets[c][shard].push_back({std::move(pins), g.edge_weight(e)});
        }
      });
    }
    run_parallel(tasks, workers);
  }

  std::vector<std::vector<std::vector<NodeId>>> shard_edges(kDedupShards);
  std::vector<std::vector<Weight>> shard_weights(kDedupShards);
  {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(kDedupShards);
    for (std::size_t s = 0; s < kDedupShards; ++s) {
      tasks.push_back([&, s]() {
        std::unordered_map<std::vector<NodeId>, std::size_t, VectorHash> index;
        auto& edges = shard_edges[s];
        auto& weights = shard_weights[s];
        // Chunks visited in order keep items in original edge order, which
        // fixes the first-occurrence order independent of the chunking.
        for (unsigned c = 0; c < workers; ++c) {
          for (auto& item : buckets[c][s]) {
            const auto [it, inserted] =
                index.try_emplace(std::move(item.pins), edges.size());
            if (inserted) {
              edges.push_back(it->first);
              weights.push_back(item.weight);
            } else {
              weights[it->second] += item.weight;
            }
          }
        }
      });
    }
    run_parallel(tasks, workers);
  }

  std::vector<std::vector<NodeId>> edges;
  std::vector<Weight> weights;
  for (std::size_t s = 0; s < kDedupShards; ++s) {
    edges.insert(edges.end(),
                 std::make_move_iterator(shard_edges[s].begin()),
                 std::make_move_iterator(shard_edges[s].end()));
    weights.insert(weights.end(), shard_weights[s].begin(),
                   shard_weights[s].end());
  }
  level.graph = Hypergraph::from_edges(clusters, std::move(edges));
  level.graph.set_edge_weights(std::move(weights));
  level.graph.set_node_weights(std::move(coarse_node_weight));
  HP_COUNTER_ADD("coarsen.coarse_edges", level.graph.num_edges());
  return level;
}

Partition project_partition(const Partition& coarse,
                            const std::vector<NodeId>& fine_to_coarse) {
  Partition fine(static_cast<NodeId>(fine_to_coarse.size()), coarse.k());
  for (NodeId v = 0; v < fine.num_nodes(); ++v) {
    fine.assign(v, coarse[fine_to_coarse[v]]);
  }
  return fine;
}

}  // namespace hp
