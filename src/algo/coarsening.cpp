#include "hyperpart/algo/coarsening.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "hyperpart/obs/telemetry.hpp"
#include "hyperpart/util/overflow.hpp"
#include "hyperpart/util/thread_pool.hpp"

namespace hp {

namespace {

struct VectorHash {
  template <typename PinVec>
  std::size_t operator()(const PinVec& v) const noexcept {
    std::size_t h = v.size();
    for (const NodeId x : v) {
      h ^= x + 0x9e3779b9 + (h << 6) + (h >> 2);
    }
    return h;
  }
};

/// Projected coarse pin lists live in the per-chunk dedup arenas: built,
/// sorted, and deduplicated in place, then the surviving ones are handed to
/// the shard merge by pointer (the arenas outlive the merge).
using ArenaPins = ArenaVector<NodeId>;

/// A coarse pin list awaiting dedup, tagged with its weight.
struct PendingEdge {
  ArenaPins pins;
  Weight weight;
};

// Shard count for the parallel dedup. Fixed (not thread-derived) so the
// coarse edge order — shards concatenated in order, first-occurrence order
// within each shard — is identical for every thread count.
constexpr std::size_t kDedupShards = 32;

// Proposal rounds per level. Round 1 mostly forms pairs (one winner per
// target); later rounds attach the losers to the young clusters, so a few
// rounds reach the ~0.5 shrink a full sequential matching pass gets.
constexpr int kProposalRounds = 2;
// Stop the rounds early once the level shrank to this fraction — coarser
// does not help the V-shape and the extra round costs a full edge scan.
constexpr double kTargetShrink = 0.5;

/// Per-executor scratch for the propose phase: a dense rating array reset
/// sparsely after every node (the touched list). Thread-local so each pool
/// thread allocates it once per process, not once per chunk — the propose
/// phase itself never reads stale entries, because every write is undone
/// before the node finishes.
struct ProposeScratch {
  std::vector<double> rating;
  std::vector<NodeId> touched;
};

ProposeScratch& propose_scratch(NodeId n) {
  static thread_local ProposeScratch scratch;
  if (scratch.rating.size() < n) scratch.rating.assign(n, 0.0);
  return scratch;
}

/// Seed-salted hash used as the second tie-break key of target selection
/// (after the rating, before the raw id): equal-rated targets spread by
/// seed instead of always favouring low ids, which keeps multi-start
/// coarsening hierarchies diverse without sacrificing determinism.
[[nodiscard]] std::uint64_t target_salt(std::uint64_t seed,
                                        NodeId leader) noexcept {
  std::uint64_t x = seed ^ (0x9E3779B97F4A7C15ull * (leader + 1));
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDull;
  x ^= x >> 33;
  return x;
}

}  // namespace

CoarseLevel coarsen_once(const Hypergraph& g, Weight max_cluster_weight,
                         std::uint64_t seed,
                         const Partition* restrict_parts, unsigned threads,
                         CoarsenMemory* mem) {
  const NodeId n = g.num_nodes();
  const unsigned workers = threads == 0 ? 1 : threads;
  // Callers that don't hold scratch across levels get a call-local arena —
  // the bump allocation still collapses this level's many small heap
  // round-trips into a few block fetches.
  CoarsenMemory local_mem;
  CoarsenMemory& scratch_mem = mem != nullptr ? *mem : local_mem;
  scratch_mem.reset();
  Arena& seq_arena = scratch_mem.seq();

  // --- Parallel clustering rounds ------------------------------------------
  // cluster[v] is the id of the leader node of v's cluster (flat: members
  // point directly at their leader, and a leader that has accepted members
  // never merges away, so no path compression is needed). cweight/csize are
  // maintained for leaders.
  ArenaVector<NodeId> cluster(n, ArenaAllocator<NodeId>(seq_arena));
  std::iota(cluster.begin(), cluster.end(), NodeId{0});
  ArenaVector<Weight> cweight(n, ArenaAllocator<Weight>(seq_arena));
  ArenaVector<NodeId> csize(n, 1, ArenaAllocator<NodeId>(seq_arena));
  for (NodeId v = 0; v < n; ++v) cweight[v] = g.node_weight(v);

  ArenaVector<NodeId> proposal(n, kInvalidNode,
                               ArenaAllocator<NodeId>(seq_arena));
  ArenaVector<double> prio(n, 0.0, ArenaAllocator<double>(seq_arena));
  ArenaVector<NodeId> winner(n, kInvalidNode,
                             ArenaAllocator<NodeId>(seq_arena));
  NodeId clusters = n;

  for (int round = 0; round < kProposalRounds; ++round) {
    if (static_cast<double>(clusters) <=
        kTargetShrink * static_cast<double>(n)) {
      break;
    }
    HP_SPAN("round", round);

    // Propose phase: every node that is still a singleton rates the
    // clusters it shares hyperedges with (heavy-edge rating w(e)/(|e|−1),
    // aggregated per cluster) against the state FROZEN at round start, and
    // proposes to join the best one that fits the weight cap. The chunk
    // grain is fixed — never thread-derived — and each proposal is a pure
    // function of the frozen state, so proposal[] is bit-identical at any
    // thread count.
    parallel_for_grain(
        n, kStableGrain, workers,
        [&](std::size_t, std::uint64_t begin, std::uint64_t end) {
          ProposeScratch& scratch = propose_scratch(n);
          for (NodeId v = static_cast<NodeId>(begin);
               v < static_cast<NodeId>(end); ++v) {
            proposal[v] = kInvalidNode;
            if (cluster[v] != v || csize[v] != 1) continue;  // not a singleton
            scratch.touched.clear();
            for (const EdgeId e : g.incident_edges(v)) {
              const auto pins = g.pins(e);
              if (pins.size() < 2) continue;
              const double score = static_cast<double>(g.edge_weight(e)) /
                                   static_cast<double>(pins.size() - 1);
              for (const NodeId u : pins) {
                if (u == v) continue;
                if (restrict_parts != nullptr &&
                    (*restrict_parts)[u] != (*restrict_parts)[v]) {
                  continue;
                }
                const NodeId l = cluster[u];
                if (l == v) continue;
                if (scratch.rating[l] == 0.0) scratch.touched.push_back(l);
                scratch.rating[l] += score;
              }
            }
            NodeId best = kInvalidNode;
            double best_rating = 0.0;
            std::uint64_t best_salt = 0;
            for (const NodeId l : scratch.touched) {
              const double r = scratch.rating[l];
              scratch.rating[l] = 0.0;
              if (sat_add(cweight[l], cweight[v]) > max_cluster_weight) {
                continue;
              }
              // Target tie-break: rating desc, then seed-salted hash asc,
              // then leader id asc — total order, independent of the
              // touched-list visit order.
              if (best != kInvalidNode && r < best_rating) continue;
              const std::uint64_t s = target_salt(seed, l);
              if (best != kInvalidNode && r == best_rating &&
                  (s > best_salt || (s == best_salt && l > best))) {
                continue;
              }
              best = l;
              best_rating = r;
              best_salt = s;
            }
            proposal[v] = best;
            prio[v] = best_rating;
          }
        });

    // Resolve phase: at most one joiner per target cluster and round,
    // chosen by the fixed priority key (rating desc, then node id asc).
    // A cheap sequential O(n) scan — ascending ids with a strict "better
    // rating" comparison implement the key exactly.
    std::fill(winner.begin(), winner.end(), kInvalidNode);
    std::uint64_t proposed = 0;
    for (NodeId v = 0; v < n; ++v) {
      const NodeId l = proposal[v];
      if (l == kInvalidNode) continue;
      ++proposed;
      NodeId& w = winner[l];
      if (w == kInvalidNode || prio[v] > prio[w]) w = v;
    }

    // Commit phase: apply the winning proposals in node-id order,
    // revalidating against the live cluster state (the target may have
    // grown past the cap, merged away, or the winner itself may have
    // accepted a member earlier in this very loop).
    NodeId merged = 0;
    for (NodeId v = 0; v < n; ++v) {
      const NodeId l = proposal[v];
      if (l == kInvalidNode || winner[l] != v) continue;
      if (cluster[v] != v || csize[v] != 1) continue;  // v accepted a member
      if (cluster[l] != l) continue;  // target merged away this round
      if (sat_add(cweight[l], cweight[v]) > max_cluster_weight) continue;
      cluster[v] = l;
      cweight[l] += cweight[v];
      csize[l] += csize[v];
      ++merged;
    }
    clusters -= merged;
    HP_COUNTER_ADD("coarsen.rounds", 1);
    HP_COUNTER_ADD("coarsen.proposals", static_cast<std::int64_t>(proposed));
    HP_COUNTER_ADD("coarsen.merged", merged);
    HP_COUNTER_ADD("coarsen.conflicts",
                   static_cast<std::int64_t>(proposed - merged));
    if (merged == 0) break;
  }

  // --- Parallel contraction -------------------------------------------------
  // Number the surviving leaders in node-id order: per-chunk leader counts
  // (fixed grain), a sequential exclusive scan over the chunk totals, then
  // a parallel fill. Chunk boundaries are a pure function of n, so the
  // numbering is the same for every thread count.
  CoarseLevel level;
  ArenaVector<NodeId> coarse_id(n, kInvalidNode,
                                ArenaAllocator<NodeId>(seq_arena));
  std::vector<Weight> coarse_node_weight;  // escapes into the coarse graph
  {
    HP_SPAN("contract");
    const std::size_t chunks = num_grain_chunks(n, kStableGrain);
    ArenaVector<NodeId> chunk_leaders(chunks, 0,
                                      ArenaAllocator<NodeId>(seq_arena));
    parallel_for_grain(n, kStableGrain, workers,
                       [&](std::size_t c, std::uint64_t begin,
                           std::uint64_t end) {
                         NodeId count = 0;
                         for (NodeId v = static_cast<NodeId>(begin);
                              v < static_cast<NodeId>(end); ++v) {
                           if (cluster[v] == v) ++count;
                         }
                         chunk_leaders[c] = count;
                       });
    NodeId total = 0;
    for (std::size_t c = 0; c < chunks; ++c) {
      const NodeId count = chunk_leaders[c];
      chunk_leaders[c] = total;
      total += count;
    }
    clusters = total;
    parallel_for_grain(n, kStableGrain, workers,
                       [&](std::size_t c, std::uint64_t begin,
                           std::uint64_t end) {
                         NodeId next = chunk_leaders[c];
                         for (NodeId v = static_cast<NodeId>(begin);
                              v < static_cast<NodeId>(end); ++v) {
                           if (cluster[v] == v) coarse_id[v] = next++;
                         }
                       });

    level.fine_to_coarse.assign(n, kInvalidNode);
    coarse_node_weight.assign(clusters, 0);
    parallel_for_grain(n, kStableGrain, workers,
                       [&](std::size_t, std::uint64_t begin,
                           std::uint64_t end) {
                         for (NodeId v = static_cast<NodeId>(begin);
                              v < static_cast<NodeId>(end); ++v) {
                           level.fine_to_coarse[v] = coarse_id[cluster[v]];
                           if (cluster[v] == v) {
                             // Cluster weights were maintained through the
                             // commits; leaders just copy them out (disjoint
                             // slots — no merge needed).
                             coarse_node_weight[coarse_id[v]] = cweight[v];
                           }
                         }
                       });
  }

  HP_SPAN("dedup");
  // Build coarse edges and merge duplicates with sharded hash maps: edge
  // chunks project their pin lists and scatter them into per-chunk shard
  // buckets (by pin-list hash), then each shard merges its buckets
  // independently. Shards only ever see disjoint key sets, so the merge
  // phase is embarrassingly parallel; within a shard the buckets are
  // visited in chunk order, which preserves first-occurrence edge order
  // for every chunking.
  const EdgeId m = g.num_edges();
  const std::size_t edge_chunks = num_grain_chunks(m, kStableGrain);
  scratch_mem.ensure_chunks(edge_chunks);
  using ChunkBuckets = ArenaVector<ArenaVector<PendingEdge>>;
  std::vector<ChunkBuckets> buckets;
  buckets.reserve(edge_chunks);
  for (std::size_t c = 0; c < edge_chunks; ++c) {
    Arena& a = scratch_mem.chunk(c);
    ChunkBuckets shard_vec{ArenaAllocator<ArenaVector<PendingEdge>>(a)};
    shard_vec.reserve(kDedupShards);
    for (std::size_t s = 0; s < kDedupShards; ++s) {
      ArenaVector<PendingEdge> bucket{ArenaAllocator<PendingEdge>(a)};
      // A chunk holds kStableGrain edges spread over kDedupShards buckets;
      // reserving the expected share avoids growth churn (the bump arena
      // never reclaims a grown-out-of allocation).
      bucket.reserve(kStableGrain / kDedupShards);
      shard_vec.push_back(std::move(bucket));
    }
    buckets.push_back(std::move(shard_vec));
  }
  parallel_for_grain(
      m, kStableGrain, workers,
      [&](std::size_t c, std::uint64_t begin, std::uint64_t end) {
        // Chunk c scatters exclusively into its own arena: zero contention,
        // and the allocation pattern is independent of the thread count.
        Arena& chunk_arena = scratch_mem.chunk(c);
        VectorHash hasher;
        for (EdgeId e = static_cast<EdgeId>(begin);
             e < static_cast<EdgeId>(end); ++e) {
          ArenaPins pins{ArenaAllocator<NodeId>(chunk_arena)};
          pins.reserve(g.edge_size(e));
          for (const NodeId v : g.pins(e)) {
            pins.push_back(level.fine_to_coarse[v]);
          }
          std::sort(pins.begin(), pins.end());
          pins.erase(std::unique(pins.begin(), pins.end()), pins.end());
          if (pins.size() < 2) continue;
          const std::size_t shard = hasher(pins) % kDedupShards;
          buckets[c][shard].push_back({std::move(pins), g.edge_weight(e)});
        }
      });

  std::vector<std::vector<std::vector<NodeId>>> shard_edges(kDedupShards);
  std::vector<std::vector<Weight>> shard_weights(kDedupShards);
  if (m > 0) {  // schedule nothing for edgeless graphs — not no-op tasks
    std::vector<std::function<void()>> tasks;
    tasks.reserve(kDedupShards);
    for (std::size_t s = 0; s < kDedupShards; ++s) {
      tasks.push_back([&, s]() {
        std::unordered_map<ArenaPins, std::size_t, VectorHash> index;
        auto& edges = shard_edges[s];
        auto& weights = shard_weights[s];
        for (std::size_t c = 0; c < edge_chunks; ++c) {
          for (auto& item : buckets[c][s]) {
            const auto [it, inserted] =
                index.try_emplace(std::move(item.pins), edges.size());
            if (inserted) {
              // The output pin list escapes this function; copy it out of
              // the arena-backed key.
              edges.emplace_back(it->first.begin(), it->first.end());
              weights.push_back(item.weight);
            } else {
              weights[it->second] += item.weight;
            }
          }
        }
      });
    }
    run_parallel(tasks, workers);
  }

  std::vector<std::vector<NodeId>> edges;
  std::vector<Weight> weights;
  for (std::size_t s = 0; s < kDedupShards; ++s) {
    edges.insert(edges.end(),
                 std::make_move_iterator(shard_edges[s].begin()),
                 std::make_move_iterator(shard_edges[s].end()));
    weights.insert(weights.end(), shard_weights[s].begin(),
                   shard_weights[s].end());
  }
  level.graph = Hypergraph::from_edges(clusters, std::move(edges));
  level.graph.set_edge_weights(std::move(weights));
  level.graph.set_node_weights(std::move(coarse_node_weight));
  HP_COUNTER_ADD("coarsen.coarse_edges", level.graph.num_edges());
  return level;
}

Partition project_partition(const Partition& coarse,
                            const std::vector<NodeId>& fine_to_coarse) {
  Partition fine(static_cast<NodeId>(fine_to_coarse.size()), coarse.k());
  for (NodeId v = 0; v < fine.num_nodes(); ++v) {
    fine.assign(v, coarse[fine_to_coarse[v]]);
  }
  return fine;
}

}  // namespace hp
