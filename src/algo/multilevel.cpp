#include "hyperpart/algo/multilevel.hpp"

#include <algorithm>
#include <vector>

#include "hyperpart/algo/coarsening.hpp"
#include "hyperpart/algo/greedy.hpp"
#include "hyperpart/obs/telemetry.hpp"
#include "hyperpart/util/rng.hpp"
#include "hyperpart/util/thread_pool.hpp"

namespace hp {

std::optional<Partition> multilevel_partition_cached(
    const Hypergraph& g, const BalanceConstraint& balance,
    const MultilevelConfig& cfg, MultilevelHierarchy* hierarchy) {
  HP_SPAN("multilevel");
  const PartId k = balance.k();
  Rng rng{cfg.seed};
  FmConfig fm = cfg.fm;
  fm.metric = cfg.metric;
  const unsigned threads = fm.threads == 0 ? default_threads() : fm.threads;
  // Engine choice per level: a pure function of the level's node count (see
  // sync_fm_min_nodes) — thread count must never influence it.
  const auto fm_for = [&](NodeId n) {
    FmConfig level_fm = fm;
    level_fm.sync_rounds = n >= cfg.sync_fm_min_nodes;
    return level_fm;
  };

  // --- Coarsening phase ---------------------------------------------------
  // Clusters are capped so the coarsest level still admits a balanced
  // partition: never above a third of the per-part capacity.
  MultilevelHierarchy local;
  MultilevelHierarchy& hier = hierarchy ? *hierarchy : local;
  if (hier.empty()) {
    const Weight max_cluster = std::max<Weight>(1, balance.capacity() / 3);
    const Hypergraph* current = &g;
    const NodeId stop_at = std::max<NodeId>(cfg.coarsen_limit, 4 * k);
    // One scratch pool for the whole descent: every level below the first
    // bump-allocates into the blocks the level above already fetched.
    CoarsenMemory coarsen_mem;
    while (current->num_nodes() > stop_at) {
      HP_SPAN("coarsen", "level", hier.levels.size());
      ++hier.rng_draws;
      CoarseLevel next = coarsen_once(*current, max_cluster, rng(), nullptr,
                                      threads, &coarsen_mem);
      // Insufficient shrinkage means matching is saturated; stop.
      if (next.graph.num_nodes() >
          static_cast<NodeId>(0.95 * current->num_nodes())) {
        break;
      }
      hier.levels.push_back(std::move(next));
      current = &hier.levels.back().graph;
    }
  } else {
    // Reuse: the cached levels ARE the coarsening a fresh run would have
    // produced (callers guarantee graph + capacity + seed match). Replay
    // the recorded number of rng draws so every downstream random choice —
    // initial partitioning, FM tie-breaks — sees the same stream as an
    // uncached run, keeping the partition bit-identical.
    for (std::uint32_t i = 0; i < hier.rng_draws; ++i) (void)rng();
    HP_COUNTER_ADD("multilevel.hierarchy_reuses", 1);
  }
  const std::vector<CoarseLevel>& levels = hier.levels;
  const Hypergraph* current = levels.empty() ? &g : &levels.back().graph;
  HP_COUNTER_ADD("multilevel.runs", 1);
  HP_COUNTER_ADD("multilevel.levels",
                 static_cast<std::int64_t>(levels.size()));
  HP_GAUGE_MAX("multilevel.coarsest_nodes", current->num_nodes());

  // --- Initial partitioning on the coarsest level --------------------------
  const Hypergraph& coarsest = *current;
  std::optional<Partition> best;
  Weight best_cost = 0;
  {
    HP_SPAN("initial");
    for (int attempt = 0; attempt < cfg.initial_tries; ++attempt) {
      std::optional<Partition> candidate =
          attempt % 2 == 0
              ? greedy_growing_partition(coarsest, balance, cfg.metric, rng())
              : random_balanced_partition(coarsest, balance, rng());
      if (!candidate) continue;
      const Weight c =
          fm_refine(coarsest, *candidate, balance, fm_for(coarsest.num_nodes()));
      if (!best || c < best_cost) {
        best = std::move(candidate);
        best_cost = c;
      }
    }
  }
  if (!best) return std::nullopt;

  // --- Uncoarsening + refinement -------------------------------------------
  Partition p = std::move(*best);
  for (auto it = levels.rbegin(); it != levels.rend(); ++it) {
    HP_SPAN("uncoarsen", "level", levels.rend() - it - 1);
    p = project_partition(p, it->fine_to_coarse);
    const Hypergraph& fine =
        (it + 1 == levels.rend()) ? g : (it + 1)->graph;
    fm_refine(fine, p, balance, fm_for(fine.num_nodes()));
  }
  return p;
}

std::optional<Partition> multilevel_partition(const Hypergraph& g,
                                              const BalanceConstraint& balance,
                                              const MultilevelConfig& cfg) {
  return multilevel_partition_cached(g, balance, cfg, nullptr);
}

}  // namespace hp
