#include "hyperpart/algo/number_partitioning.hpp"

#include <algorithm>
#include <numeric>
#include <string>
#include <unordered_set>

namespace hp {

std::optional<std::vector<PartId>> pack_items(std::vector<PackingItem> items,
                                              PartId k, Weight capacity) {
  const std::uint32_t full =
      k >= 32 ? ~0u : ((1u << k) - 1);
  std::vector<std::uint32_t> order(items.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return items[a].size > items[b].size;
            });

  // Equal-load bins are interchangeable only when no item distinguishes
  // bins by an allowed-mask restriction.
  const bool any_restricted =
      std::any_of(items.begin(), items.end(), [&](const PackingItem& it) {
        return it.allowed != 0 && (it.allowed & full) != full;
      });

  std::vector<Weight> load(k, 0);
  std::vector<PartId> bin_of(items.size(), kInvalidPart);
  std::unordered_set<std::string> failed;
  const auto key = [&](std::size_t idx) {
    std::string s;
    s.reserve(8 + k * 8);
    const auto append = [&s](Weight w) {
      s.append(reinterpret_cast<const char*>(&w), sizeof(w));
    };
    append(static_cast<Weight>(idx));
    for (const Weight w : load) append(w);
    return s;
  };

  const auto recurse = [&](auto&& self, std::size_t idx) -> bool {
    if (idx == order.size()) return true;
    const std::string state = key(idx);
    if (failed.count(state) != 0) return false;
    const PackingItem& item = items[order[idx]];
    const std::uint32_t allowed =
        item.allowed == 0 ? full : item.allowed;
    Weight previous_load = -1;
    for (PartId q = 0; q < k; ++q) {
      if (!((allowed >> q) & 1)) continue;
      if (load[q] + item.size > capacity) continue;
      // Bins with identical load are interchangeable when nothing
      // restricts bins: try one representative.
      if (!any_restricted && load[q] == previous_load) continue;
      previous_load = load[q];
      load[q] += item.size;
      bin_of[order[idx]] = q;
      if (self(self, idx + 1)) return true;
      load[q] -= item.size;
    }
    bin_of[order[idx]] = kInvalidPart;
    failed.insert(state);
    return false;
  };
  if (!recurse(recurse, 0)) return std::nullopt;
  return bin_of;
}

Weight multiway_partition_makespan(const std::vector<Weight>& numbers,
                                   PartId k) {
  if (numbers.empty()) return 0;
  std::vector<PackingItem> items;
  Weight total = 0;
  Weight largest = 0;
  for (const Weight x : numbers) {
    items.push_back({x, 0});
    total += x;
    largest = std::max(largest, x);
  }
  Weight lo = std::max(largest, (total + k - 1) / static_cast<Weight>(k));
  Weight hi = lpt_makespan(numbers, k);
  while (lo < hi) {
    const Weight mid = lo + (hi - lo) / 2;
    if (pack_items(items, k, mid)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

Weight lpt_makespan(const std::vector<Weight>& numbers, PartId k) {
  std::vector<Weight> sorted = numbers;
  std::sort(sorted.rbegin(), sorted.rend());
  std::vector<Weight> load(k, 0);
  for (const Weight x : sorted) {
    auto it = std::min_element(load.begin(), load.end());
    *it += x;
  }
  return *std::max_element(load.begin(), load.end());
}

}  // namespace hp
