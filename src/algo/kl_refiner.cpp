#include "hyperpart/algo/kl_refiner.hpp"

#include <utility>
#include <vector>

#include "hyperpart/core/connectivity_tracker.hpp"

namespace hp {

namespace {

/// Exact cost decrease of swapping u and v (different parts). Evaluated by
/// performing both moves on the tracker and undoing them.
[[nodiscard]] Weight swap_gain(ConnectivityTracker& t, NodeId u, NodeId v,
                               CostMetric metric) {
  const PartId pu = t.part_of(u);
  const PartId pv = t.part_of(v);
  const Weight before = t.cost(metric);
  t.move(u, pv);
  t.move(v, pu);
  const Weight after = t.cost(metric);
  t.move(v, pv);
  t.move(u, pu);
  return before - after;
}

}  // namespace

Weight kl_refine(const Hypergraph& g, Partition& p, const KlConfig& cfg) {
  ConnectivityTracker tracker(g, p);
  const NodeId n = g.num_nodes();

  // Candidate pairs: nodes sharing a cut hyperedge (swapping unrelated
  // nodes never helps the cut).
  for (int pass = 0; pass < cfg.max_passes; ++pass) {
    std::vector<bool> locked(n, false);
    const Weight start_cost = tracker.cost(cfg.metric);
    Weight running = start_cost;
    Weight best = start_cost;
    std::vector<std::pair<NodeId, NodeId>> swaps;
    std::size_t best_prefix = 0;
    std::uint32_t since_improvement = 0;

    while (since_improvement < cfg.patience) {
      // Boundary nodes: incident to at least one cut hyperedge. Swapping
      // two interior nodes can never reduce the cut, but a boundary node's
      // best partner may sit anywhere across the boundary.
      std::vector<NodeId> boundary;
      for (NodeId v = 0; v < n; ++v) {
        if (locked[v]) continue;
        for (const EdgeId e : g.incident_edges(v)) {
          if (tracker.lambda(e) > 1) {
            boundary.push_back(v);
            break;
          }
        }
      }
      Weight best_gain = 0;
      NodeId bu = kInvalidNode;
      NodeId bv = kInvalidNode;
      for (std::size_t i = 0; i < boundary.size(); ++i) {
        for (std::size_t j = i + 1; j < boundary.size(); ++j) {
          const NodeId u = boundary[i];
          const NodeId v = boundary[j];
          if (tracker.part_of(u) == tracker.part_of(v)) continue;
          if (g.node_weight(u) != g.node_weight(v)) continue;
          const Weight gain = swap_gain(tracker, u, v, cfg.metric);
          if (bu == kInvalidNode || gain > best_gain) {
            best_gain = gain;
            bu = u;
            bv = v;
          }
        }
      }
      if (bu == kInvalidNode) break;
      const PartId pu = tracker.part_of(bu);
      const PartId pv = tracker.part_of(bv);
      tracker.move(bu, pv);
      tracker.move(bv, pu);
      locked[bu] = locked[bv] = true;
      swaps.emplace_back(bu, bv);
      running -= best_gain;
      if (running < best) {
        best = running;
        best_prefix = swaps.size();
        since_improvement = 0;
      } else {
        ++since_improvement;
      }
    }

    // Roll back past the best prefix.
    for (std::size_t i = swaps.size(); i > best_prefix; --i) {
      const auto& [u, v] = swaps[i - 1];
      const PartId pu = tracker.part_of(u);
      const PartId pv = tracker.part_of(v);
      tracker.move(u, pv);
      tracker.move(v, pu);
    }
    if (best >= start_cost) break;
  }

  p = tracker.to_partition();
  return tracker.cost(cfg.metric);
}

}  // namespace hp
