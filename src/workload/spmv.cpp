// SpMV workloads: synthetic sparse-matrix patterns through the row-net model
// (Çatalyürek–Aykanat): one node per matrix column, one net per matrix row
// whose pins are the columns with a nonzero in that row. A k-way partition of
// the columns is a distribution of the input vector x; the connectivity cost
// Σ (λ_e − 1) is exactly the communication volume of the parallel y = A·x.
// Column weight = nonzero count, i.e. the multiply-adds its owner performs.

#include <algorithm>
#include <vector>

#include "hyperpart/core/builder.hpp"
#include "workload/family_impl.hpp"

namespace hp::workload::detail {
namespace {

enum class Pattern { kBanded, kBlockDiag, kRmat };

// R-MAT-style column pick: binary descent over [0, dim) favouring the low
// half with probability 0.75 per level — the 1-D marginal of a Kronecker
// (0.57, 0.19, 0.19, 0.05) initiator, giving the skewed column popularity of
// R-MAT row structure.
NodeId rmat_column(NodeId dim, Rng& rng) {
  NodeId lo = 0;
  NodeId hi = dim;
  while (hi - lo > 1) {
    const NodeId mid = lo + (hi - lo) / 2;
    if (rng.next_bool(0.75)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return lo;
}

void fill_row(Pattern pat, NodeId dim, NodeId row, Rng& rng,
              std::vector<NodeId>& cols) {
  switch (pat) {
    case Pattern::kBanded: {
      const NodeId band = std::min<NodeId>(8, dim - 1);
      const NodeId lo = row > band ? row - band : 0;
      const NodeId hi = std::min<NodeId>(dim - 1, row + band);
      for (NodeId j = lo; j <= hi; ++j) {
        if (j == row || rng.next_bool(0.5)) cols.push_back(j);
      }
      break;
    }
    case Pattern::kBlockDiag: {
      const NodeId bs = std::clamp<NodeId>(dim / 16, 4, 64);
      const NodeId block = row / bs;
      const NodeId base = block * bs;
      const NodeId end = std::min<NodeId>(dim, base + bs);
      cols.push_back(row);
      for (NodeId j = base; j < end; ++j) {
        if (j != row && rng.next_bool(0.35)) cols.push_back(j);
      }
      // sparse off-diagonal coupling into a neighbouring block
      if (rng.next_bool(0.15)) {
        const NodeId last_block = (dim - 1) / bs;
        NodeId nb = block;
        if (block < last_block && (block == 0 || rng.next_bool(0.5))) {
          nb = block + 1;
        } else if (block > 0) {
          nb = block - 1;
        }
        if (nb != block) {
          const NodeId nbase = nb * bs;
          const NodeId nend = std::min<NodeId>(dim, nbase + bs);
          cols.push_back(nbase + static_cast<NodeId>(
                                     rng.next_below(nend - nbase)));
        }
      }
      break;
    }
    case Pattern::kRmat: {
      std::uint32_t nnz = 1;
      while (nnz < 32 && rng.next_bool(0.55)) ++nnz;
      cols.push_back(row);  // nonzero diagonal keeps every row/column live
      for (std::uint32_t t = 0; t < nnz; ++t) {
        cols.push_back(rmat_column(dim, rng));
      }
      break;
    }
  }
  std::sort(cols.begin(), cols.end());
  cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
}

}  // namespace

Workload build_spmv(const WorkloadSpec& spec) {
  Pattern pat = Pattern::kBanded;
  if (spec.preset == "banded" || spec.preset.empty()) {
    pat = Pattern::kBanded;
  } else if (spec.preset == "blockdiag") {
    pat = Pattern::kBlockDiag;
  } else if (spec.preset == "rmat") {
    pat = Pattern::kRmat;
  } else {
    throw_unknown_preset(Family::kSpmv, spec.preset);
  }

  const NodeId dim = resolve_nodes(spec, 4096);  // square matrix, n = dim
  std::vector<std::vector<NodeId>> rows(dim);
  parallel_for_grain(
      dim, 256, resolve_threads(spec),
      [&](std::size_t, std::uint64_t begin, std::uint64_t end) {
        for (std::uint64_t r = begin; r < end; ++r) {
          Rng rng = item_rng(spec.seed, kTagSpmvRow, r);
          fill_row(pat, dim, static_cast<NodeId>(r), rng, rows[r]);
        }
      });

  std::vector<Weight> col_nnz(dim, 0);
  HypergraphBuilder b(dim);
  for (auto& cols : rows) {
    for (const NodeId c : cols) ++col_nnz[c];
    b.add_edge(std::move(cols));
  }
  for (Weight& w : col_nnz) w = std::max<Weight>(w, 1);

  Workload out;
  out.graph = b.build();
  out.graph.set_node_weights(col_nnz);
  out.suggested_k = 8;
  out.suggested_eps = 0.05;
  return out;
}

}  // namespace hp::workload::detail
