// VLSI-style netlists. Cells are nodes; signal nets follow the empirical
// shape of placed circuits (cf. the hMETIS benchmarks and Rent's rule):
// ~55% 2-pin, ~25% 3-pin, a geometric tail up to 12 pins, with pins drawn
// inside a placement-locality window around a random center cell. On top, a
// small number of very high degree power/clock nets each span a fixed
// fraction of all cells. Cell weights (areas) are skewed in [1, 8].
//
// Edge order contract (tests rely on it): the n signal nets come first
// (ids [0, n)), the global nets last.

#include <algorithm>
#include <vector>

#include "hyperpart/core/builder.hpp"
#include "workload/family_impl.hpp"

namespace hp::workload::detail {
namespace {

std::uint32_t draw_net_size(Rng& rng) {
  const double r = rng.next_double();
  if (r < 0.55) return 2;
  if (r < 0.80) return 3;
  std::uint32_t size = 4;
  while (size < 12 && rng.next_bool(0.45)) ++size;
  return size;
}

void fill_signal_net(NodeId n, NodeId window, Rng& rng,
                     std::vector<NodeId>& pins) {
  const std::uint32_t size = draw_net_size(rng);
  const NodeId center = static_cast<NodeId>(rng.next_below(n));
  const NodeId lo = center > window ? center - window : 0;
  const NodeId hi = std::min<NodeId>(n - 1, center + window);
  for (std::uint32_t t = 0; t < size; ++t) {
    pins.push_back(lo + static_cast<NodeId>(rng.next_below(hi - lo + 1)));
  }
  std::sort(pins.begin(), pins.end());
  pins.erase(std::unique(pins.begin(), pins.end()), pins.end());
}

}  // namespace

Workload build_netlist(const WorkloadSpec& spec) {
  bool local = true;
  if (spec.preset == "rent" || spec.preset.empty()) {
    local = true;  // placement-locality windows
  } else if (spec.preset == "flat") {
    local = false;  // pins uniform over all cells
  } else {
    throw_unknown_preset(Family::kNetlist, spec.preset);
  }

  const NodeId n = resolve_nodes(spec, 4096);
  const NodeId window = local ? std::max<NodeId>(8, n / 64) : n;

  std::vector<std::vector<NodeId>> nets(n);
  std::vector<Weight> areas(n, 1);
  parallel_for_grain(
      n, 256, resolve_threads(spec),
      [&](std::size_t, std::uint64_t begin, std::uint64_t end) {
        for (std::uint64_t i = begin; i < end; ++i) {
          Rng net_rng = item_rng(spec.seed, kTagNetlistNet, i);
          fill_signal_net(n, window, net_rng, nets[i]);
          Rng cell_rng = item_rng(spec.seed, kTagNetlistCell, i);
          Weight area = 1;
          while (area < 8 && cell_rng.next_bool(0.3)) ++area;
          areas[i] = area;
        }
      });

  HypergraphBuilder b(n);
  for (auto& pins : nets) b.add_edge(std::move(pins));

  // Power/clock globals: each hits ~1/20 of all cells via a per-net hash, so
  // membership is a pure function of (seed, net, cell).
  const EdgeId globals = std::max<EdgeId>(1, n / 1024);
  const NodeId desired = std::max<NodeId>(2, n / 20);
  const std::uint64_t stride = std::max<std::uint64_t>(1, n / desired);
  for (EdgeId gi = 0; gi < globals; ++gi) {
    const std::uint64_t net_key = mix64(spec.seed + kTagNetlistGlobal + gi);
    std::vector<NodeId> pins;
    for (NodeId j = 0; j < n; ++j) {
      if (mix64(net_key + j) % stride == 0) pins.push_back(j);
    }
    if (pins.size() < 2) {  // tiny fuzz sizes: pin the rails to the corners
      pins.push_back(0);
      pins.push_back(n - 1);
    }
    b.add_edge(std::move(pins));
  }

  Workload out;
  out.graph = b.build();
  out.graph.set_node_weights(areas);
  out.suggested_k = 8;
  out.suggested_eps = 0.1;
  return out;
}

}  // namespace hp::workload::detail
