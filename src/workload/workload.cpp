// Catalogue front end: family/preset names, spec parsing, and dispatch to
// the per-family builders. See workload.hpp for the determinism contract.

#include "hyperpart/workload/workload.hpp"

#include <stdexcept>
#include <string>

#include "hyperpart/util/parse.hpp"
#include "workload/family_impl.hpp"

namespace hp::workload {

const char* to_string(Family f) noexcept {
  switch (f) {
    case Family::kSpmv:
      return "spmv";
    case Family::kNetlist:
      return "netlist";
    case Family::kDataflow:
      return "dataflow";
    case Family::kPowerLaw:
      return "powerlaw";
  }
  return "?";
}

Family family_from_string(const std::string& name) {
  for (const Family f : kAllFamilies) {
    if (name == to_string(f)) return f;
  }
  throw std::invalid_argument("unknown workload family '" + name +
                              "' (families: spmv netlist dataflow powerlaw)");
}

const std::vector<std::string>& presets(Family f) {
  static const std::vector<std::string> spmv{"banded", "blockdiag", "rmat"};
  static const std::vector<std::string> netlist{"rent", "flat"};
  static const std::vector<std::string> dataflow{"mlp", "conv", "attention"};
  static const std::vector<std::string> powerlaw{"zipf", "hubs_last"};
  switch (f) {
    case Family::kSpmv:
      return spmv;
    case Family::kNetlist:
      return netlist;
    case Family::kDataflow:
      return dataflow;
    case Family::kPowerLaw:
      return powerlaw;
  }
  return spmv;
}

namespace detail {

void throw_unknown_preset(Family f, const std::string& preset) {
  std::string known;
  for (const auto& p : presets(f)) {
    if (!known.empty()) known += ' ';
    known += p;
  }
  throw std::invalid_argument("unknown " + std::string(to_string(f)) +
                              " preset '" + preset + "' (presets: " + known +
                              ")");
}

}  // namespace detail

WorkloadSpec parse_spec(const std::string& text) {
  const auto colon = text.find(':');
  if (colon == std::string::npos || colon == 0) {
    throw std::invalid_argument(
        "workload spec must be family:preset[@scale], got '" + text + "'");
  }
  WorkloadSpec spec;
  spec.family = family_from_string(text.substr(0, colon));
  std::string rest = text.substr(colon + 1);
  const auto at = rest.find('@');
  if (at != std::string::npos) {
    const std::string scale_text = rest.substr(at + 1);
    const auto scale = parse_u64(scale_text);
    if (!scale || *scale == 0 || *scale > (1u << 20)) {
      throw std::invalid_argument("workload scale must be an integer in [1, " +
                                  std::to_string(1u << 20) + "], got '" +
                                  scale_text + "'");
    }
    spec.scale = static_cast<std::uint32_t>(*scale);
    rest = rest.substr(0, at);
  }
  spec.preset = rest;
  // validate the preset eagerly so callers get the one-line error up front
  bool known = false;
  for (const auto& p : presets(spec.family)) {
    if (p == spec.preset) known = true;
  }
  if (!known) detail::throw_unknown_preset(spec.family, spec.preset);
  return spec;
}

Workload generate(const WorkloadSpec& spec) {
  Workload out;
  switch (spec.family) {
    case Family::kSpmv:
      out = detail::build_spmv(spec);
      break;
    case Family::kNetlist:
      out = detail::build_netlist(spec);
      break;
    case Family::kDataflow:
      out = detail::build_dataflow(spec);
      break;
    case Family::kPowerLaw:
      out = detail::build_powerlaw(spec);
      break;
  }
  out.name = std::string(to_string(spec.family)) + ":" +
             (spec.preset.empty() ? presets(spec.family).front() : spec.preset);
  return out;
}

std::vector<std::string> catalogue() {
  std::vector<std::string> out;
  for (const Family f : kAllFamilies) {
    for (const auto& p : presets(f)) {
      out.push_back(std::string(to_string(f)) + ":" + p);
    }
  }
  return out;
}

}  // namespace hp::workload
