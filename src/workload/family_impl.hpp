#pragma once
// Internal helpers shared by the workload family generators.
//
// The determinism scheme: every per-item decision (a matrix row's nonzeros,
// a net's pins, a node's fan-in) draws from an Rng seeded by
// mix64(mix64(seed + family tag) + item). Item streams are therefore
// independent of each other and of how items are chunked across threads,
// which is what makes parallel_for_grain fills bit-identical at any thread
// count, and what keeps an instance a pure function of (spec.seed, item).

#include <algorithm>
#include <cstdint>

#include "hyperpart/util/rng.hpp"
#include "hyperpart/util/thread_pool.hpp"
#include "hyperpart/workload/workload.hpp"

namespace hp::workload::detail {

// Distinct stream tags per generator aspect. Stable constants: changing one
// re-rolls that family's instances and invalidates replay seeds, so they are
// never reused or renumbered.
inline constexpr std::uint64_t kTagSpmvRow = 0x73706d76'726f7721ULL;
inline constexpr std::uint64_t kTagNetlistNet = 0x6e65746c'6e657421ULL;
inline constexpr std::uint64_t kTagNetlistGlobal = 0x6e65746c'676c6f21ULL;
inline constexpr std::uint64_t kTagNetlistCell = 0x6e65746c'63656c21ULL;
inline constexpr std::uint64_t kTagDataflowNode = 0x64617461'666c6f21ULL;
inline constexpr std::uint64_t kTagPowerEdge = 0x706f7765'72707721ULL;
inline constexpr std::uint64_t kTagPowerPerm = 0x706f7765'727021ULL;

/// SplitMix64 finalizer as a pure function (splitmix64() advances a stream;
/// this hashes one value).
[[nodiscard]] inline std::uint64_t mix64(std::uint64_t x) noexcept {
  std::uint64_t state = x;
  return splitmix64(state);
}

/// The independent per-item stream described in the file header.
[[nodiscard]] inline Rng item_rng(std::uint64_t seed, std::uint64_t tag,
                                  std::uint64_t item) noexcept {
  return Rng(mix64(mix64(seed + tag) + item));
}

/// target_nodes override, else preset base x scale; floor of 4 so every
/// family template stays well-formed at fuzz sizes.
[[nodiscard]] inline NodeId resolve_nodes(const WorkloadSpec& spec,
                                          NodeId base) noexcept {
  const std::uint64_t raw =
      spec.target_nodes != 0
          ? static_cast<std::uint64_t>(spec.target_nodes)
          : static_cast<std::uint64_t>(base) *
                std::max<std::uint32_t>(spec.scale, 1);
  return static_cast<NodeId>(std::clamp<std::uint64_t>(raw, 4, 1u << 30));
}

[[nodiscard]] inline unsigned resolve_threads(const WorkloadSpec& spec) {
  return spec.threads == 0 ? default_threads() : spec.threads;
}

Workload build_spmv(const WorkloadSpec& spec);
Workload build_netlist(const WorkloadSpec& spec);
Workload build_dataflow(const WorkloadSpec& spec);
Workload build_powerlaw(const WorkloadSpec& spec);

[[noreturn]] void throw_unknown_preset(Family f, const std::string& preset);

}  // namespace hp::workload::detail
