// DNN/dataflow hyperDAGs (the paper's own Section 7 motivation). Each preset
// is a layered block template — MLP stacks, 1-D conv pyramids with
// downsampling and residual skips, sparse-attention blocks — built as a
// plain edge list over layer-major node ids where every edge points from a
// lower layer to a higher one. The list goes through Dag::from_edges (which
// verifies acyclicity) and then the Definition 3.2 to_hyperdag() round trip,
// so the emitted hypergraph is a hyperDAG by construction and Lemma B.2
// recognition accepts it. The Dag itself rides along in Workload::dag for
// schedule construction and BSP costing.

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "hyperpart/dag/hyperdag.hpp"
#include "workload/family_impl.hpp"

namespace hp::workload::detail {
namespace {

using EdgeList = std::vector<std::pair<NodeId, NodeId>>;

// Fully-layered MLP: L layers of width w; each node draws 2-4 distinct
// predecessors from the previous layer (a contiguous window, so fan-in pins
// are distinct without retry loops).
NodeId build_mlp(NodeId target, std::uint64_t seed, EdgeList& edges) {
  const std::uint32_t layers =
      target >= 12 ? 6 : std::max<std::uint32_t>(2, target / 2);
  const NodeId width = std::max<NodeId>(1, target / layers);
  for (std::uint32_t t = 1; t < layers; ++t) {
    for (NodeId x = 0; x < width; ++x) {
      const NodeId id = t * width + x;
      Rng rng = item_rng(seed, kTagDataflowNode, id);
      const NodeId fanin = std::min<NodeId>(
          width, 2 + static_cast<NodeId>(rng.next_below(3)));
      const NodeId start = static_cast<NodeId>(rng.next_below(width));
      for (NodeId f = 0; f < fanin; ++f) {
        const NodeId px = (start + f) % width;
        edges.emplace_back((t - 1) * width + px, id);
      }
    }
  }
  return layers * width;
}

// 1-D conv stack: kernel 3 / stride 1 layers, width halved every third
// layer, plus p=0.1 residual skips two layers back.
NodeId build_conv(NodeId target, std::uint64_t seed, EdgeList& edges) {
  NodeId width = std::max<NodeId>(2, target / 6);
  std::vector<NodeId> layer_base{0};
  std::vector<NodeId> layer_width{width};
  NodeId total = width;
  while (total < target && width >= 2) {
    const std::uint32_t t = static_cast<std::uint32_t>(layer_width.size());
    const bool downsample = t % 3 == 0;
    const NodeId prev_width = width;
    if (downsample) width = std::max<NodeId>(1, width / 2);
    const NodeId base = total;
    for (NodeId x = 0; x < width; ++x) {
      const NodeId id = base + x;
      const NodeId cx = downsample ? std::min<NodeId>(2 * x, prev_width - 1)
                                   : x;
      const NodeId lo = cx > 0 ? cx - 1 : 0;
      const NodeId hi = std::min<NodeId>(prev_width - 1, cx + 1);
      const NodeId prev_base = layer_base.back();
      for (NodeId px = lo; px <= hi; ++px) {
        edges.emplace_back(prev_base + px, id);
      }
      if (layer_base.size() >= 2) {
        Rng rng = item_rng(seed, kTagDataflowNode, id);
        if (rng.next_bool(0.1)) {
          const NodeId skip_base = layer_base[layer_base.size() - 2];
          const NodeId skip_width = layer_width[layer_width.size() - 2];
          edges.emplace_back(skip_base + std::min<NodeId>(x, skip_width - 1),
                             id);
        }
      }
    }
    layer_base.push_back(base);
    layer_width.push_back(width);
    total += width;
    if (width == 1) break;
  }
  return total;
}

// Sparse-attention blocks over s tokens: per block and token, a QKV node
// (from the token's block input), an attention node (its own QKV plus a
// random window of other tokens' QKVs), and an output node with a residual
// edge from the block input. Block b+1's inputs are block b's outputs.
NodeId build_attention(NodeId target, std::uint64_t seed, EdgeList& edges) {
  const NodeId s = std::clamp<NodeId>(
      static_cast<NodeId>(std::sqrt(static_cast<double>(target))), 2, 64);
  const NodeId blocks = std::max<NodeId>(1, (target - s) / (3 * s));
  NodeId total = s;  // token source nodes 0..s-1
  std::vector<NodeId> inputs(s);
  for (NodeId t = 0; t < s; ++t) inputs[t] = t;
  for (NodeId b = 0; b < blocks; ++b) {
    const NodeId qkv_base = total;
    const NodeId attn_base = total + s;
    const NodeId out_base = total + 2 * s;
    for (NodeId t = 0; t < s; ++t) {
      edges.emplace_back(inputs[t], qkv_base + t);
    }
    for (NodeId t = 0; t < s; ++t) {
      const NodeId attn = attn_base + t;
      edges.emplace_back(qkv_base + t, attn);
      Rng rng = item_rng(seed, kTagDataflowNode, attn);
      const NodeId h = std::min<NodeId>(s - 1, 4);
      const NodeId start = static_cast<NodeId>(rng.next_below(s));
      for (NodeId j = 0; j < h; ++j) {
        const NodeId other = (start + j) % s;
        if (other != t) edges.emplace_back(qkv_base + other, attn);
      }
    }
    for (NodeId t = 0; t < s; ++t) {
      edges.emplace_back(attn_base + t, out_base + t);
      edges.emplace_back(inputs[t], out_base + t);  // residual
      inputs[t] = out_base + t;
    }
    total += 3 * s;
  }
  return total;
}

}  // namespace

Workload build_dataflow(const WorkloadSpec& spec) {
  const NodeId target = resolve_nodes(spec, 2048);
  EdgeList edges;
  NodeId n = 0;
  if (spec.preset == "mlp" || spec.preset.empty()) {
    n = build_mlp(target, spec.seed, edges);
  } else if (spec.preset == "conv") {
    n = build_conv(target, spec.seed, edges);
  } else if (spec.preset == "attention") {
    n = build_attention(target, spec.seed, edges);
  } else {
    throw_unknown_preset(Family::kDataflow, spec.preset);
  }

  Dag dag = Dag::from_edges(n, std::move(edges));
  HyperDag hd = to_hyperdag(dag);

  Workload out;
  out.graph = std::move(hd.graph);
  out.dag = std::move(dag);
  out.suggested_k = 8;
  out.suggested_eps = 0.1;
  return out;
}

}  // namespace hp::workload::detail
