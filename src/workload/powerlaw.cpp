// Skewed power-law streams for the streaming partitioner. Pin popularity
// follows a truncated Pareto law: pins are drawn by inverse-CDF sampling of
// the density f(x) ∝ (x+1)^{-α} on [0, n), α = 0.8, so the degree of the
// node at popularity rank r decays like (r+1)^{-α} — the log-log degree
// tail the property test regresses. Node ids are a permutation of the
// popularity ranks, chosen by the preset to control where the hubs land in
// the arrival sequence (streaming partitioners are sensitive to exactly
// this):
//   zipf       hubs spread through the stream by a seeded shuffle
//   hubs_last  the hottest nodes arrive last — the adversarial order, every
//              hub placed after all its neighbourhoods are committed

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "hyperpart/core/builder.hpp"
#include "workload/family_impl.hpp"

namespace hp::workload::detail {
namespace {

constexpr double kAlpha = 0.8;

// Inverse CDF of f(x) ∝ (x+1)^{-α} on [0, n): exact for the continuous
// density, floored to a rank in [0, n).
NodeId pareto_rank(NodeId n, Rng& rng) {
  const double u = rng.next_double();
  const double one_minus_a = 1.0 - kAlpha;
  const double top = std::pow(static_cast<double>(n) + 1.0, one_minus_a);
  const double x = std::pow((top - 1.0) * u + 1.0, 1.0 / one_minus_a) - 1.0;
  const auto r = static_cast<std::uint64_t>(x);
  return static_cast<NodeId>(std::min<std::uint64_t>(r, n - 1));
}

}  // namespace

Workload build_powerlaw(const WorkloadSpec& spec) {
  const NodeId n = resolve_nodes(spec, 4096);

  // perm[rank] = node id of the rank-th hottest node.
  std::vector<NodeId> perm(n);
  std::iota(perm.begin(), perm.end(), NodeId{0});
  if (spec.preset == "zipf" || spec.preset.empty()) {
    Rng perm_rng = item_rng(spec.seed, kTagPowerPerm, 0);
    perm_rng.shuffle(perm);
  } else if (spec.preset == "hubs_last") {
    std::reverse(perm.begin(), perm.end());
  } else {
    throw_unknown_preset(Family::kPowerLaw, spec.preset);
  }

  const EdgeId m = 2 * static_cast<EdgeId>(n);
  const std::uint32_t max_size = std::min<std::uint32_t>(16, n);
  std::vector<std::vector<NodeId>> edges(m);
  parallel_for_grain(
      m, 512, resolve_threads(spec),
      [&](std::size_t, std::uint64_t begin, std::uint64_t end) {
        for (std::uint64_t i = begin; i < end; ++i) {
          Rng rng = item_rng(spec.seed, kTagPowerEdge, i);
          std::uint32_t size = 2;
          while (size < max_size && rng.next_bool(0.3)) ++size;
          auto& pins = edges[i];
          for (std::uint32_t t = 0; t < size; ++t) {
            pins.push_back(perm[pareto_rank(n, rng)]);
          }
          std::sort(pins.begin(), pins.end());
          pins.erase(std::unique(pins.begin(), pins.end()), pins.end());
        }
      });

  HypergraphBuilder b(n);
  for (auto& pins : edges) b.add_edge(std::move(pins));

  Workload out;
  out.graph = b.build();
  out.suggested_k = 8;
  out.suggested_eps = 0.1;
  return out;
}

}  // namespace hp::workload::detail
