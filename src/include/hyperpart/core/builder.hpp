#pragma once
// Incremental construction of hypergraphs.
//
// The gadget constructions in the paper (blocks, grids, the SpES/OVP/coloring
// reductions) are built edge by edge; HypergraphBuilder collects nodes and
// hyperedges and finalizes into the immutable CSR Hypergraph.

#include <vector>

#include "hyperpart/core/hypergraph.hpp"

namespace hp {

class HypergraphBuilder {
 public:
  HypergraphBuilder() = default;
  explicit HypergraphBuilder(NodeId initial_nodes)
      : num_nodes_(initial_nodes) {}

  /// Add a fresh node and return its id.
  NodeId add_node() { return num_nodes_++; }

  /// Add `count` fresh nodes; returns the id of the first.
  NodeId add_nodes(NodeId count) {
    const NodeId first = num_nodes_;
    num_nodes_ += count;
    return first;
  }

  /// Add a hyperedge over the given pins; returns its id. Pins may be given
  /// in any order; duplicates are removed at finalization.
  EdgeId add_edge(std::vector<NodeId> pins);

  /// Add a size-2 hyperedge (a plain graph edge).
  EdgeId add_edge2(NodeId u, NodeId v) { return add_edge({u, v}); }

  /// Weight attached to the edge added last (defaults to 1).
  void set_last_edge_weight(Weight w);

  [[nodiscard]] NodeId num_nodes() const noexcept { return num_nodes_; }
  [[nodiscard]] EdgeId num_edges() const noexcept {
    return static_cast<EdgeId>(edges_.size());
  }

  /// Finalize. The builder is left empty afterwards.
  [[nodiscard]] Hypergraph build();

 private:
  NodeId num_nodes_ = 0;
  std::vector<std::vector<NodeId>> edges_;
  std::vector<Weight> edge_weights_;
  bool any_weighted_ = false;
};

}  // namespace hp
