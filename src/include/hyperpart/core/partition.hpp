#pragma once
// k-way partitions of a hypergraph's node set (Section 3.1).
//
// A Partition assigns every node a part id in [0, k). The paper phrases
// 2-way partitions as red/blue colorings; here part 0 plays "red" and part 1
// "blue" wherever the constructions speak of colors.

#include <cstdint>
#include <span>
#include <vector>

#include "hyperpart/core/hypergraph.hpp"

namespace hp {

class Partition {
 public:
  Partition() = default;
  /// All nodes initially unassigned (kInvalidPart).
  Partition(NodeId num_nodes, PartId k)
      : part_(num_nodes, kInvalidPart), k_(k) {}
  /// From an explicit assignment vector.
  Partition(std::vector<PartId> assignment, PartId k)
      : part_(std::move(assignment)), k_(k) {}

  [[nodiscard]] PartId k() const noexcept { return k_; }
  [[nodiscard]] NodeId num_nodes() const noexcept {
    return static_cast<NodeId>(part_.size());
  }

  [[nodiscard]] PartId operator[](NodeId v) const noexcept { return part_[v]; }
  void assign(NodeId v, PartId p) noexcept { part_[v] = p; }

  [[nodiscard]] std::span<const PartId> raw() const noexcept { return part_; }

  /// True when every node has a valid part id in [0, k).
  [[nodiscard]] bool complete() const noexcept;

  /// Weight of each part under the graph's node weights.
  [[nodiscard]] std::vector<Weight> part_weights(const Hypergraph& g) const;

  /// Number of non-empty parts (cf. Lemma A.3: an optimal solution needs
  /// fewer than 2k/(1+eps) non-empty parts).
  [[nodiscard]] PartId num_nonempty_parts() const noexcept;

  /// Restriction to the first `prefix` nodes (used by reductions that pad a
  /// graph with auxiliary nodes, e.g. Lemma A.1's isolated-node padding).
  [[nodiscard]] Partition prefix(NodeId prefix_size) const;

 private:
  std::vector<PartId> part_;
  PartId k_ = 0;
};

}  // namespace hp
