#pragma once
// Partitioning cost metrics (Section 3.1).
//
// For a hyperedge e, λ_e is the number of parts intersecting e. The two
// standard costs are:
//   cut-net:       Σ_{e : λ_e > 1} w(e)
//   connectivity:  Σ_e w(e) · (λ_e − 1)
// For k = 2 the two metrics coincide. All hardness results in the paper
// apply to both; algorithms here accept either.

#include <cstdint>
#include <vector>

#include "hyperpart/core/hypergraph.hpp"
#include "hyperpart/core/partition.hpp"

namespace hp {

enum class CostMetric : std::uint8_t {
  kCutNet,
  kConnectivity,
};

[[nodiscard]] const char* to_string(CostMetric m) noexcept;

/// Number of distinct parts intersecting hyperedge e (λ_e). Unassigned pins
/// are ignored.
[[nodiscard]] PartId lambda(const Hypergraph& g, const Partition& p, EdgeId e);

/// True when λ_e > 1.
[[nodiscard]] bool is_cut(const Hypergraph& g, const Partition& p, EdgeId e);

/// Total cost of the partitioning under the chosen metric.
[[nodiscard]] Weight cost(const Hypergraph& g, const Partition& p,
                          CostMetric metric);

/// Ids of all cut hyperedges.
[[nodiscard]] std::vector<EdgeId> cut_edges(const Hypergraph& g,
                                            const Partition& p);

/// Sum over cut edges of w(e)·λ_e ("sum of external degrees"); reported by
/// some partitioners, provided for completeness.
[[nodiscard]] Weight sum_external_degrees(const Hypergraph& g,
                                          const Partition& p);

}  // namespace hp
