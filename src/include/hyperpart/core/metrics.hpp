#pragma once
// Partitioning cost metrics (Section 3.1).
//
// For a hyperedge e, λ_e is the number of parts intersecting e. The two
// standard costs are:
//   cut-net:       Σ_{e : λ_e > 1} w(e)
//   connectivity:  Σ_e w(e) · (λ_e − 1)
// For k = 2 the two metrics coincide. All hardness results in the paper
// apply to both; algorithms here accept either.

#include <cstdint>
#include <vector>

#include "hyperpart/core/hypergraph.hpp"
#include "hyperpart/core/partition.hpp"
#include "hyperpart/util/overflow.hpp"

namespace hp {

enum class CostMetric : std::uint8_t {
  kCutNet,
  kConnectivity,
};

[[nodiscard]] const char* to_string(CostMetric m) noexcept;

// --- Generic implementations ------------------------------------------------
//
// The metric computations only need `num_edges()`, `pins(e)` and
// `edge_weight(e)`, so they are written once as templates over the graph
// type and shared by the in-memory Hypergraph (the non-template functions
// below) and the mmap-backed stream::MappedHypergraph — which is what lets
// streaming partitioners recompute their cost offline with bit-identical
// results to the in-memory path.

namespace metric_detail {

/// Count the distinct parts appearing in e. λ_e is rarely large, so a
/// linear scan over a small stack buffer beats hashing; once more than 64
/// distinct parts show up, switch to a dense seen-array over [0, k) (the
/// ConnectivityTracker counting scheme) so membership tests stay O(1)
/// instead of an O(λ) overflow scan.
template <class G>
[[nodiscard]] PartId count_distinct_parts(const G& g, const Partition& p,
                                          EdgeId e) {
  constexpr PartId kSmall = 64;
  PartId distinct[kSmall];
  PartId count = 0;
  std::vector<std::uint8_t> seen;  // dense [0, k) marks, large-λ edges only
  for (const NodeId v : g.pins(e)) {
    const PartId q = p[v];
    if (q >= p.k()) continue;  // unassigned
    if (seen.empty()) {
      bool found = false;
      for (PartId i = 0; i < count; ++i) {
        if (distinct[i] == q) {
          found = true;
          break;
        }
      }
      if (found) continue;
      if (count < kSmall) {
        distinct[count++] = q;
        continue;
      }
      seen.assign(p.k(), 0);
      for (PartId i = 0; i < kSmall; ++i) seen[distinct[i]] = 1;
    }
    if (!seen[q]) {
      seen[q] = 1;
      ++count;
    }
  }
  return count;
}

}  // namespace metric_detail

/// λ_e over any graph type exposing pins(e).
template <class G>
[[nodiscard]] PartId lambda_of(const G& g, const Partition& p, EdgeId e) {
  return metric_detail::count_distinct_parts(g, p, e);
}

/// True when λ_e > 1. Stops at the first pin whose part differs from the
/// first assigned pin's instead of counting λ_e.
template <class G>
[[nodiscard]] bool is_cut_of(const G& g, const Partition& p, EdgeId e) {
  PartId first = kInvalidPart;
  for (const NodeId v : g.pins(e)) {
    const PartId q = p[v];
    if (q >= p.k()) continue;  // unassigned
    if (first == kInvalidPart) {
      first = q;
    } else if (q != first) {
      return true;
    }
  }
  return false;
}

/// Total cost under the chosen metric, over any graph type. Accumulates
/// saturating: adversarial int64-scale edge weights clamp to the Weight
/// range instead of wrapping into signed-overflow UB.
template <class G>
[[nodiscard]] Weight cost_of(const G& g, const Partition& p,
                             CostMetric metric) {
  Weight total = 0;
  if (metric == CostMetric::kCutNet) {
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      if (is_cut_of(g, p, e)) total = sat_add(total, g.edge_weight(e));
    }
    return total;
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const PartId l = lambda_of(g, p, e);
    if (l <= 1) continue;
    total = sat_add(total,
                    sat_mul(g.edge_weight(e), static_cast<Weight>(l - 1)));
  }
  return total;
}

/// Number of distinct parts intersecting hyperedge e (λ_e). Unassigned pins
/// are ignored.
[[nodiscard]] PartId lambda(const Hypergraph& g, const Partition& p, EdgeId e);

/// True when λ_e > 1.
[[nodiscard]] bool is_cut(const Hypergraph& g, const Partition& p, EdgeId e);

/// Total cost of the partitioning under the chosen metric.
[[nodiscard]] Weight cost(const Hypergraph& g, const Partition& p,
                          CostMetric metric);

/// Ids of all cut hyperedges.
[[nodiscard]] std::vector<EdgeId> cut_edges(const Hypergraph& g,
                                            const Partition& p);

/// Sum over cut edges of w(e)·λ_e ("sum of external degrees"); reported by
/// some partitioners, provided for completeness.
[[nodiscard]] Weight sum_external_degrees(const Hypergraph& g,
                                          const Partition& p);

}  // namespace hp
