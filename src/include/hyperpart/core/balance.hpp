#pragma once
// Balance constraints.
//
// Single ε-balance (Definition 3.1): every part may hold weight at most
// (1+ε)·W/k, optionally relaxed to ⌈(1+ε)·W/k⌉ so a feasible partitioning
// always exists (Section 3.1 / Appendix A "Non-integer thresholds").
//
// Multi-constraint balance (Definition 6.1): disjoint node subsets
// V_1, …, V_c each balanced separately. Layer-wise constraints for hyperDAGs
// (Definition 5.1) are expressed as a ConstraintSet built from the layers.

#include <cstdint>
#include <vector>

#include "hyperpart/core/hypergraph.hpp"
#include "hyperpart/core/partition.hpp"

namespace hp {

class BalanceConstraint {
 public:
  /// Capacity (1+eps)·W/k over the graph's total node weight W. When
  /// `relaxed`, the ceiling is used instead of the floor.
  static BalanceConstraint for_graph(const Hypergraph& g, PartId k,
                                     double epsilon, bool relaxed = false);

  /// Same formula over an explicit total weight (for node subsets).
  static BalanceConstraint for_total_weight(Weight total, PartId k,
                                            double epsilon,
                                            bool relaxed = false);

  /// Explicit per-part capacity.
  static BalanceConstraint with_capacity(PartId k, Weight capacity,
                                         double epsilon = 0.0);

  [[nodiscard]] PartId k() const noexcept { return k_; }
  [[nodiscard]] double epsilon() const noexcept { return epsilon_; }
  [[nodiscard]] Weight capacity() const noexcept { return capacity_; }

  /// True when every part's weight is within capacity.
  [[nodiscard]] bool satisfied(const Hypergraph& g, const Partition& p) const;
  [[nodiscard]] bool satisfied(const std::vector<Weight>& part_weights) const;

 private:
  PartId k_ = 2;
  double epsilon_ = 0.0;
  Weight capacity_ = 0;
};

/// One group of a multi-constraint instance: a node subset and the per-part
/// cap inside that subset.
struct ConstraintGroup {
  std::vector<NodeId> nodes;
  Weight capacity = 0;
};

class ConstraintSet {
 public:
  ConstraintSet() = default;

  /// Build from disjoint subsets V_1..V_c, each with cap (1+eps)·|V_j|/k.
  /// Node weights in the graph are respected. When `relaxed`, ceilings are
  /// used (relevant for tiny layers, Appendix A).
  static ConstraintSet for_subsets(const Hypergraph& g,
                                   std::vector<std::vector<NodeId>> subsets,
                                   PartId k, double epsilon,
                                   bool relaxed = false);

  void add_group(ConstraintGroup group) { groups_.push_back(std::move(group)); }

  [[nodiscard]] std::size_t num_constraints() const noexcept {
    return groups_.size();
  }
  [[nodiscard]] const ConstraintGroup& group(std::size_t j) const noexcept {
    return groups_[j];
  }

  /// True when for every group j and part i, the weight of group j's nodes in
  /// part i is within the group's capacity.
  [[nodiscard]] bool satisfied(const Hypergraph& g, const Partition& p) const;

  /// Index of the first violated group, or num_constraints() if none.
  [[nodiscard]] std::size_t first_violated(const Hypergraph& g,
                                           const Partition& p) const;

 private:
  std::vector<ConstraintGroup> groups_;
};

}  // namespace hp
