#pragma once
// Induced sub-hypergraph extraction.
//
// Used by recursive bisection (Section 7.1) and by tests of the Lemma B.1
// characterization. Edges are restricted to the kept node set; restricted
// edges with fewer than 2 pins are dropped (they can never be cut).

#include <vector>

#include "hyperpart/core/hypergraph.hpp"

namespace hp {

struct SubHypergraph {
  Hypergraph graph;
  /// original_node[i] is the id in the parent graph of the sub-graph's node i.
  std::vector<NodeId> original_node;
};

/// Extract the sub-hypergraph induced by `nodes` (need not be sorted;
/// duplicates are an error). Node weights carry over; edge weights carry
/// over for every edge that keeps ≥ 2 pins.
[[nodiscard]] SubHypergraph induced_subhypergraph(
    const Hypergraph& g, const std::vector<NodeId>& nodes);

}  // namespace hp
