#pragma once
// Hypergraph data structure (Section 3.1 of the paper).
//
// A hypergraph G(V, E) over n nodes with hyperedges e ⊆ V. Stored in a
// compressed (CSR-like) layout in both directions: edge → pins and
// node → incident edges, so that iterating pins of an edge and edges of a
// node are both contiguous scans. Nodes and edges carry optional positive
// integer weights (unit weights by default); the paper's hardness results
// carry over to the weighted setting (Section 2), and the weighted form is
// needed for multilevel coarsening and for the contracted multi-hypergraphs
// of the hierarchy assignment problem (Appendix H.1).

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace hp {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;
using PartId = std::uint32_t;
using Weight = std::int64_t;

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);
inline constexpr EdgeId kInvalidEdge = static_cast<EdgeId>(-1);
inline constexpr PartId kInvalidPart = static_cast<PartId>(-1);

/// One pin-list rewrite of a structural edit batch: edge `edge` gets the
/// full new pin list `pins` (empty = tombstoned net; empty edges are never
/// cut and cost nothing under either metric).
struct EdgeRewrite {
  EdgeId edge = kInvalidEdge;
  std::vector<NodeId> pins;
};

/// One appended hyperedge of a structural edit batch.
struct NewEdge {
  std::vector<NodeId> pins;
  Weight weight = 1;
};

class Hypergraph {
 public:
  Hypergraph() = default;

  /// Build from an explicit pin list. Pins within an edge must be distinct
  /// (duplicates are removed); empty edges are kept (they are never cut).
  /// Throws std::invalid_argument on out-of-range pins.
  static Hypergraph from_edges(NodeId num_nodes,
                               std::vector<std::vector<NodeId>> edges);

  [[nodiscard]] NodeId num_nodes() const noexcept {
    return static_cast<NodeId>(node_offsets_.size() - 1);
  }
  [[nodiscard]] EdgeId num_edges() const noexcept {
    return static_cast<EdgeId>(edge_offsets_.size() - 1);
  }
  /// Total number of pins ρ = Σ_e |e|.
  [[nodiscard]] std::uint64_t num_pins() const noexcept { return pins_.size(); }

  [[nodiscard]] std::span<const NodeId> pins(EdgeId e) const noexcept {
    return {pins_.data() + edge_offsets_[e],
            pins_.data() + edge_offsets_[e + 1]};
  }
  [[nodiscard]] std::span<const EdgeId> incident_edges(NodeId v) const noexcept {
    return {incident_.data() + node_offsets_[v],
            incident_.data() + node_offsets_[v + 1]};
  }

  [[nodiscard]] std::uint32_t edge_size(EdgeId e) const noexcept {
    return static_cast<std::uint32_t>(edge_offsets_[e + 1] - edge_offsets_[e]);
  }
  [[nodiscard]] std::uint32_t degree(NodeId v) const noexcept {
    return static_cast<std::uint32_t>(node_offsets_[v + 1] - node_offsets_[v]);
  }
  /// Maximal node degree Δ.
  [[nodiscard]] std::uint32_t max_degree() const noexcept;
  /// Maximal hyperedge size.
  [[nodiscard]] std::uint32_t max_edge_size() const noexcept;

  [[nodiscard]] Weight node_weight(NodeId v) const noexcept {
    return node_weights_.empty() ? 1 : node_weights_[v];
  }
  [[nodiscard]] Weight edge_weight(EdgeId e) const noexcept {
    return edge_weights_.empty() ? 1 : edge_weights_[e];
  }
  [[nodiscard]] Weight total_node_weight() const noexcept;
  [[nodiscard]] bool has_node_weights() const noexcept {
    return !node_weights_.empty();
  }
  [[nodiscard]] bool has_edge_weights() const noexcept {
    return !edge_weights_.empty();
  }

  /// Attach node weights (size must equal num_nodes(); all weights >= 0).
  void set_node_weights(std::vector<Weight> w);
  /// Attach edge weights (size must equal num_edges(); all weights >= 0).
  void set_edge_weights(std::vector<Weight> w);

  /// In-place single-weight updates (w >= 0; throws std::invalid_argument
  /// otherwise). Materialize the lazy unit-weight vector on first use. The
  /// partitioning service uses these for dynamic updates so that the graph
  /// object — and every ConnectivityTracker referencing it — keeps its
  /// address and CSR structure; only the weight changes.
  void update_node_weight(NodeId v, Weight w);
  void update_edge_weight(EdgeId e, Weight w);

  /// Structural edit batch over a fixed node set: `rewrites` replace the
  /// full pin lists of existing edges (later rewrites of the same edge win),
  /// `appended` adds new edges at ids m, m+1, … in order. Pins are sorted
  /// and deduplicated here, mirroring from_edges. Both CSR sides are rebuilt
  /// in one pass — O(n + m + ρ) — and the object keeps its address, so
  /// ConnectivityTrackers referencing this graph stay valid and can be
  /// patched per touched net (the partitioning service's structural-delta
  /// path). Throws std::invalid_argument on out-of-range edges/pins or
  /// negative weights, in which case the graph is untouched (strong
  /// guarantee: all inputs are validated before any member mutates).
  void apply_structural_batch(std::vector<EdgeRewrite> rewrites,
                              std::vector<NewEdge> appended);

  /// 64-bit FNV-1a content hash over the full structure and weights
  /// (n, m, pin lists, incidence offsets, weight vectors). Two graphs with
  /// equal hash are byte-identical for every accessor above; the
  /// partitioning service keys its hierarchy/tracker caches on it.
  [[nodiscard]] std::uint64_t content_hash() const noexcept;

  /// Internal consistency check (offsets sorted, pins in range, mirror
  /// structure matches). Used by tests and after deserialization.
  [[nodiscard]] bool validate() const noexcept;

  /// Human-readable one-line summary: n, m, ρ, Δ.
  [[nodiscard]] std::string summary() const;

 private:
  std::vector<std::uint64_t> edge_offsets_{0};
  std::vector<NodeId> pins_;
  std::vector<std::uint64_t> node_offsets_{0};
  std::vector<EdgeId> incident_;
  std::vector<Weight> node_weights_;
  std::vector<Weight> edge_weights_;
};

}  // namespace hp
