#pragma once
// Incremental λ_e bookkeeping for local-search refinement.
//
// Maintains, for every hyperedge e and part i, the number of pins of e in
// part i, plus running totals of both cost metrics. Moving one node updates
// all incident edges in O(Σ incident edges) and answers move gains exactly,
// which is the engine behind the FM refiner (src/algo/fm_refiner).

#include <vector>

#include "hyperpart/core/hypergraph.hpp"
#include "hyperpart/core/metrics.hpp"
#include "hyperpart/core/partition.hpp"

namespace hp {

class ConnectivityTracker {
 public:
  /// The partition must be complete (every node assigned).
  ConnectivityTracker(const Hypergraph& g, const Partition& p);

  [[nodiscard]] PartId k() const noexcept { return k_; }

  /// Pins of edge e currently in part q.
  [[nodiscard]] std::uint32_t pins_in_part(EdgeId e, PartId q) const noexcept {
    return counts_[static_cast<std::size_t>(e) * k_ + q];
  }
  /// λ_e under the current assignment.
  [[nodiscard]] PartId lambda(EdgeId e) const noexcept { return lambda_[e]; }

  [[nodiscard]] Weight cut_net_cost() const noexcept { return cut_net_; }
  [[nodiscard]] Weight connectivity_cost() const noexcept {
    return connectivity_;
  }
  [[nodiscard]] Weight cost(CostMetric m) const noexcept {
    return m == CostMetric::kCutNet ? cut_net_ : connectivity_;
  }

  [[nodiscard]] PartId part_of(NodeId v) const noexcept { return part_[v]; }
  [[nodiscard]] Weight part_weight(PartId q) const noexcept {
    return part_weight_[q];
  }
  [[nodiscard]] const std::vector<Weight>& part_weights() const noexcept {
    return part_weight_;
  }

  /// Exact decrease in cost if v moved to part `to` (negative = cost rises).
  [[nodiscard]] Weight gain(NodeId v, PartId to, CostMetric m) const;

  /// Move v to part `to`, updating counts, λ, costs and part weights.
  void move(NodeId v, PartId to);

  /// Export the current assignment.
  [[nodiscard]] Partition to_partition() const;

 private:
  const Hypergraph& g_;
  PartId k_;
  std::vector<PartId> part_;
  std::vector<std::uint32_t> counts_;  // m × k pin counts
  std::vector<PartId> lambda_;
  std::vector<Weight> part_weight_;
  Weight cut_net_ = 0;
  Weight connectivity_ = 0;
};

}  // namespace hp
