#pragma once
// Incremental λ_e bookkeeping for local-search refinement.
//
// Maintains, for every hyperedge e and part i, the number of pins of e in
// part i, plus running totals of both cost metrics. Moving one node updates
// all incident edges in O(Σ incident edges) and answers move gains exactly,
// which is the engine behind the FM refiner (src/algo/fm_refiner).
//
// On top of the pin counts the tracker can maintain a *gain cache*: a
// per-node × per-part table of exact move gains for one metric, updated by
// delta rules inside move() so refinement pops read gains in O(1) instead
// of rescanning incident edges, plus a boundary-node set (nodes on cut
// edges) so FM passes seed their priority queue with boundary moves only.
// The delta rules follow the KaHyPar gain-cache decomposition:
//
//   connectivity:  gain(v,q) = p(v) + ben(v,q) − degw(v)
//     p(v)      = Σ_{e∋v} w(e)·[Φ(e, part(v)) == 1]   (v alone on its side)
//     ben(v,q)  = Σ_{e∋v} w(e)·[Φ(e, q) ≥ 1]          (q already present)
//     degw(v)   = Σ_{e∋v} w(e)                        (constant)
//   cut-net:       gain(v,q) = ben₂(v,q) − int(v)
//     int(v)    = Σ_{e∋v, |e|≥2} w(e)·[λ_e == 1]      (edges v would cut)
//     ben₂(v,q) = Σ_{e∋v} w(e)·[λ_e == 2 ∧ Φ(e,part(v)) == 1 ∧ Φ(e,q) ≥ 1]
//
// where Φ(e,q) = pins_in_part(e,q). Only edges whose pin counts cross the
// 0/1/2 thresholds (boundary edges) trigger pin rescans; interior moves on
// large edges cost O(1) per edge.

#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "hyperpart/core/hypergraph.hpp"
#include "hyperpart/core/metrics.hpp"
#include "hyperpart/core/partition.hpp"

namespace hp {

/// One proposed move of a synchronous refinement round, carrying the gain
/// it was computed with (against the round's frozen snapshot).
struct BatchMove {
  NodeId node;
  PartId to;
  Weight gain;
};

/// Outcome of ConnectivityTracker::apply_batch.
struct BatchCommitResult {
  std::uint64_t applied = 0;     ///< moves that survived revalidation
  std::uint64_t conflicted = 0;  ///< skipped: stale gain or infeasible now
  Weight total_gain = 0;         ///< exact cost decrease of applied moves
};

class ConnectivityTracker {
 public:
  /// The partition must be complete (every node assigned). With
  /// `threads` > 1 the m×k pin-count table is built in parallel over edge
  /// ranges on the persistent thread pool; the result is identical for
  /// every thread count.
  ConnectivityTracker(const Hypergraph& g, const Partition& p,
                      unsigned threads = 1);

  [[nodiscard]] PartId k() const noexcept { return k_; }

  /// Pins of edge e currently in part q. The table is flat (net × part) in
  /// both widths; the narrow uint16 layout is selected whenever every net
  /// fits (see narrow_counts()).
  [[nodiscard]] std::uint32_t pins_in_part(EdgeId e, PartId q) const noexcept {
    const std::size_t i = static_cast<std::size_t>(e) * k_ + q;
    return narrow_ ? counts16_[i] : counts32_[i];
  }
  /// True while the pin counts live in the half-width uint16 table (every
  /// net has at most 65535 pins — the common case; a structural patch that
  /// grows a net past that widens the table in place).
  [[nodiscard]] bool narrow_counts() const noexcept { return narrow_; }
  /// λ_e under the current assignment.
  [[nodiscard]] PartId lambda(EdgeId e) const noexcept { return lambda_[e]; }

  [[nodiscard]] Weight cut_net_cost() const noexcept { return cut_net_; }
  [[nodiscard]] Weight connectivity_cost() const noexcept {
    return connectivity_;
  }
  [[nodiscard]] Weight cost(CostMetric m) const noexcept {
    return m == CostMetric::kCutNet ? cut_net_ : connectivity_;
  }

  [[nodiscard]] PartId part_of(NodeId v) const noexcept { return part_[v]; }
  [[nodiscard]] Weight part_weight(PartId q) const noexcept {
    return part_weight_[q];
  }
  [[nodiscard]] const std::vector<Weight>& part_weights() const noexcept {
    return part_weight_;
  }

  /// Exact decrease in cost if v moved to part `to` (negative = cost rises).
  /// Always recomputed from the pin counts; see cached_gain() for the O(1)
  /// path.
  [[nodiscard]] Weight gain(NodeId v, PartId to, CostMetric m) const;

  /// Move v to part `to`, updating counts, λ, costs, part weights, and —
  /// when enabled — the gain cache and boundary set.
  void move(NodeId v, PartId to);

  /// Export the current assignment.
  [[nodiscard]] Partition to_partition() const;

  /// Adjust the cached part weight after node v's weight in the underlying
  /// graph changed by `delta` (via Hypergraph::update_node_weight on the
  /// same graph object this tracker references). Pin counts, λ, both cost
  /// totals, and the gain cache are independent of node weights, so the
  /// tracker stays exact — this is what lets the partitioning service run
  /// ΔFM on a cached tracker after a weight-only update instead of
  /// rebuilding it.
  void apply_node_weight_delta(NodeId v, Weight delta) noexcept {
    part_weight_[part_[v]] = sat_add(part_weight_[part_[v]], delta);
  }

  /// Structural patch, phase 1 of 2. Called BEFORE the underlying graph
  /// mutates (via Hypergraph::apply_structural_batch on the same object
  /// this tracker references), with the DISTINCT ids of every EXISTING net
  /// whose pin list is about to change. Subtracts those nets' contributions
  /// from both cost totals and drops the gain cache — per-net repair of the
  /// n×k gain tables costs as much as refilling them, so refiners simply
  /// re-enable the cache on their next run (rebalance_with_tracker /
  /// delta_fm_refine already do). Part weights are untouched: structural
  /// deltas never change the node set.
  void begin_structural_patch(std::span<const EdgeId> touched);

  /// Phase 2, called AFTER the graph mutated. Resizes the per-net tables to
  /// the new edge count, recomputes pin counts / λ / present-parts rows for
  /// the touched nets and for every net appended since phase 1, and adds
  /// their contributions back. The tracker is exact again afterwards
  /// (modulo the dropped gain cache), which verify_cache_integrity checks.
  void finish_structural_patch(std::span<const EdgeId> touched);

  /// Deterministic commit phase of a synchronous move round. Applies the
  /// proposals in the given (already prioritized) order; each is
  /// revalidated against the tracker's CURRENT state right before it
  /// applies: the exact cached gain must still be ≥ `min_gain` and the
  /// target part must stay within `capacity` — otherwise the proposal is
  /// counted as conflicted and skipped, exactly as a sequential pass
  /// re-examining the node would have rejected it. Requires an enabled
  /// gain cache. last_move_touched() afterwards holds the union of nodes
  /// whose cached gains changed across the whole batch (deduplicated).
  BatchCommitResult apply_batch(std::span<const BatchMove> moves,
                                Weight capacity, Weight min_gain = 1);

  // --- Gain cache & boundary set -----------------------------------------

  /// Build the n×k gain table and the boundary set for metric `m`
  /// (parallel over node ranges with `threads` > 1). May be called again
  /// to switch metrics; moves made afterwards keep the cache exact.
  void enable_gain_cache(CostMetric m, unsigned threads = 1);

  [[nodiscard]] bool gain_cache_enabled() const noexcept {
    return cache_enabled_;
  }
  [[nodiscard]] CostMetric gain_cache_metric() const noexcept {
    return cache_metric_;
  }

  /// O(1) gain of moving v to `to` under the cached metric. Requires an
  /// enabled cache; equals gain(v, to, gain_cache_metric()).
  [[nodiscard]] Weight cached_gain(NodeId v, PartId to) const noexcept {
    const PartId from = part_[v];
    if (from == to) return 0;
    const std::size_t idx = static_cast<std::size_t>(v) * k_ + to;
    const NodeAux& a = aux_[v];
    return cache_metric_ == CostMetric::kConnectivity
               ? a.penalty + benefit_[idx] - a.degw
               : benefit_[idx] - a.penalty;
  }

  /// O(1) best cached move of v: the part maximizing cached_gain(v, ·) and
  /// that gain. The argmax is maintained incrementally — benefit-row writes
  /// update it in place (the row is cache-hot at that moment) and only a
  /// decrease at the current argmax triggers an O(k) rescan — so refiners
  /// key their heaps on it without ever scanning gain rows. The penalty /
  /// degree terms shift every target's gain equally and therefore never
  /// move the argmax. Balance-infeasible targets are NOT excluded; callers
  /// check feasibility when they pop.
  [[nodiscard]] PartId cached_best_target(NodeId v) const noexcept {
    return best_to_[v];
  }
  [[nodiscard]] Weight cached_best_gain(NodeId v) const noexcept {
    return cached_gain(v, best_to_[v]);
  }

  /// True when v has at least one incident edge with λ_e > 1. Only
  /// maintained while the gain cache is enabled.
  [[nodiscard]] bool is_boundary(NodeId v) const noexcept {
    return aux_[v].cut_incident > 0;
  }
  /// Current boundary nodes, in insertion order (deterministic for a fixed
  /// move sequence). Only maintained while the gain cache is enabled.
  [[nodiscard]] const std::vector<NodeId>& boundary_nodes() const noexcept {
    return boundary_;
  }

  /// Nodes (other than the moved one — it is listed too) whose cached
  /// gains changed during the last move(); refiners re-push exactly these
  /// into their priority queues. Cleared at the start of every move.
  [[nodiscard]] const std::vector<NodeId>& last_move_touched() const noexcept {
    return touched_;
  }

  /// Hint the CPU to pull `v`'s cached-gain row into cache. The FM engine
  /// issues this a few nodes ahead while sweeping boundary/touched lists —
  /// the rows are scattered across an n×k table, so the walk is otherwise
  /// latency-bound.
  void prefetch_gain_row(NodeId v) const noexcept {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(benefit_.data() + static_cast<std::size_t>(v) * k_);
    __builtin_prefetch(aux_.data() + v);
#else
    (void)v;
#endif
  }

 private:
  // The hot kernels are compiled twice, once per count width; every public
  // entry point dispatches ONCE on narrow_ and stays branch-free on the
  // width inside its loops. Both instantiations compute identical integer
  // sums, so results never depend on the selected width.
  template <typename C>
  [[nodiscard]] C* counts_data() noexcept {
    if constexpr (std::is_same_v<C, std::uint16_t>) {
      return counts16_.data();
    } else {
      return counts32_.data();
    }
  }
  template <typename C>
  [[nodiscard]] const C* counts_data() const noexcept {
    if constexpr (std::is_same_v<C, std::uint16_t>) {
      return counts16_.data();
    } else {
      return counts32_.data();
    }
  }
  template <typename C>
  void build_counts(unsigned threads);
  template <typename C>
  [[nodiscard]] Weight gain_impl(NodeId v, PartId to, CostMetric m) const;
  template <typename C>
  void move_plain(NodeId v, PartId to);
  template <typename C>
  void move_with_cache(NodeId v, PartId to);
  template <typename C>
  void recount_net(EdgeId e);
  template <bool Atomic, typename C>
  void fill_cache_tables(CostMetric m, unsigned threads);
  void rescan_best(NodeId v) noexcept;
  void benefit_add(NodeId v, PartId q, Weight w) noexcept;
  void benefit_sub(NodeId v, PartId q, Weight w) noexcept;
  template <typename C>
  void apply_connectivity_deltas(EdgeId e, NodeId u, PartId from, PartId to);
  template <typename C>
  void remove_cut_contributions(EdgeId e, NodeId u);
  template <typename C>
  void add_cut_contributions(EdgeId e, NodeId u);
  template <typename C>
  void rebuild_mover_cache_row(NodeId u);
  void update_boundary_after_lambda_change(EdgeId e, PartId l_before,
                                           PartId l_after);
  void touch(NodeId v);
  void boundary_insert(NodeId v);
  void boundary_erase(NodeId v);
  /// Copy the uint16 table into the wide one and drop the narrow layout;
  /// called when a structural patch grows some net past 65535 pins.
  void widen_counts();
  /// The two present parts (a < b) of an edge with λ_e == 2, via the
  /// present-parts bitset when k ≤ 64 and a count scan otherwise.
  template <typename C>
  [[nodiscard]] std::pair<PartId, PartId> two_present_parts(
      EdgeId e) const noexcept;

  const Hypergraph& g_;
  PartId k_;
  std::vector<PartId> part_;
  // m × k pins-in-part, exactly one of the two active (see narrow_counts()):
  // the narrow table halves the footprint and memory traffic of every
  // per-net row scan — the hot walk of gain-cache fill and FM moves.
  bool narrow_ = false;
  std::vector<std::uint16_t> counts16_;
  std::vector<std::uint32_t> counts32_;
  // For k ≤ 64: per-net bitset of parts with at least one pin, kept in
  // lock-step with counts_. Turns the hot "which parts are present in e"
  // scans (gain-cache fill, the λ == 2 two-part lookups, the mover-row
  // rebuild) from O(k) count reads into one word load + bit tricks.
  std::vector<std::uint64_t> present_;
  std::vector<PartId> lambda_;
  std::vector<Weight> part_weight_;
  Weight cut_net_ = 0;
  Weight connectivity_ = 0;

  // All per-node scalar cache state, interleaved into one 32-byte record so
  // the threshold rules of a move (penalty bump, boundary counter, touch
  // stamp) and every cached_gain() read hit ONE cache line per node instead
  // of 4–5 scattered ones. alignas(32) keeps a record from straddling lines.
  struct alignas(32) NodeAux {
    Weight penalty = 0;   // p / int term of the cached metric
    Weight degw = 0;      // degw (connectivity metric only)
    std::uint64_t stamp = 0;         // touched_ dedup epoch
    std::uint32_t cut_incident = 0;  // #incident edges with λ > 1
    std::uint32_t boundary_pos = 0;  // index into boundary_, or kNotInBoundary
  };
  static_assert(sizeof(NodeAux) == 32);

  // Gain-cache state (empty until enable_gain_cache()).
  bool cache_enabled_ = false;
  CostMetric cache_metric_ = CostMetric::kConnectivity;
  std::vector<Weight> benefit_;   // n × k: ben / ben₂ term
  std::vector<NodeAux> aux_;      // n: interleaved per-node scalars
  std::vector<PartId> best_to_;   // n: argmax_q≠part cached_gain(·,q)
  std::vector<NodeId> boundary_;  // sparse set of boundary nodes
  std::vector<NodeId> touched_;   // gains changed by last move
  std::uint64_t epoch_ = 0;
  bool batch_active_ = false;  // apply_batch: accumulate touched_ over moves
  // begin_structural_patch .. finish_structural_patch bracket: the edge
  // count at phase 1, so phase 2 knows which nets were appended in between.
  EdgeId patch_edges_before_ = kInvalidEdge;
};

}  // namespace hp
