#pragma once
// The hierarchy assignment problem (Section 7.3, Appendix H).
//
// Given an already-fixed k-way partitioning (contracted to a
// multi-hypergraph on k nodes, see contract_partition), assign the k parts
// to the k leaf positions of the hierarchy so the hierarchical cost is
// minimized. Exact enumeration visits only the f(k) = k! / Π (b_i!)^(…)
// non-equivalent assignments (Appendix H.1). For d = 2, b₂ = 2 the problem
// reduces to maximum-weight perfect matching (Lemma H.1); for b₂ = 3 it is
// NP-hard (Lemma H.2), so a swap-based local search is provided.

#include <cstdint>
#include <vector>

#include "hyperpart/core/hypergraph.hpp"
#include "hyperpart/core/partition.hpp"
#include "hyperpart/hier/topology.hpp"

namespace hp {

struct AssignmentResult {
  /// leaf_of_part[q] = leaf slot assigned to part q.
  std::vector<PartId> leaf_of_part;
  /// Hierarchical cost of the contracted hypergraph under this assignment.
  double cost = 0.0;
  /// Assignments evaluated (exact enumeration only).
  std::uint64_t assignments_checked = 0;
};

/// Number of non-equivalent assignments f(k) for a topology (App. H.1).
[[nodiscard]] std::uint64_t count_nonequivalent_assignments(
    const HierTopology& topo);

/// Hierarchical cost of `contracted` (a hypergraph on k nodes, node q =
/// part q) when part q sits at leaf_of_part[q].
[[nodiscard]] double assignment_cost(const Hypergraph& contracted,
                                     const HierTopology& topo,
                                     const std::vector<PartId>& leaf_of_part);

/// Exact optimum by enumerating the f(k) non-equivalent assignments
/// (sibling subtrees in canonical order).
[[nodiscard]] AssignmentResult exact_assignment(const Hypergraph& contracted,
                                                const HierTopology& topo);

/// Lemma H.1: optimal assignment for d = 2, b₂ = 2 via maximum-weight
/// perfect matching over pair affinities. Throws for other topologies.
[[nodiscard]] AssignmentResult matching_assignment(const Hypergraph& contracted,
                                                   const HierTopology& topo);

/// Leaf-swap local search (general topologies; the practical heuristic for
/// the NP-hard b₂ ≥ 3 case).
[[nodiscard]] AssignmentResult local_search_assignment(
    const Hypergraph& contracted, const HierTopology& topo,
    std::uint64_t seed);

/// Relabel a partition by an assignment: node with part q gets part
/// leaf_of_part[q].
[[nodiscard]] Partition apply_assignment(
    const Partition& p, const std::vector<PartId>& leaf_of_part);

}  // namespace hp
