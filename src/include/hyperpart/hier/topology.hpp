#pragma once
// Hierarchical processor topologies (Section 7).
//
// A rooted tree of depth d with fixed branching factor b_i at level i (from
// the top) and monotonically decreasing transfer costs g_1 ≥ … ≥ g_d
// (normalized so g_d = 1 in the paper; not enforced here). The k = Π b_i
// leaves are compute units, numbered left to right; two leaves whose lowest
// common ancestor sits at level i pay g_i per transferred value.
//
// Appendix I.2's generalization — an arbitrary processor topology given by
// a metric on the k units — is provided as GeneralTopology.

#include <cstdint>
#include <vector>

#include "hyperpart/core/hypergraph.hpp"  // PartId

namespace hp {

class HierTopology {
 public:
  /// Trivial single-leaf topology (placeholder; replace before use).
  HierTopology() : HierTopology({1}, {1.0}) {}

  /// branching[i] = b_{i+1}, costs[i] = g_{i+1} (level i+1 from the top).
  /// Requires equal sizes, branching ≥ 1, costs monotonically
  /// non-increasing and positive.
  HierTopology(std::vector<PartId> branching, std::vector<double> costs);

  /// Flat topology: a single level with k children of the root, cost 1 —
  /// the standard partitioning problem as the d=1 special case.
  static HierTopology flat(PartId k);

  [[nodiscard]] std::uint32_t depth() const noexcept {
    return static_cast<std::uint32_t>(branching_.size());
  }
  [[nodiscard]] PartId num_leaves() const noexcept { return k_; }
  /// b_level, level in [1, d].
  [[nodiscard]] PartId branching(std::uint32_t level) const noexcept {
    return branching_[level - 1];
  }
  /// g_level, level in [1, d].
  [[nodiscard]] double level_cost(std::uint32_t level) const noexcept {
    return costs_[level - 1];
  }
  [[nodiscard]] double g1() const noexcept { return costs_.front(); }

  /// Index of the level-`level` ancestor group of a leaf; level 0 is the
  /// root (always group 0), level d is the leaf itself.
  [[nodiscard]] PartId level_group(PartId leaf,
                                   std::uint32_t level) const noexcept {
    return leaf / leaves_below_[level];
  }
  /// Number of leaves under one level-`level` tree node.
  [[nodiscard]] PartId leaves_below(std::uint32_t level) const noexcept {
    return leaves_below_[level];
  }
  /// Number of groups at a level (Π_{i≤level} b_i).
  [[nodiscard]] PartId groups_at(std::uint32_t level) const noexcept {
    return k_ / leaves_below_[level];
  }

  /// Level of the lowest common ancestor of two leaves (0 = root). Equal
  /// leaves return depth().
  [[nodiscard]] std::uint32_t lca_level(PartId a, PartId b) const noexcept;

  /// Transfer cost between two distinct leaves: g_{lca_level+1}.
  [[nodiscard]] double transfer_cost(PartId a, PartId b) const noexcept;

 private:
  std::vector<PartId> branching_;
  std::vector<double> costs_;
  std::vector<PartId> leaves_below_;  // leaves under a node at each level
  PartId k_ = 1;
};

/// Arbitrary processor topology (Appendix I.2): a symmetric metric on k
/// units. Hyperedge costs are approximated by the minimum spanning tree
/// over the edge's terminals — exact for ultrametrics (in particular, for
/// metrics induced by a HierTopology the MST cost coincides with the
/// hierarchical cost function), and a 2-approximation of the Steiner cost
/// in general (computing exact Steiner trees is itself NP-hard).
class GeneralTopology {
 public:
  /// k×k symmetric cost matrix with zero diagonal.
  explicit GeneralTopology(std::vector<std::vector<double>> cost);

  /// The ultrametric induced by a hierarchy tree.
  static GeneralTopology from_tree(const HierTopology& tree);

  [[nodiscard]] PartId num_units() const noexcept {
    return static_cast<PartId>(cost_.size());
  }
  [[nodiscard]] double transfer_cost(PartId a, PartId b) const noexcept {
    return cost_[a][b];
  }

  /// MST cost over the given terminal units (duplicates ignored).
  [[nodiscard]] double mst_cost(const std::vector<PartId>& terminals) const;

 private:
  std::vector<std::vector<double>> cost_;
};

}  // namespace hp
