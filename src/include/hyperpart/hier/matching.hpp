#pragma once
// Maximum-weight perfect matching on small complete graphs.
//
// Lemma H.1 reduces two-level hierarchy assignment with b₂ = 2 to
// maximum-weight perfect matching, solvable in polynomial time by Edmonds'
// blossom algorithm. At the instance sizes of the hierarchy assignment
// problem (k units, k ≤ ~20) an exact Held–Karp-style subset DP in
// O(2^k · k) is simpler and exact; a 2-opt pair-swap local search covers
// larger k heuristically. Both operate on a dense weight matrix.

#include <cstdint>
#include <optional>
#include <vector>

namespace hp {

struct MatchingResult {
  /// mate[v] is v's partner.
  std::vector<std::uint32_t> mate;
  double weight = 0.0;
};

/// Exact maximum-weight perfect matching via subset DP. `weight` must be a
/// symmetric n×n matrix with n even, n ≤ 24.
[[nodiscard]] MatchingResult max_weight_perfect_matching(
    const std::vector<std::vector<double>>& weight);

/// 2-opt local search from a greedy matching; weight ≤ optimum, any even n.
[[nodiscard]] MatchingResult matching_local_search(
    const std::vector<std::vector<double>>& weight, std::uint64_t seed);

}  // namespace hp
