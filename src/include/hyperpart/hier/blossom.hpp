#pragma once
// Maximum-weight perfect matching in general graphs — Edmonds' blossom
// algorithm, O(n³) primal-dual over a dense weight matrix.
//
// This is the polynomial algorithm behind Lemma H.1 (hierarchy assignment
// with b₂ = 2 reduces to maximum-weight perfect matching); the subset DP in
// matching.hpp is exponential and serves as small-instance ground truth,
// while this scales to hundreds of units. Integer weights.

#include <cstdint>
#include <vector>

#include "hyperpart/core/hypergraph.hpp"  // Weight

namespace hp {

struct BlossomResult {
  /// mate[v] is v's partner.
  std::vector<std::uint32_t> mate;
  Weight weight = 0;
};

/// Maximum-weight perfect matching of the complete graph with the given
/// symmetric integer weight matrix (n even, weights ≥ 0). O(n³).
[[nodiscard]] BlossomResult blossom_max_weight_perfect_matching(
    const std::vector<std::vector<Weight>>& weight);

}  // namespace hp
