#pragma once
// Hierarchical cost function (Definition 7.1).
//
// For hyperedge e, λ_e^(i) is the number of level-i tree groups that e's
// parts touch (λ_e^(0) := 1). The cost of e is Σ_i g_i · (λ^(i) − λ^(i−1)):
// each additional group entered at level i costs one transfer across that
// level. The standard connectivity metric is the d = 1 special case.

#include <vector>

#include "hyperpart/core/hypergraph.hpp"
#include "hyperpart/core/partition.hpp"
#include "hyperpart/hier/topology.hpp"

namespace hp {

/// λ^(i) profile (i = 0..d) of a set of leaf parts.
[[nodiscard]] std::vector<PartId> lambda_profile(
    const HierTopology& topo, const std::vector<PartId>& leaf_parts);

/// Hierarchical cost of a single set of leaf parts (the cost a hyperedge
/// touching exactly these parts induces).
[[nodiscard]] double hier_set_cost(const HierTopology& topo,
                                   const std::vector<PartId>& leaf_parts);

/// Same, for a bitmask of leaf parts (k ≤ 32); used by the XP variant.
[[nodiscard]] double hier_mask_cost(const HierTopology& topo,
                                    std::uint32_t leaf_mask);

/// Total hierarchical cost of a partitioning (Definition 7.1). Part ids are
/// interpreted as leaf positions of the hierarchy.
[[nodiscard]] double hier_cost(const Hypergraph& g, const Partition& p,
                               const HierTopology& topo);

/// Hierarchical cost under a general topology (Appendix I.2): every cut
/// hyperedge pays the MST cost over its terminal units.
[[nodiscard]] double general_topology_cost(const Hypergraph& g,
                                           const Partition& p,
                                           const GeneralTopology& topo);

/// Contract each part of p into one node (Appendix H.1): the resulting
/// multi-hypergraph (represented with merged duplicate edges and weights)
/// on k nodes is the input of the hierarchy assignment problem. Uncut edges
/// (single pin after contraction) are dropped.
[[nodiscard]] Hypergraph contract_partition(const Hypergraph& g,
                                            const Partition& p);

}  // namespace hp
