#pragma once
// Hierarchy-aware partitioning heuristics (Section 7).
//
// Two construction strategies plus a refinement pass that optimizes the
// hierarchical cost function directly:
//   * recursive level-by-level splitting (Section 7.1 — the approach whose
//     worst case Lemma 7.2 exhibits),
//   * direct k-way + optimal assignment + hierarchical local refinement
//     (the hierarchy-aware alternative to the two-step method).

#include <optional>

#include "hyperpart/algo/multilevel.hpp"
#include "hyperpart/core/partition.hpp"
#include "hyperpart/hier/topology.hpp"

namespace hp {

/// Recursive partitioning along the hierarchy: split into b₁ parts, each
/// into b₂, … Part ids come out as leaf positions.
[[nodiscard]] std::optional<Partition> hier_recursive_partition(
    const Hypergraph& g, const HierTopology& topo, double epsilon,
    const MultilevelConfig& cfg = {});

/// Single-node steepest-descent refinement of the hierarchical cost.
/// Returns the final cost; p is modified in place and stays balanced.
double hier_refine(const Hypergraph& g, Partition& p, const HierTopology& topo,
                   const BalanceConstraint& balance, int max_rounds = 16);

/// Direct k-way multilevel + exact assignment + hierarchical refinement.
[[nodiscard]] std::optional<Partition> hier_direct_partition(
    const Hypergraph& g, const HierTopology& topo, double epsilon,
    const MultilevelConfig& cfg = {});

}  // namespace hp
