#pragma once
// Lemma G.1: the partitioning problem stays in XP (w.r.t. the allowed cost
// L) under the hierarchical cost function. This wires the Lemma 4.3
// configuration enumeration to Definition 7.1: a configuration charges
// each cut edge the hierarchical cost of its allowed leaf set, and
// solutions are evaluated with the true hierarchical cost.
//
// Also the Appendix I.2 analogue for general topologies (MST-approximated
// Steiner costs) and a local-search refiner for general topologies.

#include "hyperpart/algo/xp_algorithm.hpp"
#include "hyperpart/core/balance.hpp"
#include "hyperpart/core/partition.hpp"
#include "hyperpart/hier/topology.hpp"

namespace hp {

/// Exact minimum hierarchical-cost balanced partition with cost ≤ budget
/// (XP in the budget). Part ids are hierarchy leaves. k = topo.num_leaves()
/// must equal balance.k() and be ≤ 32.
[[nodiscard]] XpResult xp_hier_partition(const Hypergraph& g,
                                         const HierTopology& topo,
                                         const BalanceConstraint& balance,
                                         double budget,
                                         const XpOptions& base_opts = {});

/// Single-node steepest-descent refinement of the general-topology cost
/// (Appendix I.2). Returns the final cost; p stays balanced.
double general_topology_refine(const Hypergraph& g, Partition& p,
                               const GeneralTopology& topo,
                               const BalanceConstraint& balance,
                               int max_rounds = 16);

}  // namespace hp
