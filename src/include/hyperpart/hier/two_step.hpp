#pragma once
// The two-step method (Section 7.2) and hierarchy-aware alternatives.
//
// Two-step: (i) find a good *standard* k-way partitioning ignoring the
// hierarchy, (ii) assign the k parts to the hierarchy's leaves optimally.
// Lemma 7.3: when both steps are optimal, this is a g₁-approximation of the
// hierarchical optimum; Theorem 7.4: it can really be ≈ (b₁−1)/b₁ · g₁
// worse, which the Figure 9 benchmark measures.

#include <optional>

#include "hyperpart/algo/multilevel.hpp"
#include "hyperpart/core/metrics.hpp"
#include "hyperpart/core/partition.hpp"
#include "hyperpart/hier/topology.hpp"

namespace hp {

struct TwoStepResult {
  /// Final partition with part ids = leaf positions.
  Partition partition;
  /// Standard (connectivity) cost of the step-1 partition.
  Weight standard_cost = 0;
  /// Hierarchical cost after the optimal step-2 assignment.
  double hierarchical_cost = 0.0;
};

/// Optimal step-2 for a given step-1 partition: contract, enumerate the
/// f(k) assignments exactly, relabel.
[[nodiscard]] TwoStepResult assign_optimally(const Hypergraph& g,
                                             const Partition& p,
                                             const HierTopology& topo);

/// Full two-step method with a multilevel step 1.
[[nodiscard]] std::optional<TwoStepResult> two_step_multilevel(
    const Hypergraph& g, const HierTopology& topo, double epsilon,
    const MultilevelConfig& cfg = {});

/// Full two-step method with an exact (brute force) step 1 — the "both
/// steps optimal" setting analyzed by Lemma 7.3 / Theorem 7.4. Small n only.
[[nodiscard]] std::optional<TwoStepResult> two_step_exact(
    const Hypergraph& g, const HierTopology& topo, double epsilon,
    CostMetric metric = CostMetric::kConnectivity);

/// Exact hierarchical optimum by brute force over positioned partitions
/// (no part symmetry). Small n only.
[[nodiscard]] std::optional<TwoStepResult> exact_hierarchical_optimum(
    const Hypergraph& g, const HierTopology& topo, double epsilon);

}  // namespace hp
