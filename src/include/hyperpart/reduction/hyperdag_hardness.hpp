#pragma once
// Lemma B.3: partitioning stays NP-hard when inputs are restricted to
// hyperDAGs (independent of ETH, unlike Theorem 4.1).
//
// Every node v of a general hypergraph instance is replaced by a "hyperDAG
// block" — the densest hyperDAG on m nodes — whose last m₀ nodes are
// effectively unsplittable; each original hyperedge keeps one port (the
// last node) per member block plus one fresh *light node*, which serves as
// the hyperedge's generator. The balance constraint is rescaled so exactly
// ⌊(1+ε)|V|/k⌋ blocks fit per part while light nodes travel freely.

#include <cstdint>
#include <vector>

#include "hyperpart/core/balance.hpp"
#include "hyperpart/core/hypergraph.hpp"
#include "hyperpart/core/partition.hpp"

namespace hp {

struct HyperdagHardnessReduction {
  Hypergraph graph;  // a hyperDAG
  BalanceConstraint balance;
  NodeId block_size = 0;  // m
  /// blocks[v] = the hyperDAG block replacing original node v.
  std::vector<std::vector<NodeId>> blocks;
  /// light[e] = the light (generator) node of original hyperedge e.
  std::vector<NodeId> light;

  /// Lift a partition of the original hypergraph: block v follows v's
  /// part, light nodes join an arbitrary part intersecting their edge.
  [[nodiscard]] Partition lift(const Hypergraph& original,
                               const Partition& p) const;

  /// Project a partition of the hyperDAG back to the original nodes (each
  /// original node takes the part of its block's last node).
  [[nodiscard]] Partition project(const Partition& p) const;
};

/// Build the Lemma B.3 instance from a general hypergraph with parameters
/// k and ε = eps_num/eps_den (ε > 0).
[[nodiscard]] HyperdagHardnessReduction build_hyperdag_hardness(
    const Hypergraph& original, PartId k, std::uint32_t eps_num = 1,
    std::uint32_t eps_den = 4);

}  // namespace hp
