#pragma once
// Graph 3-coloring and the Lemma 6.3 reduction: with c ≥ n^δ balance
// groups, multi-constraint partitioning admits no finite-factor
// approximation (deciding cost 0 vs > 0 is NP-hard).
//
// Construction (k = 2): for every vertex v and color i ∈ [3], a gadget of
// nodes w_{v,e,i} (one per incident edge e) plus ŵ_{v,i,1}, ŵ_{v,i,2},
// tied together by one hyperedge. Groups force: at most one red ŵ_{v,i,1}
// over i (≤ 1 color chosen), at least one red ŵ_{v,i,2} over i (≥ 1
// chosen), and per edge (u,v) and color i at most one red among
// w_{u,e,i}, w_{v,e,i} (endpoints differ). A cost-0 feasible partitioning
// exists iff the graph is 3-colorable.

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "hyperpart/core/balance.hpp"
#include "hyperpart/core/hypergraph.hpp"

namespace hp {

struct ColoringInstance {
  NodeId num_vertices = 0;
  std::vector<std::pair<NodeId, NodeId>> edges;
};

/// Brute-force 3-coloring; returns a coloring if one exists.
[[nodiscard]] std::optional<std::vector<std::uint8_t>> three_color(
    const ColoringInstance& inst);

/// Random graph for coloring experiments.
[[nodiscard]] ColoringInstance random_coloring_instance(NodeId vertices,
                                                        std::uint32_t edges,
                                                        std::uint64_t seed);

/// A graph that is guaranteed 3-colorable (random edges between distinct
/// planted color classes).
[[nodiscard]] ColoringInstance planted_3colorable(NodeId vertices,
                                                  std::uint32_t edges,
                                                  std::uint64_t seed);

struct ColoringReduction {
  Hypergraph graph;
  ConstraintSet constraints;
  BalanceConstraint balance;  // loose single constraint, k = 2
  /// selector[v][i] = the ŵ_{v,i,2} node: red iff vertex v has color i.
  std::vector<std::vector<NodeId>> selector;
};

[[nodiscard]] ColoringReduction build_coloring_reduction(
    const ColoringInstance& inst);

}  // namespace hp
