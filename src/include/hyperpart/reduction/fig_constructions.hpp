#pragma once
// The paper's example constructions:
//   * Figure 4: serial concatenation of two equal DAGs — perfectly balanced
//     partition with zero parallelism (Section 5).
//   * Figure 6: two-branch DAG with widened layers — layer-wise constraints
//     force cost Θ(b) while a branch-per-processor coloring costs 2
//     (Section 5.2).
//   * Figure 8 / Lemma 7.2: block chains where recursive partitioning is a
//     Θ(n) factor worse than direct k-way (Section 7.1, Appendix G.1).
//   * Figure 9 / Theorem 7.4: star of blocks where the two-step method is a
//     (b₁−1)/b₁ · g₁ factor worse than the hierarchical optimum
//     (Section 7.2, Appendix G.2).
//   * Appendix B intro: (k−1) sources × m sinks bipartite DAG where the
//     Hendrickson–Kolda model overestimates the true I/O cost by a factor m.

#include <cstdint>
#include <vector>

#include "hyperpart/core/balance.hpp"
#include "hyperpart/core/hypergraph.hpp"
#include "hyperpart/core/partition.hpp"
#include "hyperpart/dag/dag.hpp"
#include "hyperpart/hier/topology.hpp"

namespace hp {

// ---------------------------------------------------------------- Figure 4
/// Two equal random-layered DAGs concatenated serially (every sink of the
/// first feeds every source of the second).
[[nodiscard]] Dag fig4_serial_concatenation(std::uint32_t half_layers,
                                            std::uint32_t width,
                                            std::uint64_t seed);

/// The balanced-but-serial partition: first half part 0, second half 1.
[[nodiscard]] Partition fig4_half_split(const Dag& dag);

// ---------------------------------------------------------------- Figure 6
struct Fig6Construction {
  Dag dag;
  /// Coloring with near-perfect parallelization and cut cost 2: upper
  /// branch part 0, lower branch part 1.
  Partition branch_partition;
  std::vector<NodeId> upper_set;  // the b-node set in the upper branch
  std::vector<NodeId> lower_set;  // the b-node set in the lower branch
};

/// Source → two length-3 branches → sink, with the first node of the upper
/// and the second node of the lower branch widened to b nodes each.
[[nodiscard]] Fig6Construction build_fig6(std::uint32_t b);

// ------------------------------------------------- Figure 8 (Lemma 7.2)
struct Fig8Construction {
  Hypergraph graph;
  HierTopology topology;  // branching b1, b2, costs g1, g2
  /// The direct k-way solution of cost O(1) (blocks grouped as in the
  /// right side of Figure 8), part ids = hierarchy leaves.
  Partition direct_solution;
  /// Total nodes n and the block size that a forced split cuts (≥ cost).
  NodeId block_cost_floor = 0;
};

/// Appendix G.1 generalization: (b′+1) large blocks of n/(b₁(b′+1)) in one
/// chain plus (b₁−1) chains of b′(b′+1) small blocks, b′ = b₂…b_d. The
/// `scale` parameter multiplies all block sizes (n grows linearly).
[[nodiscard]] Fig8Construction build_fig8(PartId b1, PartId b2, double g1,
                                          std::uint32_t scale);

// ------------------------------------------------ Figure 9 (Theorem 7.4)
struct Fig9Construction {
  Hypergraph graph;
  HierTopology topology;
  std::uint32_t m = 0;  // A↔B_i edge multiplicity
  /// Hierarchical optimum: A alone; all B_i together as A's sibling;
  /// C_i+E_i fill the rest (cost ≈ (k−1)·m·g_d).
  Partition hier_optimal;
  /// Standard-cut optimum: B_i with C_i (cost (k−1)·m but scattered).
  Partition standard_optimal;
};

/// Theorem 7.4 star construction for k = b1·b2 parts (ε = 0 sizing).
/// Block size per unit is `unit` (all block sizes are multiples of
/// unit/(k−1); unit must be divisible by k−1).
[[nodiscard]] Fig9Construction build_fig9(PartId b1, PartId b2, double g1,
                                          std::uint32_t unit,
                                          std::uint32_t m);

// ------------------------------------------------------- Appendix B intro
/// (k−1) source nodes each feeding all m sinks.
[[nodiscard]] Dag sources_to_sinks_dag(std::uint32_t sources,
                                       std::uint32_t sinks);

}  // namespace hp
