#pragma once
// Block gadgets and shared construction machinery (Appendices A and D.3).
//
// * Block (Lemma A.5): b nodes and b hyperedges of size b−1 each (edge i
//   omits node i); splitting it across parts costs at least b−1, so blocks
//   act as unsplittable super-nodes in the constructions.
// * Single-edge block: b nodes in one hyperedge — enough when only
//   cost-0 feasibility is asked (any cut already costs ≥ 1).
// * Two-level hyperDAG block (Lemma B.3 / Appendix I.1): the densest
//   hyperDAG on m nodes, whose last m₀ nodes are effectively unsplittable.
// * FixedColorPool (Appendix D.3 + Lemma D.2): two balanced single-edge
//   blocks forced to take different colors (red = part 0, blue = part 1 by
//   convention), used as a supply of fixed-color nodes to build balance
//   groups of the form "at most / at least / exactly h red nodes in S".
//
// * Isolated-node padding (Lemma A.1): reduces ε-balanced partitioning to
//   the k-section problem by appending ε·n isolated nodes.

#include <vector>

#include "hyperpart/core/balance.hpp"
#include "hyperpart/core/builder.hpp"
#include "hyperpart/core/hypergraph.hpp"

namespace hp {

/// Lemma A.5 block: adds b nodes and b hyperedges of size (b−1).
/// Returns the node ids. Requires b ≥ 3 (at b = 2 the edges have size 1
/// and can never be cut, so the Lemma A.5 bound degenerates).
std::vector<NodeId> add_block(HypergraphBuilder& builder, NodeId b);

/// One hyperedge over b fresh nodes. Monochromatic in every cost-0
/// solution. Returns the node ids.
std::vector<NodeId> add_single_edge_block(HypergraphBuilder& builder,
                                          NodeId b);

/// Lemma A.1: append `count` isolated nodes to a hypergraph (same edges).
[[nodiscard]] Hypergraph pad_with_isolated_nodes(const Hypergraph& g,
                                                 NodeId count);

/// How a fixed-node balance group constrains the red (part 0) count in S.
enum class RedCount : std::uint8_t { kExactly, kAtMost, kAtLeast };

/// Supply of fixed-color nodes for k = 2 constructions (Appendix D.3).
/// Usage: create the pool, register constraint groups over node sets via
/// constrain_red_count(), then finalize() once — finalize adds the two
/// color blocks, sized to cover every request, plus the balance group that
/// forces them apart. The pool's convention: part 0 = red, part 1 = blue
/// (up to global color swap, which all constructions tolerate).
class FixedColorPool {
 public:
  explicit FixedColorPool(HypergraphBuilder& builder) : builder_(&builder) {}

  /// A fresh node that any cost-0, constraint-feasible solution colors
  /// `color` (0 = red, 1 = blue).
  NodeId make_fixed(PartId color);

  /// Add a balance group enforcing that the number of red nodes in S is
  /// exactly / at most / at least h (Lemma D.2, ε = 0 thresholds; the
  /// at-most/at-least variants pad S with fresh isolated nodes as in
  /// Appendix D.3).
  void constrain_red_count(ConstraintSet& cs, std::vector<NodeId> s,
                           NodeId h, RedCount mode);

  /// Emit the two color blocks (padded to equal size ≥ 2) and the pairing
  /// balance group that forces them to different colors. Call exactly once,
  /// after all make_fixed / constrain_red_count calls.
  void finalize(ConstraintSet& cs);

  /// Nodes fixed to the given color so far (for tests).
  [[nodiscard]] const std::vector<NodeId>& fixed_nodes(PartId color) const {
    return fixed_[color];
  }

 private:
  HypergraphBuilder* builder_;
  std::vector<NodeId> fixed_[2];
  bool finalized_ = false;
};

}  // namespace hp
