#pragma once
// Minimum p-Union (Appendix C.5): the hypergraph generalization of SpES.
//
// Given a ground set and a family of sets, pick p sets whose union is as
// small as possible. Under the stronger assumptions of [3] and [12], MpU is
// n^δ- resp. n^(1/4−δ)-inapproximable; the Lemma C.1 reduction extends
// verbatim (each block B_e now has up to n incident main hyperedges),
// transferring those bounds to the partitioning problem (Corollary 4.2).

#include <cstdint>
#include <optional>
#include <vector>

#include "hyperpart/core/balance.hpp"
#include "hyperpart/core/hypergraph.hpp"
#include "hyperpart/core/partition.hpp"

namespace hp {

struct MpuInstance {
  NodeId num_elements = 0;
  std::vector<std::vector<NodeId>> sets;
  std::uint32_t p = 0;
};

/// Union size of the chosen sets.
[[nodiscard]] std::uint32_t union_size(const MpuInstance& inst,
                                       const std::vector<std::uint32_t>& chosen);

/// Exact optimum by enumerating p-subsets of the family.
[[nodiscard]] std::optional<std::uint32_t> mpu_optimum(const MpuInstance& inst);

/// Best p-subset (exact).
[[nodiscard]] std::optional<std::vector<std::uint32_t>> mpu_optimal_sets(
    const MpuInstance& inst);

/// Random family with sets of size in [min_size, max_size].
[[nodiscard]] MpuInstance random_mpu(NodeId elements, std::uint32_t sets,
                                     std::uint32_t min_size,
                                     std::uint32_t max_size, std::uint32_t p,
                                     std::uint64_t seed);

struct MpuReduction {
  Hypergraph graph;
  BalanceConstraint balance;  // k = 2
  MpuInstance instance;
  NodeId block_size = 0;
  std::vector<std::vector<NodeId>> set_blocks;  // B_e per set
  std::vector<NodeId> element_nodes;            // b_v per element
  std::vector<NodeId> block_a;
  std::vector<NodeId> block_a_prime;
  Weight min_part_weight = 0;

  /// Canonical partition for a choice of exactly p sets; cost = union size.
  [[nodiscard]] Partition partition_from_sets(
      const std::vector<std::uint32_t>& red_sets) const;
};

/// Lemma C.1 extended to MpU (Appendix C.5).
[[nodiscard]] MpuReduction build_mpu_reduction(const MpuInstance& inst,
                                               std::uint32_t eps_num = 1,
                                               std::uint32_t eps_den = 10);

}  // namespace hp
