#pragma once
// The Smallest p-Edge Subgraph problem (SpES), the hardness source of the
// main theorem (Theorem 4.1 / Lemma C.1).
//
// Given a graph G(V, E) and an integer p, find V₀ ⊆ V minimizing |V₀| such
// that the subgraph induced by V₀ has at least p edges. Equivalently (and
// the form the reduction uses): choose (at least) p edges covering as few
// vertices as possible. Assuming ETH, SpES admits no polynomial-time
// n^(1/(log log n)^δ)-approximation [Manurangsi 2017].

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "hyperpart/core/hypergraph.hpp"  // NodeId

namespace hp {

struct SpesInstance {
  NodeId num_vertices = 0;
  std::vector<std::pair<NodeId, NodeId>> edges;
  std::uint32_t p = 0;
};

/// Vertices covered by the given edge subset.
[[nodiscard]] std::uint32_t vertices_covered(
    const SpesInstance& inst, const std::vector<std::uint32_t>& edge_subset);

/// Exact optimum: the minimum number of vertices covered by any p edges
/// (enumerates edge subsets of size p; |E| choose p must be small).
/// Returns nullopt when the instance has fewer than p edges.
[[nodiscard]] std::optional<std::uint32_t> spes_optimum(
    const SpesInstance& inst);

/// Exact optimum with the chosen edge subset.
[[nodiscard]] std::optional<std::vector<std::uint32_t>> spes_optimal_edges(
    const SpesInstance& inst);

/// Greedy heuristic: repeatedly add the edge covering the fewest new
/// vertices. Upper-bounds the optimum.
[[nodiscard]] std::optional<std::uint32_t> spes_greedy(
    const SpesInstance& inst);

/// Random SpES instance (simple graph, no duplicate edges).
[[nodiscard]] SpesInstance random_spes(NodeId vertices, std::uint32_t edges,
                                       std::uint32_t p, std::uint64_t seed);

}  // namespace hp
