#pragma once
// Grid gadgets (Definition C.2, Lemmas C.3–C.5).
//
// An ℓ×ℓ grid of nodes where every row and every column is one hyperedge.
// Each node has degree exactly 2, yet splitting off t₀ minority-colored
// nodes cuts at least √t₀ hyperedges (Lemma C.3) — grids are the degree-2
// replacement for blocks in the Δ=2 form of the main inapproximability
// construction. Extended grids add outsider nodes to the first rows
// (Lemma C.5): recoloring an extended grid to its majority color never
// increases the cost.

#include <vector>

#include "hyperpart/core/builder.hpp"
#include "hyperpart/core/hypergraph.hpp"
#include "hyperpart/core/partition.hpp"

namespace hp {

struct GridGadget {
  std::uint32_t side = 0;  // ℓ
  /// Row-major node ids of the ℓ×ℓ body.
  std::vector<NodeId> body;
  /// Outsider nodes; outsider i < ℓ belongs to the row-i hyperedge, and
  /// outsider i ≥ ℓ to the column-(i−ℓ) hyperedge (the size-padding trick
  /// of Appendix C.2 allows up to 2ℓ outsiders).
  std::vector<NodeId> outsiders;
  /// Row hyperedge ids (body row + optional outsider), then columns.
  std::vector<EdgeId> row_edges;
  std::vector<EdgeId> col_edges;

  [[nodiscard]] NodeId at(std::uint32_t r, std::uint32_t c) const {
    return body[r * side + c];
  }
  [[nodiscard]] std::size_t num_nodes() const {
    return body.size() + outsiders.size();
  }
};

/// Add an ℓ×ℓ grid gadget with `num_outsiders` ≤ 2ℓ outsider nodes.
GridGadget add_grid_gadget(HypergraphBuilder& builder, std::uint32_t side,
                           std::uint32_t num_outsiders = 0);

/// Number of body nodes of the gadget's minority color in a 2-way
/// partition (the t₀ of Lemma C.3).
[[nodiscard]] std::uint32_t grid_minority_count(const GridGadget& grid,
                                                const Hypergraph& g,
                                                const Partition& p);

/// Cut hyperedges among the gadget's own row/column edges.
[[nodiscard]] std::uint32_t grid_cut_edges(const GridGadget& grid,
                                           const Hypergraph& g,
                                           const Partition& p);

}  // namespace hp
