#pragma once
// Theorem 5.5 constructions: computing μ_p (the optimal makespan of a FIXED
// partition) is NP-hard for k = 2 even on out-trees, level-order DAGs and
// bounded-height DAGs — exactly the families where μ itself is polynomial.
//
// * Chain/level-order/out-tree family: from a 3-partition instance — a main
//   path of 2tb nodes in alternating blocks of b blue / b red, plus one
//   path of a_i red then a_i blue nodes per number. μ_p = n/2 (flawless
//   parallelization) iff the 3-partition instance is solvable; adding a
//   common source turns the DAG into an out-tree with target n/2 + 1.
// * Bounded-height family: from the clique problem — blue vertex nodes,
//   red edge nodes with incidence arcs, plus a serial 4-layer component C
//   of sizes (L red | C(L,2) blue | |V|−L red | |E|−C(L,2) blue). Makespan
//   |V|+|E| is achievable iff the graph has an L-clique.

#include <cstdint>

#include "hyperpart/core/partition.hpp"
#include "hyperpart/dag/dag.hpp"
#include "hyperpart/reduction/coloring_reduction.hpp"  // graph type
#include "hyperpart/reduction/three_partition.hpp"

namespace hp {

struct MuPInstance {
  Dag dag;
  Partition partition;  // the fixed processor assignment p (k = 2)
  std::uint32_t target_makespan = 0;
};

/// Chain-graph / level-order construction from 3-partition. μ_p equals
/// target_makespan (= n/2) iff the instance is solvable.
[[nodiscard]] MuPInstance level_order_mu_p_instance(
    const ThreePartitionInstance& inst);

/// The same construction with a common source node (an out-tree);
/// target = n/2 + 1, source on the blue processor.
[[nodiscard]] MuPInstance out_tree_mu_p_instance(
    const ThreePartitionInstance& inst);

/// Bounded-height (height 4) construction from the clique problem.
/// Requires clique_size ≤ |V| and C(clique_size, 2) ≤ |E|.
[[nodiscard]] MuPInstance bounded_height_mu_p_instance(
    const ColoringInstance& graph, std::uint32_t clique_size);

/// Brute-force clique check (ground truth for the construction).
[[nodiscard]] bool has_clique(const ColoringInstance& graph,
                              std::uint32_t size);

}  // namespace hp
