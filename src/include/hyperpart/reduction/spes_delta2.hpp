#pragma once
// The Δ = 2 / hyperDAG form of the main reduction (Appendix C.2–C.3,
// Lemma C.6).
//
// Every block of the Lemma C.1 construction is replaced by a grid gadget:
//   * each B_e by an (2n)×(2n) extended grid with two outsider nodes (the
//     ports of e's endpoints),
//   * A by an extended grid whose outsiders are the vertex nodes b_v plus
//     one extra outsider (the Appendix C.3 hyperDAG fix),
//   * A′ by a grid with one extra outsider, padded with further outsider
//     nodes to hit the exact red-side size (the non-square-size trick).
// Main hyperedges contain b_v and v's port outsiders. Every node has
// degree ≤ 2, the hyperedges split into two classes of pairwise disjoint
// edges (the SpMV bipartite property of [30]), and the whole hypergraph is
// a hyperDAG.

#include <cstdint>
#include <vector>

#include "hyperpart/core/balance.hpp"
#include "hyperpart/core/hypergraph.hpp"
#include "hyperpart/core/partition.hpp"
#include "hyperpart/reduction/grid_gadget.hpp"
#include "hyperpart/reduction/spes.hpp"

namespace hp {

struct SpesDelta2Reduction {
  Hypergraph graph;
  BalanceConstraint balance;  // k = 2
  SpesInstance instance;

  std::vector<GridGadget> edge_grids;  // one per SpES edge (2 outsiders)
  GridGadget grid_a;                   // outsiders: b_v …, then 1 extra
  GridGadget grid_a_prime;             // outsiders: 1 extra + padding
  std::vector<NodeId> vertex_nodes;    // b_v (= grid_a outsiders 0..n−1)
  std::vector<EdgeId> main_edges;

  Weight min_part_weight = 0;  // exact red-side size, (1−ε)·n′/2

  /// Canonical partition for a chosen set of exactly p SpES edges: A′
  /// (incl. its outsiders/padding) and the chosen edge grids red, rest
  /// blue. Cost = number of vertices covered by the chosen edges.
  [[nodiscard]] Partition partition_from_edges(
      const std::vector<std::uint32_t>& red_edges) const;
};

/// Build the Δ=2 hyperDAG construction; eps = eps_num/eps_den ∈ [0, 1).
[[nodiscard]] SpesDelta2Reduction build_spes_delta2(const SpesInstance& inst,
                                                    std::uint32_t eps_num = 1,
                                                    std::uint32_t eps_den = 10);

}  // namespace hp
