#pragma once
// The main inapproximability reduction (Theorem 4.1 / Lemma C.1): SpES →
// ε-balanced 2-way hypergraph partitioning.
//
// Blocks B_e (one per SpES edge), nodes b_v with main hyperedges tying them
// to the incident edge blocks, and two anchor blocks A (blue) and A′ (red)
// sized so that (i) A and A′ must take different colors, and (ii) at least
// p edge blocks must go red to satisfy the balance constraint. The optimal
// partition cost then equals the SpES optimum: the number of vertices
// covered by the p chosen (red) edges.
//
// ε is handled as an exact rational ε = eps_num / eps_den and the total
// size n′ is padded to a multiple of 2·eps_den so every threshold in the
// proof is an exact integer (cf. Appendix A, "Non-integer thresholds").

#include <cstdint>
#include <vector>

#include "hyperpart/core/balance.hpp"
#include "hyperpart/core/hypergraph.hpp"
#include "hyperpart/core/partition.hpp"
#include "hyperpart/reduction/spes.hpp"

namespace hp {

struct SpesReduction {
  Hypergraph graph;
  BalanceConstraint balance;  // k = 2, capacity (1+ε)·n′/2
  SpesInstance instance;

  NodeId block_size = 0;  // m, the B_e block size (m ≥ n+1)
  std::vector<std::vector<NodeId>> edge_blocks;  // B_e node lists
  std::vector<NodeId> vertex_nodes;              // b_v
  std::vector<NodeId> block_a;                   // A (blue side)
  std::vector<NodeId> block_a_prime;             // A′ (red side)
  std::vector<EdgeId> main_edges;                // hyperedge of each vertex v

  /// Required number of red nodes, (1−ε)·n′/2 (both sides are exact).
  Weight min_part_weight = 0;

  /// The canonical partition for a chosen set of exactly p SpES edges:
  /// A′ and the chosen blocks red, everything else blue. Its cost equals
  /// the number of vertices the chosen edges cover.
  [[nodiscard]] Partition partition_from_edges(
      const std::vector<std::uint32_t>& red_edges) const;

  /// Recover a ≥p-edge subset from any "reasonable" partition (one that
  /// keeps all blocks monochromatic): the SpES edges whose block has the
  /// opposite majority color from A.
  [[nodiscard]] std::vector<std::uint32_t> edges_from_partition(
      const Partition& p) const;
};

/// Build the Lemma C.1 construction. eps = eps_num/eps_den must satisfy
/// 0 ≤ eps < 1.
[[nodiscard]] SpesReduction build_spes_reduction(const SpesInstance& inst,
                                                 std::uint32_t eps_num = 1,
                                                 std::uint32_t eps_den = 10);

}  // namespace hp
