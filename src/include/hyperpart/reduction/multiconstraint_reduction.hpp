#pragma once
// Lemma D.1: reducing multi-constraint k-section to standard k-section.
//
// The paper replaces every node of constraint class V_i by an unsplittable
// block of size m_i = n₀^i, so each class dominates everything below it
// and a single balance constraint forces class-wise balance; nodes outside
// every class are padded by (k−1)·count isolated fillers so they can go
// anywhere. We realize the blocks as *node weights* (hyperpart supports
// weighted nodes natively, and a weighted node is exactly an unsplittable
// block), which keeps the instance polynomial-size and the cost
// correspondence 1:1.

#include <vector>

#include "hyperpart/core/balance.hpp"
#include "hyperpart/core/hypergraph.hpp"
#include "hyperpart/core/partition.hpp"

namespace hp {

struct MulticonstraintReduction {
  /// Weighted hypergraph: original nodes (reweighted) + filler nodes.
  Hypergraph graph;
  /// Single k-section constraint replacing the c class constraints.
  BalanceConstraint balance;
  NodeId original_nodes = 0;

  /// Map a k-section of the reduced graph back to the original node set.
  [[nodiscard]] Partition restrict_to_original(const Partition& p) const {
    return p.prefix(original_nodes);
  }
};

/// Build the Lemma D.1 instance for k-section (ε = 0) with disjoint node
/// classes `classes` (each class size must be divisible by k, as in the
/// lemma). Nodes outside every class keep weight 1.
[[nodiscard]] MulticonstraintReduction reduce_multiconstraint_to_section(
    const Hypergraph& g, const std::vector<std::vector<NodeId>>& classes,
    PartId k);

}  // namespace hp
