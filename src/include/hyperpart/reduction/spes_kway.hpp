#pragma once
// Appendix C.4: the main reduction generalized to k ≥ 3 colors.
//
// As in Lemma C.1, blocks B_e per SpES edge, nodes b_v tied to the blue
// anchor A; the balance constraint now allows exactly |A| + (|E|−p)·m + n
// nodes in A's part, so at least p edge blocks must leave it. When
// 2·(1+ε)/k > 1 two colors can cover everything; otherwise k₀ = ⌈k/(1+ε)⌉
// equally-sized extra components (A′ + p·m being the first) absorb the
// remaining colors. Any reasonable solution recolors to the canonical
// two-or-k₀-color shape without cost increase, so OPT still equals the
// SpES optimum.

#include <cstdint>
#include <vector>

#include "hyperpart/core/balance.hpp"
#include "hyperpart/core/hypergraph.hpp"
#include "hyperpart/core/partition.hpp"
#include "hyperpart/reduction/spes.hpp"

namespace hp {

struct SpesKwayReduction {
  Hypergraph graph;
  BalanceConstraint balance;  // k parts
  SpesInstance instance;
  PartId k = 2;
  NodeId block_size = 0;  // m
  std::vector<std::vector<NodeId>> edge_blocks;
  std::vector<NodeId> vertex_nodes;           // b_v
  std::vector<NodeId> block_a;                // blue anchor
  std::vector<NodeId> block_a_prime;          // first red component core
  std::vector<std::vector<NodeId>> extra_blocks;  // colors 3..k₀

  /// Canonical partition for exactly p chosen edges: A, b_v and the
  /// unchosen blocks blue (part 0); A′ and chosen blocks red (part 1);
  /// extra block i on part i+2. Cost = number of covered vertices.
  [[nodiscard]] Partition partition_from_edges(
      const std::vector<std::uint32_t>& red_edges) const;
};

/// Build the Appendix C.4 construction for k ≥ 2 (ε = eps_num/eps_den).
[[nodiscard]] SpesKwayReduction build_spes_kway_reduction(
    const SpesInstance& inst, PartId k, std::uint32_t eps_num = 1,
    std::uint32_t eps_den = 10);

}  // namespace hp
