#pragma once
// The 3-partition problem, hardness source for Theorem 5.5 and
// Theorem E.1: partition 3t integers (each in (b/4, b/2), total t·b) into t
// triplets of sum b each. Strongly NP-hard.

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

namespace hp {

struct ThreePartitionInstance {
  std::vector<std::uint32_t> numbers;  // 3t values
  std::uint32_t target = 0;            // b

  [[nodiscard]] std::uint32_t t() const {
    return static_cast<std::uint32_t>(numbers.size() / 3);
  }
  /// b/4 < a_i < b/2 and Σ a_i = t·b.
  [[nodiscard]] bool well_formed() const;
};

/// Exact solver: returns the triplet grouping (index triples) if one
/// exists. Backtracking; small t only.
[[nodiscard]] std::optional<std::vector<std::array<std::uint32_t, 3>>>
solve_three_partition(const ThreePartitionInstance& inst);

/// A solvable instance: t random triplets summing to b each.
[[nodiscard]] ThreePartitionInstance random_solvable_three_partition(
    std::uint32_t t, std::uint32_t b, std::uint64_t seed);

}  // namespace hp
