#pragma once
// 3-dimensional matching and the Lemma H.2 reduction: hierarchy assignment
// with b₂ = 3 is NP-hard.
//
// Given a 3-partite, 3-regular hypergraph over X ∪ Y ∪ Z (|X|=|Y|=|Z|=q),
// the reduction builds a contracted multi-hypergraph on k = 3q nodes:
//   * each original triple (x,y,z) becomes three weight-1 pair edges,
//   * every non-triple (x′,y′,z′) triple of nodes gets one weight-1
//     size-3 edge,
//   * every tripartite triple gets one weight-w₀ size-3 edge.
// Grouping the nodes into k/3 leaf-triples then has gain ≥ G(q) iff a
// perfect 3D matching exists.

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "hyperpart/core/hypergraph.hpp"
#include "hyperpart/hier/topology.hpp"

namespace hp {

struct ThreeDMInstance {
  std::uint32_t q = 0;  // |X| = |Y| = |Z|
  /// Triples as (x, y, z) indices in [0, q) each.
  std::vector<std::array<std::uint32_t, 3>> triples;
};

/// Brute-force: does a perfect 3D matching (q disjoint triples) exist?
[[nodiscard]] bool has_perfect_matching(const ThreeDMInstance& inst);

/// Random instance containing a planted perfect matching plus extra noise
/// triples.
[[nodiscard]] ThreeDMInstance planted_3dm(std::uint32_t q,
                                          std::uint32_t extra_triples,
                                          std::uint64_t seed);

/// Random instance without planting (may or may not have a matching).
[[nodiscard]] ThreeDMInstance random_3dm(std::uint32_t q,
                                         std::uint32_t num_triples,
                                         std::uint64_t seed);

struct ThreeDMReduction {
  Hypergraph contracted;   // on k = 3q nodes: X = 0..q−1, Y = q.., Z = 2q..
  HierTopology topology;   // d = 2, b₂ = 3
  Weight w0 = 0;           // tripartite-enforcement weight
  /// Hierarchy-assignment cost threshold: a perfect matching exists iff
  /// the optimal assignment cost is ≤ this value.
  double cost_threshold = 0.0;
};

[[nodiscard]] ThreeDMReduction build_3dm_reduction(const ThreeDMInstance& inst,
                                                   double g1 = 2.0);

}  // namespace hp
