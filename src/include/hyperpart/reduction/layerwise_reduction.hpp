#pragma once
// Theorem 5.2: layer-wise balanced hyperDAG partitioning is inapproximable
// to any finite factor — via a reduction from graph 3-coloring.
//
// The DAG consists of parallel path "units", all spanning every layer (so
// the layering is unique and the fixed/flexible variants coincide):
//   * three choice units per original vertex (unit (v,i) red ⇔ v gets
//     color i; red = part 0),
//   * two control units R / B forced to different colors,
//   * per-layer pad units and global filler units (the proof's control and
//     filler paths) that absorb the exact ε = 0 per-layer balance.
// Constraint layers widen selected units by extra nodes so that the exact
// half/half layer balance encodes "≤ 1 color chosen", "≥ 1 color chosen"
// and "endpoints of an edge differ" — a cost-0 layer-wise balanced
// partitioning exists iff the input graph is 3-colorable.

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "hyperpart/core/balance.hpp"
#include "hyperpart/core/partition.hpp"
#include "hyperpart/dag/dag.hpp"
#include "hyperpart/dag/hyperdag.hpp"
#include "hyperpart/dag/layering.hpp"
#include "hyperpart/reduction/coloring_reduction.hpp"

namespace hp {

struct LayerwiseReduction {
  Dag dag;
  HyperDag hyperdag;
  /// One exact-balance group per layer (capacity = layer size / 2, k = 2).
  ConstraintSet layer_constraints;
  Layering layers;
  std::uint32_t num_layers = 0;

  /// All node ids of each unit, and unit bookkeeping.
  std::vector<std::vector<NodeId>> unit_nodes;
  std::vector<std::array<std::uint32_t, 3>> choice_unit;  // [vertex][color]
  std::uint32_t control_red = 0;  // unit index of R
  std::uint32_t control_blue = 0;
  std::vector<std::uint32_t> filler_units;
  /// pads[t] = pad units whose extra node sits in layer t.
  std::vector<std::vector<std::uint32_t>> pads;
  /// Forced number of red pads per constraint layer given the choice units'
  /// red count s (pr = target − s); targets/slacks per layer.
  struct LayerSpec {
    std::vector<std::uint32_t> s_units;  // constrained units
    std::uint32_t target = 0;            // T: s_red + pads_red == T
    std::uint32_t slack = 0;             // p_t = number of pads
  };
  std::vector<std::optional<LayerSpec>> layer_spec;  // per layer

  ColoringInstance instance;

  /// Build the full cost-0 partition realizing a 3-coloring (colors in
  /// {0,1,2} per vertex). Throws if the coloring is invalid for the
  /// construction's constraints.
  [[nodiscard]] Partition partition_from_coloring(
      const std::vector<std::uint8_t>& coloring) const;

  /// Decide whether a cost-0, layer-wise feasible partitioning exists, by
  /// enumerating colorings of the choice/control units and resolving the
  /// pad/filler units exactly (their red counts are forced per layer).
  /// Exponential in 3·|V| — small instances only.
  [[nodiscard]] bool cost0_feasible() const;
};

[[nodiscard]] LayerwiseReduction build_layerwise_reduction(
    const ColoringInstance& inst);

}  // namespace hp
