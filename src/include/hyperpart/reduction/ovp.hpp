#pragma once
// Orthogonal Vectors and the Theorem 6.4 reduction to multi-constraint
// partitioning.
//
// OVP: given m binary vectors of dimension D, decide whether two are
// orthogonal. Under SETH this needs ~quadratic time for D = ω(log m). The
// reduction builds one gadget per vector (an anchor u_i plus a node per
// coordinate) with a hyperedge {u_i} ∪ {v_i^(j) : a_i^(j) = 1}; balance
// groups force ≥ 2 red anchors and ≤ 1 red node per dimension, so a
// multi-constraint partitioning of cost 0 exists iff an orthogonal pair
// exists.

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "hyperpart/core/balance.hpp"
#include "hyperpart/core/hypergraph.hpp"

namespace hp {

struct OvpInstance {
  std::uint32_t dimensions = 0;
  /// vectors[i] is a D-bit row; bit j = coordinate j.
  std::vector<std::vector<bool>> vectors;
};

/// Naive O(m²·D) check; returns an orthogonal pair if one exists.
[[nodiscard]] std::optional<std::pair<std::uint32_t, std::uint32_t>>
find_orthogonal_pair(const OvpInstance& inst);

/// Random instance; each coordinate is 1 with probability `density`.
[[nodiscard]] OvpInstance random_ovp(std::uint32_t m, std::uint32_t dims,
                                     double density, std::uint64_t seed);

struct OvpReduction {
  Hypergraph graph;
  ConstraintSet constraints;
  BalanceConstraint balance;  // loose single constraint, k = 2
  std::vector<NodeId> anchors;                 // u_i
  std::vector<std::vector<NodeId>> dim_nodes;  // v_i^(j), [i][j]
};

/// Build the Theorem 6.4 construction (k = 2). The number of balance
/// groups is D + O(1).
[[nodiscard]] OvpReduction build_ovp_reduction(const OvpInstance& inst);

}  // namespace hp
