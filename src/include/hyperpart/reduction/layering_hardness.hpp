#pragma once
// Theorem E.1: even *finding the best layering* of a DAG is inapproximable
// to any finite factor — via a reduction from 3-partition.
//
// The DAG has k = 2 control-path components (forced to different colors)
// and one "red component" carrying, per 3-partition number a_i, a group
// gadget: a first-level group of a_i source nodes, all feeding a
// second-level group of a_i·m nodes, which feed a fixed node of the red
// path. Odd layers admit at most b extra red nodes, even layers demand at
// least b·m extra red nodes (enforced by fixed-node layer sizing). The
// only way to fill the layers is to place, phase by phase, first-level
// groups of total size exactly b into the odd layer and their second-level
// groups into the even layer — i.e. a 3-partition into triplets of sum b.
//
// Implementation note: we realize the per-layer requirements as exact
// ε = 0 layer constraints (like Theorem 5.2) and expose a feasibility
// checker that searches over the flexible layer assignment of the group
// gadgets, which is precisely the "choose the best layering" subproblem.

#include <cstdint>
#include <optional>
#include <vector>

#include "hyperpart/core/balance.hpp"
#include "hyperpart/core/partition.hpp"
#include "hyperpart/dag/dag.hpp"
#include "hyperpart/dag/hyperdag.hpp"
#include "hyperpart/reduction/three_partition.hpp"

namespace hp {

struct LayeringHardnessReduction {
  Dag dag;
  HyperDag hyperdag;
  ThreePartitionInstance instance;
  std::uint32_t num_layers = 0;  // 2t + 2 (entry + t phases of 2 + exit)
  std::uint32_t phases = 0;      // t

  /// Per number i: the first-level group nodes (flexible: any odd layer)
  /// and second-level group nodes (the following even layer).
  std::vector<std::vector<NodeId>> first_level;
  std::vector<std::vector<NodeId>> second_level;
  /// Capacity of extra red nodes in each odd layer (= b), and the exact
  /// demand in each even layer (= b·m).
  std::uint32_t odd_capacity = 0;
  std::uint32_t even_demand = 0;
  std::uint32_t multiplier = 0;  // m

  /// Does a valid layering exist in which every phase's odd layer holds
  /// first-level groups of total size exactly b (and the matching
  /// second-level groups fill the even layer)? Equivalent to the
  /// 3-partition instance being solvable; decided by backtracking over
  /// group-to-phase assignments.
  [[nodiscard]] bool feasible_layering_exists() const;

  /// For a 3-partition solution, produce the layer assignment of each
  /// group (phase index per number). Throws if the triplets are invalid.
  [[nodiscard]] std::vector<std::uint32_t> phases_from_solution(
      const std::vector<std::array<std::uint32_t, 3>>& triplets) const;

  /// Check a phase assignment: every phase's numbers sum to exactly b.
  [[nodiscard]] bool valid_phase_assignment(
      const std::vector<std::uint32_t>& phase_of_number) const;
};

/// Build the Theorem E.1 construction. multiplier m must exceed t·b (the
/// total first-level size), as in the proof.
[[nodiscard]] LayeringHardnessReduction build_layering_hardness(
    const ThreePartitionInstance& inst, std::uint32_t multiplier = 0);

}  // namespace hp
