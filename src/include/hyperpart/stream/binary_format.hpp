#pragma once
// Compact binary hypergraph format + mmap-backed zero-copy reader.
//
// The text hMETIS format must be parsed token by token and the parsed graph
// held in memory, which caps every solver in this repo at instances that fit
// RAM twice over (text + CSR). This format stores the exact dual-CSR layout
// of hp::Hypergraph — edge→pins and node→incident-edges — as raw
// little-endian arrays behind a versioned header, so a reader can mmap the
// file and serve pin/incidence spans directly out of the page cache with no
// parsing, no allocation, and no per-edge overhead. Streaming algorithms
// (src/stream/stream_partitioner, restream_refiner) touch only the sections
// they need; pages they are done with can be dropped with
// drop_resident_pages() to keep peak RSS at a small fraction of an
// in-memory solver's.
//
// Layout (all fields little-endian, every section 8-byte aligned):
//
//   BinaryHeader  (64 bytes: magic "HPBH", version, n, m, ρ, weight flags)
//   edge_offsets  uint64 × (m+1)        pins of edge e live at
//   pins          uint32 × ρ  (+pad)      [edge_offsets[e], edge_offsets[e+1])
//   node_offsets  uint64 × (n+1)        incident edges of node v live at
//   incident      uint32 × ρ  (+pad)      [node_offsets[v], node_offsets[v+1])
//   node_weights  int64 × n             present iff flag bit 0
//   edge_weights  int64 × m             present iff flag bit 1
//
// Section positions are derived from the header alone (no section table);
// the version field gates any future layout change.

#include <cstdint>
#include <span>
#include <string>

#include "hyperpart/core/hypergraph.hpp"

namespace hp::stream {

inline constexpr std::uint32_t kBinaryVersion = 1;
inline constexpr std::uint32_t kFlagNodeWeights = 1u << 0;
inline constexpr std::uint32_t kFlagEdgeWeights = 1u << 1;

struct BinaryHeader {
  char magic[4];               // "HPBH"
  std::uint32_t version;       // kBinaryVersion
  std::uint64_t num_nodes;
  std::uint64_t num_edges;
  std::uint64_t num_pins;
  std::uint32_t flags;         // kFlagNodeWeights | kFlagEdgeWeights
  std::uint32_t header_bytes;  // sizeof(BinaryHeader), sanity-checked on load
  std::uint64_t reserved[3];   // zero; room for future sections
};
static_assert(sizeof(BinaryHeader) == 64);

/// Serialize g into the binary format. Overwrites path.
void write_binary_file(const std::string& path, const Hypergraph& g);

/// Parse an hMETIS text file and write it back out in the binary format.
/// (Parsing holds the graph in memory once; the produced file is then
/// readable forever after at zero parse cost.)
void convert_hmetis_file(const std::string& hmetis_path,
                         const std::string& binary_path);

/// True when the file starts with the binary magic (cheap 4-byte sniff, no
/// throw on unreadable/short files — they are simply not binary).
[[nodiscard]] bool is_binary_file(const std::string& path);

/// Read-only mmap view of a binary hypergraph file. Exposes the same
/// pin-iteration interface as hp::Hypergraph (num_edges/pins/edge_weight,
/// num_nodes/incident_edges/node_weight), so the generic metric templates
/// (hp::cost_of, hp::lambda_of) and the streaming algorithms run on it
/// unchanged. Spans point straight into the mapping: zero-copy, valid for
/// the lifetime of this object.
class MappedHypergraph {
 public:
  /// Opens and maps the file; throws std::runtime_error on I/O errors, bad
  /// magic/version, or a file too short for its own header counts.
  explicit MappedHypergraph(const std::string& path);
  ~MappedHypergraph();

  MappedHypergraph(MappedHypergraph&& other) noexcept;
  MappedHypergraph& operator=(MappedHypergraph&& other) noexcept;
  MappedHypergraph(const MappedHypergraph&) = delete;
  MappedHypergraph& operator=(const MappedHypergraph&) = delete;

  [[nodiscard]] NodeId num_nodes() const noexcept { return num_nodes_; }
  [[nodiscard]] EdgeId num_edges() const noexcept { return num_edges_; }
  [[nodiscard]] std::uint64_t num_pins() const noexcept { return num_pins_; }

  [[nodiscard]] std::span<const NodeId> pins(EdgeId e) const noexcept {
    return {pins_ + edge_offsets_[e], pins_ + edge_offsets_[e + 1]};
  }
  [[nodiscard]] std::span<const EdgeId> incident_edges(NodeId v) const noexcept {
    return {incident_ + node_offsets_[v], incident_ + node_offsets_[v + 1]};
  }
  [[nodiscard]] std::uint32_t edge_size(EdgeId e) const noexcept {
    return static_cast<std::uint32_t>(edge_offsets_[e + 1] -
                                      edge_offsets_[e]);
  }
  [[nodiscard]] std::uint32_t degree(NodeId v) const noexcept {
    return static_cast<std::uint32_t>(node_offsets_[v + 1] -
                                      node_offsets_[v]);
  }

  [[nodiscard]] bool has_node_weights() const noexcept {
    return node_weights_ != nullptr;
  }
  [[nodiscard]] bool has_edge_weights() const noexcept {
    return edge_weights_ != nullptr;
  }
  [[nodiscard]] Weight node_weight(NodeId v) const noexcept {
    return node_weights_ ? node_weights_[v] : 1;
  }
  [[nodiscard]] Weight edge_weight(EdgeId e) const noexcept {
    return edge_weights_ ? edge_weights_[e] : 1;
  }
  /// Σ node weights (n when unweighted). Computed once on first call; the
  /// scan touches only the node-weight section.
  [[nodiscard]] Weight total_node_weight() const noexcept;

  /// Deep-copy into an in-memory Hypergraph (identical structure and
  /// weights). For code paths that need the full mutable graph.
  [[nodiscard]] Hypergraph materialize() const;

  /// Structural sanity check mirroring Hypergraph::validate(); faults in
  /// every section, so tests only.
  [[nodiscard]] bool validate() const noexcept;

  /// Advise the kernel to drop this mapping's resident pages
  /// (best-effort). Streaming phases call this between passes so pages a
  /// finished phase touched stop counting against peak RSS.
  void drop_resident_pages() const noexcept;

  [[nodiscard]] std::string summary() const;

 private:
  void unmap() noexcept;

  void* map_ = nullptr;
  std::uint64_t map_bytes_ = 0;
  NodeId num_nodes_ = 0;
  EdgeId num_edges_ = 0;
  std::uint64_t num_pins_ = 0;
  const std::uint64_t* edge_offsets_ = nullptr;
  const NodeId* pins_ = nullptr;
  const std::uint64_t* node_offsets_ = nullptr;
  const EdgeId* incident_ = nullptr;
  const Weight* node_weights_ = nullptr;
  const Weight* edge_weights_ = nullptr;
  mutable Weight total_node_weight_ = -1;  // lazy cache
};

}  // namespace hp::stream
