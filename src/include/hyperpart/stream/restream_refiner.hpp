#pragma once
// Buffered re-streaming refinement over an mmap'd binary hypergraph.
//
// Revisits the node stream in fixed-size chunks (the "resident window") and
// improves the partition with exact-gain local moves, without ever holding
// the full graph — or a full m×k pin-count table — in memory. Each chunk is
// lifted into a small in-memory sub-hypergraph on which PR 1's
// ConnectivityTracker supplies the gain rules:
//
//   * window nodes keep their pins among each other;
//   * pins outside the window are collapsed, per (edge, part), into at most
//     two zero-weight ghost pins. The gain formulas only ever distinguish
//     pin counts 0 / 1 / ≥2 per part (see connectivity_tracker.hpp), so the
//     min(count, 2) collapse leaves every window-node gain — and every gain
//     after any sequence of window-node moves — exactly equal to its value
//     on the full hypergraph.
//
// Chunks are proposed in parallel waves on the persistent thread pool
// against the frozen global assignment, then committed sequentially: each
// proposed move's gain is recomputed against the live global state (a scan
// of the mover's incident pins through the mapping) and applied only if
// still strictly improving and balance-feasible. Every applied move
// therefore strictly decreases the true cost, stale proposals are dropped,
// and the result is deterministic for every thread count (waves have a
// fixed width independent of the worker count).

#include <cstdint>

#include "hyperpart/core/balance.hpp"
#include "hyperpart/core/metrics.hpp"
#include "hyperpart/core/partition.hpp"
#include "hyperpart/stream/binary_format.hpp"

namespace hp::stream {

struct RestreamConfig {
  CostMetric metric = CostMetric::kConnectivity;
  /// Full re-streaming passes over the node sequence.
  int max_passes = 1;
  /// Nodes resident per chunk; memory per in-flight chunk is
  /// O(chunk_size · avg_degree · avg_edge_size).
  NodeId chunk_size = 1u << 16;
  /// Greedy sweeps over a chunk's window before its proposals are emitted.
  int max_chunk_sweeps = 3;
  /// Thread cap for the proposal waves (0 = default_threads()).
  unsigned threads = 0;
};

struct RestreamResult {
  int passes_run = 0;
  std::uint64_t moves_proposed = 0;
  std::uint64_t moves_applied = 0;
  /// Exact cost under cfg.metric, recomputed offline after the last pass.
  Weight cost = 0;
};

/// Refine the complete partition p in place. p must be balanced on entry
/// and stays balanced throughout.
RestreamResult restream_refine(const MappedHypergraph& g, Partition& p,
                               const BalanceConstraint& balance,
                               const RestreamConfig& cfg = {});

}  // namespace hp::stream
