#pragma once
// One-pass streaming partitioner over an mmap'd binary hypergraph.
//
// Nodes are placed in arrival (id) order, each exactly once, using only
// O(m + n + k) working memory beyond the read-only mapping: a 64-bit
// part-presence sketch per hyperedge, the partial assignment, and the k
// running part weights. The placement score for node v and part q is the
// fractional greedy rule used by streaming (hyper)graph partitioners in the
// FENNEL line of work:
//
//   score(v, q) = benefit(v, q) − α · (degw(v) + 1) · (W_q / C)^γ
//
// where benefit(v, q) = Σ_{e ∋ v} w(e) · [q present in e's sketch] is the
// connectivity the placement avoids creating, W_q is part q's current
// weight, C the balance capacity (hard-enforced: overfull parts are never
// candidates), and the α/γ penalty trades cut quality against filling parts
// evenly. For k ≤ 64 the sketch holds one exact presence bit per part, so
// the incrementally tracked cost equals an offline recomputation exactly;
// for k > 64 parts share bits (q mod 64) and the tracked figure becomes a
// lower bound, while the reported offline cost stays exact.
//
// A small reorder buffer (configurable) batches arrivals and places
// high-degree nodes in a batch first — they carry the most placement signal
// — without ever revisiting a placed node; buffer_size = 1 is pure arrival
// order.

#include <cstdint>
#include <optional>
#include <vector>

#include "hyperpart/core/balance.hpp"
#include "hyperpart/core/metrics.hpp"
#include "hyperpart/core/partition.hpp"
#include "hyperpart/stream/binary_format.hpp"

namespace hp::stream {

struct StreamConfig {
  CostMetric metric = CostMetric::kConnectivity;
  /// Arrivals per reorder buffer; within a buffer, nodes are placed in
  /// descending degree order. 1 = strict arrival order.
  NodeId buffer_size = 1024;
  /// α: strength of the fractional balance penalty.
  double balance_penalty = 1.0;
  /// γ: penalty growth exponent in the part-fill fraction.
  double penalty_exponent = 2.0;
  /// Breaks exact score ties deterministically.
  std::uint64_t seed = 1;
};

struct StreamResult {
  Partition partition;
  /// Cost tracked incrementally from the sketches during the pass (exact
  /// for k ≤ 64 under cfg.metric, else a lower bound).
  Weight streamed_cost = 0;
  /// Exact cost recomputed offline over the mapping after the pass.
  Weight offline_cost = 0;
  std::vector<Weight> part_weights;
};

/// Place every node of g into balance.k() parts in one pass. Returns
/// nullopt when some node fits no part under the hard capacity (only
/// possible with skewed node weights or capacities below W/k).
[[nodiscard]] std::optional<StreamResult> stream_partition(
    const MappedHypergraph& g, const BalanceConstraint& balance,
    const StreamConfig& cfg = {});

}  // namespace hp::stream
