#pragma once
// Exact branch-and-bound partitioner.
//
// The optimized exact algorithms the paper cites for sparse matrix
// bipartitioning [30, 39] are branch-and-bound searches over partial
// assignments; this is the same idea for general ε-balanced k-way
// partitioning. Nodes are assigned in a connectivity-driven order; the
// partial cost of the already-touched hyperedges (which can only grow as
// pins are added) is the lower bound, with part-symmetry breaking and
// capacity pruning. Substantially stronger than plain enumeration, and
// certified optimal when the search completes.

#include <cstdint>
#include <optional>

#include "hyperpart/core/balance.hpp"
#include "hyperpart/core/metrics.hpp"
#include "hyperpart/core/partition.hpp"

namespace hp {

struct BnbOptions {
  CostMetric metric = CostMetric::kConnectivity;
  /// Abort after this many search nodes (result flagged non-optimal).
  std::uint64_t max_nodes = 50'000'000;
  /// Warm-start upper bound (e.g. from the multilevel heuristic).
  std::optional<Weight> initial_upper_bound;
};

struct BnbResult {
  bool proven_optimal = false;
  Weight cost = 0;
  Partition partition;
  std::uint64_t nodes_explored = 0;
};

/// Minimum-cost balanced partition; nullopt when no feasible assignment
/// exists (within the node budget).
[[nodiscard]] std::optional<BnbResult> branch_and_bound_partition(
    const Hypergraph& g, const BalanceConstraint& balance,
    const BnbOptions& opts = {});

}  // namespace hp
