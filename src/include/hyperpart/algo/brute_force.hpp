#pragma once
// Exact partitioning by exhaustive enumeration.
//
// Ground truth for tests and small-instance experiments. Enumerates all
// assignments with capacity pruning and optional part-symmetry breaking
// (valid whenever parts are interchangeable — i.e. not for hierarchical
// costs, where part position matters).

#include <functional>
#include <optional>

#include "hyperpart/core/balance.hpp"
#include "hyperpart/core/metrics.hpp"
#include "hyperpart/core/partition.hpp"

namespace hp {

struct ExactResult {
  /// Integer cost under the chosen metric (rounded when custom_cost is set).
  Weight cost = 0;
  /// Exact (possibly fractional) cost value; equals `cost` for the two
  /// standard metrics, meaningful for custom hierarchical costs.
  double cost_value = 0.0;
  Partition partition;
  std::uint64_t leaves_evaluated = 0;
};

struct BruteForceOptions {
  CostMetric metric = CostMetric::kConnectivity;
  /// Extra constraint groups checked at every leaf (multi-constraint /
  /// layer-wise instances).
  const ConstraintSet* extra_constraints = nullptr;
  /// Break part-permutation symmetry (node 0 pinned to part 0, new part ids
  /// introduced in order). Disable for position-sensitive costs.
  bool break_symmetry = true;
  /// Custom leaf cost; overrides `metric` when set (used for hierarchical
  /// costs). Signature: cost(partition).
  std::function<double(const Partition&)> custom_cost;
};

/// Minimal-cost balanced partition, or nullopt if no feasible assignment
/// exists. Intended for n ≤ ~18 (k=2) / smaller for larger k.
[[nodiscard]] std::optional<ExactResult> brute_force_partition(
    const Hypergraph& g, const BalanceConstraint& balance,
    const BruteForceOptions& opts = {});

}  // namespace hp
