#pragma once
// Recursive partitioning (Section 7.1).
//
// Splits the node set according to a sequence of arities: arities {k} is
// direct k-way partitioning, {2, 2, …} is classic recursive bisection, and
// {b_1, …, b_d} follows a hierarchy tree level by level — the "natural
// solution idea" whose worst case Lemma 7.2 exhibits. Part ids are assigned
// in depth-first leaf order, so for a hierarchy with branching factors
// b_1..b_d the resulting part index is exactly the leaf position in the
// tree (as the hierarchical cost function expects).

#include <optional>
#include <vector>

#include "hyperpart/algo/multilevel.hpp"
#include "hyperpart/core/balance.hpp"
#include "hyperpart/core/partition.hpp"

namespace hp {

/// Partition g into Π arities[i] parts by recursive multilevel splits, each
/// split ε-balanced. Returns nullopt when any split fails.
[[nodiscard]] std::optional<Partition> recursive_partition(
    const Hypergraph& g, const std::vector<PartId>& arities, double epsilon,
    const MultilevelConfig& cfg = {});

/// Classic recursive bisection into k parts (k must be a power of two).
[[nodiscard]] std::optional<Partition> recursive_bisection(
    const Hypergraph& g, PartId k, double epsilon,
    const MultilevelConfig& cfg = {});

}  // namespace hp
