#pragma once
// Kernighan–Lin pair-swap refinement.
//
// Swaps exchange two equal-weight nodes between parts, so every move
// preserves part weights exactly — the natural refiner for the strict
// k-section / bisection setting (ε = 0), where single-node FM moves are
// infeasible without transient imbalance. Pass-based with best-prefix
// rollback, like classic KL.

#include "hyperpart/core/balance.hpp"
#include "hyperpart/core/metrics.hpp"
#include "hyperpart/core/partition.hpp"

namespace hp {

struct KlConfig {
  CostMetric metric = CostMetric::kConnectivity;
  int max_passes = 8;
  /// A pass aborts after this many consecutive non-improving swaps.
  std::uint32_t patience = 32;
};

/// Refine p in place by pairwise swaps (only between equal-weight nodes);
/// returns the final cost. Balance is preserved exactly, so p keeps
/// whatever balance it had on entry.
Weight kl_refine(const Hypergraph& g, Partition& p,
                 const KlConfig& cfg = {});

}  // namespace hp
