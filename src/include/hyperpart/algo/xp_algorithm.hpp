#pragma once
// The paper's XP algorithm for the partitioning problem (Lemma 4.3,
// Appendix C.6), including the multi-constraint variant (Appendix D.2) and
// hooks for the hierarchical cost variant (Lemma G.1).
//
// Given a cost budget L, at most L hyperedges can be cut, so the algorithm
// enumerates *configurations*: a subset E₀ of cut hyperedges together with
// an allowed color set C_e (|C_e| ≥ 2) for each e ∈ E₀. Removing E₀ leaves
// connected components that must be monochromatic; each component's allowed
// colors are the intersection of the C_e of the removed edges touching it.
// Feasibility of placing the contracted components into the k capacitated
// parts is decided by (memoized) dynamic programming over accumulated part
// weights — exactly the table τ(s₁, …, s_k, i) of the paper, with the
// multi-constraint table τ(s₁⁽¹⁾, …, s_k⁽ᶜ⁾, i) when constraint groups are
// present. Total work is n^f(L): polynomial for every fixed L.

#include <cstdint>
#include <functional>

#include "hyperpart/core/balance.hpp"
#include "hyperpart/core/metrics.hpp"
#include "hyperpart/core/partition.hpp"

namespace hp {

enum class XpStatus : std::uint8_t {
  kSolved,          ///< optimal solution with cost ≤ L found
  kNoSolution,      ///< proven: no feasible partition of cost ≤ L exists
  kBudgetExceeded,  ///< configuration budget exhausted before a proof
};

struct XpResult {
  XpStatus status = XpStatus::kNoSolution;
  double cost = 0.0;
  Partition partition;
  std::uint64_t configurations_checked = 0;
};

struct XpOptions {
  CostMetric metric = CostMetric::kConnectivity;
  /// Extra balance groups (multi-constraint variant, Appendix D.2).
  const ConstraintSet* extra_constraints = nullptr;
  /// Cost charged to a configuration for edge e with allowed color-set mask
  /// (bit i = color i allowed). Defaults to the metric cost: w(e) for
  /// cut-net, w(e)·(|C_e|−1) for connectivity. Overridden by the
  /// hierarchical variant to charge the hierarchical cost of the color set.
  std::function<double(EdgeId, std::uint32_t)> config_edge_cost;
  /// Cost of a concrete solution; defaults to the metric cost. Overridden
  /// for hierarchical costs.
  std::function<double(const Partition&)> solution_cost;
  /// Safety valve on the configuration enumeration.
  std::uint64_t max_configurations = 50'000'000;
};

/// Find a minimum-cost ε-balanced partition of cost at most `budget`, by the
/// Lemma 4.3 configuration enumeration. Requires every edge weight ≥ 1
/// (throws otherwise), which bounds |E₀| ≤ budget.
[[nodiscard]] XpResult xp_partition(const Hypergraph& g,
                                    const BalanceConstraint& balance,
                                    double budget, const XpOptions& opts = {});

}  // namespace hp
