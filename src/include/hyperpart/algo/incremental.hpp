#pragma once
// Incremental (ΔFM) repartitioning on a live ConnectivityTracker.
//
// The partitioning service keeps, per (graph, config) session entry, the
// tracker of the last partition it returned. A weight-only update leaves the
// tracker's pin counts, λ values, cost totals, and gain cache exact (only
// the cached part weights shift, patched via apply_node_weight_delta), so
// "repartition after a small update" does not need to re-run the multilevel
// pipeline: restore feasibility with a few targeted moves, then let boundary
// FM polish the result. This is the cheapest rung of the service's fallback
// ladder (ΔFM → partition-aware V-cycle → full multilevel) documented in
// DESIGN.md — worst-case quality is bounded by the FM pass itself, and the
// fuzz oracle's `incremental` leg checks the final tracker state against a
// rebuilt one plus a documented cost bound versus partitioning from scratch.

#include <optional>

#include "hyperpart/algo/fm_refiner.hpp"
#include "hyperpart/core/balance.hpp"
#include "hyperpart/core/connectivity_tracker.hpp"
#include "hyperpart/core/partition.hpp"

namespace hp {

/// Restore ε-balance on the tracker's current assignment after node-weight
/// updates pushed some parts over capacity. Deterministic greedy: while a
/// part exceeds capacity, move the cheapest node out of the most-overweight
/// part (max cached gain, ties → lowest node id, then lowest target part)
/// into the lightest part that can accept it. Zero-weight nodes are never
/// moved (they cannot reduce the excess). Enables the tracker's gain cache
/// for `metric` if it is missing or built for the other metric. Returns
/// false when no sequence of single-node moves can restore feasibility
/// (e.g. one node alone exceeds the capacity); the tracker is left in
/// whatever improved-but-infeasible state the loop reached.
bool rebalance_with_tracker(const Hypergraph& g, ConnectivityTracker& tracker,
                            const BalanceConstraint& balance, CostMetric metric,
                            unsigned threads = 1);

/// ΔFM: refine the tracker's current assignment in place after an update,
/// without rebuilding the multilevel hierarchy. Steps: (1) rebalance if any
/// part exceeds the capacity, (2) run boundary FM on the caller-owned
/// tracker, (3) export the refined assignment into `p`. Returns the final
/// cost under cfg.metric, or nullopt when feasibility could not be restored
/// (callers fall back to the next rung of the ladder). On success the
/// tracker and `p` agree and the partition satisfies `balance`.
std::optional<Weight> delta_fm_refine(const Hypergraph& g,
                                      ConnectivityTracker& tracker,
                                      Partition& p,
                                      const BalanceConstraint& balance,
                                      const FmConfig& cfg = {});

}  // namespace hp
