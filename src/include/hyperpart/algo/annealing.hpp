#pragma once
// Simulated-annealing partitioner — a metaheuristic baseline alongside FM
// and multilevel, for the heuristics comparison the hardness results
// motivate. Single-node moves with Metropolis acceptance on the exact
// incremental gain, geometric cooling, balance-feasible throughout.

#include <optional>

#include "hyperpart/core/balance.hpp"
#include "hyperpart/core/metrics.hpp"
#include "hyperpart/core/partition.hpp"

namespace hp {

struct AnnealingConfig {
  CostMetric metric = CostMetric::kConnectivity;
  double initial_temperature = 4.0;
  double cooling = 0.95;
  /// Moves attempted per temperature step (scaled by n).
  int moves_per_node = 4;
  int temperature_steps = 60;
  std::uint64_t seed = 1;
};

/// Anneal from a random balanced start; returns the best partition seen.
[[nodiscard]] std::optional<Partition> annealing_partition(
    const Hypergraph& g, const BalanceConstraint& balance,
    const AnnealingConfig& cfg = {});

}  // namespace hp
