#pragma once
// Shared-memory parallel entry points: parallel cost evaluation (edges
// chunked across threads) and embarrassingly-parallel multi-start
// multilevel partitioning. Deterministic for fixed seeds regardless of the
// thread count.

#include <optional>

#include "hyperpart/algo/multilevel.hpp"
#include "hyperpart/core/metrics.hpp"

namespace hp {

/// cost(g, p, metric) computed with edge ranges split across `threads`.
[[nodiscard]] Weight parallel_cost(const Hypergraph& g, const Partition& p,
                                   CostMetric metric, unsigned threads);

/// Run `starts` independent multilevel searches (seeds cfg.seed + i) on up
/// to `threads` threads; return the best-cost feasible result. The outcome
/// is the same as running the starts sequentially.
[[nodiscard]] std::optional<Partition> multilevel_partition_multistart(
    const Hypergraph& g, const BalanceConstraint& balance,
    const MultilevelConfig& cfg, int starts, unsigned threads);

}  // namespace hp
