#pragma once
// Multilevel hypergraph partitioning (coarsen → initial → uncoarsen+refine),
// the algorithmic skeleton of hMETIS/KaHyPar-style tools [28, 45]. Serves as
// the practical heuristic the paper's hardness results motivate.

#include <optional>

#include "hyperpart/algo/fm_refiner.hpp"
#include "hyperpart/core/balance.hpp"
#include "hyperpart/core/metrics.hpp"
#include "hyperpart/core/partition.hpp"

namespace hp {

struct MultilevelConfig {
  CostMetric metric = CostMetric::kConnectivity;
  /// Stop coarsening below this many nodes (scaled by k internally).
  NodeId coarsen_limit = 120;
  /// Independent initial-partitioning attempts on the coarsest level.
  int initial_tries = 8;
  FmConfig fm{};
  std::uint64_t seed = 1;
};

/// Partition g into balance.k() parts. Returns nullopt when no feasible
/// partition is found (capacity too tight for the node weights).
[[nodiscard]] std::optional<Partition> multilevel_partition(
    const Hypergraph& g, const BalanceConstraint& balance,
    const MultilevelConfig& cfg = {});

}  // namespace hp
