#pragma once
// Multilevel hypergraph partitioning (coarsen → initial → uncoarsen+refine),
// the algorithmic skeleton of hMETIS/KaHyPar-style tools [28, 45]. Serves as
// the practical heuristic the paper's hardness results motivate.

#include <optional>

#include "hyperpart/algo/fm_refiner.hpp"
#include "hyperpart/core/balance.hpp"
#include "hyperpart/core/metrics.hpp"
#include "hyperpart/core/partition.hpp"

namespace hp {

struct MultilevelConfig {
  CostMetric metric = CostMetric::kConnectivity;
  /// Stop coarsening below this many nodes (scaled by k internally).
  NodeId coarsen_limit = 120;
  /// Independent initial-partitioning attempts on the coarsest level.
  int initial_tries = 8;
  FmConfig fm{};
  std::uint64_t seed = 1;
  /// Levels with at least this many nodes refine with the synchronous-round
  /// parallel FM engine (FmConfig::sync_rounds); smaller levels — and the
  /// coarsest-level initial refinement — use the sequential engine, whose
  /// rollback discipline wins more on small instances than parallel rounds
  /// do. The switch depends only on the level's node count, never on the
  /// thread count, so partitions stay bit-identical across thread counts.
  /// Set to 0 to force the synchronous engine everywhere it is legal, or
  /// to kInvalidNode to disable it.
  NodeId sync_fm_min_nodes = 25000;
};

/// Partition g into balance.k() parts. Returns nullopt when no feasible
/// partition is found (capacity too tight for the node weights).
[[nodiscard]] std::optional<Partition> multilevel_partition(
    const Hypergraph& g, const BalanceConstraint& balance,
    const MultilevelConfig& cfg = {});

}  // namespace hp
