#pragma once
// Multilevel hypergraph partitioning (coarsen → initial → uncoarsen+refine),
// the algorithmic skeleton of hMETIS/KaHyPar-style tools [28, 45]. Serves as
// the practical heuristic the paper's hardness results motivate.

#include <optional>
#include <vector>

#include "hyperpart/algo/coarsening.hpp"
#include "hyperpart/algo/fm_refiner.hpp"
#include "hyperpart/core/balance.hpp"
#include "hyperpart/core/metrics.hpp"
#include "hyperpart/core/partition.hpp"

namespace hp {

struct MultilevelConfig {
  CostMetric metric = CostMetric::kConnectivity;
  /// Stop coarsening below this many nodes (scaled by k internally).
  NodeId coarsen_limit = 120;
  /// Independent initial-partitioning attempts on the coarsest level.
  int initial_tries = 8;
  FmConfig fm{};
  std::uint64_t seed = 1;
  /// Levels with at least this many nodes refine with the synchronous-round
  /// parallel FM engine (FmConfig::sync_rounds); smaller levels — and the
  /// coarsest-level initial refinement — use the sequential engine, whose
  /// rollback discipline wins more on small instances than parallel rounds
  /// do. The switch depends only on the level's node count, never on the
  /// thread count, so partitions stay bit-identical across thread counts.
  /// Set to 0 to force the synchronous engine everywhere it is legal, or
  /// to kInvalidNode to disable it.
  NodeId sync_fm_min_nodes = 25000;
};

/// Partition g into balance.k() parts. Returns nullopt when no feasible
/// partition is found (capacity too tight for the node weights).
[[nodiscard]] std::optional<Partition> multilevel_partition(
    const Hypergraph& g, const BalanceConstraint& balance,
    const MultilevelConfig& cfg = {});

/// A reusable coarsening hierarchy: the per-level coarse graphs and
/// fine→coarse maps produced by the coarsening phase. Valid only for the
/// exact graph contents (and balance capacity / seed) it was built from —
/// the partitioning service keys cached hierarchies by
/// Hypergraph::content_hash() plus the request config.
struct MultilevelHierarchy {
  std::vector<CoarseLevel> levels;
  /// Rng draws the coarsening phase consumed when this hierarchy was built
  /// (one per coarsen_once call, including a final saturated attempt that
  /// produced no level). Reuse replays exactly this many draws so the rest
  /// of the pipeline sees the same rng stream as the original run.
  std::uint32_t rng_draws = 0;
  [[nodiscard]] bool empty() const noexcept { return levels.empty(); }
};

/// multilevel_partition with an explicit hierarchy slot. When `hierarchy`
/// is non-null and non-empty, the coarsening phase is skipped entirely and
/// the cached levels are reused (no coarsen spans open; the per-level rng
/// draws are still consumed so the result is bit-identical to a fresh
/// run). When non-null and empty, the freshly built hierarchy is stored
/// into it for future reuse. nullptr behaves exactly like
/// multilevel_partition above.
[[nodiscard]] std::optional<Partition> multilevel_partition_cached(
    const Hypergraph& g, const BalanceConstraint& balance,
    const MultilevelConfig& cfg, MultilevelHierarchy* hierarchy);

}  // namespace hp
