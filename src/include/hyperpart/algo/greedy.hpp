#pragma once
// Initial partitioning heuristics.
//
// Random balanced assignment and greedy hypergraph growing (the standard
// initial-partitioning step of multilevel partitioners [28, 45]): grow one
// part at a time from a random seed node, always absorbing the node with
// the best cut gain, until the part reaches its target weight.

#include <optional>

#include "hyperpart/core/balance.hpp"
#include "hyperpart/core/metrics.hpp"
#include "hyperpart/core/partition.hpp"

namespace hp {

/// Random assignment respecting the capacity: shuffled nodes go to the
/// lightest part that still has room. Returns nullopt when the capacity is
/// infeasible for the node weights (first-fit failure).
[[nodiscard]] std::optional<Partition> random_balanced_partition(
    const Hypergraph& g, const BalanceConstraint& balance,
    std::uint64_t seed);

/// Greedy hypergraph growing into k parts. Parts are grown to weight about
/// W/k each; the balance capacity is enforced throughout. Returns nullopt
/// when no feasible assignment is found.
[[nodiscard]] std::optional<Partition> greedy_growing_partition(
    const Hypergraph& g, const BalanceConstraint& balance, CostMetric metric,
    std::uint64_t seed);

}  // namespace hp
