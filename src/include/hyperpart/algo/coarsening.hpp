#pragma once
// Heavy-edge coarsening for multilevel partitioning [28, 45].
//
// Pairs of nodes with the strongest hyperedge affinity are contracted; the
// coarse hypergraph aggregates node weights, restricts pins to clusters,
// and merges identical hyperedges by summing weights. Single-pin coarse
// edges are dropped (they can never be cut).

#include <vector>

#include "hyperpart/core/hypergraph.hpp"
#include "hyperpart/core/partition.hpp"

namespace hp {

struct CoarseLevel {
  Hypergraph graph;
  /// fine_to_coarse[v] is the coarse node containing fine node v.
  std::vector<NodeId> fine_to_coarse;
};

/// One round of heavy-edge pair matching. Clusters never exceed
/// `max_cluster_weight`. When `restrict_parts` is given, only nodes of the
/// same part are matched (the partition-aware coarsening of V-cycles).
/// The coarse-edge dedup runs on `threads` executors over sharded hash
/// maps; the result is deterministic for a fixed seed and identical for
/// every thread count (items are sharded by pin-list hash and merged in
/// original edge order within each shard).
[[nodiscard]] CoarseLevel coarsen_once(const Hypergraph& g,
                                       Weight max_cluster_weight,
                                       std::uint64_t seed,
                                       const Partition* restrict_parts =
                                           nullptr,
                                       unsigned threads = 1);

/// Project a coarse partition to the fine level.
[[nodiscard]] Partition project_partition(const Partition& coarse,
                                          const std::vector<NodeId>& fine_to_coarse);

}  // namespace hp
