#pragma once
// Deterministic parallel clustering coarsening for multilevel partitioning
// [28, 45], in the synchronous-round style of BiPart / deterministic
// Mt-KaHyPar.
//
// Each round, every singleton node rates neighbouring clusters by the
// heavy-edge score w(e)/(|e|−1) against the state frozen at round start
// and proposes to join the best feasible one; conflicting proposals on the
// same target are resolved by a fixed priority key (rating desc, then node
// id asc) and the winners commit sequentially in node-id order. Because
// proposals are pure functions of frozen state over fixed-grain chunks,
// the contraction hierarchy is bit-identical at 1 or N threads. The coarse
// hypergraph aggregates node weights, restricts pins to clusters, and
// merges identical hyperedges by summing weights (sharded parallel dedup).
// Single-pin coarse edges are dropped (they can never be cut).

#include <vector>

#include "hyperpart/core/hypergraph.hpp"
#include "hyperpart/core/partition.hpp"
#include "hyperpart/util/arena.hpp"

namespace hp {

struct CoarseLevel {
  Hypergraph graph;
  /// fine_to_coarse[v] is the coarse node containing fine node v.
  std::vector<NodeId> fine_to_coarse;
};

/// Reusable scratch memory for coarsen_once. One level allocates the same
/// shapes as the next (cluster/proposal arrays, projected pin lists, dedup
/// buckets), so a multilevel descent that keeps one CoarsenMemory across
/// levels pays the general-purpose allocator once and bump-allocates every
/// level after that. `seq` backs the calling-thread scratch; `chunks[c]`
/// backs the dedup bucket scatter of edge chunk c exclusively, which keeps
/// the parallel scatter contention-free and deterministic (chunk boundaries
/// are a pure function of the edge count). coarsen_once resets the arenas
/// on entry, so stats read AFTER a call describe that call.
class CoarsenMemory {
 public:
  explicit CoarsenMemory(
      std::size_t seq_block_bytes = std::size_t{1} << 22,
      std::size_t chunk_block_bytes = Arena::kDefaultBlockBytes) noexcept
      : seq_(seq_block_bytes), chunk_block_bytes_(chunk_block_bytes) {}

  [[nodiscard]] Arena& seq() noexcept { return seq_; }
  /// Arena owned by edge chunk `c`; grows the pool on first use.
  [[nodiscard]] Arena& chunk(std::size_t c) {
    while (chunks_.size() <= c) chunks_.emplace_back(chunk_block_bytes_);
    return chunks_[c];
  }
  void ensure_chunks(std::size_t count) {
    while (chunks_.size() < count) chunks_.emplace_back(chunk_block_bytes_);
  }

  void reset() noexcept {
    seq_.reset();
    for (Arena& a : chunks_) a.reset();
  }

  /// Aggregate stats over every arena (seq + chunks), for telemetry rows.
  [[nodiscard]] std::size_t reserved_bytes() const noexcept {
    std::size_t total = seq_.reserved_bytes();
    for (const Arena& a : chunks_) total += a.reserved_bytes();
    return total;
  }
  [[nodiscard]] std::size_t peak_used_bytes() const noexcept {
    std::size_t total = seq_.peak_used_bytes();
    for (const Arena& a : chunks_) total += a.peak_used_bytes();
    return total;
  }
  [[nodiscard]] std::uint64_t block_allocations() const noexcept {
    std::uint64_t total = seq_.block_allocations();
    for (const Arena& a : chunks_) total += a.block_allocations();
    return total;
  }
  [[nodiscard]] std::uint64_t oversize_allocations() const noexcept {
    std::uint64_t total = seq_.oversize_allocations();
    for (const Arena& a : chunks_) total += a.oversize_allocations();
    return total;
  }
  [[nodiscard]] std::uint64_t oversize_bytes() const noexcept {
    std::uint64_t total = seq_.oversize_bytes();
    for (const Arena& a : chunks_) total += a.oversize_bytes();
    return total;
  }

 private:
  Arena seq_;
  std::vector<Arena> chunks_;
  std::size_t chunk_block_bytes_;
};

/// One level of parallel clustering coarsening (a few proposal rounds, see
/// the file header). Clusters never exceed `max_cluster_weight`. When
/// `restrict_parts` is given, only nodes of the same part cluster together
/// (the partition-aware coarsening of V-cycles). The propose phase, the
/// leader numbering, and the coarse-edge dedup all run on `threads`
/// executors over fixed-grain chunks / sharded hash maps; the result is
/// deterministic for a fixed seed and identical for every thread count.
/// Pass a CoarsenMemory (reused across levels) to bump-allocate the
/// per-level scratch instead of round-tripping the heap; results are
/// identical with or without it.
[[nodiscard]] CoarseLevel coarsen_once(const Hypergraph& g,
                                       Weight max_cluster_weight,
                                       std::uint64_t seed,
                                       const Partition* restrict_parts =
                                           nullptr,
                                       unsigned threads = 1,
                                       CoarsenMemory* mem = nullptr);

/// Project a coarse partition to the fine level.
[[nodiscard]] Partition project_partition(const Partition& coarse,
                                          const std::vector<NodeId>& fine_to_coarse);

}  // namespace hp
