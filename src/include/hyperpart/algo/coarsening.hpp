#pragma once
// Heavy-edge coarsening for multilevel partitioning [28, 45].
//
// Pairs of nodes with the strongest hyperedge affinity are contracted; the
// coarse hypergraph aggregates node weights, restricts pins to clusters,
// and merges identical hyperedges by summing weights. Single-pin coarse
// edges are dropped (they can never be cut).

#include <vector>

#include "hyperpart/core/hypergraph.hpp"
#include "hyperpart/core/partition.hpp"

namespace hp {

struct CoarseLevel {
  Hypergraph graph;
  /// fine_to_coarse[v] is the coarse node containing fine node v.
  std::vector<NodeId> fine_to_coarse;
};

/// One round of heavy-edge pair matching. Clusters never exceed
/// `max_cluster_weight`. Deterministic for a fixed seed. When
/// `restrict_parts` is given, only nodes of the same part are matched
/// (the partition-aware coarsening of V-cycles).
[[nodiscard]] CoarseLevel coarsen_once(const Hypergraph& g,
                                       Weight max_cluster_weight,
                                       std::uint64_t seed,
                                       const Partition* restrict_parts =
                                           nullptr);

/// Project a coarse partition to the fine level.
[[nodiscard]] Partition project_partition(const Partition& coarse,
                                          const std::vector<NodeId>& fine_to_coarse);

}  // namespace hp
