#pragma once
// Deterministic parallel clustering coarsening for multilevel partitioning
// [28, 45], in the synchronous-round style of BiPart / deterministic
// Mt-KaHyPar.
//
// Each round, every singleton node rates neighbouring clusters by the
// heavy-edge score w(e)/(|e|−1) against the state frozen at round start
// and proposes to join the best feasible one; conflicting proposals on the
// same target are resolved by a fixed priority key (rating desc, then node
// id asc) and the winners commit sequentially in node-id order. Because
// proposals are pure functions of frozen state over fixed-grain chunks,
// the contraction hierarchy is bit-identical at 1 or N threads. The coarse
// hypergraph aggregates node weights, restricts pins to clusters, and
// merges identical hyperedges by summing weights (sharded parallel dedup).
// Single-pin coarse edges are dropped (they can never be cut).

#include <vector>

#include "hyperpart/core/hypergraph.hpp"
#include "hyperpart/core/partition.hpp"

namespace hp {

struct CoarseLevel {
  Hypergraph graph;
  /// fine_to_coarse[v] is the coarse node containing fine node v.
  std::vector<NodeId> fine_to_coarse;
};

/// One level of parallel clustering coarsening (a few proposal rounds, see
/// the file header). Clusters never exceed `max_cluster_weight`. When
/// `restrict_parts` is given, only nodes of the same part cluster together
/// (the partition-aware coarsening of V-cycles). The propose phase, the
/// leader numbering, and the coarse-edge dedup all run on `threads`
/// executors over fixed-grain chunks / sharded hash maps; the result is
/// deterministic for a fixed seed and identical for every thread count.
[[nodiscard]] CoarseLevel coarsen_once(const Hypergraph& g,
                                       Weight max_cluster_weight,
                                       std::uint64_t seed,
                                       const Partition* restrict_parts =
                                           nullptr,
                                       unsigned threads = 1);

/// Project a coarse partition to the fine level.
[[nodiscard]] Partition project_partition(const Partition& coarse,
                                          const std::vector<NodeId>& fine_to_coarse);

}  // namespace hp
