#pragma once
// Multiway number partitioning — the packing core of the paper's XP
// dynamic program (Lemma 4.3 cites Korf's k-way number partitioning [31]):
// place integers into k capacitated bins, optionally with per-integer
// color restrictions (the contracted-component placement problem).

#include <cstdint>
#include <optional>
#include <vector>

#include "hyperpart/core/hypergraph.hpp"  // PartId, Weight

namespace hp {

struct PackingItem {
  Weight size = 0;
  /// Bitmask of allowed bins (bit i = bin i allowed); 0 = unrestricted.
  std::uint32_t allowed = 0;
};

/// Decide whether the items fit into k bins of the given capacity, each
/// item in an allowed bin. Returns the bin of each item, or nullopt.
/// Memoized backtracking (largest-first), exact.
[[nodiscard]] std::optional<std::vector<PartId>> pack_items(
    std::vector<PackingItem> items, PartId k, Weight capacity);

/// Minimal achievable makespan (largest bin sum) of a k-way partition of
/// the numbers: binary search over pack_items capacities.
[[nodiscard]] Weight multiway_partition_makespan(
    const std::vector<Weight>& numbers, PartId k);

/// Greedy LPT (longest processing time) upper bound on the makespan.
[[nodiscard]] Weight lpt_makespan(const std::vector<Weight>& numbers,
                                  PartId k);

}  // namespace hp
