#pragma once
// V-cycle refinement [28, 45]: iterate the multilevel scheme on an already
// partitioned hypergraph. Coarsening is restricted to clusters within one
// part, so the current partition projects losslessly onto every level and
// refinement can only improve it.

#include "hyperpart/algo/multilevel.hpp"
#include "hyperpart/core/partition.hpp"

namespace hp {

/// Run `cycles` partition-aware V-cycles on p (in place); returns the
/// final cost under cfg.metric. p must be complete and balanced.
Weight vcycle_refine(const Hypergraph& g, Partition& p,
                     const BalanceConstraint& balance,
                     const MultilevelConfig& cfg = {}, int cycles = 2);

}  // namespace hp
