#pragma once
// k-way Fiduccia–Mattheyses refinement.
//
// Classic pass-based local search: repeatedly apply the best-gain feasible
// single-node move, lock the node, and at the end of a pass roll back to
// the best prefix seen. Balance is enforced against the single ε-balance
// capacity, and optionally against extra constraint groups (Definition 6.1
// multi-constraint / Definition 5.1 layer-wise), which is what makes the
// refiner usable for the paper's multi-constraint experiments.

#include <cstdint>

#include "hyperpart/core/balance.hpp"
#include "hyperpart/core/metrics.hpp"
#include "hyperpart/core/partition.hpp"

namespace hp {

struct FmConfig {
  CostMetric metric = CostMetric::kConnectivity;
  /// Maximum number of passes; each pass is O(pins · log) amortized.
  int max_passes = 8;
  /// A pass aborts after this many consecutive non-improving moves.
  std::uint32_t patience = 64;
  /// Optional extra balance groups that every move must respect.
  const ConstraintSet* extra_constraints = nullptr;
};

/// Refine `p` in place; returns the final cost under cfg.metric.
/// `p` must be complete and balanced on entry.
Weight fm_refine(const Hypergraph& g, Partition& p,
                 const BalanceConstraint& balance, const FmConfig& cfg = {});

}  // namespace hp
