#pragma once
// k-way Fiduccia–Mattheyses refinement.
//
// Classic pass-based local search: repeatedly apply the best-gain feasible
// single-node move, lock the node, and at the end of a pass roll back to
// the best prefix seen. Balance is enforced against the single ε-balance
// capacity, and optionally against extra constraint groups (Definition 6.1
// multi-constraint / Definition 5.1 layer-wise), which is what makes the
// refiner usable for the paper's multi-constraint experiments.
//
// Two engines share the pass structure. The default boundary-driven engine
// runs off the ConnectivityTracker's incrementally-maintained gain cache
// and best-move index: passes seed an addressable per-node heap with
// boundary nodes only (nodes on cut edges — everything else has
// non-positive gain), keyed by the tracker's O(1) best cached gain. Keys
// are exact rather than lazy — after each move precisely the nodes whose
// cached gains changed are re-keyed in place — so a pop needs no
// revalidation, just one O(k) feasibility scan to pick the target part.
// The legacy engine (use_gain_cache = false) recomputes gains by
// rescanning incident edges and seeds all n·(k−1) moves; it is kept as
// the reference baseline measured by bench_refine_scaling.
//
// A third engine (sync_rounds = true) trades the sequential pass for
// deterministic synchronous move rounds in the BiPart / deterministic
// Mt-KaHyPar style: each round snapshots the boundary, computes best-gain
// proposals in parallel over fixed-grain chunks of the snapshot (pure
// functions of the frozen tracker state), orders the surviving proposals
// by (gain desc, node id asc), and commits them sequentially through
// ConnectivityTracker::apply_batch, which revalidates every proposal
// against the live state. Only strictly positive revalidated gains within
// the hard capacity apply, so rounds are monotone, never unbalance the
// partition, and produce a bit-identical result at any thread count.

#include <cstdint>

#include "hyperpart/core/balance.hpp"
#include "hyperpart/core/metrics.hpp"
#include "hyperpart/core/partition.hpp"

namespace hp {

class ConnectivityTracker;

struct FmConfig {
  CostMetric metric = CostMetric::kConnectivity;
  /// Maximum number of passes; each pass is O(pins · log) amortized.
  int max_passes = 8;
  /// A pass aborts after this many consecutive non-improving moves.
  std::uint32_t patience = 64;
  /// Stop iterating passes once a pass improved the cost by less than this
  /// fraction of its start cost (0 = keep going until a pass brings no
  /// improvement at all). Trailing passes re-scan the whole boundary to
  /// recover a handful of moves; cutting them is almost free in quality.
  double min_pass_improvement = 0.002;
  /// Optional extra balance groups that every move must respect.
  const ConstraintSet* extra_constraints = nullptr;
  /// Boundary-driven gain-cache engine (default) vs. the legacy
  /// recompute-every-gain engine kept for baseline measurements.
  bool use_gain_cache = true;
  /// Threads for tracker/gain-cache construction (0 = default_threads()).
  /// The refined partition is identical for every thread count.
  unsigned threads = 1;
  /// Use the synchronous-round parallel engine (see the file header)
  /// instead of the sequential pass. Requires the gain cache; falls back
  /// to the sequential engine when extra_constraints are set (group
  /// feasibility is stateful across moves and is not revalidated by the
  /// batch commit) or use_gain_cache is false. The choice of engine must
  /// never depend on the thread count — callers gate it on instance size
  /// (e.g. MultilevelConfig::sync_fm_min_nodes) so results stay identical
  /// across thread counts.
  bool sync_rounds = false;
  /// Round cap for the synchronous engine; rounds also stop as soon as one
  /// of them applies no move.
  int max_sync_rounds = 32;
};

/// Refine `p` in place; returns the final cost under cfg.metric.
/// `p` must be complete and balanced on entry.
Weight fm_refine(const Hypergraph& g, Partition& p,
                 const BalanceConstraint& balance, const FmConfig& cfg = {});

/// Same, but runs on a caller-owned tracker that must already reflect `p`.
/// Construction (and gain-cache fill) cost is paid by the caller exactly
/// once, so drivers that already keep a tracker — and benchmarks that time
/// construction as its own stage — don't rebuild it per refinement call.
/// Enables the gain cache on the tracker when cfg asks for an engine or
/// metric it doesn't have yet. On return the tracker reflects the refined
/// partition written to `p`.
Weight fm_refine(const Hypergraph& g, ConnectivityTracker& tracker,
                 Partition& p, const BalanceConstraint& balance,
                 const FmConfig& cfg = {});

}  // namespace hp
