#pragma once
// Differential property oracle across every solver stack.
//
// One call runs every way this repo can answer the same partitioning
// question — greedy growing, random+FM, multilevel, recursive bisection,
// annealing, stream + restream over the HPBH binary round trip, and (on
// small instances) brute force, branch-and-bound, and the Lemma 4.3 XP
// dynamic program — and checks the cross-solver invariants the paper's
// methodology rests on:
//
//   balance          every returned partition is complete and feasible
//   tracker-total    ConnectivityTracker running costs == cost() recomputed
//                    from scratch, after an arbitrary random move sequence
//   gain-delta       gain(v,to) predicts the exact cost change of move(),
//                    and cached_gain == gain while the cache is enabled
//   tracker-rebuild  the incrementally maintained tracker state (per-edge λ,
//                    pin counts, part weights, boundary set, best-move
//                    index) equals a tracker rebuilt from the final
//                    partition
//   fm-monotone      fm_refine never increases cost and returns exactly the
//                    recomputed cost of the partition it wrote
//   heuristic≥OPT    every heuristic cost is bounded below by the exact
//                    optimum; BnB (when proven optimal) and XP (at budget
//                    OPT / OPT−1) agree with brute force
//   infeasible       if brute force proves infeasibility, no heuristic may
//                    return a feasible partition
//   stream           binary write → mmap round trip preserves the graph and
//                    all costs; the streamed (k ≤ 64) incremental cost and
//                    the offline recomputation agree; restream only ever
//                    lowers the cost and stays balanced
//   incremental      random update/repartition interleavings through a
//                    GraphSession stay balanced, report exactly the cost an
//                    independent mirror recomputes, keep every cached
//                    tracker equal to one rebuilt from scratch, and stay
//                    within the documented quality bound against a
//                    from-scratch run (incremental ≤ 3 · scratch + 4).
//                    Later rounds add structural deltas (add/remove nets,
//                    add/remove pins): the mirror is rebuilt from scratch
//                    via from_edges after every batch and must agree with
//                    the session's in-place CSR rebuild bit-for-bit
//                    (content hash), invalid batches must be rejected with
//                    zero effect (atomicity), and version pinning through
//                    evaluate must detect every intervening mutation
//   determinism      repeated runs of the same seed, and runs at different
//                    thread counts, produce bit-identical partitions
//
// A FaultInjection knob deliberately mis-applies a gain-rule delta inside
// the oracle's own prediction (never inside the library), so the harness
// can prove — in tests and in CI — that a seeded gain bug is caught and
// shrinks to a tiny repro.

#include <cstdint>
#include <string>
#include <vector>

#include "hyperpart/fuzz/instance_gen.hpp"

namespace hp::fuzz {

enum class FaultInjection : std::uint8_t {
  kNone,
  /// Off-by-one in the 0/1/2 pin-count threshold rule: while predicting a
  /// move's gain, every incident edge with exactly two pins left in the
  /// source part is credited as if the move uncut it.
  kGainRule,
};

struct OracleOptions {
  /// Exact solvers run when n ≤ this (and additionally k ≤ 4 for n > 10,
  /// keeping the symmetry-broken enumeration small).
  NodeId exact_node_limit = 12;
  /// Thread count compared against 1 in the determinism checks.
  unsigned alt_threads = 4;
  /// Length of the random move sequence replayed through the tracker.
  int tracker_moves = 200;
  bool run_annealing = true;
  /// Stream/restream leg (writes a temporary HPBH file per call).
  bool run_stream = true;
  /// GraphSession update/repartition interleaving leg.
  bool run_incremental = true;
  /// Weight-only update/repartition rounds per incremental-leg
  /// interleaving.
  int incremental_rounds = 6;
  /// Structural rounds appended after the weight-only ones: each sends a
  /// batch of add_net / remove_net / add_pins / remove_pins deltas and
  /// checks the patched session against a mirror rebuilt from scratch.
  /// 0 disables structural churn.
  int structural_rounds = 4;
  FaultInjection fault = FaultInjection::kNone;
  /// Directory for temporary binary files ("" = system temp dir).
  std::string scratch_dir;
};

struct OracleViolation {
  std::string invariant;  ///< stable kebab-case invariant name
  std::string message;    ///< human-readable detail incl. instance summary
};

struct OracleReport {
  std::vector<OracleViolation> violations;
  /// Solver/check legs that actually ran (exact legs are size-gated).
  std::vector<std::string> legs_run;
  [[nodiscard]] bool ok() const noexcept { return violations.empty(); }
  [[nodiscard]] std::string to_string() const;
};

/// One-line instance description used in violation messages and logs.
[[nodiscard]] std::string describe(const FuzzInstance& inst);

/// Run every applicable solver leg on the instance and collect all
/// invariant violations (the report is complete, not first-failure).
[[nodiscard]] OracleReport run_oracle(const FuzzInstance& inst,
                                      const OracleOptions& opts = {});

}  // namespace hp::fuzz
