#pragma once
// ddmin-style reduction of failing fuzz instances to minimal repros.
//
// Given an instance the oracle rejects, the shrinker searches for a
// smallest instance that still fails the same oracle configuration:
// delta-debugging over the edge list (remove chunks at increasing
// granularity), node elimination (drop a node from every edge and compact
// ids), weight flattening (all weights to 1), and k reduction (toward 2).
// Every candidate is accepted only if the full oracle still reports a
// violation, so the minimized instance is failing by construction.
//
// The minimized repro is dumped as an hMETIS file plus a `.cmd` text file
// holding the exact `hyperfuzz --replay` invocation that reproduces the
// failure — the two artifacts CI uploads when a run goes red.

#include <cstdint>
#include <string>

#include "hyperpart/fuzz/instance_gen.hpp"
#include "hyperpart/fuzz/oracle.hpp"

namespace hp::fuzz {

struct ShrinkOptions {
  /// Oracle configuration the repro must keep failing (fault injection and
  /// all — a repro for an injected bug replays with the same injection).
  OracleOptions oracle;
  /// Fixpoint rounds over the reduction stages.
  int max_rounds = 6;
  /// Hard cap on oracle evaluations across the whole shrink.
  std::uint64_t max_oracle_runs = 4000;
};

struct ShrinkResult {
  /// Minimized instance (family "shrunk"); still fails the oracle unless
  /// the input itself passed (then it is returned unchanged).
  FuzzInstance instance;
  /// First violated invariant of the minimized instance ("" if none).
  std::string violated_invariant;
  std::uint64_t oracle_runs = 0;
};

/// Reduce `failing` to a (locally) minimal instance that still fails.
[[nodiscard]] ShrinkResult shrink_instance(const FuzzInstance& failing,
                                           const ShrinkOptions& opts = {});

/// Write `<dir>/<stem>.hgr` (hMETIS, empty edges stripped — they affect no
/// invariant) and `<dir>/<stem>.cmd` (the replay CLI line, with
/// `extra_cli_args` appended, e.g. "--inject-bug gain"). Creates `dir` if
/// needed; returns the .hgr path.
std::string dump_repro(const FuzzInstance& inst, const std::string& dir,
                       const std::string& stem,
                       const std::string& extra_cli_args = "");

}  // namespace hp::fuzz
