#pragma once
// Seeded instance generation for the differential fuzzing harness.
//
// Every solver stack in this repo — exact (brute force, branch-and-bound,
// the Lemma 4.3 XP dynamic program), multilevel/FM over the gain-cache
// ConnectivityTracker, and the streaming/restream path — must agree on a
// shared set of invariants (see fuzz/oracle.hpp). The generators here
// produce the instances those invariants are checked on: a FuzzInstance is
// a hypergraph together with the full problem statement (k, ε, metric) and
// the seed + family that reproduce it, so any failure is replayable from
// two integers.
//
// Families deliberately cover the corners the solvers treat specially:
// skewed degree and weight distributions (power-law edge sizes stress the
// tracker's 0/1/2 pin-count thresholds), hyperDAGs built through the
// DAG → hyperedge round trip (also checked against Lemma B.2 recognition),
// the paper's grid and SpES gadgets (structured near-worst-case inputs),
// and adversarial degenerates: singleton/isolated nodes, parallel edges,
// empty and size-1 edges, one max-weight node that dominates the balance
// capacity, and k close to n. The application-shaped workload catalogue
// (src/workload) contributes four more legs — spmv, netlist, dataflow,
// powerlaw — generated at fuzz sizes through the same WorkloadSpec path the
// CLI and benches use.
//
// Seeding contract: the seed Rng only SELECTS the family; each family then
// generates from its own forked stream keyed (seed, family tag). An
// instance is therefore a pure function of (seed, family) — adding or
// reordering generator legs never perturbs the instances other legs produce
// for a given seed, which is what keeps corpus/replay seeds stable across
// versions (verified by the cross-version replay test).

#include <cstdint>
#include <string>
#include <vector>

#include "hyperpart/core/hypergraph.hpp"
#include "hyperpart/core/metrics.hpp"

namespace hp::fuzz {

enum class Family : std::uint8_t {
  kRandomUniform,   ///< uniform edge sizes, unit weights
  kRandomSkewed,    ///< power-law edge sizes, skewed node/edge weights
  kHyperDag,        ///< random DAG → hyperDAG (recognition must round-trip)
  kGridGadget,      ///< ℓ×ℓ grid gadget with outsiders (Definition C.2)
  kSpesGadget,      ///< Lemma C.1 SpES reduction on a random SpES instance
  kDegenerate,      ///< adversarial corner cases, cycled by seed
  kSpmv,            ///< workload catalogue: row-net sparse matrices
  kNetlist,         ///< workload catalogue: VLSI-style netlists
  kDataflow,        ///< workload catalogue: DNN hyperDAGs (recognition leg)
  kPowerLaw,        ///< workload catalogue: skewed power-law streams
};

inline constexpr Family kAllFamilies[] = {
    Family::kRandomUniform, Family::kRandomSkewed, Family::kHyperDag,
    Family::kGridGadget,    Family::kSpesGadget,   Family::kDegenerate,
    Family::kSpmv,          Family::kNetlist,      Family::kDataflow,
    Family::kPowerLaw,
};

[[nodiscard]] const char* to_string(Family f) noexcept;
/// Parse a family name ("random", "skewed", "hyperdag", "grid", "spes",
/// "degenerate", "spmv", "netlist", "dataflow", "powerlaw"); throws
/// std::invalid_argument on unknown names.
[[nodiscard]] Family family_from_string(const std::string& name);

/// One complete fuzz problem: the graph plus everything a solver needs.
struct FuzzInstance {
  Hypergraph graph;
  PartId k = 2;
  double epsilon = 0.1;
  CostMetric metric = CostMetric::kConnectivity;
  std::uint64_t seed = 0;   ///< seed that generated this instance
  std::string family;       ///< generating family (or "shrunk"/"corpus")
};

struct GenOptions {
  /// Upper bound on nodes for the non-gadget families. Gadget families can
  /// slightly exceed it (a grid is ℓ² + outsiders; the SpES reduction pads).
  NodeId max_nodes = 48;
  /// Upper bound on edges for the random families.
  EdgeId max_edges = 96;
  /// Largest node/edge weight the skewed family draws.
  Weight max_weight = 9;
  /// Restrict generation to these families; empty = all.
  std::vector<Family> families;
};

/// Deterministically generate the instance for `seed`: the family is drawn
/// from the allowed set, then sized and filled from the same seed. Equal
/// (seed, options) always produce the identical instance.
[[nodiscard]] FuzzInstance generate_instance(std::uint64_t seed,
                                             const GenOptions& opts = {});

/// The fixed catalogue of degenerate instances (independent of GenOptions):
/// singleton/isolated nodes, parallel edges, empty + size-1 edges, a
/// max-weight node, k = n and k = n−1, an edge spanning all nodes. Used to
/// seed tests/corpus and cycled through by Family::kDegenerate.
[[nodiscard]] std::vector<FuzzInstance> degenerate_catalogue();

}  // namespace hp::fuzz
