#pragma once
// Checked numeric parsing for user-facing entry points (CLI flags, spec
// strings). Unlike bare std::stoul/std::stoi these reject garbage and
// trailing junk instead of throwing, refuse out-of-range values instead of
// silently truncating, and never accept a negative sign for unsigned
// targets ("-1" parsed via stoul wraps to 2^64-1 and then truncates).

#include <cstdint>
#include <optional>
#include <string_view>

namespace hp {

/// Parse the entire token as an unsigned decimal integer in
/// [min_value, max_value]. Rejects empty tokens, signs, non-digits,
/// trailing characters, and overflow. nullopt on any failure.
[[nodiscard]] std::optional<std::uint64_t> parse_u64(
    std::string_view token, std::uint64_t min_value = 0,
    std::uint64_t max_value = UINT64_MAX);

/// Parse the entire token as a signed decimal integer in
/// [min_value, max_value]. A leading '-' is permitted.
[[nodiscard]] std::optional<std::int64_t> parse_i64(
    std::string_view token, std::int64_t min_value = INT64_MIN,
    std::int64_t max_value = INT64_MAX);

/// Parse the entire token as a finite double in [min_value, max_value].
/// Rejects partial parses ("1.5x"), NaN, and infinities.
[[nodiscard]] std::optional<double> parse_f64(
    std::string_view token,
    double min_value = -1.7976931348623157e308,
    double max_value = 1.7976931348623157e308);

}  // namespace hp
