#pragma once
// Deterministic pseudo-random number generation for all randomized components.
//
// Every randomized algorithm in hyperpart takes an explicit 64-bit seed, so runs
// are reproducible across machines and build modes. The generator is
// xoshiro256** (Blackman & Vigna), seeded via SplitMix64 as its authors
// recommend; both are tiny, fast, and have no global state.

#include <array>
#include <cstdint>
#include <vector>

namespace hp {

/// SplitMix64 step; used to expand a single seed into generator state.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** generator. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept;

  /// Uniform integer in [0, bound). bound must be > 0.
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t next_in(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double next_double() noexcept;

  /// Bernoulli trial with success probability p.
  [[nodiscard]] bool next_bool(double p) noexcept;

  /// Derive an independent child generator (for parallel streams).
  [[nodiscard]] Rng fork() noexcept;

  /// Fisher–Yates shuffle of a vector.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::array<std::uint64_t, 4> s_;
};

}  // namespace hp
