#pragma once
// Saturating integer arithmetic for Weight accumulation on adversarial
// inputs. Node and edge weights are user-controlled int64 values (hMETIS
// files, binary .hpb files, fuzz instances); summing them with plain `+`
// is signed-overflow UB the moment a file carries weights near INT64_MAX —
// the max_weight_node corpus entry is one crank of that handle away.
// Saturation keeps every comparison made downstream (cost ordering,
// capacity checks, FENNEL scores) directionally correct: an overflowed sum
// pins to the extreme instead of wrapping to the other sign.

#include <cstdint>
#include <limits>
#include <type_traits>

namespace hp {

/// a + b, clamped to the representable range instead of overflowing.
template <class T>
[[nodiscard]] constexpr T sat_add(T a, T b) noexcept {
  static_assert(std::is_integral_v<T>);
  T out{};
  if (!__builtin_add_overflow(a, b, &out)) return out;
  if constexpr (std::is_signed_v<T>) {
    return a < 0 ? std::numeric_limits<T>::min() : std::numeric_limits<T>::max();
  } else {
    return std::numeric_limits<T>::max();
  }
}

/// a * b, clamped to the representable range instead of overflowing.
template <class T>
[[nodiscard]] constexpr T sat_mul(T a, T b) noexcept {
  static_assert(std::is_integral_v<T>);
  T out{};
  if (!__builtin_mul_overflow(a, b, &out)) return out;
  if constexpr (std::is_signed_v<T>) {
    return (a < 0) == (b < 0) ? std::numeric_limits<T>::max()
                              : std::numeric_limits<T>::min();
  } else {
    return std::numeric_limits<T>::max();
  }
}

/// a - b, clamped to the representable range instead of overflowing.
template <class T>
[[nodiscard]] constexpr T sat_sub(T a, T b) noexcept {
  static_assert(std::is_integral_v<T>);
  T out{};
  if (!__builtin_sub_overflow(a, b, &out)) return out;
  if constexpr (std::is_signed_v<T>) {
    return b < 0 ? std::numeric_limits<T>::max() : std::numeric_limits<T>::min();
  } else {
    return std::numeric_limits<T>::min();
  }
}

}  // namespace hp
