#pragma once
// Fork/exec + pipe subprocess helper shared by everything in this repo that
// runs child processes: the hyperexp orchestrator (bench discovery and
// isolated job attempts), bench_stream_scaling's per-algorithm RSS
// attribution children, and the hyperpartd daemon's end-to-end tests.
//
// The shape is always the same — fork into a fresh process group (so a
// timeout SIGKILL reaches grandchildren), exec an absolute path with a
// plain argv, optionally redirect stdout(+stderr) to a file or capture
// stdout through a pipe, and wait with a wall-clock deadline — so it lives
// here once instead of three hand-rolled copies drifting apart.
// Linux-only, like the rest of the process tooling (VmHWM, /proc/self/exe).

#include <sys/types.h>

#include <optional>
#include <string>
#include <vector>

namespace hp::subprocess {

struct SpawnOptions {
  /// Redirect the child's stdout and stderr to this file (truncated).
  /// Empty = inherit the parent's descriptors.
  std::string stdout_to_file;
  /// Pipe the child's stdout back to the parent (read via Child::stdout_fd
  /// or Child::read_stdout). Mutually exclusive with stdout_to_file.
  bool capture_stdout = false;
  /// Working directory for the child ("" = inherit).
  std::string chdir_to;
  /// Put the child in its own process group so kill_group() reaches any
  /// grandchildren it forks.
  bool new_process_group = true;
};

/// Exit status of a reaped child. A child that never exec'd (exec failure)
/// reports exit code 127, mirroring the shell convention.
struct ExitStatus {
  int exit_code = -1;    ///< WEXITSTATUS, or -1 when killed by a signal
  int term_signal = 0;   ///< WTERMSIG when signaled, else 0
  bool timed_out = false;
  [[nodiscard]] bool ok() const noexcept {
    return !timed_out && term_signal == 0 && exit_code == 0;
  }
};

/// A spawned child process. Movable, not copyable; the destructor does NOT
/// kill or reap a still-running child (call wait() — leaking a child is a
/// caller bug and asserts in debug builds via the zombie it leaves).
class Child {
 public:
  Child() = default;
  Child(Child&& other) noexcept;
  Child& operator=(Child&& other) noexcept;
  Child(const Child&) = delete;
  Child& operator=(const Child&) = delete;
  ~Child();

  [[nodiscard]] bool valid() const noexcept { return pid_ > 0; }
  [[nodiscard]] pid_t pid() const noexcept { return pid_; }
  /// Read end of the stdout pipe (capture_stdout only; -1 otherwise).
  [[nodiscard]] int stdout_fd() const noexcept { return stdout_fd_; }

  /// Drain the stdout pipe until EOF or `timeout_sec` elapses, appending to
  /// `out`. Returns false on timeout (the child keeps running — callers
  /// normally follow up with kill_group + wait). timeout_sec < 0 = forever.
  bool read_stdout(std::string& out, double timeout_sec = -1.0);

  /// Wait for the child to exit. With timeout_sec >= 0, a child still
  /// running at the deadline is SIGKILLed (the whole group when it has
  /// one) and reaped; the returned status has timed_out = true.
  ExitStatus wait(double timeout_sec = -1.0);

  /// Signal the child's process group (or the child itself when spawned
  /// without a group). The child still has to be wait()ed.
  void kill_group(int sig) const noexcept;

 private:
  friend std::optional<Child> spawn(const std::string&,
                                    const std::vector<std::string>&,
                                    const SpawnOptions&);
  pid_t pid_ = -1;
  int stdout_fd_ = -1;
  bool own_group_ = false;
};

/// Fork + exec `exe argv...`. Returns nullopt when fork or pipe creation
/// fails; exec failure inside the child surfaces as exit code 127.
[[nodiscard]] std::optional<Child> spawn(const std::string& exe,
                                         const std::vector<std::string>& args,
                                         const SpawnOptions& opts = {});

/// Run to completion: spawn, then wait with the given timeout. A spawn
/// failure reports exit_code 126.
ExitStatus run(const std::string& exe, const std::vector<std::string>& args,
               const SpawnOptions& opts = {}, double timeout_sec = -1.0);

/// Spawn with stdout captured, drain it, and wait. Returns the collected
/// stdout only when the child exits 0 within the deadline; nullopt on spawn
/// failure, timeout (the child is killed), signal, or nonzero exit.
[[nodiscard]] std::optional<std::string> run_capture(
    const std::string& exe, const std::vector<std::string>& args,
    double timeout_sec = -1.0);

}  // namespace hp::subprocess
