#pragma once
// Portable software-prefetch shim for the CSR pin walks of the hot kernels
// (tracker construction, gain-cache fill, FM proposal sweeps). The walks
// are latency-bound: each edge touches a scattered m×k count row and each
// pin a scattered n×k gain row, so issuing the load a few iterations ahead
// overlaps the misses with useful work. No-ops on compilers without the
// builtin; never changes results, only timing.

namespace hp {

/// Hint a read of the cache line at `p` a few iterations before it is
/// needed.
inline void prefetch(const void* p) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0);
#else
  (void)p;
#endif
}

/// Same, but for a line about to be written (avoids the read-for-ownership
/// round trip on stores into cold lines).
inline void prefetch_write(const void* p) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/1);
#else
  (void)p;
#endif
}

}  // namespace hp
