#pragma once
// Persistent worker pool for the library's shared-memory parallelism.
//
// A single lazily-initialized pool of std::threads serves every parallel
// region (parallel cost evaluation, multi-start search, coarsening dedup,
// tracker construction), so hot paths that enter and leave parallel
// sections thousands of times do not pay thread spawn/join each call.
// Batches are drained from a condition-variable task queue; the submitting
// thread participates in its own batch, which both removes one context
// switch and makes nested submissions (a pool task calling run()) safe:
// progress never depends on a free worker.

#include <cstdint>
#include <functional>
#include <vector>

namespace hp {

class ThreadPool {
 public:
  /// The process-wide pool, created on first use with default_threads()−1
  /// workers (the submitter is the remaining executor).
  static ThreadPool& instance();

  /// Execute tasks[0..n) and block until all complete. The calling thread
  /// drains tasks alongside the workers, so this is safe to call from
  /// inside a pool task. If tasks throw, every task still runs and the
  /// first exception is rethrown on the calling thread afterwards.
  void run(const std::vector<std::function<void()>>& tasks);

  /// Resident worker threads (not counting submitters).
  [[nodiscard]] unsigned num_workers() const noexcept;

  /// Batches executed since process start; observable evidence that the
  /// pool persists across calls (used by tests).
  [[nodiscard]] std::uint64_t batches_executed() const noexcept;

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

 private:
  ThreadPool();
  ~ThreadPool();

  struct Impl;
  Impl* impl_;
};

/// Run tasks[0..n) across at most `threads` executors (1 = inline on the
/// calling thread). Blocks until all tasks complete. A throwing task does
/// not stop the others; once every task has run, the first exception is
/// rethrown to the caller. Backed by the persistent ThreadPool; no threads
/// are spawned per call.
void run_parallel(const std::vector<std::function<void()>>& tasks,
                  unsigned threads);

/// Chunked parallel for over [0, count): fn(begin, end) per chunk. The
/// chunk boundaries derive from min(threads, count), so two runs with
/// different thread counts see different chunkings — safe only when the
/// per-chunk work commutes exactly (independent slots, integer sums). For
/// order-sensitive merging use parallel_for_grain below.
void parallel_for_chunks(std::uint64_t count, unsigned threads,
                         const std::function<void(std::uint64_t,
                                                  std::uint64_t)>& fn);

/// Fixed grain used by parallel_for_grain / parallel_reduce_stable when the
/// caller passes grain == 0. A constant (never thread-derived) so chunk
/// boundaries are a pure function of the item count.
inline constexpr std::uint64_t kStableGrain = 4096;

/// Chunks [0, count) splits into at fixed grain g (ceil division).
[[nodiscard]] constexpr std::size_t num_grain_chunks(
    std::uint64_t count, std::uint64_t grain) noexcept {
  return grain == 0 ? num_grain_chunks(count, kStableGrain)
                    : static_cast<std::size_t>((count + grain - 1) / grain);
}

/// Deterministic parallel for over [0, count) at a FIXED grain: chunk c
/// covers [c·g, min((c+1)·g, count)), a pure function of count and g — the
/// thread count only decides which executor runs which chunk. Per-chunk
/// outputs indexed by the chunk id and merged in chunk order are therefore
/// bit-identical at any parallelism, which is the contract the
/// deterministic coarsening / synchronous-FM propose phases build on.
/// fn(chunk, begin, end) with dense chunk ids [0, num_grain_chunks).
/// grain == 0 selects kStableGrain. Schedules nothing when count == 0.
void parallel_for_grain(
    std::uint64_t count, std::uint64_t grain, unsigned threads,
    const std::function<void(std::size_t, std::uint64_t, std::uint64_t)>& fn);

/// Stable parallel reduction: `map(begin, end) -> T` per fixed-grain chunk,
/// then a sequential left fold of the per-chunk values in chunk order:
/// fold(fold(init, map(chunk 0)), map(chunk 1)) ... — identical at any
/// thread count even when fold does not commute (first-occurrence merges,
/// float sums, concatenation).
template <typename T, typename MapFn, typename FoldFn>
[[nodiscard]] T parallel_reduce_stable(std::uint64_t count,
                                       std::uint64_t grain, unsigned threads,
                                       T init, const MapFn& map,
                                       const FoldFn& fold) {
  const std::size_t chunks = num_grain_chunks(count, grain);
  const std::uint64_t g = grain == 0 ? kStableGrain : grain;
  std::vector<T> partial(chunks);
  parallel_for_grain(count, g, threads,
                     [&](std::size_t c, std::uint64_t begin,
                         std::uint64_t end) { partial[c] = map(begin, end); });
  T acc = std::move(init);
  for (T& p : partial) acc = fold(std::move(acc), std::move(p));
  return acc;
}

/// A sensible default thread count (hardware concurrency, at least 1).
[[nodiscard]] unsigned default_threads() noexcept;

}  // namespace hp
