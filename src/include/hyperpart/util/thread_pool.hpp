#pragma once
// Persistent worker pool for the library's shared-memory parallelism.
//
// A single lazily-initialized pool of std::threads serves every parallel
// region (parallel cost evaluation, multi-start search, coarsening dedup,
// tracker construction), so hot paths that enter and leave parallel
// sections thousands of times do not pay thread spawn/join each call.
// Batches are drained from a condition-variable task queue; the submitting
// thread participates in its own batch, which both removes one context
// switch and makes nested submissions (a pool task calling run()) safe:
// progress never depends on a free worker.

#include <cstdint>
#include <functional>
#include <vector>

namespace hp {

class ThreadPool {
 public:
  /// The process-wide pool, created on first use with default_threads()−1
  /// workers (the submitter is the remaining executor).
  static ThreadPool& instance();

  /// Execute tasks[0..n) and block until all complete. The calling thread
  /// drains tasks alongside the workers, so this is safe to call from
  /// inside a pool task. If tasks throw, every task still runs and the
  /// first exception is rethrown on the calling thread afterwards.
  void run(const std::vector<std::function<void()>>& tasks);

  /// Resident worker threads (not counting submitters).
  [[nodiscard]] unsigned num_workers() const noexcept;

  /// Batches executed since process start; observable evidence that the
  /// pool persists across calls (used by tests).
  [[nodiscard]] std::uint64_t batches_executed() const noexcept;

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

 private:
  ThreadPool();
  ~ThreadPool();

  struct Impl;
  Impl* impl_;
};

/// Run tasks[0..n) across at most `threads` executors (1 = inline on the
/// calling thread). Blocks until all tasks complete. A throwing task does
/// not stop the others; once every task has run, the first exception is
/// rethrown to the caller. Backed by the persistent ThreadPool; no threads
/// are spawned per call.
void run_parallel(const std::vector<std::function<void()>>& tasks,
                  unsigned threads);

/// Chunked parallel for over [0, count): fn(begin, end) per chunk.
void parallel_for_chunks(std::uint64_t count, unsigned threads,
                         const std::function<void(std::uint64_t,
                                                  std::uint64_t)>& fn);

/// A sensible default thread count (hardware concurrency, at least 1).
[[nodiscard]] unsigned default_threads() noexcept;

}  // namespace hp
