#pragma once
// Minimal fixed-size thread pool for the library's coarse-grained
// parallelism: parallel cost evaluation and multi-start search. Tasks are
// submitted as a batch and joined; no work stealing, no global state.

#include <cstdint>
#include <functional>
#include <vector>

namespace hp {

/// Run tasks[0..n) across at most `threads` std::threads (1 = inline).
/// Blocks until all tasks complete. Exceptions in tasks terminate — tasks
/// must be noexcept in spirit.
void run_parallel(const std::vector<std::function<void()>>& tasks,
                  unsigned threads);

/// Chunked parallel for over [0, count): fn(begin, end) per chunk.
void parallel_for_chunks(std::uint64_t count, unsigned threads,
                         const std::function<void(std::uint64_t,
                                                  std::uint64_t)>& fn);

/// A sensible default thread count (hardware concurrency, at least 1).
[[nodiscard]] unsigned default_threads() noexcept;

}  // namespace hp
