#pragma once
// Bump-pointer arena for per-level scratch allocations.
//
// The multilevel pipeline allocates the same shapes over and over: per-level
// clustering proposals, coarse-id maps, and the dedup buckets of the
// coarse-edge merge — each level round-tripping the general-purpose
// allocator hundreds of thousands of times (one malloc per projected pin
// list alone). An Arena turns all of that into pointer bumps over a few
// retained blocks: allocation is an add + bounds check, deallocation is a
// no-op, and reset() rewinds every block for the next level without
// returning memory to the OS.
//
// Not thread-safe by design — keep one arena per executor. The coarsening
// code gives every fixed-grain edge chunk its own arena so the parallel
// bucket scatter never contends and stays deterministic.
//
// Exception safety: allocate() either returns properly aligned storage or
// throws std::bad_alloc with the arena unchanged (strong guarantee); reset()
// and deallocate() never throw.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace hp {

class Arena {
 public:
  static constexpr std::size_t kDefaultBlockBytes = std::size_t{1} << 18;

  explicit Arena(std::size_t block_bytes = kDefaultBlockBytes) noexcept
      : block_bytes_(block_bytes == 0 ? kDefaultBlockBytes : block_bytes) {}

  Arena(Arena&&) noexcept = default;
  Arena& operator=(Arena&&) noexcept = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Aligned bump allocation. Requests larger than the block size get a
  /// dedicated "oversize" block (counted, freed on reset); everything else
  /// bumps within retained blocks. `align` must be a power of two.
  void* allocate(std::size_t bytes, std::size_t align) {
    if (bytes == 0) bytes = 1;
    if (bytes + align > block_bytes_) {
      // Dedicated block: exactly this request, not retained across resets.
      oversize_.push_back(std::make_unique<std::byte[]>(bytes + align));
      ++oversize_allocations_;
      oversize_bytes_ += bytes;
      return align_up(oversize_.back().get(), align);
    }
    if (active_ < blocks_.size()) {
      if (void* p = try_bump(blocks_[active_], bytes, align)) {
        used_bytes_ += bytes;
        return p;
      }
      // The active block is full; later retained blocks are all empty, so
      // the next one always fits (bytes + align <= block size).
      ++active_;
    }
    if (active_ == blocks_.size()) {
      blocks_.push_back(Block{std::make_unique<std::byte[]>(block_bytes_), 0});
      ++block_allocations_;
    }
    void* p = try_bump(blocks_[active_], bytes, align);
    used_bytes_ += bytes;
    return p;
  }

  /// Bump arenas reclaim nothing per-object; memory comes back at reset().
  void deallocate(void*, std::size_t) noexcept {}

  /// Rewind every retained block and free oversize blocks. Pointers handed
  /// out before the reset are invalidated; capacity (and therefore the
  /// steady-state allocation count) is retained.
  void reset() noexcept {
    for (Block& b : blocks_) b.used = 0;
    active_ = 0;
    oversize_.clear();
    peak_used_bytes_ = used_bytes_ > peak_used_bytes_ ? used_bytes_
                                                      : peak_used_bytes_;
    used_bytes_ = 0;
  }

  /// Bytes handed out since the last reset (excluding oversize requests).
  [[nodiscard]] std::size_t used_bytes() const noexcept { return used_bytes_; }
  /// High-water mark of used_bytes() across resets.
  [[nodiscard]] std::size_t peak_used_bytes() const noexcept {
    return used_bytes_ > peak_used_bytes_ ? used_bytes_ : peak_used_bytes_;
  }
  /// Bytes currently reserved in retained blocks.
  [[nodiscard]] std::size_t reserved_bytes() const noexcept {
    return blocks_.size() * block_bytes_;
  }
  /// Retained blocks fetched from the general-purpose allocator — the
  /// number that stops growing once the arena reaches steady state.
  [[nodiscard]] std::uint64_t block_allocations() const noexcept {
    return block_allocations_;
  }
  /// Lifetime count/bytes of requests too large for the block size; these
  /// fall back to dedicated heap blocks and signal a mis-sized arena.
  [[nodiscard]] std::uint64_t oversize_allocations() const noexcept {
    return oversize_allocations_;
  }
  [[nodiscard]] std::uint64_t oversize_bytes() const noexcept {
    return oversize_bytes_;
  }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t used;
  };

  static void* align_up(std::byte* p, std::size_t align) noexcept {
    const auto v = reinterpret_cast<std::uintptr_t>(p);
    return reinterpret_cast<void*>((v + align - 1) & ~(align - 1));
  }

  void* try_bump(Block& b, std::size_t bytes, std::size_t align) noexcept {
    const auto base = reinterpret_cast<std::uintptr_t>(b.data.get());
    const std::uintptr_t at = (base + b.used + align - 1) & ~(align - 1);
    if (at + bytes > base + block_bytes_) return nullptr;
    b.used = static_cast<std::size_t>(at + bytes - base);
    return reinterpret_cast<void*>(at);
  }

  std::size_t block_bytes_;
  std::vector<Block> blocks_;
  std::size_t active_ = 0;
  std::vector<std::unique_ptr<std::byte[]>> oversize_;
  std::size_t used_bytes_ = 0;
  std::size_t peak_used_bytes_ = 0;
  std::uint64_t block_allocations_ = 0;
  std::uint64_t oversize_allocations_ = 0;
  std::uint64_t oversize_bytes_ = 0;
};

/// Standard-allocator adaptor over an Arena, for scratch containers whose
/// lifetime is bracketed by the arena's reset cycle. Deallocation is a
/// no-op, so geometric vector growth leaves dead space behind — reserve()
/// to the known size where possible.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;

  explicit ArenaAllocator(Arena& arena) noexcept : arena_(&arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept
      : arena_(other.arena()) {}

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    arena_->deallocate(p, n * sizeof(T));
  }

  [[nodiscard]] Arena* arena() const noexcept { return arena_; }

  template <typename U>
  [[nodiscard]] bool operator==(const ArenaAllocator<U>& o) const noexcept {
    return arena_ == o.arena();
  }

 private:
  Arena* arena_;
};

template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

}  // namespace hp
