#pragma once
// Writer-priority shared mutex.
//
// glibc's std::shared_mutex maps to a reader-preferring pthread rwlock: as
// long as readers keep arriving, a waiting writer is never admitted. The
// partitioning service commits mutation results under a brief unique lock
// while clients may hammer `evaluate` (shared lock) in a tight loop — with
// the default policy that commit can starve forever (observed as a hung
// repartition in the concurrency tests). This wrapper requests
// PTHREAD_RWLOCK_PREFER_WRITER_NONRECURSIVE_NP, under which new readers
// queue behind a waiting writer, bounding writer latency by the in-flight
// readers. Satisfies SharedLockable, so std::shared_lock/std::unique_lock
// work unchanged. Linux/glibc-only, like the rest of the process tooling;
// on other platforms the attribute is simply absent and the default policy
// applies.

#include <pthread.h>

namespace hp {

class WriterPrioritySharedMutex {
 public:
  WriterPrioritySharedMutex() {
    pthread_rwlockattr_t attr;
    pthread_rwlockattr_init(&attr);
#if defined(__GLIBC__)
    // NB: the kind constants are enumerators, not macros — a
    // defined(PTHREAD_RWLOCK_...) guard would silently compile this out.
    pthread_rwlockattr_setkind_np(
        &attr, PTHREAD_RWLOCK_PREFER_WRITER_NONRECURSIVE_NP);
#endif
    pthread_rwlock_init(&lock_, &attr);
    pthread_rwlockattr_destroy(&attr);
  }
  ~WriterPrioritySharedMutex() { pthread_rwlock_destroy(&lock_); }
  WriterPrioritySharedMutex(const WriterPrioritySharedMutex&) = delete;
  WriterPrioritySharedMutex& operator=(const WriterPrioritySharedMutex&) =
      delete;

  void lock() { pthread_rwlock_wrlock(&lock_); }
  bool try_lock() { return pthread_rwlock_trywrlock(&lock_) == 0; }
  void unlock() { pthread_rwlock_unlock(&lock_); }

  void lock_shared() { pthread_rwlock_rdlock(&lock_); }
  bool try_lock_shared() { return pthread_rwlock_tryrdlock(&lock_) == 0; }
  void unlock_shared() { pthread_rwlock_unlock(&lock_); }

 private:
  pthread_rwlock_t lock_;
};

}  // namespace hp
