#pragma once
// Simple wall-clock timer used by benchmarks and examples.

#include <chrono>

namespace hp {

class Timer {
 public:
  Timer() noexcept : start_(clock::now()) {}

  void reset() noexcept { start_ = clock::now(); }

  /// Seconds elapsed since construction or last reset().
  [[nodiscard]] double seconds() const noexcept;

  /// Milliseconds elapsed since construction or last reset().
  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace hp
