#pragma once
// Addressable 4-ary max-heap over a dense id universe [0, n).
//
// Exactly one entry per id, updatable in place through a position index —
// the gain-cache FM engine keeps one candidate per boundary node here
// instead of flooding a lazy binary heap with stale duplicates (the heap
// stays at boundary size instead of growing with every gain change). The
// 4-ary layout halves the tree depth of a binary heap and keeps sibling
// comparisons within one cache line.
//
// All operations are deterministic: identical call sequences produce
// identical pop orders, which the FM determinism guarantees rely on.

#include <algorithm>
#include <cstdint>
#include <vector>

namespace hp {

template <typename Key, typename Id = std::uint32_t>
class AddressableMaxHeap {
 public:
  static constexpr std::uint32_t kNotInHeap = 0xffffffffu;

  explicit AddressableMaxHeap(Id universe = 0) { reset(universe); }

  /// Resize the id universe and drop every entry.
  void reset(Id universe) {
    pos_.assign(universe, kNotInHeap);
    heap_.clear();
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }
  [[nodiscard]] bool contains(Id id) const {
    return pos_[id] != kNotInHeap;
  }
  [[nodiscard]] Id top_id() const { return heap_.front().id; }
  [[nodiscard]] Key top_key() const { return heap_.front().key; }
  [[nodiscard]] Key key_of(Id id) const { return heap_[pos_[id]].key; }

  /// Insert a new id, or change the key of a present one.
  void upsert(Id id, Key key) {
    if (pos_[id] == kNotInHeap) {
      pos_[id] = static_cast<std::uint32_t>(heap_.size());
      heap_.push_back({key, id});
      sift_up(heap_.size() - 1);
    } else {
      const std::size_t i = pos_[id];
      const Key old = heap_[i].key;
      heap_[i].key = key;
      if (key > old) {
        sift_up(i);
      } else if (key < old) {
        sift_down(i);
      }
    }
  }

  void pop() { erase_at(0); }

  /// Remove an id if present (no-op otherwise).
  void erase(Id id) {
    if (pos_[id] != kNotInHeap) erase_at(pos_[id]);
  }

  /// Remove every entry; O(size).
  void clear() {
    for (const Entry& e : heap_) pos_[e.id] = kNotInHeap;
    heap_.clear();
  }

 private:
  struct Entry {
    Key key;
    Id id;
  };

  void erase_at(std::size_t i) {
    pos_[heap_[i].id] = kNotInHeap;
    const Entry last = heap_.back();
    heap_.pop_back();
    if (i < heap_.size()) {
      heap_[i] = last;
      pos_[last.id] = static_cast<std::uint32_t>(i);
      if (!sift_up(i)) sift_down(i);
    }
  }

  /// Returns true when the entry moved (so erase_at can skip sift_down).
  bool sift_up(std::size_t i) {
    const Entry e = heap_[i];
    bool moved = false;
    while (i > 0) {
      const std::size_t parent = (i - 1) / 4;
      if (heap_[parent].key >= e.key) break;
      heap_[i] = heap_[parent];
      pos_[heap_[i].id] = static_cast<std::uint32_t>(i);
      i = parent;
      moved = true;
    }
    heap_[i] = e;
    pos_[e.id] = static_cast<std::uint32_t>(i);
    return moved;
  }

  void sift_down(std::size_t i) {
    const Entry e = heap_[i];
    const std::size_t n = heap_.size();
    for (;;) {
      const std::size_t first = 4 * i + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t end = std::min(first + 4, n);
      for (std::size_t c = first + 1; c < end; ++c) {
        if (heap_[c].key > heap_[best].key) best = c;
      }
      if (heap_[best].key <= e.key) break;
      heap_[i] = heap_[best];
      pos_[heap_[i].id] = static_cast<std::uint32_t>(i);
      i = best;
    }
    heap_[i] = e;
    pos_[e.id] = static_cast<std::uint32_t>(i);
  }

  std::vector<std::uint32_t> pos_;
  std::vector<Entry> heap_;
};

}  // namespace hp
