#pragma once
// Random instance generators for tests, benchmarks and examples.
//
// Includes the 2-regular "SpMV hypergraphs" of Knigge–Bisseling [30]
// (Sections 3.2 / 4: each node is a matrix nonzero, hyperedges are rows and
// columns; degree exactly 2 with the bipartite property), plus standard
// random hypergraphs and several DAG families used throughout the paper's
// constructions.

#include <cstdint>

#include "hyperpart/core/hypergraph.hpp"
#include "hyperpart/dag/dag.hpp"

namespace hp {

/// Random hypergraph: m hyperedges with sizes uniform in
/// [min_edge_size, max_edge_size], pins uniform without replacement.
[[nodiscard]] Hypergraph random_hypergraph(NodeId n, EdgeId m,
                                           std::uint32_t min_edge_size,
                                           std::uint32_t max_edge_size,
                                           std::uint64_t seed);

/// SpMV (sparse-matrix) hypergraph of an r×c random matrix with `nnz`
/// nonzeros: one node per nonzero, one hyperedge per non-empty row and per
/// non-empty column. Every node has degree exactly 2, and row hyperedges /
/// column hyperedges each form a class of pairwise disjoint edges (the
/// bipartite property of [30]).
[[nodiscard]] Hypergraph spmv_hypergraph(std::uint32_t rows,
                                         std::uint32_t cols, std::uint64_t nnz,
                                         std::uint64_t seed);

/// Random DAG: nodes ordered 0..n−1, each forward pair (u, v) is an edge
/// with probability p.
[[nodiscard]] Dag random_dag(NodeId n, double p, std::uint64_t seed);

/// Layered DAG: `layers` layers of `width` nodes; every consecutive-layer
/// pair is connected with probability p (each node guaranteed ≥ 1
/// predecessor in the previous layer so layers are exact).
[[nodiscard]] Dag layered_dag(std::uint32_t layers, std::uint32_t width,
                              double p, std::uint64_t seed);

/// Random out-tree: node i > 0 gets a uniformly random parent among
/// 0..i−1 (in-degree 1 everywhere except the root).
[[nodiscard]] Dag random_out_tree(NodeId n, std::uint64_t seed);

/// Directed path 0 → 1 → … → n−1.
[[nodiscard]] Dag chain_dag(NodeId n);

/// Fork-join: a source fanning out to `width` parallel chains of length
/// `depth`, joined into one sink.
[[nodiscard]] Dag fork_join_dag(std::uint32_t width, std::uint32_t depth);

/// Random binary-operation DAG (in-degree ≤ 2, the bounded-indegree setting
/// of Section 3.2 that yields hyperDAGs with Δ ≤ 3): node i > 1 picks two
/// distinct random predecessors among 0..i−1.
[[nodiscard]] Dag random_binary_dag(NodeId n, std::uint64_t seed);

}  // namespace hp
