#pragma once
// Computational DAG edge-list I/O.
//
// Format: first line "<num_nodes> <num_edges>", then one "u v" pair per
// line (0-based). '%' starts a comment line.

#include <iosfwd>
#include <string>

#include "hyperpart/dag/dag.hpp"

namespace hp {

[[nodiscard]] Dag read_dag(std::istream& in);
[[nodiscard]] Dag read_dag_file(const std::string& path);

void write_dag(std::ostream& out, const Dag& dag);
void write_dag_file(const std::string& path, const Dag& dag);

}  // namespace hp
