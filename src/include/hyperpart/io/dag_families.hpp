#pragma once
// Structured computational-DAG families — the "steps of a complex
// algorithm" workloads that motivate hyperDAG partitioning (Sections 1 and
// 3.2). All are classic kernels from parallel scientific computing:
//
//   * 2D stencil (iterated Jacobi sweep): node (t, x, y) depends on the
//     previous iteration's 5-point neighbourhood,
//   * FFT butterfly: stage s node i depends on i and i ^ 2^s of stage s−1,
//   * dense triangular solve: x_i depends on every x_j, j < i (via its
//     row's accumulation chain),
//   * wavefront / diagonal sweep over a 2D grid (dynamic-programming
//     dependence (i−1,j), (i,j−1)).

#include <cstdint>

#include "hyperpart/dag/dag.hpp"

namespace hp {

/// `iterations` Jacobi sweeps over a width×height grid, 5-point stencil.
[[nodiscard]] Dag stencil2d_dag(std::uint32_t width, std::uint32_t height,
                                std::uint32_t iterations);

/// Radix-2 FFT butterfly on 2^log_size points (log_size stages).
[[nodiscard]] Dag butterfly_dag(std::uint32_t log_size);

/// Forward substitution on a dense lower-triangular n×n system: one node
/// per (row, column) update plus one per solved unknown.
[[nodiscard]] Dag triangular_solve_dag(std::uint32_t n);

/// Wavefront over a width×height grid: (i,j) depends on (i−1,j), (i,j−1).
[[nodiscard]] Dag wavefront_dag(std::uint32_t width, std::uint32_t height);

}  // namespace hp
