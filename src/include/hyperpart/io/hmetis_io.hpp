#pragma once
// hMETIS hypergraph file format.
//
// Header: "<num_edges> <num_nodes> [fmt]" with fmt ∈ {∅,1,10,11}: 1 = edge
// weights (first token per edge line), 10 = node weights (one per line after
// the edges), 11 = both. Node ids are 1-based in the file. '%' starts a
// comment line.

#include <iosfwd>
#include <string>

#include "hyperpart/core/hypergraph.hpp"

namespace hp {

[[nodiscard]] Hypergraph read_hmetis(std::istream& in);
[[nodiscard]] Hypergraph read_hmetis_file(const std::string& path);

void write_hmetis(std::ostream& out, const Hypergraph& g);
void write_hmetis_file(const std::string& path, const Hypergraph& g);

}  // namespace hp
