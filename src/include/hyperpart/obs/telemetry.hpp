#pragma once
// Phase-tracing telemetry: scoped spans, named counters/gauges, JSON export.
//
// The library's long-running drivers (multilevel V-cycle, FM refiner,
// streaming partitioner) open RAII spans at their phase boundaries:
//
//   multilevel > coarsen[level=i] > {match, contract, dedup}
//   multilevel > initial
//   multilevel > uncoarsen[level=i] > fm > pass[i]
//   stream > window[i]
//   restream > pass[i]
//   rb > split[part=p] > multilevel > ...
//
// Spans merge by (parent, name): opening "fm" twice under the same parent
// accumulates into one node (count += 1, ms += elapsed), so the tree stays
// bounded no matter how many times a phase repeats, and its *shape* — the
// set of name paths — is a deterministic function of the algorithm's
// control flow, not of timing or thread count. Spans are only ever opened
// from orchestrating code (never inside pool tasks), so the tree needs no
// cross-thread ordering; counters and gauges are mutex-aggregated and may
// be bumped from any thread, at phase granularity (per pass / per level /
// per call — never per inner-loop iteration).
//
// Cost model:
//   * HP_TELEMETRY=OFF (CMake option → HP_TELEMETRY_OFF): every macro
//     below compiles to nothing; release hot loops carry zero telemetry
//     code.
//   * Compiled in but disabled (the default at runtime): each macro is one
//     relaxed atomic load.
//   * Enabled: span open/close takes a global mutex; fine at phase
//     granularity.
//
// The exported JSON is schema-versioned (kSchemaName/kSchemaVersion); see
// DESIGN.md "Observability" for the field-by-field contract.

#include <cstdint>
#include <string>

#include "hyperpart/obs/json.hpp"

namespace hp::obs {

inline constexpr const char* kSchemaName = "hyperpart-telemetry";
inline constexpr int kSchemaVersion = 1;

/// Runtime master switch (one relaxed atomic load).
[[nodiscard]] bool enabled() noexcept;

/// Turn collection on/off. Enabling does not clear prior data; call
/// reset() to start a fresh session. Must not be toggled while spans are
/// open on other threads.
void set_enabled(bool on) noexcept;

/// Drop all spans, counters, and gauges and restart the session clock.
/// Must not be called while any span is open.
void reset();

/// Add `delta` to the named counter (a monotone sum).
void counter_add(const std::string& name, std::int64_t delta);

/// Set the named gauge to `value` (last write wins).
void gauge_set(const std::string& name, std::int64_t value);

/// Raise the named gauge to `value` if larger (high-water mark).
void gauge_max(const std::string& name, std::int64_t value);

/// Read back a counter (0 when absent). Used by tests.
[[nodiscard]] std::int64_t counter(const std::string& name);

/// Read back a gauge (0 when absent). Used by tests.
[[nodiscard]] std::int64_t gauge(const std::string& name);

/// Peak resident set size of this process in bytes (VmHWM from
/// /proc/self/status), or 0 where unavailable. A monotone high-water mark.
[[nodiscard]] std::uint64_t peak_rss_bytes();

/// RAII phase span. An empty name constructs an inactive span (this is how
/// the HP_SPAN macro skips all work when telemetry is disabled).
class Span {
 public:
  explicit Span(std::string name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void* node_ = nullptr;          // SpanNode*, opaque to keep the header light
  std::int64_t start_ns_ = 0;
};

/// Format helpers for span names: span_name("fm") == "fm",
/// span_name("coarsen", "level", 3) == "coarsen[level=3]".
[[nodiscard]] inline std::string span_name(const char* base) { return base; }
[[nodiscard]] inline std::string span_name(std::string base) { return base; }
/// span_name("leg", "fm") == "leg[fm]".
[[nodiscard]] inline std::string span_name(const char* base,
                                           const std::string& tag) {
  std::string out(base);
  out += '[';
  out += tag;
  out += ']';
  return out;
}
/// span_name("pass", 3) == "pass[3]".
template <class T>
[[nodiscard]] std::string span_name(const char* base, T idx) {
  std::string out(base);
  out += '[';
  out += std::to_string(idx);
  out += ']';
  return out;
}
template <class T>
[[nodiscard]] std::string span_name(const char* base, const char* key, T idx) {
  std::string out(base);
  out += '[';
  out += key;
  out += '=';
  out += std::to_string(idx);
  out += ']';
  return out;
}

/// Session snapshot as a schema-versioned JSON value:
///   {schema, version, wall_ms, peak_rss_bytes, spans: [...], counters: {},
///    gauges: {}}
/// Each span node is {name, ms, count, children: [...]}.
[[nodiscard]] json::Value to_json();

/// Serialize to_json() to `path`; returns false (and leaves no partial
/// file behind) when the file cannot be written.
bool write_json(const std::string& path);

/// Newline-separated "parent/child/..." paths of the span tree with per-
/// node counts ("multilevel/coarsen[level=0]/dedup x1"), depth-first.
/// Timing-free, so two sessions with identical control flow compare equal;
/// used by the determinism tests.
[[nodiscard]] std::string span_paths();

}  // namespace hp::obs

// --- Instrumentation macros -------------------------------------------------

#if defined(HP_TELEMETRY_OFF)

#define HP_SPAN(...) ((void)0)
#define HP_COUNTER_ADD(name, delta) ((void)0)
#define HP_GAUGE_SET(name, value) ((void)0)
#define HP_GAUGE_MAX(name, value) ((void)0)
#define HP_TELEMETRY_ONLY(...)

#else

#define HP_OBS_CONCAT2(a, b) a##b
#define HP_OBS_CONCAT(a, b) HP_OBS_CONCAT2(a, b)

/// Open a scoped span; arguments are forwarded to hp::obs::span_name and
/// only evaluated when telemetry is enabled.
#define HP_SPAN(...)                                        \
  ::hp::obs::Span HP_OBS_CONCAT(hp_obs_span_, __LINE__)(    \
      ::hp::obs::enabled() ? ::hp::obs::span_name(__VA_ARGS__) \
                           : ::std::string())

#define HP_COUNTER_ADD(name, delta)                          \
  do {                                                       \
    if (::hp::obs::enabled()) ::hp::obs::counter_add((name), (delta)); \
  } while (0)

#define HP_GAUGE_SET(name, value)                            \
  do {                                                       \
    if (::hp::obs::enabled()) ::hp::obs::gauge_set((name), (value)); \
  } while (0)

#define HP_GAUGE_MAX(name, value)                            \
  do {                                                       \
    if (::hp::obs::enabled()) ::hp::obs::gauge_max((name), (value)); \
  } while (0)

/// Statements that exist only to feed telemetry (cheap per-phase local
/// bookkeeping); compiled out together with the macros above.
#define HP_TELEMETRY_ONLY(...) __VA_ARGS__

#endif  // HP_TELEMETRY_OFF
