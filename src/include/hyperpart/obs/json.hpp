#pragma once
// Minimal JSON value type shared by the telemetry emitter, the
// hyperbench_diff gating tool, and the telemetry tests.
//
// Deliberately tiny: objects preserve insertion order (so emitted
// telemetry files are stable and diffable), numbers remember whether they
// were written as integers (so round-tripping a counters map does not turn
// 42 into 42.0), and the parser reports line/column on malformed input.
// \uXXXX escapes (including surrogate pairs) decode to UTF-8 — hyperpartd
// feeds this parser untrusted client JSON — and malformed escapes are
// parse errors. This is still not a general-purpose JSON library (no
// streaming, emitted non-ASCII bytes pass through raw), but it round-trips
// everything this repo writes (BENCH_*.json and telemetry files) and
// everything a well-formed client sends.

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace hp::obs::json {

class Value;

using Array = std::vector<Value>;
/// Insertion-ordered object; keys are unique (later set() overwrites).
using Object = std::vector<std::pair<std::string, Value>>;

enum class Type : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

class Value {
 public:
  Value() = default;
  Value(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)
  Value(bool b) : type_(Type::kBool), bool_(b) {}  // NOLINT
  Value(double d) : type_(Type::kNumber), num_(d) {}  // NOLINT
  Value(std::int64_t i)  // NOLINT(google-explicit-constructor)
      : type_(Type::kNumber), num_(static_cast<double>(i)), int_(i),
        is_int_(true) {}
  Value(int i) : Value(static_cast<std::int64_t>(i)) {}  // NOLINT
  Value(std::uint64_t u)  // NOLINT(google-explicit-constructor)
      : Value(static_cast<std::int64_t>(u)) {}
  Value(std::string s) : type_(Type::kString), str_(std::move(s)) {}  // NOLINT
  Value(const char* s) : Value(std::string(s)) {}  // NOLINT
  Value(Array a) : type_(Type::kArray), arr_(std::move(a)) {}  // NOLINT
  Value(Object o) : type_(Type::kObject), obj_(std::move(o)) {}  // NOLINT

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::kNull; }
  [[nodiscard]] bool is_number() const noexcept {
    return type_ == Type::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return type_ == Type::kString;
  }
  [[nodiscard]] bool is_array() const noexcept { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const noexcept {
    return type_ == Type::kObject;
  }

  [[nodiscard]] bool as_bool() const { return bool_; }
  [[nodiscard]] double as_double() const { return num_; }
  [[nodiscard]] std::int64_t as_int() const {
    return is_int_ ? int_ : static_cast<std::int64_t>(num_);
  }
  [[nodiscard]] bool is_integral() const noexcept { return is_int_; }
  [[nodiscard]] const std::string& as_string() const { return str_; }
  [[nodiscard]] const Array& as_array() const { return arr_; }
  [[nodiscard]] Array& as_array() { return arr_; }
  [[nodiscard]] const Object& as_object() const { return obj_; }
  [[nodiscard]] Object& as_object() { return obj_; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(const std::string& key) const;
  /// Insert-or-overwrite an object member, preserving insertion order.
  void set(const std::string& key, Value v);

  /// Structural equality (numbers compare by value; 2 == 2.0).
  [[nodiscard]] bool operator==(const Value& o) const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::int64_t int_ = 0;
  bool is_int_ = false;
  std::string str_;
  Array arr_;
  Object obj_;
};

/// Parse a complete JSON document; throws std::runtime_error with a
/// line:column locator on malformed input or trailing garbage.
[[nodiscard]] Value parse(const std::string& text);

/// Parse the file at `path`; throws std::runtime_error (prefixed with the
/// path) when unreadable or malformed.
[[nodiscard]] Value parse_file(const std::string& path);

/// Serialize with 2-space indentation and a trailing newline.
[[nodiscard]] std::string dump(const Value& v);

}  // namespace hp::obs::json
