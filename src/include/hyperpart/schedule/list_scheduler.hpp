#pragma once
// List scheduling (Graham) for unit-time precedence-constrained tasks.
//
// Greedy schedules are dominant for unit execution times: if a processor
// would idle while a ready task exists, running the task earlier never
// increases the makespan. List scheduling therefore gives an optimal number
// of busy steps when priorities are chosen well, and in general a
// (2 − 1/k)-approximation of μ. With a fixed processor assignment it yields
// an upper bound on μ_p.

#include <vector>

#include "hyperpart/core/partition.hpp"
#include "hyperpart/dag/dag.hpp"
#include "hyperpart/schedule/schedule.hpp"

namespace hp {

/// Priority used to order ready tasks: highest level first breaks ties well
/// on tree-like DAGs, kTopological keeps input order.
enum class ListPriority : std::uint8_t {
  kHighestLevelFirst,
  kTopological,
};

/// List-schedule `dag` on k processors. Returns a valid schedule; its
/// makespan upper-bounds μ.
[[nodiscard]] Schedule list_schedule(const Dag& dag, PartId k,
                                     ListPriority prio =
                                         ListPriority::kHighestLevelFirst);

/// List-schedule with a fixed processor assignment p: each step, every
/// processor runs at most one ready node of its own part. Upper-bounds μ_p.
[[nodiscard]] Schedule list_schedule_fixed(const Dag& dag, const Partition& p,
                                           ListPriority prio =
                                               ListPriority::kHighestLevelFirst);

}  // namespace hp
