#pragma once
// Coffman–Graham two-processor scheduling [13].
//
// For k = 2 and unit tasks, Coffman–Graham labeling followed by
// highest-label-first list scheduling achieves the optimal makespan μ.
// This is one of the special cases where computing μ is polynomial although
// computing μ_p is NP-hard (Theorem 5.5).

#include "hyperpart/dag/dag.hpp"
#include "hyperpart/schedule/schedule.hpp"

namespace hp {

/// Coffman–Graham labels: label[v] in [1, n], computed bottom-up with the
/// lexicographic rule over successor label sets.
[[nodiscard]] std::vector<std::uint32_t> coffman_graham_labels(const Dag& dag);

/// Optimal 2-processor schedule of `dag` (unit tasks).
[[nodiscard]] Schedule coffman_graham_schedule(const Dag& dag);

/// Optimal two-processor makespan μ.
[[nodiscard]] std::uint32_t optimal_makespan_two_processors(const Dag& dag);

}  // namespace hp
