#pragma once
// Exact optimal makespan μ by state-space search.
//
// For unit tasks, greedy schedules (no processor idles while a ready task
// exists) are dominant, so an optimal schedule runs min(k, |ready|) tasks
// per step. We BFS over bitmask states of completed nodes; limited to
// n ≤ 62 nodes. Used as ground truth for Coffman–Graham / Hu in tests and
// for small instances of the schedule-based balance constraint (Def. 5.4).

#include <cstdint>
#include <optional>

#include "hyperpart/dag/dag.hpp"

namespace hp {

struct ExactMakespanResult {
  std::uint32_t makespan = 0;
  /// Number of BFS states expanded; a proxy for search difficulty
  /// (compared against μ_p search in the Theorem 5.5 benchmark).
  std::uint64_t states_expanded = 0;
};

/// Optimal makespan of `dag` on k processors, or nullopt when the search
/// exceeds `max_states`. Requires n ≤ 62.
[[nodiscard]] std::optional<ExactMakespanResult> exact_makespan(
    const Dag& dag, PartId k, std::uint64_t max_states = 50'000'000);

}  // namespace hp
