#pragma once
// Hu's algorithm for unit-time forests [22].
//
// Highest-level-first list scheduling is optimal for in-forests (every node
// has out-degree ≤ 1). Out-forests — the "out-trees" of Theorem 5.5, where
// every node has in-degree ≤ 1 — are handled by reversing the DAG,
// scheduling the resulting in-forest, and reversing time. Together with
// Coffman–Graham this covers the special cases where μ is polynomial while
// μ_p stays NP-hard.

#include "hyperpart/dag/dag.hpp"
#include "hyperpart/schedule/schedule.hpp"

namespace hp {

[[nodiscard]] bool is_in_forest(const Dag& dag);   // out-degree ≤ 1 everywhere
[[nodiscard]] bool is_out_forest(const Dag& dag);  // in-degree ≤ 1 everywhere

/// Optimal schedule of an in-forest or out-forest on k processors.
/// Throws std::invalid_argument when the DAG is neither.
[[nodiscard]] Schedule hu_schedule(const Dag& dag, PartId k);

/// Optimal makespan of a forest DAG on k processors.
[[nodiscard]] std::uint32_t hu_makespan(const Dag& dag, PartId k);

}  // namespace hp
