#pragma once
// BSP-style cost model for a scheduled, partitioned computational DAG —
// the manycore-scheduling application that motivates the paper
// (Section 1; cf. Bisseling [5] and Multi-BSP [48]).
//
// Given a DAG, a schedule (processor + time step per node) and the DAG's
// hyperDAG, the execution decomposes into supersteps; the value a node
// produces must be communicated to every other processor that computes one
// of its successors (exactly the λ_e − 1 transfers the hyperDAG counts).
// The BSP cost of a superstep is w + g·h + l, where w is the maximal work,
// h the maximal number of values a processor sends or receives in the
// communication phase entering the superstep, g the gap and l the latency.

#include <cstdint>
#include <vector>

#include "hyperpart/dag/dag.hpp"
#include "hyperpart/schedule/schedule.hpp"

namespace hp {

struct BspParams {
  double g = 1.0;  // per-value communication gap
  double l = 0.0;  // per-superstep latency
};

struct BspCostBreakdown {
  std::uint32_t supersteps = 0;
  std::uint64_t total_work = 0;        // Σ per-superstep max work
  std::uint64_t total_h_relation = 0;  // Σ per-superstep max send/recv
  std::uint64_t total_values_moved = 0;  // Σ_e (λ_e − 1) over cut values
  double total_cost = 0.0;             // Σ (w + g·h + l)
};

/// Evaluate the BSP cost of a valid schedule on k processors. Each time
/// step is one superstep; a produced value is sent (once per consumer
/// processor) in the communication phase before its first remote use.
[[nodiscard]] BspCostBreakdown bsp_cost(const Dag& dag, const Schedule& s,
                                        PartId k, const BspParams& params);

}  // namespace hp
