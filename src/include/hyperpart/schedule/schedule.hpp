#pragma once
// Schedules of computational DAGs (Definition 5.3).
//
// A scheduling assigns every node a processor p(v) ∈ [k] and a time step
// t(v) ∈ Z+ such that no two nodes share a (processor, time) slot and every
// edge satisfies t(u) < t(v). All tasks are unit time. The makespan is
// max_v t(v); μ denotes the optimal makespan over all schedules and μ_p the
// optimal makespan when the processor assignment p is fixed (Section 5.2).

#include <cstdint>
#include <vector>

#include "hyperpart/core/partition.hpp"
#include "hyperpart/dag/dag.hpp"

namespace hp {

struct Schedule {
  std::vector<PartId> proc;          // processor of each node
  std::vector<std::uint32_t> time;   // 1-based time step of each node

  [[nodiscard]] std::uint32_t makespan() const;
};

/// Check Definition 5.3: correct (slots unique) + precedence-respecting.
[[nodiscard]] bool valid_schedule(const Dag& dag, const Schedule& s, PartId k);

/// True when schedule s realizes partition p (s.proc == p).
[[nodiscard]] bool realizes_partition(const Schedule& s, const Partition& p);

/// Trivial lower bounds on μ: max(⌈n/k⌉, longest path length).
[[nodiscard]] std::uint32_t makespan_lower_bound(const Dag& dag, PartId k);

/// Lower bound on μ_p for a fixed partition: max(per-processor load,
/// longest path length).
[[nodiscard]] std::uint32_t fixed_partition_lower_bound(const Dag& dag,
                                                        const Partition& p);

}  // namespace hp
