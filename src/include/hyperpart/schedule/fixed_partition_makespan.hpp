#pragma once
// Exact μ_p: optimal makespan with a fixed processor assignment.
//
// Theorem 5.5 shows computing μ_p is NP-hard already for k = 2, even for
// out-trees, level-order or bounded-height DAGs — so exponential search is
// expected. The same greedy dominance as for μ holds per processor (a
// processor never idles while one of its own nodes is ready), so we BFS
// over completion bitmasks, branching over one ready node per non-idle
// processor. Provides the feasibility check for the schedule-based balance
// constraint (Definition 5.4).

#include <cstdint>
#include <optional>

#include "hyperpart/core/partition.hpp"
#include "hyperpart/dag/dag.hpp"
#include "hyperpart/schedule/exact_makespan.hpp"

namespace hp {

/// Optimal makespan for the fixed assignment p, or nullopt when the search
/// exceeds `max_states`. Requires n ≤ 62.
[[nodiscard]] std::optional<ExactMakespanResult> exact_fixed_makespan(
    const Dag& dag, const Partition& p,
    std::uint64_t max_states = 50'000'000);

/// Schedule-based balance feasibility (Definition 5.4): μ_p ≤ (1+ε)·μ.
/// Uses exact search for both quantities; nullopt when either search
/// exceeds its budget.
[[nodiscard]] std::optional<bool> schedule_based_feasible(
    const Dag& dag, const Partition& p, double epsilon,
    std::uint64_t max_states = 50'000'000);

}  // namespace hp
