#pragma once
// Application-shaped workload catalogue.
//
// Every solver stack in this repo is correctness-gated on theorem gadgets
// and uniform random hypergraphs; real partitioning traffic looks nothing
// like either. This catalogue generates the classic application shapes the
// paper's cost models were built for, as seeded deterministic functions
// WorkloadSpec -> Hypergraph:
//
//   spmv      sparse-matrix instances through the row-net model (one node
//             per column, one net per matrix row; node weight = nonzeros of
//             the column, i.e. the work its owner performs). Patterns:
//             banded, block-diagonal with coupling, and Kronecker/R-MAT
//             style skewed row structure.
//   netlist   VLSI-style netlists: mostly 2-4 pin nets drawn inside a
//             placement-locality window (Rent's-rule flavour), a geometric
//             tail of larger nets, and a few very high degree power/clock
//             nets spanning a fixed fraction of all cells.
//   dataflow  DNN/dataflow hyperDAGs from layered block templates (MLP,
//             1-D conv stack with downsampling, sparse-attention blocks).
//             Emitted through the Definition 3.2 DAG -> hyperDAG round
//             trip, so acyclicity — and Lemma B.2 recognition — hold by
//             construction; the underlying Dag rides along for
//             schedule/BSP evaluation.
//   powerlaw  skewed power-law degree streams in arrival order for the
//             streaming partitioner: pin popularity follows a truncated
//             Pareto law, with presets controlling where the hubs sit in
//             the arrival sequence.
//
// Determinism contract: a Workload is a pure function of (family, preset,
// target size, seed). Generators draw every item's randomness from an
// independent stream keyed (seed, family tag, item index), and parallel
// fill uses the fixed-grain pool primitives, so the result is bit-identical
// at any thread count — the same contract the partitioners themselves obey,
// and what lets the fuzz oracle replay workload instances from two
// integers.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "hyperpart/core/hypergraph.hpp"
#include "hyperpart/dag/dag.hpp"

namespace hp::workload {

enum class Family : std::uint8_t {
  kSpmv,      ///< row-net sparse-matrix instances
  kNetlist,   ///< VLSI-style netlists
  kDataflow,  ///< DNN/dataflow hyperDAGs (DAG rides along)
  kPowerLaw,  ///< skewed power-law arrival streams
};

inline constexpr Family kAllFamilies[] = {
    Family::kSpmv, Family::kNetlist, Family::kDataflow, Family::kPowerLaw};

[[nodiscard]] const char* to_string(Family f) noexcept;
/// Parse "spmv" / "netlist" / "dataflow" / "powerlaw"; throws
/// std::invalid_argument on unknown names.
[[nodiscard]] Family family_from_string(const std::string& name);

/// Presets of a family, in catalogue order (first = default).
[[nodiscard]] const std::vector<std::string>& presets(Family f);

/// Complete problem statement of one catalogue instance.
struct WorkloadSpec {
  Family family = Family::kSpmv;
  /// Family-specific pattern; "" selects the family's first preset.
  std::string preset;
  /// Multiplies the preset's base node count (ignored when target_nodes
  /// is set). Must be >= 1.
  std::uint32_t scale = 1;
  /// Approximate node count override; 0 = preset base x scale. The fuzz
  /// generators use this to shrink families to oracle-sized instances.
  NodeId target_nodes = 0;
  std::uint64_t seed = 1;
  /// Generation parallelism (0 = default_threads()). Never changes the
  /// result — see the determinism contract above.
  unsigned threads = 1;
};

/// A generated instance: the hypergraph plus the family's extras.
struct Workload {
  std::string name;  ///< "family:preset" of the generating spec
  Hypergraph graph;
  /// Dataflow family only: the computational DAG whose hyperDAG `graph`
  /// is (same node ids), for schedule construction and BSP costing.
  std::optional<Dag> dag;
  PartId suggested_k = 8;
  double suggested_eps = 0.05;
};

/// Parse "family:preset" or "family:preset@scale" (e.g. "spmv:banded",
/// "netlist:rent@4"). Throws std::invalid_argument with a one-line message
/// on an unknown family, unknown preset, missing ':' or scale < 1.
[[nodiscard]] WorkloadSpec parse_spec(const std::string& text);

/// Generate the instance for `spec`. Throws std::invalid_argument on an
/// unknown preset (parse_spec-produced specs are always valid).
[[nodiscard]] Workload generate(const WorkloadSpec& spec);

/// Every "family:preset" pair, families in declaration order.
[[nodiscard]] std::vector<std::string> catalogue();

}  // namespace hp::workload
