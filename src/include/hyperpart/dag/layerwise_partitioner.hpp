#pragma once
// Practical layer-wise balanced hyperDAG partitioning (Section 5.1).
//
// Packaging of the pipeline the paper motivates: build the layer balance
// groups from a layering, seed a layer-feasible assignment (round-robin
// within each layer), and refine with the multi-constraint-aware FM —
// multi-started over seeds. Layer-wise optimality is inapproximable
// (Theorem 5.2), so this is deliberately a heuristic.

#include <optional>

#include "hyperpart/algo/fm_refiner.hpp"
#include "hyperpart/core/partition.hpp"
#include "hyperpart/dag/dag.hpp"
#include "hyperpart/dag/layering.hpp"

namespace hp {

struct LayerwisePartitionResult {
  Partition partition;
  Weight cost = 0;
};

struct LayerwiseConfig {
  CostMetric metric = CostMetric::kConnectivity;
  double epsilon = 0.1;
  int starts = 4;
  FmConfig fm{};
  std::uint64_t seed = 1;
};

/// Partition the hyperDAG `graph` of `dag` into k parts with every layer of
/// `layers` balanced (Definition 5.1 with relaxed ceilings). Returns the
/// best of `starts` multi-started runs.
[[nodiscard]] std::optional<LayerwisePartitionResult>
layerwise_partition(const Hypergraph& graph, const Dag& dag,
                    const Layering& layers, PartId k,
                    const LayerwiseConfig& cfg = {});

}  // namespace hp
