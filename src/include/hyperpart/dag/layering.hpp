#pragma once
// Layerings and layer-wise balance constraints (Section 5.1).
//
// A layering assigns each DAG node a layer in [0, ℓ) with ℓ the longest-path
// length, such that every edge goes strictly forward. Nodes on maximal paths
// are pinned (earliest = latest layer); the rest are flexible, which defines
// the flexible-layering variant of the partitioning problem.

#include <vector>

#include "hyperpart/core/balance.hpp"
#include "hyperpart/dag/dag.hpp"

namespace hp {

using Layering = std::vector<std::uint32_t>;

/// True when `layers` is a valid layering of `dag` (Definition in Sec. 5.1):
/// layers in [0, ℓ), strictly increasing along every edge.
[[nodiscard]] bool valid_layering(const Dag& dag, const Layering& layers);

/// Group nodes by layer: result[j] lists the nodes of layer j.
[[nodiscard]] std::vector<std::vector<NodeId>> layer_sets(
    const Dag& dag, const Layering& layers);

/// Layer-wise constraints (Definition 5.1) for a given layering: one balance
/// group per layer, cap (1+eps)·|V_j|/k each. `relaxed` uses ceilings, which
/// Appendix A recommends for degenerate (tiny) layers.
[[nodiscard]] ConstraintSet layerwise_constraints(const Hypergraph& g,
                                                  const Dag& dag,
                                                  const Layering& layers,
                                                  PartId k, double epsilon,
                                                  bool relaxed = true);

/// Number of flexible nodes (earliest < latest layer).
[[nodiscard]] std::size_t num_flexible_nodes(const Dag& dag);

/// Enumerate all valid layerings of `dag` by ranging every flexible node
/// over [earliest, latest] and keeping edge-valid combinations. Exponential;
/// guarded by `max_results`. Used for the flexible-layering experiments.
[[nodiscard]] std::vector<Layering> enumerate_layerings(
    const Dag& dag, std::size_t max_results = 100000);

}  // namespace hp
