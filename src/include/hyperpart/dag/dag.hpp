#pragma once
// Computational DAGs (Section 3.2).
//
// Nodes are computation steps; a directed edge (u, v) means the output of u
// is an input of v. Stored CSR-style in both directions. Construction from
// an edge list verifies acyclicity on demand.

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "hyperpart/core/hypergraph.hpp"  // NodeId

namespace hp {

class Dag {
 public:
  Dag() = default;

  /// Build from a directed edge list. Duplicate edges are removed.
  /// Throws std::invalid_argument if an endpoint is out of range or the
  /// graph contains a directed cycle.
  static Dag from_edges(NodeId num_nodes,
                        std::vector<std::pair<NodeId, NodeId>> edges);

  [[nodiscard]] NodeId num_nodes() const noexcept {
    return static_cast<NodeId>(succ_offsets_.size() - 1);
  }
  [[nodiscard]] std::uint64_t num_edges() const noexcept {
    return succ_.size();
  }

  [[nodiscard]] std::span<const NodeId> successors(NodeId v) const noexcept {
    return {succ_.data() + succ_offsets_[v],
            succ_.data() + succ_offsets_[v + 1]};
  }
  [[nodiscard]] std::span<const NodeId> predecessors(NodeId v) const noexcept {
    return {pred_.data() + pred_offsets_[v],
            pred_.data() + pred_offsets_[v + 1]};
  }
  [[nodiscard]] std::uint32_t out_degree(NodeId v) const noexcept {
    return static_cast<std::uint32_t>(succ_offsets_[v + 1] - succ_offsets_[v]);
  }
  [[nodiscard]] std::uint32_t in_degree(NodeId v) const noexcept {
    return static_cast<std::uint32_t>(pred_offsets_[v + 1] - pred_offsets_[v]);
  }

  [[nodiscard]] std::vector<NodeId> sources() const;
  [[nodiscard]] std::vector<NodeId> sinks() const;

  /// A topological order of the nodes (sources first).
  [[nodiscard]] std::vector<NodeId> topological_order() const;

  /// Number of nodes on a longest directed path (= number of layers ℓ).
  [[nodiscard]] std::uint32_t longest_path_nodes() const;

  /// Earliest layer of each node, 0-based: sources in layer 0, and every
  /// node in the lowest layer above all its predecessors (Section 5.1).
  [[nodiscard]] std::vector<std::uint32_t> earliest_layers() const;

  /// Latest layer of each node, 0-based, with ℓ−1 for nodes that end
  /// maximal paths. Together with earliest_layers() this bounds the layers
  /// a node may take in a flexible layering.
  [[nodiscard]] std::vector<std::uint32_t> latest_layers() const;

  /// Directed edge list (u, v) in unspecified order.
  [[nodiscard]] std::vector<std::pair<NodeId, NodeId>> edge_list() const;

 private:
  std::vector<std::uint64_t> succ_offsets_{0};
  std::vector<NodeId> succ_;
  std::vector<std::uint64_t> pred_offsets_{0};
  std::vector<NodeId> pred_;
};

}  // namespace hp
