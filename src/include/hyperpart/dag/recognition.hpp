#pragma once
// Linear-time hyperDAG recognition (Lemmas B.1 and B.2).
//
// Characterization (Lemma B.1): a hypergraph is a hyperDAG iff every induced
// subgraph has a node of degree ≤ 1. Algorithm (Lemma B.2): greedily peel
// degree-≤1 nodes — a degree-1 node becomes the generator of its single
// remaining hyperedge, which is removed with it; the hypergraph is a
// hyperDAG iff all hyperedges get removed. Runs in O(ρ) with degree buckets.

#include <vector>

#include "hyperpart/core/hypergraph.hpp"
#include "hyperpart/dag/hyperdag.hpp"

namespace hp {

struct RecognitionResult {
  bool is_hyperdag = false;
  /// On success: generator node of every hyperedge, in peel order semantics
  /// (the peel order is a reverse topological order of the recovered DAG).
  std::vector<NodeId> generator;
  /// On failure: a node set inducing a subgraph with all degrees ≥ 2
  /// (a witness violating the Lemma B.1 characterization).
  std::vector<NodeId> violating_subset;
};

/// Decide whether g is the hyperDAG of some computational DAG, recovering a
/// generator assignment (success) or a violating induced subgraph (failure).
[[nodiscard]] RecognitionResult recognize_hyperdag(const Hypergraph& g);

/// Convenience wrapper.
[[nodiscard]] bool is_hyperdag(const Hypergraph& g);

/// Slow reference check of the Lemma B.1 characterization by explicit
/// enumeration of induced subgraphs; exponential, for tests on tiny inputs.
[[nodiscard]] bool characterization_holds_bruteforce(const Hypergraph& g);

}  // namespace hp
