#pragma once
// HyperDAGs (Definition 3.2, Appendix B).
//
// The hyperDAG of a computational DAG G has the same node set, and one
// hyperedge {u} ∪ S_u per non-sink node u, where S_u are u's immediate
// successors: the hyperedge stands for the unit of data u produces, and
// λ_e − 1 is the exact number of transfers needed to deliver it (Sec. 3.2).
// Size-1 hyperedges (sinks) are dropped as in Appendix B, so the hyperDAG
// has exactly n − |V_sink| hyperedges.

#include <vector>

#include "hyperpart/core/hypergraph.hpp"
#include "hyperpart/dag/dag.hpp"

namespace hp {

/// A hypergraph together with its generator assignment: generator[e] is the
/// DAG node whose output hyperedge e represents.
struct HyperDag {
  Hypergraph graph;
  std::vector<NodeId> generator;

  /// Reconstruct the computational DAG (generator → other pins).
  [[nodiscard]] Dag to_dag() const;
};

/// Definition 3.2: convert a computational DAG into its hyperDAG.
[[nodiscard]] HyperDag to_hyperdag(const Dag& dag);

/// The Hendrickson–Kolda hyperization discussed at the start of Appendix B:
/// one hyperedge per node u containing u, its immediate predecessors and its
/// immediate successors. Kept as the strawman model whose cut count can
/// overestimate true communication by a Θ(m) factor.
[[nodiscard]] Hypergraph hendrickson_kolda_hypergraph(const Dag& dag);

/// The densest possible hyperDAG on n nodes (Appendix B.1): hyperedges
/// {v_i, …, v_{n−1}} for i = 0..n−2, giving degree sequence
/// (1, 2, …, n−2, n−1, n−1). These serve as the "hyperDAG blocks" of
/// Lemma B.3 and of the hierarchical constructions (Appendix I.1).
[[nodiscard]] HyperDag densest_hyperdag(NodeId n);

/// Check that `generator` is a valid generator assignment for `g`:
/// one distinct generator per hyperedge, each a pin of its edge, and the
/// induced directed graph acyclic.
[[nodiscard]] bool valid_generator_assignment(
    const Hypergraph& g, const std::vector<NodeId>& generator);

}  // namespace hp
