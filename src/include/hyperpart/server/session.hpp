#pragma once
// Per-graph session state of the hyperpartd partitioning service.
//
// A GraphSession owns one loaded hypergraph (materialized once — HPBH files
// are mmapped via stream::MappedHypergraph and copied into an in-memory
// Hypergraph so weights can mutate in place while the object keeps its
// address) plus a cache of partitioning results keyed by the request config
// (k, ε, metric, seed). Each cache entry stores the coarsening hierarchy,
// the final partition + cost, and a live ConnectivityTracker reflecting
// that partition — the state that makes `repartition` after an `update`
// cheap.
//
// Concurrency model (enforced by the Server, asserted here):
//   * at most ONE mutator (partition / repartition / update) per session at
//     a time, admitted through try_acquire_mutator() — a second concurrent
//     mutator is rejected with a "busy" error, never queued;
//   * any number of readers (evaluate / stats) run concurrently with the
//     mutator: readers hold the shared lock and only ever touch the graph,
//     and the committed (partition, cost) snapshots;
//   * the mutator computes under the *shared* lock — cached trackers and
//     hierarchies are touched exclusively by the single admitted mutator,
//     so readers never observe them — and commits results under a brief
//     unique lock. `update` takes the unique lock for its whole (short)
//     critical section since it writes the graph itself.
//
// Repartition fallback ladder (documented in DESIGN.md):
//   1. ΔFM      — change fraction ≤ kDeltaFmMaxFraction and a cached
//                 tracker exists: patch/rebuild the tracker, restore
//                 balance, boundary-FM. No coarsening at all.
//   2. V-cycle  — change fraction ≤ kVcycleMaxFraction: partition-aware
//                 V-cycles seeded from the cached partition.
//   3. full     — fresh multilevel run (also the fallback whenever a rung
//                 fails to produce a feasible partition).
// Quality guard: rungs 1 and 2 escalate rather than commit a result worse
// than 3 · before + 4, where `before` is the cached partition's cost on the
// current graph. Combined with rung 3 being a deterministic from-scratch
// run, every repartition satisfies
//   cost ≤ max(3 · before + 4, cost of a fresh multilevel run)
// — the bound the fuzz oracle's `incremental` leg enforces.
//
// Structural deltas (add_net / remove_net / add_pins / remove_pins) keep
// the node set fixed: removed nets are tombstoned (empty pins, weight 0,
// id preserved), new nets append at ids m, m+1, …. Cached partitions
// therefore stay complete across structural updates, and fresh trackers
// are patched per touched net (begin/finish_structural_patch) rather than
// rebuilt — unless the batch's pin volume exceeds
// kStructuralPatchMaxFraction of ρ, in which case trackers are marked
// stale and the ladder's existing rebuild path takes over. Every
// successful update bumps the session's monotone version(), echoed in all
// responses; evaluate can pin an expected version (optimistic snapshot
// read).

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <span>
#include <string>
#include <vector>

#include "hyperpart/algo/multilevel.hpp"
#include "hyperpart/core/balance.hpp"
#include "hyperpart/core/connectivity_tracker.hpp"
#include "hyperpart/core/metrics.hpp"
#include "hyperpart/core/partition.hpp"
#include "hyperpart/util/shared_mutex.hpp"

namespace hp::server {

/// Change-fraction thresholds of the repartition ladder.
inline constexpr double kDeltaFmMaxFraction = 0.05;
inline constexpr double kVcycleMaxFraction = 0.5;

/// Patchability threshold of structural updates: when the pin volume a
/// batch touches (old pins + new pins of rewritten nets, plus appended
/// pins) exceeds this fraction of the graph's total pins, cached trackers
/// are marked stale instead of patched per net — past that point the
/// O(touched-pins · k) repair approaches the O(ρ) from-partition rebuild
/// that staleness already buys, with none of the rebuild's simplicity.
inline constexpr double kStructuralPatchMaxFraction = 0.2;

/// Request-side partitioning config. (k, epsilon, metric, seed) key the
/// session cache; `threads` deliberately does not — every algorithm in this
/// repo produces thread-count-invariant results.
struct SessionConfig {
  PartId k = 2;
  double epsilon = 0.05;
  CostMetric metric = CostMetric::kConnectivity;
  std::uint64_t seed = 1;
  unsigned threads = 1;
};

/// One node- or edge-weight change of an `update` request.
struct WeightUpdate {
  std::uint32_t id = 0;
  Weight weight = 0;
};

/// One structural change of an `update` request. A batch of these is
/// validated as a whole against the prospective final state (see
/// GraphSession::update) and applied atomically: any invalid delta rejects
/// the entire batch before a single mutation lands.
struct StructuralDelta {
  enum class Kind {
    kAddNet,      ///< append a new net with `pins` (ids m, m+1, … in order)
    kRemoveNet,   ///< tombstone net `net` (empty pin list, weight 0)
    kAddPins,     ///< add `pins` to net `net`; each must be absent
    kRemovePins,  ///< remove `pins` from net `net`; each must be present
  };
  Kind kind = Kind::kAddNet;
  EdgeId net = kInvalidEdge;   ///< target net (all kinds except kAddNet)
  std::vector<NodeId> pins;
  Weight weight = 1;           ///< kAddNet only
};

/// Result of partition / repartition / evaluate.
struct PartitionOutcome {
  bool ok = false;
  std::string error;
  /// "cached" | "delta_fm" | "vcycle" | "full" | "hierarchy" — which rung
  /// produced the result.
  std::string method;
  bool cache_hit = false;
  Weight cost = 0;
  std::vector<Weight> part_weights;
  bool balanced = false;
  double change_fraction = 0.0;
  /// Graph version the result was computed against (monotone, bumped by
  /// every successful update).
  std::uint64_t version = 0;
  /// Final assignment (copy; empty for evaluate unless requested).
  std::vector<PartId> parts;
};

struct UpdateOutcome {
  bool ok = false;
  std::string error;
  std::uint64_t applied = 0;     ///< weight + structural deltas applied
  std::uint64_t structural = 0;  ///< structural deltas among them
  double change_fraction = 0.0;  ///< accumulated units / (n + m), max entry
  std::uint64_t version = 0;     ///< graph version after the update
  /// How cached trackers absorbed the structural part: per-net patch or
  /// staleness fallback (batch exceeded kStructuralPatchMaxFraction).
  std::uint64_t trackers_patched = 0;
  std::uint64_t trackers_staled = 0;
};

class GraphSession {
 public:
  /// Load from an HPBH binary file (mmapped once, then materialized) or an
  /// hMETIS text file. Throws std::runtime_error / std::invalid_argument on
  /// unreadable or malformed input.
  static std::unique_ptr<GraphSession> from_file(const std::string& path);

  /// Wrap an in-memory graph (tests, benches).
  static std::unique_ptr<GraphSession> from_graph(Hypergraph g,
                                                  std::string name);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] NodeId num_nodes() const noexcept { return g_.num_nodes(); }
  [[nodiscard]] EdgeId num_edges() const noexcept { return g_.num_edges(); }
  /// Current content hash (maintained across updates).
  [[nodiscard]] std::uint64_t graph_hash() const noexcept {
    return graph_hash_;
  }
  /// Monotone graph version: 0 at load, +1 per successful update (weight or
  /// structural). Echoed in every response frame so clients can correlate
  /// results with the snapshot they were computed against.
  [[nodiscard]] std::uint64_t version() const noexcept {
    return version_.load(std::memory_order_acquire);
  }
  /// True when net e has been tombstoned by a remove_net delta.
  [[nodiscard]] bool net_removed(EdgeId e) const noexcept {
    return e < net_removed_.size() && net_removed_[e] != 0;
  }

  // --- Mutator admission ---------------------------------------------------

  /// Claim the session's single mutator slot; false = someone else holds it
  /// (callers answer "busy", they never block).
  [[nodiscard]] bool try_acquire_mutator() noexcept {
    return !mutating_.exchange(true, std::memory_order_acquire);
  }
  void release_mutator() noexcept {
    mutating_.store(false, std::memory_order_release);
  }

  // --- Operations ----------------------------------------------------------

  /// Full-service partition: cache hit when this exact graph content was
  /// already partitioned under cfg; after a small weight-only change, the
  /// cached hierarchy is reused (no coarsening) with a feasibility
  /// post-check; otherwise a fresh multilevel run. Requires the mutator
  /// slot. `include_parts` controls whether the assignment is copied into
  /// the outcome.
  [[nodiscard]] PartitionOutcome partition(const SessionConfig& cfg,
                                           bool include_parts = true);

  /// Incremental repartition via the ΔFM → V-cycle → full ladder (see file
  /// header). Requires the mutator slot.
  [[nodiscard]] PartitionOutcome repartition(const SessionConfig& cfg,
                                             bool include_parts = true);

  /// Apply one update batch — weight changes plus structural deltas — in
  /// place. The whole batch is validated against the prospective final
  /// state before any mutation (atomicity: an invalid delta, including
  /// remove_net / remove_pins on an already-removed net, rejects the batch
  /// with no effect). Node-weight changes patch cached trackers' part
  /// weights; edge-weight changes mark trackers stale. Structural deltas
  /// patch each fresh tracker per touched net (begin/finish_structural_patch)
  /// while the graph rebuilds its CSR in place, falling back to staleness
  /// when the batch's pin volume exceeds kStructuralPatchMaxFraction of ρ.
  /// Structural deltas are applied in the order given; appended nets take
  /// ids m, m+1, … and cannot be targeted by other deltas of the same
  /// batch. Bumps version() on success. Requires the mutator slot.
  [[nodiscard]] UpdateOutcome update(
      std::span<const WeightUpdate> node_updates,
      std::span<const WeightUpdate> edge_updates,
      std::span<const StructuralDelta> structural = {});

  /// Reader: cost/balance of the cached partition for cfg against the
  /// *current* graph (recomputed when the graph changed since commit).
  /// `expected_version`, when set, makes the read conditional: if a
  /// mutation has moved version() past it, the call fails with a version
  /// mismatch instead of silently answering against the newer snapshot —
  /// optimistic snapshot pinning at single-update granularity.
  [[nodiscard]] PartitionOutcome evaluate(
      const SessionConfig& cfg, bool include_parts = false,
      std::optional<std::uint64_t> expected_version = std::nullopt);

  /// Reader: per-entry cache facts — key, method of last production, cost,
  /// staleness — serialized by the Server into the stats response.
  struct EntryStats {
    PartId k = 0;
    double epsilon = 0.0;
    CostMetric metric = CostMetric::kConnectivity;
    std::uint64_t seed = 0;
    Weight cost = 0;
    std::string method;
    bool tracker_cached = false;
    bool tracker_stale = false;
    std::size_t hierarchy_levels = 0;
    bool current = false;  ///< built against the current graph content
  };
  [[nodiscard]] std::vector<EntryStats> entry_stats() const;

  /// Test/fuzz hook: rebuild every fresh cached tracker from scratch and
  /// compare costs, part weights, and λ values against the incremental
  /// state. Returns false (with a reason) on the first mismatch.
  [[nodiscard]] bool verify_cache_integrity(std::string* why) const;

 private:
  GraphSession(Hypergraph g, std::string name);

  struct CacheKey {
    PartId k;
    std::uint64_t eps_bits;  // bit pattern of epsilon (exact match)
    CostMetric metric;
    std::uint64_t seed;
    bool operator<(const CacheKey& o) const noexcept {
      if (k != o.k) return k < o.k;
      if (eps_bits != o.eps_bits) return eps_bits < o.eps_bits;
      if (metric != o.metric) return metric < o.metric;
      return seed < o.seed;
    }
  };
  static CacheKey key_of(const SessionConfig& cfg);

  struct Entry {
    MultilevelHierarchy hierarchy;
    std::unique_ptr<ConnectivityTracker> tracker;
    bool tracker_stale = false;  ///< edge weights changed since tracker built
    Partition partition;
    Weight cost = 0;
    std::string method;            ///< rung that produced `partition`
    std::uint64_t built_hash = 0;  ///< graph_hash_ at commit time
    std::uint64_t built_units = 0;  ///< change_units_ at commit time
  };

  [[nodiscard]] double fraction_since(const Entry& e) const noexcept {
    const double denom =
        static_cast<double>(g_.num_nodes()) + static_cast<double>(g_.num_edges());
    if (denom == 0) return 0.0;
    return static_cast<double>(change_units_ - e.built_units) / denom;
  }
  [[nodiscard]] MultilevelConfig ml_config(const SessionConfig& cfg) const;
  PartitionOutcome run_full(const SessionConfig& cfg, const CacheKey& key,
                            bool include_parts);
  void commit_entry(const CacheKey& key, Entry entry);
  PartitionOutcome outcome_from(const Entry& e, const SessionConfig& cfg,
                                std::string method, bool cache_hit,
                                double fraction, bool include_parts) const;

  std::string name_;
  Hypergraph g_;  // address-stable: trackers hold references into it
  std::uint64_t graph_hash_ = 0;
  std::uint64_t change_units_ = 0;  ///< update entries applied since load
  /// Monotone snapshot counter; written under the unique lock, read by
  /// anyone (responses echo it without taking the session lock).
  std::atomic<std::uint64_t> version_{0};
  /// Tombstone flags for remove_net'd nets (indexed by net id, lazily
  /// grown). A tombstoned net keeps its id — with an empty pin list and
  /// weight 0 it contributes nothing to either metric — so later deltas
  /// can be validated against it and ids stay stable for clients.
  std::vector<std::uint8_t> net_removed_;

  // Writer-priority: evaluate/stats readers in a tight loop must not
  // starve the mutator's brief commit lock (see util/shared_mutex.hpp).
  mutable WriterPrioritySharedMutex mu_;
  std::atomic<bool> mutating_{false};
  std::map<CacheKey, Entry> cache_;
};

}  // namespace hp::server
