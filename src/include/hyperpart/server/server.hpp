#pragma once
// hyperpartd: the partitioning-as-a-service daemon core.
//
// A Server listens on a unix-domain socket (and optionally a loopback TCP
// port), speaking the length-prefixed JSON frame protocol of protocol.hpp.
// Each accepted connection gets its own I/O thread; heavy compute inside a
// request (coarsening, tracker construction, parallel FM) runs on the
// process-wide persistent ThreadPool through the algorithms' `threads`
// parameter, so connection threads stay cheap blocking-I/O loops.
//
// Requests are JSON objects with an "op" field:
//
//   load         {op, path}                         → create/reuse a session
//   partition    {op, graph, k, epsilon?, metric?, seed?, include_parts?}
//   repartition  same fields — incremental ladder (ΔFM → V-cycle → full)
//   evaluate     {op, graph, k, ..., version?}      → reader, never blocks;
//                `version` pins the expected snapshot (mismatch = error)
//   update       {op, graph, node_weights?: [[id,w]...], edge_weights?: [...],
//                 remove_nets?: [id...], remove_pins?: [{net,pins}...],
//                 add_pins?: [{net,pins}...], add_nets?: [{pins,weight?}...]}
//                one frame = one atomic batch, validated wholly before any
//                mutation; structural deltas apply in the field order above
//   stats        {op, graph?}                       → counters + cache facts
//   shutdown     {op}                               → ack, then stop serving
//
// Every response carries {ok: bool}; failures add {error}. Responses that
// address a loaded graph also echo {version}: the session's monotone graph
// version (bumped by every successful update), identifying the snapshot the
// answer was computed against. Per-graph admission control:
// partition/repartition/update need the session's single mutator slot and
// answer {ok:false, error:"busy: ..."} when a second mutator arrives;
// evaluate/stats run concurrently with a mutator. Full schemas are
// documented in DESIGN.md ("Partitioning service").

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "hyperpart/server/protocol.hpp"
#include "hyperpart/server/session.hpp"

namespace hp::server {

/// Thrown by Server::start() when the configured unix-socket path already
/// exists and is NOT a socket: a mistyped `--socket /some/file` must refuse
/// to start rather than delete a user's file. hyperpartd maps this to a
/// one-line `error:` and exit code 2.
class SocketPathError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct ServerConfig {
  /// Path of the unix-domain listening socket (required; a stale *socket*
  /// left by a previous run is unlinked first, but any other kind of file
  /// at the path makes start() throw SocketPathError).
  std::string unix_socket;
  /// Loopback TCP listener: -1 = disabled, 0 = ephemeral (read the actual
  /// port back via tcp_port()).
  int tcp_port = -1;
  /// Compute threads per request (0 = one per hardware core); forwarded as
  /// the `threads` parameter of every algorithm call.
  unsigned threads = 1;
  std::uint32_t max_frame = kDefaultMaxFrame;
};

class Server {
 public:
  explicit Server(ServerConfig cfg);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen + launch accept threads; throws std::runtime_error when
  /// a socket cannot be bound. Returns once the server is accepting.
  void start();

  /// Block until shutdown() (or a client's shutdown op) and all connection
  /// threads have drained.
  void wait();

  /// Graceful stop: stop accepting, nudge idle connections, let in-flight
  /// requests finish and their responses flush. Safe to call from any
  /// thread (including a connection thread handling a shutdown op).
  void shutdown();

  [[nodiscard]] bool running() const noexcept {
    return !stopping_.load(std::memory_order_acquire);
  }
  /// Actual TCP port after start() (for ServerConfig::tcp_port == 0).
  [[nodiscard]] int tcp_port() const noexcept { return bound_tcp_port_; }
  [[nodiscard]] const std::string& unix_path() const noexcept {
    return cfg_.unix_socket;
  }

  /// Total requests served so far (all ops, including failures).
  [[nodiscard]] std::uint64_t requests_served() const noexcept {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  void accept_loop(int listen_fd);
  void handle_connection(int fd);
  [[nodiscard]] std::string handle_request(const std::string& payload,
                                           bool* request_shutdown);

  ServerConfig cfg_;
  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  int bound_tcp_port_ = -1;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> requests_{0};

  std::mutex threads_mu_;
  std::vector<std::thread> accept_threads_;
  std::vector<std::thread> conn_threads_;
  std::set<int> open_conns_;  // fds of live connections, for shutdown nudge

  std::mutex sessions_mu_;
  std::map<std::string, std::unique_ptr<GraphSession>> sessions_;
};

}  // namespace hp::server
