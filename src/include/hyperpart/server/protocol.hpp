#pragma once
// Wire protocol of the hyperpartd partitioning service.
//
// Every message — request and response alike — is one *frame*:
//
//   offset  size  field
//   0       4     magic  "HPF1" (0x48 0x50 0x46 0x31)
//   4       4     length of the payload in bytes, uint32 little-endian
//   8       len   payload: one UTF-8 JSON document (hp::obs::json dialect)
//
// The magic makes a stray text client (or a truncated stream joined
// mid-frame) fail immediately with kBadMagic instead of misreading a
// length. Payloads above the configured cap (default 64 MiB) are rejected
// before any allocation so a hostile length field cannot balloon memory.
// Request/response schemas on top of the frame are documented in DESIGN.md
// ("Partitioning service"); the frame layer itself is JSON-agnostic and is
// unit-tested byte-by-byte in test_server.

#include <cstdint>
#include <string>

namespace hp::server {

inline constexpr char kFrameMagic[4] = {'H', 'P', 'F', '1'};
inline constexpr std::uint32_t kDefaultMaxFrame = 64u << 20;  // 64 MiB

enum class FrameError : std::uint8_t {
  kNone = 0,   ///< a full frame was read / written
  kClosed,     ///< clean EOF on a frame boundary (peer hung up)
  kBadMagic,   ///< first four bytes were not "HPF1"
  kOversize,   ///< declared length exceeds the cap
  kTruncated,  ///< EOF in the middle of a frame
  kIo,         ///< read()/write() failed (errno-level error)
};

[[nodiscard]] const char* frame_error_name(FrameError e) noexcept;

/// Read one frame from fd into `payload` (replaced, not appended). Blocks
/// until a full frame, EOF, or error. kClosed is returned only for EOF
/// before the first magic byte; EOF anywhere later is kTruncated.
[[nodiscard]] FrameError read_frame(int fd, std::string& payload,
                                    std::uint32_t max_payload = kDefaultMaxFrame);

/// Write one frame (magic + length + payload) to fd, looping over partial
/// writes. Returns kNone, kOversize (payload beyond the protocol's 32-bit
/// length), or kIo.
[[nodiscard]] FrameError write_frame(int fd, const std::string& payload);

}  // namespace hp::server
