#include "hyperpart/io/generators.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>
#include <utility>
#include <vector>

#include "hyperpart/util/rng.hpp"

namespace hp {

Hypergraph random_hypergraph(NodeId n, EdgeId m, std::uint32_t min_edge_size,
                             std::uint32_t max_edge_size, std::uint64_t seed) {
  if (min_edge_size < 1 || min_edge_size > max_edge_size ||
      max_edge_size > n) {
    throw std::invalid_argument("random_hypergraph: bad edge sizes");
  }
  Rng rng{seed};
  std::vector<std::vector<NodeId>> edges;
  edges.reserve(m);
  std::unordered_set<NodeId> pins;
  for (EdgeId e = 0; e < m; ++e) {
    const auto size = static_cast<std::uint32_t>(
        rng.next_in(min_edge_size, max_edge_size));
    pins.clear();
    while (pins.size() < size) {
      pins.insert(static_cast<NodeId>(rng.next_below(n)));
    }
    edges.emplace_back(pins.begin(), pins.end());
  }
  return Hypergraph::from_edges(n, std::move(edges));
}

Hypergraph spmv_hypergraph(std::uint32_t rows, std::uint32_t cols,
                           std::uint64_t nnz, std::uint64_t seed) {
  if (nnz > static_cast<std::uint64_t>(rows) * cols) {
    throw std::invalid_argument("spmv_hypergraph: nnz too large");
  }
  Rng rng{seed};
  // Sample distinct (row, col) positions.
  std::unordered_set<std::uint64_t> taken;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> entries;
  entries.reserve(nnz);
  while (entries.size() < nnz) {
    const auto r = static_cast<std::uint32_t>(rng.next_below(rows));
    const auto c = static_cast<std::uint32_t>(rng.next_below(cols));
    if (taken.insert(static_cast<std::uint64_t>(r) * cols + c).second) {
      entries.emplace_back(r, c);
    }
  }
  // One node per nonzero; hyperedge per non-empty row and column.
  std::vector<std::vector<NodeId>> row_edges(rows);
  std::vector<std::vector<NodeId>> col_edges(cols);
  for (NodeId v = 0; v < entries.size(); ++v) {
    row_edges[entries[v].first].push_back(v);
    col_edges[entries[v].second].push_back(v);
  }
  std::vector<std::vector<NodeId>> edges;
  for (auto& e : row_edges) {
    if (!e.empty()) edges.push_back(std::move(e));
  }
  for (auto& e : col_edges) {
    if (!e.empty()) edges.push_back(std::move(e));
  }
  return Hypergraph::from_edges(static_cast<NodeId>(entries.size()),
                                std::move(edges));
}

Dag random_dag(NodeId n, double p, std::uint64_t seed) {
  Rng rng{seed};
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (rng.next_bool(p)) edges.emplace_back(u, v);
    }
  }
  return Dag::from_edges(n, std::move(edges));
}

Dag layered_dag(std::uint32_t layers, std::uint32_t width, double p,
                std::uint64_t seed) {
  Rng rng{seed};
  const NodeId n = layers * width;
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (std::uint32_t layer = 1; layer < layers; ++layer) {
    for (std::uint32_t j = 0; j < width; ++j) {
      const NodeId v = layer * width + j;
      bool any = false;
      for (std::uint32_t i = 0; i < width; ++i) {
        const NodeId u = (layer - 1) * width + i;
        if (rng.next_bool(p)) {
          edges.emplace_back(u, v);
          any = true;
        }
      }
      if (!any) {
        const NodeId u =
            (layer - 1) * width + static_cast<NodeId>(rng.next_below(width));
        edges.emplace_back(u, v);
      }
    }
  }
  return Dag::from_edges(n, std::move(edges));
}

Dag random_out_tree(NodeId n, std::uint64_t seed) {
  Rng rng{seed};
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId v = 1; v < n; ++v) {
    edges.emplace_back(static_cast<NodeId>(rng.next_below(v)), v);
  }
  return Dag::from_edges(n, std::move(edges));
}

Dag chain_dag(NodeId n) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId v = 1; v < n; ++v) edges.emplace_back(v - 1, v);
  return Dag::from_edges(n, std::move(edges));
}

Dag fork_join_dag(std::uint32_t width, std::uint32_t depth) {
  // Node 0 = source; chains follow; last node = sink.
  const NodeId n = 2 + width * depth;
  std::vector<std::pair<NodeId, NodeId>> edges;
  const NodeId sink = n - 1;
  for (std::uint32_t c = 0; c < width; ++c) {
    const NodeId first = 1 + c * depth;
    edges.emplace_back(0, first);
    for (std::uint32_t i = 1; i < depth; ++i) {
      edges.emplace_back(first + i - 1, first + i);
    }
    edges.emplace_back(first + depth - 1, sink);
  }
  return Dag::from_edges(n, std::move(edges));
}

Dag random_binary_dag(NodeId n, std::uint64_t seed) {
  Rng rng{seed};
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId v = 2; v < n; ++v) {
    const auto a = static_cast<NodeId>(rng.next_below(v));
    NodeId b = a;
    while (b == a) b = static_cast<NodeId>(rng.next_below(v));
    edges.emplace_back(a, v);
    edges.emplace_back(b, v);
  }
  if (n >= 2) edges.emplace_back(0, 1);
  return Dag::from_edges(n, std::move(edges));
}

}  // namespace hp
