#include "hyperpart/io/dag_io.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace hp {

namespace {

[[nodiscard]] bool next_line(std::istream& in, std::string& line) {
  while (std::getline(in, line)) {
    std::size_t i = 0;
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i == line.size() || line[i] == '%') continue;
    return true;
  }
  return false;
}

}  // namespace

Dag read_dag(std::istream& in) {
  std::string line;
  if (!next_line(in, line)) throw std::runtime_error("read_dag: empty input");
  std::istringstream header(line);
  std::uint64_t num_nodes = 0;
  std::uint64_t num_edges = 0;
  header >> num_nodes >> num_edges;
  if (!header) throw std::runtime_error("read_dag: bad header");

  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(num_edges);
  for (std::uint64_t i = 0; i < num_edges; ++i) {
    if (!next_line(in, line)) {
      throw std::runtime_error("read_dag: truncated edge list");
    }
    std::istringstream ls(line);
    std::uint64_t u = 0;
    std::uint64_t v = 0;
    ls >> u >> v;
    if (!ls) throw std::runtime_error("read_dag: bad edge line");
    edges.emplace_back(static_cast<NodeId>(u), static_cast<NodeId>(v));
  }
  return Dag::from_edges(static_cast<NodeId>(num_nodes), std::move(edges));
}

Dag read_dag_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_dag_file: cannot open " + path);
  return read_dag(in);
}

void write_dag(std::ostream& out, const Dag& dag) {
  out << dag.num_nodes() << ' ' << dag.num_edges() << '\n';
  for (NodeId u = 0; u < dag.num_nodes(); ++u) {
    for (const NodeId v : dag.successors(u)) {
      out << u << ' ' << v << '\n';
    }
  }
}

void write_dag_file(const std::string& path, const Dag& dag) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_dag_file: cannot open " + path);
  write_dag(out, dag);
}

}  // namespace hp
