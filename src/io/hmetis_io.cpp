#include "hyperpart/io/hmetis_io.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace hp {

namespace {

/// Next non-comment, non-empty line.
[[nodiscard]] bool next_line(std::istream& in, std::string& line) {
  while (std::getline(in, line)) {
    std::size_t i = 0;
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i == line.size() || line[i] == '%') continue;
    return true;
  }
  return false;
}

}  // namespace

Hypergraph read_hmetis(std::istream& in) {
  std::string line;
  if (!next_line(in, line)) {
    throw std::runtime_error("read_hmetis: empty input");
  }
  std::istringstream header(line);
  std::uint64_t num_edges = 0;
  std::uint64_t num_nodes = 0;
  int fmt = 0;
  header >> num_edges >> num_nodes;
  if (!header) throw std::runtime_error("read_hmetis: bad header");
  header >> fmt;  // optional
  const bool edge_weights = fmt == 1 || fmt == 11;
  const bool node_weights = fmt == 10 || fmt == 11;

  std::vector<std::vector<NodeId>> edges;
  std::vector<Weight> ew;
  edges.reserve(num_edges);
  for (std::uint64_t e = 0; e < num_edges; ++e) {
    if (!next_line(in, line)) {
      throw std::runtime_error("read_hmetis: truncated edge list");
    }
    std::istringstream ls(line);
    if (edge_weights) {
      Weight w = 1;
      ls >> w;
      ew.push_back(w);
    }
    std::vector<NodeId> pins;
    std::uint64_t v = 0;
    while (ls >> v) {
      if (v == 0 || v > num_nodes) {
        throw std::runtime_error("read_hmetis: pin out of range");
      }
      pins.push_back(static_cast<NodeId>(v - 1));
    }
    edges.push_back(std::move(pins));
  }

  Hypergraph g = Hypergraph::from_edges(static_cast<NodeId>(num_nodes),
                                        std::move(edges));
  if (edge_weights) g.set_edge_weights(std::move(ew));
  if (node_weights) {
    std::vector<Weight> nw(num_nodes, 1);
    for (std::uint64_t v = 0; v < num_nodes; ++v) {
      if (!next_line(in, line)) {
        throw std::runtime_error("read_hmetis: truncated node weights");
      }
      nw[v] = std::stoll(line);
    }
    g.set_node_weights(std::move(nw));
  }
  return g;
}

Hypergraph read_hmetis_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_hmetis_file: cannot open " + path);
  return read_hmetis(in);
}

void write_hmetis(std::ostream& out, const Hypergraph& g) {
  int fmt = 0;
  if (g.has_edge_weights()) fmt += 1;
  if (g.has_node_weights()) fmt += 10;
  out << g.num_edges() << ' ' << g.num_nodes();
  if (fmt != 0) out << ' ' << (fmt < 10 ? "1" : (fmt == 10 ? "10" : "11"));
  out << '\n';
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    bool first = true;
    if (g.has_edge_weights()) {
      out << g.edge_weight(e);
      first = false;
    }
    for (const NodeId v : g.pins(e)) {
      if (!first) out << ' ';
      out << (v + 1);
      first = false;
    }
    out << '\n';
  }
  if (g.has_node_weights()) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      out << g.node_weight(v) << '\n';
    }
  }
}

void write_hmetis_file(const std::string& path, const Hypergraph& g) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_hmetis_file: cannot open " + path);
  write_hmetis(out, g);
}

}  // namespace hp
