#include "hyperpart/io/hmetis_io.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace hp {

namespace {

/// Line-by-line reader tracking 1-based line numbers for error messages.
/// Strips a trailing '\r' (CRLF files) and skips blank and '%'-comment
/// lines — including trailing blank lines after the last data line.
class LineReader {
 public:
  explicit LineReader(std::istream& in) : in_(in) {}

  /// Advances to the next non-comment, non-blank line.
  [[nodiscard]] bool next(std::string& line) {
    while (std::getline(in_, line)) {
      ++line_no_;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      std::size_t i = 0;
      while (i < line.size() &&
             std::isspace(static_cast<unsigned char>(line[i]))) {
        ++i;
      }
      if (i == line.size() || line[i] == '%') continue;
      return true;
    }
    return false;
  }

  [[nodiscard]] std::uint64_t line_no() const noexcept { return line_no_; }

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("read_hmetis: line " +
                             std::to_string(line_no_) + ": " + what);
  }

 private:
  std::istream& in_;
  std::uint64_t line_no_ = 0;
};

/// True when the stream consumed the whole line (trailing whitespace ok).
[[nodiscard]] bool fully_consumed(std::istringstream& ls) {
  if (ls.eof()) return true;
  ls.clear();
  std::string rest;
  ls >> rest;
  return rest.empty();
}

}  // namespace

Hypergraph read_hmetis(std::istream& in) {
  LineReader reader(in);
  std::string line;
  if (!reader.next(line)) {
    throw std::runtime_error("read_hmetis: empty input");
  }
  std::istringstream header(line);
  std::uint64_t num_edges = 0;
  std::uint64_t num_nodes = 0;
  int fmt = 0;
  header >> num_edges >> num_nodes;
  if (!header) reader.fail("bad header (expected '<edges> <nodes> [fmt]')");
  header >> fmt;  // optional
  if (!header.eof() && header.fail()) fmt = 0;
  if (fmt != 0 && fmt != 1 && fmt != 10 && fmt != 11) {
    reader.fail("unknown fmt code " + std::to_string(fmt));
  }
  const bool edge_weights = fmt == 1 || fmt == 11;
  const bool node_weights = fmt == 10 || fmt == 11;

  std::vector<std::vector<NodeId>> edges;
  std::vector<Weight> ew;
  edges.reserve(num_edges);
  for (std::uint64_t e = 0; e < num_edges; ++e) {
    if (!reader.next(line)) {
      throw std::runtime_error(
          "read_hmetis: truncated edge list (expected " +
          std::to_string(num_edges) + " edges, got " + std::to_string(e) +
          ")");
    }
    std::istringstream ls(line);
    if (edge_weights) {
      Weight w = 1;
      if (!(ls >> w)) reader.fail("missing edge weight");
      if (w < 0) reader.fail("negative edge weight");
      ew.push_back(w);
    }
    std::vector<NodeId> pins;
    std::uint64_t v = 0;
    while (ls >> v) {
      if (v == 0 || v > num_nodes) {
        reader.fail("pin " + std::to_string(v) + " out of range [1, " +
                    std::to_string(num_nodes) + "]");
      }
      pins.push_back(static_cast<NodeId>(v - 1));
    }
    if (!fully_consumed(ls)) reader.fail("invalid token in pin list");
    if (pins.empty()) reader.fail("edge has no pins");
    edges.push_back(std::move(pins));
  }

  Hypergraph g = Hypergraph::from_edges(static_cast<NodeId>(num_nodes),
                                        std::move(edges));
  if (edge_weights) g.set_edge_weights(std::move(ew));
  if (node_weights) {
    std::vector<Weight> nw(num_nodes, 1);
    for (std::uint64_t v = 0; v < num_nodes; ++v) {
      if (!reader.next(line)) {
        throw std::runtime_error(
            "read_hmetis: truncated node weights (expected " +
            std::to_string(num_nodes) + ", got " + std::to_string(v) + ")");
      }
      std::istringstream ls(line);
      Weight w = 0;
      if (!(ls >> w)) reader.fail("invalid node weight");
      if (w < 0) reader.fail("negative node weight");
      if (!fully_consumed(ls)) reader.fail("trailing tokens after node weight");
      nw[v] = w;
    }
    g.set_node_weights(std::move(nw));
  }
  return g;
}

Hypergraph read_hmetis_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_hmetis_file: cannot open " + path);
  return read_hmetis(in);
}

void write_hmetis(std::ostream& out, const Hypergraph& g) {
  int fmt = 0;
  if (g.has_edge_weights()) fmt += 1;
  if (g.has_node_weights()) fmt += 10;
  out << g.num_edges() << ' ' << g.num_nodes();
  if (fmt != 0) out << ' ' << (fmt < 10 ? "1" : (fmt == 10 ? "10" : "11"));
  out << '\n';
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    bool first = true;
    if (g.has_edge_weights()) {
      out << g.edge_weight(e);
      first = false;
    }
    for (const NodeId v : g.pins(e)) {
      if (!first) out << ' ';
      out << (v + 1);
      first = false;
    }
    out << '\n';
  }
  if (g.has_node_weights()) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      out << g.node_weight(v) << '\n';
    }
  }
}

void write_hmetis_file(const std::string& path, const Hypergraph& g) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_hmetis_file: cannot open " + path);
  write_hmetis(out, g);
}

}  // namespace hp
