#include "hyperpart/io/dag_families.hpp"

#include <stdexcept>
#include <utility>
#include <vector>

namespace hp {

Dag stencil2d_dag(std::uint32_t width, std::uint32_t height,
                  std::uint32_t iterations) {
  if (width == 0 || height == 0 || iterations == 0) {
    throw std::invalid_argument("stencil2d_dag: empty dimensions");
  }
  const auto cell = [&](std::uint32_t t, std::uint32_t x, std::uint32_t y) {
    return static_cast<NodeId>((t * height + y) * width + x);
  };
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (std::uint32_t t = 1; t < iterations; ++t) {
    for (std::uint32_t y = 0; y < height; ++y) {
      for (std::uint32_t x = 0; x < width; ++x) {
        const NodeId v = cell(t, x, y);
        edges.emplace_back(cell(t - 1, x, y), v);
        if (x > 0) edges.emplace_back(cell(t - 1, x - 1, y), v);
        if (x + 1 < width) edges.emplace_back(cell(t - 1, x + 1, y), v);
        if (y > 0) edges.emplace_back(cell(t - 1, x, y - 1), v);
        if (y + 1 < height) edges.emplace_back(cell(t - 1, x, y + 1), v);
      }
    }
  }
  return Dag::from_edges(iterations * width * height, std::move(edges));
}

Dag butterfly_dag(std::uint32_t log_size) {
  if (log_size == 0 || log_size > 20) {
    throw std::invalid_argument("butterfly_dag: log_size in [1, 20]");
  }
  const std::uint32_t points = 1u << log_size;
  const auto node = [&](std::uint32_t stage, std::uint32_t i) {
    return static_cast<NodeId>(stage * points + i);
  };
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (std::uint32_t stage = 1; stage <= log_size; ++stage) {
    const std::uint32_t stride = 1u << (stage - 1);
    for (std::uint32_t i = 0; i < points; ++i) {
      edges.emplace_back(node(stage - 1, i), node(stage, i));
      edges.emplace_back(node(stage - 1, i ^ stride), node(stage, i));
    }
  }
  return Dag::from_edges((log_size + 1) * points, std::move(edges));
}

Dag triangular_solve_dag(std::uint32_t n) {
  if (n == 0) throw std::invalid_argument("triangular_solve_dag: n >= 1");
  // Node layout: solve[i] = i; update(i, j) for j < i accumulates
  // L(i,j)·x_j into row i, chained so each row is a serial reduction.
  std::vector<std::pair<NodeId, NodeId>> edges;
  NodeId next = n;  // update nodes start after the n solve nodes
  for (std::uint32_t i = 1; i < n; ++i) {
    NodeId previous = kInvalidNode;
    for (std::uint32_t j = 0; j < i; ++j) {
      const NodeId update = next++;
      edges.emplace_back(j, update);  // needs x_j
      if (previous != kInvalidNode) {
        edges.emplace_back(previous, update);  // accumulation chain
      }
      previous = update;
    }
    edges.emplace_back(previous, i);  // row done → solve x_i
  }
  return Dag::from_edges(next, std::move(edges));
}

Dag wavefront_dag(std::uint32_t width, std::uint32_t height) {
  if (width == 0 || height == 0) {
    throw std::invalid_argument("wavefront_dag: empty grid");
  }
  const auto cell = [&](std::uint32_t x, std::uint32_t y) {
    return static_cast<NodeId>(y * width + x);
  };
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (std::uint32_t y = 0; y < height; ++y) {
    for (std::uint32_t x = 0; x < width; ++x) {
      if (x > 0) edges.emplace_back(cell(x - 1, y), cell(x, y));
      if (y > 0) edges.emplace_back(cell(x, y - 1), cell(x, y));
    }
  }
  return Dag::from_edges(width * height, std::move(edges));
}

}  // namespace hp
