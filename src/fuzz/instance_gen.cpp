#include "hyperpart/fuzz/instance_gen.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "hyperpart/core/builder.hpp"
#include "hyperpart/dag/hyperdag.hpp"
#include "hyperpart/io/generators.hpp"
#include "hyperpart/reduction/grid_gadget.hpp"
#include "hyperpart/reduction/spes.hpp"
#include "hyperpart/reduction/spes_reduction.hpp"
#include "hyperpart/util/rng.hpp"
#include "hyperpart/workload/workload.hpp"

namespace hp::fuzz {

const char* to_string(Family f) noexcept {
  switch (f) {
    case Family::kRandomUniform: return "random";
    case Family::kRandomSkewed: return "skewed";
    case Family::kHyperDag: return "hyperdag";
    case Family::kGridGadget: return "grid";
    case Family::kSpesGadget: return "spes";
    case Family::kDegenerate: return "degenerate";
    case Family::kSpmv: return "spmv";
    case Family::kNetlist: return "netlist";
    case Family::kDataflow: return "dataflow";
    case Family::kPowerLaw: return "powerlaw";
  }
  return "?";
}

Family family_from_string(const std::string& name) {
  for (const Family f : kAllFamilies) {
    if (name == to_string(f)) return f;
  }
  throw std::invalid_argument("unknown fuzz family: " + name);
}

namespace {

/// Stable per-family stream tags. These key the forked RNG stream each
/// family generates from (see the header's seeding contract); changing a
/// value re-rolls that family's entire instance space and breaks replay
/// seeds, so tags are never renumbered or reused.
std::uint64_t family_tag(Family f) noexcept {
  switch (f) {
    case Family::kRandomUniform: return 0x72616e64'756e6966ULL;
    case Family::kRandomSkewed: return 0x72616e64'736b6577ULL;
    case Family::kHyperDag: return 0x68797065'72646167ULL;
    case Family::kGridGadget: return 0x67726964'67616467ULL;
    case Family::kSpesGadget: return 0x73706573'67616467ULL;
    case Family::kDegenerate: return 0x64656765'6e657261ULL;
    case Family::kSpmv: return 0x73706d76'776f726bULL;
    case Family::kNetlist: return 0x6e65746c'776f726bULL;
    case Family::kDataflow: return 0x64617461'776f726bULL;
    case Family::kPowerLaw: return 0x706f7765'776f726bULL;
  }
  return 0;
}

/// Forked per-family stream: instance generation depends on (seed, family)
/// only, never on the family-selection draw or the allowed-family set.
Rng family_rng(std::uint64_t seed, Family f) noexcept {
  std::uint64_t state = seed + family_tag(f);
  return Rng(splitmix64(state));
}

/// Common tail: draw k, ε, metric from the rng so every family exercises
/// both metrics and a spread of balance regimes.
void draw_problem(FuzzInstance& inst, Rng& rng, bool k_near_n) {
  const NodeId n = inst.graph.num_nodes();
  if (k_near_n && n >= 3) {
    inst.k = static_cast<PartId>(n - rng.next_below(2));  // k ∈ {n−1, n}
  } else {
    const PartId cap = static_cast<PartId>(std::max<NodeId>(2, n / 2));
    inst.k = static_cast<PartId>(2 + rng.next_below(std::min<PartId>(7, cap)));
  }
  const double eps_choices[] = {0.0, 0.05, 0.1, 0.3, 1.0};
  inst.epsilon = eps_choices[rng.next_below(5)];
  inst.metric =
      rng.next_bool(0.5) ? CostMetric::kConnectivity : CostMetric::kCutNet;
}

Hypergraph random_uniform_graph(Rng& rng, const GenOptions& opts) {
  const NodeId n = static_cast<NodeId>(4 + rng.next_below(opts.max_nodes - 3));
  const EdgeId m = static_cast<EdgeId>(1 + rng.next_below(opts.max_edges));
  // size ∈ [2, min(n, 8)]: the upper draw must never exceed n.
  const std::uint32_t max_size = static_cast<std::uint32_t>(
      2 + rng.next_below(std::min<NodeId>(n - 1, 7)));
  return random_hypergraph(n, m, 2, max_size, rng());
}

/// Power-law edge sizes + skewed weights: a handful of huge edges over a
/// sea of pairs, node weights drawn 1 or max, edge weights heavy-tailed.
Hypergraph random_skewed_graph(Rng& rng, const GenOptions& opts) {
  const NodeId n = static_cast<NodeId>(6 + rng.next_below(opts.max_nodes - 5));
  const EdgeId m = static_cast<EdgeId>(1 + rng.next_below(opts.max_edges));
  HypergraphBuilder b(n);
  for (EdgeId e = 0; e < m; ++e) {
    // size ∝ 2^geometric, capped at n: mostly 2, occasionally ~n.
    std::uint32_t size = 2;
    while (size < n && rng.next_bool(0.35)) size *= 2;
    size = std::min<std::uint32_t>(size, n);
    std::vector<NodeId> pins;
    pins.reserve(size);
    for (std::uint32_t i = 0; i < size; ++i) {
      pins.push_back(static_cast<NodeId>(rng.next_below(n)));
    }
    b.add_edge(std::move(pins));  // duplicate pins removed at finalize
    if (rng.next_bool(0.3)) {
      b.set_last_edge_weight(
          1 + static_cast<Weight>(rng.next_below(
                  static_cast<std::uint64_t>(opts.max_weight))));
    }
  }
  Hypergraph g = b.build();
  if (rng.next_bool(0.5)) {
    std::vector<Weight> w(n, 1);
    for (auto& wi : w) {
      if (rng.next_bool(0.2)) {
        wi = 1 + static_cast<Weight>(rng.next_below(
                     static_cast<std::uint64_t>(opts.max_weight)));
      }
    }
    g.set_node_weights(std::move(w));
  }
  return g;
}

Hypergraph hyperdag_graph(Rng& rng, const GenOptions& opts) {
  const NodeId n = static_cast<NodeId>(5 + rng.next_below(opts.max_nodes - 4));
  switch (rng.next_below(3)) {
    case 0: return to_hyperdag(random_dag(n, 0.25, rng())).graph;
    case 1: return to_hyperdag(random_binary_dag(n, rng())).graph;
    default: return to_hyperdag(random_out_tree(n, rng())).graph;
  }
}

Hypergraph grid_graph(Rng& rng) {
  const std::uint32_t side = static_cast<std::uint32_t>(2 + rng.next_below(5));
  const std::uint32_t outsiders =
      static_cast<std::uint32_t>(rng.next_below(2 * side + 1));
  HypergraphBuilder b;
  (void)add_grid_gadget(b, side, outsiders);
  return b.build();
}

Hypergraph spes_graph(Rng& rng) {
  const NodeId verts = static_cast<NodeId>(3 + rng.next_below(4));
  const std::uint32_t max_e = verts * (verts - 1) / 2;
  const std::uint32_t edges =
      static_cast<std::uint32_t>(2 + rng.next_below(std::min(max_e, 6u) - 1));
  const std::uint32_t p = static_cast<std::uint32_t>(1 + rng.next_below(edges));
  return build_spes_reduction(random_spes(verts, edges, p, rng())).graph;
}

/// Workload-catalogue legs: the same WorkloadSpec -> Hypergraph path the
/// CLI and benches use, shrunk to oracle sizes via target_nodes.
Hypergraph workload_graph(workload::Family wf, Rng& rng,
                          const GenOptions& opts) {
  workload::WorkloadSpec spec;
  spec.family = wf;
  const auto& ps = workload::presets(wf);
  spec.preset = ps[rng.next_below(ps.size())];
  const NodeId span = opts.max_nodes > 6 ? opts.max_nodes - 5 : 1;
  spec.target_nodes = static_cast<NodeId>(6 + rng.next_below(span));
  spec.seed = rng();
  spec.threads = 1;
  return workload::generate(spec).graph;
}

FuzzInstance make_degenerate(std::uint64_t which) {
  FuzzInstance inst;
  inst.family = "degenerate";
  switch (which % 7) {
    case 0: {  // isolated singleton nodes next to a connected core
      inst.graph = Hypergraph::from_edges(8, {{0, 1, 2}, {2, 3}, {3, 0}});
      inst.k = 3;
      break;
    }
    case 1: {  // parallel edges: identical pin sets repeated
      inst.graph = Hypergraph::from_edges(
          6, {{0, 1, 2}, {0, 1, 2}, {0, 1, 2}, {3, 4}, {3, 4}, {4, 5}});
      inst.k = 2;
      break;
    }
    case 2: {  // one max-weight node dominating the balance capacity
      inst.graph = Hypergraph::from_edges(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4},
                                              {4, 5}, {5, 0}});
      inst.graph.set_node_weights({50, 1, 1, 1, 1, 1});
      inst.k = 2;
      inst.epsilon = 0.3;
      break;
    }
    case 3: {  // k = n: every node its own part is the only perfect balance
      inst.graph = Hypergraph::from_edges(5, {{0, 1, 2, 3, 4}, {0, 2}, {1, 3}});
      inst.k = 5;
      break;
    }
    case 4: {  // empty and size-1 edges (never cut) among real ones
      inst.graph =
          Hypergraph::from_edges(5, {{}, {2}, {0, 1, 2, 3}, {3, 4}, {1}});
      inst.k = 2;
      break;
    }
    case 5: {  // k = n − 1 with weights: tight capacity, near-trivial parts
      inst.graph =
          Hypergraph::from_edges(6, {{0, 1, 2}, {2, 3, 4}, {4, 5, 0}});
      inst.graph.set_edge_weights({3, 1, 2});
      inst.k = 5;
      inst.epsilon = 0.05;
      break;
    }
    default: {  // one edge spanning all nodes + heavy parallel pair
      inst.graph = Hypergraph::from_edges(
          7, {{0, 1, 2, 3, 4, 5, 6}, {0, 6}, {0, 6}});
      inst.graph.set_edge_weights({1, 4, 4});
      inst.k = 3;
      inst.metric = CostMetric::kCutNet;
      break;
    }
  }
  return inst;
}

}  // namespace

std::vector<FuzzInstance> degenerate_catalogue() {
  std::vector<FuzzInstance> out;
  for (std::uint64_t i = 0; i < 7; ++i) out.push_back(make_degenerate(i));
  return out;
}

FuzzInstance generate_instance(std::uint64_t seed, const GenOptions& opts) {
  Rng select(seed);
  const std::vector<Family> families =
      opts.families.empty()
          ? std::vector<Family>(std::begin(kAllFamilies),
                                std::end(kAllFamilies))
          : opts.families;
  const Family family = families[select.next_below(families.size())];
  // The selection rng is never used past this point: everything below draws
  // from the family's forked stream (header seeding contract).
  Rng rng = family_rng(seed, family);

  FuzzInstance inst;
  inst.seed = seed;
  inst.family = to_string(family);
  bool k_near_n = false;
  switch (family) {
    case Family::kRandomUniform:
      inst.graph = random_uniform_graph(rng, opts);
      // Occasionally push k toward n to stress the many-parts regime.
      k_near_n = rng.next_bool(0.1);
      break;
    case Family::kRandomSkewed:
      inst.graph = random_skewed_graph(rng, opts);
      break;
    case Family::kHyperDag:
      inst.graph = hyperdag_graph(rng, opts);
      break;
    case Family::kGridGadget:
      inst.graph = grid_graph(rng);
      break;
    case Family::kSpesGadget:
      inst.graph = spes_graph(rng);
      break;
    case Family::kDegenerate: {
      inst = make_degenerate(rng());
      inst.seed = seed;
      return inst;
    }
    case Family::kSpmv:
      inst.graph = workload_graph(workload::Family::kSpmv, rng, opts);
      break;
    case Family::kNetlist:
      inst.graph = workload_graph(workload::Family::kNetlist, rng, opts);
      break;
    case Family::kDataflow:
      inst.graph = workload_graph(workload::Family::kDataflow, rng, opts);
      break;
    case Family::kPowerLaw:
      inst.graph = workload_graph(workload::Family::kPowerLaw, rng, opts);
      break;
  }
  draw_problem(inst, rng, k_near_n);
  return inst;
}

}  // namespace hp::fuzz
