#include "hyperpart/fuzz/shrinker.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "hyperpart/io/hmetis_io.hpp"

namespace hp::fuzz {

namespace {

/// Mutable edge-list view of an instance that the reduction stages edit.
struct Repr {
  NodeId n = 0;
  std::vector<std::vector<NodeId>> edges;
  std::vector<Weight> edge_w;
  std::vector<Weight> node_w;
  bool has_edge_w = false;
  bool has_node_w = false;
  PartId k = 2;
  double epsilon = 0.1;
  CostMetric metric = CostMetric::kConnectivity;
  std::uint64_t seed = 0;
};

Repr to_repr(const FuzzInstance& inst) {
  Repr r;
  const Hypergraph& g = inst.graph;
  r.n = g.num_nodes();
  r.edges.reserve(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    r.edges.emplace_back(g.pins(e).begin(), g.pins(e).end());
    r.edge_w.push_back(g.edge_weight(e));
  }
  for (NodeId v = 0; v < r.n; ++v) r.node_w.push_back(g.node_weight(v));
  r.has_edge_w = g.has_edge_weights();
  r.has_node_w = g.has_node_weights();
  r.k = inst.k;
  r.epsilon = inst.epsilon;
  r.metric = inst.metric;
  r.seed = inst.seed;
  return r;
}

FuzzInstance to_instance(const Repr& r) {
  FuzzInstance inst;
  inst.graph = Hypergraph::from_edges(r.n, r.edges);
  if (r.has_edge_w) inst.graph.set_edge_weights(r.edge_w);
  if (r.has_node_w) inst.graph.set_node_weights(r.node_w);
  inst.k = r.k;
  inst.epsilon = r.epsilon;
  inst.metric = r.metric;
  inst.seed = r.seed;
  inst.family = "shrunk";
  return inst;
}

struct Shrinker {
  const ShrinkOptions& opts;
  std::uint64_t runs = 0;
  std::string last_invariant;

  /// True when the candidate still fails the oracle (within budget; an
  /// exhausted budget conservatively rejects candidates, freezing the
  /// current repro rather than accepting an untested one).
  bool fails(const Repr& r) {
    if (runs >= opts.max_oracle_runs) return false;
    if (r.n == 0 || r.k < 2) return false;
    ++runs;
    const OracleReport report = run_oracle(to_instance(r), opts.oracle);
    if (!report.ok()) last_invariant = report.violations.front().invariant;
    return !report.ok();
  }

  /// Classic ddmin over the edge list: try dropping chunks at increasing
  /// granularity while the failure persists.
  void ddmin_edges(Repr& r) {
    std::size_t gran = 2;
    while (r.edges.size() >= 2 && gran <= r.edges.size()) {
      const std::size_t m = r.edges.size();
      const std::size_t chunk = (m + gran - 1) / gran;
      bool reduced = false;
      for (std::size_t start = 0; start < m; start += chunk) {
        Repr cand = r;
        const std::size_t stop = std::min(m, start + chunk);
        cand.edges.erase(cand.edges.begin() + start,
                         cand.edges.begin() + stop);
        cand.edge_w.erase(cand.edge_w.begin() + start,
                          cand.edge_w.begin() + stop);
        if (fails(cand)) {
          r = std::move(cand);
          gran = std::max<std::size_t>(2, gran - 1);
          reduced = true;
          break;
        }
      }
      if (!reduced) {
        if (gran >= r.edges.size()) break;
        gran = std::min(r.edges.size(), gran * 2);
      }
    }
  }

  /// Remove one node entirely (from every edge, compacting ids); k is
  /// clamped so the instance stays well-formed.
  static Repr without_node(const Repr& r, NodeId victim) {
    Repr cand = r;
    cand.n = r.n - 1;
    cand.node_w.erase(cand.node_w.begin() + victim);
    for (auto& pins : cand.edges) {
      std::erase(pins, victim);
      for (NodeId& v : pins) {
        if (v > victim) --v;
      }
    }
    cand.k = std::min<PartId>(cand.k, std::max<NodeId>(cand.n, 2));
    return cand;
  }

  void drop_nodes(Repr& r) {
    for (NodeId v = r.n; v-- > 0 && r.n > 2;) {
      if (v >= r.n) continue;
      Repr cand = without_node(r, v);
      if (fails(cand)) r = std::move(cand);
    }
  }

  void flatten(Repr& r) {
    if (r.has_edge_w) {
      Repr cand = r;
      cand.has_edge_w = false;
      std::fill(cand.edge_w.begin(), cand.edge_w.end(), Weight{1});
      if (fails(cand)) r = std::move(cand);
    }
    if (r.has_node_w) {
      Repr cand = r;
      cand.has_node_w = false;
      std::fill(cand.node_w.begin(), cand.node_w.end(), Weight{1});
      if (fails(cand)) r = std::move(cand);
    }
  }

  void reduce_k(Repr& r) {
    if (r.k > 2) {  // the common case: the failure is not k-specific
      Repr cand = r;
      cand.k = 2;
      if (fails(cand)) {
        r = std::move(cand);
        return;
      }
    }
    while (r.k > 2) {
      Repr cand = r;
      cand.k = r.k - 1;
      if (!fails(cand)) break;
      r = std::move(cand);
    }
  }
};

std::size_t footprint(const Repr& r) {
  std::size_t pins = 0;
  for (const auto& e : r.edges) pins += e.size();
  return static_cast<std::size_t>(r.n) + r.edges.size() + pins + r.k;
}

}  // namespace

ShrinkResult shrink_instance(const FuzzInstance& failing,
                             const ShrinkOptions& opts) {
  Shrinker s{opts, 0, ""};
  Repr cur = to_repr(failing);
  if (!s.fails(cur)) {
    // The input does not fail under this oracle configuration; nothing to
    // shrink — hand it back so callers notice.
    return {failing, "", s.runs};
  }

  for (int round = 0; round < opts.max_rounds; ++round) {
    const std::size_t before = footprint(cur);
    s.ddmin_edges(cur);
    s.drop_nodes(cur);
    s.flatten(cur);
    s.reduce_k(cur);
    if (footprint(cur) >= before) break;  // fixpoint
  }

  ShrinkResult result{to_instance(cur), "", s.runs};
  // Re-run once on the final instance so the reported invariant is the
  // minimized instance's own first violation.
  const OracleReport final_report = run_oracle(result.instance, opts.oracle);
  result.violated_invariant =
      final_report.ok() ? s.last_invariant
                        : final_report.violations.front().invariant;
  return result;
}

std::string dump_repro(const FuzzInstance& inst, const std::string& dir,
                       const std::string& stem,
                       const std::string& extra_cli_args) {
  namespace fs = std::filesystem;
  fs::create_directories(dir);

  // hMETIS cannot represent empty edges; strip them (no invariant can
  // depend on an edge that is never cut and carries no pins).
  const Hypergraph& g = inst.graph;
  std::vector<std::vector<NodeId>> edges;
  std::vector<Weight> ew;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (g.edge_size(e) == 0) continue;
    edges.emplace_back(g.pins(e).begin(), g.pins(e).end());
    ew.push_back(g.edge_weight(e));
  }
  Hypergraph out = Hypergraph::from_edges(g.num_nodes(), std::move(edges));
  if (g.has_edge_weights()) out.set_edge_weights(std::move(ew));
  if (g.has_node_weights()) {
    std::vector<Weight> nw;
    for (NodeId v = 0; v < g.num_nodes(); ++v) nw.push_back(g.node_weight(v));
    out.set_node_weights(std::move(nw));
  }

  const std::string hgr = (fs::path(dir) / (stem + ".hgr")).string();
  write_hmetis_file(hgr, out);

  std::ostringstream cmd;
  cmd << "hyperfuzz --replay " << hgr << " --k " << inst.k << " --eps "
      << inst.epsilon << " --metric "
      << (inst.metric == CostMetric::kCutNet ? "cut" : "conn") << " --seed "
      << inst.seed;
  if (!extra_cli_args.empty()) cmd << ' ' << extra_cli_args;
  cmd << '\n';
  std::ofstream cmd_out((fs::path(dir) / (stem + ".cmd")).string());
  if (!cmd_out) {
    throw std::runtime_error("dump_repro: cannot write command file in " +
                             dir);
  }
  cmd_out << cmd.str();
  return hgr;
}

}  // namespace hp::fuzz
