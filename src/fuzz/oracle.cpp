#include "hyperpart/fuzz/oracle.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <optional>
#include <sstream>
#include <utility>

#include "hyperpart/algo/annealing.hpp"
#include "hyperpart/algo/branch_and_bound.hpp"
#include "hyperpart/algo/brute_force.hpp"
#include "hyperpart/algo/fm_refiner.hpp"
#include "hyperpart/algo/greedy.hpp"
#include "hyperpart/algo/multilevel.hpp"
#include "hyperpart/algo/recursive_bisection.hpp"
#include "hyperpart/algo/xp_algorithm.hpp"
#include "hyperpart/core/balance.hpp"
#include "hyperpart/core/connectivity_tracker.hpp"
#include "hyperpart/core/metrics.hpp"
#include "hyperpart/dag/recognition.hpp"
#include "hyperpart/obs/telemetry.hpp"
#include "hyperpart/server/session.hpp"
#include "hyperpart/stream/binary_format.hpp"
#include "hyperpart/stream/restream_refiner.hpp"
#include "hyperpart/stream/stream_partitioner.hpp"
#include "hyperpart/util/rng.hpp"

namespace hp::fuzz {

namespace {

bool same_assignment(const Partition& a, const Partition& b) {
  if (a.num_nodes() != b.num_nodes() || a.k() != b.k()) return false;
  for (NodeId v = 0; v < a.num_nodes(); ++v) {
    if (a[v] != b[v]) return false;
  }
  return true;
}

/// Collector bound to one instance; every message carries the instance
/// description so a failing run is replayable from the log alone.
struct Checker {
  const FuzzInstance& inst;
  const OracleOptions& opts;
  OracleReport report;
  std::string prefix;

  Checker(const FuzzInstance& i, const OracleOptions& o)
      : inst(i), opts(o), prefix(describe(i)) {}

  void fail(const std::string& invariant, const std::string& message) {
    report.violations.push_back({invariant, prefix + " | " + message});
  }
  void check(bool ok, const std::string& invariant,
             const std::string& message) {
    if (!ok) fail(invariant, message);
  }

  /// Run a leg, converting any escaped exception into a violation — a
  /// solver throwing on a generated instance is itself a finding.
  template <class Fn>
  void leg(const std::string& name, Fn&& fn) {
    report.legs_run.push_back(name);
    HP_SPAN("leg", name);
    try {
      fn();
    } catch (const std::exception& e) {
      fail("unexpected-throw", name + " threw: " + e.what());
    }
  }
};

/// Completeness + feasibility of a solver's returned partition.
void check_feasible(Checker& c, const std::string& solver, const Partition& p,
                    const BalanceConstraint& balance, Weight extra_slack = 0) {
  if (!p.complete()) {
    c.fail("balance", solver + " returned an incomplete partition");
    return;
  }
  if (p.k() != balance.k()) {
    c.fail("balance", solver + " returned k=" + std::to_string(p.k()));
    return;
  }
  const auto weights = p.part_weights(c.inst.graph);
  const Weight cap = balance.capacity() + extra_slack;
  for (PartId q = 0; q < balance.k(); ++q) {
    if (weights[q] > cap) {
      c.fail("balance", solver + " overfills part " + std::to_string(q) +
                            ": " + std::to_string(weights[q]) + " > " +
                            std::to_string(cap));
      return;
    }
  }
}

std::string scratch_file(const OracleOptions& opts, std::uint64_t seed) {
  static std::atomic<std::uint64_t> counter{0};
  const std::filesystem::path dir =
      opts.scratch_dir.empty() ? std::filesystem::temp_directory_path()
                               : std::filesystem::path(opts.scratch_dir);
  return (dir / ("hpfuzz_" + std::to_string(::getpid()) + "_" +
                 std::to_string(seed) + "_" +
                 std::to_string(counter.fetch_add(1)) + ".hpb"))
      .string();
}

/// Random move replay through the tracker: gain prediction vs actual delta,
/// cached gain vs recomputed gain, running totals vs recomputation, then
/// the full incremental-vs-rebuilt state comparison.
void tracker_leg(Checker& c) {
  const Hypergraph& g = c.inst.graph;
  const PartId k = c.inst.k;
  const CostMetric metric = c.inst.metric;
  if (g.num_nodes() == 0 || k < 2) return;

  Partition p(g.num_nodes(), k);
  for (NodeId v = 0; v < g.num_nodes(); ++v) p.assign(v, v % k);

  ConnectivityTracker inc(g, p);
  inc.enable_gain_cache(metric);
  c.check(inc.cut_net_cost() == cost(g, p, CostMetric::kCutNet),
          "tracker-total", "initial cut-net mismatch");
  c.check(inc.connectivity_cost() == cost(g, p, CostMetric::kConnectivity),
          "tracker-total", "initial connectivity mismatch");

  Rng rng(c.inst.seed ^ 0xf00dULL);
  int gain_faults = 0;
  for (int step = 0; step < c.opts.tracker_moves; ++step) {
    const NodeId v = static_cast<NodeId>(rng.next_below(g.num_nodes()));
    PartId to = static_cast<PartId>(rng.next_below(k));
    const PartId from = inc.part_of(v);
    if (to == from) to = (to + 1) % k;

    Weight predicted = inc.gain(v, to, metric);
    const Weight cached = inc.cached_gain(v, to);
    if (cached != predicted && gain_faults < 5) {
      c.fail("gain-delta",
             "cached_gain(" + std::to_string(v) + "->" + std::to_string(to) +
                 ")=" + std::to_string(cached) + " but gain()=" +
                 std::to_string(predicted) + " at step " +
                 std::to_string(step));
      ++gain_faults;
    }
    if (c.opts.fault == FaultInjection::kGainRule) {
      // Simulated bug: credit every incident edge with exactly two pins
      // left in the source part as if the move uncut it.
      for (const EdgeId e : g.incident_edges(v)) {
        if (inc.pins_in_part(e, from) == 2) predicted += g.edge_weight(e);
      }
    }

    const Weight before = inc.cost(metric);
    inc.move(v, to);
    const Weight actual = before - inc.cost(metric);
    if (actual != predicted && gain_faults < 5) {
      c.fail("gain-delta", "move " + std::to_string(v) + "->" +
                               std::to_string(to) + " at step " +
                               std::to_string(step) + ": predicted gain " +
                               std::to_string(predicted) + ", actual " +
                               std::to_string(actual));
      ++gain_faults;
    }

    if ((step & 63) == 63) {
      const Partition now = inc.to_partition();
      c.check(inc.cost(metric) == cost(g, now, metric), "tracker-total",
              "running total diverged from recomputation at step " +
                  std::to_string(step));
    }
  }

  // Incremental state must equal a tracker rebuilt from the final
  // partition: totals, per-edge λ and pin counts, part weights, boundary
  // set, and the best-move index.
  const Partition final_p = inc.to_partition();
  ConnectivityTracker fresh(g, final_p);
  fresh.enable_gain_cache(metric);

  c.check(inc.cut_net_cost() == fresh.cut_net_cost(), "tracker-rebuild",
          "cut-net totals differ");
  c.check(inc.connectivity_cost() == fresh.connectivity_cost(),
          "tracker-rebuild", "connectivity totals differ");
  for (PartId q = 0; q < k; ++q) {
    c.check(inc.part_weight(q) == fresh.part_weight(q), "tracker-rebuild",
            "part weight differs for part " + std::to_string(q));
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (inc.lambda(e) != fresh.lambda(e)) {
      c.fail("tracker-rebuild", "lambda differs on edge " + std::to_string(e));
      break;
    }
    bool counts_ok = true;
    for (PartId q = 0; q < k; ++q) {
      counts_ok = counts_ok && inc.pins_in_part(e, q) == fresh.pins_in_part(e, q);
    }
    if (!counts_ok) {
      c.fail("tracker-rebuild",
             "pin counts differ on edge " + std::to_string(e));
      break;
    }
  }
  std::vector<NodeId> b1(inc.boundary_nodes().begin(),
                         inc.boundary_nodes().end());
  std::vector<NodeId> b2(fresh.boundary_nodes().begin(),
                         fresh.boundary_nodes().end());
  std::sort(b1.begin(), b1.end());
  std::sort(b2.begin(), b2.end());
  c.check(b1 == b2, "tracker-rebuild", "boundary sets differ");
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (inc.cached_best_gain(v) != fresh.cached_best_gain(v)) {
      c.fail("tracker-rebuild",
             "best-move gain differs on node " + std::to_string(v));
      break;
    }
    // The maintained argmax must actually be an argmax.
    Weight best = inc.cached_gain(v, inc.cached_best_target(v));
    bool argmax_ok = true;
    for (PartId q = 0; q < k; ++q) {
      if (q != inc.part_of(v) && inc.cached_gain(v, q) > best) {
        argmax_ok = false;
      }
    }
    if (!argmax_ok) {
      c.fail("tracker-rebuild",
             "best-move index is not an argmax on node " + std::to_string(v));
      break;
    }
  }

  // Tracker construction is thread-count independent.
  ConnectivityTracker threaded(g, final_p, c.opts.alt_threads);
  c.check(threaded.cut_net_cost() == fresh.cut_net_cost() &&
              threaded.connectivity_cost() == fresh.connectivity_cost(),
          "determinism", "tracker totals depend on construction threads");
}

void stream_leg(Checker& c, const BalanceConstraint& balance,
                std::vector<std::pair<std::string, Partition>>& heuristics,
                std::vector<std::pair<std::string, Weight>>& costs) {
  const Hypergraph& g = c.inst.graph;
  const std::string path = scratch_file(c.opts, c.inst.seed);
  stream::write_binary_file(path, g);
  {
    stream::MappedHypergraph mapped(path);
    c.check(mapped.validate(), "stream", "mapped file fails validate()");

    const Hypergraph copy = mapped.materialize();
    bool same = copy.num_nodes() == g.num_nodes() &&
                copy.num_edges() == g.num_edges() &&
                copy.num_pins() == g.num_pins();
    for (EdgeId e = 0; same && e < g.num_edges(); ++e) {
      same = std::ranges::equal(copy.pins(e), g.pins(e)) &&
             copy.edge_weight(e) == g.edge_weight(e);
    }
    for (NodeId v = 0; same && v < g.num_nodes(); ++v) {
      same = copy.node_weight(v) == g.node_weight(v);
    }
    c.check(same, "stream", "binary round trip altered the graph");

    // Shared metric templates agree between the mapping and memory.
    Partition probe(g.num_nodes(), c.inst.k);
    for (NodeId v = 0; v < g.num_nodes(); ++v) probe.assign(v, v % c.inst.k);
    for (const CostMetric m :
         {CostMetric::kCutNet, CostMetric::kConnectivity}) {
      c.check(cost_of(mapped, probe, m) == cost(g, probe, m), "stream",
              "cost_of over the mapping differs from in-memory cost");
    }

    stream::StreamConfig scfg;
    scfg.metric = c.inst.metric;
    scfg.seed = c.inst.seed ^ 0xbeefULL;
    auto streamed = stream::stream_partition(mapped, balance, scfg);
    if (streamed) {
      check_feasible(c, "stream", streamed->partition, balance);
      c.check(streamed->offline_cost ==
                  cost_of(mapped, streamed->partition, c.inst.metric),
              "stream", "offline_cost is not the recomputed cost");
      if (c.inst.k <= 64) {
        c.check(streamed->streamed_cost == streamed->offline_cost, "stream",
                "streamed cost " + std::to_string(streamed->streamed_cost) +
                    " != offline cost " +
                    std::to_string(streamed->offline_cost));
      }
      heuristics.emplace_back("stream", streamed->partition);
      costs.emplace_back("stream", streamed->offline_cost);

      stream::RestreamConfig rcfg;
      rcfg.metric = c.inst.metric;
      rcfg.chunk_size = 16;  // several windows even on tiny instances
      rcfg.threads = 1;
      Partition p1 = streamed->partition;
      const auto r1 = stream::restream_refine(mapped, p1, balance, rcfg);
      rcfg.threads = c.opts.alt_threads;
      Partition p2 = streamed->partition;
      const auto r2 = stream::restream_refine(mapped, p2, balance, rcfg);

      c.check(r1.cost == cost_of(mapped, p1, c.inst.metric), "stream",
              "restream reported cost is not the recomputed cost");
      c.check(r1.cost <= streamed->offline_cost, "stream",
              "restream increased the cost");
      check_feasible(c, "restream", p1, balance);
      c.check(same_assignment(p1, p2) && r1.cost == r2.cost, "determinism",
              "restream result depends on thread count");
      heuristics.emplace_back("restream", p1);
      costs.emplace_back("restream", r1.cost);
    }
  }
  std::remove(path.c_str());
}

void exact_leg(Checker& c, const BalanceConstraint& balance,
               const std::vector<std::pair<std::string, Partition>>& heuristics,
               const std::vector<std::pair<std::string, Weight>>& costs) {
  const Hypergraph& g = c.inst.graph;
  const CostMetric metric = c.inst.metric;

  BruteForceOptions bopts;
  bopts.metric = metric;
  const auto brute = brute_force_partition(g, balance, bopts);
  if (!brute) {
    // Brute force proved infeasibility; nobody may have found a feasible
    // partition (check_feasible already vetted the ones that were
    // returned, so any entry in `heuristics` contradicts the proof).
    for (const auto& [name, p] : heuristics) {
      (void)p;
      c.fail("infeasible",
             name + " found a partition on an instance brute force proved "
                    "infeasible");
    }
    return;
  }
  const Weight opt = brute->cost;
  c.check(cost(g, brute->partition, metric) == opt, "exact-agreement",
          "brute force cost does not match its own partition");
  check_feasible(c, "brute", brute->partition, balance);

  for (const auto& [name, w] : costs) {
    c.check(w >= opt, "heuristic-above-opt",
            name + " cost " + std::to_string(w) + " < OPT " +
                std::to_string(opt));
  }

  BnbOptions nopts;
  nopts.metric = metric;
  nopts.max_nodes = 2'000'000;
  const auto bnb = branch_and_bound_partition(g, balance, nopts);
  c.check(bnb.has_value(), "exact-agreement",
          "branch-and-bound found no solution where brute force did");
  if (bnb) {
    check_feasible(c, "bnb", bnb->partition, balance);
    c.check(cost(g, bnb->partition, metric) == bnb->cost, "exact-agreement",
            "bnb cost does not match its partition");
    if (bnb->proven_optimal) {
      c.check(bnb->cost == opt, "exact-agreement",
              "bnb optimum " + std::to_string(bnb->cost) + " != brute " +
                  std::to_string(opt));
    } else {
      c.check(bnb->cost >= opt, "exact-agreement", "bnb cost below OPT");
    }
  }

  // XP (Lemma 4.3) enumeration explodes in the budget; gate it.
  bool weights_ok = true;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    weights_ok = weights_ok && g.edge_weight(e) >= 1;
  }
  if (!weights_ok || opt > 6 || g.num_edges() > 24 || c.inst.k > 6) return;
  XpOptions xopts;
  xopts.metric = metric;
  xopts.max_configurations = 3'000'000;
  const auto xp =
      xp_partition(g, balance, static_cast<double>(opt), xopts);
  if (xp.status != XpStatus::kBudgetExceeded) {
    c.check(xp.status == XpStatus::kSolved, "exact-agreement",
            "xp found no solution at budget OPT");
    if (xp.status == XpStatus::kSolved) {
      c.check(std::llround(xp.cost) == opt, "exact-agreement",
              "xp optimum " + std::to_string(xp.cost) + " != brute " +
                  std::to_string(opt));
      check_feasible(c, "xp", xp.partition, balance);
    }
  }
  if (opt >= 1) {
    const auto below =
        xp_partition(g, balance, static_cast<double>(opt) - 1.0, xopts);
    c.check(below.status != XpStatus::kSolved, "exact-agreement",
            "xp solved below the brute-force optimum");
  }
}

/// Random update/repartition interleavings through a GraphSession — the
/// partitioning service's incremental ladder (ΔFM → V-cycle → full). After
/// every repartition the result must be balanced on the *current* graph,
/// its reported cost must match an offline recomputation on an
/// independently mirrored graph, every cached tracker must equal one
/// rebuilt from scratch, and the cost must stay within the documented
/// quality bound against a from-scratch multilevel run:
/// incremental ≤ 3 · scratch + 4. The whole interleaving replays to a
/// bit-identical cost trace (determinism).
///
/// After opts.incremental_rounds weight-only rounds, opts.structural_rounds
/// structural rounds follow: each sends a batch of add_net / remove_net /
/// add_pins / remove_pins deltas (the first always strips some net bare —
/// an empty-but-live net is the edge case a tombstone is NOT, and both must
/// cost nothing). The mirror is kept as mutable pin lists + weights and
/// rebuilt from scratch via from_edges after every batch, so its content
/// hash agreeing with the session's in-place apply_structural_batch is a
/// differential check, not a tautology. Each structural round additionally
/// probes atomicity (a batch with one invalid delta must leave hash,
/// version, and tracker state untouched) and version pinning (evaluate at
/// the current version answers; at any other version it refuses).
void incremental_leg(Checker& c) {
  const Hypergraph& g0 = c.inst.graph;
  if (g0.num_nodes() == 0) return;
  server::SessionConfig cfg;
  cfg.k = c.inst.k;
  cfg.epsilon = c.inst.epsilon;
  cfg.metric = c.inst.metric;
  cfg.seed = c.inst.seed ^ 0x1c7eULL;
  cfg.threads = 1;
  MultilevelConfig scratch_cfg;
  scratch_cfg.metric = cfg.metric;
  scratch_cfg.seed = cfg.seed;
  scratch_cfg.fm.threads = 1;

  // verify=true runs the full invariant battery; verify=false replays the
  // identical interleaving and only records the cost trace.
  const auto run_once = [&](bool verify, std::vector<Weight>& cost_trace) {
    Rng rng(c.inst.seed ^ 0xdE17aULL);
    // The mirror's source of truth is mutable pin lists + weight vectors;
    // `shadow` is re-materialized from them (via from_edges, the reference
    // constructor) after every structural batch. It never touches the
    // session.
    const NodeId n0 = g0.num_nodes();
    std::vector<std::vector<NodeId>> mirror_pins(g0.num_edges());
    std::vector<Weight> mirror_ew(g0.num_edges());
    std::vector<Weight> mirror_nw(n0);
    std::vector<std::uint8_t> mirror_dead(g0.num_edges(), 0);
    for (EdgeId e = 0; e < g0.num_edges(); ++e) {
      const auto p = g0.pins(e);
      mirror_pins[e].assign(p.begin(), p.end());
      mirror_ew[e] = g0.edge_weight(e);
    }
    for (NodeId v = 0; v < n0; ++v) mirror_nw[v] = g0.node_weight(v);
    const auto rebuild_mirror = [&] {
      Hypergraph h = Hypergraph::from_edges(n0, mirror_pins);
      for (NodeId v = 0; v < n0; ++v) h.update_node_weight(v, mirror_nw[v]);
      for (EdgeId e = 0; e < h.num_edges(); ++e) {
        h.update_edge_weight(e, mirror_ew[e]);
      }
      return h;
    };
    Hypergraph shadow = g0;  // mirrored updates; never touches the session
    auto session = server::GraphSession::from_graph(g0, "fuzz");
    if (!session->try_acquire_mutator()) {
      c.fail("incremental-admission", "fresh session refused mutator slot");
      return;
    }
    if (!session->partition(cfg, false).ok) {
      // Capacity too tight for this instance: the scratch solver must agree
      // that no feasible partition exists.
      if (verify) {
        const auto balance = BalanceConstraint::for_graph(
            shadow, cfg.k, cfg.epsilon, /*relaxed=*/true);
        c.check(!multilevel_partition(shadow, balance, scratch_cfg),
                "incremental-infeasible",
                "session found no partition but scratch multilevel did");
      }
      return;
    }
    std::uint64_t ver = 0;  // expected session version: one bump per update
    const int total_rounds =
        c.opts.incremental_rounds + c.opts.structural_rounds;
    for (int round = 0; round < total_rounds; ++round) {
      const bool structural_round = round >= c.opts.incremental_rounds;
      std::vector<server::WeightUpdate> nodes;
      std::vector<server::WeightUpdate> edges;
      std::vector<server::StructuralDelta> deltas;
      const int n_nodes = 1 + static_cast<int>(rng.next_below(3));
      for (int i = 0; i < n_nodes; ++i) {
        const auto v = static_cast<NodeId>(rng.next_below(g0.num_nodes()));
        const auto w = static_cast<Weight>(rng.next_in(1, 4));
        nodes.push_back({v, w});
        mirror_nw[v] = w;
      }
      // Nets live before this round's batch: weight updates and structural
      // targets both come from here (appended nets take ids at or past the
      // old m, which the session rejects as targets within the same batch).
      const auto m_before = static_cast<EdgeId>(mirror_pins.size());
      if (structural_round) {
        const auto live_nets = [&] {
          std::vector<EdgeId> live;
          for (EdgeId e = 0; e < m_before; ++e) {
            if (!mirror_dead[e]) live.push_back(e);
          }
          return live;
        };
        const int n_deltas = 2 + static_cast<int>(rng.next_below(3));
        for (int i = 0; i < n_deltas; ++i) {
          server::StructuralDelta d;
          const auto live = live_nets();
          // Deltas are generated against the evolving mirror state, which
          // is exactly the session's prospective-validation semantics: a
          // batch built this way is valid by construction.
          const auto gen_add_net = [&] {
            d.kind = server::StructuralDelta::Kind::kAddNet;
            const std::uint64_t want =
                std::min<std::uint64_t>(1 + rng.next_below(3), g0.num_nodes());
            while (d.pins.size() < want) {
              const auto v =
                  static_cast<NodeId>(rng.next_below(g0.num_nodes()));
              const auto it = std::lower_bound(d.pins.begin(), d.pins.end(), v);
              if (it == d.pins.end() || *it != v) d.pins.insert(it, v);
            }
            d.weight = static_cast<Weight>(rng.next_in(1, 3));
            mirror_pins.push_back(d.pins);
            mirror_ew.push_back(d.weight);
            mirror_dead.push_back(0);
          };
          // The first delta of the first structural round always strips a
          // net bare: an empty-but-live net (λ = 0, weight kept) is the
          // edge case a tombstone is NOT, and both must cost nothing.
          const bool force_empty =
              round == c.opts.incremental_rounds && i == 0;
          std::uint64_t kind = force_empty ? 3 : rng.next_below(4);
          if (kind != 0 && live.empty()) kind = 0;
          switch (kind) {
            case 0:
              gen_add_net();
              break;
            case 1: {  // remove_net: tombstone
              d.kind = server::StructuralDelta::Kind::kRemoveNet;
              d.net = live[rng.next_below(live.size())];
              mirror_pins[d.net].clear();
              mirror_ew[d.net] = 0;
              mirror_dead[d.net] = 1;
              break;
            }
            case 2: {  // add_pins: pins currently absent from a live net
              const EdgeId e = live[rng.next_below(live.size())];
              std::vector<NodeId> absent;
              for (NodeId v = 0; v < n0; ++v) {
                if (!std::binary_search(mirror_pins[e].begin(),
                                        mirror_pins[e].end(), v)) {
                  absent.push_back(v);
                }
              }
              if (absent.empty()) {
                gen_add_net();
                break;
              }
              d.kind = server::StructuralDelta::Kind::kAddPins;
              d.net = e;
              const std::uint64_t want =
                  1 + rng.next_below(std::min<std::uint64_t>(2, absent.size()));
              for (std::uint64_t t = 0; t < want; ++t) {
                const auto idx =
                    static_cast<std::size_t>(rng.next_below(absent.size()));
                d.pins.push_back(absent[idx]);
                absent.erase(absent.begin() +
                             static_cast<std::ptrdiff_t>(idx));
              }
              std::sort(d.pins.begin(), d.pins.end());
              for (const NodeId v : d.pins) {
                auto& pins = mirror_pins[e];
                pins.insert(std::lower_bound(pins.begin(), pins.end(), v), v);
              }
              break;
            }
            default: {  // remove_pins, sometimes all of them
              std::vector<EdgeId> nonempty;
              for (const EdgeId e : live) {
                if (!mirror_pins[e].empty()) nonempty.push_back(e);
              }
              if (nonempty.empty()) {
                gen_add_net();
                break;
              }
              d.kind = server::StructuralDelta::Kind::kRemovePins;
              d.net = nonempty[rng.next_below(nonempty.size())];
              std::vector<NodeId> pool = mirror_pins[d.net];
              const std::uint64_t want =
                  force_empty || rng.next_bool(0.25)
                      ? pool.size()
                      : 1 + rng.next_below(pool.size());
              for (std::uint64_t t = 0; t < want; ++t) {
                const auto idx =
                    static_cast<std::size_t>(rng.next_below(pool.size()));
                d.pins.push_back(pool[idx]);
                pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(idx));
              }
              std::sort(d.pins.begin(), d.pins.end());
              auto& pins = mirror_pins[d.net];
              for (const NodeId v : d.pins) {
                pins.erase(std::lower_bound(pins.begin(), pins.end(), v));
              }
              break;
            }
          }
          deltas.push_back(std::move(d));
        }
      }
      // Edge-weight target: live after the batch (the session rejects a
      // weight update on a net the same batch removes).
      std::vector<EdgeId> wtargets;
      for (EdgeId e = 0; e < m_before; ++e) {
        if (!mirror_dead[e]) wtargets.push_back(e);
      }
      if (!wtargets.empty() && rng.next_bool(0.4)) {
        const EdgeId e = wtargets[rng.next_below(wtargets.size())];
        const auto w = static_cast<Weight>(rng.next_in(1, 3));
        edges.push_back({e, w});
        mirror_ew[e] = w;
      }
      const auto up = session->update(nodes, edges, deltas);
      if (!up.ok ||
          up.applied != nodes.size() + edges.size() + deltas.size()) {
        c.fail("incremental-update",
               "valid-by-construction update rejected: " + up.error);
        return;
      }
      ++ver;
      shadow = rebuild_mirror();
      if (verify) {
        c.check(up.version == ver && session->version() == ver,
                "incremental-version",
                "update did not bump the version by exactly one");
        c.check(up.structural == deltas.size(), "incremental-structural",
                "update reported " + std::to_string(up.structural) +
                    " structural deltas, batch sent " +
                    std::to_string(deltas.size()));
        c.check(session->graph_hash() == shadow.content_hash(),
                "incremental-structural",
                "patched session hash diverges from a from_edges rebuild");
        std::string why0;
        c.check(session->verify_cache_integrity(&why0), "incremental-cache",
                "tracker state diverged after update: " + why0);
        if (structural_round) {
          // Atomicity probe: one invalid delta anywhere in a batch must
          // reject the whole frame with zero effect. Probe the target kinds
          // the bugfix pins down — already-tombstoned if one exists,
          // out-of-range otherwise.
          std::vector<server::StructuralDelta> bad(2);
          bad[0].kind = server::StructuralDelta::Kind::kAddNet;
          bad[0].pins = {0};
          std::size_t dead_net = mirror_dead.size();
          for (std::size_t e = 0; e < mirror_dead.size(); ++e) {
            if (mirror_dead[e]) {
              dead_net = e;
              break;
            }
          }
          bad[1].kind = server::StructuralDelta::Kind::kRemoveNet;
          bad[1].net = dead_net < mirror_dead.size()
                           ? static_cast<EdgeId>(dead_net)
                           : session->num_edges() + 7;
          const auto rejected = session->update({}, {}, bad);
          c.check(!rejected.ok, "incremental-atomicity",
                  "batch with an invalid remove_net was accepted");
          c.check(session->graph_hash() == shadow.content_hash() &&
                      session->version() == ver,
                  "incremental-atomicity",
                  "rejected batch left a mutation behind");
          const auto pinned = session->evaluate(cfg, false, ver);
          c.check(pinned.ok && pinned.version == ver, "incremental-version",
                  "evaluate at the current version refused: " + pinned.error);
          const auto outdated = session->evaluate(cfg, false, ver - 1);
          c.check(!outdated.ok, "incremental-version",
                  "evaluate accepted an outdated expected version");
        }
      }
      // Quality baseline the ladder guards against: the cached partition's
      // cost on the post-update graph (what `evaluate` reports).
      const auto before = session->evaluate(cfg, false);
      const auto out = session->repartition(cfg, /*include_parts=*/true);
      const auto balance = BalanceConstraint::for_graph(
          shadow, cfg.k, cfg.epsilon, /*relaxed=*/true);
      if (!out.ok) {
        if (verify) {
          c.check(!multilevel_partition(shadow, balance, scratch_cfg),
                  "incremental-infeasible",
                  "repartition failed but scratch multilevel succeeded: " +
                      out.error);
        }
        return;  // dead end either way; the replay stops here too
      }
      cost_trace.push_back(out.cost);
      if (!verify) continue;
      const Partition p(std::vector<PartId>(out.parts.begin(),
                                            out.parts.end()),
                        cfg.k);
      // check_feasible() weighs against the pristine instance graph; here
      // the parts must fit the *updated* weights, so check on the mirror.
      c.check(p.complete() && p.k() == cfg.k, "incremental-balance",
              out.method + " returned an incomplete partition");
      const auto mirrored_weights = p.part_weights(shadow);
      for (PartId q = 0; q < cfg.k; ++q) {
        c.check(mirrored_weights[q] <= balance.capacity(),
                "incremental-balance",
                out.method + " overfills part " + std::to_string(q) + ": " +
                    std::to_string(mirrored_weights[q]) + " > " +
                    std::to_string(balance.capacity()));
      }
      c.check(out.balanced, "incremental-balance",
              out.method + " reported balanced=false for a returned result");
      const Weight recomputed = cost(shadow, p, cfg.metric);
      c.check(recomputed == out.cost, "incremental-cost",
              out.method + " reported cost " + std::to_string(out.cost) +
                  " but mirrored recomputation gives " +
                  std::to_string(recomputed));
      std::string why;
      c.check(session->verify_cache_integrity(&why), "incremental-cache",
              "tracker state diverged after " + out.method + ": " + why);
      if (const auto scratch =
              multilevel_partition(shadow, balance, scratch_cfg)) {
        // The ladder's documented bound: every rung either stays within
        // 3 · before + 4 of the cached partition's current cost or
        // escalates, bottoming out at a full run — which is the same
        // deterministic multilevel as this scratch run.
        const Weight scratch_cost = cost(shadow, *scratch, cfg.metric);
        const Weight bound =
            std::max(3 * scratch_cost + 4,
                     before.ok ? 3 * before.cost + 4 : Weight{0});
        c.check(out.cost <= bound, "incremental-quality",
                out.method + " cost " + std::to_string(out.cost) +
                    " exceeds max(3 * scratch, 3 * before) + 4 = " +
                    std::to_string(bound));
      }
    }
  };

  std::vector<Weight> first;
  std::vector<Weight> replay;
  run_once(/*verify=*/true, first);
  run_once(/*verify=*/false, replay);
  c.check(first == replay, "determinism",
          "update/repartition interleaving cost trace differs on replay");
}

}  // namespace

std::string describe(const FuzzInstance& inst) {
  std::ostringstream os;
  os << "[family=" << inst.family << " seed=" << inst.seed
     << " n=" << inst.graph.num_nodes() << " m=" << inst.graph.num_edges()
     << " pins=" << inst.graph.num_pins() << " k=" << inst.k
     << " eps=" << inst.epsilon << " metric=" << to_string(inst.metric)
     << "]";
  return os.str();
}

std::string OracleReport::to_string() const {
  std::ostringstream os;
  if (ok()) {
    os << "ok (" << legs_run.size() << " legs)";
    return os.str();
  }
  os << violations.size() << " violation(s):\n";
  for (const auto& v : violations) {
    os << "  [" << v.invariant << "] " << v.message << "\n";
  }
  return os.str();
}

OracleReport run_oracle(const FuzzInstance& inst, const OracleOptions& opts) {
  HP_SPAN("oracle");
  HP_COUNTER_ADD("oracle.instances", 1);
  Checker c(inst, opts);
  const Hypergraph& g = inst.graph;
  const PartId k = inst.k;
  if (g.num_nodes() == 0 || k < 2) return std::move(c.report);

  c.check(g.validate(), "structure", "hypergraph fails validate()");
  const auto balance =
      BalanceConstraint::for_graph(g, k, inst.epsilon, /*relaxed=*/true);

  // hyperDAG instances must survive the Lemma B.2 recognition round trip —
  // both the random-DAG family and the workload catalogue's dataflow
  // templates, which promise acyclicity by construction.
  if (inst.family == "hyperdag" || inst.family == "dataflow") {
    c.leg("recognition", [&] {
      const auto rec = recognize_hyperdag(g);
      c.check(rec.is_hyperdag, "recognition-round-trip",
              "hyperDAG-family instance not recognized as a hyperDAG");
      if (rec.is_hyperdag) {
        c.check(valid_generator_assignment(g, rec.generator),
                "recognition-round-trip",
                "recovered generator assignment is invalid");
      }
    });
  }

  c.leg("tracker", [&] { tracker_leg(c); });

  // Heuristic solvers. Collected partitions/costs feed the exact leg.
  std::vector<std::pair<std::string, Partition>> heuristics;
  std::vector<std::pair<std::string, Weight>> costs;
  const auto record = [&](const std::string& name, const Partition& p) {
    check_feasible(c, name, p, balance);
    heuristics.emplace_back(name, p);
    costs.emplace_back(name, cost(g, p, inst.metric));
  };

  c.leg("greedy", [&] {
    const auto p = greedy_growing_partition(g, balance, inst.metric,
                                            inst.seed ^ 0x9e37ULL);
    if (p) record("greedy", *p);
    const auto q = greedy_growing_partition(g, balance, inst.metric,
                                            inst.seed ^ 0x9e37ULL);
    c.check(p.has_value() == q.has_value() &&
                (!p || same_assignment(*p, *q)),
            "determinism", "greedy differs between same-seed runs");
  });

  c.leg("fm", [&] {
    auto p = random_balanced_partition(g, balance, inst.seed ^ 0x517cULL);
    if (!p) return;
    const Weight before = cost(g, *p, inst.metric);
    FmConfig fcfg;
    fcfg.metric = inst.metric;
    const Weight after = fm_refine(g, *p, balance, fcfg);
    c.check(after == cost(g, *p, inst.metric), "fm-monotone",
            "fm_refine return value is not the partition's cost");
    c.check(after <= before, "fm-monotone",
            "fm_refine increased cost from " + std::to_string(before) +
                " to " + std::to_string(after));
    record("fm", *p);
  });

  c.leg("multilevel", [&] {
    MultilevelConfig mcfg;
    mcfg.metric = inst.metric;
    mcfg.seed = inst.seed ^ 0xab1eULL;
    mcfg.fm.threads = 1;
    const auto p = multilevel_partition(g, balance, mcfg);
    if (p) record("multilevel", *p);

    const auto repeat = multilevel_partition(g, balance, mcfg);
    c.check(p.has_value() == repeat.has_value() &&
                (!p || same_assignment(*p, *repeat)),
            "determinism", "multilevel differs between same-seed runs");
    mcfg.fm.threads = opts.alt_threads;
    const auto threaded = multilevel_partition(g, balance, mcfg);
    c.check(p.has_value() == threaded.has_value() &&
                (!p || same_assignment(*p, *threaded)),
            "determinism", "multilevel result depends on thread count");

    // Forced synchronous-FM sweep: fuzz instances are far below the
    // size gate, so drop it to 0 — every level now refines through the
    // parallel propose/commit round path — and demand a bit-identical
    // partition at 1, 2, 4, and 8 threads.
    mcfg.sync_fm_min_nodes = 0;
    std::optional<Partition> sync_base;
    for (const unsigned t : {1u, 2u, 4u, 8u}) {
      mcfg.fm.threads = t;
      auto sp = multilevel_partition(g, balance, mcfg);
      if (sp) check_feasible(c, "multilevel-sync", *sp, balance);
      if (t == 1) {
        sync_base = std::move(sp);
        continue;
      }
      c.check(sync_base.has_value() == sp.has_value() &&
                  (!sync_base || same_assignment(*sync_base, *sp)),
              "determinism",
              "sync-round multilevel differs at " + std::to_string(t) +
                  " threads");
    }
  });

  c.leg("recursive-bisection", [&] {
    if (k < 2 || (k & (k - 1)) != 0) return;  // power-of-two splits only
    MultilevelConfig mcfg;
    mcfg.metric = inst.metric;
    mcfg.seed = inst.seed ^ 0x5ec5ULL;
    const auto p = recursive_bisection(g, k, inst.epsilon, mcfg);
    if (!p) return;
    // Per-level ceilings compound: allow one max-node-weight of rounding
    // slack per bisection level on top of the global relaxed capacity.
    // Because it solves this slightly looser balance, recursive bisection
    // is feasibility-checked only — it joins neither the ≥OPT nor the
    // infeasibility cross-checks, where the slack would be unsound.
    Weight max_w = 0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      max_w = std::max(max_w, g.node_weight(v));
    }
    int levels = 0;
    for (PartId t = k; t > 1; t /= 2) ++levels;
    check_feasible(c, "recursive-bisection", *p, balance, levels * max_w);
  });

  if (opts.run_annealing) {
    c.leg("annealing", [&] {
      AnnealingConfig acfg;
      acfg.metric = inst.metric;
      acfg.seed = inst.seed ^ 0x3a17ULL;
      acfg.temperature_steps = 15;
      acfg.moves_per_node = 2;
      const auto p = annealing_partition(g, balance, acfg);
      if (p) record("annealing", *p);
    });
  }

  if (opts.run_stream) {
    c.leg("stream", [&] { stream_leg(c, balance, heuristics, costs); });
  }

  if (opts.run_incremental) {
    c.leg("incremental", [&] { incremental_leg(c); });
  }

  const bool exact_ok =
      g.num_nodes() <= opts.exact_node_limit &&
      (g.num_nodes() <= 10 || k <= 4);
  if (exact_ok) {
    c.leg("exact", [&] { exact_leg(c, balance, heuristics, costs); });
  }

  return std::move(c.report);
}

}  // namespace hp::fuzz
