#include "hyperpart/server/session.hpp"

#include <algorithm>
#include <cstring>
#include <mutex>
#include <set>
#include <sstream>
#include <stdexcept>

#include "hyperpart/algo/incremental.hpp"
#include "hyperpart/algo/vcycle.hpp"
#include "hyperpart/io/hmetis_io.hpp"
#include "hyperpart/obs/telemetry.hpp"
#include "hyperpart/stream/binary_format.hpp"

namespace hp::server {

namespace {

[[nodiscard]] BalanceConstraint balance_for(const Hypergraph& g,
                                            const SessionConfig& cfg) {
  // Relaxed (ceiling) capacity: a long-lived service should never reject a
  // graph whose exact threshold is a hair below an integer.
  return BalanceConstraint::for_graph(g, cfg.k, cfg.epsilon, /*relaxed=*/true);
}

[[nodiscard]] FmConfig fm_for(const SessionConfig& cfg) {
  FmConfig fm;
  fm.metric = cfg.metric;
  fm.threads = cfg.threads;
  return fm;
}

}  // namespace

GraphSession::GraphSession(Hypergraph g, std::string name)
    : name_(std::move(name)), g_(std::move(g)) {
  graph_hash_ = g_.content_hash();
}

std::unique_ptr<GraphSession> GraphSession::from_file(const std::string& path) {
  Hypergraph g;
  if (stream::is_binary_file(path)) {
    // mmap once, copy the sections into mutable storage, drop the mapping.
    stream::MappedHypergraph mapped(path);
    g = mapped.materialize();
  } else {
    g = read_hmetis_file(path);
  }
  return std::unique_ptr<GraphSession>(new GraphSession(std::move(g), path));
}

std::unique_ptr<GraphSession> GraphSession::from_graph(Hypergraph g,
                                                       std::string name) {
  return std::unique_ptr<GraphSession>(
      new GraphSession(std::move(g), std::move(name)));
}

GraphSession::CacheKey GraphSession::key_of(const SessionConfig& cfg) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof cfg.epsilon);
  std::memcpy(&bits, &cfg.epsilon, sizeof bits);
  return CacheKey{cfg.k, bits, cfg.metric, cfg.seed};
}

MultilevelConfig GraphSession::ml_config(const SessionConfig& cfg) const {
  MultilevelConfig ml;
  ml.metric = cfg.metric;
  ml.seed = cfg.seed;
  ml.fm.threads = cfg.threads;
  return ml;
}

PartitionOutcome GraphSession::outcome_from(const Entry& e,
                                            const SessionConfig& cfg,
                                            std::string method, bool cache_hit,
                                            double fraction,
                                            bool include_parts) const {
  PartitionOutcome out;
  out.ok = true;
  out.method = std::move(method);
  out.cache_hit = cache_hit;
  out.cost = e.cost;
  out.part_weights = e.partition.part_weights(g_);
  out.balanced = balance_for(g_, cfg).satisfied(out.part_weights);
  out.change_fraction = fraction;
  out.version = version();
  if (include_parts) {
    out.parts.assign(e.partition.raw().begin(), e.partition.raw().end());
  }
  return out;
}

void GraphSession::commit_entry(const CacheKey& key, Entry entry) {
  std::unique_lock lock(mu_);
  cache_[key] = std::move(entry);
}

PartitionOutcome GraphSession::run_full(const SessionConfig& cfg,
                                        const CacheKey& key,
                                        bool include_parts) {
  // The admitted mutator reads g_ without a lock: update() is the only
  // writer and it needs the mutator slot we hold.
  const BalanceConstraint balance = balance_for(g_, cfg);
  Entry entry;
  std::optional<Partition> p =
      multilevel_partition_cached(g_, balance, ml_config(cfg), &entry.hierarchy);
  if (!p) {
    PartitionOutcome out;
    out.version = version();
    out.error = "no feasible partition (capacity too tight for node weights)";
    return out;
  }
  entry.tracker = std::make_unique<ConnectivityTracker>(g_, *p, cfg.threads);
  entry.tracker->enable_gain_cache(cfg.metric, cfg.threads);
  entry.cost = entry.tracker->cost(cfg.metric);
  entry.partition = std::move(*p);
  entry.method = "full";
  entry.built_hash = graph_hash_;
  entry.built_units = change_units_;
  HP_COUNTER_ADD("server.cache_misses", 1);
  PartitionOutcome out =
      outcome_from(entry, cfg, "full", false, 0.0, include_parts);
  commit_entry(key, std::move(entry));
  return out;
}

PartitionOutcome GraphSession::partition(const SessionConfig& cfg,
                                         bool include_parts) {
  HP_SPAN("session.partition");
  const CacheKey key = key_of(cfg);
  auto it = cache_.find(key);
  if (it != cache_.end() && it->second.built_hash == graph_hash_) {
    HP_COUNTER_ADD("server.cache_hits", 1);
    return outcome_from(it->second, cfg, "cached", true, 0.0, include_parts);
  }
  if (it != cache_.end() && !it->second.hierarchy.empty() &&
      fraction_since(it->second) <= kDeltaFmMaxFraction) {
    // Weight-only drift small enough that the cached hierarchy is still a
    // faithful coarsening: re-run initial + uncoarsen phases only. The
    // coarse levels carry pre-update weights, so the result is feasibility-
    // checked against the *current* graph before being accepted.
    // multilevel_partition_cached only READS a non-empty hierarchy, so no
    // lock is needed around the compute; every entry WRITE below happens
    // under the unique lock so readers never see a torn entry.
    Entry& e = it->second;
    const double frac = fraction_since(e);
    const BalanceConstraint balance = balance_for(g_, cfg);
    std::optional<Partition> p =
        multilevel_partition_cached(g_, balance, ml_config(cfg), &e.hierarchy);
    std::unique_ptr<ConnectivityTracker> tracker;
    if (p) {
      tracker = std::make_unique<ConnectivityTracker>(g_, *p, cfg.threads);
      tracker->enable_gain_cache(cfg.metric, cfg.threads);
      if (!balance.satisfied(p->part_weights(g_)) &&
          rebalance_with_tracker(g_, *tracker, balance, cfg.metric,
                                 cfg.threads)) {
        // The coarse levels carried pre-drift weights, so the reused result
        // can overshoot a part capacity by the drift amount; a gain-guided
        // rebalance repairs that without touching the hierarchy.
        *p = tracker->to_partition();
      }
    }
    if (p && balance.satisfied(p->part_weights(g_))) {
      const Weight cost = tracker->cost(cfg.metric);
      {
        std::unique_lock lock(mu_);
        e.tracker = std::move(tracker);
        e.tracker_stale = false;
        e.cost = cost;
        e.partition = std::move(*p);
        e.method = "hierarchy";
        e.built_hash = graph_hash_;
        e.built_units = change_units_;
      }
      HP_COUNTER_ADD("server.cache_hits", 1);
      return outcome_from(e, cfg, "hierarchy", true, frac, include_parts);
    }
    std::unique_lock lock(mu_);
    e.hierarchy = MultilevelHierarchy{};  // proven stale; drop it
  }
  return run_full(cfg, key, include_parts);
}

PartitionOutcome GraphSession::repartition(const SessionConfig& cfg,
                                           bool include_parts) {
  HP_SPAN("session.repartition");
  const CacheKey key = key_of(cfg);
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    HP_COUNTER_ADD("server.repartition.full", 1);
    return run_full(cfg, key, include_parts);
  }
  Entry& e = it->second;
  if (e.built_hash == graph_hash_) {
    HP_COUNTER_ADD("server.cache_hits", 1);
    return outcome_from(e, cfg, "cached", true, 0.0, include_parts);
  }
  const double frac = fraction_since(e);
  const BalanceConstraint balance = balance_for(g_, cfg);

  // Rung 1: ΔFM on the cached tracker.
  if (frac <= kDeltaFmMaxFraction && e.tracker) {
    if (e.tracker_stale) {
      // Edge weights (or, past the patchability threshold, net structure)
      // changed under this tracker — rebuild from the cached partition
      // (O(pins), no coarsening). The partition itself stays valid: the
      // node set never changes.
      auto fresh =
          std::make_unique<ConnectivityTracker>(g_, e.partition, cfg.threads);
      std::unique_lock lock(mu_);
      e.tracker = std::move(fresh);
      e.tracker_stale = false;
      HP_COUNTER_ADD("server.tracker_rebuilds", 1);
    }
    // Quality-guard baseline: the cached partition's cost on the *current*
    // graph. The tracker is exact here (just rebuilt, or node-only drift
    // which never touches edge-based costs), so this is O(1).
    const Weight before = e.tracker->cost(cfg.metric);
    // ΔFM mutates the tracker's *contents* without a lock — readers never
    // dereference trackers, only the committed (partition, cost) fields.
    Partition p;
    std::optional<Weight> cost =
        delta_fm_refine(g_, *e.tracker, p, balance, fm_for(cfg));
    if (cost && *cost > 3 * before + 4) {
      // Rebalancing dug the partition into a hole (documented bound in
      // DESIGN.md: a rung may cost at most 3 · before + 4). Escalate.
      HP_COUNTER_ADD("server.repartition.quality_fallbacks", 1);
      cost.reset();
    }
    if (cost) {
      {
        std::unique_lock lock(mu_);
        e.cost = *cost;
        e.partition = std::move(p);
        e.method = "delta_fm";
        e.built_hash = graph_hash_;
        e.built_units = change_units_;
      }
      HP_COUNTER_ADD("server.cache_hits", 1);
      HP_COUNTER_ADD("server.repartition.delta_fm", 1);
      return outcome_from(e, cfg, "delta_fm", true, frac, include_parts);
    }
    // Rebalance failed; the tracker was left in a perturbed state — it no
    // longer matches e.partition, so it must not be reused below.
    std::unique_lock lock(mu_);
    e.tracker.reset();
  }

  // Rung 2: partition-aware V-cycles seeded from the cached partition.
  if (frac <= kVcycleMaxFraction && e.partition.complete() &&
      e.partition.k() == cfg.k) {
    Partition p = e.partition;
    bool feasible = balance.satisfied(p.part_weights(g_));
    auto tracker = std::make_unique<ConnectivityTracker>(g_, p, cfg.threads);
    const Weight before = tracker->cost(cfg.metric);
    if (!feasible) {
      feasible = rebalance_with_tracker(g_, *tracker, balance, cfg.metric,
                                        cfg.threads);
      if (feasible) p = tracker->to_partition();
    }
    if (feasible) {
      const Weight cost = vcycle_refine(g_, p, balance, ml_config(cfg));
      if (cost > 3 * before + 4) {
        // Same quality guard as the ΔFM rung: never commit a result more
        // than 3 · before + 4 worse than what the cache already had.
        HP_COUNTER_ADD("server.repartition.quality_fallbacks", 1);
        HP_COUNTER_ADD("server.repartition.full", 1);
        return run_full(cfg, key, include_parts);
      }
      // The refined partition differs from the one the tracker mirrors;
      // rebuild so the next ΔFM starts exact.
      auto fresh = std::make_unique<ConnectivityTracker>(g_, p, cfg.threads);
      fresh->enable_gain_cache(cfg.metric, cfg.threads);
      {
        std::unique_lock lock(mu_);
        e.tracker = std::move(fresh);
        e.tracker_stale = false;
        e.cost = cost;
        e.partition = std::move(p);
        e.method = "vcycle";
        e.built_hash = graph_hash_;
        e.built_units = change_units_;
      }
      HP_COUNTER_ADD("server.cache_hits", 1);
      HP_COUNTER_ADD("server.repartition.vcycle", 1);
      return outcome_from(e, cfg, "vcycle", true, frac, include_parts);
    }
  }

  // Rung 3: full multilevel.
  HP_COUNTER_ADD("server.repartition.full", 1);
  return run_full(cfg, key, include_parts);
}

UpdateOutcome GraphSession::update(std::span<const WeightUpdate> node_updates,
                                   std::span<const WeightUpdate> edge_updates,
                                   std::span<const StructuralDelta> structural) {
  HP_SPAN("session.update");
  UpdateOutcome out;
  out.version = version();
  // Validate everything before touching any state: an update either applies
  // in full or not at all. Structural deltas are validated against the
  // prospective final pin sets (each delta applied in order to an in-memory
  // copy of the touched nets), so an invalid delta anywhere in the batch —
  // including remove_net / remove_pins on an already-removed net — rejects
  // the whole frame before a single mutation lands.
  for (const WeightUpdate& u : node_updates) {
    if (u.id >= g_.num_nodes()) {
      out.error = "node id out of range: " + std::to_string(u.id);
      return out;
    }
    if (u.weight < 0) {
      out.error = "negative node weight for id " + std::to_string(u.id);
      return out;
    }
  }

  // touched: prospective (sorted) pin list per existing net the batch
  // rewrites; removed_now: nets tombstoned by this batch.
  std::map<EdgeId, std::vector<NodeId>> touched;
  std::set<EdgeId> removed_now;
  std::vector<NewEdge> appended;
  const auto prospective = [&](EdgeId e) -> std::vector<NodeId>& {
    auto it = touched.find(e);
    if (it == touched.end()) {
      const auto p = g_.pins(e);
      it = touched.emplace(e, std::vector<NodeId>(p.begin(), p.end())).first;
    }
    return it->second;
  };
  const auto dead = [&](EdgeId e) {
    return net_removed(e) || removed_now.count(e) != 0;
  };
  for (const StructuralDelta& d : structural) {
    switch (d.kind) {
      case StructuralDelta::Kind::kAddNet: {
        if (d.weight < 0) {
          out.error = "add_net: negative weight";
          return out;
        }
        if (d.pins.empty()) {
          out.error = "add_net: needs at least one pin";
          return out;
        }
        for (const NodeId v : d.pins) {
          if (v >= g_.num_nodes()) {
            out.error = "add_net: pin out of range: " + std::to_string(v);
            return out;
          }
        }
        NewEdge ne;
        ne.pins.assign(d.pins.begin(), d.pins.end());
        ne.weight = d.weight;
        appended.push_back(std::move(ne));
        break;
      }
      case StructuralDelta::Kind::kRemoveNet: {
        if (d.net >= g_.num_edges()) {
          out.error = "remove_net: net out of range: " + std::to_string(d.net);
          return out;
        }
        if (dead(d.net)) {
          out.error = "remove_net: net " + std::to_string(d.net) +
                      " is already removed";
          return out;
        }
        removed_now.insert(d.net);
        prospective(d.net).clear();
        break;
      }
      case StructuralDelta::Kind::kAddPins:
      case StructuralDelta::Kind::kRemovePins: {
        const bool adding = d.kind == StructuralDelta::Kind::kAddPins;
        const char* verb = adding ? "add_pins" : "remove_pins";
        if (d.net >= g_.num_edges()) {
          out.error =
              std::string(verb) + ": net out of range: " + std::to_string(d.net);
          return out;
        }
        if (dead(d.net)) {
          out.error = std::string(verb) + ": net " + std::to_string(d.net) +
                      " is removed";
          return out;
        }
        std::vector<NodeId>& pins = prospective(d.net);
        for (const NodeId v : d.pins) {
          if (v >= g_.num_nodes()) {
            out.error =
                std::string(verb) + ": pin out of range: " + std::to_string(v);
            return out;
          }
          const auto it = std::lower_bound(pins.begin(), pins.end(), v);
          const bool present = it != pins.end() && *it == v;
          if (adding) {
            if (present) {
              out.error = "add_pins: pin " + std::to_string(v) +
                          " already in net " + std::to_string(d.net);
              return out;
            }
            pins.insert(it, v);
          } else {
            if (!present) {
              out.error = "remove_pins: pin " + std::to_string(v) +
                          " not in net " + std::to_string(d.net);
              return out;
            }
            pins.erase(it);
          }
        }
        break;
      }
    }
  }

  for (const WeightUpdate& u : edge_updates) {
    if (u.id >= g_.num_edges()) {
      out.error = "edge id out of range: " + std::to_string(u.id);
      return out;
    }
    if (u.weight < 0) {
      out.error = "negative edge weight for id " + std::to_string(u.id);
      return out;
    }
    if (dead(u.id)) {
      out.error = "edge " + std::to_string(u.id) + " is removed";
      return out;
    }
  }

  // Patchability: per-net tracker repair costs O(touched pins · k); once the
  // batch rewrites a sizable share of all pins, marking trackers stale (and
  // letting repartition rebuild from the cached partition in O(ρ)) is both
  // cheaper and simpler. Threshold argument in DESIGN.md.
  std::uint64_t touched_volume = 0;
  for (const auto& [e, pins] : touched) {
    touched_volume += g_.edge_size(e) + pins.size();
  }
  for (const auto& a : appended) touched_volume += a.pins.size();
  const bool patchable =
      static_cast<double>(touched_volume) <=
      kStructuralPatchMaxFraction *
          std::max<double>(1.0, static_cast<double>(g_.num_pins()));

  std::unique_lock lock(mu_);
  for (const WeightUpdate& u : node_updates) {
    const Weight delta = u.weight - g_.node_weight(u.id);
    g_.update_node_weight(u.id, u.weight);
    if (delta == 0) continue;
    // Node weights never enter pin counts, λ, costs, or the gain cache —
    // patching the part weights keeps every fresh tracker exact.
    for (auto& [key, entry] : cache_) {
      if (entry.tracker && !entry.tracker_stale) {
        entry.tracker->apply_node_weight_delta(u.id, delta);
      }
    }
  }

  if (!structural.empty()) {
    std::vector<EdgeId> touched_ids;
    touched_ids.reserve(touched.size());
    std::vector<EdgeRewrite> rewrites;
    rewrites.reserve(touched.size());
    for (auto& [e, pins] : touched) {
      touched_ids.push_back(e);
      rewrites.push_back(EdgeRewrite{e, std::move(pins)});
    }
    // Phase 1 on every fresh tracker BEFORE the graph mutates: the old pin
    // lists and λ values are still live, so each touched net's cost
    // contribution can be subtracted exactly.
    std::vector<ConnectivityTracker*> patching;
    for (auto& [key, entry] : cache_) {
      if (!entry.tracker) continue;
      if (patchable && !entry.tracker_stale) {
        entry.tracker->begin_structural_patch(touched_ids);
        patching.push_back(entry.tracker.get());
        ++out.trackers_patched;
      } else if (!entry.tracker_stale) {
        entry.tracker_stale = true;
        ++out.trackers_staled;
      }
    }
    g_.apply_structural_batch(std::move(rewrites), std::move(appended));
    if (g_.num_edges() > net_removed_.size()) {
      net_removed_.resize(g_.num_edges(), 0);
    }
    for (const EdgeId e : removed_now) {
      // Tombstone: empty pin list (already applied) + weight 0, so the net
      // contributes nothing anywhere while its id stays allocated.
      g_.update_edge_weight(e, 0);
      net_removed_[e] = 1;
    }
    // Phase 2 AFTER the tombstone weights land: a removed net re-enters
    // the totals with λ = 0, i.e. not at all, whatever its weight.
    for (ConnectivityTracker* t : patching) {
      t->finish_structural_patch(touched_ids);
    }
    HP_COUNTER_ADD("server.structural_updates", 1);
    HP_COUNTER_ADD("server.tracker_patches",
                   static_cast<std::int64_t>(out.trackers_patched));
  }

  for (const WeightUpdate& u : edge_updates) {
    g_.update_edge_weight(u.id, u.weight);
    for (auto& [key, entry] : cache_) {
      if (entry.tracker) entry.tracker_stale = true;
    }
  }
  change_units_ +=
      node_updates.size() + edge_updates.size() + structural.size();
  graph_hash_ = g_.content_hash();
  version_.fetch_add(1, std::memory_order_acq_rel);
  out.ok = true;
  out.applied =
      node_updates.size() + edge_updates.size() + structural.size();
  out.structural = structural.size();
  out.version = version();
  for (const auto& [key, entry] : cache_) {
    out.change_fraction = std::max(out.change_fraction, fraction_since(entry));
  }
  HP_COUNTER_ADD("server.updates", 1);
  return out;
}

PartitionOutcome GraphSession::evaluate(
    const SessionConfig& cfg, bool include_parts,
    std::optional<std::uint64_t> expected_version) {
  HP_SPAN("session.evaluate");
  // The shared lock makes the whole read atomic with respect to mutation
  // commits, so version() is stable for the duration of the call and names
  // exactly the snapshot this answer describes.
  std::shared_lock lock(mu_);
  if (expected_version && *expected_version != version()) {
    PartitionOutcome out;
    out.version = version();
    out.error = "version mismatch: expected " +
                std::to_string(*expected_version) + ", current " +
                std::to_string(version());
    return out;
  }
  const CacheKey key = key_of(cfg);
  const auto it = cache_.find(key);
  if (it == cache_.end()) {
    PartitionOutcome out;
    out.version = version();
    out.error = "no cached partition for this config; call partition first";
    return out;
  }
  const Entry& e = it->second;
  PartitionOutcome out;
  out.ok = true;
  out.version = version();
  out.method = "cached";
  out.cache_hit = true;
  out.cost = e.built_hash == graph_hash_
                 ? e.cost
                 : cost_of(g_, e.partition, cfg.metric);
  out.part_weights = e.partition.part_weights(g_);
  out.balanced = balance_for(g_, cfg).satisfied(out.part_weights);
  out.change_fraction = fraction_since(e);
  if (include_parts) {
    out.parts.assign(e.partition.raw().begin(), e.partition.raw().end());
  }
  return out;
}

std::vector<GraphSession::EntryStats> GraphSession::entry_stats() const {
  std::shared_lock lock(mu_);
  std::vector<EntryStats> stats;
  stats.reserve(cache_.size());
  for (const auto& [key, e] : cache_) {
    EntryStats s;
    s.k = key.k;
    std::memcpy(&s.epsilon, &key.eps_bits, sizeof s.epsilon);
    s.metric = key.metric;
    s.seed = key.seed;
    s.cost = e.cost;
    s.method = e.method;
    s.tracker_cached = e.tracker != nullptr;
    s.tracker_stale = e.tracker_stale;
    s.hierarchy_levels = e.hierarchy.levels.size();
    s.current = e.built_hash == graph_hash_;
    stats.push_back(std::move(s));
  }
  return stats;
}

bool GraphSession::verify_cache_integrity(std::string* why) const {
  // Test/fuzz hook; callers guarantee quiescence (no concurrent mutator).
  std::shared_lock lock(mu_);
  for (const auto& [key, e] : cache_) {
    if (!e.tracker || e.tracker_stale) continue;
    std::ostringstream tag;
    tag << "entry(k=" << key.k << ", seed=" << key.seed << "): ";
    if (!e.partition.complete()) {
      if (why) *why = tag.str() + "cached partition incomplete";
      return false;
    }
    const ConnectivityTracker fresh(g_, e.partition);
    for (PartId q = 0; q < fresh.k(); ++q) {
      if (fresh.part_weight(q) != e.tracker->part_weight(q)) {
        if (why) {
          *why = tag.str() + "part " + std::to_string(q) + " weight " +
                 std::to_string(e.tracker->part_weight(q)) + " != rebuilt " +
                 std::to_string(fresh.part_weight(q));
        }
        return false;
      }
    }
    if (fresh.connectivity_cost() != e.tracker->connectivity_cost() ||
        fresh.cut_net_cost() != e.tracker->cut_net_cost()) {
      if (why) *why = tag.str() + "tracker costs diverge from rebuilt";
      return false;
    }
    for (EdgeId edge = 0; edge < g_.num_edges(); ++edge) {
      if (fresh.lambda(edge) != e.tracker->lambda(edge)) {
        if (why) {
          *why = tag.str() + "lambda mismatch at edge " + std::to_string(edge);
        }
        return false;
      }
    }
    if (e.built_hash == graph_hash_) {
      const Weight expect = cost_of(g_, e.partition, key.metric);
      if (e.cost != expect) {
        if (why) {
          *why = tag.str() + "stored cost " + std::to_string(e.cost) +
                 " != recomputed " + std::to_string(expect);
        }
        return false;
      }
    }
  }
  return true;
}

}  // namespace hp::server
