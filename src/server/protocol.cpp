#include "hyperpart/server/protocol.hpp"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstring>

namespace hp::server {

namespace {

/// Read exactly n bytes; returns bytes read before EOF (< n means EOF),
/// or -1 on error. Retries EINTR.
std::int64_t read_exact(int fd, char* buf, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, buf + got, n - got);
    if (r == 0) break;
    if (r < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    got += static_cast<std::size_t>(r);
  }
  return static_cast<std::int64_t>(got);
}

bool write_exact(int fd, const char* buf, std::size_t n) {
  std::size_t put = 0;
  while (put < n) {
    const ssize_t r = ::write(fd, buf + put, n - put);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    put += static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace

const char* frame_error_name(FrameError e) noexcept {
  switch (e) {
    case FrameError::kNone: return "none";
    case FrameError::kClosed: return "closed";
    case FrameError::kBadMagic: return "bad_magic";
    case FrameError::kOversize: return "oversize";
    case FrameError::kTruncated: return "truncated";
    case FrameError::kIo: return "io";
  }
  return "unknown";
}

FrameError read_frame(int fd, std::string& payload, std::uint32_t max_payload) {
  char header[8];
  const std::int64_t got = read_exact(fd, header, sizeof header);
  if (got < 0) return FrameError::kIo;
  if (got == 0) return FrameError::kClosed;
  if (got < static_cast<std::int64_t>(sizeof header)) {
    // Partial header: a bad magic is diagnosable from what we have.
    if (std::memcmp(header, kFrameMagic,
                    std::min<std::size_t>(static_cast<std::size_t>(got),
                                          sizeof kFrameMagic)) != 0) {
      return FrameError::kBadMagic;
    }
    return FrameError::kTruncated;
  }
  if (std::memcmp(header, kFrameMagic, sizeof kFrameMagic) != 0) {
    return FrameError::kBadMagic;
  }
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(static_cast<unsigned char>(header[4 + i]))
           << (8 * i);
  }
  if (len > max_payload) return FrameError::kOversize;
  payload.resize(len);
  if (len > 0) {
    const std::int64_t body = read_exact(fd, payload.data(), len);
    if (body < 0) return FrameError::kIo;
    if (body < static_cast<std::int64_t>(len)) return FrameError::kTruncated;
  }
  return FrameError::kNone;
}

FrameError write_frame(int fd, const std::string& payload) {
  if (payload.size() > static_cast<std::size_t>(UINT32_MAX)) {
    return FrameError::kOversize;
  }
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  char header[8];
  std::memcpy(header, kFrameMagic, sizeof kFrameMagic);
  for (int i = 0; i < 4; ++i) {
    header[4 + i] = static_cast<char>((len >> (8 * i)) & 0xff);
  }
  if (!write_exact(fd, header, sizeof header)) return FrameError::kIo;
  if (len > 0 && !write_exact(fd, payload.data(), len)) return FrameError::kIo;
  return FrameError::kNone;
}

}  // namespace hp::server
