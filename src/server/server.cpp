#include "hyperpart/server/server.hpp"

#include <netinet/in.h>
#include <signal.h>
#include <stdlib.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <utility>

#include "hyperpart/obs/telemetry.hpp"

namespace hp::server {

namespace json = hp::obs::json;

namespace {

/// realpath() when the path resolves, the raw string otherwise — the
/// session-map key for both load and graph-addressed lookups.
[[nodiscard]] std::string canonical_key(const std::string& path) {
  std::string key = path;
  if (char* real = ::realpath(path.c_str(), nullptr)) {
    key.assign(real);
    ::free(real);
  }
  return key;
}

[[nodiscard]] json::Value error_response(const std::string& message) {
  json::Value out{json::Object{}};
  out.set("ok", false);
  out.set("error", message);
  return out;
}

[[nodiscard]] const json::Value* field(const json::Value& req,
                                       const char* key) {
  return req.find(key);
}

/// Read an integral field; returns fallback when absent, nullopt (= type
/// error) when present but not an integer.
[[nodiscard]] std::optional<std::int64_t> int_field(const json::Value& req,
                                                    const char* key,
                                                    std::int64_t fallback,
                                                    bool* bad) {
  const json::Value* v = field(req, key);
  if (!v) return fallback;
  if (!v->is_number() || !v->is_integral()) {
    *bad = true;
    return std::nullopt;
  }
  return v->as_int();
}

struct MutatorSlot {
  GraphSession* session = nullptr;
  ~MutatorSlot() {
    if (session) session->release_mutator();
  }
};

void outcome_to_json(const PartitionOutcome& o, json::Value& out) {
  out.set("ok", o.ok);
  out.set("version", static_cast<std::int64_t>(o.version));
  if (!o.ok) {
    out.set("error", o.error);
    return;
  }
  out.set("method", o.method);
  out.set("cache_hit", o.cache_hit);
  out.set("cost", o.cost);
  out.set("balanced", o.balanced);
  out.set("change_fraction", o.change_fraction);
  json::Array weights;
  weights.reserve(o.part_weights.size());
  for (const Weight w : o.part_weights) weights.emplace_back(w);
  out.set("part_weights", json::Value(std::move(weights)));
  if (!o.parts.empty()) {
    json::Array parts;
    parts.reserve(o.parts.size());
    for (const PartId p : o.parts) {
      parts.emplace_back(static_cast<std::int64_t>(p));
    }
    out.set("parts", json::Value(std::move(parts)));
  }
}

/// Parse [[id, weight], ...]; returns false with `err` set on shape errors.
bool parse_weight_updates(const json::Value& req, const char* key,
                          std::vector<WeightUpdate>& out, std::string& err) {
  const json::Value* v = field(req, key);
  if (!v) return true;
  if (!v->is_array()) {
    err = std::string(key) + " must be an array of [id, weight] pairs";
    return false;
  }
  for (const json::Value& pair : v->as_array()) {
    if (!pair.is_array() || pair.as_array().size() != 2 ||
        !pair.as_array()[0].is_number() || !pair.as_array()[1].is_number()) {
      err = std::string(key) + " entries must be [id, weight] pairs";
      return false;
    }
    WeightUpdate u;
    const std::int64_t id = pair.as_array()[0].as_int();
    if (id < 0) {
      err = std::string(key) + ": negative id";
      return false;
    }
    u.id = static_cast<std::uint32_t>(id);
    u.weight = pair.as_array()[1].as_int();
    out.push_back(u);
  }
  return true;
}

/// Parse a JSON array of node ids.
bool parse_pin_array(const json::Value& v, const char* ctx,
                     std::vector<NodeId>& pins, std::string& err) {
  if (!v.is_array()) {
    err = std::string(ctx) + ": pins must be an array of node ids";
    return false;
  }
  for (const json::Value& p : v.as_array()) {
    if (!p.is_number() || !p.is_integral() || p.as_int() < 0) {
      err = std::string(ctx) + ": pins must be non-negative integers";
      return false;
    }
    pins.push_back(static_cast<NodeId>(p.as_int()));
  }
  return true;
}

/// Parse the structural arrays of an update frame into one delta batch, in
/// the documented application order: remove_nets → remove_pins → add_pins →
/// add_nets (only add_nets appends, so new nets take ids m, m+1, … in their
/// array order regardless).
bool parse_structural(const json::Value& req, std::vector<StructuralDelta>& out,
                      std::string& err) {
  if (const json::Value* v = field(req, "remove_nets")) {
    if (!v->is_array()) {
      err = "remove_nets must be an array of net ids";
      return false;
    }
    for (const json::Value& id : v->as_array()) {
      if (!id.is_number() || !id.is_integral() || id.as_int() < 0) {
        err = "remove_nets entries must be non-negative net ids";
        return false;
      }
      StructuralDelta d;
      d.kind = StructuralDelta::Kind::kRemoveNet;
      d.net = static_cast<EdgeId>(id.as_int());
      out.push_back(std::move(d));
    }
  }
  const auto pin_deltas = [&](const char* key,
                              StructuralDelta::Kind kind) -> bool {
    const json::Value* v = field(req, key);
    if (!v) return true;
    if (!v->is_array()) {
      err = std::string(key) + " must be an array of {net, pins} objects";
      return false;
    }
    for (const json::Value& o : v->as_array()) {
      const json::Value* net = o.is_object() ? o.find("net") : nullptr;
      const json::Value* pins = o.is_object() ? o.find("pins") : nullptr;
      if (!net || !net->is_number() || !net->is_integral() ||
          net->as_int() < 0 || !pins) {
        err = std::string(key) +
              " entries need a non-negative net id and a pins array";
        return false;
      }
      StructuralDelta d;
      d.kind = kind;
      d.net = static_cast<EdgeId>(net->as_int());
      if (!parse_pin_array(*pins, key, d.pins, err)) return false;
      out.push_back(std::move(d));
    }
    return true;
  };
  if (!pin_deltas("remove_pins", StructuralDelta::Kind::kRemovePins)) {
    return false;
  }
  if (!pin_deltas("add_pins", StructuralDelta::Kind::kAddPins)) return false;
  if (const json::Value* v = field(req, "add_nets")) {
    if (!v->is_array()) {
      err = "add_nets must be an array of {pins, weight?} objects";
      return false;
    }
    for (const json::Value& o : v->as_array()) {
      const json::Value* pins = o.is_object() ? o.find("pins") : nullptr;
      if (!pins) {
        err = "add_nets entries need a pins array";
        return false;
      }
      StructuralDelta d;
      d.kind = StructuralDelta::Kind::kAddNet;
      if (!parse_pin_array(*pins, "add_nets", d.pins, err)) return false;
      if (const json::Value* w = o.find("weight")) {
        if (!w->is_number() || !w->is_integral()) {
          err = "add_nets weight must be an integer";
          return false;
        }
        d.weight = w->as_int();
      }
      out.push_back(std::move(d));
    }
  }
  return true;
}

}  // namespace

Server::Server(ServerConfig cfg) : cfg_(std::move(cfg)) {}

Server::~Server() {
  shutdown();
  wait();
}

void Server::start() {
  if (cfg_.unix_socket.empty()) {
    throw std::runtime_error("server: unix_socket path is required");
  }
  // A dying peer must surface as a write error, not a process-killing
  // SIGPIPE.
  ::signal(SIGPIPE, SIG_IGN);

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (cfg_.unix_socket.size() >= sizeof addr.sun_path) {
    throw std::runtime_error("server: unix socket path too long: " +
                             cfg_.unix_socket);
  }
  std::memcpy(addr.sun_path, cfg_.unix_socket.c_str(),
              cfg_.unix_socket.size() + 1);
  // Only a stale *socket* from a previous run may be swept aside; anything
  // else at the path (a regular file, a directory, even a symlink) means
  // the operator mistyped --socket, and unlinking it would destroy their
  // data. lstat, not stat: a symlink pointing at a socket is still not a
  // socket at this path.
  struct stat st{};
  if (::lstat(cfg_.unix_socket.c_str(), &st) == 0 && !S_ISSOCK(st.st_mode)) {
    throw SocketPathError("refusing to start: " + cfg_.unix_socket +
                          " exists and is not a socket");
  }
  unix_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (unix_fd_ < 0) throw std::runtime_error("server: socket() failed");
  ::unlink(cfg_.unix_socket.c_str());  // stale socket from a previous run
  if (::bind(unix_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(unix_fd_, 64) != 0) {
    const int err = errno;
    ::close(unix_fd_);
    unix_fd_ = -1;
    throw std::runtime_error("server: cannot listen on " + cfg_.unix_socket +
                             ": " + std::strerror(err));
  }

  if (cfg_.tcp_port >= 0) {
    tcp_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (tcp_fd_ < 0) throw std::runtime_error("server: tcp socket() failed");
    const int one = 1;
    ::setsockopt(tcp_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in tcp{};
    tcp.sin_family = AF_INET;
    tcp.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    tcp.sin_port = htons(static_cast<std::uint16_t>(cfg_.tcp_port));
    if (::bind(tcp_fd_, reinterpret_cast<const sockaddr*>(&tcp),
               sizeof tcp) != 0 ||
        ::listen(tcp_fd_, 64) != 0) {
      const int err = errno;
      ::close(tcp_fd_);
      tcp_fd_ = -1;
      throw std::runtime_error(std::string("server: cannot listen on tcp: ") +
                               std::strerror(err));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(tcp_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
        0) {
      bound_tcp_port_ = ntohs(bound.sin_port);
    }
  }

  std::lock_guard lock(threads_mu_);
  accept_threads_.emplace_back([this, fd = unix_fd_] { accept_loop(fd); });
  if (tcp_fd_ >= 0) {
    accept_threads_.emplace_back([this, fd = tcp_fd_] { accept_loop(fd); });
  }
}

void Server::accept_loop(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed by shutdown(), or fatal
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    std::lock_guard lock(threads_mu_);
    open_conns_.insert(fd);
    conn_threads_.emplace_back([this, fd] { handle_connection(fd); });
  }
}

void Server::handle_connection(int fd) {
  std::string payload;
  for (;;) {
    const FrameError err = read_frame(fd, payload, cfg_.max_frame);
    if (err == FrameError::kClosed || err == FrameError::kIo) break;
    if (err != FrameError::kNone) {
      // Malformed stream: answer once with a diagnostic, then hang up —
      // after a framing error the byte stream has no recoverable boundary.
      const std::string resp = json::dump(error_response(
          std::string("malformed frame: ") + frame_error_name(err)));
      (void)write_frame(fd, resp);
      break;
    }
    bool request_shutdown = false;
    const std::string response = handle_request(payload, &request_shutdown);
    requests_.fetch_add(1, std::memory_order_relaxed);
    if (write_frame(fd, response) != FrameError::kNone) break;
    if (request_shutdown) {
      shutdown();
      break;
    }
    if (stopping_.load(std::memory_order_acquire)) break;
  }
  // Deregister before closing so shutdown() can never hit a recycled fd.
  {
    std::lock_guard lock(threads_mu_);
    open_conns_.erase(fd);
  }
  ::close(fd);
}

std::string Server::handle_request(const std::string& payload,
                                   bool* request_shutdown) {
  json::Value req;
  try {
    req = json::parse(payload);
  } catch (const std::exception& e) {
    return json::dump(
        error_response(std::string("request is not valid JSON: ") + e.what()));
  }
  const json::Value* op_v = req.find("op");
  if (!req.is_object() || !op_v || !op_v->is_string()) {
    return json::dump(error_response("request must be an object with an op"));
  }
  const std::string& op = op_v->as_string();
  HP_SPAN("request", op);
  json::Value out{json::Object{}};

  try {
    if (op == "shutdown") {
      *request_shutdown = true;
      out.set("ok", true);
      return json::dump(out);
    }
    if (op == "stats") {
      out.set("ok", true);
      out.set("requests_served",
              static_cast<std::int64_t>(
                  requests_.load(std::memory_order_relaxed) + 1));
      json::Array sessions;
      {
        std::lock_guard lock(sessions_mu_);
        for (const auto& [name, session] : sessions_) {
          json::Value s{json::Object{}};
          s.set("graph", name);
          s.set("nodes", static_cast<std::int64_t>(session->num_nodes()));
          s.set("edges", static_cast<std::int64_t>(session->num_edges()));
          s.set("hash", static_cast<std::int64_t>(session->graph_hash()));
          s.set("version", static_cast<std::int64_t>(session->version()));
          json::Array entries;
          for (const GraphSession::EntryStats& e : session->entry_stats()) {
            json::Value ev{json::Object{}};
            ev.set("k", static_cast<std::int64_t>(e.k));
            ev.set("epsilon", e.epsilon);
            ev.set("metric", to_string(e.metric));
            ev.set("seed", static_cast<std::int64_t>(e.seed));
            ev.set("cost", e.cost);
            ev.set("method", e.method);
            ev.set("tracker_cached", e.tracker_cached);
            ev.set("tracker_stale", e.tracker_stale);
            ev.set("hierarchy_levels",
                   static_cast<std::int64_t>(e.hierarchy_levels));
            ev.set("current", e.current);
            entries.push_back(std::move(ev));
          }
          s.set("entries", json::Value(std::move(entries)));
          sessions.push_back(std::move(s));
        }
      }
      out.set("sessions", json::Value(std::move(sessions)));
      json::Value counters{json::Object{}};
      for (const char* name :
           {"server.cache_hits", "server.cache_misses",
            "server.repartition.delta_fm", "server.repartition.vcycle",
            "server.repartition.full", "server.tracker_rebuilds",
            "server.updates", "server.structural_updates",
            "server.tracker_patches"}) {
        counters.set(name, hp::obs::counter(name));
      }
      out.set("counters", std::move(counters));
      return json::dump(out);
    }
    if (op == "load") {
      const json::Value* path_v = req.find("path");
      if (!path_v || !path_v->is_string()) {
        return json::dump(error_response("load needs a string path"));
      }
      // Canonicalize so two clients loading the same file share a session.
      const std::string key = canonical_key(path_v->as_string());
      GraphSession* session = nullptr;
      bool created = false;
      {
        std::lock_guard lock(sessions_mu_);
        auto it = sessions_.find(key);
        if (it == sessions_.end()) {
          // from_file does I/O; holding the map lock during it is fine at
          // this scope (load is rare) and keeps double-loads impossible.
          auto fresh = GraphSession::from_file(path_v->as_string());
          it = sessions_.emplace(key, std::move(fresh)).first;
          created = true;
        }
        session = it->second.get();
      }
      out.set("ok", true);
      out.set("graph", key);
      out.set("created", created);
      out.set("nodes", static_cast<std::int64_t>(session->num_nodes()));
      out.set("edges", static_cast<std::int64_t>(session->num_edges()));
      out.set("hash", static_cast<std::int64_t>(session->graph_hash()));
      out.set("version", static_cast<std::int64_t>(session->version()));
      return json::dump(out);
    }

    // Every remaining op addresses a loaded graph.
    const json::Value* graph_v = req.find("graph");
    if (!graph_v || !graph_v->is_string()) {
      return json::dump(error_response(op + " needs a string graph id"));
    }
    GraphSession* session = nullptr;
    {
      // Same canonicalization as load, so clients may address the session
      // by any path that resolves to the loaded file.
      std::lock_guard lock(sessions_mu_);
      auto it = sessions_.find(graph_v->as_string());
      if (it == sessions_.end()) {
        it = sessions_.find(canonical_key(graph_v->as_string()));
      }
      if (it != sessions_.end()) session = it->second.get();
    }
    if (!session) {
      return json::dump(error_response("unknown graph " + graph_v->as_string() +
                                       " (load it first)"));
    }

    if (op == "update") {
      std::vector<WeightUpdate> nodes;
      std::vector<WeightUpdate> edges;
      std::vector<StructuralDelta> structural;
      std::string err;
      if (!parse_weight_updates(req, "node_weights", nodes, err) ||
          !parse_weight_updates(req, "edge_weights", edges, err) ||
          !parse_structural(req, structural, err)) {
        return json::dump(error_response(err));
      }
      MutatorSlot slot;
      if (!session->try_acquire_mutator()) {
        return json::dump(error_response(
            "busy: another mutation is in progress on this graph"));
      }
      slot.session = session;
      const UpdateOutcome result = session->update(nodes, edges, structural);
      out.set("ok", result.ok);
      if (!result.ok) {
        out.set("error", result.error);
        out.set("version", static_cast<std::int64_t>(result.version));
      } else {
        out.set("applied", static_cast<std::int64_t>(result.applied));
        out.set("structural", static_cast<std::int64_t>(result.structural));
        out.set("change_fraction", result.change_fraction);
        out.set("hash", static_cast<std::int64_t>(session->graph_hash()));
        out.set("version", static_cast<std::int64_t>(result.version));
        out.set("nodes", static_cast<std::int64_t>(session->num_nodes()));
        out.set("edges", static_cast<std::int64_t>(session->num_edges()));
        out.set("trackers_patched",
                static_cast<std::int64_t>(result.trackers_patched));
        out.set("trackers_staled",
                static_cast<std::int64_t>(result.trackers_staled));
      }
      return json::dump(out);
    }

    // partition / repartition / evaluate share the config fields.
    bool bad = false;
    const auto k = int_field(req, "k", 2, &bad);
    const auto seed = int_field(req, "seed", 1, &bad);
    if (bad || !k || *k < 2 || !seed) {
      return json::dump(error_response("k must be an integer >= 2 and seed "
                                       "an integer"));
    }
    SessionConfig cfg;
    cfg.k = static_cast<PartId>(*k);
    cfg.seed = static_cast<std::uint64_t>(*seed);
    cfg.threads = cfg_.threads;
    if (const json::Value* eps = req.find("epsilon")) {
      if (!eps->is_number()) {
        return json::dump(error_response("epsilon must be a number"));
      }
      cfg.epsilon = eps->as_double();
    }
    if (const json::Value* metric = req.find("metric")) {
      if (!metric->is_string()) {
        return json::dump(error_response("metric must be a string"));
      }
      const std::string& m = metric->as_string();
      if (m == "connectivity" || m == "km1") {
        cfg.metric = CostMetric::kConnectivity;
      } else if (m == "cut" || m == "cutnet" || m == "cut-net") {
        cfg.metric = CostMetric::kCutNet;
      } else {
        return json::dump(
            error_response("metric must be connectivity|cut, got " + m));
      }
    }
    bool include_parts = false;
    if (const json::Value* ip = req.find("include_parts")) {
      include_parts = ip->type() == json::Type::kBool && ip->as_bool();
    }

    if (op == "evaluate") {
      std::optional<std::uint64_t> expected;
      if (const json::Value* v = req.find("version")) {
        if (!v->is_number() || !v->is_integral() || v->as_int() < 0) {
          return json::dump(
              error_response("version must be a non-negative integer"));
        }
        expected = static_cast<std::uint64_t>(v->as_int());
      }
      PartitionOutcome result = session->evaluate(cfg, include_parts, expected);
      outcome_to_json(result, out);
      return json::dump(out);
    }
    if (op == "partition" || op == "repartition") {
      MutatorSlot slot;
      if (!session->try_acquire_mutator()) {
        return json::dump(error_response(
            "busy: another mutation is in progress on this graph"));
      }
      slot.session = session;
      PartitionOutcome result = op == "partition"
                                    ? session->partition(cfg, include_parts)
                                    : session->repartition(cfg, include_parts);
      outcome_to_json(result, out);
      return json::dump(out);
    }
    return json::dump(error_response("unknown op " + op));
  } catch (const std::exception& e) {
    return json::dump(
        error_response(std::string("internal error: ") + e.what()));
  }
}

void Server::shutdown() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  // ::shutdown() (NOT close) on a listening socket reliably wakes a thread
  // blocked in accept(); closing an fd another thread is blocked on does
  // not. The fds themselves are closed in wait() after the accept threads
  // have joined, so no thread can race a recycled descriptor.
  if (unix_fd_ >= 0) ::shutdown(unix_fd_, SHUT_RDWR);
  if (tcp_fd_ >= 0) ::shutdown(tcp_fd_, SHUT_RDWR);
  // Nudge idle connections: shutting down the read side makes their blocked
  // read_frame return kClosed; an in-flight request still writes its
  // response (the write side stays open) before the loop exits.
  std::lock_guard lock(threads_mu_);
  for (const int fd : open_conns_) ::shutdown(fd, SHUT_RD);
  // Unlink only a socket this server actually bound: a start() that refused
  // (non-socket file at the path) must leave the operator's file alone.
  if (unix_fd_ >= 0 && !cfg_.unix_socket.empty()) {
    ::unlink(cfg_.unix_socket.c_str());
  }
}

void Server::wait() {
  while (!stopping_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  // Collect threads. Connection threads may still be finishing requests;
  // join order (accepts first) does not matter since both sets only exit.
  for (;;) {
    std::vector<std::thread> grab;
    {
      std::lock_guard lock(threads_mu_);
      grab.swap(accept_threads_);
      for (auto& t : conn_threads_) grab.push_back(std::move(t));
      conn_threads_.clear();
    }
    if (grab.empty()) break;
    for (auto& t : grab) {
      if (t.joinable()) t.join();
    }
  }
  if (unix_fd_ >= 0) {
    ::close(unix_fd_);
    unix_fd_ = -1;
  }
  if (tcp_fd_ >= 0) {
    ::close(tcp_fd_);
    tcp_fd_ = -1;
  }
}

}  // namespace hp::server
