#include "hyperpart/hier/assignment.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "hyperpart/hier/blossom.hpp"
#include "hyperpart/hier/hier_cost.hpp"
#include "hyperpart/hier/matching.hpp"
#include "hyperpart/util/rng.hpp"

namespace hp {

std::uint64_t count_nonequivalent_assignments(const HierTopology& topo) {
  const auto factorial = [](std::uint64_t x) {
    std::uint64_t f = 1;
    for (std::uint64_t i = 2; i <= x; ++i) f *= i;
    return f;
  };
  std::uint64_t result = factorial(topo.num_leaves());
  std::uint64_t internal_nodes = 1;
  for (std::uint32_t level = 1; level <= topo.depth(); ++level) {
    const std::uint64_t fb = factorial(topo.branching(level));
    for (std::uint64_t i = 0; i < internal_nodes; ++i) result /= fb;
    internal_nodes *= topo.branching(level);
  }
  return result;
}

double assignment_cost(const Hypergraph& contracted, const HierTopology& topo,
                       const std::vector<PartId>& leaf_of_part) {
  double total = 0.0;
  std::vector<PartId> leaves;
  for (EdgeId e = 0; e < contracted.num_edges(); ++e) {
    leaves.clear();
    for (const NodeId q : contracted.pins(e)) {
      leaves.push_back(leaf_of_part[q]);
    }
    total += static_cast<double>(contracted.edge_weight(e)) *
             hier_set_cost(topo, leaves);
  }
  return total;
}

AssignmentResult exact_assignment(const Hypergraph& contracted,
                                  const HierTopology& topo) {
  const PartId k = topo.num_leaves();
  if (contracted.num_nodes() != k) {
    throw std::invalid_argument("exact_assignment: size mismatch");
  }

  // part_of_leaf built leaf by leaf; prune symmetric sibling orders: when a
  // leaf opens a level-ℓ group that is not the first child of its parent,
  // its part must exceed the part that opened the previous sibling group.
  std::vector<PartId> part_of_leaf(k, kInvalidPart);
  std::vector<bool> used(k, false);
  AssignmentResult best;
  best.cost = std::numeric_limits<double>::infinity();

  const auto evaluate = [&]() {
    std::vector<PartId> leaf_of_part(k);
    for (PartId leaf = 0; leaf < k; ++leaf) {
      leaf_of_part[part_of_leaf[leaf]] = leaf;
    }
    const double c = assignment_cost(contracted, topo, leaf_of_part);
    ++best.assignments_checked;
    if (c < best.cost) {
      best.cost = c;
      best.leaf_of_part = std::move(leaf_of_part);
    }
  };

  const auto recurse = [&](auto&& self, PartId leaf) -> void {
    if (leaf == k) {
      evaluate();
      return;
    }
    // Lower bound on the part allowed at this leaf, from canonical sibling
    // ordering at every level where this leaf starts a new group.
    PartId min_part = 0;
    for (std::uint32_t level = 1; level <= topo.depth(); ++level) {
      const PartId width = topo.leaves_below(level);
      if (leaf % width != 0) continue;           // not a group boundary
      const PartId group = leaf / width;
      if (group % topo.branching(level) == 0) continue;  // first child
      // Part that opened the previous sibling group at this level.
      min_part = std::max<PartId>(min_part, part_of_leaf[leaf - width] + 1);
    }
    for (PartId q = min_part; q < k; ++q) {
      if (used[q]) continue;
      used[q] = true;
      part_of_leaf[leaf] = q;
      self(self, leaf + 1);
      used[q] = false;
    }
    part_of_leaf[leaf] = kInvalidNode;
  };
  recurse(recurse, 0);
  return best;
}

AssignmentResult matching_assignment(const Hypergraph& contracted,
                                     const HierTopology& topo) {
  if (topo.depth() != 2 || topo.branching(2) != 2) {
    throw std::invalid_argument("matching_assignment: needs d=2, b2=2");
  }
  const PartId k = topo.num_leaves();
  if (contracted.num_nodes() != k) {
    throw std::invalid_argument("matching_assignment: size mismatch");
  }
  // Affinity w[u][v] = total weight of hyperedges containing both parts;
  // pairing u with v saves (g1 − g2)·w[u][v] versus separating them, so the
  // optimal assignment pairs by maximum-weight perfect matching (Lemma
  // H.1). Solved by Edmonds' blossom algorithm — polynomial in k.
  std::vector<std::vector<Weight>> affinity(k, std::vector<Weight>(k, 0));
  for (EdgeId e = 0; e < contracted.num_edges(); ++e) {
    const auto pins = contracted.pins(e);
    for (std::size_t i = 0; i < pins.size(); ++i) {
      for (std::size_t j = i + 1; j < pins.size(); ++j) {
        const Weight w = contracted.edge_weight(e);
        affinity[pins[i]][pins[j]] += w;
        affinity[pins[j]][pins[i]] += w;
      }
    }
  }
  const BlossomResult m = blossom_max_weight_perfect_matching(affinity);

  AssignmentResult res;
  res.leaf_of_part.assign(k, kInvalidPart);
  PartId next_leaf = 0;
  for (PartId q = 0; q < k; ++q) {
    if (res.leaf_of_part[q] != kInvalidPart) continue;
    res.leaf_of_part[q] = next_leaf;
    res.leaf_of_part[m.mate[q]] = next_leaf + 1;
    next_leaf += 2;
  }
  res.cost = assignment_cost(contracted, topo, res.leaf_of_part);
  return res;
}

AssignmentResult local_search_assignment(const Hypergraph& contracted,
                                         const HierTopology& topo,
                                         std::uint64_t seed) {
  const PartId k = topo.num_leaves();
  if (contracted.num_nodes() != k) {
    throw std::invalid_argument("local_search_assignment: size mismatch");
  }
  Rng rng{seed};
  AssignmentResult res;
  res.leaf_of_part.resize(k);
  for (PartId q = 0; q < k; ++q) res.leaf_of_part[q] = q;
  rng.shuffle(res.leaf_of_part);
  res.cost = assignment_cost(contracted, topo, res.leaf_of_part);

  bool improved = true;
  while (improved) {
    improved = false;
    for (PartId a = 0; a < k && !improved; ++a) {
      for (PartId b = a + 1; b < k && !improved; ++b) {
        std::swap(res.leaf_of_part[a], res.leaf_of_part[b]);
        const double c = assignment_cost(contracted, topo, res.leaf_of_part);
        if (c < res.cost - 1e-12) {
          res.cost = c;
          improved = true;
        } else {
          std::swap(res.leaf_of_part[a], res.leaf_of_part[b]);
        }
      }
    }
  }
  return res;
}

Partition apply_assignment(const Partition& p,
                           const std::vector<PartId>& leaf_of_part) {
  Partition out(p.num_nodes(), p.k());
  for (NodeId v = 0; v < p.num_nodes(); ++v) {
    out.assign(v, leaf_of_part[p[v]]);
  }
  return out;
}

}  // namespace hp
