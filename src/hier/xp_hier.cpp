#include "hyperpart/hier/xp_hier.hpp"

#include <stdexcept>
#include <vector>

#include "hyperpart/hier/hier_cost.hpp"

namespace hp {

XpResult xp_hier_partition(const Hypergraph& g, const HierTopology& topo,
                           const BalanceConstraint& balance, double budget,
                           const XpOptions& base_opts) {
  if (topo.num_leaves() != balance.k() || topo.num_leaves() > 32) {
    throw std::invalid_argument("xp_hier_partition: k mismatch or k > 32");
  }
  XpOptions opts = base_opts;
  // Configuration cost of edge e with allowed leaf-set mask: the
  // hierarchical cost of that leaf set (pessimistic, and exact for the
  // optimal solution's own configuration — the Lemma 4.3 argument).
  opts.config_edge_cost = [&g, &topo](EdgeId e, std::uint32_t mask) {
    return static_cast<double>(g.edge_weight(e)) * hier_mask_cost(topo, mask);
  };
  opts.solution_cost = [&g, &topo](const Partition& p) {
    return hier_cost(g, p, topo);
  };
  return xp_partition(g, balance, budget, opts);
}

double general_topology_refine(const Hypergraph& g, Partition& p,
                               const GeneralTopology& topo,
                               const BalanceConstraint& balance,
                               int max_rounds) {
  const PartId k = topo.num_units();
  std::vector<Weight> load = p.part_weights(g);

  const auto incident_cost = [&](NodeId v) {
    double c = 0.0;
    std::vector<PartId> parts;
    for (const EdgeId e : g.incident_edges(v)) {
      parts.clear();
      for (const NodeId u : g.pins(e)) {
        if (p[u] < k) parts.push_back(p[u]);
      }
      c += static_cast<double>(g.edge_weight(e)) * topo.mst_cost(parts);
    }
    return c;
  };

  double current = general_topology_cost(g, p, topo);
  for (int round = 0; round < max_rounds; ++round) {
    bool improved = false;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const PartId from = p[v];
      const double before = incident_cost(v);
      double best_delta = -1e-9;
      PartId best_to = kInvalidPart;
      for (PartId q = 0; q < k; ++q) {
        if (q == from) continue;
        if (load[q] + g.node_weight(v) > balance.capacity()) continue;
        p.assign(v, q);
        const double delta = incident_cost(v) - before;
        if (delta < best_delta) {
          best_delta = delta;
          best_to = q;
        }
      }
      if (best_to != kInvalidPart) {
        p.assign(v, best_to);
        load[from] -= g.node_weight(v);
        load[best_to] += g.node_weight(v);
        current += best_delta;
        improved = true;
      } else {
        p.assign(v, from);
      }
    }
    if (!improved) break;
  }
  return current;
}

}  // namespace hp
