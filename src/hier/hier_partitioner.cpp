#include "hyperpart/hier/hier_partitioner.hpp"

#include <vector>

#include "hyperpart/algo/recursive_bisection.hpp"
#include "hyperpart/hier/assignment.hpp"
#include "hyperpart/hier/hier_cost.hpp"
#include "hyperpart/hier/two_step.hpp"

namespace hp {

std::optional<Partition> hier_recursive_partition(const Hypergraph& g,
                                                  const HierTopology& topo,
                                                  double epsilon,
                                                  const MultilevelConfig& cfg) {
  std::vector<PartId> arities;
  for (std::uint32_t level = 1; level <= topo.depth(); ++level) {
    arities.push_back(topo.branching(level));
  }
  return recursive_partition(g, arities, epsilon, cfg);
}

double hier_refine(const Hypergraph& g, Partition& p, const HierTopology& topo,
                   const BalanceConstraint& balance, int max_rounds) {
  const PartId k = topo.num_leaves();
  std::vector<Weight> load = p.part_weights(g);

  // Cost delta of moving v: only v's incident edges change; evaluate them
  // before and after.
  const auto incident_cost = [&](NodeId v) {
    double c = 0.0;
    std::vector<PartId> parts;
    for (const EdgeId e : g.incident_edges(v)) {
      parts.clear();
      for (const NodeId u : g.pins(e)) parts.push_back(p[u]);
      c += static_cast<double>(g.edge_weight(e)) * hier_set_cost(topo, parts);
    }
    return c;
  };

  double current = hier_cost(g, p, topo);
  for (int round = 0; round < max_rounds; ++round) {
    bool improved = false;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const PartId from = p[v];
      const double before = incident_cost(v);
      double best_delta = -1e-9;
      PartId best_to = kInvalidPart;
      for (PartId q = 0; q < k; ++q) {
        if (q == from) continue;
        if (load[q] + g.node_weight(v) > balance.capacity()) continue;
        p.assign(v, q);
        const double delta = incident_cost(v) - before;
        if (delta < best_delta) {
          best_delta = delta;
          best_to = q;
        }
      }
      if (best_to != kInvalidPart) {
        p.assign(v, best_to);
        load[from] -= g.node_weight(v);
        load[best_to] += g.node_weight(v);
        current += best_delta;
        improved = true;
      } else {
        p.assign(v, from);
      }
    }
    if (!improved) break;
  }
  return current;
}

std::optional<Partition> hier_direct_partition(const Hypergraph& g,
                                               const HierTopology& topo,
                                               double epsilon,
                                               const MultilevelConfig& cfg) {
  const auto two_step = two_step_multilevel(g, topo, epsilon, cfg);
  if (!two_step) return std::nullopt;
  Partition p = two_step->partition;
  const auto balance = BalanceConstraint::for_graph(
      g, topo.num_leaves(), epsilon, /*relaxed=*/true);
  hier_refine(g, p, topo, balance);
  return p;
}

}  // namespace hp
