#include "hyperpart/hier/two_step.hpp"

#include "hyperpart/algo/brute_force.hpp"
#include "hyperpart/hier/assignment.hpp"
#include "hyperpart/hier/hier_cost.hpp"

namespace hp {

TwoStepResult assign_optimally(const Hypergraph& g, const Partition& p,
                               const HierTopology& topo) {
  const Hypergraph contracted = contract_partition(g, p);
  const AssignmentResult a = exact_assignment(contracted, topo);
  TwoStepResult res;
  res.partition = apply_assignment(p, a.leaf_of_part);
  res.standard_cost = cost(g, p, CostMetric::kConnectivity);
  res.hierarchical_cost = hier_cost(g, res.partition, topo);
  return res;
}

std::optional<TwoStepResult> two_step_multilevel(const Hypergraph& g,
                                                 const HierTopology& topo,
                                                 double epsilon,
                                                 const MultilevelConfig& cfg) {
  const auto balance =
      BalanceConstraint::for_graph(g, topo.num_leaves(), epsilon,
                                   /*relaxed=*/true);
  const auto p = multilevel_partition(g, balance, cfg);
  if (!p) return std::nullopt;
  return assign_optimally(g, *p, topo);
}

std::optional<TwoStepResult> two_step_exact(const Hypergraph& g,
                                            const HierTopology& topo,
                                            double epsilon, CostMetric metric) {
  const auto balance =
      BalanceConstraint::for_graph(g, topo.num_leaves(), epsilon,
                                   /*relaxed=*/true);
  BruteForceOptions opts;
  opts.metric = metric;
  const auto exact = brute_force_partition(g, balance, opts);
  if (!exact) return std::nullopt;
  return assign_optimally(g, exact->partition, topo);
}

std::optional<TwoStepResult> exact_hierarchical_optimum(
    const Hypergraph& g, const HierTopology& topo, double epsilon) {
  const auto balance =
      BalanceConstraint::for_graph(g, topo.num_leaves(), epsilon,
                                   /*relaxed=*/true);
  BruteForceOptions opts;
  // Part position matters under hierarchical costs: no symmetry breaking
  // across arbitrary parts. (Assignments within the same tree shape are
  // still enumerated redundantly; acceptable at brute-force sizes.)
  opts.break_symmetry = false;
  opts.custom_cost = [&](const Partition& p) { return hier_cost(g, p, topo); };
  const auto exact = brute_force_partition(g, balance, opts);
  if (!exact) return std::nullopt;
  TwoStepResult res;
  res.partition = exact->partition;
  res.standard_cost = cost(g, res.partition, CostMetric::kConnectivity);
  res.hierarchical_cost = exact->cost_value;
  return res;
}

}  // namespace hp
