#include "hyperpart/hier/matching.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <stdexcept>

#include "hyperpart/util/rng.hpp"

namespace hp {

MatchingResult max_weight_perfect_matching(
    const std::vector<std::vector<double>>& weight) {
  const std::uint32_t n = static_cast<std::uint32_t>(weight.size());
  if (n % 2 != 0) {
    throw std::invalid_argument("max_weight_perfect_matching: odd n");
  }
  if (n > 24) {
    throw std::invalid_argument("max_weight_perfect_matching: n > 24");
  }
  MatchingResult res;
  res.mate.assign(n, 0);
  if (n == 0) return res;

  const std::uint32_t full = (n == 32) ? ~0u : ((1u << n) - 1);
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  // best[mask]: best weight matching the vertices in mask perfectly.
  std::vector<double> best(full + 1, kNegInf);
  std::vector<std::uint32_t> choice(full + 1, 0);
  best[0] = 0.0;
  for (std::uint32_t mask = 0; mask <= full; ++mask) {
    if (best[mask] == kNegInf) continue;
    if (mask == full) break;
    // Match the lowest unmatched vertex with every candidate partner —
    // canonical, so each perfect matching is built exactly once.
    const std::uint32_t v = static_cast<std::uint32_t>(
        std::countr_one(mask));
    for (std::uint32_t u = v + 1; u < n; ++u) {
      if ((mask >> u) & 1) continue;
      const std::uint32_t next = mask | (1u << v) | (1u << u);
      const double w = best[mask] + weight[v][u];
      if (w > best[next]) {
        best[next] = w;
        choice[next] = (v << 8) | u;
      }
    }
  }
  res.weight = best[full];
  std::uint32_t mask = full;
  while (mask != 0) {
    const std::uint32_t v = choice[mask] >> 8;
    const std::uint32_t u = choice[mask] & 0xff;
    res.mate[v] = u;
    res.mate[u] = v;
    mask &= ~((1u << v) | (1u << u));
  }
  return res;
}

MatchingResult matching_local_search(
    const std::vector<std::vector<double>>& weight, std::uint64_t seed) {
  const std::uint32_t n = static_cast<std::uint32_t>(weight.size());
  if (n % 2 != 0) {
    throw std::invalid_argument("matching_local_search: odd n");
  }
  MatchingResult res;
  res.mate.assign(n, 0);
  if (n == 0) return res;

  // Random initial pairing.
  Rng rng{seed};
  std::vector<std::uint32_t> order(n);
  for (std::uint32_t i = 0; i < n; ++i) order[i] = i;
  rng.shuffle(order);
  for (std::uint32_t i = 0; i < n; i += 2) {
    res.mate[order[i]] = order[i + 1];
    res.mate[order[i + 1]] = order[i];
  }

  // 2-opt: re-pair two pairs {a,b}, {c,d} as {a,c},{b,d} or {a,d},{b,c}.
  // First-improvement strategy; restart the scan after every swap so pair
  // pointers are never stale.
  const auto try_improve = [&]() -> bool {
    for (std::uint32_t a = 0; a < n; ++a) {
      const std::uint32_t b = res.mate[a];
      if (b < a) continue;
      for (std::uint32_t c = a + 1; c < n; ++c) {
        const std::uint32_t d = res.mate[c];
        if (d < c || c == b) continue;
        const double current = weight[a][b] + weight[c][d];
        const double swap1 = weight[a][c] + weight[b][d];
        const double swap2 = weight[a][d] + weight[b][c];
        if (swap1 > current && swap1 >= swap2) {
          res.mate[a] = c;
          res.mate[c] = a;
          res.mate[b] = d;
          res.mate[d] = b;
          return true;
        }
        if (swap2 > current) {
          res.mate[a] = d;
          res.mate[d] = a;
          res.mate[b] = c;
          res.mate[c] = b;
          return true;
        }
      }
    }
    return false;
  };
  while (try_improve()) {
  }
  res.weight = 0.0;
  for (std::uint32_t v = 0; v < n; ++v) {
    if (res.mate[v] > v) res.weight += weight[v][res.mate[v]];
  }
  return res;
}

}  // namespace hp
