#include "hyperpart/hier/topology.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace hp {

HierTopology::HierTopology(std::vector<PartId> branching,
                           std::vector<double> costs)
    : branching_(std::move(branching)), costs_(std::move(costs)) {
  if (branching_.empty() || branching_.size() != costs_.size()) {
    throw std::invalid_argument("HierTopology: bad branching/costs sizes");
  }
  for (const PartId b : branching_) {
    if (b < 1) throw std::invalid_argument("HierTopology: branching < 1");
  }
  for (std::size_t i = 0; i < costs_.size(); ++i) {
    if (costs_[i] <= 0) throw std::invalid_argument("HierTopology: g <= 0");
    if (i > 0 && costs_[i] > costs_[i - 1]) {
      throw std::invalid_argument("HierTopology: costs must be decreasing");
    }
  }
  for (const PartId b : branching_) k_ *= b;
  // leaves_below_[level] for level in [0, d]: product of branching below.
  leaves_below_.assign(branching_.size() + 1, 1);
  for (std::size_t i = branching_.size(); i-- > 0;) {
    leaves_below_[i] = leaves_below_[i + 1] * branching_[i];
  }
}

HierTopology HierTopology::flat(PartId k) {
  return HierTopology{{k}, {1.0}};
}

std::uint32_t HierTopology::lca_level(PartId a, PartId b) const noexcept {
  // Groups agree at level 0 (the root) and diverge at some level ≥ 1; the
  // LCA is one level above the first divergence.
  for (std::uint32_t level = 1; level <= depth(); ++level) {
    if (level_group(a, level) != level_group(b, level)) return level - 1;
  }
  return depth();
}

double HierTopology::transfer_cost(PartId a, PartId b) const noexcept {
  if (a == b) return 0.0;
  // LCA at level ℓ means the data crosses a level-(ℓ+1) boundary.
  return costs_[lca_level(a, b)];
}

GeneralTopology::GeneralTopology(std::vector<std::vector<double>> cost)
    : cost_(std::move(cost)) {
  const std::size_t k = cost_.size();
  if (k == 0) throw std::invalid_argument("GeneralTopology: empty matrix");
  for (std::size_t i = 0; i < k; ++i) {
    if (cost_[i].size() != k) {
      throw std::invalid_argument("GeneralTopology: non-square matrix");
    }
    if (cost_[i][i] != 0.0) {
      throw std::invalid_argument("GeneralTopology: nonzero diagonal");
    }
    for (std::size_t j = 0; j < k; ++j) {
      if (cost_[i][j] != cost_[j][i] || (i != j && cost_[i][j] <= 0)) {
        throw std::invalid_argument("GeneralTopology: invalid costs");
      }
    }
  }
}

GeneralTopology GeneralTopology::from_tree(const HierTopology& tree) {
  const PartId k = tree.num_leaves();
  std::vector<std::vector<double>> cost(k, std::vector<double>(k, 0.0));
  for (PartId a = 0; a < k; ++a) {
    for (PartId b = 0; b < k; ++b) {
      if (a != b) cost[a][b] = tree.transfer_cost(a, b);
    }
  }
  return GeneralTopology{std::move(cost)};
}

double GeneralTopology::mst_cost(const std::vector<PartId>& terminals) const {
  std::vector<PartId> t = terminals;
  std::sort(t.begin(), t.end());
  t.erase(std::unique(t.begin(), t.end()), t.end());
  if (t.size() <= 1) return 0.0;
  // Prim's algorithm on the induced complete graph.
  std::vector<double> dist(t.size(), std::numeric_limits<double>::infinity());
  std::vector<bool> in_tree(t.size(), false);
  dist[0] = 0.0;
  double total = 0.0;
  for (std::size_t round = 0; round < t.size(); ++round) {
    std::size_t best = t.size();
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (!in_tree[i] && (best == t.size() || dist[i] < dist[best])) best = i;
    }
    in_tree[best] = true;
    total += dist[best];
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (!in_tree[i]) dist[i] = std::min(dist[i], cost_[t[best]][t[i]]);
    }
  }
  return total;
}

}  // namespace hp
