#include "hyperpart/hier/hier_cost.hpp"

#include <algorithm>
#include <unordered_map>

namespace hp {

std::vector<PartId> lambda_profile(const HierTopology& topo,
                                   const std::vector<PartId>& leaf_parts) {
  std::vector<PartId> parts = leaf_parts;
  std::sort(parts.begin(), parts.end());
  parts.erase(std::unique(parts.begin(), parts.end()), parts.end());
  const std::uint32_t d = topo.depth();
  std::vector<PartId> profile(d + 1, 1);
  if (parts.empty()) {
    profile.assign(d + 1, 0);
    return profile;
  }
  std::vector<PartId> groups;
  for (std::uint32_t level = 1; level <= d; ++level) {
    groups.clear();
    for (const PartId leaf : parts) {
      groups.push_back(topo.level_group(leaf, level));
    }
    std::sort(groups.begin(), groups.end());
    groups.erase(std::unique(groups.begin(), groups.end()), groups.end());
    profile[level] = static_cast<PartId>(groups.size());
  }
  return profile;
}

double hier_set_cost(const HierTopology& topo,
                     const std::vector<PartId>& leaf_parts) {
  const auto profile = lambda_profile(topo, leaf_parts);
  if (profile[0] == 0) return 0.0;  // empty set
  double total = 0.0;
  for (std::uint32_t level = 1; level <= topo.depth(); ++level) {
    total += topo.level_cost(level) *
             static_cast<double>(profile[level] - profile[level - 1]);
  }
  return total;
}

double hier_mask_cost(const HierTopology& topo, std::uint32_t leaf_mask) {
  std::vector<PartId> parts;
  for (PartId q = 0; q < topo.num_leaves(); ++q) {
    if ((leaf_mask >> q) & 1) parts.push_back(q);
  }
  return hier_set_cost(topo, parts);
}

double hier_cost(const Hypergraph& g, const Partition& p,
                 const HierTopology& topo) {
  double total = 0.0;
  std::vector<PartId> parts;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    parts.clear();
    for (const NodeId v : g.pins(e)) {
      if (p[v] < p.k()) parts.push_back(p[v]);
    }
    total += static_cast<double>(g.edge_weight(e)) * hier_set_cost(topo, parts);
  }
  return total;
}

double general_topology_cost(const Hypergraph& g, const Partition& p,
                             const GeneralTopology& topo) {
  double total = 0.0;
  std::vector<PartId> parts;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    parts.clear();
    for (const NodeId v : g.pins(e)) {
      if (p[v] < p.k()) parts.push_back(p[v]);
    }
    total += static_cast<double>(g.edge_weight(e)) * topo.mst_cost(parts);
  }
  return total;
}

Hypergraph contract_partition(const Hypergraph& g, const Partition& p) {
  struct VectorHash {
    std::size_t operator()(const std::vector<NodeId>& v) const noexcept {
      std::size_t h = v.size();
      for (const NodeId x : v) h ^= x + 0x9e3779b9 + (h << 6) + (h >> 2);
      return h;
    }
  };
  std::unordered_map<std::vector<NodeId>, Weight, VectorHash> merged;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    std::vector<NodeId> pins;
    for (const NodeId v : g.pins(e)) pins.push_back(p[v]);
    std::sort(pins.begin(), pins.end());
    pins.erase(std::unique(pins.begin(), pins.end()), pins.end());
    if (pins.size() < 2) continue;
    merged[std::move(pins)] += g.edge_weight(e);
  }
  std::vector<std::vector<NodeId>> edges;
  std::vector<Weight> weights;
  for (auto& [pins, w] : merged) {
    edges.push_back(pins);
    weights.push_back(w);
  }
  Hypergraph out = Hypergraph::from_edges(p.k(), std::move(edges));
  out.set_edge_weights(std::move(weights));
  return out;
}

}  // namespace hp
