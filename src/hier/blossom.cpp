#include "hyperpart/hier/blossom.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <stdexcept>
#include <utility>

namespace hp {

namespace {

// Dense O(n³) maximum-weight matching (Edmonds' blossoms, primal-dual),
// the classical formulation with explicit flower (blossom) lists and
// per-blossom slack edges. Internally 1-based; blossom ids occupy
// n+1 … 2n. Duals stay integral because edge deltas use 2·w.
class Blossom {
 public:
  explicit Blossom(const std::vector<std::vector<Weight>>& w)
      : n_(static_cast<int>(w.size())), n_x_(n_) {
    const int size = 2 * n_ + 1;
    weight_.assign(size, std::vector<Weight>(size, 0));
    edge_u_.assign(size, std::vector<int>(size, 0));
    edge_v_.assign(size, std::vector<int>(size, 0));
    lab_.assign(size, 0);
    match_.assign(size, 0);
    slack_.assign(size, 0);
    st_.assign(size, 0);
    pa_.assign(size, 0);
    s_.assign(size, -1);
    vis_.assign(size, 0);
    flower_.assign(size, {});
    flower_from_.assign(size, std::vector<int>(n_ + 1, 0));
    for (int u = 1; u <= 2 * n_; ++u) {
      for (int v = 1; v <= 2 * n_; ++v) {
        edge_u_[u][v] = u;
        edge_v_[u][v] = v;
      }
    }
    for (int u = 1; u <= n_; ++u) {
      for (int v = 1; v <= n_; ++v) {
        weight_[u][v] = u == v ? 0 : w[u - 1][v - 1];
      }
    }
  }

  /// Runs the algorithm; match_[u] afterwards (1-based, 0 = unmatched).
  void solve() {
    for (int u = 0; u <= n_; ++u) {
      st_[u] = u;
      flower_[u].clear();
    }
    Weight w_max = 0;
    for (int u = 1; u <= n_; ++u) {
      for (int v = 1; v <= n_; ++v) {
        flower_from_[u][v] = u == v ? u : 0;
        w_max = std::max(w_max, weight_[u][v]);
      }
    }
    for (int u = 1; u <= n_; ++u) lab_[u] = w_max;
    while (phase()) {
    }
  }

  [[nodiscard]] int mate(int u) const { return match_[u]; }
  [[nodiscard]] Weight edge_weight(int u, int v) const {
    return weight_[u][v];
  }

 private:
  [[nodiscard]] Weight delta(int u, int v) const {
    return lab_[edge_u_[u][v]] + lab_[edge_v_[u][v]] - 2 * weight_[u][v];
  }

  void update_slack(int u, int x) {
    if (slack_[x] == 0 || delta(u, x) < delta(slack_[x], x)) slack_[x] = u;
  }

  void set_slack(int x) {
    slack_[x] = 0;
    for (int u = 1; u <= n_; ++u) {
      if (weight_[u][x] > 0 && st_[u] != x && s_[st_[u]] == 0) {
        update_slack(u, x);
      }
    }
  }

  void q_push(int x) {
    if (x <= n_) {
      queue_.push_back(x);
      return;
    }
    for (const int y : flower_[x]) q_push(y);
  }

  void set_st(int x, int b) {
    st_[x] = b;
    if (x > n_) {
      for (const int y : flower_[x]) set_st(y, b);
    }
  }

  int get_pr(int b, int xr) {
    auto& f = flower_[b];
    const int pr = static_cast<int>(
        std::find(f.begin(), f.end(), xr) - f.begin());
    if (pr % 2 == 1) {
      std::reverse(f.begin() + 1, f.end());
      return static_cast<int>(f.size()) - pr;
    }
    return pr;
  }

  void set_match(int u, int v) {
    match_[u] = edge_v_[u][v];
    if (u <= n_) return;
    const int xr = flower_from_[u][edge_u_[u][v]];
    const int pr = get_pr(u, xr);
    for (int i = 0; i < pr; ++i) {
      set_match(flower_[u][i], flower_[u][i ^ 1]);
    }
    set_match(xr, v);
    std::rotate(flower_[u].begin(), flower_[u].begin() + pr,
                flower_[u].end());
  }

  void augment(int u, int v) {
    for (;;) {
      const int xnv = st_[match_[u]];
      set_match(u, v);
      if (xnv == 0) return;
      set_match(xnv, st_[pa_[xnv]]);
      u = st_[pa_[xnv]];
      v = xnv;
    }
  }

  int get_lca(int u, int v) {
    ++timer_;
    while (u != 0 || v != 0) {
      if (u != 0) {
        if (vis_[u] == timer_) return u;
        vis_[u] = timer_;
        u = st_[match_[u]];
        if (u != 0) u = st_[pa_[u]];
      }
      std::swap(u, v);
    }
    return 0;
  }

  void add_blossom(int u, int lca, int v) {
    int b = n_ + 1;
    while (b <= n_x_ && st_[b] != 0) ++b;
    if (b > n_x_) ++n_x_;
    lab_[b] = 0;
    s_[b] = 0;
    match_[b] = match_[lca];
    flower_[b].clear();
    flower_[b].push_back(lca);
    for (int x = u, y; x != lca; x = st_[pa_[y]]) {
      flower_[b].push_back(x);
      y = st_[match_[x]];
      flower_[b].push_back(y);
      q_push(y);
    }
    std::reverse(flower_[b].begin() + 1, flower_[b].end());
    for (int x = v, y; x != lca; x = st_[pa_[y]]) {
      flower_[b].push_back(x);
      y = st_[match_[x]];
      flower_[b].push_back(y);
      q_push(y);
    }
    set_st(b, b);
    for (int x = 1; x <= n_x_; ++x) {
      weight_[b][x] = weight_[x][b] = 0;
    }
    for (int x = 1; x <= n_; ++x) flower_from_[b][x] = 0;
    for (const int xs : flower_[b]) {
      for (int x = 1; x <= n_x_; ++x) {
        if (weight_[b][x] == 0 || delta(xs, x) < delta(b, x)) {
          edge_u_[b][x] = edge_u_[xs][x];
          edge_v_[b][x] = edge_v_[xs][x];
          weight_[b][x] = weight_[xs][x];
          edge_u_[x][b] = edge_u_[x][xs];
          edge_v_[x][b] = edge_v_[x][xs];
          weight_[x][b] = weight_[x][xs];
        }
      }
      for (int x = 1; x <= n_; ++x) {
        if (flower_from_[xs][x] != 0) flower_from_[b][x] = xs;
      }
    }
    set_slack(b);
  }

  void expand_blossom(int b) {
    for (const int xs : flower_[b]) set_st(xs, xs);
    const int xr = flower_from_[b][edge_u_[b][pa_[b]]];
    const int pr = get_pr(b, xr);
    for (int i = 0; i < pr; i += 2) {
      const int xs = flower_[b][i];
      const int xns = flower_[b][i + 1];
      pa_[xs] = edge_u_[xns][xs];
      s_[xs] = 1;
      s_[xns] = 0;
      slack_[xs] = 0;
      set_slack(xns);
      q_push(xns);
    }
    s_[xr] = 1;
    pa_[xr] = pa_[b];
    for (std::size_t i = pr + 1; i < flower_[b].size(); ++i) {
      const int xs = flower_[b][i];
      s_[xs] = -1;
      set_slack(xs);
    }
    st_[b] = 0;
  }

  bool on_found_edge(int eu, int ev) {
    const int u = st_[eu];
    const int v = st_[ev];
    if (s_[v] == -1) {
      pa_[v] = eu;
      s_[v] = 1;
      const int nu = st_[match_[v]];
      slack_[v] = slack_[nu] = 0;
      s_[nu] = 0;
      q_push(nu);
    } else if (s_[v] == 0) {
      const int lca = get_lca(u, v);
      if (lca == 0) {
        augment(u, v);
        augment(v, u);
        return true;
      }
      add_blossom(u, lca, v);
    }
    return false;
  }

  bool phase() {
    std::fill(s_.begin(), s_.begin() + n_x_ + 1, -1);
    std::fill(slack_.begin(), slack_.begin() + n_x_ + 1, 0);
    queue_.clear();
    for (int x = 1; x <= n_x_; ++x) {
      if (st_[x] == x && match_[x] == 0) {
        pa_[x] = 0;
        s_[x] = 0;
        q_push(x);
      }
    }
    if (queue_.empty()) return false;
    for (;;) {
      while (!queue_.empty()) {
        const int u = queue_.front();
        queue_.pop_front();
        if (s_[st_[u]] == 1) continue;
        for (int v = 1; v <= n_; ++v) {
          if (weight_[u][v] > 0 && st_[u] != st_[v]) {
            if (delta(u, v) == 0) {
              if (on_found_edge(u, v)) return true;
            } else {
              update_slack(u, st_[v]);
            }
          }
        }
      }
      Weight d = std::numeric_limits<Weight>::max();
      for (int b = n_ + 1; b <= n_x_; ++b) {
        if (st_[b] == b && s_[b] == 1) d = std::min(d, lab_[b] / 2);
      }
      for (int x = 1; x <= n_x_; ++x) {
        if (st_[x] == x && slack_[x] != 0) {
          if (s_[x] == -1) {
            d = std::min(d, delta(slack_[x], x));
          } else if (s_[x] == 0) {
            d = std::min(d, delta(slack_[x], x) / 2);
          }
        }
      }
      for (int u = 1; u <= n_; ++u) {
        if (s_[st_[u]] == 0) {
          if (lab_[u] <= d) return false;
          lab_[u] -= d;
        } else if (s_[st_[u]] == 1) {
          lab_[u] += d;
        }
      }
      for (int b = n_ + 1; b <= n_x_; ++b) {
        if (st_[b] == b && s_[b] >= 0) {
          if (s_[b] == 0) {
            lab_[b] += 2 * d;
          } else {
            lab_[b] -= 2 * d;
          }
        }
      }
      queue_.clear();
      for (int x = 1; x <= n_x_; ++x) {
        if (st_[x] == x && slack_[x] != 0 && st_[slack_[x]] != x &&
            delta(slack_[x], x) == 0) {
          if (on_found_edge(slack_[x], x)) return true;
        }
      }
      for (int b = n_ + 1; b <= n_x_; ++b) {
        if (st_[b] == b && s_[b] == 1 && lab_[b] == 0) expand_blossom(b);
      }
    }
  }

  int n_;
  int n_x_;
  std::vector<std::vector<Weight>> weight_;
  std::vector<std::vector<int>> edge_u_;
  std::vector<std::vector<int>> edge_v_;
  std::vector<Weight> lab_;
  std::vector<int> match_;
  std::vector<int> slack_;
  std::vector<int> st_;
  std::vector<int> pa_;
  std::vector<int> s_;
  std::vector<int> vis_;
  std::vector<std::vector<int>> flower_;
  std::vector<std::vector<int>> flower_from_;
  std::deque<int> queue_;
  int timer_ = 0;
};

}  // namespace

BlossomResult blossom_max_weight_perfect_matching(
    const std::vector<std::vector<Weight>>& weight) {
  const auto n = static_cast<std::uint32_t>(weight.size());
  if (n % 2 != 0) {
    throw std::invalid_argument("blossom: odd number of vertices");
  }
  BlossomResult res;
  res.mate.assign(n, 0);
  if (n == 0) return res;
  Weight max_w = 0;
  for (const auto& row : weight) {
    for (const Weight w : row) {
      if (w < 0) throw std::invalid_argument("blossom: negative weight");
      max_w = std::max(max_w, w);
    }
  }
  // Offset forces maximum cardinality (= perfect on a complete even
  // graph): every edge gains `offset`, so any perfect matching outweighs
  // any non-perfect one.
  const Weight offset = static_cast<Weight>(n) * (max_w + 1) + 1;
  std::vector<std::vector<Weight>> shifted(
      n, std::vector<Weight>(n, 0));
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v = 0; v < n; ++v) {
      if (u != v) shifted[u][v] = weight[u][v] + offset;
    }
  }
  Blossom solver(shifted);
  solver.solve();
  for (std::uint32_t u = 0; u < n; ++u) {
    const int m = solver.mate(static_cast<int>(u) + 1);
    if (m == 0) {
      throw std::logic_error("blossom: matching is not perfect");
    }
    res.mate[u] = static_cast<std::uint32_t>(m - 1);
  }
  for (std::uint32_t u = 0; u < n; ++u) {
    if (res.mate[u] > u) res.weight += weight[u][res.mate[u]];
  }
  return res;
}

}  // namespace hp
