#include "hyperpart/schedule/exact_makespan.hpp"

#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "hyperpart/schedule/list_scheduler.hpp"
#include "hyperpart/schedule/schedule.hpp"

namespace hp {

namespace {

using Mask = std::uint64_t;

/// Ready nodes for a completion mask: not yet done, all predecessors done.
[[nodiscard]] std::vector<NodeId> ready_nodes(
    const std::vector<Mask>& pred_mask, Mask done, NodeId n) {
  std::vector<NodeId> ready;
  for (NodeId v = 0; v < n; ++v) {
    if (!((done >> v) & 1) && (pred_mask[v] & ~done) == 0) ready.push_back(v);
  }
  return ready;
}

}  // namespace

std::optional<ExactMakespanResult> exact_makespan(const Dag& dag, PartId k,
                                                  std::uint64_t max_states) {
  const NodeId n = dag.num_nodes();
  if (n > 62) throw std::invalid_argument("exact_makespan: n > 62");
  if (n == 0) return ExactMakespanResult{0, 0};

  // Fast path: when a list schedule meets the trivial lower bound it is
  // optimal and no search is needed.
  const std::uint32_t lb = makespan_lower_bound(dag, k);
  const std::uint32_t ub = list_schedule(dag, k).makespan();
  if (ub == lb) return ExactMakespanResult{ub, 0};

  std::vector<Mask> pred_mask(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    for (const NodeId u : dag.predecessors(v)) pred_mask[v] |= Mask{1} << u;
  }
  const Mask all = (Mask{1} << n) - 1;

  std::unordered_set<Mask> frontier{0};
  std::unordered_set<Mask> next;
  std::unordered_set<Mask> visited{0};
  std::uint64_t expanded = 0;
  std::uint32_t steps = 0;

  std::vector<NodeId> chosen;
  while (!frontier.empty()) {
    ++steps;
    if (steps > ub) break;  // cannot improve on the list schedule
    next.clear();
    for (const Mask done : frontier) {
      if (++expanded > max_states) return std::nullopt;
      const auto ready = ready_nodes(pred_mask, done, n);
      const std::size_t take = std::min<std::size_t>(k, ready.size());
      // Enumerate all subsets of `ready` of size `take` (greedy dominance).
      chosen.clear();
      const auto recurse = [&](auto&& self, std::size_t start) -> void {
        if (chosen.size() == take) {
          Mask m = done;
          for (const NodeId v : chosen) m |= Mask{1} << v;
          if (visited.insert(m).second) next.insert(m);
          return;
        }
        const std::size_t need = take - chosen.size();
        for (std::size_t i = start; i < ready.size() && ready.size() - i >= need;
             ++i) {
          chosen.push_back(ready[i]);
          self(self, i + 1);
          chosen.pop_back();
        }
      };
      recurse(recurse, 0);
      if (visited.count(all) != 0) {
        return ExactMakespanResult{steps, expanded};
      }
    }
    frontier.swap(next);
  }
  return ExactMakespanResult{ub, expanded};
}

}  // namespace hp
