#include "hyperpart/schedule/schedule.hpp"

#include <algorithm>
#include <set>

namespace hp {

std::uint32_t Schedule::makespan() const {
  std::uint32_t best = 0;
  for (const std::uint32_t t : time) best = std::max(best, t);
  return best;
}

bool valid_schedule(const Dag& dag, const Schedule& s, PartId k) {
  const NodeId n = dag.num_nodes();
  if (s.proc.size() != n || s.time.size() != n) return false;
  std::set<std::pair<PartId, std::uint32_t>> slots;
  for (NodeId v = 0; v < n; ++v) {
    if (s.proc[v] >= k || s.time[v] == 0) return false;
    if (!slots.emplace(s.proc[v], s.time[v]).second) return false;
  }
  for (NodeId u = 0; u < n; ++u) {
    for (const NodeId v : dag.successors(u)) {
      if (s.time[u] >= s.time[v]) return false;
    }
  }
  return true;
}

bool realizes_partition(const Schedule& s, const Partition& p) {
  if (s.proc.size() != p.num_nodes()) return false;
  for (NodeId v = 0; v < p.num_nodes(); ++v) {
    if (s.proc[v] != p[v]) return false;
  }
  return true;
}

std::uint32_t makespan_lower_bound(const Dag& dag, PartId k) {
  const NodeId n = dag.num_nodes();
  const std::uint32_t load = (n + k - 1) / k;
  return std::max(load, dag.longest_path_nodes());
}

std::uint32_t fixed_partition_lower_bound(const Dag& dag, const Partition& p) {
  std::vector<std::uint32_t> load(p.k(), 0);
  for (NodeId v = 0; v < dag.num_nodes(); ++v) ++load[p[v]];
  const std::uint32_t max_load = *std::max_element(load.begin(), load.end());
  return std::max(max_load, dag.longest_path_nodes());
}

}  // namespace hp
