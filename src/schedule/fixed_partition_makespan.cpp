#include "hyperpart/schedule/fixed_partition_makespan.hpp"

#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "hyperpart/schedule/list_scheduler.hpp"
#include "hyperpart/schedule/schedule.hpp"

namespace hp {

namespace {

using Mask = std::uint64_t;

}  // namespace

std::optional<ExactMakespanResult> exact_fixed_makespan(
    const Dag& dag, const Partition& p, std::uint64_t max_states) {
  const NodeId n = dag.num_nodes();
  if (n > 62) throw std::invalid_argument("exact_fixed_makespan: n > 62");
  if (n == 0) return ExactMakespanResult{0, 0};
  const PartId k = p.k();

  const std::uint32_t lb = fixed_partition_lower_bound(dag, p);
  const std::uint32_t ub = list_schedule_fixed(dag, p).makespan();
  if (ub == lb) return ExactMakespanResult{ub, 0};

  std::vector<Mask> pred_mask(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    for (const NodeId u : dag.predecessors(v)) pred_mask[v] |= Mask{1} << u;
  }
  const Mask all = (Mask{1} << n) - 1;

  std::unordered_set<Mask> frontier{0};
  std::unordered_set<Mask> next;
  std::unordered_set<Mask> visited{0};
  std::uint64_t expanded = 0;
  std::uint32_t steps = 0;

  std::vector<std::vector<NodeId>> ready_by_proc(k);
  std::vector<PartId> active;  // processors with at least one ready node
  while (!frontier.empty()) {
    ++steps;
    if (steps > ub) break;
    next.clear();
    for (const Mask done : frontier) {
      if (++expanded > max_states) return std::nullopt;
      for (auto& r : ready_by_proc) r.clear();
      for (NodeId v = 0; v < n; ++v) {
        if (!((done >> v) & 1) && (pred_mask[v] & ~done) == 0) {
          ready_by_proc[p[v]].push_back(v);
        }
      }
      active.clear();
      for (PartId q = 0; q < k; ++q) {
        if (!ready_by_proc[q].empty()) active.push_back(q);
      }
      // One ready node per active processor (per-processor greedy
      // dominance); branch over the cartesian product of choices.
      const auto recurse = [&](auto&& self, std::size_t idx,
                               Mask m) -> void {
        if (idx == active.size()) {
          if (visited.insert(m).second) next.insert(m);
          return;
        }
        for (const NodeId v : ready_by_proc[active[idx]]) {
          self(self, idx + 1, m | (Mask{1} << v));
        }
      };
      recurse(recurse, 0, done);
      if (visited.count(all) != 0) {
        return ExactMakespanResult{steps, expanded};
      }
    }
    frontier.swap(next);
  }
  return ExactMakespanResult{ub, expanded};
}

std::optional<bool> schedule_based_feasible(const Dag& dag, const Partition& p,
                                            double epsilon,
                                            std::uint64_t max_states) {
  const auto mu = exact_makespan(dag, p.k(), max_states);
  if (!mu) return std::nullopt;
  const auto mu_p = exact_fixed_makespan(dag, p, max_states);
  if (!mu_p) return std::nullopt;
  return static_cast<double>(mu_p->makespan) <=
         (1.0 + epsilon) * static_cast<double>(mu->makespan) + 1e-9;
}

}  // namespace hp
