#include "hyperpart/schedule/list_scheduler.hpp"

#include <algorithm>
#include <queue>

namespace hp {

namespace {

/// Level of a node = number of nodes on the longest path starting at it.
[[nodiscard]] std::vector<std::uint32_t> levels(const Dag& dag) {
  std::vector<std::uint32_t> level(dag.num_nodes(), 1);
  const auto order = dag.topological_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    for (const NodeId w : dag.successors(*it)) {
      level[*it] = std::max(level[*it], level[w] + 1);
    }
  }
  return level;
}

[[nodiscard]] std::vector<std::uint32_t> priorities(const Dag& dag,
                                                    ListPriority prio) {
  if (prio == ListPriority::kHighestLevelFirst) return levels(dag);
  std::vector<std::uint32_t> p(dag.num_nodes());
  const auto order = dag.topological_order();
  for (std::uint32_t i = 0; i < order.size(); ++i) {
    p[order[i]] = static_cast<std::uint32_t>(order.size()) - i;
  }
  return p;
}

}  // namespace

Schedule list_schedule(const Dag& dag, PartId k, ListPriority prio) {
  const NodeId n = dag.num_nodes();
  const auto prio_of = priorities(dag, prio);
  Schedule s;
  s.proc.assign(n, 0);
  s.time.assign(n, 0);

  std::vector<std::uint32_t> remaining(n);
  // Max-heap of (priority, node).
  std::priority_queue<std::pair<std::uint32_t, NodeId>> ready;
  for (NodeId v = 0; v < n; ++v) {
    remaining[v] = dag.in_degree(v);
    if (remaining[v] == 0) ready.emplace(prio_of[v], v);
  }
  std::uint32_t t = 0;
  NodeId done = 0;
  std::vector<NodeId> step;
  while (done < n) {
    ++t;
    step.clear();
    for (PartId q = 0; q < k && !ready.empty(); ++q) {
      const NodeId v = ready.top().second;
      ready.pop();
      s.proc[v] = q;
      s.time[v] = t;
      step.push_back(v);
    }
    done += static_cast<NodeId>(step.size());
    for (const NodeId v : step) {
      for (const NodeId w : dag.successors(v)) {
        if (--remaining[w] == 0) ready.emplace(prio_of[w], w);
      }
    }
  }
  return s;
}

Schedule list_schedule_fixed(const Dag& dag, const Partition& p,
                             ListPriority prio) {
  const NodeId n = dag.num_nodes();
  const PartId k = p.k();
  const auto prio_of = priorities(dag, prio);
  Schedule s;
  s.proc.assign(n, 0);
  s.time.assign(n, 0);

  std::vector<std::uint32_t> remaining(n);
  std::vector<std::priority_queue<std::pair<std::uint32_t, NodeId>>> ready(k);
  for (NodeId v = 0; v < n; ++v) {
    s.proc[v] = p[v];
    remaining[v] = dag.in_degree(v);
    if (remaining[v] == 0) ready[p[v]].emplace(prio_of[v], v);
  }
  std::uint32_t t = 0;
  NodeId done = 0;
  std::vector<NodeId> step;
  while (done < n) {
    ++t;
    step.clear();
    for (PartId q = 0; q < k; ++q) {
      if (ready[q].empty()) continue;
      const NodeId v = ready[q].top().second;
      ready[q].pop();
      s.time[v] = t;
      step.push_back(v);
    }
    done += static_cast<NodeId>(step.size());
    for (const NodeId v : step) {
      for (const NodeId w : dag.successors(v)) {
        if (--remaining[w] == 0) ready[p[w]].emplace(prio_of[w], w);
      }
    }
  }
  return s;
}

}  // namespace hp
