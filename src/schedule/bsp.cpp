#include "hyperpart/schedule/bsp.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace hp {

BspCostBreakdown bsp_cost(const Dag& dag, const Schedule& s, PartId k,
                          const BspParams& params) {
  if (!valid_schedule(dag, s, k)) {
    throw std::invalid_argument("bsp_cost: invalid schedule");
  }
  const NodeId n = dag.num_nodes();
  BspCostBreakdown out;
  out.supersteps = s.makespan();

  // Work per (processor, step).
  std::vector<std::uint32_t> work(
      static_cast<std::size_t>(out.supersteps) * k, 0);
  for (NodeId v = 0; v < n; ++v) {
    ++work[static_cast<std::size_t>(s.time[v] - 1) * k + s.proc[v]];
  }

  // Communication: the value of u goes from proc(u) to every other
  // processor q computing a successor of u, in the phase entering the
  // superstep of q's earliest such successor.
  std::vector<std::uint64_t> sent(
      static_cast<std::size_t>(out.supersteps) * k, 0);
  std::vector<std::uint64_t> received(
      static_cast<std::size_t>(out.supersteps) * k, 0);
  std::vector<std::uint32_t> first_use(k);
  for (NodeId u = 0; u < n; ++u) {
    std::fill(first_use.begin(), first_use.end(), 0u);
    for (const NodeId v : dag.successors(u)) {
      if (s.proc[v] == s.proc[u]) continue;
      auto& t = first_use[s.proc[v]];
      t = t == 0 ? s.time[v] : std::min(t, s.time[v]);
    }
    for (PartId q = 0; q < k; ++q) {
      if (first_use[q] == 0) continue;
      ++out.total_values_moved;
      const std::size_t phase =
          static_cast<std::size_t>(first_use[q] - 1) * k;
      ++sent[phase + s.proc[u]];
      ++received[phase + q];
    }
  }

  for (std::uint32_t step = 0; step < out.supersteps; ++step) {
    std::uint32_t max_work = 0;
    std::uint64_t max_h = 0;
    for (PartId q = 0; q < k; ++q) {
      const std::size_t idx = static_cast<std::size_t>(step) * k + q;
      max_work = std::max(max_work, work[idx]);
      max_h = std::max(max_h, std::max(sent[idx], received[idx]));
    }
    out.total_work += max_work;
    out.total_h_relation += max_h;
    out.total_cost += static_cast<double>(max_work) +
                      params.g * static_cast<double>(max_h) + params.l;
  }
  return out;
}

}  // namespace hp
