#include "hyperpart/schedule/coffman_graham.hpp"

#include <algorithm>
#include <queue>

namespace hp {

std::vector<std::uint32_t> coffman_graham_labels(const Dag& dag) {
  const NodeId n = dag.num_nodes();
  std::vector<std::uint32_t> label(n, 0);
  std::vector<std::uint32_t> unlabeled_succs(n);
  std::vector<NodeId> eligible;
  for (NodeId v = 0; v < n; ++v) {
    unlabeled_succs[v] = dag.out_degree(v);
    if (unlabeled_succs[v] == 0) eligible.push_back(v);
  }

  // Decreasing successor-label sequence of a node; recomputed on demand
  // (only labeled successors exist when a node is eligible).
  const auto succ_labels = [&](NodeId v) {
    std::vector<std::uint32_t> ls;
    for (const NodeId w : dag.successors(v)) ls.push_back(label[w]);
    std::sort(ls.rbegin(), ls.rend());
    return ls;
  };

  for (std::uint32_t next = 1; next <= n; ++next) {
    // Pick the eligible node whose successor-label sequence is
    // lexicographically smallest.
    std::size_t best = 0;
    std::vector<std::uint32_t> best_seq = succ_labels(eligible[0]);
    for (std::size_t i = 1; i < eligible.size(); ++i) {
      auto seq = succ_labels(eligible[i]);
      if (std::lexicographical_compare(seq.begin(), seq.end(),
                                       best_seq.begin(), best_seq.end())) {
        best = i;
        best_seq = std::move(seq);
      }
    }
    const NodeId v = eligible[best];
    eligible.erase(eligible.begin() + static_cast<std::ptrdiff_t>(best));
    label[v] = next;
    for (const NodeId u : dag.predecessors(v)) {
      if (--unlabeled_succs[u] == 0) eligible.push_back(u);
    }
  }
  return label;
}

Schedule coffman_graham_schedule(const Dag& dag) {
  const NodeId n = dag.num_nodes();
  const auto label = coffman_graham_labels(dag);
  Schedule s;
  s.proc.assign(n, 0);
  s.time.assign(n, 0);
  std::vector<std::uint32_t> remaining(n);
  std::priority_queue<std::pair<std::uint32_t, NodeId>> ready;
  for (NodeId v = 0; v < n; ++v) {
    remaining[v] = dag.in_degree(v);
    if (remaining[v] == 0) ready.emplace(label[v], v);
  }
  std::uint32_t t = 0;
  NodeId done = 0;
  while (done < n) {
    ++t;
    NodeId step[2];
    PartId used = 0;
    for (PartId q = 0; q < 2 && !ready.empty(); ++q) {
      const NodeId v = ready.top().second;
      ready.pop();
      s.proc[v] = q;
      s.time[v] = t;
      step[used++] = v;
    }
    done += used;
    for (PartId i = 0; i < used; ++i) {
      for (const NodeId w : dag.successors(step[i])) {
        if (--remaining[w] == 0) ready.emplace(label[w], w);
      }
    }
  }
  return s;
}

std::uint32_t optimal_makespan_two_processors(const Dag& dag) {
  if (dag.num_nodes() == 0) return 0;
  return coffman_graham_schedule(dag).makespan();
}

}  // namespace hp
