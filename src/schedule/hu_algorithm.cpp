#include "hyperpart/schedule/hu_algorithm.hpp"

#include <stdexcept>
#include <utility>

#include "hyperpart/schedule/list_scheduler.hpp"

namespace hp {

bool is_in_forest(const Dag& dag) {
  for (NodeId v = 0; v < dag.num_nodes(); ++v) {
    if (dag.out_degree(v) > 1) return false;
  }
  return true;
}

bool is_out_forest(const Dag& dag) {
  for (NodeId v = 0; v < dag.num_nodes(); ++v) {
    if (dag.in_degree(v) > 1) return false;
  }
  return true;
}

namespace {

[[nodiscard]] Dag reversed(const Dag& dag) {
  auto edges = dag.edge_list();
  for (auto& e : edges) std::swap(e.first, e.second);
  return Dag::from_edges(dag.num_nodes(), std::move(edges));
}

}  // namespace

Schedule hu_schedule(const Dag& dag, PartId k) {
  if (is_in_forest(dag)) {
    // Hu's theorem: highest-level-first is optimal on in-forests.
    return list_schedule(dag, k, ListPriority::kHighestLevelFirst);
  }
  if (is_out_forest(dag)) {
    // Schedule the reversed in-forest and mirror the time axis.
    const Dag rev = reversed(dag);
    Schedule s = list_schedule(rev, k, ListPriority::kHighestLevelFirst);
    const std::uint32_t span = s.makespan();
    for (auto& t : s.time) t = span + 1 - t;
    return s;
  }
  throw std::invalid_argument("hu_schedule: DAG is not a forest");
}

std::uint32_t hu_makespan(const Dag& dag, PartId k) {
  if (dag.num_nodes() == 0) return 0;
  return hu_schedule(dag, k).makespan();
}

}  // namespace hp
