#include "hyperpart/obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace hp::obs::json {

const Value* Value::find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Value::set(const std::string& key, Value v) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  for (auto& [k, existing] : obj_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  obj_.emplace_back(key, std::move(v));
}

bool Value::operator==(const Value& o) const {
  if (type_ != o.type_) return false;
  switch (type_) {
    case Type::kNull:
      return true;
    case Type::kBool:
      return bool_ == o.bool_;
    case Type::kNumber:
      return num_ == o.num_;
    case Type::kString:
      return str_ == o.str_;
    case Type::kArray:
      return arr_ == o.arr_;
    case Type::kObject:
      return obj_ == o.obj_;
  }
  return false;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    std::size_t line = 1;
    std::size_t col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw std::runtime_error("json parse error at " + std::to_string(line) +
                             ":" + std::to_string(col) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Value(parse_string());
      case 't':
        if (!consume_literal("true")) fail("invalid literal");
        return Value(true);
      case 'f':
        if (!consume_literal("false")) fail("invalid literal");
        return Value(false);
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        return Value(nullptr);
      default:
        return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(obj));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return Value(std::move(obj));
      }
      fail("expected ',' or '}' in object");
    }
  }

  Value parse_array() {
    expect('[');
    Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return Value(std::move(arr));
      }
      fail("expected ',' or ']' in array");
    }
  }

  /// Four hex digits of a \uXXXX escape (cursor just past the 'u').
  std::uint32_t parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        fail("non-hex digit in \\u escape");
      }
    }
    return value;
  }

  static void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          // Decode \uXXXX (and surrogate pairs) to UTF-8. hyperpartd parses
          // untrusted client JSON, so passing escapes through literally
          // would silently corrupt strings; malformed escapes are parse
          // errors instead.
          const std::uint32_t unit = parse_hex4();
          std::uint32_t cp = unit;
          if (unit >= 0xDC00 && unit <= 0xDFFF) {
            fail("unpaired low surrogate in \\u escape");
          }
          if (unit >= 0xD800 && unit <= 0xDBFF) {
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              fail("high surrogate not followed by \\u escape");
            }
            pos_ += 2;
            const std::uint32_t low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF) {
              fail("high surrogate not followed by low surrogate");
            }
            cp = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
          }
          append_utf8(out, cp);
          break;
        }
        default:
          fail("invalid escape character");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("invalid value");
    const std::string token = text_.substr(start, pos_ - start);
    if (integral) {
      std::int64_t i = 0;
      const auto [p, ec] =
          std::from_chars(token.data(), token.data() + token.size(), i);
      if (ec == std::errc() && p == token.data() + token.size()) {
        return Value(i);
      }
      // Overflows int64 (or malformed); fall through to double.
    }
    try {
      std::size_t used = 0;
      const double d = std::stod(token, &used);
      if (used != token.size()) fail("malformed number '" + token + "'");
      return Value(d);
    } catch (const std::exception&) {
      fail("malformed number '" + token + "'");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_number(std::string& out, const Value& v) {
  if (v.is_integral()) {
    out += std::to_string(v.as_int());
    return;
  }
  const double d = v.as_double();
  if (!std::isfinite(d)) {
    out += "0";  // JSON has no NaN/Inf; clamp rather than emit garbage
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  out += buf;
}

void dump_value(std::string& out, const Value& v, int depth) {
  const auto indent = [&](int d) { out.append(2 * static_cast<std::size_t>(d), ' '); };
  switch (v.type()) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += v.as_bool() ? "true" : "false";
      break;
    case Type::kNumber:
      append_number(out, v);
      break;
    case Type::kString:
      append_escaped(out, v.as_string());
      break;
    case Type::kArray: {
      const Array& arr = v.as_array();
      if (arr.empty()) {
        out += "[]";
        break;
      }
      out += "[\n";
      for (std::size_t i = 0; i < arr.size(); ++i) {
        indent(depth + 1);
        dump_value(out, arr[i], depth + 1);
        if (i + 1 < arr.size()) out += ",";
        out += "\n";
      }
      indent(depth);
      out += "]";
      break;
    }
    case Type::kObject: {
      const Object& obj = v.as_object();
      if (obj.empty()) {
        out += "{}";
        break;
      }
      out += "{\n";
      for (std::size_t i = 0; i < obj.size(); ++i) {
        indent(depth + 1);
        append_escaped(out, obj[i].first);
        out += ": ";
        dump_value(out, obj[i].second, depth + 1);
        if (i + 1 < obj.size()) out += ",";
        out += "\n";
      }
      indent(depth);
      out += "}";
      break;
    }
  }
}

}  // namespace

Value parse(const std::string& text) { return Parser(text).parse_document(); }

Value parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error(path + ": cannot open");
  std::ostringstream ss;
  ss << in.rdbuf();
  try {
    return parse(ss.str());
  } catch (const std::exception& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

std::string dump(const Value& v) {
  std::string out;
  dump_value(out, v, 0);
  out += "\n";
  return out;
}

}  // namespace hp::obs::json
