#include "hyperpart/obs/telemetry.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <deque>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <vector>

namespace hp::obs {

namespace {

struct SpanNode {
  std::string name;
  double ms = 0.0;
  std::uint64_t count = 0;
  SpanNode* parent = nullptr;
  std::vector<SpanNode*> children;  // first-open order
};

/// All mutable telemetry state. A single mutex guards everything: spans
/// open at phase granularity (hundreds to a few thousand per run), so
/// contention is irrelevant, and one lock keeps counters coherent with the
/// tree when pool tasks report.
struct Registry {
  std::mutex mu;
  std::deque<SpanNode> arena;  // stable addresses
  SpanNode root{"root", 0.0, 0, nullptr, {}};
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::chrono::steady_clock::time_point session_start =
      std::chrono::steady_clock::now();
};

Registry& registry() {
  static Registry r;
  return r;
}

std::atomic<bool> g_enabled{false};

// Per-thread span stack. Spans opened on a pool worker (discouraged, but
// harmless) root at the global root rather than at whatever span the
// submitting thread happens to have open — the tree stays deterministic.
thread_local std::vector<SpanNode*> t_stack;

[[nodiscard]] std::int64_t now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

json::Value span_to_json(const SpanNode* node) {
  json::Object obj;
  obj.emplace_back("name", json::Value(node->name));
  obj.emplace_back("ms", json::Value(node->ms));
  obj.emplace_back("count",
                   json::Value(static_cast<std::int64_t>(node->count)));
  json::Array children;
  for (const SpanNode* c : node->children) children.push_back(span_to_json(c));
  obj.emplace_back("children", json::Value(std::move(children)));
  return json::Value(std::move(obj));
}

void append_paths(const SpanNode* node, const std::string& prefix,
                  std::string& out) {
  for (const SpanNode* c : node->children) {
    const std::string path = prefix.empty() ? c->name : prefix + "/" + c->name;
    out += path;
    out += " x";
    out += std::to_string(c->count);
    out += "\n";
    append_paths(c, path, out);
  }
}

}  // namespace

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

void reset() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.arena.clear();
  r.root.children.clear();
  r.root.ms = 0.0;
  r.root.count = 0;
  r.counters.clear();
  r.gauges.clear();
  r.session_start = std::chrono::steady_clock::now();
  t_stack.clear();
}

void counter_add(const std::string& name, std::int64_t delta) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.counters[name] += delta;
}

void gauge_set(const std::string& name, std::int64_t value) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.gauges[name] = value;
}

void gauge_max(const std::string& name, std::int64_t value) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto [it, inserted] = r.gauges.try_emplace(name, value);
  if (!inserted && it->second < value) it->second = value;
}

std::int64_t counter(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  const auto it = r.counters.find(name);
  return it == r.counters.end() ? 0 : it->second;
}

std::int64_t gauge(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  const auto it = r.gauges.find(name);
  return it == r.gauges.end() ? 0 : it->second;
}

std::uint64_t peak_rss_bytes() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      std::istringstream ls(line.substr(6));
      std::uint64_t kb = 0;
      ls >> kb;
      return kb * 1024;
    }
  }
  return 0;
}

Span::Span(std::string name) {
  if (name.empty() || !enabled()) return;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  SpanNode* parent = t_stack.empty() ? &r.root : t_stack.back();
  SpanNode* node = nullptr;
  for (SpanNode* c : parent->children) {
    if (c->name == name) {
      node = c;
      break;
    }
  }
  if (node == nullptr) {
    r.arena.push_back(SpanNode{std::move(name), 0.0, 0, parent, {}});
    node = &r.arena.back();
    parent->children.push_back(node);
  }
  ++node->count;
  t_stack.push_back(node);
  node_ = node;
  start_ns_ = now_ns();
}

Span::~Span() {
  if (node_ == nullptr) return;
  const double ms = static_cast<double>(now_ns() - start_ns_) * 1e-6;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto* node = static_cast<SpanNode*>(node_);
  node->ms += ms;
  // Unwind to this span even if an exception skipped inner close order.
  while (!t_stack.empty() && t_stack.back() != node) t_stack.pop_back();
  if (!t_stack.empty()) t_stack.pop_back();
}

json::Value to_json() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  json::Object doc;
  doc.emplace_back("schema", json::Value(kSchemaName));
  doc.emplace_back("version", json::Value(kSchemaVersion));
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - r.session_start)
          .count();
  doc.emplace_back("wall_ms", json::Value(wall_ms));
  doc.emplace_back(
      "peak_rss_bytes",
      json::Value(static_cast<std::int64_t>(peak_rss_bytes())));
  json::Array spans;
  for (const SpanNode* c : r.root.children) spans.push_back(span_to_json(c));
  doc.emplace_back("spans", json::Value(std::move(spans)));
  json::Object counters;
  for (const auto& [k, v] : r.counters) counters.emplace_back(k, json::Value(v));
  doc.emplace_back("counters", json::Value(std::move(counters)));
  json::Object gauges;
  for (const auto& [k, v] : r.gauges) gauges.emplace_back(k, json::Value(v));
  doc.emplace_back("gauges", json::Value(std::move(gauges)));
  return json::Value(std::move(doc));
}

bool write_json(const std::string& path) {
  const std::string text = json::dump(to_json());
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << text;
  return static_cast<bool>(out);
}

std::string span_paths() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::string out;
  append_paths(&r.root, "", out);
  return out;
}

}  // namespace hp::obs
