#include "hyperpart/dag/hyperdag.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace hp {

Dag HyperDag::to_dag() const {
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const NodeId gen = generator[e];
    for (const NodeId v : graph.pins(e)) {
      if (v != gen) edges.emplace_back(gen, v);
    }
  }
  return Dag::from_edges(graph.num_nodes(), std::move(edges));
}

HyperDag to_hyperdag(const Dag& dag) {
  HyperDag h;
  std::vector<std::vector<NodeId>> edges;
  for (NodeId u = 0; u < dag.num_nodes(); ++u) {
    const auto succ = dag.successors(u);
    if (succ.empty()) continue;  // sinks generate no hyperedge
    std::vector<NodeId> pins;
    pins.reserve(succ.size() + 1);
    pins.push_back(u);
    pins.insert(pins.end(), succ.begin(), succ.end());
    edges.push_back(std::move(pins));
    h.generator.push_back(u);
  }
  h.graph = Hypergraph::from_edges(dag.num_nodes(), std::move(edges));
  return h;
}

Hypergraph hendrickson_kolda_hypergraph(const Dag& dag) {
  std::vector<std::vector<NodeId>> edges;
  edges.reserve(dag.num_nodes());
  for (NodeId u = 0; u < dag.num_nodes(); ++u) {
    std::vector<NodeId> pins;
    pins.push_back(u);
    const auto pred = dag.predecessors(u);
    const auto succ = dag.successors(u);
    pins.insert(pins.end(), pred.begin(), pred.end());
    pins.insert(pins.end(), succ.begin(), succ.end());
    edges.push_back(std::move(pins));
  }
  return Hypergraph::from_edges(dag.num_nodes(), std::move(edges));
}

HyperDag densest_hyperdag(NodeId n) {
  if (n < 2) throw std::invalid_argument("densest_hyperdag: need n >= 2");
  HyperDag h;
  std::vector<std::vector<NodeId>> edges;
  edges.reserve(n - 1);
  for (NodeId i = 0; i + 1 < n; ++i) {
    std::vector<NodeId> pins;
    pins.reserve(n - i);
    for (NodeId v = i; v < n; ++v) pins.push_back(v);
    edges.push_back(std::move(pins));
    h.generator.push_back(i);
  }
  h.graph = Hypergraph::from_edges(n, std::move(edges));
  return h;
}

bool valid_generator_assignment(const Hypergraph& g,
                                const std::vector<NodeId>& generator) {
  if (generator.size() != g.num_edges()) return false;
  std::vector<bool> used(g.num_nodes(), false);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const NodeId gen = generator[e];
    if (gen >= g.num_nodes() || used[gen]) return false;
    used[gen] = true;
    const auto p = g.pins(e);
    if (!std::binary_search(p.begin(), p.end(), gen)) return false;
  }
  // Acyclicity of the induced directed graph.
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    for (const NodeId v : g.pins(e)) {
      if (v != generator[e]) edges.emplace_back(generator[e], v);
    }
  }
  try {
    (void)Dag::from_edges(g.num_nodes(), std::move(edges));
  } catch (const std::invalid_argument&) {
    return false;
  }
  return true;
}

}  // namespace hp
