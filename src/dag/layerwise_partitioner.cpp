#include "hyperpart/dag/layerwise_partitioner.hpp"

#include "hyperpart/core/metrics.hpp"
#include "hyperpart/util/rng.hpp"

namespace hp {

std::optional<LayerwisePartitionResult> layerwise_partition(
    const Hypergraph& graph, const Dag& dag, const Layering& layers,
    PartId k, const LayerwiseConfig& cfg) {
  if (!valid_layering(dag, layers) || dag.num_nodes() != graph.num_nodes()) {
    return std::nullopt;
  }
  const ConstraintSet groups = layerwise_constraints(
      graph, dag, layers, k, cfg.epsilon, /*relaxed=*/true);
  const auto balance =
      BalanceConstraint::for_graph(graph, k, cfg.epsilon, /*relaxed=*/true);
  const auto sets = layer_sets(dag, layers);

  Rng rng{cfg.seed};
  std::optional<LayerwisePartitionResult> best;
  for (int start = 0; start < cfg.starts; ++start) {
    // Layer-feasible seed: a randomly rotated round-robin in every layer.
    Partition p(graph.num_nodes(), k);
    for (const auto& layer : sets) {
      const auto offset = rng.next_below(k);
      for (std::size_t i = 0; i < layer.size(); ++i) {
        p.assign(layer[i], static_cast<PartId>((i + offset) % k));
      }
    }
    if (!groups.satisfied(graph, p) || !balance.satisfied(graph, p)) {
      continue;  // degenerate layer sizes; try another rotation
    }
    FmConfig fm = cfg.fm;
    fm.metric = cfg.metric;
    fm.extra_constraints = &groups;
    const Weight c = fm_refine(graph, p, balance, fm);
    if (!best || c < best->cost) {
      best = LayerwisePartitionResult{std::move(p), c};
    }
  }
  return best;
}

}  // namespace hp
