#include "hyperpart/dag/recognition.hpp"

#include <algorithm>

namespace hp {

RecognitionResult recognize_hyperdag(const Hypergraph& g) {
  RecognitionResult res;
  res.generator.assign(g.num_edges(), kInvalidNode);

  const NodeId n = g.num_nodes();
  std::vector<std::uint32_t> degree(n);
  std::vector<bool> node_alive(n, true);
  std::vector<bool> edge_alive(g.num_edges(), true);

  // Degree buckets with intrusive positions: buckets[d] lists nodes of
  // current degree d; pos[v] is v's index inside its bucket. This realizes
  // the O(ρ) bound of Lemma B.2.
  std::vector<std::vector<NodeId>> buckets(
      static_cast<std::size_t>(g.max_degree()) + 1);
  std::vector<std::uint32_t> pos(n);
  for (NodeId v = 0; v < n; ++v) {
    degree[v] = g.degree(v);
    pos[v] = static_cast<std::uint32_t>(buckets[degree[v]].size());
    buckets[degree[v]].push_back(v);
  }
  const auto bucket_erase = [&](NodeId v) {
    auto& b = buckets[degree[v]];
    const NodeId last = b.back();
    b[pos[v]] = last;
    pos[last] = pos[v];
    b.pop_back();
  };
  const auto decrement_degree = [&](NodeId v) {
    bucket_erase(v);
    --degree[v];
    pos[v] = static_cast<std::uint32_t>(buckets[degree[v]].size());
    buckets[degree[v]].push_back(v);
  };

  EdgeId edges_left = g.num_edges();
  while (true) {
    // Drop isolated nodes first, then take a degree-1 node if any.
    while (!buckets[0].empty()) {
      const NodeId v = buckets[0].back();
      buckets[0].pop_back();
      node_alive[v] = false;
    }
    if (edges_left == 0) {
      res.is_hyperdag = true;
      return res;
    }
    if (buckets.size() < 2 || buckets[1].empty()) break;  // stuck

    const NodeId v = buckets[1].back();
    bucket_erase(v);
    node_alive[v] = false;
    // v's single remaining incident edge: v becomes its generator.
    EdgeId mine = kInvalidEdge;
    for (const EdgeId e : g.incident_edges(v)) {
      if (edge_alive[e]) {
        mine = e;
        break;
      }
    }
    res.generator[mine] = v;
    edge_alive[mine] = false;
    --edges_left;
    for (const NodeId u : g.pins(mine)) {
      if (u != v && node_alive[u]) decrement_degree(u);
    }
  }

  // Failure: the alive nodes all have degree >= 2; the alive edges are fully
  // contained in them, so they witness a violating induced subgraph.
  res.generator.clear();
  for (NodeId v = 0; v < n; ++v) {
    if (node_alive[v]) res.violating_subset.push_back(v);
  }
  return res;
}

bool is_hyperdag(const Hypergraph& g) {
  return recognize_hyperdag(g).is_hyperdag;
}

bool characterization_holds_bruteforce(const Hypergraph& g) {
  const NodeId n = g.num_nodes();
  // Enumerate all non-empty node subsets; only sensible for n <= ~20.
  for (std::uint64_t mask = 1; mask < (std::uint64_t{1} << n); ++mask) {
    bool has_low_degree_node = false;
    for (NodeId v = 0; v < n && !has_low_degree_node; ++v) {
      if (!((mask >> v) & 1)) continue;
      std::uint32_t deg = 0;
      for (const EdgeId e : g.incident_edges(v)) {
        bool inside = true;
        for (const NodeId u : g.pins(e)) {
          if (!((mask >> u) & 1)) {
            inside = false;
            break;
          }
        }
        if (inside) ++deg;
      }
      if (deg <= 1) has_low_degree_node = true;
    }
    if (!has_low_degree_node) return false;
  }
  return true;
}

}  // namespace hp
