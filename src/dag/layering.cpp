#include "hyperpart/dag/layering.hpp"

#include <algorithm>

namespace hp {

bool valid_layering(const Dag& dag, const Layering& layers) {
  if (layers.size() != dag.num_nodes()) return false;
  const std::uint32_t ell = dag.longest_path_nodes();
  for (NodeId v = 0; v < dag.num_nodes(); ++v) {
    if (layers[v] >= ell) return false;
    for (const NodeId w : dag.successors(v)) {
      if (layers[v] >= layers[w]) return false;
    }
  }
  return true;
}

std::vector<std::vector<NodeId>> layer_sets(const Dag& dag,
                                            const Layering& layers) {
  std::vector<std::vector<NodeId>> sets(dag.longest_path_nodes());
  for (NodeId v = 0; v < dag.num_nodes(); ++v) sets[layers[v]].push_back(v);
  return sets;
}

ConstraintSet layerwise_constraints(const Hypergraph& g, const Dag& dag,
                                    const Layering& layers, PartId k,
                                    double epsilon, bool relaxed) {
  return ConstraintSet::for_subsets(g, layer_sets(dag, layers), k, epsilon,
                                    relaxed);
}

std::size_t num_flexible_nodes(const Dag& dag) {
  const auto lo = dag.earliest_layers();
  const auto hi = dag.latest_layers();
  std::size_t count = 0;
  for (NodeId v = 0; v < dag.num_nodes(); ++v) {
    if (lo[v] < hi[v]) ++count;
  }
  return count;
}

std::vector<Layering> enumerate_layerings(const Dag& dag,
                                          std::size_t max_results) {
  const auto lo = dag.earliest_layers();
  const auto hi = dag.latest_layers();
  std::vector<NodeId> flexible;
  for (NodeId v = 0; v < dag.num_nodes(); ++v) {
    if (lo[v] < hi[v]) flexible.push_back(v);
  }
  std::vector<Layering> results;
  Layering current = lo;
  // Depth-first over flexible nodes; pinned nodes stay at their only layer.
  const auto recurse = [&](auto&& self, std::size_t idx) -> void {
    if (results.size() >= max_results) return;
    if (idx == flexible.size()) {
      if (valid_layering(dag, current)) results.push_back(current);
      return;
    }
    const NodeId v = flexible[idx];
    for (std::uint32_t layer = lo[v]; layer <= hi[v]; ++layer) {
      current[v] = layer;
      self(self, idx + 1);
    }
    current[v] = lo[v];
  };
  recurse(recurse, 0);
  return results;
}

}  // namespace hp
