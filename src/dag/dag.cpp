#include "hyperpart/dag/dag.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace hp {

Dag Dag::from_edges(NodeId num_nodes,
                    std::vector<std::pair<NodeId, NodeId>> edges) {
  for (const auto& [u, v] : edges) {
    if (u >= num_nodes || v >= num_nodes) {
      throw std::invalid_argument("Dag::from_edges: endpoint out of range");
    }
    if (u == v) throw std::invalid_argument("Dag::from_edges: self loop");
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  Dag d;
  d.succ_offsets_.assign(static_cast<std::size_t>(num_nodes) + 1, 0);
  d.pred_offsets_.assign(static_cast<std::size_t>(num_nodes) + 1, 0);
  for (const auto& [u, v] : edges) {
    ++d.succ_offsets_[u + 1];
    ++d.pred_offsets_[v + 1];
  }
  std::partial_sum(d.succ_offsets_.begin(), d.succ_offsets_.end(),
                   d.succ_offsets_.begin());
  std::partial_sum(d.pred_offsets_.begin(), d.pred_offsets_.end(),
                   d.pred_offsets_.begin());
  d.succ_.resize(edges.size());
  d.pred_.resize(edges.size());
  std::vector<std::uint64_t> sc(d.succ_offsets_.begin(),
                                d.succ_offsets_.end() - 1);
  std::vector<std::uint64_t> pc(d.pred_offsets_.begin(),
                                d.pred_offsets_.end() - 1);
  for (const auto& [u, v] : edges) {
    d.succ_[sc[u]++] = v;
    d.pred_[pc[v]++] = u;
  }

  if (d.topological_order().size() != num_nodes) {
    throw std::invalid_argument("Dag::from_edges: graph contains a cycle");
  }
  return d;
}

std::vector<NodeId> Dag::sources() const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < num_nodes(); ++v) {
    if (in_degree(v) == 0) out.push_back(v);
  }
  return out;
}

std::vector<NodeId> Dag::sinks() const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < num_nodes(); ++v) {
    if (out_degree(v) == 0) out.push_back(v);
  }
  return out;
}

std::vector<NodeId> Dag::topological_order() const {
  const NodeId n = num_nodes();
  std::vector<std::uint32_t> remaining(n);
  std::vector<NodeId> order;
  order.reserve(n);
  std::vector<NodeId> frontier;
  for (NodeId v = 0; v < n; ++v) {
    remaining[v] = in_degree(v);
    if (remaining[v] == 0) frontier.push_back(v);
  }
  while (!frontier.empty()) {
    const NodeId v = frontier.back();
    frontier.pop_back();
    order.push_back(v);
    for (const NodeId w : successors(v)) {
      if (--remaining[w] == 0) frontier.push_back(w);
    }
  }
  return order;  // shorter than n iff cyclic
}

std::uint32_t Dag::longest_path_nodes() const {
  if (num_nodes() == 0) return 0;
  const auto layers = earliest_layers();
  return *std::max_element(layers.begin(), layers.end()) + 1;
}

std::vector<std::uint32_t> Dag::earliest_layers() const {
  std::vector<std::uint32_t> layer(num_nodes(), 0);
  for (const NodeId v : topological_order()) {
    for (const NodeId u : predecessors(v)) {
      layer[v] = std::max(layer[v], layer[u] + 1);
    }
  }
  return layer;
}

std::vector<std::uint32_t> Dag::latest_layers() const {
  const std::uint32_t ell = longest_path_nodes();
  std::vector<std::uint32_t> layer(num_nodes(), ell == 0 ? 0 : ell - 1);
  const auto order = topological_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId v = *it;
    for (const NodeId w : successors(v)) {
      layer[v] = std::min(layer[v], layer[w] - 1);
    }
  }
  return layer;
}

std::vector<std::pair<NodeId, NodeId>> Dag::edge_list() const {
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(num_edges());
  for (NodeId u = 0; u < num_nodes(); ++u) {
    for (const NodeId v : successors(u)) out.emplace_back(u, v);
  }
  return out;
}

}  // namespace hp
