#include "hyperpart/stream/restream_refiner.hpp"

#include <algorithm>
#include <functional>
#include <vector>

#include "hyperpart/core/connectivity_tracker.hpp"
#include "hyperpart/obs/telemetry.hpp"
#include "hyperpart/util/overflow.hpp"
#include "hyperpart/util/thread_pool.hpp"

namespace hp::stream {

namespace {

struct Proposal {
  NodeId v;    // global node id
  PartId to;   // proposed destination
};

/// Chunks proposed concurrently per wave. Fixed (not the thread count) so
/// the commit order — and therefore the result — is identical for every
/// thread count; run_parallel caps actual concurrency at cfg.threads.
constexpr unsigned kWaveChunks = 8;

/// Exact decrease in cost if v moved to `to`, evaluated against the live
/// global assignment by scanning v's incident pins through the mapping.
/// Mirrors the ConnectivityTracker gain rules: both metrics only need the
/// per-edge pin counts of the source and destination parts.
[[nodiscard]] Weight exact_gain(const MappedHypergraph& g, const Partition& p,
                                NodeId v, PartId to, CostMetric metric) {
  const PartId from = p[v];
  Weight gain = 0;
  for (const EdgeId e : g.incident_edges(v)) {
    const auto pins = g.pins(e);
    std::uint32_t c_from = 0;  // pins of e in `from`, including v
    std::uint32_t c_to = 0;
    for (const NodeId u : pins) {
      const PartId q = p[u];
      c_from += q == from;
      c_to += q == to;
    }
    const Weight w = g.edge_weight(e);
    if (metric == CostMetric::kConnectivity) {
      if (c_from == 1) gain = sat_add(gain, w);  // v leaves: λ_e drops by one
      if (c_to == 0) gain = sat_sub(gain, w);  // v arrives alone: λ_e grows
    } else {
      const bool cut_before = c_from != pins.size();
      const bool cut_after = c_to + 1 != pins.size();
      if (cut_before && !cut_after) gain = sat_add(gain, w);
      if (!cut_before && cut_after) gain = sat_sub(gain, w);
    }
  }
  return gain;
}

/// Build the ghost-collapsed sub-hypergraph of window [begin, end), run the
/// tracker-driven greedy sweeps, and return the net moves as proposals.
/// Reads p and part_weights only (both frozen during a wave).
[[nodiscard]] std::vector<Proposal> propose_chunk(
    const MappedHypergraph& g, const Partition& p,
    const std::vector<Weight>& part_weights, const BalanceConstraint& balance,
    const RestreamConfig& cfg, NodeId begin, NodeId end) {
  const PartId k = balance.k();
  const NodeId window = end - begin;

  // Window-incident edges, deduplicated.
  std::vector<EdgeId> edges;
  for (NodeId v = begin; v < end; ++v) {
    const auto inc = g.incident_edges(v);
    edges.insert(edges.end(), inc.begin(), inc.end());
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  if (edges.empty()) return {};

  // Local ids: window node v ↦ v − begin; ghosts (q, j) ↦ window + 2q + j.
  // Outside pins collapse per (edge, part) to min(count, 2) ghost pins —
  // exactly enough to preserve the 0 / 1 / ≥2 pin-count classification the
  // gain rules read.
  const auto ghost = [window](PartId q, std::uint32_t j) -> NodeId {
    return window + 2 * q + j;
  };
  std::vector<std::vector<NodeId>> local_edges;
  local_edges.reserve(edges.size());
  std::vector<Weight> local_edge_weights;
  local_edge_weights.reserve(edges.size());
  std::vector<std::uint32_t> out_count(k, 0);
  std::vector<PartId> out_touched;
  for (const EdgeId e : edges) {
    std::vector<NodeId> local;
    for (const NodeId u : g.pins(e)) {
      if (u >= begin && u < end) {
        local.push_back(u - begin);
      } else {
        const PartId q = p[u];
        if (out_count[q]++ == 0) out_touched.push_back(q);
      }
    }
    for (const PartId q : out_touched) {
      local.push_back(ghost(q, 0));
      if (out_count[q] >= 2) local.push_back(ghost(q, 1));
      out_count[q] = 0;
    }
    out_touched.clear();
    local_edges.push_back(std::move(local));
    local_edge_weights.push_back(g.edge_weight(e));
  }

  Hypergraph local_g =
      Hypergraph::from_edges(window + 2 * k, std::move(local_edges));
  local_g.set_edge_weights(std::move(local_edge_weights));
  {
    // Ghosts carry weight 0 so they never perturb weight bookkeeping.
    std::vector<Weight> nw(static_cast<std::size_t>(window) + 2 * k, 0);
    for (NodeId v = 0; v < window; ++v) nw[v] = g.node_weight(begin + v);
    local_g.set_node_weights(std::move(nw));
  }

  Partition local_p(window + 2 * k, k);
  for (NodeId v = 0; v < window; ++v) local_p.assign(v, p[begin + v]);
  for (PartId q = 0; q < k; ++q) {
    local_p.assign(ghost(q, 0), q);
    local_p.assign(ghost(q, 1), q);
  }

  // PR 1's gain rules on the resident window. Ghosts are never moved, so
  // every tracker gain equals the true global gain under the frozen
  // assignment.
  ConnectivityTracker tracker(local_g, local_p);
  std::vector<Weight> pw = part_weights;  // chunk-local running weights
  for (int sweep = 0; sweep < cfg.max_chunk_sweeps; ++sweep) {
    bool improved = false;
    for (NodeId v = 0; v < window; ++v) {
      const PartId from = tracker.part_of(v);
      const Weight wv = g.node_weight(begin + v);
      PartId best = kInvalidPart;
      Weight best_gain = 0;
      for (PartId q = 0; q < k; ++q) {
        if (q == from || sat_add(pw[q], wv) > balance.capacity()) continue;
        const Weight gain = tracker.gain(v, q, cfg.metric);
        if (gain > best_gain) {
          best = q;
          best_gain = gain;
        }
      }
      if (best == kInvalidPart) continue;
      tracker.move(v, best);
      pw[from] -= wv;
      pw[best] += wv;
      improved = true;
    }
    if (!improved) break;
  }

  std::vector<Proposal> proposals;
  for (NodeId v = 0; v < window; ++v) {
    if (tracker.part_of(v) != p[begin + v]) {
      proposals.push_back({begin + v, tracker.part_of(v)});
    }
  }
  return proposals;
}

}  // namespace

RestreamResult restream_refine(const MappedHypergraph& g, Partition& p,
                               const BalanceConstraint& balance,
                               const RestreamConfig& cfg) {
  HP_SPAN("restream");
  RestreamResult result;
  const NodeId n = g.num_nodes();
  const NodeId chunk = std::max<NodeId>(1, cfg.chunk_size);
  const unsigned threads =
      cfg.threads == 0 ? default_threads() : cfg.threads;

  std::vector<Weight> part_weights(balance.k(), 0);
  for (NodeId v = 0; v < n; ++v) {
    part_weights[p[v]] = sat_add(part_weights[p[v]], g.node_weight(v));
  }

  for (int pass = 0; pass < cfg.max_passes; ++pass) {
    HP_SPAN("pass", pass);
    result.passes_run = pass + 1;
    std::uint64_t applied_this_pass = 0;
    for (NodeId wave_begin = 0; wave_begin < n;
         wave_begin += static_cast<std::uint64_t>(chunk) * kWaveChunks) {
      // Propose phase: p and part_weights are frozen (read-only) while the
      // wave's chunks run concurrently on the persistent pool.
      std::vector<std::vector<Proposal>> proposals(kWaveChunks);
      std::vector<std::function<void()>> tasks;
      for (unsigned c = 0; c < kWaveChunks; ++c) {
        const std::uint64_t b =
            wave_begin + static_cast<std::uint64_t>(c) * chunk;
        if (b >= n) break;
        const NodeId cb = static_cast<NodeId>(b);
        const NodeId ce = static_cast<NodeId>(
            std::min<std::uint64_t>(n, b + chunk));
        tasks.push_back([&, c, cb, ce]() {
          proposals[c] =
              propose_chunk(g, p, part_weights, balance, cfg, cb, ce);
        });
      }
      run_parallel(tasks, threads);

      // Commit phase: sequential, with each proposal's gain re-validated
      // against the live state — chunks share edges, so gains computed
      // against the wave snapshot can be stale.
      for (const auto& chunk_proposals : proposals) {
        for (const Proposal& m : chunk_proposals) {
          ++result.moves_proposed;
          const PartId from = p[m.v];
          if (from == m.to) continue;
          const Weight wv = g.node_weight(m.v);
          if (sat_add(part_weights[m.to], wv) > balance.capacity()) continue;
          if (exact_gain(g, p, m.v, m.to, cfg.metric) <= 0) continue;
          p.assign(m.v, m.to);
          part_weights[from] -= wv;
          part_weights[m.to] += wv;
          ++result.moves_applied;
          ++applied_this_pass;
        }
      }
    }
    if (applied_this_pass == 0) break;
  }

  HP_COUNTER_ADD("restream.passes", result.passes_run);
  HP_COUNTER_ADD("restream.moves_proposed",
                 static_cast<std::int64_t>(result.moves_proposed));
  HP_COUNTER_ADD("restream.moves_applied",
                 static_cast<std::int64_t>(result.moves_applied));
  result.cost = cost_of(g, p, cfg.metric);
  return result;
}

}  // namespace hp::stream
