#include "hyperpart/stream/stream_partitioner.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "hyperpart/obs/telemetry.hpp"
#include "hyperpart/util/overflow.hpp"
#include "hyperpart/util/rng.hpp"

namespace hp::stream {

namespace {

/// Deterministic tie-break hash: mixes (seed, node, part) through one
/// SplitMix64 step.
[[nodiscard]] std::uint64_t tie_hash(std::uint64_t seed, NodeId v,
                                     PartId q) noexcept {
  std::uint64_t state =
      seed ^ (static_cast<std::uint64_t>(v) << 32) ^ (q + 0x9e3779b9u);
  return splitmix64(state);
}

}  // namespace

std::optional<StreamResult> stream_partition(const MappedHypergraph& g,
                                             const BalanceConstraint& balance,
                                             const StreamConfig& cfg) {
  HP_SPAN("stream");
  const NodeId n = g.num_nodes();
  const PartId k = balance.k();
  const Weight capacity = balance.capacity();
  const bool exact_sketch = k <= 64;

  StreamResult result;
  result.partition = Partition(n, k);
  result.part_weights.assign(k, 0);
  std::vector<std::uint64_t> sketch(g.num_edges(), 0);
  std::vector<Weight> benefit(k, 0);
  std::vector<PartId> touched;  // parts with a nonzero benefit this node
  touched.reserve(k);
  Weight conn_cost = 0;
  Weight cut_cost = 0;

  const NodeId buffer = std::max<NodeId>(1, cfg.buffer_size);
  std::vector<NodeId> order;
  order.reserve(buffer);

  for (NodeId begin = 0; begin < n; begin += buffer) {
    HP_SPAN("window", begin / buffer);
    HP_COUNTER_ADD("stream.windows", 1);
    const NodeId end = std::min<std::uint64_t>(n, std::uint64_t{begin} + buffer);
    order.resize(end - begin);
    for (NodeId i = begin; i < end; ++i) order[i - begin] = i;
    // High-degree nodes first: they carry the most presence signal and
    // constrain the rest of the batch. Stable tie-break keeps arrival order.
    std::stable_sort(order.begin(), order.end(),
                     [&](NodeId a, NodeId b) {
                       return g.degree(a) > g.degree(b);
                     });

    for (const NodeId v : order) {
      const Weight wv = g.node_weight(v);
      const auto incident = g.incident_edges(v);

      // Gather per-part connectivity benefit from the edge sketches.
      for (const EdgeId e : incident) {
        std::uint64_t mask = sketch[e];
        if (mask == 0) continue;
        const Weight we = g.edge_weight(e);
        if (exact_sketch) {
          while (mask != 0) {
            const PartId q = static_cast<PartId>(std::countr_zero(mask));
            mask &= mask - 1;
            if (benefit[q] == 0) touched.push_back(q);
            benefit[q] = sat_add(benefit[q], we);
          }
        } else {
          // Hashed sketch: every part sharing a set bit may be present.
          for (PartId q = 0; q < k; ++q) {
            if ((mask >> (q % 64)) & 1u) {
              if (benefit[q] == 0) touched.push_back(q);
              benefit[q] = sat_add(benefit[q], we);
            }
          }
        }
      }

      // Pick the feasible part with the best fractional greedy score.
      const double penalty_scale =
          cfg.balance_penalty *
          (static_cast<double>(g.degree(v)) + 1.0);
      PartId best = kInvalidPart;
      double best_score = 0;
      Weight best_weight = 0;
      std::uint64_t best_hash = 0;
      for (PartId q = 0; q < k; ++q) {
        const Weight wq = result.part_weights[q];
        if (sat_add(wq, wv) > capacity) continue;
        const double fill = capacity > 0
                                ? static_cast<double>(wq) /
                                      static_cast<double>(capacity)
                                : 0.0;
        const double score =
            static_cast<double>(benefit[q]) -
            penalty_scale * std::pow(fill, cfg.penalty_exponent);
        const std::uint64_t h = tie_hash(cfg.seed, v, q);
        const bool better =
            best == kInvalidPart || score > best_score ||
            (score == best_score &&
             (wq < best_weight || (wq == best_weight && h < best_hash)));
        if (better) {
          best = q;
          best_score = score;
          best_weight = wq;
          best_hash = h;
        }
      }
      for (const PartId q : touched) benefit[q] = 0;
      touched.clear();
      if (best == kInvalidPart) return std::nullopt;

      // Place and update sketches + incremental cost.
      result.partition.assign(v, best);
      result.part_weights[best] = sat_add(result.part_weights[best], wv);
      const std::uint64_t bit = std::uint64_t{1} << (best % 64);
      for (const EdgeId e : incident) {
        const std::uint64_t mask = sketch[e];
        if ((mask & bit) != 0) continue;  // part already present (or collides)
        if (mask != 0) {
          const Weight we = g.edge_weight(e);
          conn_cost = sat_add(conn_cost, we);  // λ_e grows by one
          if (std::popcount(mask) == 1) {
            cut_cost = sat_add(cut_cost, we);  // λ_e: 1 → 2
          }
        }
        sketch[e] = mask | bit;
      }
    }
  }

  HP_COUNTER_ADD("stream.nodes_placed", n);
  HP_GAUGE_MAX("stream.sketch_bytes",
               static_cast<std::int64_t>(sketch.size() * sizeof(sketch[0])));
  result.streamed_cost =
      cfg.metric == CostMetric::kConnectivity ? conn_cost : cut_cost;
  result.offline_cost = cost_of(g, result.partition, cfg.metric);
  return result;
}

}  // namespace hp::stream
