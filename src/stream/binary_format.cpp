#include "hyperpart/stream/binary_format.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "hyperpart/io/hmetis_io.hpp"
#include "hyperpart/obs/telemetry.hpp"
#include "hyperpart/util/overflow.hpp"

namespace hp::stream {

namespace {

constexpr char kMagic[4] = {'H', 'P', 'B', 'H'};

[[nodiscard]] std::uint64_t align8(std::uint64_t x) noexcept {
  return (x + 7) & ~std::uint64_t{7};
}

void write_raw(std::ofstream& out, const void* data, std::uint64_t bytes) {
  out.write(static_cast<const char*>(data),
            static_cast<std::streamsize>(bytes));
}

void write_padded(std::ofstream& out, const void* data, std::uint64_t bytes) {
  write_raw(out, data, bytes);
  const std::uint64_t pad = align8(bytes) - bytes;
  static constexpr char zeros[8] = {};
  if (pad != 0) write_raw(out, zeros, pad);
}

}  // namespace

void write_binary_file(const std::string& path, const Hypergraph& g) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("write_binary_file: cannot open " + path);
  }

  BinaryHeader header{};
  std::memcpy(header.magic, kMagic, 4);
  header.version = kBinaryVersion;
  header.num_nodes = g.num_nodes();
  header.num_edges = g.num_edges();
  header.num_pins = g.num_pins();
  header.flags = (g.has_node_weights() ? kFlagNodeWeights : 0) |
                 (g.has_edge_weights() ? kFlagEdgeWeights : 0);
  header.header_bytes = sizeof(BinaryHeader);
  write_raw(out, &header, sizeof(header));

  // Reassemble the CSR arrays through the public span interface; the copies
  // are transient writer-side buffers.
  std::vector<std::uint64_t> offsets;
  offsets.reserve(static_cast<std::size_t>(g.num_edges()) + 1);
  offsets.push_back(0);
  std::vector<NodeId> ids;
  ids.reserve(g.num_pins());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto p = g.pins(e);
    ids.insert(ids.end(), p.begin(), p.end());
    offsets.push_back(ids.size());
  }
  write_raw(out, offsets.data(), offsets.size() * sizeof(std::uint64_t));
  write_padded(out, ids.data(), ids.size() * sizeof(NodeId));

  offsets.assign(1, 0);
  ids.clear();
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto inc = g.incident_edges(v);
    ids.insert(ids.end(), inc.begin(), inc.end());
    offsets.push_back(ids.size());
  }
  write_raw(out, offsets.data(), offsets.size() * sizeof(std::uint64_t));
  write_padded(out, ids.data(), ids.size() * sizeof(EdgeId));

  if (g.has_node_weights()) {
    std::vector<Weight> w(g.num_nodes());
    for (NodeId v = 0; v < g.num_nodes(); ++v) w[v] = g.node_weight(v);
    write_raw(out, w.data(), w.size() * sizeof(Weight));
  }
  if (g.has_edge_weights()) {
    std::vector<Weight> w(g.num_edges());
    for (EdgeId e = 0; e < g.num_edges(); ++e) w[e] = g.edge_weight(e);
    write_raw(out, w.data(), w.size() * sizeof(Weight));
  }
  out.flush();
  if (!out) {
    throw std::runtime_error("write_binary_file: write failed for " + path);
  }
}

void convert_hmetis_file(const std::string& hmetis_path,
                         const std::string& binary_path) {
  write_binary_file(binary_path, read_hmetis_file(hmetis_path));
}

bool is_binary_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  char magic[4] = {};
  in.read(magic, 4);
  return in.gcount() == 4 && std::memcmp(magic, kMagic, 4) == 0;
}

MappedHypergraph::MappedHypergraph(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw std::runtime_error("MappedHypergraph: cannot open " + path);
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    throw std::runtime_error("MappedHypergraph: cannot stat " + path);
  }
  map_bytes_ = static_cast<std::uint64_t>(st.st_size);
  if (map_bytes_ < sizeof(BinaryHeader)) {
    ::close(fd);
    throw std::runtime_error("MappedHypergraph: file too short: " + path);
  }
  map_ = ::mmap(nullptr, map_bytes_, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (map_ == MAP_FAILED) {
    map_ = nullptr;
    throw std::runtime_error("MappedHypergraph: mmap failed for " + path);
  }

  BinaryHeader header{};
  std::memcpy(&header, map_, sizeof(header));
  if (std::memcmp(header.magic, kMagic, 4) != 0) {
    unmap();
    throw std::runtime_error("MappedHypergraph: bad magic in " + path);
  }
  if (header.version != kBinaryVersion ||
      header.header_bytes != sizeof(BinaryHeader)) {
    unmap();
    throw std::runtime_error("MappedHypergraph: unsupported version in " +
                             path);
  }
  if (header.num_nodes > static_cast<std::uint64_t>(kInvalidNode) ||
      header.num_edges > static_cast<std::uint64_t>(kInvalidEdge)) {
    unmap();
    throw std::runtime_error("MappedHypergraph: counts exceed 32-bit ids in " +
                             path);
  }
  // A pin occupies ≥ 8 bytes across the two id sections, so any genuine
  // count is bounded by the file size; this also keeps the section-offset
  // arithmetic below far from uint64 overflow on corrupt headers.
  if (header.num_pins > map_bytes_) {
    unmap();
    throw std::runtime_error(
        "MappedHypergraph: pin count exceeds file size in " + path);
  }
  num_nodes_ = static_cast<NodeId>(header.num_nodes);
  num_edges_ = static_cast<EdgeId>(header.num_edges);
  num_pins_ = header.num_pins;

  const auto* base = static_cast<const char*>(map_);
  std::uint64_t off = sizeof(BinaryHeader);
  const auto section = [&](std::uint64_t bytes) -> const char* {
    const char* p = base + off;
    off += align8(bytes);
    return p;
  };
  edge_offsets_ = reinterpret_cast<const std::uint64_t*>(
      section((header.num_edges + 1) * sizeof(std::uint64_t)));
  pins_ = reinterpret_cast<const NodeId*>(
      section(num_pins_ * sizeof(NodeId)));
  node_offsets_ = reinterpret_cast<const std::uint64_t*>(
      section((header.num_nodes + 1) * sizeof(std::uint64_t)));
  incident_ = reinterpret_cast<const EdgeId*>(
      section(num_pins_ * sizeof(EdgeId)));
  if ((header.flags & kFlagNodeWeights) != 0) {
    node_weights_ = reinterpret_cast<const Weight*>(
        section(header.num_nodes * sizeof(Weight)));
  }
  if ((header.flags & kFlagEdgeWeights) != 0) {
    edge_weights_ = reinterpret_cast<const Weight*>(
        section(header.num_edges * sizeof(Weight)));
  }
  if (off > map_bytes_) {
    unmap();
    throw std::runtime_error(
        "MappedHypergraph: file shorter than its header claims: " + path);
  }
  HP_GAUGE_MAX("stream.bytes_mapped", static_cast<std::int64_t>(map_bytes_));
}

MappedHypergraph::~MappedHypergraph() { unmap(); }

MappedHypergraph::MappedHypergraph(MappedHypergraph&& other) noexcept {
  *this = std::move(other);
}

MappedHypergraph& MappedHypergraph::operator=(
    MappedHypergraph&& other) noexcept {
  if (this == &other) return *this;
  unmap();
  map_ = other.map_;
  map_bytes_ = other.map_bytes_;
  num_nodes_ = other.num_nodes_;
  num_edges_ = other.num_edges_;
  num_pins_ = other.num_pins_;
  edge_offsets_ = other.edge_offsets_;
  pins_ = other.pins_;
  node_offsets_ = other.node_offsets_;
  incident_ = other.incident_;
  node_weights_ = other.node_weights_;
  edge_weights_ = other.edge_weights_;
  total_node_weight_ = other.total_node_weight_;
  other.map_ = nullptr;
  other.map_bytes_ = 0;
  return *this;
}

void MappedHypergraph::unmap() noexcept {
  if (map_ != nullptr) {
    ::munmap(map_, map_bytes_);
    map_ = nullptr;
  }
}

Weight MappedHypergraph::total_node_weight() const noexcept {
  if (total_node_weight_ >= 0) return total_node_weight_;
  if (node_weights_ == nullptr) {
    total_node_weight_ = static_cast<Weight>(num_nodes_);
  } else {
    Weight total = 0;
    for (NodeId v = 0; v < num_nodes_; ++v) {
      total = sat_add(total, node_weights_[v]);
    }
    total_node_weight_ = total;
  }
  return total_node_weight_;
}

Hypergraph MappedHypergraph::materialize() const {
  std::vector<std::vector<NodeId>> edges(num_edges_);
  for (EdgeId e = 0; e < num_edges_; ++e) {
    const auto p = pins(e);
    edges[e].assign(p.begin(), p.end());
  }
  Hypergraph g = Hypergraph::from_edges(num_nodes_, std::move(edges));
  if (node_weights_ != nullptr) {
    g.set_node_weights({node_weights_, node_weights_ + num_nodes_});
  }
  if (edge_weights_ != nullptr) {
    g.set_edge_weights({edge_weights_, edge_weights_ + num_edges_});
  }
  return g;
}

bool MappedHypergraph::validate() const noexcept {
  if (edge_offsets_[0] != 0 || node_offsets_[0] != 0) return false;
  if (edge_offsets_[num_edges_] != num_pins_) return false;
  if (node_offsets_[num_nodes_] != num_pins_) return false;
  if (!std::is_sorted(edge_offsets_, edge_offsets_ + num_edges_ + 1)) {
    return false;
  }
  if (!std::is_sorted(node_offsets_, node_offsets_ + num_nodes_ + 1)) {
    return false;
  }
  for (std::uint64_t i = 0; i < num_pins_; ++i) {
    if (pins_[i] >= num_nodes_) return false;
    if (incident_[i] >= num_edges_) return false;
  }
  for (EdgeId e = 0; e < num_edges_; ++e) {
    const auto p = pins(e);
    for (std::size_t i = 1; i < p.size(); ++i) {
      if (p[i - 1] >= p[i]) return false;
    }
  }
  if (node_weights_ != nullptr) {
    for (NodeId v = 0; v < num_nodes_; ++v) {
      if (node_weights_[v] < 0) return false;
    }
  }
  if (edge_weights_ != nullptr) {
    for (EdgeId e = 0; e < num_edges_; ++e) {
      if (edge_weights_[e] < 0) return false;
    }
  }
  return true;
}

void MappedHypergraph::drop_resident_pages() const noexcept {
  if (map_ != nullptr) {
    ::madvise(map_, map_bytes_, MADV_DONTNEED);
  }
}

std::string MappedHypergraph::summary() const {
  std::ostringstream os;
  os << "MappedHypergraph(n=" << num_nodes_ << ", m=" << num_edges_
     << ", pins=" << num_pins_ << ", "
     << (map_bytes_ + (1 << 20) - 1) / (1 << 20) << " MiB mapped)";
  return os.str();
}

}  // namespace hp::stream
