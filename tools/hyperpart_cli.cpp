// Command-line partitioner for hMETIS files.
//
//   hyperpart_cli <graph.hgr> [--k K] [--eps E] [--metric cut|conn]
//                 [--algo multilevel|rb|greedy|random|bnb] [--seed S]
//                 [--hier B1xB2[:G1]] [--out partition.txt]
//
// Prints the cost under both metrics and the part weights; with --hier,
// also evaluates the hierarchical cost (Definition 7.1) after an optimal
// hierarchy assignment. With --out, writes one part id per line.

#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "hyperpart/algo/branch_and_bound.hpp"
#include "hyperpart/algo/greedy.hpp"
#include "hyperpart/algo/multilevel.hpp"
#include "hyperpart/algo/recursive_bisection.hpp"
#include "hyperpart/core/metrics.hpp"
#include "hyperpart/hier/two_step.hpp"
#include "hyperpart/io/hmetis_io.hpp"
#include "hyperpart/util/timer.hpp"

namespace {

[[noreturn]] void usage() {
  std::cerr
      << "usage: hyperpart_cli <graph.hgr> [--k K] [--eps E]\n"
         "         [--metric cut|conn] "
         "[--algo multilevel|rb|greedy|random|bnb]\n"
         "         [--seed S] [--hier B1xB2[:G1]] [--out partition.txt]\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string path = argv[1];
  hp::PartId k = 2;
  double eps = 0.05;
  hp::CostMetric metric = hp::CostMetric::kConnectivity;
  std::string algo = "multilevel";
  std::uint64_t seed = 1;
  std::optional<std::string> out_path;
  std::optional<hp::HierTopology> hier;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--k") {
      k = static_cast<hp::PartId>(std::stoul(value()));
    } else if (arg == "--eps") {
      eps = std::stod(value());
    } else if (arg == "--metric") {
      const std::string m = value();
      metric = m == "cut" ? hp::CostMetric::kCutNet
                          : hp::CostMetric::kConnectivity;
    } else if (arg == "--algo") {
      algo = value();
    } else if (arg == "--seed") {
      seed = std::stoull(value());
    } else if (arg == "--out") {
      out_path = value();
    } else if (arg == "--hier") {
      const std::string spec = value();
      const auto x = spec.find('x');
      if (x == std::string::npos) usage();
      const auto colon = spec.find(':');
      const auto b1 = static_cast<hp::PartId>(std::stoul(spec.substr(0, x)));
      const auto b2 = static_cast<hp::PartId>(
          std::stoul(spec.substr(x + 1, colon - x - 1)));
      const double g1 =
          colon == std::string::npos ? 4.0 : std::stod(spec.substr(colon + 1));
      hier = hp::HierTopology{{b1, b2}, {g1, 1.0}};
      k = b1 * b2;
    } else {
      usage();
    }
  }

  hp::Hypergraph graph;
  try {
    graph = hp::read_hmetis_file(path);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  std::cout << graph.summary() << "\n";

  const auto balance =
      hp::BalanceConstraint::for_graph(graph, k, eps, /*relaxed=*/true);
  hp::MultilevelConfig cfg;
  cfg.metric = metric;
  cfg.seed = seed;

  hp::Timer timer;
  std::optional<hp::Partition> partition;
  if (algo == "multilevel") {
    partition = hp::multilevel_partition(graph, balance, cfg);
  } else if (algo == "rb") {
    partition = hp::recursive_bisection(graph, k, eps, cfg);
  } else if (algo == "greedy") {
    partition = hp::greedy_growing_partition(graph, balance, metric, seed);
  } else if (algo == "random") {
    partition = hp::random_balanced_partition(graph, balance, seed);
  } else if (algo == "bnb") {
    hp::BnbOptions opts;
    opts.metric = metric;
    const auto res = hp::branch_and_bound_partition(graph, balance, opts);
    if (res) {
      partition = res->partition;
      std::cout << (res->proven_optimal ? "proven optimal"
                                        : "search budget exhausted")
                << " after " << res->nodes_explored << " nodes\n";
    }
  } else {
    usage();
  }
  const double ms = timer.millis();

  if (!partition) {
    std::cerr << "no feasible partition found\n";
    return 1;
  }
  std::cout << "algorithm        = " << algo << " (" << ms << " ms)\n";
  std::cout << "cut-net cost     = "
            << hp::cost(graph, *partition, hp::CostMetric::kCutNet) << "\n";
  std::cout << "connectivity     = "
            << hp::cost(graph, *partition, hp::CostMetric::kConnectivity)
            << "\n";
  std::cout << "part weights     =";
  for (const hp::Weight w : partition->part_weights(graph)) {
    std::cout << ' ' << w;
  }
  std::cout << "\nbalanced         = "
            << (balance.satisfied(graph, *partition) ? "yes" : "no") << "\n";

  if (hier) {
    const hp::TwoStepResult assigned =
        hp::assign_optimally(graph, *partition, *hier);
    std::cout << "hierarchical cost (after optimal assignment) = "
              << assigned.hierarchical_cost << "\n";
  }
  if (out_path) {
    std::ofstream out(*out_path);
    for (hp::NodeId v = 0; v < graph.num_nodes(); ++v) {
      out << (*partition)[v] << '\n';
    }
    std::cout << "partition written to " << *out_path << "\n";
  }
  return 0;
}
