// Command-line partitioner for hMETIS and binary (.hpb) hypergraph files,
// and for generated catalogue workloads.
//
//   hyperpart_cli <graph.hgr|graph.hpb> [options]
//   hyperpart_cli --workload fam:preset[@scale] [--workload-nodes N]
//                 [options]
//   options: [--k K] [--eps E] [--metric cut|conn]
//            [--algo multilevel|rb|greedy|random|bnb|stream] [--seed S]
//            [--threads T] [--restream N] [--buffer B]
//            [--hier B1xB2[:G1]] [--out partition.txt]
//            [--convert out.hpb] [--write-hgr out.hgr]
//
// The input format is sniffed from the file's magic bytes, so .hpb files
// produced by --convert load zero-copy via mmap regardless of extension.
// `--workload` generates an application-shaped instance from the seeded
// catalogue (src/workload) instead of reading a file; `--seed` doubles as
// the generator seed, `--workload-nodes` overrides the preset's size, and
// `--write-hgr` dumps the instance as hMETIS text and exits (how the fuzz
// seed corpus instances were produced). An unknown family or preset is a
// usage error: one-line `error:` + usage, exit 2.
// `--algo stream` runs the one-pass streaming placer over the binary file
// (an hMETIS input is first converted to `<input>.hpb`; a workload is
// written to a temporary .hpb); `--restream N` follows it with N buffered
// re-streaming refinement passes. Prints the cost under both metrics and
// the part weights; with --hier, also evaluates the hierarchical cost
// (Definition 7.1) after an optimal hierarchy assignment. With --out,
// writes one part id per line.

#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <optional>
#include <string>

#include "hyperpart/algo/branch_and_bound.hpp"
#include "hyperpart/algo/greedy.hpp"
#include "hyperpart/algo/multilevel.hpp"
#include "hyperpart/algo/recursive_bisection.hpp"
#include "hyperpart/core/metrics.hpp"
#include "hyperpart/hier/two_step.hpp"
#include "hyperpart/io/hmetis_io.hpp"
#include "hyperpart/obs/telemetry.hpp"
#include "hyperpart/stream/binary_format.hpp"
#include "hyperpart/stream/restream_refiner.hpp"
#include "hyperpart/stream/stream_partitioner.hpp"
#include "hyperpart/util/overflow.hpp"
#include "hyperpart/util/parse.hpp"
#include "hyperpart/util/timer.hpp"
#include "hyperpart/workload/workload.hpp"

namespace {

[[noreturn]] void usage() {
  std::cerr
      << "usage: hyperpart_cli <graph.hgr|graph.hpb> [--k K] [--eps E]\n"
         "         [--metric cut|conn] "
         "[--algo multilevel|rb|greedy|random|bnb|stream]\n"
         "         [--seed S] [--threads T] [--restream N] [--buffer B]\n"
         "         [--hier B1xB2[:G1]] [--out partition.txt] "
         "[--convert out.hpb]\n"
         "         [--write-hgr out.hgr] [--telemetry t.json]\n"
         "       hyperpart_cli --workload fam:preset[@scale] "
         "[--workload-nodes N] [options]\n"
         "workloads: spmv:{banded,blockdiag,rmat} netlist:{rent,flat}\n"
         "           dataflow:{mlp,conv,attention} powerlaw:{zipf,hubs_last}\n";
  std::exit(2);
}

/// Checked flag parsing: one-line diagnostic + usage (exit 2) instead of an
/// uncaught std::invalid_argument from bare std::stoul.
[[noreturn]] void bad_flag(const std::string& flag, const std::string& token,
                           const char* expected) {
  std::cerr << "error: invalid value '" << token << "' for " << flag << " ("
            << expected << ")\n";
  usage();
}

std::uint64_t flag_u64(const std::string& flag, const std::string& token,
                       std::uint64_t min_value, std::uint64_t max_value,
                       const char* expected) {
  const auto v = hp::parse_u64(token, min_value, max_value);
  if (!v) bad_flag(flag, token, expected);
  return *v;
}

double flag_f64(const std::string& flag, const std::string& token,
                double min_value, double max_value, const char* expected) {
  const auto v = hp::parse_f64(token, min_value, max_value);
  if (!v) bad_flag(flag, token, expected);
  return *v;
}

/// Writes the telemetry session to `path` on scope exit (normal returns of
/// main and run_stream both pass through it).
struct TelemetryFlush {
  std::string path;
  ~TelemetryFlush() {
    if (path.empty()) return;
    if (hp::obs::write_json(path)) {
      std::cout << "telemetry written to " << path << "\n";
    } else {
      std::cerr << "error: cannot write telemetry to " << path << "\n";
    }
  }
};

void write_partition(const std::string& out_path, const hp::Partition& p,
                     hp::NodeId n) {
  std::ofstream out(out_path);
  for (hp::NodeId v = 0; v < n; ++v) out << p[v] << '\n';
  std::cout << "partition written to " << out_path << "\n";
}

/// Streaming pipeline: map the binary file (converting hMETIS first if
/// needed), one-pass place, optionally re-stream, report.
int run_stream(const std::string& path, hp::PartId k, double eps,
               hp::CostMetric metric, std::uint64_t seed, hp::NodeId buffer,
               int restream_passes,
               const std::optional<std::string>& out_path) {
  std::string bin_path = path;
  if (!hp::stream::is_binary_file(path)) {
    bin_path = path + ".hpb";
    try {
      hp::stream::convert_hmetis_file(path, bin_path);
    } catch (const std::exception& e) {
      // A usage error, not a runtime failure: the input is neither of the
      // two formats --algo stream accepts. Diagnose here instead of letting
      // the mmap reader fail later on a half-written conversion.
      std::cerr << "error: --algo stream needs a binary .hpb or hMETIS text "
                   "input; "
                << path << " is neither (" << e.what() << ")\n";
      usage();
    }
    std::cout << "converted " << path << " -> " << bin_path << "\n";
  }
  hp::stream::MappedHypergraph mapped(bin_path);
  std::cout << mapped.summary() << "\n";

  const auto balance = hp::BalanceConstraint::for_total_weight(
      mapped.total_node_weight(), k, eps, /*relaxed=*/true);

  hp::stream::StreamConfig scfg;
  scfg.metric = metric;
  scfg.seed = seed;
  if (buffer > 0) scfg.buffer_size = buffer;

  hp::Timer timer;
  auto streamed = hp::stream::stream_partition(mapped, balance, scfg);
  if (!streamed) {
    std::cerr << "no feasible partition found\n";
    return 1;
  }
  std::cout << "one-pass cost    = " << streamed->offline_cost << "\n";
  if (restream_passes > 0) {
    hp::stream::RestreamConfig rcfg;
    rcfg.metric = metric;
    rcfg.max_passes = restream_passes;
    const auto refined =
        hp::stream::restream_refine(mapped, streamed->partition, balance, rcfg);
    std::cout << "re-stream        = " << refined.passes_run << " passes, "
              << refined.moves_applied << "/" << refined.moves_proposed
              << " moves applied\n";
  }
  const double ms = timer.millis();

  const hp::Partition& partition = streamed->partition;
  std::cout << "algorithm        = stream";
  if (restream_passes > 0) std::cout << "+restream(" << restream_passes << ")";
  std::cout << " (" << ms << " ms)\n";
  std::cout << "cut-net cost     = "
            << hp::cost_of(mapped, partition, hp::CostMetric::kCutNet) << "\n";
  std::cout << "connectivity     = "
            << hp::cost_of(mapped, partition, hp::CostMetric::kConnectivity)
            << "\n";
  std::vector<hp::Weight> pw(k, 0);
  for (hp::NodeId v = 0; v < mapped.num_nodes(); ++v) {
    pw[partition[v]] = hp::sat_add(pw[partition[v]], mapped.node_weight(v));
  }
  std::cout << "part weights     =";
  for (const hp::Weight w : pw) std::cout << ' ' << w;
  std::cout << "\nbalanced         = "
            << (balance.satisfied(pw) ? "yes" : "no") << "\n";
  if (out_path) write_partition(*out_path, partition, mapped.num_nodes());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  std::optional<std::string> path;
  std::optional<std::string> workload_text;
  hp::NodeId workload_nodes = 0;
  std::optional<std::string> write_hgr_path;
  hp::PartId k = 2;
  bool k_set = false;
  double eps = 0.05;
  bool eps_set = false;
  hp::CostMetric metric = hp::CostMetric::kConnectivity;
  std::string algo = "multilevel";
  std::uint64_t seed = 1;
  unsigned threads = 1;
  int restream_passes = 0;
  hp::NodeId buffer = 0;
  std::optional<std::string> out_path;
  std::optional<std::string> convert_path;
  std::optional<hp::HierTopology> hier;
  TelemetryFlush telemetry;

  constexpr std::uint64_t kMaxPart = std::numeric_limits<hp::PartId>::max();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "error: " << arg << " expects a value\n";
        usage();
      }
      return argv[++i];
    };
    if (arg.rfind("--", 0) != 0) {
      if (path) {
        std::cerr << "error: more than one input file ('" << *path << "', '"
                  << arg << "')\n";
        usage();
      }
      path = arg;
    } else if (arg == "--workload") {
      workload_text = value();
    } else if (arg == "--workload-nodes") {
      workload_nodes = static_cast<hp::NodeId>(
          flag_u64(arg, value(), 1, kMaxPart, "integer >= 1"));
    } else if (arg == "--write-hgr") {
      write_hgr_path = value();
    } else if (arg == "--k") {
      k = static_cast<hp::PartId>(
          flag_u64(arg, value(), 2, kMaxPart, "integer >= 2"));
      k_set = true;
    } else if (arg == "--eps") {
      eps = flag_f64(arg, value(), 0.0, 1e9, "finite number >= 0");
      eps_set = true;
    } else if (arg == "--metric") {
      const std::string m = value();
      if (m == "cut") {
        metric = hp::CostMetric::kCutNet;
      } else if (m == "conn") {
        metric = hp::CostMetric::kConnectivity;
      } else {
        bad_flag(arg, m, "cut or conn");
      }
    } else if (arg == "--algo") {
      algo = value();
    } else if (arg == "--seed") {
      seed = flag_u64(arg, value(), 0, UINT64_MAX, "unsigned integer");
    } else if (arg == "--threads") {
      // 0 = hardware concurrency. The partition is identical for every
      // thread count (deterministic parallel engine); threads only change
      // wall-clock time.
      threads = static_cast<unsigned>(
          flag_u64(arg, value(), 0, 1024, "integer in [0, 1024]"));
    } else if (arg == "--restream") {
      restream_passes = static_cast<int>(
          flag_u64(arg, value(), 0, INT32_MAX, "integer >= 0"));
    } else if (arg == "--buffer") {
      buffer = static_cast<hp::NodeId>(
          flag_u64(arg, value(), 1, kMaxPart, "integer >= 1"));
    } else if (arg == "--out") {
      out_path = value();
    } else if (arg == "--convert") {
      convert_path = value();
    } else if (arg == "--telemetry") {
      telemetry.path = value();
    } else if (arg == "--hier") {
      const std::string spec = value();
      const auto x = spec.find('x');
      if (x == std::string::npos) {
        bad_flag(arg, spec, "B1xB2[:G1], e.g. 4x2:4");
      }
      const auto colon = spec.find(':');
      const std::uint64_t b1 = flag_u64(arg, spec.substr(0, x), 1, kMaxPart,
                                        "B1 must be an integer >= 1");
      const std::uint64_t b2 =
          flag_u64(arg, spec.substr(x + 1, colon - x - 1), 1, kMaxPart,
                   "B2 must be an integer >= 1");
      const double g1 = colon == std::string::npos
                            ? 4.0
                            : flag_f64(arg, spec.substr(colon + 1), 0.0, 1e9,
                                       "G1 must be a finite number >= 0");
      if (b1 * b2 < 2 || b1 * b2 > kMaxPart) {
        bad_flag(arg, spec, "B1*B2 must be in [2, 2^32)");
      }
      hier = hp::HierTopology{{static_cast<hp::PartId>(b1),
                               static_cast<hp::PartId>(b2)},
                              {g1, 1.0}};
      k = static_cast<hp::PartId>(b1 * b2);
    } else {
      std::cerr << "error: unknown flag '" << arg << "'\n";
      usage();
    }
  }
  if (path && workload_text) {
    std::cerr << "error: give either an input file or --workload, not both\n";
    usage();
  }
  if (!path && !workload_text) {
    std::cerr << "error: no input file and no --workload\n";
    usage();
  }
  if (!telemetry.path.empty()) {
    hp::obs::reset();
    hp::obs::set_enabled(true);
  }

  // Generate the workload up front: its suggested (k, ε) become the
  // defaults, and every downstream mode (partition, stream, convert,
  // write-hgr) consumes the same graph.
  std::optional<hp::workload::Workload> workload;
  if (workload_text) {
    try {
      auto spec = hp::workload::parse_spec(*workload_text);
      spec.seed = seed;
      spec.threads = threads;
      if (workload_nodes > 0) spec.target_nodes = workload_nodes;
      workload = hp::workload::generate(spec);
    } catch (const std::invalid_argument& e) {
      std::cerr << "error: " << e.what() << "\n";
      usage();
    }
    if (!k_set) k = workload->suggested_k;
    if (!eps_set) eps = workload->suggested_eps;
    std::cout << "workload         = " << workload->name << "\n";
  }

  if (write_hgr_path) {
    try {
      const hp::Hypergraph g =
          workload ? std::move(workload->graph)
          : hp::stream::is_binary_file(*path)
              ? hp::stream::MappedHypergraph(*path).materialize()
              : hp::read_hmetis_file(*path);
      hp::write_hmetis_file(*write_hgr_path, g);
      std::cout << g.summary() << "\n"
                << "hgr written to " << *write_hgr_path << "\n";
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 1;
    }
    return 0;
  }

  if (convert_path) {
    try {
      if (workload) {
        hp::stream::write_binary_file(*convert_path, workload->graph);
      } else {
        if (hp::stream::is_binary_file(*path)) {
          std::cerr << "error: " << *path << " is already binary\n";
          return 1;
        }
        hp::stream::convert_hmetis_file(*path, *convert_path);
      }
      const hp::stream::MappedHypergraph mapped(*convert_path);
      std::cout << mapped.summary() << "\n"
                << "binary written to " << *convert_path << "\n";
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 1;
    }
    return 0;
  }

  if (algo == "stream") {
    try {
      std::string stream_path;
      if (workload) {
        stream_path = (std::filesystem::temp_directory_path() /
                       ("hyperpart_cli_" + std::to_string(getpid()) + ".hpb"))
                          .string();
        hp::stream::write_binary_file(stream_path, workload->graph);
        std::cout << "workload written to " << stream_path << "\n";
      } else {
        stream_path = *path;
      }
      return run_stream(stream_path, k, eps, metric, seed, buffer,
                        restream_passes, out_path);
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 1;
    }
  }

  hp::Hypergraph graph;
  try {
    graph = workload ? std::move(workload->graph)
            : hp::stream::is_binary_file(*path)
                ? hp::stream::MappedHypergraph(*path).materialize()
                : hp::read_hmetis_file(*path);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  std::cout << graph.summary() << "\n";

  const auto balance =
      hp::BalanceConstraint::for_graph(graph, k, eps, /*relaxed=*/true);
  hp::MultilevelConfig cfg;
  cfg.metric = metric;
  cfg.seed = seed;
  cfg.fm.threads = threads;

  hp::Timer timer;
  std::optional<hp::Partition> partition;
  if (algo == "multilevel") {
    partition = hp::multilevel_partition(graph, balance, cfg);
  } else if (algo == "rb") {
    partition = hp::recursive_bisection(graph, k, eps, cfg);
  } else if (algo == "greedy") {
    partition = hp::greedy_growing_partition(graph, balance, metric, seed);
  } else if (algo == "random") {
    partition = hp::random_balanced_partition(graph, balance, seed);
  } else if (algo == "bnb") {
    hp::BnbOptions opts;
    opts.metric = metric;
    const auto res = hp::branch_and_bound_partition(graph, balance, opts);
    if (res) {
      partition = res->partition;
      std::cout << (res->proven_optimal ? "proven optimal"
                                        : "search budget exhausted")
                << " after " << res->nodes_explored << " nodes\n";
    }
  } else {
    std::cerr << "error: unknown algorithm '" << algo << "'\n";
    usage();
  }
  const double ms = timer.millis();

  if (!partition) {
    std::cerr << "no feasible partition found\n";
    return 1;
  }
  std::cout << "algorithm        = " << algo << " (" << ms << " ms)\n";
  std::cout << "cut-net cost     = "
            << hp::cost(graph, *partition, hp::CostMetric::kCutNet) << "\n";
  std::cout << "connectivity     = "
            << hp::cost(graph, *partition, hp::CostMetric::kConnectivity)
            << "\n";
  std::cout << "part weights     =";
  for (const hp::Weight w : partition->part_weights(graph)) {
    std::cout << ' ' << w;
  }
  std::cout << "\nbalanced         = "
            << (balance.satisfied(graph, *partition) ? "yes" : "no") << "\n";

  if (hier) {
    const hp::TwoStepResult assigned =
        hp::assign_optimally(graph, *partition, *hier);
    std::cout << "hierarchical cost (after optimal assignment) = "
              << assigned.hierarchical_cost << "\n";
  }
  if (out_path) write_partition(*out_path, *partition, graph.num_nodes());
  return 0;
}
