// hyperpartd — partitioning-as-a-service daemon.
//
//   hyperpartd --socket /path/to.sock [--tcp PORT] [--threads T]
//              [--telemetry t.json]
//
// Listens on the unix socket (and optionally loopback TCP; PORT 0 picks an
// ephemeral port printed on stdout) speaking the HPF1 length-prefixed JSON
// protocol (see DESIGN.md "Partitioning service"). Graphs are loaded once
// per path and kept resident with their partitioning caches — hierarchies
// and connectivity trackers — so repartition requests after small updates
// run the incremental ΔFM ladder instead of full multilevel runs. Stops
// gracefully on SIGINT/SIGTERM or a client shutdown op, draining in-flight
// requests. Prints "ready" once accepting; test drivers wait for it.

#include <signal.h>

#include <chrono>
#include <csignal>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>

#include "hyperpart/obs/telemetry.hpp"
#include "hyperpart/server/server.hpp"
#include "hyperpart/util/parse.hpp"

namespace {

[[noreturn]] void usage() {
  std::cerr << "usage: hyperpartd --socket /path/to.sock [--tcp PORT]\n"
               "         [--threads T] [--telemetry t.json]\n";
  std::exit(2);
}

[[noreturn]] void bad_flag(const std::string& flag, const std::string& token,
                           const char* expected) {
  std::cerr << "error: invalid value '" << token << "' for " << flag << " ("
            << expected << ")\n";
  usage();
}

volatile std::sig_atomic_t g_signal = 0;

void on_signal(int sig) { g_signal = sig; }

}  // namespace

int main(int argc, char** argv) {
  hp::server::ServerConfig cfg;
  std::string telemetry_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "error: " << arg << " expects a value\n";
        usage();
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      cfg.unix_socket = value();
    } else if (arg == "--tcp") {
      const auto v = hp::parse_u64(value(), 0, 65535);
      if (!v) bad_flag(arg, argv[i], "port in [0, 65535]");
      cfg.tcp_port = static_cast<int>(*v);
    } else if (arg == "--threads") {
      const auto v = hp::parse_u64(value(), 0, 1024);
      if (!v) bad_flag(arg, argv[i], "integer in [0, 1024]");
      cfg.threads = static_cast<unsigned>(*v);
    } else if (arg == "--telemetry") {
      telemetry_path = value();
    } else {
      std::cerr << "error: unknown flag '" << arg << "'\n";
      usage();
    }
  }
  if (cfg.unix_socket.empty()) {
    std::cerr << "error: --socket is required\n";
    usage();
  }
  if (!telemetry_path.empty()) {
    hp::obs::reset();
    hp::obs::set_enabled(true);
  }

  hp::server::Server server(std::move(cfg));
  try {
    server.start();
  } catch (const hp::server::SocketPathError& e) {
    // A mistyped --socket pointing at a real file must never delete it;
    // exit 2 distinguishes operator error from transient bind failures.
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  std::cout << "listening on " << server.unix_path() << "\n";
  if (server.tcp_port() >= 0) {
    std::cout << "tcp port " << server.tcp_port() << "\n";
  }
  // Handlers must be live before "ready" is announced — a driver that sees
  // the banner may signal immediately, and a default-action SIGTERM in that
  // window would kill the daemon instead of draining it.
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::cout << "ready" << std::endl;  // flushed: drivers block on this line

  while (server.running() && g_signal == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.shutdown();
  server.wait();
  std::cout << "served " << server.requests_served() << " requests\n";
  if (!telemetry_path.empty()) {
    if (hp::obs::write_json(telemetry_path)) {
      std::cout << "telemetry written to " << telemetry_path << "\n";
    } else {
      std::cerr << "error: cannot write telemetry to " << telemetry_path
                << "\n";
    }
  }
  return 0;
}
