// hyperexp — the experiment orchestrator.
//
// Discovers every harness bench (bench_* executables speaking the
// bench_util protocol), expands each into its registered cases via
// `--list`, and runs every (bench, case) pair as an isolated subprocess
// job: own process group, stdout/stderr captured to a per-job log, a
// wall-clock timeout enforced by SIGKILL on the whole group, and bounded
// kill-and-retry on timeout or crash (a clean nonzero exit is a definitive
// case failure and is not retried). Jobs are scheduled onto the repo's
// persistent thread pool; each finished job writes a checkpoint
// (<id>.done.json) so a rerun with the same output directory resumes and
// re-executes nothing that already completed.
//
// Afterwards the per-job JSON reports merge into one schema-versioned
// document (BENCH_theorems.json by default) containing every bench row,
// the per-case verdict rows, and one per-job status row — the file the CI
// theorem gate diffs against its committed baseline with hyperbench_diff.
// `--emit-table` additionally regenerates the paper-vs-measured status
// table in EXPERIMENTS.md between the hyperexp markers.
//
// Usage: hyperexp [options]
//   --bench-dir DIR   directory to scan for bench_* executables
//                     (default: <exe dir>/../bench)
//   --out DIR         output/checkpoint directory (default: hyperexp-out)
//   --merged PATH     merged report path (default: <out>/BENCH_theorems.json)
//   --smoke           pass --smoke to every bench case
//   --telemetry       capture per-job telemetry (<id>.telemetry.json)
//   --jobs N          concurrent jobs (default: hardware threads)
//   --timeout SEC     per-attempt wall-clock timeout (default: 900)
//   --retries N       extra attempts after a timeout/crash (default: 2)
//   --bench NAME      run only this bench (repeatable; with or without
//                     the bench_ prefix)
//   --list            print the discovered jobs and exit
//   --emit-table FILE rewrite the status table between the
//                     "<!-- hyperexp:begin -->" / "<!-- hyperexp:end -->"
//                     markers in FILE from the merged report
//
// Exit codes: 0 all jobs passed, 1 at least one job failed, 2 usage or
// I/O error.

#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "hyperpart/obs/json.hpp"
#include "hyperpart/util/subprocess.hpp"
#include "hyperpart/util/thread_pool.hpp"
#include "hyperpart/util/timer.hpp"

namespace fs = std::filesystem;
namespace json = hp::obs::json;

namespace {

constexpr const char* kReportSchema = "hyperpart-bench-report";
constexpr int kReportSchemaVersion = 1;
constexpr const char* kTableBegin = "<!-- hyperexp:begin -->";
constexpr const char* kTableEnd = "<!-- hyperexp:end -->";

struct Options {
  std::string bench_dir;
  std::string out_dir = "hyperexp-out";
  std::string merged_path;  // default <out>/BENCH_theorems.json
  bool smoke = false;
  bool telemetry = false;
  bool list_only = false;
  unsigned jobs = hp::default_threads();
  double timeout_sec = 900.0;
  int retries = 2;
  std::vector<std::string> bench_filter;
  std::string emit_table;
};

[[noreturn]] void usage(int code) {
  std::cerr
      << "usage: hyperexp [--bench-dir DIR] [--out DIR] [--merged PATH]\n"
         "                [--smoke] [--telemetry] [--jobs N] [--timeout "
         "SEC]\n"
         "                [--retries N] [--bench NAME]... [--list]\n"
         "                [--emit-table FILE]\n";
  std::exit(code);
}

/// A single schedulable unit: one registered case of one bench binary.
struct Job {
  std::string bench;  // bench name without the bench_ prefix
  std::string kase;   // registered case name
  std::string claim;  // one-line paper claim from --list
  fs::path exe;       // bench executable

  [[nodiscard]] std::string id() const { return bench + "." + kase; }
};

/// Outcome of one job after its attempt loop (or loaded from checkpoint).
struct JobResult {
  Job job;
  int attempts = 0;
  int timeouts = 0;
  int exit_code = -1;  // last attempt's exit code; -1 = killed by signal
  bool failed = true;
  bool resumed = false;  // true when loaded from a checkpoint
  double wall_ms = 0.0;  // last attempt's wall time
  std::vector<std::string> failure_log;  // one line per failed attempt
};

std::mutex g_print_mutex;

void say(const std::string& line) {
  const std::lock_guard<std::mutex> lock(g_print_mutex);
  std::cout << line << "\n";
}

fs::path self_exe_dir() {
  std::error_code ec;
  const fs::path p = fs::read_symlink("/proc/self/exe", ec);
  if (ec) return fs::current_path();
  return p.parent_path();
}

/// Run `exe args...` capturing stdout, with a hard timeout. Used for the
/// cheap discovery calls (--list), not for jobs.
std::optional<std::string> run_capture(const fs::path& exe,
                                       const std::vector<std::string>& args,
                                       double timeout_sec) {
  return hp::subprocess::run_capture(exe.string(), args, timeout_sec);
}

/// Scan bench_dir for bench_* executables and expand each into its cases.
std::vector<Job> discover_jobs(const Options& opt, const fs::path& bench_dir) {
  std::vector<Job> jobs;
  std::vector<fs::path> exes;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(bench_dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind("bench_", 0) != 0) continue;
    if (name.find('.') != std::string::npos) continue;  // skip foo.json etc.
    if (access(entry.path().c_str(), X_OK) != 0) continue;
    exes.push_back(entry.path());
  }
  if (ec) {
    std::cerr << "error: cannot scan bench dir " << bench_dir << ": "
              << ec.message() << "\n";
    std::exit(2);
  }
  std::sort(exes.begin(), exes.end());

  for (const fs::path& exe : exes) {
    const std::string file = exe.filename().string();
    const std::string bench = file.substr(std::strlen("bench_"));
    if (!opt.bench_filter.empty()) {
      const bool wanted =
          std::any_of(opt.bench_filter.begin(), opt.bench_filter.end(),
                      [&](const std::string& f) {
                        return f == bench || f == file;
                      });
      if (!wanted) continue;
    }
    const auto listing = run_capture(exe, {"--list"}, 60.0);
    if (!listing) {
      std::cerr << "error: " << file << " does not answer --list "
                << "(not a harness bench?)\n";
      std::exit(2);
    }
    std::istringstream lines(*listing);
    std::string line;
    while (std::getline(lines, line)) {
      if (line.empty()) continue;
      const auto tab = line.find('\t');
      Job job;
      job.bench = bench;
      job.kase = line.substr(0, tab);
      job.claim = tab == std::string::npos ? "" : line.substr(tab + 1);
      job.exe = exe;
      jobs.push_back(std::move(job));
    }
  }
  return jobs;
}

/// One attempt: fork the bench into its own process group with output
/// redirected to log_path, enforce the timeout by killing the group.
/// Returns {exit_code or -1 if signaled, timed_out}.
struct Attempt {
  int exit_code = -1;
  bool timed_out = false;
  int term_signal = 0;
  double wall_ms = 0.0;
};

Attempt run_attempt(const Job& job, const Options& opt,
                    const fs::path& out_dir, const fs::path& json_path,
                    const fs::path& log_path) {
  Attempt att;
  hp::Timer timer;
  // Own process group (so a timeout SIGKILL reaches grandchildren, e.g.
  // bench_stream_scaling's --child forks), logs instead of the parent's
  // stdout, scratch files under the output directory.
  hp::subprocess::SpawnOptions sp;
  sp.stdout_to_file = log_path.string();
  sp.chdir_to = out_dir.string();
  std::vector<std::string> args{"--case", job.kase, "--json",
                                json_path.string()};
  if (opt.smoke) args.emplace_back("--smoke");
  if (opt.telemetry) {
    args.emplace_back("--telemetry");
    args.push_back((out_dir / (job.id() + ".telemetry.json")).string());
  }
  const hp::subprocess::ExitStatus st =
      hp::subprocess::run(job.exe.string(), args, sp, opt.timeout_sec);
  att.wall_ms = timer.millis();
  att.exit_code = st.exit_code;
  att.term_signal = st.term_signal;
  att.timed_out = st.timed_out;
  return att;
}

json::Value job_checkpoint(const JobResult& r) {
  json::Object doc;
  doc.emplace_back("schema", std::string("hyperexp-job"));
  doc.emplace_back("version", 1);
  doc.emplace_back("bench", r.job.bench);
  doc.emplace_back("case", r.job.kase);
  doc.emplace_back("claim", r.job.claim);
  doc.emplace_back("attempts", r.attempts);
  doc.emplace_back("timeouts", r.timeouts);
  doc.emplace_back("exit_code", r.exit_code);
  doc.emplace_back("failed", r.failed);
  doc.emplace_back("wall_ms", r.wall_ms);
  if (!r.failure_log.empty()) {
    json::Array log;
    for (const std::string& line : r.failure_log) {
      log.push_back(json::Value(line));
    }
    doc.emplace_back("failure_log", std::move(log));
  }
  return json::Value(std::move(doc));
}

/// Execute one job's attempt loop: retry on timeout or crash (signal),
/// never on a clean nonzero exit — a failed check is deterministic.
JobResult run_job(const Job& job, const Options& opt,
                  const fs::path& out_dir) {
  JobResult r;
  r.job = job;
  const fs::path json_path = out_dir / (job.id() + ".json");
  const fs::path log_path = out_dir / (job.id() + ".log");

  const int max_attempts = 1 + std::max(0, opt.retries);
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    ++r.attempts;
    const Attempt att = run_attempt(job, opt, out_dir, json_path, log_path);
    r.exit_code = att.exit_code;
    r.wall_ms = att.wall_ms;
    if (att.timed_out) {
      ++r.timeouts;
      r.failure_log.push_back(
          "attempt " + std::to_string(attempt) + ": timed out after " +
          std::to_string(opt.timeout_sec) + "s, process group killed");
      say("  " + job.id() + ": TIMEOUT (attempt " + std::to_string(attempt) +
          "/" + std::to_string(max_attempts) + ")");
      continue;  // retry
    }
    if (att.exit_code == -1) {
      r.failure_log.push_back("attempt " + std::to_string(attempt) +
                              ": killed by signal " +
                              std::to_string(att.term_signal));
      say("  " + job.id() + ": CRASH signal " +
          std::to_string(att.term_signal) + " (attempt " +
          std::to_string(attempt) + "/" + std::to_string(max_attempts) + ")");
      continue;  // retry
    }
    if (att.exit_code == 0) {
      // Success also requires a parseable JSON report.
      try {
        (void)json::parse_file(json_path.string());
        r.failed = false;
      } catch (const std::exception& e) {
        r.failure_log.push_back("attempt " + std::to_string(attempt) +
                                ": exit 0 but unreadable report: " +
                                e.what());
        continue;  // retry — the kill may have left a torn file behind
      }
      break;
    }
    // Clean nonzero exit: the case genuinely failed (or usage error).
    r.failure_log.push_back("attempt " + std::to_string(attempt) +
                            ": exited " + std::to_string(att.exit_code) +
                            " (case failure; not retried)");
    break;
  }

  if (r.failed) {
    std::ofstream fail(out_dir / (job.id() + ".fail.log"));
    for (const std::string& line : r.failure_log) fail << line << "\n";
    fail << "see " << log_path.filename().string()
         << " for the captured output\n";
  }

  std::ofstream done(out_dir / (job.id() + ".done.json"));
  done << json::dump(job_checkpoint(r));
  return r;
}

std::optional<JobResult> load_checkpoint(const Job& job,
                                         const fs::path& out_dir) {
  const fs::path done_path = out_dir / (job.id() + ".done.json");
  std::error_code ec;
  if (!fs::exists(done_path, ec)) return std::nullopt;
  try {
    const json::Value doc = json::parse_file(done_path.string());
    JobResult r;
    r.job = job;
    r.resumed = true;
    if (const auto* v = doc.find("attempts")) {
      r.attempts = static_cast<int>(v->as_int());
    }
    if (const auto* v = doc.find("timeouts")) {
      r.timeouts = static_cast<int>(v->as_int());
    }
    if (const auto* v = doc.find("exit_code")) {
      r.exit_code = static_cast<int>(v->as_int());
    }
    if (const auto* v = doc.find("failed")) r.failed = v->as_bool();
    if (const auto* v = doc.find("wall_ms")) r.wall_ms = v->as_double();
    if (const auto* v = doc.find("failure_log"); v && v->is_array()) {
      for (const json::Value& line : v->as_array()) {
        r.failure_log.push_back(line.as_string());
      }
    }
    // A successful checkpoint must still have its report on disk.
    if (!r.failed && !fs::exists(out_dir / (job.id() + ".json"), ec)) {
      return std::nullopt;
    }
    return r;
  } catch (const std::exception&) {
    return std::nullopt;  // torn checkpoint: re-run the job
  }
}

/// Merge every per-job report into the single gated document.
json::Value merge_reports(const std::vector<JobResult>& results,
                          const Options& opt, const fs::path& out_dir) {
  json::Array rows;
  json::Array job_docs;
  json::Array telemetry_files;
  std::uint64_t failed = 0;
  for (const JobResult& r : results) {
    if (r.failed) ++failed;
    // Rows from the bench's own report (verdict rows included).
    if (!r.failed) {
      try {
        const json::Value doc =
            json::parse_file((out_dir / (r.job.id() + ".json")).string());
        if (const auto* doc_rows = doc.find("rows");
            doc_rows && doc_rows->is_array()) {
          for (const json::Value& row : doc_rows->as_array()) {
            rows.push_back(row);
          }
        }
      } catch (const std::exception& e) {
        std::cerr << "warning: unreadable report for " << r.job.id() << ": "
                  << e.what() << "\n";
      }
    }
    // Per-job status row: joins baselines on (bench, case, i="job"); the
    // "failed" field is the machine gate for jobs that never produced a
    // verdict row (timeout / crash after retries).
    json::Object status;
    status.emplace_back("bench", r.job.bench);
    status.emplace_back("case", r.job.kase);
    status.emplace_back("i", std::string("job"));
    status.emplace_back("attempts", r.attempts);
    status.emplace_back("timeouts", r.timeouts);
    status.emplace_back("failed", r.failed ? 1 : 0);
    status.emplace_back("exit_code", r.exit_code);
    status.emplace_back("wall_ms", r.wall_ms);
    rows.push_back(json::Value(std::move(status)));

    json::Object jd;
    jd.emplace_back("bench", r.job.bench);
    jd.emplace_back("case", r.job.kase);
    jd.emplace_back("claim", r.job.claim);
    jd.emplace_back("pass", !r.failed);
    jd.emplace_back("attempts", r.attempts);
    jd.emplace_back("timeouts", r.timeouts);
    jd.emplace_back("resumed", r.resumed);
    jd.emplace_back("wall_ms", r.wall_ms);
    if (!r.failure_log.empty()) {
      json::Array log;
      for (const std::string& line : r.failure_log) {
        log.push_back(json::Value(line));
      }
      jd.emplace_back("failure_log", std::move(log));
    }
    job_docs.push_back(json::Value(std::move(jd)));

    const fs::path tel = out_dir / (r.job.id() + ".telemetry.json");
    std::error_code ec;
    if (opt.telemetry && fs::exists(tel, ec)) {
      telemetry_files.push_back(json::Value(tel.filename().string()));
    }
  }

  json::Object doc;
  doc.emplace_back("schema", std::string(kReportSchema));
  doc.emplace_back("version", kReportSchemaVersion);
  doc.emplace_back("bench", std::string("theorems"));
  doc.emplace_back("smoke", opt.smoke);
  doc.emplace_back("total_jobs", static_cast<std::int64_t>(results.size()));
  doc.emplace_back("failed_jobs", static_cast<std::int64_t>(failed));
  if (!telemetry_files.empty()) {
    doc.emplace_back("telemetry", std::move(telemetry_files));
  }
  doc.emplace_back("jobs", std::move(job_docs));
  doc.emplace_back("rows", std::move(rows));
  return json::Value(std::move(doc));
}

std::string json_str(const json::Value& obj, const char* key) {
  if (const auto* v = obj.find(key); v && v->is_string()) {
    return v->as_string();
  }
  return "";
}

/// Rewrite the status table between the hyperexp markers in `path` from
/// the merged report. Everything outside the markers is preserved.
int emit_table(const std::string& path, const json::Value& report) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "error: cannot read " << path << "\n";
    return 2;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  const auto begin = text.find(kTableBegin);
  const auto end = text.find(kTableEnd);
  if (begin == std::string::npos || end == std::string::npos || end < begin) {
    std::cerr << "error: " << path << " lacks the " << kTableBegin << " / "
              << kTableEnd << " markers\n";
    return 2;
  }

  std::ostringstream table;
  table << kTableBegin << "\n";
  table << "| Bench | Case | Paper claim | Status |\n";
  table << "|-------|------|-------------|--------|\n";
  const auto* jobs = report.find("jobs");
  if (jobs != nullptr && jobs->is_array()) {
    for (const json::Value& jd : jobs->as_array()) {
      const auto* pass = jd.find("pass");
      table << "| `" << json_str(jd, "bench") << "` | `"
            << json_str(jd, "case") << "` | " << json_str(jd, "claim")
            << " | " << (pass != nullptr && pass->as_bool() ? "pass" : "FAIL")
            << " |\n";
    }
  }
  table << kTableEnd;

  const std::string updated = text.substr(0, begin) + table.str() +
                              text.substr(end + std::strlen(kTableEnd));
  std::ofstream out(path);
  out << updated;
  if (!out) {
    std::cerr << "error: cannot write " << path << "\n";
    return 2;
  }
  std::cout << "rewrote the status table in " << path << "\n";
  return 0;
}

int parse_int(const std::string& arg, const std::string& value) {
  try {
    std::size_t pos = 0;
    const int v = std::stoi(value, &pos);
    if (pos != value.size() || v < 0) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    std::cerr << "error: " << arg << " expects a non-negative integer, got '"
              << value << "'\n";
    std::exit(2);
  }
}

double parse_double(const std::string& arg, const std::string& value) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(value, &pos);
    if (pos != value.size() || v <= 0) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    std::cerr << "error: " << arg << " expects a positive number, got '"
              << value << "'\n";
    std::exit(2);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "error: " << arg << " expects a value\n";
        usage(2);
      }
      return argv[++i];
    };
    if (arg == "--bench-dir") {
      opt.bench_dir = value();
    } else if (arg == "--out") {
      opt.out_dir = value();
    } else if (arg == "--merged") {
      opt.merged_path = value();
    } else if (arg == "--smoke") {
      opt.smoke = true;
    } else if (arg == "--telemetry") {
      opt.telemetry = true;
    } else if (arg == "--list") {
      opt.list_only = true;
    } else if (arg == "--jobs") {
      opt.jobs = static_cast<unsigned>(
          std::max(1, parse_int(arg, value())));
    } else if (arg == "--timeout") {
      opt.timeout_sec = parse_double(arg, value());
    } else if (arg == "--retries") {
      opt.retries = parse_int(arg, value());
    } else if (arg == "--bench") {
      opt.bench_filter.push_back(value());
    } else if (arg == "--emit-table") {
      opt.emit_table = value();
    } else if (arg == "--help" || arg == "-h") {
      usage(0);
    } else {
      std::cerr << "error: unknown argument '" << arg << "'\n";
      usage(2);
    }
  }

  const fs::path bench_dir = opt.bench_dir.empty()
                                 ? self_exe_dir() / ".." / "bench"
                                 : fs::path(opt.bench_dir);
  const std::vector<Job> jobs = discover_jobs(opt, bench_dir);
  if (jobs.empty()) {
    std::cerr << "error: no harness benches found under " << bench_dir
              << "\n";
    return 2;
  }

  if (opt.list_only) {
    for (const Job& job : jobs) {
      std::cout << job.id() << "\t" << job.claim << "\n";
    }
    return 0;
  }

  std::error_code ec;
  fs::create_directories(opt.out_dir, ec);
  if (ec) {
    std::cerr << "error: cannot create output dir " << opt.out_dir << ": "
              << ec.message() << "\n";
    return 2;
  }
  const fs::path out_dir = fs::absolute(opt.out_dir);

  std::cout << "hyperexp: " << jobs.size() << " job(s) from " << bench_dir
            << (opt.smoke ? ", smoke mode" : "") << ", " << opt.jobs
            << " worker(s), timeout " << opt.timeout_sec << "s, retries "
            << opt.retries << "\n";

  // Resume: load checkpoints first so the schedule only contains real work.
  std::vector<JobResult> results(jobs.size());
  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (auto done = load_checkpoint(jobs[i], out_dir)) {
      results[i] = std::move(*done);
      say("  " + jobs[i].id() + ": resumed from checkpoint (" +
          (results[i].failed ? "FAIL" : "pass") + ")");
    } else {
      pending.push_back(i);
    }
  }

  std::vector<std::function<void()>> tasks;
  tasks.reserve(pending.size());
  for (const std::size_t i : pending) {
    tasks.push_back([&, i] {
      say("  " + jobs[i].id() + ": start");
      results[i] = run_job(jobs[i], opt, out_dir);
      say("  " + jobs[i].id() + ": " +
          (results[i].failed ? "FAIL" : "pass") + " (" +
          std::to_string(results[i].attempts) + " attempt(s), " +
          std::to_string(static_cast<std::int64_t>(results[i].wall_ms)) +
          " ms)");
    });
  }
  hp::run_parallel(tasks, opt.jobs);

  const json::Value report = merge_reports(results, opt, out_dir);
  const fs::path merged = opt.merged_path.empty()
                              ? out_dir / "BENCH_theorems.json"
                              : fs::path(opt.merged_path);
  {
    std::ofstream out(merged);
    out << json::dump(report);
    if (!out) {
      std::cerr << "error: cannot write " << merged << "\n";
      return 2;
    }
  }

  std::uint64_t failed = 0;
  for (const JobResult& r : results) failed += r.failed ? 1 : 0;
  const std::uint64_t executed = pending.size();
  std::cout << "\nhyperexp: " << (jobs.size() - failed) << "/" << jobs.size()
            << " job(s) passed (" << executed << " executed, "
            << (jobs.size() - executed) << " resumed)\n"
            << "wrote " << merged.string() << "\n";

  if (!opt.emit_table.empty()) {
    const int rc = emit_table(opt.emit_table, report);
    if (rc != 0) return rc;
  }

  return failed == 0 ? 0 : 1;
}
