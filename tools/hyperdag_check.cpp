// hyperDAG recognition tool (Lemmas B.1 / B.2).
//
//   hyperdag_check <graph.hgr>          decide whether the hypergraph is a
//                                       hyperDAG; print a generator
//                                       assignment or a violating subset
//   hyperdag_check --from-dag <dag.txt> convert a computational DAG into
//                                       its hyperDAG and print hMETIS to
//                                       stdout

#include <cstring>
#include <iostream>
#include <string>

#include "hyperpart/dag/recognition.hpp"
#include "hyperpart/io/dag_io.hpp"
#include "hyperpart/io/hmetis_io.hpp"
#include "hyperpart/util/timer.hpp"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: hyperdag_check [--from-dag] <file>\n";
    return 2;
  }
  try {
    if (std::strcmp(argv[1], "--from-dag") == 0) {
      if (argc < 3) {
        std::cerr << "usage: hyperdag_check --from-dag <dag.txt>\n";
        return 2;
      }
      const hp::Dag dag = hp::read_dag_file(argv[2]);
      const hp::HyperDag h = hp::to_hyperdag(dag);
      write_hmetis(std::cout, h.graph);
      std::cerr << "converted: " << h.graph.summary() << "\n";
      return 0;
    }

    const hp::Hypergraph g = hp::read_hmetis_file(argv[1]);
    std::cerr << g.summary() << "\n";
    hp::Timer timer;
    const hp::RecognitionResult res = hp::recognize_hyperdag(g);
    std::cerr << "recognition in " << timer.millis() << " ms\n";
    if (res.is_hyperdag) {
      std::cout << "hyperDAG: yes\n";
      std::cout << "generator of each hyperedge (1-based nodes):\n";
      for (hp::EdgeId e = 0; e < g.num_edges(); ++e) {
        std::cout << (e + 1) << " <- " << (res.generator[e] + 1) << "\n";
      }
      return 0;
    }
    std::cout << "hyperDAG: no\n";
    std::cout << "violating induced subgraph (all degrees >= 2), "
              << res.violating_subset.size() << " nodes:";
    for (const hp::NodeId v : res.violating_subset) {
      std::cout << ' ' << (v + 1);
    }
    std::cout << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
