// hyperpartc — client and load generator for the hyperpartd daemon.
//
//   hyperpartc (--socket /path.sock | --tcp PORT) <op> [flags]
//
//   ops:
//     load        --path graph.hpb
//     partition   --graph G --k K [--eps E] [--metric conn|cut] [--seed S]
//                 [--parts]
//     repartition same flags (incremental ΔFM ladder server-side)
//     evaluate    same flags plus [--version V] (reader; runs concurrently
//                 with a mutator; --version pins a graph snapshot — a
//                 mismatch is an error, not a stale answer)
//     update      --graph G [--node-weight ID=W]... [--edge-weight ID=W]...
//                 [--remove-net ID]... [--remove-pins NET:P1,P2,...]...
//                 [--add-pins NET:P1,P2,...]... [--add-net P1,P2,...[@W]]...
//                 (all deltas of one invocation ship in ONE frame = one
//                 atomic batch, applied server-side in the order
//                 remove_nets → remove_pins → add_pins → add_nets)
//     stats
//     shutdown
//     raw         --json '{"op": ...}'   (verbatim passthrough)
//     loadgen     --graph G --k K [--op evaluate|partition|repartition|churn]
//                 [--repeat N] [--clients C] [--nodes N]
//
// Every op sends one HPF1 frame and prints the JSON response on stdout;
// exit 0 when the server answered {ok: true}, 1 on {ok: false} or transport
// errors, 2 on usage errors. loadgen opens C connections, fires N requests
// round-robin across them, and reports req/sec with p50/p99 latency. The
// churn loadgen op sends per-request-distinct structural updates (one
// add_net each, pins drawn below --nodes); "busy" rejections — expected
// under concurrent mutators, the slot admits one at a time — are counted
// separately from failures.

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <iostream>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "hyperpart/obs/json.hpp"
#include "hyperpart/server/protocol.hpp"
#include "hyperpart/util/parse.hpp"

namespace json = hp::obs::json;

namespace {

[[noreturn]] void usage() {
  std::cerr
      << "usage: hyperpartc (--socket /path.sock | --tcp PORT) <op> [flags]\n"
         "  ops: load --path F | partition|repartition|evaluate --graph G\n"
         "       --k K [--eps E] [--metric conn|cut] [--seed S] [--parts]\n"
         "       [--version V]\n"
         "       | update --graph G [--node-weight ID=W]... "
         "[--edge-weight ID=W]...\n"
         "         [--remove-net ID]... [--remove-pins NET:P,..]... "
         "[--add-pins NET:P,..]...\n"
         "         [--add-net P,P,..[@W]]...\n"
         "       | stats | shutdown | raw --json J\n"
         "       | loadgen --graph G --k K [--op OP|churn] [--repeat N] "
         "[--clients C] [--nodes N]\n";
  std::exit(2);
}

[[noreturn]] void bad_flag(const std::string& flag, const std::string& token,
                           const char* expected) {
  std::cerr << "error: invalid value '" << token << "' for " << flag << " ("
            << expected << ")\n";
  usage();
}

int connect_to(const std::string& socket_path, int tcp_port) {
  if (!socket_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.size() >= sizeof addr.sun_path) {
      std::cerr << "error: socket path too long\n";
      return -1;
    }
    std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
        0) {
      std::cerr << "error: cannot connect to " << socket_path << ": "
                << std::strerror(errno) << "\n";
      ::close(fd);
      return -1;
    }
    return fd;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(tcp_port));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    std::cerr << "error: cannot connect to tcp port " << tcp_port << ": "
              << std::strerror(errno) << "\n";
    ::close(fd);
    return -1;
  }
  return fd;
}

/// One request/response round trip; nullopt on transport failure.
std::optional<std::string> round_trip(int fd, const std::string& request) {
  if (hp::server::write_frame(fd, request) != hp::server::FrameError::kNone) {
    return std::nullopt;
  }
  std::string response;
  if (hp::server::read_frame(fd, response) != hp::server::FrameError::kNone) {
    return std::nullopt;
  }
  return response;
}

/// Parse "ID=W" into a [id, weight] JSON pair.
json::Value weight_pair(const std::string& flag, const std::string& spec) {
  const auto eq = spec.find('=');
  if (eq == std::string::npos) bad_flag(flag, spec, "ID=WEIGHT");
  const auto id = hp::parse_u64(spec.substr(0, eq), 0, UINT32_MAX);
  const auto w = hp::parse_i64(spec.substr(eq + 1), 0, INT64_MAX);
  if (!id || !w) bad_flag(flag, spec, "ID=WEIGHT, both non-negative integers");
  json::Array pair;
  pair.emplace_back(static_cast<std::int64_t>(*id));
  pair.emplace_back(*w);
  return json::Value(std::move(pair));
}

/// Parse "P1,P2,..." into a JSON array of node ids.
json::Array pin_list(const std::string& flag, const std::string& spec) {
  json::Array pins;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t comma = spec.find(',', start);
    const std::string tok =
        spec.substr(start, comma == std::string::npos ? comma : comma - start);
    const auto id = hp::parse_u64(tok, 0, UINT32_MAX);
    if (!id) bad_flag(flag, spec, "comma-separated node ids");
    pins.emplace_back(static_cast<std::int64_t>(*id));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (pins.empty()) bad_flag(flag, spec, "comma-separated node ids");
  return pins;
}

/// Parse "NET:P1,P2,..." into a {net, pins} object.
json::Value net_pins(const std::string& flag, const std::string& spec) {
  const auto colon = spec.find(':');
  if (colon == std::string::npos) bad_flag(flag, spec, "NET:P1,P2,...");
  const auto net = hp::parse_u64(spec.substr(0, colon), 0, UINT32_MAX);
  if (!net) bad_flag(flag, spec, "NET:P1,P2,...");
  json::Value o{json::Object{}};
  o.set("net", static_cast<std::int64_t>(*net));
  o.set("pins", json::Value(pin_list(flag, spec.substr(colon + 1))));
  return o;
}

/// Parse "P1,P2,...[@W]" into a {pins, weight?} object.
json::Value new_net(const std::string& flag, const std::string& spec) {
  const auto at = spec.find('@');
  json::Value o{json::Object{}};
  o.set("pins", json::Value(pin_list(
                    flag, at == std::string::npos ? spec : spec.substr(0, at))));
  if (at != std::string::npos) {
    const auto w = hp::parse_i64(spec.substr(at + 1), 0, INT64_MAX);
    if (!w) bad_flag(flag, spec, "P1,P2,...@WEIGHT with non-negative weight");
    o.set("weight", *w);
  }
  return o;
}

struct LoadgenStats {
  std::vector<double> latencies_ms;
  std::uint64_t failures = 0;
  std::uint64_t busy = 0;  ///< mutator-slot rejections (churn op)
};

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  int tcp_port = -1;
  std::string op;
  std::string path;
  std::string graph;
  std::string raw_json;
  std::string loadgen_op = "evaluate";
  std::uint64_t k = 2;
  double eps = 0.05;
  std::string metric;
  std::uint64_t seed = 1;
  bool include_parts = false;
  std::optional<std::uint64_t> pin_version;
  std::uint64_t repeat = 100;
  std::uint64_t clients = 4;
  std::uint64_t churn_nodes = 2;
  json::Array node_weights;
  json::Array edge_weights;
  json::Array remove_nets;
  json::Array remove_pins;
  json::Array add_pins;
  json::Array add_nets;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "error: " << arg << " expects a value\n";
        usage();
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      socket_path = value();
    } else if (arg == "--tcp") {
      const auto v = hp::parse_u64(value(), 1, 65535);
      if (!v) bad_flag(arg, argv[i], "port in [1, 65535]");
      tcp_port = static_cast<int>(*v);
    } else if (arg == "--path") {
      path = value();
    } else if (arg == "--graph") {
      graph = value();
    } else if (arg == "--json") {
      raw_json = value();
    } else if (arg == "--k") {
      const auto v = hp::parse_u64(value(), 2, UINT32_MAX);
      if (!v) bad_flag(arg, argv[i], "integer >= 2");
      k = *v;
    } else if (arg == "--eps") {
      const auto v = hp::parse_f64(value(), 0.0, 1e9);
      if (!v) bad_flag(arg, argv[i], "finite number >= 0");
      eps = *v;
    } else if (arg == "--metric") {
      metric = value();
      if (metric != "conn" && metric != "cut") {
        bad_flag(arg, metric, "conn or cut");
      }
    } else if (arg == "--seed") {
      const auto v = hp::parse_u64(value());
      if (!v) bad_flag(arg, argv[i], "unsigned integer");
      seed = *v;
    } else if (arg == "--parts") {
      include_parts = true;
    } else if (arg == "--version") {
      const auto v = hp::parse_u64(value());
      if (!v) bad_flag(arg, argv[i], "unsigned integer");
      pin_version = *v;
    } else if (arg == "--node-weight") {
      node_weights.push_back(weight_pair(arg, value()));
    } else if (arg == "--edge-weight") {
      edge_weights.push_back(weight_pair(arg, value()));
    } else if (arg == "--remove-net") {
      const auto id = hp::parse_u64(value(), 0, UINT32_MAX);
      if (!id) bad_flag(arg, argv[i], "net id");
      remove_nets.emplace_back(static_cast<std::int64_t>(*id));
    } else if (arg == "--remove-pins") {
      remove_pins.push_back(net_pins(arg, value()));
    } else if (arg == "--add-pins") {
      add_pins.push_back(net_pins(arg, value()));
    } else if (arg == "--add-net") {
      add_nets.push_back(new_net(arg, value()));
    } else if (arg == "--nodes") {
      const auto v = hp::parse_u64(value(), 2, UINT32_MAX);
      if (!v) bad_flag(arg, argv[i], "integer >= 2");
      churn_nodes = *v;
    } else if (arg == "--repeat") {
      const auto v = hp::parse_u64(value(), 1, 100000000);
      if (!v) bad_flag(arg, argv[i], "integer >= 1");
      repeat = *v;
    } else if (arg == "--clients") {
      const auto v = hp::parse_u64(value(), 1, 1024);
      if (!v) bad_flag(arg, argv[i], "integer in [1, 1024]");
      clients = *v;
    } else if (arg == "--op") {
      loadgen_op = value();
      if (loadgen_op != "evaluate" && loadgen_op != "partition" &&
          loadgen_op != "repartition" && loadgen_op != "stats" &&
          loadgen_op != "churn") {
        bad_flag(arg, loadgen_op,
                 "evaluate, partition, repartition, stats, or churn");
      }
    } else if (!arg.empty() && arg[0] != '-' && op.empty()) {
      op = arg;
    } else {
      std::cerr << "error: unknown flag '" << arg << "'\n";
      usage();
    }
  }
  if (op.empty()) {
    std::cerr << "error: no op given\n";
    usage();
  }
  if (socket_path.empty() && tcp_port < 0) {
    std::cerr << "error: --socket or --tcp is required\n";
    usage();
  }

  // Build the request payload.
  const auto config_request = [&](const std::string& request_op) {
    json::Value req{json::Object{}};
    req.set("op", request_op);
    req.set("graph", graph);
    req.set("k", static_cast<std::int64_t>(k));
    req.set("epsilon", eps);
    if (!metric.empty()) {
      req.set("metric", metric == "cut" ? "cut" : "connectivity");
    }
    req.set("seed", static_cast<std::int64_t>(seed));
    if (include_parts) req.set("include_parts", true);
    if (pin_version) {
      // Snapshot pinning: the server answers "version mismatch" instead of
      // silently evaluating a graph the client has not seen yet.
      req.set("version", static_cast<std::int64_t>(*pin_version));
    }
    return req;
  };

  std::string request;
  if (op == "raw") {
    if (raw_json.empty()) {
      std::cerr << "error: raw needs --json\n";
      usage();
    }
    request = raw_json;
  } else if (op == "load") {
    if (path.empty()) {
      std::cerr << "error: load needs --path\n";
      usage();
    }
    json::Value req{json::Object{}};
    req.set("op", "load");
    req.set("path", path);
    request = json::dump(req);
  } else if (op == "stats" || op == "shutdown") {
    json::Value req{json::Object{}};
    req.set("op", op);
    request = json::dump(req);
  } else if (op == "update") {
    if (graph.empty()) {
      std::cerr << "error: update needs --graph\n";
      usage();
    }
    json::Value req{json::Object{}};
    req.set("op", "update");
    req.set("graph", graph);
    if (!node_weights.empty()) {
      req.set("node_weights", json::Value(node_weights));
    }
    if (!edge_weights.empty()) {
      req.set("edge_weights", json::Value(edge_weights));
    }
    if (!remove_nets.empty()) {
      req.set("remove_nets", json::Value(remove_nets));
    }
    if (!remove_pins.empty()) {
      req.set("remove_pins", json::Value(remove_pins));
    }
    if (!add_pins.empty()) req.set("add_pins", json::Value(add_pins));
    if (!add_nets.empty()) req.set("add_nets", json::Value(add_nets));
    request = json::dump(req);
  } else if (op == "partition" || op == "repartition" || op == "evaluate") {
    if (graph.empty()) {
      std::cerr << "error: " << op << " needs --graph\n";
      usage();
    }
    request = json::dump(config_request(op));
  } else if (op == "loadgen") {
    if (graph.empty() && loadgen_op != "stats") {
      std::cerr << "error: loadgen needs --graph\n";
      usage();
    }
    if (loadgen_op == "stats") {
      json::Value req{json::Object{}};
      req.set("op", "stats");
      request = json::dump(req);
    } else if (loadgen_op != "churn") {
      request = json::dump(config_request(loadgen_op));
    }
    // churn builds a distinct frame per request inside the worker loop.
  } else {
    std::cerr << "error: unknown op '" << op << "'\n";
    usage();
  }

  if (op == "loadgen") {
    // Fire `repeat` identical requests over `clients` parallel connections.
    std::vector<std::thread> workers;
    std::vector<LoadgenStats> per_client(clients);
    const auto wall_start = std::chrono::steady_clock::now();
    for (std::uint64_t c = 0; c < clients; ++c) {
      const std::uint64_t share =
          repeat / clients + (c < repeat % clients ? 1 : 0);
      workers.emplace_back([&, c, share] {
        LoadgenStats& stats = per_client[c];
        const int fd = connect_to(socket_path, tcp_port);
        if (fd < 0) {
          stats.failures = share;
          return;
        }
        stats.latencies_ms.reserve(share);
        for (std::uint64_t r = 0; r < share; ++r) {
          std::string payload = request;
          if (loadgen_op == "churn") {
            // Per-request-distinct structural delta: one new 2-pin net,
            // pins rolling through [0, --nodes) so every frame differs.
            const std::uint64_t tick = c * 1000003ULL + r;
            json::Value req{json::Object{}};
            req.set("op", "update");
            req.set("graph", graph);
            json::Value net{json::Object{}};
            json::Array pins;
            pins.emplace_back(static_cast<std::int64_t>(tick % churn_nodes));
            pins.emplace_back(
                static_cast<std::int64_t>((tick + 1) % churn_nodes));
            net.set("pins", json::Value(std::move(pins)));
            json::Array nets;
            nets.push_back(std::move(net));
            req.set("add_nets", json::Value(std::move(nets)));
            payload = json::dump(req);
          }
          const auto t0 = std::chrono::steady_clock::now();
          const auto response = round_trip(fd, payload);
          const auto t1 = std::chrono::steady_clock::now();
          if (!response) {
            ++stats.failures;
            continue;
          }
          if (response->find("\"ok\": true") == std::string::npos) {
            // The single mutator slot rejects concurrent churn with "busy";
            // that is admission control working, not a failure.
            if (response->find("busy:") != std::string::npos) {
              ++stats.busy;
            } else {
              ++stats.failures;
            }
            continue;
          }
          stats.latencies_ms.push_back(
              std::chrono::duration<double, std::milli>(t1 - t0).count());
        }
        ::close(fd);
      });
    }
    for (auto& w : workers) w.join();
    const double wall_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - wall_start)
                              .count();
    std::vector<double> all;
    std::uint64_t failures = 0;
    std::uint64_t busy = 0;
    for (const LoadgenStats& s : per_client) {
      all.insert(all.end(), s.latencies_ms.begin(), s.latencies_ms.end());
      failures += s.failures;
      busy += s.busy;
    }
    std::sort(all.begin(), all.end());
    const auto pct = [&](double q) {
      if (all.empty()) return 0.0;
      const auto idx = static_cast<std::size_t>(q * (all.size() - 1));
      return all[idx];
    };
    std::cout << "requests   = " << all.size() << " ok, " << failures
              << " failed, " << busy << " busy\n"
              << "clients    = " << clients << "\n"
              << "wall       = " << wall_s << " s\n"
              << "throughput = " << (wall_s > 0 ? all.size() / wall_s : 0.0)
              << " req/sec\n"
              << "p50        = " << pct(0.50) << " ms\n"
              << "p99        = " << pct(0.99) << " ms\n";
    return failures == 0 ? 0 : 1;
  }

  const int fd = connect_to(socket_path, tcp_port);
  if (fd < 0) return 1;
  const auto response = round_trip(fd, request);
  ::close(fd);
  if (!response) {
    std::cerr << "error: transport failure talking to the server\n";
    return 1;
  }
  std::cout << *response;
  if (response->empty() || response->back() != '\n') std::cout << "\n";
  try {
    const json::Value parsed = json::parse(*response);
    const json::Value* ok = parsed.find("ok");
    return ok && ok->type() == json::Type::kBool && ok->as_bool() ? 0 : 1;
  } catch (const std::exception&) {
    return 1;
  }
}
