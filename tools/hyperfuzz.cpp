// Differential fuzzing driver: the standing correctness gate for every
// solver stack in this repo.
//
//   hyperfuzz [--seed S] [--runs N] [--max-nodes N] [--max-edges M]
//             [--families f1,f2,...] [--exact-limit N] [--threads T]
//             [--out-dir DIR] [--max-failures F] [--inject-bug gain]
//             [--no-anneal] [--no-stream] [--no-incremental]
//             [--structural-rounds N] [--quiet]
//   hyperfuzz --replay file.hgr|file.hpb [--k K] [--eps E]
//             [--metric cut|conn] [--seed S] [--inject-bug gain]
//
// Fuzz mode generates one seeded instance per run (families: random,
// skewed, hyperdag, grid, spes, degenerate, plus the workload-catalogue
// legs spmv, netlist, dataflow, powerlaw) and runs the full differential
// oracle on it — every heuristic, the streaming round trip, and on small
// instances the three exact solvers — checking the cross-solver invariants
// documented in fuzz/oracle.hpp. A failing instance is ddmin-shrunk to a
// minimal repro and dumped into --out-dir as an hMETIS file plus the exact
// replay invocation; the exit code is the number of failing runs (capped).
//
// Replay mode re-runs the oracle on a dumped (or corpus) file, so every CI
// artifact reproduces with a single command. --inject-bug seeds a
// deliberate gain-rule fault inside the oracle's own prediction — the
// self-test proving the harness catches and shrinks real bugs.

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "hyperpart/fuzz/instance_gen.hpp"
#include "hyperpart/fuzz/oracle.hpp"
#include "hyperpart/fuzz/shrinker.hpp"
#include "hyperpart/io/hmetis_io.hpp"
#include "hyperpart/obs/telemetry.hpp"
#include "hyperpart/stream/binary_format.hpp"
#include "hyperpart/util/parse.hpp"
#include "hyperpart/util/rng.hpp"
#include "hyperpart/util/timer.hpp"

namespace {

[[noreturn]] void usage() {
  std::cerr
      << "usage: hyperfuzz [--seed S] [--runs N] [--max-nodes N] "
         "[--max-edges M]\n"
         "         [--families f1,f2,...] [--exact-limit N] [--threads T]\n"
         "         [--out-dir DIR] [--max-failures F] [--inject-bug gain]\n"
         "         [--no-anneal] [--no-stream] [--no-incremental]\n"
         "         [--structural-rounds N] [--quiet] [--telemetry t.json]\n"
         "       hyperfuzz --replay file.hgr|file.hpb [--k K] [--eps E]\n"
         "         [--metric cut|conn] [--seed S] [--inject-bug gain]\n"
         "families: random skewed hyperdag grid spes degenerate\n"
         "          spmv netlist dataflow powerlaw\n";
  std::exit(2);
}

[[noreturn]] void bad_flag(const std::string& flag, const std::string& token,
                           const char* expected) {
  std::cerr << "error: invalid value '" << token << "' for " << flag << " ("
            << expected << ")\n";
  usage();
}

std::uint64_t flag_u64(const std::string& flag, const std::string& token,
                       std::uint64_t min_value, std::uint64_t max_value,
                       const char* expected) {
  const auto v = hp::parse_u64(token, min_value, max_value);
  if (!v) bad_flag(flag, token, expected);
  return *v;
}

std::vector<hp::fuzz::Family> parse_families(const std::string& csv) {
  std::vector<hp::fuzz::Family> out;
  std::istringstream is(csv);
  std::string name;
  while (std::getline(is, name, ',')) {
    if (!name.empty()) out.push_back(hp::fuzz::family_from_string(name));
  }
  return out;
}

int replay(const std::string& path, hp::PartId k, double eps,
           hp::CostMetric metric, std::uint64_t seed,
           const hp::fuzz::OracleOptions& oopts) {
  hp::fuzz::FuzzInstance inst;
  if (hp::stream::is_binary_file(path)) {
    inst.graph = hp::stream::MappedHypergraph(path).materialize();
  } else {
    inst.graph = hp::read_hmetis_file(path);
  }
  inst.k = k;
  inst.epsilon = eps;
  inst.metric = metric;
  inst.seed = seed;
  inst.family = "replay";

  const auto report = hp::fuzz::run_oracle(inst, oopts);
  std::cout << hp::fuzz::describe(inst) << "\n" << report.to_string() << "\n";
  return report.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 1;
  std::uint64_t runs = 1000;
  hp::fuzz::GenOptions gen;
  hp::fuzz::OracleOptions oopts;
  std::string out_dir = "hyperfuzz-repros";
  std::string replay_path;
  std::string telemetry_path;
  int max_failures = 5;
  bool quiet = false;
  hp::PartId replay_k = 2;
  double replay_eps = 0.1;
  hp::CostMetric replay_metric = hp::CostMetric::kConnectivity;

  constexpr std::uint64_t kMaxId = UINT32_MAX;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "error: " << arg << " expects a value\n";
        usage();
      }
      return argv[++i];
    };
    if (arg == "--seed") {
      seed = flag_u64(arg, value(), 0, UINT64_MAX, "unsigned integer");
    } else if (arg == "--runs") {
      runs = flag_u64(arg, value(), 0, UINT64_MAX, "unsigned integer");
    } else if (arg == "--max-nodes") {
      gen.max_nodes = static_cast<hp::NodeId>(
          flag_u64(arg, value(), 1, kMaxId, "integer >= 1"));
    } else if (arg == "--max-edges") {
      gen.max_edges = static_cast<hp::EdgeId>(
          flag_u64(arg, value(), 1, kMaxId, "integer >= 1"));
    } else if (arg == "--families") {
      gen.families = parse_families(value());
    } else if (arg == "--exact-limit") {
      oopts.exact_node_limit = static_cast<hp::NodeId>(
          flag_u64(arg, value(), 0, kMaxId, "integer >= 0"));
    } else if (arg == "--threads") {
      oopts.alt_threads = static_cast<unsigned>(
          flag_u64(arg, value(), 1, 1024, "integer in [1, 1024]"));
    } else if (arg == "--out-dir") {
      out_dir = value();
    } else if (arg == "--max-failures") {
      max_failures = static_cast<int>(
          flag_u64(arg, value(), 1, INT32_MAX, "integer >= 1"));
    } else if (arg == "--inject-bug") {
      const std::string bug = value();
      if (bug != "gain") bad_flag(arg, bug, "gain");
      oopts.fault = hp::fuzz::FaultInjection::kGainRule;
    } else if (arg == "--no-anneal") {
      oopts.run_annealing = false;
    } else if (arg == "--no-stream") {
      oopts.run_stream = false;
    } else if (arg == "--no-incremental") {
      oopts.run_incremental = false;
    } else if (arg == "--structural-rounds") {
      oopts.structural_rounds = static_cast<int>(
          flag_u64(arg, value(), 0, 1024, "integer in [0, 1024]"));
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--telemetry") {
      telemetry_path = value();
    } else if (arg == "--replay") {
      replay_path = value();
    } else if (arg == "--k") {
      replay_k = static_cast<hp::PartId>(
          flag_u64(arg, value(), 2, kMaxId, "integer >= 2"));
    } else if (arg == "--eps") {
      const std::string tok = value();
      const auto e = hp::parse_f64(tok, 0.0, 1e9);
      if (!e) bad_flag(arg, tok, "finite number >= 0");
      replay_eps = *e;
    } else if (arg == "--metric") {
      const std::string m = value();
      if (m == "cut") {
        replay_metric = hp::CostMetric::kCutNet;
      } else if (m == "conn") {
        replay_metric = hp::CostMetric::kConnectivity;
      } else {
        bad_flag(arg, m, "cut or conn");
      }
    } else {
      std::cerr << "error: unknown flag '" << arg << "'\n";
      usage();
    }
  }

  if (!telemetry_path.empty()) {
    hp::obs::reset();
    hp::obs::set_enabled(true);
  }
  const auto flush_telemetry = [&] {
    if (telemetry_path.empty()) return;
    if (hp::obs::write_json(telemetry_path)) {
      std::cout << "telemetry written to " << telemetry_path << "\n";
    } else {
      std::cerr << "error: cannot write telemetry to " << telemetry_path
                << "\n";
    }
  };

  if (!replay_path.empty()) {
    const int rc = replay(replay_path, replay_k, replay_eps, replay_metric,
                          seed, oopts);
    flush_telemetry();
    return rc;
  }

  hp::Timer timer;
  std::map<std::string, std::uint64_t> per_family;
  int failures = 0;
  std::uint64_t state = seed;
  for (std::uint64_t i = 0; i < runs; ++i) {
    const std::uint64_t run_seed = hp::splitmix64(state);
    hp::fuzz::FuzzInstance inst;
    try {
      inst = hp::fuzz::generate_instance(run_seed, gen);
    } catch (const std::exception& e) {
      // A generator crash is a harness bug; report it as a failure but
      // keep fuzzing — later runs are independent.
      ++failures;
      std::cout << "FAIL generate_instance(seed=" << run_seed
                << ") threw: " << e.what() << "\n";
      if (failures >= max_failures) break;
      continue;
    }
    ++per_family[inst.family];
    const auto report = hp::fuzz::run_oracle(inst, oopts);
    if (!quiet && runs >= 200 && (i + 1) % (runs / 10) == 0) {
      std::cout << "progress " << (i + 1) << "/" << runs << " ("
                << failures << " failures)\n";
    }
    if (report.ok()) continue;

    ++failures;
    std::cout << "FAIL " << hp::fuzz::describe(inst) << "\n"
              << report.to_string();

    hp::fuzz::ShrinkOptions sopts;
    sopts.oracle = oopts;
    const auto shrunk = hp::fuzz::shrink_instance(inst, sopts);
    const std::string stem = "repro_seed" + std::to_string(run_seed);
    const std::string extra =
        oopts.fault == hp::fuzz::FaultInjection::kGainRule ? "--inject-bug gain"
                                                           : "";
    const std::string hgr =
        hp::fuzz::dump_repro(shrunk.instance, out_dir, stem, extra);
    std::cout << "shrunk to " << hp::fuzz::describe(shrunk.instance) << " ["
              << shrunk.violated_invariant << "] after "
              << shrunk.oracle_runs << " oracle runs\n"
              << "repro: " << hgr << " (replay line in " << out_dir << "/"
              << stem << ".cmd)\n";
    if (failures >= max_failures) {
      std::cout << "stopping after " << failures << " failures\n";
      break;
    }
  }

  std::cout << "hyperfuzz: " << runs << " runs, " << failures
            << " failure(s) in " << timer.millis() << " ms\n";
  for (const auto& [family, count] : per_family) {
    std::cout << "  " << family << ": " << count << "\n";
  }
  flush_telemetry();
  return failures == 0 ? 0 : 1;
}
