// Perf/telemetry gating tool: compare a candidate bench or telemetry JSON
// against a committed baseline with per-metric tolerances.
//
//   hyperbench_diff <baseline.json> <candidate.json>
//       [--default-tol V] [--tol name=V] [--ignore name]
//       [--ignore-suffix sfx] [--require-rows N] [--list]
//       [--fail-nonzero field]
//
// Two input shapes are understood, sniffed from the document itself:
//
//   * bench tables ({"bench": ..., "rows": [...]}, the BENCH_*.json files):
//     rows are joined across the two files by their identity — every
//     string-valued field plus n/m/k — and each remaining numeric field is
//     one metric.
//   * telemetry sessions ({"schema": "hyperpart-telemetry", ...}): the span
//     tree is flattened to path-keyed metrics (span:multilevel/initial:ms)
//     together with counters, gauges, wall_ms, and peak_rss_bytes.
//
// A tolerance V is a relative slack: candidate <= base + V * max(1, |base|)
// passes. Checks are one-sided (bigger is worse), so higher-is-better
// metrics (fm_speedup) and noisy ones (ms, peak_rss_kb) should be excluded
// via --ignore / --ignore-suffix. Negative values are sentinels in the
// bench tables ("leg not run") and skip the comparison. A baseline row
// missing from the candidate is a failure unless --allow-missing is given
// (for CI gates that run only the quick/smoke subset of a full committed
// baseline); --require-rows N additionally fails the run when fewer than
// N metrics were compared, so an accidentally-empty join cannot pass.
// --fail-nonzero F (repeatable) makes any candidate metric whose field name
// is F and whose value is > 0 a regression on its own, independent of the
// baseline — the gate for hard-failure counters (verdict "failures", job
// "failed") that must be zero even on rows the baseline has never seen.
//
// Exit codes: 0 within tolerance, 1 regression (or empty join), 2 usage or
// parse error.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <iostream>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "hyperpart/obs/json.hpp"
#include "hyperpart/obs/telemetry.hpp"
#include "hyperpart/util/parse.hpp"

namespace {

namespace json = hp::obs::json;

[[noreturn]] void usage() {
  std::cerr
      << "usage: hyperbench_diff <baseline.json> <candidate.json>\n"
         "         [--default-tol V] [--tol name=V] [--ignore name]\n"
         "         [--ignore-suffix sfx] [--require-rows N]\n"
         "         [--allow-missing] [--list] [--fail-nonzero field]\n";
  std::exit(2);
}

/// One comparable scalar: "<row identity>:<field>" -> value.
using MetricMap = std::map<std::string, double>;

/// Identity of a bench row: every string field plus n/m/k, in key order.
std::string row_identity(const json::Value& row) {
  std::string id;
  for (const auto& [key, value] : row.as_object()) {
    const bool is_id =
        value.is_string() || key == "n" || key == "m" || key == "k";
    if (!is_id) continue;
    if (!id.empty()) id += ',';
    id += key + '=' +
          (value.is_string() ? value.as_string()
                             : std::to_string(value.as_int()));
  }
  return id;
}

void flatten_bench(const json::Value& doc, MetricMap& out) {
  const json::Value* rows = doc.find("rows");
  if (rows == nullptr || !rows->is_array()) {
    throw std::runtime_error("bench document has no \"rows\" array");
  }
  for (const auto& row : rows->as_array()) {
    if (!row.is_object()) continue;
    const std::string id = row_identity(row);
    for (const auto& [key, value] : row.as_object()) {
      if (!value.is_number() || key == "n" || key == "m" || key == "k") {
        continue;
      }
      out["{" + id + "}:" + key] = value.as_double();
    }
  }
}

void flatten_spans(const json::Value& spans, const std::string& prefix,
                   MetricMap& out) {
  for (const auto& span : spans.as_array()) {
    const json::Value* name = span.find("name");
    if (name == nullptr) continue;
    const std::string path =
        prefix.empty() ? name->as_string() : prefix + "/" + name->as_string();
    if (const json::Value* ms = span.find("ms")) {
      out["span:" + path + ":ms"] = ms->as_double();
    }
    if (const json::Value* count = span.find("count")) {
      out["span:" + path + ":count"] = count->as_double();
    }
    if (const json::Value* children = span.find("children");
        children != nullptr && children->is_array()) {
      flatten_spans(*children, path, out);
    }
  }
}

void flatten_telemetry(const json::Value& doc, MetricMap& out) {
  if (const json::Value* v = doc.find("wall_ms")) {
    out["wall_ms"] = v->as_double();
  }
  if (const json::Value* v = doc.find("peak_rss_bytes")) {
    out["peak_rss_bytes"] = v->as_double();
  }
  if (const json::Value* spans = doc.find("spans");
      spans != nullptr && spans->is_array()) {
    flatten_spans(*spans, "", out);
  }
  for (const char* section : {"counters", "gauges"}) {
    const json::Value* map = doc.find(section);
    if (map == nullptr || !map->is_object()) continue;
    const std::string prefix =
        section == std::string("counters") ? "counter:" : "gauge:";
    for (const auto& [key, value] : map->as_object()) {
      if (value.is_number()) out[prefix + key] = value.as_double();
    }
  }
}

MetricMap flatten(const json::Value& doc) {
  MetricMap out;
  const json::Value* schema = doc.find("schema");
  if (schema != nullptr && schema->is_string() &&
      schema->as_string() == hp::obs::kSchemaName) {
    flatten_telemetry(doc, out);
  } else {
    flatten_bench(doc, out);
  }
  return out;
}

/// The tolerance lookup key is the field name after the row identity
/// ("fm_cached_cost"), or the full metric name for telemetry metrics.
std::string field_of(const std::string& metric) {
  const auto pos = metric.rfind("}:");
  return pos == std::string::npos ? metric : metric.substr(pos + 2);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  std::map<std::string, double> tol;
  std::set<std::string> ignore;
  std::set<std::string> fail_nonzero;
  std::vector<std::string> ignore_suffix;
  double default_tol = 0.0;
  std::uint64_t require_rows = 0;
  bool allow_missing = false;
  bool list = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "error: " << arg << " expects a value\n";
        usage();
      }
      return argv[++i];
    };
    if (arg == "--default-tol") {
      const std::string tok = value();
      const auto v = hp::parse_f64(tok, 0.0, 1e9);
      if (!v) {
        std::cerr << "error: invalid --default-tol '" << tok << "'\n";
        usage();
      }
      default_tol = *v;
    } else if (arg == "--tol") {
      const std::string spec = value();
      const auto eq = spec.find('=');
      std::optional<double> v;
      if (eq != std::string::npos) {
        v = hp::parse_f64(spec.substr(eq + 1), 0.0, 1e9);
      }
      if (!v) {
        std::cerr << "error: --tol expects name=V, got '" << spec << "'\n";
        usage();
      }
      tol[spec.substr(0, eq)] = *v;
    } else if (arg == "--ignore") {
      ignore.insert(value());
    } else if (arg == "--fail-nonzero") {
      fail_nonzero.insert(value());
    } else if (arg == "--ignore-suffix") {
      ignore_suffix.push_back(value());
    } else if (arg == "--require-rows") {
      const std::string tok = value();
      const auto v = hp::parse_u64(tok, 0, UINT32_MAX);
      if (!v) {
        std::cerr << "error: invalid --require-rows '" << tok << "'\n";
        usage();
      }
      require_rows = *v;
    } else if (arg == "--allow-missing") {
      allow_missing = true;
    } else if (arg == "--list") {
      list = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "error: unknown flag '" << arg << "'\n";
      usage();
    } else {
      files.push_back(arg);
    }
  }
  if (files.size() != 2) usage();

  MetricMap base;
  MetricMap cand;
  try {
    base = flatten(json::parse_file(files[0]));
    cand = flatten(json::parse_file(files[1]));
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }

  const auto skipped = [&](const std::string& field) {
    if (ignore.count(field) != 0) return true;
    return std::any_of(ignore_suffix.begin(), ignore_suffix.end(),
                       [&](const std::string& sfx) {
                         return field.size() >= sfx.size() &&
                                field.compare(field.size() - sfx.size(),
                                              sfx.size(), sfx) == 0;
                       });
  };

  std::uint64_t compared = 0;
  int regressions = 0;
  for (const auto& [metric, base_value] : base) {
    const std::string field = field_of(metric);
    if (skipped(field)) continue;
    const auto it = cand.find(metric);
    if (it == cand.end()) {
      if (!allow_missing) {
        std::cout << "MISSING " << metric << " (present in baseline only)\n";
        ++regressions;
      }
      continue;
    }
    const double cand_value = it->second;
    if (base_value < 0 || cand_value < 0) continue;  // "leg not run" sentinel
    ++compared;
    const auto t = tol.find(field);
    const double slack = (t != tol.end() ? t->second : default_tol) *
                         std::max(1.0, std::abs(base_value));
    if (list) {
      std::cout << metric << ": " << base_value << " -> " << cand_value
                << "\n";
    }
    if (cand_value > base_value + slack) {
      std::cout << "REGRESSION " << metric << ": " << base_value << " -> "
                << cand_value << " (allowed <= " << base_value + slack
                << ")\n";
      ++regressions;
    }
  }

  // --fail-nonzero scans the candidate side so rows absent from the
  // baseline (new cases, new jobs) are still gated.
  for (const auto& [metric, cand_value] : cand) {
    if (fail_nonzero.count(field_of(metric)) == 0) continue;
    ++compared;
    if (cand_value > 0) {
      std::cout << "NONZERO " << metric << ": " << cand_value
                << " (must be 0)\n";
      ++regressions;
    }
  }

  std::cout << "hyperbench_diff: " << compared << " metric(s) compared, "
            << regressions << " regression(s)\n";
  if (compared < require_rows) {
    std::cerr << "error: compared " << compared << " metric(s), --require-rows "
              << require_rows << "\n";
    return 1;
  }
  return regressions == 0 ? 0 : 1;
}
