// Differential fuzzing harness: generator determinism, oracle green runs,
// fault-injection self-test (a seeded gain-rule bug must be caught and
// ddmin-shrunk to a tiny repro), and repro dump round trips.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>

#include "hyperpart/fuzz/instance_gen.hpp"
#include "hyperpart/fuzz/oracle.hpp"
#include "hyperpart/fuzz/shrinker.hpp"
#include "hyperpart/io/hmetis_io.hpp"
#include "hyperpart/util/rng.hpp"

namespace hp::fuzz {
namespace {

OracleOptions fast_oracle() {
  OracleOptions opts;
  opts.tracker_moves = 96;
  opts.run_annealing = false;  // slowest leg; covered by the CLI smoke
  opts.scratch_dir = ::testing::TempDir();
  return opts;
}

bool same_graph(const Hypergraph& a, const Hypergraph& b) {
  if (a.num_nodes() != b.num_nodes() || a.num_edges() != b.num_edges() ||
      a.num_pins() != b.num_pins()) {
    return false;
  }
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    if (!std::ranges::equal(a.pins(e), b.pins(e)) ||
        a.edge_weight(e) != b.edge_weight(e)) {
      return false;
    }
  }
  for (NodeId v = 0; v < a.num_nodes(); ++v) {
    if (a.node_weight(v) != b.node_weight(v)) return false;
  }
  return true;
}

TEST(FuzzGen, SameSeedSameInstance) {
  for (std::uint64_t seed : {1ULL, 77ULL, 123456789ULL}) {
    const FuzzInstance a = generate_instance(seed);
    const FuzzInstance b = generate_instance(seed);
    EXPECT_EQ(a.family, b.family);
    EXPECT_EQ(a.k, b.k);
    EXPECT_EQ(a.epsilon, b.epsilon);
    EXPECT_EQ(a.metric, b.metric);
    EXPECT_TRUE(same_graph(a.graph, b.graph)) << "seed " << seed;
  }
}

TEST(FuzzGen, FamilyRestrictionHolds) {
  GenOptions opts;
  opts.families = {Family::kHyperDag};
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    EXPECT_EQ(generate_instance(seed, opts).family, "hyperdag");
  }
}

TEST(FuzzGen, GeneratedGraphsValidate) {
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    const FuzzInstance inst = generate_instance(seed);
    EXPECT_TRUE(inst.graph.validate()) << describe(inst);
    EXPECT_GE(inst.k, 2u) << describe(inst);
  }
}

TEST(FuzzOracle, GeneratedInstancesPass) {
  const OracleOptions opts = fast_oracle();
  std::uint64_t state = 0xace0fba5eULL;
  for (int i = 0; i < 25; ++i) {
    const FuzzInstance inst = generate_instance(splitmix64(state));
    const OracleReport report = run_oracle(inst, opts);
    EXPECT_TRUE(report.ok()) << report.to_string();
  }
}

TEST(FuzzOracle, DegenerateCataloguePasses) {
  const OracleOptions opts = fast_oracle();
  for (const FuzzInstance& inst : degenerate_catalogue()) {
    const OracleReport report = run_oracle(inst, opts);
    EXPECT_TRUE(report.ok()) << report.to_string();
  }
}

TEST(FuzzOracle, ReportsLegsRun) {
  FuzzInstance inst = generate_instance(3);
  const OracleReport report = run_oracle(inst, fast_oracle());
  EXPECT_FALSE(report.legs_run.empty());
  EXPECT_NE(std::find(report.legs_run.begin(), report.legs_run.end(),
                      "tracker"),
            report.legs_run.end());
  EXPECT_NE(std::find(report.legs_run.begin(), report.legs_run.end(),
                      "incremental"),
            report.legs_run.end());
}

// Acceptance criterion: a deliberately injected gain-rule bug is caught and
// auto-shrunk to an instance with ≤ 12 nodes.
TEST(FuzzOracle, InjectedGainBugCaughtAndShrunk) {
  OracleOptions opts = fast_oracle();
  opts.fault = FaultInjection::kGainRule;

  std::uint64_t state = 42;
  bool caught = false;
  for (int i = 0; i < 40 && !caught; ++i) {
    const FuzzInstance inst = generate_instance(splitmix64(state));
    const OracleReport report = run_oracle(inst, opts);
    if (report.ok()) continue;
    caught = true;
    // The violation must implicate the gain rule, not some other invariant.
    bool gain_violation = false;
    for (const auto& v : report.violations) {
      gain_violation = gain_violation || v.invariant == "gain-delta";
    }
    EXPECT_TRUE(gain_violation) << report.to_string();

    ShrinkOptions sopts;
    sopts.oracle = opts;
    const ShrinkResult shrunk = shrink_instance(inst, sopts);
    EXPECT_LE(shrunk.instance.graph.num_nodes(), 12u)
        << describe(shrunk.instance);
    EXPECT_EQ(shrunk.violated_invariant, "gain-delta");
    // The minimized repro must still fail the same oracle…
    EXPECT_FALSE(run_oracle(shrunk.instance, opts).ok());
    // …and pass once the fault is removed (the bug is in the injected
    // rule, not the library).
    OracleOptions clean = opts;
    clean.fault = FaultInjection::kNone;
    EXPECT_TRUE(run_oracle(shrunk.instance, clean).ok());
  }
  EXPECT_TRUE(caught) << "injected gain bug never triggered in 40 runs";
}

TEST(FuzzShrinker, PassingInstanceReturnedUnchanged) {
  const FuzzInstance inst = generate_instance(5);
  ShrinkOptions sopts;
  sopts.oracle = fast_oracle();
  const ShrinkResult r = shrink_instance(inst, sopts);
  EXPECT_EQ(r.violated_invariant, "");
  EXPECT_TRUE(same_graph(r.instance.graph, inst.graph));
}

TEST(FuzzShrinker, DumpReproRoundTrips) {
  FuzzInstance inst = generate_instance(9);
  const std::string dir = ::testing::TempDir() + "/fuzz_dump";
  const std::string hgr = dump_repro(inst, dir, "case9", "--inject-bug gain");

  const Hypergraph back = read_hmetis_file(hgr);
  EXPECT_EQ(back.num_nodes(), inst.graph.num_nodes());
  // Empty edges are stripped on dump; everything else must survive.
  EdgeId nonempty = 0;
  for (EdgeId e = 0; e < inst.graph.num_edges(); ++e) {
    if (inst.graph.edge_size(e) > 0) ++nonempty;
  }
  EXPECT_EQ(back.num_edges(), nonempty);

  std::FILE* cmd = std::fopen((dir + "/case9.cmd").c_str(), "r");
  ASSERT_NE(cmd, nullptr);
  char line[512] = {0};
  ASSERT_NE(std::fgets(line, sizeof line, cmd), nullptr);
  std::fclose(cmd);
  const std::string cmd_line(line);
  EXPECT_NE(cmd_line.find("--replay"), std::string::npos);
  EXPECT_NE(cmd_line.find("--inject-bug gain"), std::string::npos);
  EXPECT_NE(cmd_line.find("--k " + std::to_string(inst.k)),
            std::string::npos);
}

}  // namespace
}  // namespace hp::fuzz
