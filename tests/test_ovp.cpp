// Theorem 6.4: OVP reduces to multi-constraint partitioning — a cost-0
// feasible partitioning exists iff an orthogonal pair exists.

#include <gtest/gtest.h>

#include "hyperpart/algo/xp_algorithm.hpp"
#include "hyperpart/reduction/ovp.hpp"

namespace hp {
namespace {

bool cost0_feasible(const OvpReduction& red) {
  XpOptions opts;
  opts.extra_constraints = &red.constraints;
  return xp_partition(red.graph, red.balance, 0.0, opts).status ==
         XpStatus::kSolved;
}

TEST(Ovp, FindOrthogonalPairBasics) {
  OvpInstance inst;
  inst.dimensions = 3;
  inst.vectors = {{true, false, true}, {false, true, false}};
  const auto pair = find_orthogonal_pair(inst);
  ASSERT_TRUE(pair.has_value());
  EXPECT_EQ(pair->first, 0u);
  EXPECT_EQ(pair->second, 1u);

  inst.vectors = {{true, false, true}, {true, true, false}};
  EXPECT_FALSE(find_orthogonal_pair(inst).has_value());
}

TEST(Ovp, ReductionYesInstance) {
  OvpInstance inst;
  inst.dimensions = 3;
  inst.vectors = {{true, true, false}, {true, false, true},
                  {false, false, true}};
  ASSERT_TRUE(find_orthogonal_pair(inst).has_value());  // v0 ⊥ v2
  const OvpReduction red = build_ovp_reduction(inst);
  EXPECT_TRUE(cost0_feasible(red));
}

TEST(Ovp, ReductionNoInstance) {
  // All pairs share coordinate 0.
  OvpInstance inst;
  inst.dimensions = 3;
  inst.vectors = {{true, true, false}, {true, false, true},
                  {true, false, false}};
  ASSERT_FALSE(find_orthogonal_pair(inst).has_value());
  const OvpReduction red = build_ovp_reduction(inst);
  EXPECT_FALSE(cost0_feasible(red));
}

TEST(Ovp, ReductionMatchesSolverOnRandomInstances) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const OvpInstance inst = random_ovp(4, 4, 0.5, seed);
    const bool has_pair = find_orthogonal_pair(inst).has_value();
    const OvpReduction red = build_ovp_reduction(inst);
    EXPECT_EQ(cost0_feasible(red), has_pair) << "seed " << seed;
  }
}

TEST(Ovp, ConstraintCountIsDimensionPlusConstant) {
  const OvpInstance inst = random_ovp(5, 6, 0.4, 1);
  const OvpReduction red = build_ovp_reduction(inst);
  // D dimension groups + 1 anchor group + 1 pool pairing group.
  EXPECT_EQ(red.constraints.num_constraints(), 6u + 2u);
}

TEST(Ovp, AllZeroVectorsAreOrthogonal) {
  OvpInstance inst;
  inst.dimensions = 2;
  inst.vectors = {{false, false}, {false, false}};
  const OvpReduction red = build_ovp_reduction(inst);
  EXPECT_TRUE(cost0_feasible(red));
}

}  // namespace
}  // namespace hp
