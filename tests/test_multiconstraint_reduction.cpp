// Lemma D.1: multi-constraint k-section reduces to standard (weighted)
// k-section with identical optimum.

#include <gtest/gtest.h>

#include "hyperpart/algo/brute_force.hpp"
#include "hyperpart/io/generators.hpp"
#include "hyperpart/reduction/multiconstraint_reduction.hpp"

namespace hp {
namespace {

TEST(LemmaD1, OptimaAgreeOnRandomInstances) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Hypergraph g = random_hypergraph(8, 7, 2, 3, seed + 200);
    const std::vector<std::vector<NodeId>> classes{{0, 1, 2, 3},
                                                   {4, 5, 6, 7}};
    const PartId k = 2;

    // Ground truth: brute force with explicit class constraints (exact
    // k-section per class).
    const auto single =
        BalanceConstraint::for_graph(g, k, 10.0, true);  // no global cap
    const ConstraintSet cs = ConstraintSet::for_subsets(g, classes, k, 0.0);
    BruteForceOptions opts;
    opts.extra_constraints = &cs;
    const auto direct = brute_force_partition(g, single, opts);

    // Reduced instance: single weighted k-section.
    const MulticonstraintReduction red =
        reduce_multiconstraint_to_section(g, classes, k);
    const auto reduced = brute_force_partition(red.graph, red.balance, {});

    ASSERT_EQ(direct.has_value(), reduced.has_value()) << "seed " << seed;
    if (!direct) continue;
    EXPECT_EQ(direct->cost, reduced->cost) << "seed " << seed;

    // The restricted solution satisfies the original class constraints.
    const Partition back = red.restrict_to_original(reduced->partition);
    EXPECT_TRUE(cs.satisfied(g, back));
    EXPECT_EQ(cost(g, back, CostMetric::kConnectivity), reduced->cost);
  }
}

TEST(LemmaD1, UnconstrainedNodesAreFree) {
  // Two class nodes per class, two free nodes: fillers let the free nodes
  // sit anywhere.
  const Hypergraph g = Hypergraph::from_edges(6, {{0, 2}, {1, 3}, {4, 5}});
  const std::vector<std::vector<NodeId>> classes{{0, 1}, {2, 3}};
  const MulticonstraintReduction red =
      reduce_multiconstraint_to_section(g, classes, 2);
  EXPECT_EQ(red.original_nodes, 6u);
  EXPECT_GT(red.graph.num_nodes(), 6u);  // fillers appended
  const auto res = brute_force_partition(red.graph, red.balance, {});
  ASSERT_TRUE(res.has_value());
  // Optimal: {0,2} one part, {1,3} the other, {4,5} together → cost 0.
  EXPECT_EQ(res->cost, 0);
}

TEST(LemmaD1, RejectsIndivisibleClasses) {
  const Hypergraph g = random_hypergraph(5, 3, 2, 3, 1);
  EXPECT_THROW(
      reduce_multiconstraint_to_section(g, {{0, 1, 2}}, 2),
      std::invalid_argument);
}

TEST(LemmaD1, RejectsOverlappingClasses) {
  const Hypergraph g = random_hypergraph(6, 3, 2, 3, 2);
  EXPECT_THROW(
      reduce_multiconstraint_to_section(g, {{0, 1}, {1, 2}}, 2),
      std::invalid_argument);
}

}  // namespace
}  // namespace hp
