// Satellite invariant: after 1k random moves, the ConnectivityTracker's
// incrementally maintained state — per-edge λ and pin counts, running
// costs, part weights, boundary set, and the per-node best-move index —
// equals a tracker rebuilt from scratch on the final partition.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "hyperpart/core/connectivity_tracker.hpp"
#include "hyperpart/core/metrics.hpp"
#include "hyperpart/io/generators.hpp"
#include "hyperpart/util/rng.hpp"

namespace hp {
namespace {

void run_replay(CostMetric metric, std::uint64_t seed) {
  const Hypergraph g = random_hypergraph(160, 320, 2, 9, seed);
  const PartId k = 6;
  Partition p(g.num_nodes(), k);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    p.assign(v, static_cast<PartId>((v * 7 + 3) % k));
  }

  ConnectivityTracker inc(g, p);
  inc.enable_gain_cache(metric);

  Rng rng(seed ^ 0x1badULL);
  for (int step = 0; step < 1000; ++step) {
    const NodeId v = static_cast<NodeId>(rng.next_below(g.num_nodes()));
    PartId to = static_cast<PartId>(rng.next_below(k));
    if (to == inc.part_of(v)) to = (to + 1) % k;
    inc.move(v, to);
  }

  const Partition final_p = inc.to_partition();
  ConnectivityTracker fresh(g, final_p);
  fresh.enable_gain_cache(metric);

  // Totals under both metrics, and against a from-scratch recomputation.
  EXPECT_EQ(inc.cut_net_cost(), fresh.cut_net_cost());
  EXPECT_EQ(inc.connectivity_cost(), fresh.connectivity_cost());
  EXPECT_EQ(inc.cost(metric), cost(g, final_p, metric));

  for (PartId q = 0; q < k; ++q) {
    EXPECT_EQ(inc.part_weight(q), fresh.part_weight(q)) << "part " << q;
  }

  // Per-edge λ and the full m×k pin-count table.
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    ASSERT_EQ(inc.lambda(e), fresh.lambda(e)) << "edge " << e;
    for (PartId q = 0; q < k; ++q) {
      ASSERT_EQ(inc.pins_in_part(e, q), fresh.pins_in_part(e, q))
          << "edge " << e << " part " << q;
    }
  }

  // Boundary set (order is maintenance-history dependent; compare as sets)
  // and the per-node membership flag.
  std::vector<NodeId> b_inc(inc.boundary_nodes().begin(),
                            inc.boundary_nodes().end());
  std::vector<NodeId> b_fresh(fresh.boundary_nodes().begin(),
                              fresh.boundary_nodes().end());
  std::sort(b_inc.begin(), b_inc.end());
  std::sort(b_fresh.begin(), b_fresh.end());
  EXPECT_EQ(b_inc, b_fresh);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    ASSERT_EQ(inc.is_boundary(v), fresh.is_boundary(v)) << "node " << v;
  }

  // Best-move index: gains must match exactly; the maintained argmax must
  // be a true argmax (targets may differ on ties).
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    ASSERT_EQ(inc.cached_best_gain(v), fresh.cached_best_gain(v))
        << "node " << v;
    Weight best = std::numeric_limits<Weight>::lowest();
    for (PartId q = 0; q < k; ++q) {
      if (q == inc.part_of(v)) continue;
      best = std::max(best, inc.cached_gain(v, q));
      ASSERT_EQ(inc.cached_gain(v, q), fresh.cached_gain(v, q))
          << "node " << v << " part " << q;
      ASSERT_EQ(inc.cached_gain(v, q), inc.gain(v, q, metric))
          << "node " << v << " part " << q;
    }
    ASSERT_EQ(inc.cached_best_gain(v), best) << "node " << v;
  }
}

TEST(TrackerRebuild, ConnectivityMetricAfter1kMoves) {
  run_replay(CostMetric::kConnectivity, 11);
}

TEST(TrackerRebuild, CutNetMetricAfter1kMoves) {
  run_replay(CostMetric::kCutNet, 12);
}

TEST(TrackerRebuild, WeightedGraphAfter1kMoves) {
  Hypergraph g = random_hypergraph(120, 240, 2, 7, 99);
  std::vector<Weight> nw(g.num_nodes(), 1);
  std::vector<Weight> ew(g.num_edges(), 1);
  Rng rng(7);
  for (auto& w : nw) w = 1 + static_cast<Weight>(rng.next_below(5));
  for (auto& w : ew) w = 1 + static_cast<Weight>(rng.next_below(5));
  g.set_node_weights(nw);
  g.set_edge_weights(ew);

  const PartId k = 4;
  Partition p(g.num_nodes(), k);
  for (NodeId v = 0; v < g.num_nodes(); ++v) p.assign(v, v % k);
  ConnectivityTracker inc(g, p);
  inc.enable_gain_cache(CostMetric::kConnectivity);
  for (int step = 0; step < 1000; ++step) {
    const NodeId v = static_cast<NodeId>(rng.next_below(g.num_nodes()));
    PartId to = static_cast<PartId>(rng.next_below(k));
    if (to == inc.part_of(v)) to = (to + 1) % k;
    inc.move(v, to);
  }
  const Partition final_p = inc.to_partition();
  ConnectivityTracker fresh(g, final_p);
  fresh.enable_gain_cache(CostMetric::kConnectivity);
  EXPECT_EQ(inc.connectivity_cost(), fresh.connectivity_cost());
  EXPECT_EQ(inc.connectivity_cost(),
            cost(g, final_p, CostMetric::kConnectivity));
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    ASSERT_EQ(inc.cached_best_gain(v), fresh.cached_best_gain(v))
        << "node " << v;
  }
}

}  // namespace
}  // namespace hp
