// Fault-injection bench for the hyperexp orchestrator tests. Speaks the
// full bench-harness protocol (--list / --case / --json / --smoke) via
// bench_util, but its cases misbehave on purpose:
//
//   ok           succeeds immediately
//   count_runs   succeeds and appends one byte to $HYPEREXP_FIXTURE_STATE/
//                count_runs — the resume test asserts the file stops growing
//   crash_once   SIGABRTs on the first attempt (state file marks the
//                attempt), succeeds on the retry
//   always_crash SIGABRTs on every attempt
//   clean_fail   fails a check and exits 1 without crashing — must NOT be
//                retried by the orchestrator
//   hang         sleeps far past any test timeout — must be killed
//
// Stateful cases keep their marker files under $HYPEREXP_FIXTURE_STATE
// (falling back to the working directory, which hyperexp sets to the
// output directory).

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>

#include "bench_util.hpp"

namespace {

std::string state_path(const std::string& leaf) {
  const char* dir = std::getenv("HYPEREXP_FIXTURE_STATE");
  return (dir != nullptr ? std::string(dir) + "/" : std::string()) + leaf;
}

bool exists(const std::string& path) {
  return std::ifstream(path).good();
}

void append_byte(const std::string& path) {
  std::ofstream(path, std::ios::app) << "x";
}

}  // namespace

HP_BENCH_CASE(ok, "fixture: succeeds immediately") {
  ctx.check(true, "trivial check");
}

HP_BENCH_CASE(count_runs, "fixture: counts its executions in a state file") {
  append_byte(state_path("count_runs"));
  ctx.check(true, "counted one execution");
}

HP_BENCH_CASE(crash_once, "fixture: crashes on the first attempt only") {
  const std::string marker = state_path("crash_once.attempted");
  if (!exists(marker)) {
    append_byte(marker);
    std::abort();
  }
  ctx.check(true, "survived the retry");
}

HP_BENCH_CASE(always_crash, "fixture: crashes on every attempt") {
  std::abort();
}

HP_BENCH_CASE(clean_fail, "fixture: deterministic check failure, exit 1") {
  ctx.check(false, "intentional failure");
}

HP_BENCH_CASE(hang, "fixture: sleeps past any reasonable timeout") {
  std::this_thread::sleep_for(std::chrono::seconds(600));
}

HP_BENCH_MAIN("fixture")
