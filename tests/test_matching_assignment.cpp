// Appendix H: the hierarchy assignment problem. Lemma H.1 — optimal for
// b2 = 2 via maximum-weight perfect matching.

#include <gtest/gtest.h>

#include "hyperpart/hier/assignment.hpp"
#include "hyperpart/hier/matching.hpp"
#include "hyperpart/io/generators.hpp"
#include "hyperpart/util/rng.hpp"

namespace hp {
namespace {

std::vector<std::vector<double>> random_weights(std::uint32_t n,
                                                std::uint64_t seed) {
  Rng rng{seed};
  std::vector<std::vector<double>> w(n, std::vector<double>(n, 0.0));
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = i + 1; j < n; ++j) {
      w[i][j] = w[j][i] = static_cast<double>(rng.next_below(100));
    }
  }
  return w;
}

double brute_force_matching(const std::vector<std::vector<double>>& w) {
  const auto n = static_cast<std::uint32_t>(w.size());
  std::vector<bool> used(n, false);
  const auto recurse = [&](auto&& self) -> double {
    std::uint32_t first = n;
    for (std::uint32_t i = 0; i < n; ++i) {
      if (!used[i]) {
        first = i;
        break;
      }
    }
    if (first == n) return 0.0;
    used[first] = true;
    double best = -1e18;
    for (std::uint32_t j = first + 1; j < n; ++j) {
      if (used[j]) continue;
      used[j] = true;
      best = std::max(best, w[first][j] + self(self));
      used[j] = false;
    }
    used[first] = false;
    return best;
  };
  return recurse(recurse);
}

TEST(Matching, DpMatchesBruteForce) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto w = random_weights(8, seed);
    const MatchingResult res = max_weight_perfect_matching(w);
    EXPECT_DOUBLE_EQ(res.weight, brute_force_matching(w)) << "seed " << seed;
    // mate is a perfect involution.
    for (std::uint32_t v = 0; v < 8; ++v) {
      EXPECT_EQ(res.mate[res.mate[v]], v);
      EXPECT_NE(res.mate[v], v);
    }
  }
}

TEST(Matching, LocalSearchNeverExceedsOptimum) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const auto w = random_weights(10, seed + 50);
    const double opt = max_weight_perfect_matching(w).weight;
    const double ls = matching_local_search(w, seed).weight;
    EXPECT_LE(ls, opt + 1e-9);
    EXPECT_GE(ls, 0.0);
  }
}

TEST(Matching, OddSizeThrows) {
  EXPECT_THROW(max_weight_perfect_matching(random_weights(5, 1)),
               std::invalid_argument);
}

TEST(Assignment, CountFormulaMatchesEnumeration) {
  // f(k) from Appendix H.1 equals the number of assignments the canonical
  // enumeration actually visits.
  const Hypergraph trivial = Hypergraph::from_edges(4, {{0, 1}, {2, 3}});
  const HierTopology topo{{2, 2}, {2.0, 1.0}};
  const AssignmentResult res = exact_assignment(trivial, topo);
  EXPECT_EQ(res.assignments_checked, count_nonequivalent_assignments(topo));
  EXPECT_EQ(count_nonequivalent_assignments(topo), 3u);  // 4!/(2!·2!·2!)
  const HierTopology topo23{{2, 3}, {2.0, 1.0}};
  EXPECT_EQ(count_nonequivalent_assignments(topo23),
            720u / (2 * 6 * 6));  // k!/(b1!·(b2!)^b1)
}

TEST(Assignment, ExactFindsObviousGrouping) {
  // Parts {0,1} and {2,3} heavily connected: optimal assignment pairs them
  // as bottom-level siblings, total cost 2·g2 = 2.
  Hypergraph c = Hypergraph::from_edges(4, {{0, 1}, {2, 3}});
  const HierTopology topo{{2, 2}, {10.0, 1.0}};
  const AssignmentResult res = exact_assignment(c, topo);
  EXPECT_DOUBLE_EQ(res.cost, 2.0);
}

// Lemma H.1: for d = 2, b2 = 2 the matching assignment is optimal.
TEST(Assignment, MatchingOptimalForB2Equals2) {
  const HierTopology topo{{3, 2}, {4.0, 1.0}};
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Hypergraph contracted = random_hypergraph(6, 12, 2, 4, seed + 7);
    const AssignmentResult exact = exact_assignment(contracted, topo);
    const AssignmentResult matched = matching_assignment(contracted, topo);
    EXPECT_NEAR(matched.cost, exact.cost, 1e-9) << "seed " << seed;
  }
}

TEST(Assignment, MatchingRejectsWrongTopology) {
  const Hypergraph c = Hypergraph::from_edges(6, {{0, 1}});
  EXPECT_THROW(matching_assignment(c, HierTopology({2, 3}, {2.0, 1.0})),
               std::invalid_argument);
}

TEST(Assignment, LocalSearchUpperBoundsExact) {
  const HierTopology topo{{2, 3}, {3.0, 1.0}};
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Hypergraph contracted = random_hypergraph(6, 10, 2, 4, seed + 31);
    const AssignmentResult exact = exact_assignment(contracted, topo);
    const AssignmentResult ls =
        local_search_assignment(contracted, topo, seed);
    EXPECT_GE(ls.cost + 1e-9, exact.cost);
  }
}

TEST(Assignment, ApplyAssignmentRelabels) {
  Partition p({0, 1, 1, 0}, 2);
  const Partition q = apply_assignment(p, {1, 0});
  EXPECT_EQ(q[0], 1u);
  EXPECT_EQ(q[1], 0u);
  EXPECT_EQ(q[3], 1u);
}

}  // namespace
}  // namespace hp
