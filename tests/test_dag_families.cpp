#include "hyperpart/io/dag_families.hpp"

#include <gtest/gtest.h>

#include "hyperpart/dag/hyperdag.hpp"
#include "hyperpart/dag/recognition.hpp"
#include "hyperpart/schedule/list_scheduler.hpp"

namespace hp {
namespace {

TEST(DagFamilies, StencilShape) {
  const Dag d = stencil2d_dag(4, 3, 5);
  EXPECT_EQ(d.num_nodes(), 60u);
  EXPECT_EQ(d.longest_path_nodes(), 5u);  // one layer per iteration
  // Interior cell depends on 5 previous-iteration cells.
  EXPECT_EQ(d.in_degree(4 * 3 * 1 + 4 * 1 + 1), 5u);
  // First iteration cells are sources.
  EXPECT_EQ(d.sources().size(), 12u);
}

TEST(DagFamilies, ButterflyShape) {
  const std::uint32_t logn = 4;
  const Dag d = butterfly_dag(logn);
  EXPECT_EQ(d.num_nodes(), (logn + 1) * 16u);
  EXPECT_EQ(d.longest_path_nodes(), logn + 1);
  for (NodeId v = 16; v < d.num_nodes(); ++v) {
    EXPECT_EQ(d.in_degree(v), 2u);  // binary butterflies
  }
}

TEST(DagFamilies, ButterflyHyperDagHasSmallDelta) {
  // Out-degree 2 per stage node → hyperedges of size 3, Δ ≤ 3.
  const HyperDag h = to_hyperdag(butterfly_dag(5));
  EXPECT_LE(h.graph.max_degree(), 3u);
  EXPECT_TRUE(is_hyperdag(h.graph));
}

TEST(DagFamilies, TriangularSolveCriticalPath) {
  const std::uint32_t n = 6;
  const Dag d = triangular_solve_dag(n);
  // x_{n−1} is the last unknown; the accumulation chains make the longest
  // path grow ~2n.
  EXPECT_EQ(d.num_nodes(), n + n * (n - 1) / 2);
  EXPECT_GE(d.longest_path_nodes(), n);
  EXPECT_EQ(d.sources().size(), 1u);  // only x_0 is free
}

TEST(DagFamilies, WavefrontDiagonalParallelism) {
  const Dag d = wavefront_dag(6, 6);
  EXPECT_EQ(d.num_nodes(), 36u);
  EXPECT_EQ(d.longest_path_nodes(), 11u);  // 2·6 − 1 diagonals
  // With enough processors the makespan equals the diagonal count.
  EXPECT_EQ(list_schedule(d, 6).makespan(), 11u);
}

TEST(DagFamilies, AllFamiliesYieldValidHyperDags) {
  for (const Dag& d :
       {stencil2d_dag(3, 3, 3), butterfly_dag(3), triangular_solve_dag(5),
        wavefront_dag(4, 5)}) {
    const HyperDag h = to_hyperdag(d);
    EXPECT_TRUE(valid_generator_assignment(h.graph, h.generator));
    EXPECT_TRUE(is_hyperdag(h.graph));
  }
}

TEST(DagFamilies, InvalidParametersThrow) {
  EXPECT_THROW(stencil2d_dag(0, 3, 3), std::invalid_argument);
  EXPECT_THROW(butterfly_dag(0), std::invalid_argument);
  EXPECT_THROW(triangular_solve_dag(0), std::invalid_argument);
  EXPECT_THROW(wavefront_dag(3, 0), std::invalid_argument);
}

}  // namespace
}  // namespace hp
