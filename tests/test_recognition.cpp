#include "hyperpart/dag/recognition.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "hyperpart/io/generators.hpp"
#include "hyperpart/util/rng.hpp"

namespace hp {
namespace {

TEST(Recognition, TriangleIsNotHyperDag) {
  // Figure 2: three size-2 hyperedges forming a triangle.
  const Hypergraph g = Hypergraph::from_edges(3, {{0, 1}, {1, 2}, {0, 2}});
  const auto res = recognize_hyperdag(g);
  EXPECT_FALSE(res.is_hyperdag);
  // The witness induces a subgraph with all degrees ≥ 2: here all of V.
  EXPECT_EQ(res.violating_subset.size(), 3u);
}

TEST(Recognition, EveryDagConversionIsRecognized) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Dag d = random_dag(25, 0.15, seed);
    const HyperDag h = to_hyperdag(d);
    const auto res = recognize_hyperdag(h.graph);
    EXPECT_TRUE(res.is_hyperdag) << "seed " << seed;
    EXPECT_TRUE(valid_generator_assignment(h.graph, res.generator));
  }
}

TEST(Recognition, DensestHyperDagRecognized) {
  const HyperDag h = densest_hyperdag(10);
  EXPECT_TRUE(is_hyperdag(h.graph));
}

TEST(Recognition, EdgeCountNecessaryCondition) {
  // |E| ≤ n−1 is necessary (Appendix B.1); n disjoint-ish edges on n nodes
  // with a cyclic pattern must be rejected.
  std::vector<std::vector<NodeId>> edges;
  const NodeId n = 6;
  for (NodeId v = 0; v < n; ++v) {
    edges.push_back({v, static_cast<NodeId>((v + 1) % n)});
  }
  EXPECT_FALSE(is_hyperdag(Hypergraph::from_edges(n, std::move(edges))));
}

TEST(Recognition, ViolatingSubsetHasMinDegreeTwo) {
  const Hypergraph g = Hypergraph::from_edges(
      6, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {0, 5}});
  const auto res = recognize_hyperdag(g);
  ASSERT_FALSE(res.is_hyperdag);
  // Count degrees inside the induced witness.
  for (const NodeId v : res.violating_subset) {
    std::uint32_t deg = 0;
    for (const EdgeId e : g.incident_edges(v)) {
      bool inside = true;
      for (const NodeId u : g.pins(e)) {
        bool found = false;
        for (const NodeId w : res.violating_subset) found |= (w == u);
        if (!found) {
          inside = false;
          break;
        }
      }
      if (inside) ++deg;
    }
    EXPECT_GE(deg, 2u);
  }
}

// Property: the linear-time peel agrees with the explicit Lemma B.1
// characterization on small random hypergraphs.
class RecognitionProperty : public ::testing::TestWithParam<int> {};

TEST_P(RecognitionProperty, PeelMatchesCharacterization) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Rng rng{seed};
  const NodeId n = 3 + static_cast<NodeId>(rng.next_below(7));
  const EdgeId m = 1 + static_cast<EdgeId>(rng.next_below(n));
  const Hypergraph g = random_hypergraph(
      n, m, 2, std::min<std::uint32_t>(4, n), seed + 1000);
  EXPECT_EQ(is_hyperdag(g), characterization_holds_bruteforce(g))
      << g.summary();
}

INSTANTIATE_TEST_SUITE_P(Sweep, RecognitionProperty,
                         ::testing::Range(0, 40));

TEST(Recognition, RecoveredGeneratorsAlwaysValid) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Dag d = random_binary_dag(20, seed);
    const HyperDag h = to_hyperdag(d);
    const auto res = recognize_hyperdag(h.graph);
    ASSERT_TRUE(res.is_hyperdag);
    EXPECT_TRUE(valid_generator_assignment(h.graph, res.generator));
  }
}

TEST(Recognition, SameHypergraphDifferentDags) {
  // Appendix B.1: a path of length 2 and a 2-source/1-sink DAG give the
  // same hyperDAG; recognition accepts it and returns *a* valid assignment.
  const Hypergraph g = Hypergraph::from_edges(3, {{0, 1}, {1, 2}});
  const auto res = recognize_hyperdag(g);
  EXPECT_TRUE(res.is_hyperdag);
  EXPECT_TRUE(valid_generator_assignment(g, res.generator));
}

}  // namespace
}  // namespace hp
