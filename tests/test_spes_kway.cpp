// Appendix C.4: the main reduction for k ≥ 3.

#include "hyperpart/reduction/spes_kway.hpp"

#include <gtest/gtest.h>

#include "hyperpart/algo/xp_algorithm.hpp"
#include "hyperpart/core/metrics.hpp"

namespace hp {
namespace {

SpesInstance path_instance() {
  SpesInstance inst;
  inst.num_vertices = 3;
  inst.edges = {{0, 1}, {1, 2}};
  inst.p = 1;
  return inst;
}

TEST(SpesKway, CanonicalPartitionBalancedAndCostEqualsCoverage) {
  for (const PartId k : {2u, 3u, 4u, 6u}) {
    const SpesKwayReduction red = build_spes_kway_reduction(path_instance(),
                                                            k);
    for (std::uint32_t e = 0; e < 2; ++e) {
      const Partition p = red.partition_from_edges({e});
      EXPECT_TRUE(red.balance.satisfied(red.graph, p))
          << "k=" << k << " e=" << e;
      EXPECT_EQ(cost(red.graph, p, CostMetric::kConnectivity), 2)
          << "k=" << k << " e=" << e;
      EXPECT_EQ(cost(red.graph, p, CostMetric::kCutNet), 2);
    }
  }
}

TEST(SpesKway, KEquals2MatchesBaseConstruction) {
  const SpesKwayReduction red = build_spes_kway_reduction(path_instance(), 2);
  EXPECT_EQ(red.extra_blocks.size(), 0u);
  EXPECT_EQ(red.balance.k(), 2u);
}

TEST(SpesKway, OptimaCertifiedByXpForK3) {
  const SpesInstance inst = path_instance();
  const auto opt = spes_optimum(inst);
  ASSERT_TRUE(opt.has_value());
  const SpesKwayReduction red = build_spes_kway_reduction(inst, 3);

  XpOptions opts;
  opts.metric = CostMetric::kCutNet;
  opts.max_configurations = 20'000'000;
  const auto solved = xp_partition(red.graph, red.balance,
                                   static_cast<double>(*opt), opts);
  EXPECT_EQ(solved.status, XpStatus::kSolved);
  EXPECT_DOUBLE_EQ(solved.cost, static_cast<double>(*opt));
  const auto below = xp_partition(red.graph, red.balance,
                                  static_cast<double>(*opt) - 1.0, opts);
  EXPECT_EQ(below.status, XpStatus::kNoSolution);
}

TEST(SpesKway, ExtraComponentCountMatchesK0) {
  // eps = 0.1 → k₀ = ⌈k/1.1⌉; extra blocks = k₀ − 2.
  const SpesKwayReduction k6 = build_spes_kway_reduction(path_instance(), 6);
  EXPECT_EQ(k6.extra_blocks.size(), (6 * 10 + 10) / 11 - 2);
  const SpesKwayReduction k3 = build_spes_kway_reduction(path_instance(), 3);
  EXPECT_EQ(k3.extra_blocks.size(), 1u);  // k₀ = ⌈30/11⌉ = 3
}

TEST(SpesKway, RejectsBadParameters) {
  EXPECT_THROW(build_spes_kway_reduction(path_instance(), 1),
               std::invalid_argument);
  SpesInstance bad = path_instance();
  bad.p = 5;
  EXPECT_THROW(build_spes_kway_reduction(bad, 3), std::invalid_argument);
}

}  // namespace
}  // namespace hp
