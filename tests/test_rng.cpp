#include "hyperpart/util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

namespace hp {
namespace {

TEST(Rng, DeterministicForFixedSeed) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a() == b();
  EXPECT_LT(equal, 4);
}

TEST(Rng, NextBelowStaysInBounds) {
  Rng rng{7};
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng{11};
  std::vector<int> hits(5, 0);
  for (int i = 0; i < 2000; ++i) ++hits[rng.next_below(5)];
  for (const int h : hits) EXPECT_GT(h, 200);
}

TEST(Rng, NextInInclusiveRange) {
  Rng rng{3};
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 500; ++i) {
    const auto x = rng.next_in(-2, 2);
    EXPECT_GE(x, -2);
    EXPECT_LE(x, 2);
    saw_lo |= x == -2;
    saw_hi |= x == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng{5};
  for (int i = 0; i < 500; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng{9};
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  rng.shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 50; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a{13};
  Rng child = a.fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a() == child();
  EXPECT_LT(equal, 4);
}

}  // namespace
}  // namespace hp
