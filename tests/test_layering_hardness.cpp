// Theorem E.1: finding the best (flexible) layering is itself hard — the
// 3-partition group-gadget construction.

#include <gtest/gtest.h>

#include "hyperpart/dag/layering.hpp"
#include "hyperpart/reduction/layering_hardness.hpp"

namespace hp {
namespace {

ThreePartitionInstance solvable() {
  ThreePartitionInstance inst;
  inst.target = 10;
  inst.numbers = {3, 3, 4, 3, 3, 4};  // t = 2
  return inst;
}

ThreePartitionInstance unsolvable() {
  ThreePartitionInstance inst;
  inst.target = 13;
  inst.numbers = {4, 4, 4, 4, 4, 6};  // triples sum 12 or 14, never 13
  return inst;
}

TEST(LayeringHardness, ConstructionShape) {
  const LayeringHardnessReduction red = build_layering_hardness(solvable());
  EXPECT_EQ(red.phases, 2u);
  EXPECT_EQ(red.num_layers, 6u);
  EXPECT_EQ(red.dag.longest_path_nodes(), red.num_layers);
  // Every first-level group is flexible (several possible layers).
  EXPECT_GT(num_flexible_nodes(red.dag), 0u);
  // The second-level groups dominate: m > t·b.
  EXPECT_GT(red.multiplier, 2u * 10u);
}

TEST(LayeringHardness, GroupLayerWindows) {
  const LayeringHardnessReduction red = build_layering_hardness(solvable());
  const auto lo = red.dag.earliest_layers();
  const auto hi = red.dag.latest_layers();
  for (std::size_t i = 0; i < red.first_level.size(); ++i) {
    for (const NodeId v : red.first_level[i]) {
      EXPECT_EQ(lo[v], 1u);
      EXPECT_EQ(hi[v], red.num_layers - 3);
    }
    for (const NodeId v : red.second_level[i]) {
      EXPECT_EQ(lo[v], 2u);
      EXPECT_EQ(hi[v], red.num_layers - 2);
    }
  }
}

TEST(LayeringHardness, FeasibleIffThreePartition) {
  EXPECT_TRUE(build_layering_hardness(solvable()).feasible_layering_exists());
  EXPECT_FALSE(
      build_layering_hardness(unsolvable()).feasible_layering_exists());
}

TEST(LayeringHardness, SolutionYieldsValidPhases) {
  const auto inst = solvable();
  const LayeringHardnessReduction red = build_layering_hardness(inst);
  const auto triplets = solve_three_partition(inst);
  ASSERT_TRUE(triplets.has_value());
  const auto phases = red.phases_from_solution(*triplets);
  EXPECT_TRUE(red.valid_phase_assignment(phases));
}

TEST(LayeringHardness, InvalidPhasesRejected) {
  const LayeringHardnessReduction red = build_layering_hardness(solvable());
  // All numbers in phase 0 overloads it.
  EXPECT_FALSE(red.valid_phase_assignment({0, 0, 0, 0, 0, 0}));
  EXPECT_FALSE(red.valid_phase_assignment({0, 0, 0}));
}

TEST(LayeringHardness, RandomSolvableInstancesFeasible) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto inst = random_solvable_three_partition(3, 16, seed);
    EXPECT_TRUE(build_layering_hardness(inst).feasible_layering_exists())
        << "seed " << seed;
  }
}

TEST(LayeringHardness, ConstructionIsAHyperDag) {
  const LayeringHardnessReduction red = build_layering_hardness(solvable());
  EXPECT_TRUE(valid_generator_assignment(red.hyperdag.graph,
                                         red.hyperdag.generator));
}

}  // namespace
}  // namespace hp
