#include "hyperpart/algo/kl_refiner.hpp"

#include <gtest/gtest.h>

#include "hyperpart/algo/greedy.hpp"
#include "hyperpart/core/builder.hpp"
#include "hyperpart/io/generators.hpp"

namespace hp {
namespace {

TEST(Kl, NeverIncreasesCostAndPreservesWeightsExactly) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Hypergraph g = random_hypergraph(30, 45, 2, 4, seed + 700);
    const auto balance = BalanceConstraint::for_graph(g, 2, 0.0);
    auto p = random_balanced_partition(g, balance, seed);
    ASSERT_TRUE(p.has_value());
    const auto weights_before = p->part_weights(g);
    const Weight before = cost(g, *p, CostMetric::kConnectivity);
    const Weight after = kl_refine(g, *p, {});
    EXPECT_LE(after, before);
    EXPECT_EQ(after, cost(g, *p, CostMetric::kConnectivity));
    EXPECT_EQ(p->part_weights(g), weights_before);  // swaps are exact
  }
}

TEST(Kl, SolvesPlantedBisectionAtEpsilonZero) {
  // Two 4-cliques of hyperedges joined by one bridge; start from the
  // alternating partition. ε = 0: FM would need transient imbalance — KL
  // swaps work natively.
  HypergraphBuilder b;
  b.add_nodes(8);
  for (NodeId base : {0u, 4u}) {
    for (NodeId i = 0; i < 4; ++i) {
      for (NodeId j = i + 1; j < 4; ++j) {
        b.add_edge2(base + i, base + j);
      }
    }
  }
  b.add_edge2(3, 4);
  const Hypergraph g = b.build();
  Partition p({0, 1, 0, 1, 0, 1, 0, 1}, 2);
  const Weight after = kl_refine(g, p, {});
  EXPECT_EQ(after, 1);
}

TEST(Kl, RespectsNodeWeights) {
  Hypergraph g = random_hypergraph(12, 16, 2, 3, 3);
  std::vector<Weight> nw(12, 1);
  nw[0] = 5;
  nw[6] = 5;
  g.set_node_weights(std::move(nw));
  Partition p(12, 2);
  for (NodeId v = 0; v < 12; ++v) p.assign(v, v < 6 ? 0 : 1);
  const auto before = p.part_weights(g);
  kl_refine(g, p, {});
  EXPECT_EQ(p.part_weights(g), before);
}

TEST(Kl, CutNetMetricSupported) {
  const Hypergraph g = spmv_hypergraph(10, 10, 50, 4);
  const auto balance = BalanceConstraint::for_graph(g, 2, 0.0);
  auto p = random_balanced_partition(g, balance, 2);
  ASSERT_TRUE(p.has_value());
  KlConfig cfg;
  cfg.metric = CostMetric::kCutNet;
  const Weight before = cost(g, *p, CostMetric::kCutNet);
  const Weight after = kl_refine(g, *p, cfg);
  EXPECT_LE(after, before);
  EXPECT_EQ(after, cost(g, *p, CostMetric::kCutNet));
}

}  // namespace
}  // namespace hp
