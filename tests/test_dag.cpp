#include "hyperpart/dag/dag.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "hyperpart/io/generators.hpp"

namespace hp {
namespace {

TEST(Dag, BasicStructure) {
  const Dag d = Dag::from_edges(5, {{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}});
  EXPECT_EQ(d.num_nodes(), 5u);
  EXPECT_EQ(d.num_edges(), 5u);
  EXPECT_EQ(d.out_degree(0), 2u);
  EXPECT_EQ(d.in_degree(3), 2u);
  EXPECT_EQ(d.sources(), std::vector<NodeId>{0});
  EXPECT_EQ(d.sinks(), std::vector<NodeId>{4});
}

TEST(Dag, CycleDetection) {
  EXPECT_THROW(Dag::from_edges(3, {{0, 1}, {1, 2}, {2, 0}}),
               std::invalid_argument);
  EXPECT_THROW(Dag::from_edges(2, {{0, 0}}), std::invalid_argument);
}

TEST(Dag, DuplicateEdgesRemoved) {
  const Dag d = Dag::from_edges(2, {{0, 1}, {0, 1}});
  EXPECT_EQ(d.num_edges(), 1u);
}

TEST(Dag, TopologicalOrderRespectsEdges) {
  const Dag d = random_dag(40, 0.15, 7);
  const auto order = d.topological_order();
  ASSERT_EQ(order.size(), 40u);
  std::vector<std::uint32_t> position(40);
  for (std::uint32_t i = 0; i < order.size(); ++i) position[order[i]] = i;
  for (const auto& [u, v] : d.edge_list()) {
    EXPECT_LT(position[u], position[v]);
  }
}

TEST(Dag, LayersOfDiamond) {
  const Dag d = Dag::from_edges(5, {{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}});
  EXPECT_EQ(d.longest_path_nodes(), 4u);
  const auto lo = d.earliest_layers();
  EXPECT_EQ(lo[0], 0u);
  EXPECT_EQ(lo[1], 1u);
  EXPECT_EQ(lo[3], 2u);
  EXPECT_EQ(lo[4], 3u);
  const auto hi = d.latest_layers();
  EXPECT_EQ(hi[0], 0u);
  EXPECT_EQ(hi[4], 3u);
}

TEST(Dag, LatestBoundsEarliest) {
  const Dag d = random_dag(30, 0.1, 3);
  const auto lo = d.earliest_layers();
  const auto hi = d.latest_layers();
  for (NodeId v = 0; v < 30; ++v) EXPECT_LE(lo[v], hi[v]);
}

TEST(Dag, ChainGenerator) {
  const Dag d = chain_dag(6);
  EXPECT_EQ(d.longest_path_nodes(), 6u);
  EXPECT_EQ(d.num_edges(), 5u);
}

TEST(Dag, ForkJoinGenerator) {
  const Dag d = fork_join_dag(3, 4);
  EXPECT_EQ(d.num_nodes(), 14u);
  EXPECT_EQ(d.longest_path_nodes(), 6u);
  EXPECT_EQ(d.sources().size(), 1u);
  EXPECT_EQ(d.sinks().size(), 1u);
}

TEST(Dag, OutTreeGeneratorHasInDegreeOne) {
  const Dag d = random_out_tree(25, 9);
  for (NodeId v = 1; v < 25; ++v) EXPECT_EQ(d.in_degree(v), 1u);
  EXPECT_EQ(d.in_degree(0), 0u);
  EXPECT_EQ(d.num_edges(), 24u);
}

TEST(Dag, LayeredGeneratorLayersExact) {
  const Dag d = layered_dag(5, 4, 0.5, 11);
  const auto lo = d.earliest_layers();
  for (NodeId v = 0; v < d.num_nodes(); ++v) {
    EXPECT_EQ(lo[v], v / 4) << "node " << v;
  }
}

TEST(Dag, BinaryDagInDegreeAtMostTwo) {
  const Dag d = random_binary_dag(30, 13);
  for (NodeId v = 0; v < 30; ++v) EXPECT_LE(d.in_degree(v), 2u);
}

TEST(Dag, EdgeListRoundTrip) {
  const Dag d = random_dag(20, 0.2, 5);
  const Dag d2 = Dag::from_edges(20, d.edge_list());
  EXPECT_EQ(d2.num_edges(), d.num_edges());
  for (NodeId v = 0; v < 20; ++v) {
    EXPECT_EQ(d2.out_degree(v), d.out_degree(v));
  }
}

}  // namespace
}  // namespace hp
