// Lemma G.1: the XP algorithm under the hierarchical cost function, and
// the Appendix I.2 general-topology machinery.

#include "hyperpart/hier/xp_hier.hpp"

#include <gtest/gtest.h>

#include "hyperpart/algo/brute_force.hpp"
#include "hyperpart/hier/hier_cost.hpp"
#include "hyperpart/io/generators.hpp"
#include "hyperpart/util/rng.hpp"

namespace hp {
namespace {

TEST(XpHier, MatchesBruteForceHierOptimum) {
  const HierTopology topo{{2, 2}, {4.0, 1.0}};
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Hypergraph g = random_hypergraph(8, 6, 2, 3, seed + 300);
    const auto balance = BalanceConstraint::for_graph(g, 4, 0.4, true);

    BruteForceOptions bopts;
    bopts.break_symmetry = false;  // leaf positions matter
    bopts.custom_cost = [&](const Partition& p) {
      return hier_cost(g, p, topo);
    };
    const auto brute = brute_force_partition(g, balance, bopts);
    ASSERT_TRUE(brute.has_value());

    // Budget = the known optimum keeps the configuration enumeration
    // small; the XP search must realize exactly that cost.
    const XpResult xp =
        xp_hier_partition(g, topo, balance, brute->cost_value + 1e-6);
    ASSERT_EQ(xp.status, XpStatus::kSolved) << "seed " << seed;
    EXPECT_NEAR(xp.cost, brute->cost_value, 1e-9) << "seed " << seed;
    EXPECT_NEAR(hier_cost(g, xp.partition, topo), xp.cost, 1e-9);
    EXPECT_TRUE(balance.satisfied(g, xp.partition));
  }
}

TEST(XpHier, TightBudgetSeparates) {
  const HierTopology topo{{2, 2}, {3.0, 1.0}};
  const Hypergraph g = random_hypergraph(8, 5, 2, 3, 42);
  const auto balance = BalanceConstraint::for_graph(g, 4, 0.4, true);
  const XpResult opt = xp_hier_partition(g, topo, balance, 1000.0);
  ASSERT_EQ(opt.status, XpStatus::kSolved);
  if (opt.cost > 0) {
    const XpResult below =
        xp_hier_partition(g, topo, balance, opt.cost - 0.5);
    EXPECT_EQ(below.status, XpStatus::kNoSolution);
  }
  const XpResult at = xp_hier_partition(g, topo, balance, opt.cost);
  EXPECT_EQ(at.status, XpStatus::kSolved);
}

TEST(XpHier, FlatTopologyReducesToStandard) {
  const Hypergraph g = random_hypergraph(9, 7, 2, 3, 17);
  const auto balance = BalanceConstraint::for_graph(g, 3, 0.4, true);
  const XpResult flat =
      xp_hier_partition(g, HierTopology::flat(3), balance, 1000.0);
  const XpResult standard = xp_partition(g, balance, 1000.0);
  ASSERT_EQ(flat.status, XpStatus::kSolved);
  ASSERT_EQ(standard.status, XpStatus::kSolved);
  EXPECT_DOUBLE_EQ(flat.cost, standard.cost);
}

TEST(GeneralRefine, NeverIncreasesAndKeepsBalance) {
  const HierTopology tree{{2, 2}, {5.0, 1.0}};
  const GeneralTopology topo = GeneralTopology::from_tree(tree);
  const Hypergraph g = random_hypergraph(30, 40, 2, 4, 23);
  const auto balance = BalanceConstraint::for_graph(g, 4, 0.3, true);
  Rng rng{9};
  std::vector<PartId> assign(30);
  for (auto& a : assign) a = static_cast<PartId>(rng.next_below(4));
  Partition p(std::move(assign), 4);
  const double before = general_topology_cost(g, p, topo);
  const double after = general_topology_refine(g, p, topo, balance);
  EXPECT_LE(after, before + 1e-9);
  EXPECT_NEAR(after, general_topology_cost(g, p, topo), 1e-9);
  EXPECT_TRUE(balance.satisfied(g, p));
}

TEST(GeneralRefine, AgreesWithHierRefineOnTreeMetric) {
  // On a tree-induced metric the MST costs equal hierarchical costs, so
  // the refiners optimize the same function.
  const HierTopology tree{{2, 2}, {4.0, 1.0}};
  const GeneralTopology topo = GeneralTopology::from_tree(tree);
  const Hypergraph g = random_hypergraph(20, 25, 2, 3, 31);
  Rng rng{3};
  std::vector<PartId> assign(20);
  for (auto& a : assign) a = static_cast<PartId>(rng.next_below(4));
  const Partition p(std::move(assign), 4);
  EXPECT_NEAR(general_topology_cost(g, p, topo), hier_cost(g, p, tree),
              1e-9);
}

}  // namespace
}  // namespace hp
