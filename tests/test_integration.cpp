// Cross-module integration and consistency tests: the three exact solvers
// agree pairwise, pipelines compose end to end, and constructions survive
// serialization.

#include <gtest/gtest.h>

#include <sstream>
#include <tuple>

#include "hyperpart/algo/branch_and_bound.hpp"
#include "hyperpart/algo/brute_force.hpp"
#include "hyperpart/algo/multilevel.hpp"
#include "hyperpart/algo/xp_algorithm.hpp"
#include "hyperpart/dag/hyperdag.hpp"
#include "hyperpart/dag/layerwise_partitioner.hpp"
#include "hyperpart/dag/recognition.hpp"
#include "hyperpart/io/dag_families.hpp"
#include "hyperpart/io/generators.hpp"
#include "hyperpart/io/hmetis_io.hpp"
#include "hyperpart/reduction/fig_constructions.hpp"
#include "hyperpart/reduction/spes_delta2.hpp"
#include "hyperpart/schedule/bsp.hpp"
#include "hyperpart/schedule/fixed_partition_makespan.hpp"
#include "hyperpart/schedule/list_scheduler.hpp"

namespace hp {
namespace {

// Three-way agreement of the exact solvers on random instances.
class ExactSolverAgreement
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ExactSolverAgreement, BruteBnbXpAgree) {
  const auto [seed, k] = GetParam();
  const Hypergraph g =
      random_hypergraph(9, 8, 2, 4, static_cast<std::uint64_t>(seed) + 900);
  const auto balance =
      BalanceConstraint::for_graph(g, static_cast<PartId>(k), 0.3, true);
  const auto brute = brute_force_partition(g, balance, {});
  ASSERT_TRUE(brute.has_value());
  const auto bnb = branch_and_bound_partition(g, balance, {});
  ASSERT_TRUE(bnb.has_value());
  EXPECT_EQ(bnb->cost, brute->cost);
  const auto xp = xp_partition(g, balance, 100.0);
  ASSERT_EQ(xp.status, XpStatus::kSolved);
  EXPECT_DOUBLE_EQ(xp.cost, static_cast<double>(brute->cost));
  // Every heuristic sits at or above the exact optimum.
  const auto ml = multilevel_partition(g, balance, {});
  ASSERT_TRUE(ml.has_value());
  EXPECT_GE(cost(g, *ml, CostMetric::kConnectivity), brute->cost);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ExactSolverAgreement,
                         ::testing::Combine(::testing::Range(0, 6),
                                            ::testing::Values(2, 3)));

// Full application pipeline: kernel DAG → hyperDAG → layer-wise partition
// → fixed schedule → BSP cost; every stage's invariants hold.
TEST(Integration, StencilPipelineEndToEnd) {
  const Dag dag = stencil2d_dag(5, 5, 6);
  const HyperDag h = to_hyperdag(dag);
  ASSERT_TRUE(is_hyperdag(h.graph));

  const auto layers = dag.earliest_layers();
  LayerwiseConfig cfg;
  cfg.epsilon = 0.2;
  const auto res = layerwise_partition(h.graph, dag, layers, 2, cfg);
  ASSERT_TRUE(res.has_value());

  const Schedule schedule = list_schedule_fixed(dag, res->partition);
  ASSERT_TRUE(valid_schedule(dag, schedule, 2));
  const BspCostBreakdown bsp = bsp_cost(dag, schedule, 2, {1.0, 1.0});
  // The BSP values-moved equals the hyperDAG connectivity cost of the
  // partition — the paper's central modeling identity.
  EXPECT_EQ(static_cast<Weight>(bsp.total_values_moved),
            cost(h.graph, res->partition, CostMetric::kConnectivity));
}

// Schedule-based constraint (Definition 5.4) on the Figure 6 construction:
// the branch coloring is feasible for small ε while the half-splitting
// layer-wise shape is not needed — the constructive side of Section 5.2.
TEST(Integration, Fig6BranchColoringScheduleFeasible) {
  const Fig6Construction fig = build_fig6(8);
  const auto feasible =
      schedule_based_feasible(fig.dag, fig.branch_partition, 0.25);
  ASSERT_TRUE(feasible.has_value());
  EXPECT_TRUE(*feasible);
}

// Construction graphs round-trip through the hMETIS format unchanged.
TEST(Integration, Delta2ConstructionSerializes) {
  SpesInstance inst;
  inst.num_vertices = 3;
  inst.edges = {{0, 1}, {1, 2}};
  inst.p = 1;
  const SpesDelta2Reduction red = build_spes_delta2(inst);
  std::stringstream ss;
  write_hmetis(ss, red.graph);
  const Hypergraph back = read_hmetis(ss);
  EXPECT_EQ(back.num_pins(), red.graph.num_pins());
  EXPECT_TRUE(is_hyperdag(back));
  EXPECT_LE(back.max_degree(), 2u);
}

// Weighted instances flow through the whole heuristic stack.
TEST(Integration, WeightedGraphThroughMultilevel) {
  Hypergraph g = random_hypergraph(80, 120, 2, 5, 33);
  std::vector<Weight> nw(80);
  for (NodeId v = 0; v < 80; ++v) nw[v] = 1 + v % 5;
  g.set_node_weights(std::move(nw));
  std::vector<Weight> ew(120);
  for (EdgeId e = 0; e < 120; ++e) ew[e] = 1 + e % 3;
  g.set_edge_weights(std::move(ew));
  const auto balance = BalanceConstraint::for_graph(g, 3, 0.1, true);
  const auto p = multilevel_partition(g, balance, {});
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(balance.satisfied(g, *p));
}

}  // namespace
}  // namespace hp
