// Property tests for the application-shaped workload catalogue
// (src/workload): spec parsing, per-family structural invariants,
// thread-count/seed determinism, the HPBH round trip with streamed ==
// offline cost agreement, and the fuzz generator's forked per-family RNG
// streams (cross-version replay stability).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "hyperpart/core/metrics.hpp"
#include "hyperpart/dag/recognition.hpp"
#include "hyperpart/fuzz/instance_gen.hpp"
#include "hyperpart/stream/binary_format.hpp"
#include "hyperpart/stream/stream_partitioner.hpp"
#include "hyperpart/workload/workload.hpp"

namespace hp::workload {
namespace {

TEST(WorkloadSpec, ParsesFamilyPresetAndScale) {
  const WorkloadSpec a = parse_spec("spmv:banded");
  EXPECT_EQ(a.family, Family::kSpmv);
  EXPECT_EQ(a.preset, "banded");
  EXPECT_EQ(a.scale, 1u);

  const WorkloadSpec b = parse_spec("netlist:rent@4");
  EXPECT_EQ(b.family, Family::kNetlist);
  EXPECT_EQ(b.preset, "rent");
  EXPECT_EQ(b.scale, 4u);

  EXPECT_THROW((void)parse_spec("spmv"), std::invalid_argument);
  EXPECT_THROW((void)parse_spec("bogus:x"), std::invalid_argument);
  EXPECT_THROW((void)parse_spec("spmv:nope"), std::invalid_argument);
  EXPECT_THROW((void)parse_spec("spmv:banded@0"), std::invalid_argument);
  EXPECT_THROW((void)parse_spec(":banded"), std::invalid_argument);
}

TEST(WorkloadCatalogue, EveryPresetGeneratesAndValidates) {
  const auto names = catalogue();
  ASSERT_EQ(names.size(), 10u);  // 3 + 2 + 3 + 2
  for (const std::string& name : names) {
    WorkloadSpec spec = parse_spec(name);
    spec.target_nodes = 64;
    spec.seed = 7;
    const Workload w = generate(spec);
    EXPECT_TRUE(w.graph.validate()) << name;
    EXPECT_GT(w.graph.num_nodes(), 0u) << name;
    EXPECT_GT(w.graph.num_edges(), 0u) << name;
    EXPECT_EQ(w.name, name);
    EXPECT_GE(w.suggested_k, 2u) << name;
  }
}

TEST(WorkloadCatalogue, BitIdenticalAcrossThreadCountsAndSeedSensitive) {
  for (const Family f : kAllFamilies) {
    WorkloadSpec spec;
    spec.family = f;
    spec.target_nodes = 3000;
    spec.seed = 99;
    spec.threads = 1;
    const std::uint64_t base = generate(spec).graph.content_hash();
    for (const unsigned threads : {2u, 4u, 8u}) {
      spec.threads = threads;
      EXPECT_EQ(generate(spec).graph.content_hash(), base)
          << to_string(f) << " at threads=" << threads;
    }
    spec.threads = 4;
    const std::uint64_t again = generate(spec).graph.content_hash();
    EXPECT_EQ(again, base) << to_string(f) << " repeat";
    spec.seed = 100;
    EXPECT_NE(generate(spec).graph.content_hash(), base)
        << to_string(f) << " must depend on the seed";
  }
}

TEST(SpmvWorkload, BandedRowNetStructure) {
  WorkloadSpec spec = parse_spec("spmv:banded");
  spec.target_nodes = 1000;
  spec.seed = 3;
  const Workload w = generate(spec);
  const Hypergraph& g = w.graph;
  ASSERT_EQ(g.num_nodes(), 1000u);  // one node per column
  ASSERT_EQ(g.num_edges(), 1000u);  // one net per row
  std::vector<Weight> col_nnz(g.num_nodes(), 0);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto pins = g.pins(e);
    EXPECT_GE(pins.size(), 1u) << "row " << e << " has no nonzeros";
    EXPECT_LE(pins.size(), 17u) << "bandwidth 8 allows at most 17 pins";
    for (const NodeId v : pins) {
      // banded: |row - col| <= 8
      const auto diff = v > e ? v - e : e - v;
      EXPECT_LE(diff, 8u);
      ++col_nnz[v];
    }
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(g.node_weight(v), std::max<Weight>(col_nnz[v], 1))
        << "column weight must equal its nonzero count";
  }
}

TEST(NetlistWorkload, PinDistributionMatchesSpecBounds) {
  WorkloadSpec spec = parse_spec("netlist:rent");
  spec.target_nodes = 4096;
  spec.seed = 11;
  const Workload w = generate(spec);
  const Hypergraph& g = w.graph;
  const NodeId n = g.num_nodes();
  ASSERT_EQ(n, 4096u);
  const EdgeId globals = std::max<EdgeId>(1, n / 1024);
  ASSERT_EQ(g.num_edges(), n + globals);

  // Signal nets (ids [0, n)): mostly 2-4 pins, never more than 12.
  EdgeId small = 0;
  for (EdgeId e = 0; e < n; ++e) {
    const auto size = g.pins(e).size();
    EXPECT_GE(size, 1u);
    EXPECT_LE(size, 12u);
    if (size <= 4) ++small;
  }
  EXPECT_GE(small, (n * 3) / 4) << "at least 75% of signal nets are 2-4 pin";

  // Global power/clock nets span a constant fraction of all cells.
  for (EdgeId e = n; e < g.num_edges(); ++e) {
    const auto size = g.pins(e).size();
    EXPECT_GE(size, n / 40) << "global net too small";
    EXPECT_LE(size, n / 10) << "global net too large";
  }

  for (NodeId v = 0; v < n; ++v) {
    EXPECT_GE(g.node_weight(v), 1);
    EXPECT_LE(g.node_weight(v), 8);
  }
}

TEST(DataflowWorkload, EveryPresetIsARecognizedHyperDag) {
  for (const std::string& preset : presets(Family::kDataflow)) {
    WorkloadSpec spec;
    spec.family = Family::kDataflow;
    spec.preset = preset;
    spec.target_nodes = 600;
    spec.seed = 5;
    const Workload w = generate(spec);
    ASSERT_TRUE(w.dag.has_value()) << preset;
    EXPECT_EQ(w.dag->num_nodes(), w.graph.num_nodes()) << preset;
    const auto rec = recognize_hyperdag(w.graph);
    EXPECT_TRUE(rec.is_hyperdag) << preset;
    EXPECT_TRUE(valid_generator_assignment(w.graph, rec.generator)) << preset;
    // Definition 3.2: one hyperedge per non-sink node.
    EXPECT_EQ(w.graph.num_edges(),
              w.dag->num_nodes() - w.dag->sinks().size())
        << preset;
  }
}

TEST(PowerlawWorkload, DegreeTailExponentWithinTolerance) {
  WorkloadSpec spec = parse_spec("powerlaw:zipf");
  spec.target_nodes = 8192;
  spec.seed = 13;
  const Workload w = generate(spec);
  const Hypergraph& g = w.graph;
  std::vector<double> degree(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    degree[v] = static_cast<double>(g.incident_edges(v).size());
  }
  std::sort(degree.begin(), degree.end(), std::greater<>());
  // Log-log regression of degree against popularity rank over the head of
  // the distribution; the generator draws pins from f(x) ∝ (x+1)^{-0.8},
  // so the slope must sit near -0.8.
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  int count = 0;
  for (std::size_t r = 1; r <= 512; ++r) {
    if (degree[r] < 1.0) break;
    const double x = std::log(static_cast<double>(r + 1));
    const double y = std::log(degree[r]);
    sx += x, sy += y, sxx += x * x, sxy += x * y;
    ++count;
  }
  ASSERT_GE(count, 100);
  const double slope = (count * sxy - sx * sy) / (count * sxx - sx * sx);
  EXPECT_LT(slope, -0.5) << "tail too flat (slope " << slope << ")";
  EXPECT_GT(slope, -1.2) << "tail too steep (slope " << slope << ")";
}

TEST(WorkloadStream, RoundTripAndStreamedEqualsOffline) {
  for (const Family f : kAllFamilies) {
    WorkloadSpec spec;
    spec.family = f;
    spec.target_nodes = 400;
    spec.seed = 21;
    const Workload w = generate(spec);
    const std::string path =
        "workload_roundtrip_" + std::string(to_string(f)) + ".hpb";
    stream::write_binary_file(path, w.graph);
    stream::MappedHypergraph mapped(path);
    EXPECT_EQ(mapped.materialize().content_hash(), w.graph.content_hash())
        << to_string(f) << " HPBH round trip";

    const auto balance = BalanceConstraint::for_total_weight(
        mapped.total_node_weight(), 4, 0.3, /*relaxed=*/true);
    stream::StreamConfig scfg;
    const auto res = stream::stream_partition(mapped, balance, scfg);
    ASSERT_TRUE(res.has_value()) << to_string(f);
    // k = 4 <= 64: the streamed running cost is exact.
    EXPECT_EQ(res->streamed_cost, res->offline_cost) << to_string(f);
    EXPECT_EQ(res->offline_cost,
              cost_of(mapped, res->partition, CostMetric::kConnectivity))
        << to_string(f);
    std::remove(path.c_str());
  }
}

// Satellite fix: family generators draw from a forked per-family RNG
// stream, so an instance is a pure function of (seed, family). Generating
// with a restricted family set must yield byte-identical instances to
// generating with the full set whenever the same family gets selected —
// i.e. adding generator legs (as this PR does) never perturbs existing
// legs' instances, and corpus replay seeds stay valid across versions.
TEST(FuzzWorkloadFamilies, ReplayStableAcrossFamilySetChanges) {
  using fuzz::GenOptions;
  for (const fuzz::Family f :
       {fuzz::Family::kRandomUniform, fuzz::Family::kHyperDag,
        fuzz::Family::kSpmv, fuzz::Family::kNetlist, fuzz::Family::kDataflow,
        fuzz::Family::kPowerLaw}) {
    GenOptions only;
    only.families = {f};
    GenOptions all;  // empty = every family, the "newer version" set
    int matched = 0;
    for (std::uint64_t seed = 1; seed <= 64; ++seed) {
      const auto wide = fuzz::generate_instance(seed, all);
      if (wide.family != fuzz::to_string(f)) continue;
      ++matched;
      const auto narrow = fuzz::generate_instance(seed, only);
      EXPECT_EQ(narrow.family, wide.family);
      EXPECT_EQ(narrow.k, wide.k) << fuzz::to_string(f) << " seed " << seed;
      EXPECT_EQ(narrow.epsilon, wide.epsilon)
          << fuzz::to_string(f) << " seed " << seed;
      EXPECT_EQ(narrow.metric, wide.metric)
          << fuzz::to_string(f) << " seed " << seed;
      EXPECT_EQ(narrow.graph.content_hash(), wide.graph.content_hash())
          << fuzz::to_string(f) << " seed " << seed;
    }
    EXPECT_GT(matched, 0) << "no seed in 1..64 selected "
                          << fuzz::to_string(f);
  }
}

}  // namespace
}  // namespace hp::workload
