// Regression tests for Weight accumulation on adversarial inputs: weights
// near INT64_MAX must saturate instead of wrapping (signed-overflow UB).
// Before the sat_add/sat_mul audit, cost_of and part_weights computed
// e.g. INT64_MAX + INT64_MAX, which UBSan flags and which flips the sign
// of every downstream comparison.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "hyperpart/core/balance.hpp"
#include "hyperpart/core/hypergraph.hpp"
#include "hyperpart/core/metrics.hpp"
#include "hyperpart/core/partition.hpp"
#include "hyperpart/util/overflow.hpp"

namespace hp {
namespace {

constexpr Weight kMax = std::numeric_limits<Weight>::max();
constexpr Weight kMin = std::numeric_limits<Weight>::min();

TEST(SaturatingArithmetic, ClampsInsteadOfWrapping) {
  EXPECT_EQ(sat_add(kMax, Weight{1}), kMax);
  EXPECT_EQ(sat_add(kMax, kMax), kMax);
  EXPECT_EQ(sat_add(kMin, Weight{-1}), kMin);
  EXPECT_EQ(sat_add(Weight{2}, Weight{3}), 5);

  EXPECT_EQ(sat_mul(kMax, Weight{2}), kMax);
  EXPECT_EQ(sat_mul(kMax, Weight{-2}), kMin);
  EXPECT_EQ(sat_mul(kMin, Weight{-1}), kMax);
  EXPECT_EQ(sat_mul(Weight{6}, Weight{7}), 42);

  EXPECT_EQ(sat_sub(kMin, Weight{1}), kMin);
  EXPECT_EQ(sat_sub(kMax, Weight{-1}), kMax);
  EXPECT_EQ(sat_sub(Weight{5}, Weight{3}), 2);
}

/// Two max-weight edges, both cut: the naive sum is 2·INT64_MAX.
TEST(WeightOverflow, CutNetCostSaturates) {
  Hypergraph g = Hypergraph::from_edges(4, {{0, 1}, {2, 3}});
  g.set_edge_weights({kMax, kMax});
  Partition p(4, 2);
  p.assign(0, 0);
  p.assign(1, 1);
  p.assign(2, 0);
  p.assign(3, 1);
  EXPECT_EQ(cost(g, p, CostMetric::kCutNet), kMax);
}

/// One max-weight edge with λ = 3: w·(λ−1) = 2·INT64_MAX in the naive form.
TEST(WeightOverflow, ConnectivityCostSaturates) {
  Hypergraph g = Hypergraph::from_edges(3, {{0, 1, 2}});
  g.set_edge_weights({kMax});
  Partition p(3, 3);
  p.assign(0, 0);
  p.assign(1, 1);
  p.assign(2, 2);
  EXPECT_EQ(cost(g, p, CostMetric::kConnectivity), kMax);
  EXPECT_EQ(sum_external_degrees(g, p), kMax);
}

TEST(WeightOverflow, TotalNodeWeightSaturates) {
  Hypergraph g = Hypergraph::from_edges(2, {{0, 1}});
  g.set_node_weights({kMax, kMax});
  EXPECT_EQ(g.total_node_weight(), kMax);
}

TEST(WeightOverflow, PartWeightsSaturate) {
  Hypergraph g = Hypergraph::from_edges(2, {{0, 1}});
  g.set_node_weights({kMax, kMax});
  Partition p(2, 2);
  p.assign(0, 0);
  p.assign(1, 0);
  const auto pw = p.part_weights(g);
  EXPECT_EQ(pw[0], kMax);
  EXPECT_EQ(pw[1], 0);
}

/// A huge epsilon pushes (1+ε)·total/k past INT64_MAX; the threshold must
/// clamp to the Weight range instead of hitting a float→int overflow cast.
TEST(WeightOverflow, BalanceThresholdClampsToWeightRange) {
  const auto b = BalanceConstraint::for_total_weight(kMax, 1, 1e9, true);
  EXPECT_EQ(b.capacity(), kMax);
  const auto tight = BalanceConstraint::for_total_weight(kMax, 2, 0.0, false);
  EXPECT_LE(tight.capacity(), kMax);
  EXPECT_GE(tight.capacity(), kMax / 2 - 1);
}

/// End to end: the balance check on an overweight max-weight partition must
/// report infeasibility (saturated sums stay on the correct side of the
/// comparison) rather than wrapping negative and passing.
TEST(WeightOverflow, SaturatedSumsKeepBalanceChecksDirectional) {
  Hypergraph g = Hypergraph::from_edges(3, {{0, 1, 2}});
  g.set_node_weights({kMax, kMax, 1});
  Partition p(3, 2);
  p.assign(0, 0);
  p.assign(1, 0);
  p.assign(2, 1);
  const auto b = BalanceConstraint::with_capacity(2, kMax / 2, 0.0);
  EXPECT_FALSE(b.satisfied(g, p));
}

}  // namespace
}  // namespace hp
