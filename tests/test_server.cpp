// hyperpartd service tests: the HPF1 frame layer byte-by-byte, the
// GraphSession cache + repartition ladder, reader/mutator concurrency, and
// the daemon end-to-end through the real hyperpartd/hyperpartc binaries
// (exec'd via the shared hp::subprocess helper).

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "hyperpart/algo/multilevel.hpp"
#include "hyperpart/core/balance.hpp"
#include "hyperpart/core/metrics.hpp"
#include "hyperpart/io/generators.hpp"
#include "hyperpart/obs/json.hpp"
#include "hyperpart/server/protocol.hpp"
#include "hyperpart/server/server.hpp"
#include "hyperpart/server/session.hpp"
#include "hyperpart/stream/binary_format.hpp"
#include "hyperpart/util/subprocess.hpp"

namespace fs = std::filesystem;
namespace json = hp::obs::json;
using namespace hp;
using namespace hp::server;

namespace {

/// A connected AF_UNIX socket pair; fd[0] plays the client, fd[1] the
/// server side. Closed on destruction.
struct Pair {
  int fd[2] = {-1, -1};
  Pair() { EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fd), 0); }
  ~Pair() {
    if (fd[0] >= 0) ::close(fd[0]);
    if (fd[1] >= 0) ::close(fd[1]);
  }
  void close_client() {
    ::close(fd[0]);
    fd[0] = -1;
  }
};

void write_all(int fd, const void* data, std::size_t len) {
  ASSERT_EQ(::write(fd, data, len), static_cast<ssize_t>(len));
}

int connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

std::optional<json::Value> rpc(int fd, const json::Value& request) {
  if (write_frame(fd, json::dump(request)) != FrameError::kNone) {
    return std::nullopt;
  }
  std::string payload;
  if (read_frame(fd, payload) != FrameError::kNone) return std::nullopt;
  return json::parse(payload);
}

json::Value req(const std::string& op) {
  json::Object o;
  o.emplace_back("op", op);
  return json::Value(std::move(o));
}

bool ok_of(const std::optional<json::Value>& response) {
  if (!response) return false;
  const json::Value* ok = response->find("ok");
  return ok != nullptr && ok->as_bool();
}

std::string error_of(const std::optional<json::Value>& response) {
  if (!response) return "<no response>";
  const json::Value* e = response->find("error");
  return e == nullptr ? "" : e->as_string();
}

/// Tiny temp-dir RAII for socket + graph files.
struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("hp_srv_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this) & 0xffff));
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

std::vector<WeightUpdate> bump_nodes(const Hypergraph& g, NodeId count,
                                     NodeId stride) {
  std::vector<WeightUpdate> updates;
  for (NodeId v = 0; v < g.num_nodes() && updates.size() < count;
       v += stride) {
    updates.push_back({v, g.node_weight(v) + 1});
  }
  return updates;
}

}  // namespace

// --- Frame layer ------------------------------------------------------------

TEST(FrameTest, RoundTripsPayloadBytes) {
  Pair p;
  const std::string payload = "{\"op\":\"stats\"}";
  ASSERT_EQ(write_frame(p.fd[0], payload), FrameError::kNone);
  std::string got;
  ASSERT_EQ(read_frame(p.fd[1], got), FrameError::kNone);
  EXPECT_EQ(got, payload);
}

TEST(FrameTest, RoundTripsEmptyPayload) {
  Pair p;
  ASSERT_EQ(write_frame(p.fd[0], ""), FrameError::kNone);
  std::string got = "stale";
  ASSERT_EQ(read_frame(p.fd[1], got), FrameError::kNone);
  EXPECT_EQ(got, "");
}

TEST(FrameTest, HeaderLayoutIsMagicThenLittleEndianLength) {
  Pair p;
  ASSERT_EQ(write_frame(p.fd[0], "abc"), FrameError::kNone);
  unsigned char header[8];
  ASSERT_EQ(::read(p.fd[1], header, 8), 8);
  EXPECT_EQ(std::memcmp(header, "HPF1", 4), 0);
  EXPECT_EQ(header[4], 3);  // little-endian 3
  EXPECT_EQ(header[5], 0);
  EXPECT_EQ(header[6], 0);
  EXPECT_EQ(header[7], 0);
}

TEST(FrameTest, RejectsBadMagic) {
  Pair p;
  write_all(p.fd[0], "XXXX\x03\x00\x00\x00" "abc", 11);
  std::string got;
  EXPECT_EQ(read_frame(p.fd[1], got), FrameError::kBadMagic);
}

TEST(FrameTest, CleanEofIsClosed) {
  Pair p;
  p.close_client();
  std::string got;
  EXPECT_EQ(read_frame(p.fd[1], got), FrameError::kClosed);
}

TEST(FrameTest, EofInsideHeaderIsTruncated) {
  Pair p;
  write_all(p.fd[0], "HPF1\x10", 5);  // magic + 1 length byte, then EOF
  p.close_client();
  std::string got;
  EXPECT_EQ(read_frame(p.fd[1], got), FrameError::kTruncated);
}

TEST(FrameTest, EofInsideBodyIsTruncated) {
  Pair p;
  write_all(p.fd[0], "HPF1\x64\x00\x00\x00partial", 15);  // claims 100 bytes
  p.close_client();
  std::string got;
  EXPECT_EQ(read_frame(p.fd[1], got), FrameError::kTruncated);
}

TEST(FrameTest, RejectsOversizeLengthBeforeReadingBody) {
  Pair p;
  // Declared length 2^31 with a 1 KiB cap: rejected from the header alone.
  write_all(p.fd[0], "HPF1\x00\x00\x00\x80", 8);
  std::string got;
  EXPECT_EQ(read_frame(p.fd[1], got, 1024), FrameError::kOversize);
}

// --- Session ladder ---------------------------------------------------------

namespace {

SessionConfig small_cfg() {
  SessionConfig cfg;
  cfg.k = 4;
  cfg.epsilon = 0.1;
  cfg.seed = 3;
  return cfg;
}

std::unique_ptr<GraphSession> session_of(NodeId n, std::uint64_t seed) {
  return GraphSession::from_graph(random_hypergraph(n, n, 2, 6, seed),
                                  "test-graph");
}

}  // namespace

TEST(SessionTest, PartitionFullThenCached) {
  auto s = session_of(600, 41);
  const SessionConfig cfg = small_cfg();
  ASSERT_TRUE(s->try_acquire_mutator());
  const auto first = s->partition(cfg);
  EXPECT_TRUE(first.ok);
  EXPECT_EQ(first.method, "full");
  EXPECT_FALSE(first.cache_hit);
  EXPECT_TRUE(first.balanced);
  EXPECT_EQ(first.parts.size(), 600u);

  const auto second = s->partition(cfg);
  EXPECT_TRUE(second.ok);
  EXPECT_EQ(second.method, "cached");
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.cost, first.cost);
  EXPECT_EQ(second.parts, first.parts);
  s->release_mutator();
}

TEST(SessionTest, DifferentConfigsGetDistinctCacheEntries) {
  auto s = session_of(400, 42);
  SessionConfig a = small_cfg();
  SessionConfig b = small_cfg();
  b.k = 2;
  ASSERT_TRUE(s->try_acquire_mutator());
  EXPECT_EQ(s->partition(a, false).method, "full");
  EXPECT_EQ(s->partition(b, false).method, "full");
  EXPECT_EQ(s->partition(a, false).method, "cached");
  s->release_mutator();
  EXPECT_EQ(s->entry_stats().size(), 2u);
}

TEST(SessionTest, RepartitionRunsDeltaFmAfterSmallUpdate) {
  auto s = session_of(1000, 43);
  const SessionConfig cfg = small_cfg();
  ASSERT_TRUE(s->try_acquire_mutator());
  ASSERT_TRUE(s->partition(cfg, false).ok);

  // 10 units on n + m = 2000: fraction 0.005, well inside the ΔFM rung.
  const Hypergraph probe = random_hypergraph(1000, 1000, 2, 6, 43);
  const auto updates = bump_nodes(probe, 10, 1);
  const auto up = s->update(updates, {});
  EXPECT_TRUE(up.ok);
  EXPECT_EQ(up.applied, 10u);

  const auto re = s->repartition(cfg);
  EXPECT_TRUE(re.ok);
  EXPECT_EQ(re.method, "delta_fm");
  EXPECT_TRUE(re.cache_hit);
  EXPECT_TRUE(re.balanced);
  s->release_mutator();

  std::string why;
  EXPECT_TRUE(s->verify_cache_integrity(&why)) << why;
}

TEST(SessionTest, RepartitionRunsVcycleAfterMediumUpdate) {
  auto s = session_of(1000, 44);
  const SessionConfig cfg = small_cfg();
  ASSERT_TRUE(s->try_acquire_mutator());
  ASSERT_TRUE(s->partition(cfg, false).ok);

  // 400 units on n + m = 2000: fraction 0.2 — past ΔFM, inside V-cycle.
  const Hypergraph probe = random_hypergraph(1000, 1000, 2, 6, 44);
  const auto updates = bump_nodes(probe, 400, 1);
  ASSERT_TRUE(s->update(updates, {}).ok);

  const auto re = s->repartition(cfg);
  EXPECT_TRUE(re.ok);
  EXPECT_EQ(re.method, "vcycle");
  EXPECT_TRUE(re.balanced);
  s->release_mutator();

  std::string why;
  EXPECT_TRUE(s->verify_cache_integrity(&why)) << why;
}

TEST(SessionTest, RepartitionFallsBackToFullAfterLargeUpdate) {
  auto s = session_of(500, 45);
  const SessionConfig cfg = small_cfg();
  ASSERT_TRUE(s->try_acquire_mutator());
  ASSERT_TRUE(s->partition(cfg, false).ok);

  // 500 node + 200 edge units on n + m = 1000: fraction 0.7 > 0.5.
  const Hypergraph probe = random_hypergraph(500, 500, 2, 6, 45);
  auto node_updates = bump_nodes(probe, 500, 1);
  std::vector<WeightUpdate> edge_updates;
  for (std::uint32_t e = 0; e < 200; ++e) {
    edge_updates.push_back({e, probe.edge_weight(e) + 1});
  }
  ASSERT_TRUE(s->update(node_updates, edge_updates).ok);

  const auto re = s->repartition(cfg);
  EXPECT_TRUE(re.ok);
  EXPECT_EQ(re.method, "full");
  EXPECT_TRUE(re.balanced);
  s->release_mutator();
}

TEST(SessionTest, EdgeWeightUpdateInvalidatesTrackerButDeltaFmRecovers) {
  auto s = session_of(1000, 46);
  const SessionConfig cfg = small_cfg();
  ASSERT_TRUE(s->try_acquire_mutator());
  ASSERT_TRUE(s->partition(cfg, false).ok);

  // A handful of edge-weight changes: trackers go stale (costs and gain
  // caches depend on edge weights) yet the fraction stays in the ΔFM rung,
  // so repartition must rebuild the tracker and still run incrementally.
  const Hypergraph probe = random_hypergraph(1000, 1000, 2, 6, 46);
  std::vector<WeightUpdate> edge_updates;
  for (std::uint32_t e = 0; e < 8; ++e) {
    edge_updates.push_back({e, probe.edge_weight(e) + 2});
  }
  ASSERT_TRUE(s->update({}, edge_updates).ok);

  const auto stats = s->entry_stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_TRUE(stats[0].tracker_stale);

  const auto re = s->repartition(cfg);
  EXPECT_TRUE(re.ok);
  EXPECT_EQ(re.method, "delta_fm");
  s->release_mutator();

  std::string why;
  EXPECT_TRUE(s->verify_cache_integrity(&why)) << why;
  // The recomputed cost must account for the new edge weights exactly.
  const auto ev = s->evaluate(cfg);
  EXPECT_TRUE(ev.ok);
  EXPECT_EQ(ev.cost, re.cost);
}

TEST(SessionTest, UpdateValidatesEverythingBeforeApplyingAnything) {
  auto s = session_of(100, 47);
  ASSERT_TRUE(s->try_acquire_mutator());
  const std::uint64_t hash_before = s->graph_hash();

  // Out-of-range node id: rejected atomically (first update is valid).
  std::vector<WeightUpdate> bad_id{{0, 5}, {100, 5}};
  const auto r1 = s->update(bad_id, {});
  EXPECT_FALSE(r1.ok);
  EXPECT_EQ(r1.applied, 0u);
  EXPECT_EQ(s->graph_hash(), hash_before);

  // Negative weight: same story.
  std::vector<WeightUpdate> bad_weight{{0, -1}};
  const auto r2 = s->update(bad_weight, {});
  EXPECT_FALSE(r2.ok);
  EXPECT_EQ(r2.applied, 0u);
  EXPECT_EQ(s->graph_hash(), hash_before);
  s->release_mutator();
}

TEST(SessionTest, EvaluateWithoutPartitionIsAnError) {
  auto s = session_of(100, 48);
  const auto ev = s->evaluate(small_cfg());
  EXPECT_FALSE(ev.ok);
  EXPECT_NE(ev.error.find("partition"), std::string::npos);
}

TEST(SessionTest, EvaluateTracksGraphChanges) {
  auto s = session_of(600, 49);
  const SessionConfig cfg = small_cfg();
  ASSERT_TRUE(s->try_acquire_mutator());
  const auto p = s->partition(cfg, false);
  ASSERT_TRUE(p.ok);

  auto ev = s->evaluate(cfg);
  EXPECT_TRUE(ev.ok);
  EXPECT_EQ(ev.cost, p.cost);
  EXPECT_TRUE(ev.balanced);

  // Edge-weight change: evaluate recomputes against the current graph and
  // the cost moves with the weight.
  std::vector<WeightUpdate> edge_updates{{0, 1000}};
  ASSERT_TRUE(s->update({}, edge_updates).ok);
  s->release_mutator();
  ev = s->evaluate(cfg);
  EXPECT_TRUE(ev.ok);
  EXPECT_GE(ev.cost, p.cost);  // weight 1000 on a (possibly cut) edge
}

// --- Structural deltas ------------------------------------------------------

TEST(SessionTest, StructuralAddNetPatchesTrackerAndDeltaFmRecovers) {
  auto s = session_of(1000, 53);
  const SessionConfig cfg = small_cfg();
  ASSERT_TRUE(s->try_acquire_mutator());
  ASSERT_TRUE(s->partition(cfg, false).ok);
  EXPECT_EQ(s->version(), 0u);

  std::vector<StructuralDelta> deltas(2);
  deltas[0].kind = StructuralDelta::Kind::kAddNet;
  deltas[0].pins = {0, 1, 2};
  deltas[0].weight = 2;
  deltas[1].kind = StructuralDelta::Kind::kAddNet;
  deltas[1].pins = {3, 4};
  const auto up = s->update({}, {}, deltas);
  ASSERT_TRUE(up.ok) << up.error;
  EXPECT_EQ(up.applied, 2u);
  EXPECT_EQ(up.structural, 2u);
  EXPECT_EQ(up.version, 1u);
  EXPECT_EQ(s->num_edges(), 1002u);
  // A 5-pin batch is far below the patch threshold: the cached tracker is
  // repaired per net, never marked stale.
  EXPECT_EQ(up.trackers_patched, 1u);
  EXPECT_EQ(up.trackers_staled, 0u);
  const auto stats = s->entry_stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_FALSE(stats[0].tracker_stale);
  std::string why;
  EXPECT_TRUE(s->verify_cache_integrity(&why)) << why;

  const auto re = s->repartition(cfg);
  EXPECT_TRUE(re.ok);
  EXPECT_EQ(re.method, "delta_fm");
  EXPECT_EQ(re.version, 1u);
  EXPECT_TRUE(re.balanced);
  s->release_mutator();
}

TEST(SessionTest, StructuralPinEditsAndTombstonesMatchRebuild) {
  // Known pins so the final state can be rebuilt independently:
  //   net0 {0,1}  net1 {1,2}  net2 {2,3,4}  net3 {4,5}
  auto s = GraphSession::from_graph(
      Hypergraph::from_edges(6, {{0, 1}, {1, 2}, {2, 3, 4}, {4, 5}}), "tiny");
  SessionConfig cfg;
  cfg.k = 2;
  cfg.epsilon = 1.0;
  cfg.seed = 7;
  ASSERT_TRUE(s->try_acquire_mutator());
  const auto first = s->partition(cfg, true);
  ASSERT_TRUE(first.ok) << first.error;

  std::vector<StructuralDelta> deltas(3);
  deltas[0].kind = StructuralDelta::Kind::kRemoveNet;  // tombstone net 0
  deltas[0].net = 0;
  deltas[1].kind = StructuralDelta::Kind::kRemovePins;  // empty net 2
  deltas[1].net = 2;
  deltas[1].pins = {2, 3, 4};
  deltas[2].kind = StructuralDelta::Kind::kAddPins;  // net1 -> {0,1,2,5}
  deltas[2].net = 1;
  deltas[2].pins = {0, 5};
  const auto up = s->update({}, {}, deltas);
  ASSERT_TRUE(up.ok) << up.error;
  EXPECT_EQ(up.applied, 3u);
  EXPECT_TRUE(s->net_removed(0));
  EXPECT_FALSE(s->net_removed(2));  // stripped bare, but still live
  EXPECT_EQ(s->num_edges(), 4u);    // tombstones keep their id

  // The patched CSR must be indistinguishable from a from_edges rebuild of
  // the same final state (tombstone = empty pins + weight 0).
  Hypergraph rebuilt =
      Hypergraph::from_edges(6, {{}, {0, 1, 2, 5}, {}, {4, 5}});
  rebuilt.update_edge_weight(0, 0);
  EXPECT_EQ(s->graph_hash(), rebuilt.content_hash());

  // evaluate answers with exactly the rebuilt graph's cost for the cached
  // partition — the emptied net and the tombstone both contribute zero.
  const auto ev = s->evaluate(cfg);
  ASSERT_TRUE(ev.ok) << ev.error;
  const Partition p(std::vector<PartId>(first.parts.begin(),
                                        first.parts.end()),
                    cfg.k);
  EXPECT_EQ(ev.cost, cost(rebuilt, p, cfg.metric));

  // Every structural verb aimed at a tombstoned net is a validated error.
  const std::uint64_t ver = s->version();
  {
    std::vector<StructuralDelta> again(1);
    again[0].kind = StructuralDelta::Kind::kRemoveNet;
    again[0].net = 0;
    const auto r = s->update({}, {}, again);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("already removed"), std::string::npos) << r.error;
  }
  {
    std::vector<StructuralDelta> add(1);
    add[0].kind = StructuralDelta::Kind::kAddPins;
    add[0].net = 0;
    add[0].pins = {3};
    const auto r = s->update({}, {}, add);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("is removed"), std::string::npos) << r.error;
  }
  {
    std::vector<WeightUpdate> w{{0, 3}};
    const auto r = s->update({}, w);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("is removed"), std::string::npos) << r.error;
  }
  EXPECT_EQ(s->version(), ver);  // rejected updates never bump the version
  s->release_mutator();
}

TEST(SessionTest, InvalidDeltaRollsBackTheWholeBatch) {
  auto s = session_of(400, 54);
  const SessionConfig cfg = small_cfg();
  ASSERT_TRUE(s->try_acquire_mutator());
  ASSERT_TRUE(s->partition(cfg, false).ok);
  const std::uint64_t hash0 = s->graph_hash();
  const std::uint64_t ver0 = s->version();
  const EdgeId m0 = s->num_edges();

  // Two valid deltas followed by one invalid (net 0 is removed earlier in
  // the same batch): the whole frame must be rejected before any mutation.
  std::vector<StructuralDelta> deltas(3);
  deltas[0].kind = StructuralDelta::Kind::kAddNet;
  deltas[0].pins = {0, 1};
  deltas[1].kind = StructuralDelta::Kind::kRemoveNet;
  deltas[1].net = 0;
  deltas[2].kind = StructuralDelta::Kind::kRemoveNet;
  deltas[2].net = 0;
  const auto up = s->update({}, {}, deltas);
  EXPECT_FALSE(up.ok);
  EXPECT_EQ(up.applied, 0u);
  EXPECT_NE(up.error.find("already removed"), std::string::npos) << up.error;

  EXPECT_EQ(s->graph_hash(), hash0);
  EXPECT_EQ(s->version(), ver0);
  EXPECT_EQ(s->num_edges(), m0);
  EXPECT_FALSE(s->net_removed(0));
  const auto stats = s->entry_stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_FALSE(stats[0].tracker_stale);
  std::string why;
  EXPECT_TRUE(s->verify_cache_integrity(&why)) << why;
  // The cache entry is still a clean hit for the unchanged graph.
  EXPECT_EQ(s->partition(cfg, false).method, "cached");
  s->release_mutator();
}

TEST(SessionTest, OversizeStructuralBatchMarksTrackersStale) {
  auto s = session_of(300, 55);
  const SessionConfig cfg = small_cfg();
  ASSERT_TRUE(s->try_acquire_mutator());
  ASSERT_TRUE(s->partition(cfg, false).ok);

  // Tombstone a third of all nets: the touched pin volume blows through
  // kStructuralPatchMaxFraction, so the tracker falls back to staleness
  // instead of per-net patching.
  std::vector<StructuralDelta> deltas(100);
  for (EdgeId e = 0; e < 100; ++e) {
    deltas[e].kind = StructuralDelta::Kind::kRemoveNet;
    deltas[e].net = e;
  }
  const auto up = s->update({}, {}, deltas);
  ASSERT_TRUE(up.ok) << up.error;
  EXPECT_EQ(up.trackers_patched, 0u);
  EXPECT_EQ(up.trackers_staled, 1u);
  const auto stats = s->entry_stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_TRUE(stats[0].tracker_stale);

  // Repartition rebuilds from the cached partition and recovers.
  const auto re = s->repartition(cfg);
  EXPECT_TRUE(re.ok) << re.error;
  EXPECT_TRUE(re.balanced);
  s->release_mutator();
  std::string why;
  EXPECT_TRUE(s->verify_cache_integrity(&why)) << why;
}

TEST(SessionTest, EvaluatePinsASnapshotVersion) {
  auto s = session_of(300, 56);
  const SessionConfig cfg = small_cfg();
  ASSERT_TRUE(s->try_acquire_mutator());
  ASSERT_TRUE(s->partition(cfg, false).ok);

  const auto at0 = s->evaluate(cfg, false, 0);
  EXPECT_TRUE(at0.ok) << at0.error;
  EXPECT_EQ(at0.version, 0u);

  std::vector<WeightUpdate> w{{0, 5}};
  ASSERT_TRUE(s->update(w, {}).ok);
  s->release_mutator();

  const auto outdated = s->evaluate(cfg, false, 0);
  EXPECT_FALSE(outdated.ok);
  EXPECT_NE(outdated.error.find("version mismatch"), std::string::npos)
      << outdated.error;
  EXPECT_EQ(outdated.version, 1u);

  const auto current = s->evaluate(cfg, false, 1);
  EXPECT_TRUE(current.ok) << current.error;
  EXPECT_EQ(current.version, 1u);
}

TEST(SessionTest, HierarchyReuseIsBitIdenticalToFreshRun) {
  const Hypergraph g = random_hypergraph(2000, 2000, 2, 6, 50);
  const auto balance = BalanceConstraint::for_graph(g, 4, 0.1, true);
  MultilevelConfig cfg;
  cfg.seed = 9;

  MultilevelHierarchy hier;
  const auto fresh = multilevel_partition_cached(g, balance, cfg, &hier);
  ASSERT_TRUE(fresh.has_value());
  ASSERT_FALSE(hier.empty());

  // Same graph, same config, cached hierarchy: the rng replay must make
  // the reused run indistinguishable from the fresh one.
  const auto reused = multilevel_partition_cached(g, balance, cfg, &hier);
  ASSERT_TRUE(reused.has_value());
  const auto a = fresh->raw();
  const auto b = reused->raw();
  EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
}

// --- Concurrency ------------------------------------------------------------

TEST(ConcurrencyTest, SecondMutatorIsRejectedNotQueued) {
  auto s = session_of(100, 51);
  EXPECT_TRUE(s->try_acquire_mutator());
  EXPECT_FALSE(s->try_acquire_mutator());
  s->release_mutator();
  EXPECT_TRUE(s->try_acquire_mutator());
  s->release_mutator();
}

TEST(ConcurrencyTest, ParallelEvaluateDuringRepartition) {
  auto s = session_of(20000, 52);
  const SessionConfig cfg = small_cfg();
  ASSERT_TRUE(s->try_acquire_mutator());
  ASSERT_TRUE(s->partition(cfg, false).ok);

  // Push the session into the V-cycle rung so the mutation below takes long
  // enough for the readers to genuinely overlap it.
  const Hypergraph probe = random_hypergraph(20000, 20000, 2, 6, 52);
  ASSERT_TRUE(s->update(bump_nodes(probe, 4000, 1), {}).ok);

  std::atomic<bool> mutating{true};
  std::atomic<int> reader_failures{0};
  std::atomic<std::uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (mutating.load(std::memory_order_acquire)) {
        const auto ev = s->evaluate(cfg);
        if (!ev.ok || ev.part_weights.size() != 4) {
          reader_failures.fetch_add(1);
        }
        reads.fetch_add(1);
        const auto stats = s->entry_stats();
        if (stats.size() != 1) reader_failures.fetch_add(1);
      }
    });
  }

  const auto re = s->repartition(cfg, false);
  mutating.store(false, std::memory_order_release);
  for (auto& r : readers) r.join();
  s->release_mutator();

  EXPECT_TRUE(re.ok);
  EXPECT_EQ(reader_failures.load(), 0);
  EXPECT_GT(reads.load(), 0u);
}

// --- Server over real sockets -----------------------------------------------

namespace {

struct RunningServer {
  TempDir dir;
  std::unique_ptr<Server> server;
  std::string sock;

  explicit RunningServer(int tcp_port = -1) {
    sock = (dir.path / "d.sock").string();
    ServerConfig cfg;
    cfg.unix_socket = sock;
    cfg.tcp_port = tcp_port;
    server = std::make_unique<Server>(std::move(cfg));
    server->start();
  }
  ~RunningServer() {
    server->shutdown();
    server->wait();
  }

  std::string write_graph() {
    const Hypergraph g = random_hypergraph(300, 300, 2, 6, 77);
    const fs::path p = dir.path / "g.hpb";
    stream::write_binary_file(p.string(), g);
    return p.string();
  }
};

}  // namespace

TEST(ServerTest, LoadPartitionUpdateRepartitionOverSocket) {
  RunningServer rs;
  const std::string graph_path = rs.write_graph();
  const int fd = connect_unix(rs.sock);
  ASSERT_GE(fd, 0);

  json::Value load = req("load");
  load.set("path", json::Value(graph_path));
  const auto loaded = rpc(fd, load);
  ASSERT_TRUE(ok_of(loaded)) << error_of(loaded);
  const std::string graph = loaded->find("graph")->as_string();
  EXPECT_EQ(loaded->find("nodes")->as_int(), 300);

  json::Value part = req("partition");
  part.set("graph", json::Value(graph));
  part.set("k", json::Value(std::int64_t{4}));
  part.set("epsilon", json::Value(0.1));
  part.set("include_parts", json::Value(true));  // off by default on the wire
  const auto first = rpc(fd, part);
  ASSERT_TRUE(ok_of(first)) << error_of(first);
  EXPECT_EQ(first->find("method")->as_string(), "full");
  ASSERT_NE(first->find("parts"), nullptr);
  EXPECT_EQ(first->find("parts")->as_array().size(), 300u);

  json::Value update = req("update");
  update.set("graph", json::Value(graph));
  json::Array nw;
  for (std::int64_t v = 0; v < 3; ++v) {
    json::Array pair_v;
    pair_v.push_back(json::Value(v));
    pair_v.push_back(json::Value(std::int64_t{5}));
    nw.push_back(json::Value(std::move(pair_v)));
  }
  update.set("node_weights", json::Value(std::move(nw)));
  const auto updated = rpc(fd, update);
  ASSERT_TRUE(ok_of(updated)) << error_of(updated);
  EXPECT_EQ(updated->find("applied")->as_int(), 3);

  json::Value repart = req("repartition");
  repart.set("graph", json::Value(graph));
  repart.set("k", json::Value(std::int64_t{4}));
  repart.set("epsilon", json::Value(0.1));
  repart.set("include_parts", json::Value(false));
  const auto re = rpc(fd, repart);
  ASSERT_TRUE(ok_of(re)) << error_of(re);
  EXPECT_EQ(re->find("method")->as_string(), "delta_fm");
  EXPECT_TRUE(re->find("cache_hit")->as_bool());

  const auto stats = rpc(fd, req("stats"));
  ASSERT_TRUE(ok_of(stats)) << error_of(stats);
  EXPECT_GE(stats->find("requests_served")->as_int(), 5);
  ::close(fd);
}

TEST(ServerTest, StructuralUpdateAndVersionPinningOverSocket) {
  RunningServer rs;
  const std::string graph_path = rs.write_graph();
  const int fd = connect_unix(rs.sock);
  ASSERT_GE(fd, 0);

  json::Value load = req("load");
  load.set("path", json::Value(graph_path));
  const auto loaded = rpc(fd, load);
  ASSERT_TRUE(ok_of(loaded)) << error_of(loaded);
  const std::string graph = loaded->find("graph")->as_string();
  ASSERT_NE(loaded->find("version"), nullptr);
  EXPECT_EQ(loaded->find("version")->as_int(), 0);

  json::Value part = req("partition");
  part.set("graph", json::Value(graph));
  part.set("k", json::Value(std::int64_t{4}));
  part.set("epsilon", json::Value(0.1));
  const auto first = rpc(fd, part);
  ASSERT_TRUE(ok_of(first)) << error_of(first);
  EXPECT_EQ(first->find("version")->as_int(), 0);

  // One batched frame carrying several structural deltas: tombstone two
  // nets and append two new ones.
  json::Value update = req("update");
  update.set("graph", json::Value(graph));
  json::Array removes;
  removes.push_back(json::Value(std::int64_t{5}));
  removes.push_back(json::Value(std::int64_t{6}));
  update.set("remove_nets", json::Value(std::move(removes)));
  json::Array adds;
  {
    json::Value net0;
    json::Array pins;
    pins.push_back(json::Value(std::int64_t{0}));
    pins.push_back(json::Value(std::int64_t{1}));
    pins.push_back(json::Value(std::int64_t{2}));
    net0.set("pins", json::Value(std::move(pins)));
    net0.set("weight", json::Value(std::int64_t{2}));
    adds.push_back(std::move(net0));
    json::Value net1;
    json::Array pins1;
    pins1.push_back(json::Value(std::int64_t{3}));
    pins1.push_back(json::Value(std::int64_t{4}));
    net1.set("pins", json::Value(std::move(pins1)));
    adds.push_back(std::move(net1));
  }
  update.set("add_nets", json::Value(std::move(adds)));
  const auto updated = rpc(fd, update);
  ASSERT_TRUE(ok_of(updated)) << error_of(updated);
  EXPECT_EQ(updated->find("applied")->as_int(), 4);
  EXPECT_EQ(updated->find("structural")->as_int(), 4);
  EXPECT_EQ(updated->find("version")->as_int(), 1);
  EXPECT_EQ(updated->find("edges")->as_int(), 302);
  EXPECT_EQ(updated->find("trackers_patched")->as_int(), 1);
  EXPECT_EQ(updated->find("trackers_staled")->as_int(), 0);

  // Pinned evaluate: the stale version is refused with the current one
  // echoed; the current version answers.
  json::Value eval = req("evaluate");
  eval.set("graph", json::Value(graph));
  eval.set("k", json::Value(std::int64_t{4}));
  eval.set("epsilon", json::Value(0.1));
  eval.set("version", json::Value(std::int64_t{0}));
  const auto stale = rpc(fd, eval);
  ASSERT_TRUE(stale.has_value());
  EXPECT_FALSE(ok_of(stale));
  EXPECT_NE(error_of(stale).find("version mismatch"), std::string::npos);
  EXPECT_EQ(stale->find("version")->as_int(), 1);
  eval.set("version", json::Value(std::int64_t{1}));
  const auto pinned = rpc(fd, eval);
  ASSERT_TRUE(ok_of(pinned)) << error_of(pinned);

  // A batch with one invalid delta (net 5 is already tombstoned) is
  // rejected whole: the next update still sees version 1.
  json::Value bad = req("update");
  bad.set("graph", json::Value(graph));
  json::Array bad_removes;
  bad_removes.push_back(json::Value(std::int64_t{7}));
  bad_removes.push_back(json::Value(std::int64_t{5}));
  bad.set("remove_nets", json::Value(std::move(bad_removes)));
  const auto rejected = rpc(fd, bad);
  ASSERT_TRUE(rejected.has_value());
  EXPECT_FALSE(ok_of(rejected));
  EXPECT_NE(error_of(rejected).find("already removed"), std::string::npos);
  EXPECT_EQ(rejected->find("version")->as_int(), 1);

  json::Value repart = req("repartition");
  repart.set("graph", json::Value(graph));
  repart.set("k", json::Value(std::int64_t{4}));
  repart.set("epsilon", json::Value(0.1));
  const auto re = rpc(fd, repart);
  ASSERT_TRUE(ok_of(re)) << error_of(re);
  EXPECT_EQ(re->find("method")->as_string(), "delta_fm");
  EXPECT_EQ(re->find("version")->as_int(), 1);
  ::close(fd);
}

TEST(ServerTest, RefusesToStartWhenSocketPathIsNotASocket) {
  TempDir dir;
  const fs::path path = dir.path / "not_a.sock";
  {
    std::ofstream f(path);
    f << "precious data\n";
  }
  ServerConfig cfg;
  cfg.unix_socket = path.string();
  Server server(std::move(cfg));
  EXPECT_THROW(server.start(), SocketPathError);
  // The refusal must not have deleted the file.
  ASSERT_TRUE(fs::exists(path));
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "precious data");
}

TEST(ServerTest, StaleSocketFileIsReplacedOnStart) {
  // The flip side: a leftover *socket* file from a crashed daemon is still
  // cleaned up and rebound, as before.
  TempDir dir;
  const std::string path = (dir.path / "stale.sock").string();
  {
    ServerConfig cfg;
    cfg.unix_socket = path;
    Server first(std::move(cfg));
    first.start();
    first.shutdown();
    first.wait();
  }
  // Recreate a dead socket file (shutdown unlinks; bind a raw one).
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ASSERT_EQ(::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
            0);
  ::close(fd);
  ASSERT_TRUE(fs::exists(path));

  ServerConfig cfg;
  cfg.unix_socket = path;
  Server second(std::move(cfg));
  second.start();  // must not throw
  EXPECT_TRUE(second.running());
  second.shutdown();
  second.wait();
}

TEST(ServerTest, UnknownGraphAndUnknownOpAreCleanErrors) {
  RunningServer rs;
  const int fd = connect_unix(rs.sock);
  ASSERT_GE(fd, 0);

  json::Value part = req("partition");
  part.set("graph", json::Value(std::string("never-loaded")));
  part.set("k", json::Value(std::int64_t{2}));
  const auto r1 = rpc(fd, part);
  ASSERT_TRUE(r1.has_value());
  EXPECT_FALSE(ok_of(r1));
  EXPECT_NE(error_of(r1).find("unknown graph"), std::string::npos);

  const auto r2 = rpc(fd, req("frobnicate"));
  ASSERT_TRUE(r2.has_value());
  EXPECT_FALSE(ok_of(r2));

  // Invalid JSON payload inside a valid frame.
  ASSERT_EQ(write_frame(fd, "{not json"), FrameError::kNone);
  std::string payload;
  ASSERT_EQ(read_frame(fd, payload), FrameError::kNone);
  const auto r3 = json::parse(payload);
  EXPECT_FALSE(ok_of(r3));
  ::close(fd);
}

TEST(ServerTest, MalformedFrameGetsOneErrorResponseThenHangup) {
  RunningServer rs;
  const int fd = connect_unix(rs.sock);
  ASSERT_GE(fd, 0);
  write_all(fd, "GET / HTTP/1.1\r\n\r\n", 18);

  std::string payload;
  ASSERT_EQ(read_frame(fd, payload), FrameError::kNone);
  const auto response = json::parse(payload);
  EXPECT_FALSE(ok_of(response));
  EXPECT_NE(error_of(response).find("malformed frame"), std::string::npos);

  // The server hangs up after a framing error. It closed with part of the
  // junk request still unread, and Linux reports that as ECONNRESET on
  // AF_UNIX — so the next read sees either clean EOF or a reset, never a
  // valid frame.
  const FrameError after = read_frame(fd, payload);
  EXPECT_TRUE(after == FrameError::kClosed || after == FrameError::kIo)
      << frame_error_name(after);
  ::close(fd);
}

TEST(ServerTest, TruncatedFrameAfterValidRequestIsTolerated) {
  RunningServer rs;
  const int fd = connect_unix(rs.sock);
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(ok_of(rpc(fd, req("stats"))));
  // Half a header, then hang up: the server must just drop the connection
  // (and keep serving others).
  write_all(fd, "HPF1\x40", 5);
  ::close(fd);

  const int fd2 = connect_unix(rs.sock);
  ASSERT_GE(fd2, 0);
  EXPECT_TRUE(ok_of(rpc(fd2, req("stats"))));
  ::close(fd2);
}

TEST(ServerTest, TcpLoopbackServesTheSameProtocol) {
  RunningServer rs(/*tcp_port=*/0);
  ASSERT_GT(rs.server->tcp_port(), 0);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(rs.server->tcp_port()));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  EXPECT_TRUE(ok_of(rpc(fd, req("stats"))));
  ::close(fd);
}

TEST(ServerTest, ShutdownOpDrainsInFlightAndStopsServing) {
  auto rs = std::make_unique<RunningServer>();
  const std::string sock = rs->sock;
  const int fd = connect_unix(sock);
  ASSERT_GE(fd, 0);
  const int idle_fd = connect_unix(sock);
  ASSERT_GE(idle_fd, 0);

  const auto ack = rpc(fd, req("shutdown"));
  EXPECT_TRUE(ok_of(ack)) << error_of(ack);

  // wait() must return: the idle connection is nudged, the accept loops
  // woken. A hang here fails via the test timeout.
  rs->server->wait();
  EXPECT_FALSE(rs->server->running());

  // The idle client observes the hangup rather than a stuck read.
  std::string payload;
  EXPECT_NE(read_frame(idle_fd, payload), FrameError::kNone);
  ::close(fd);
  ::close(idle_fd);
  rs.reset();
  EXPECT_LT(connect_unix(sock), 0);  // socket file unlinked
}

TEST(ServerTest, BusyRejectionWhenMutationOverlaps) {
  RunningServer rs;
  // Large enough that the partition holds the mutator slot for a while.
  const Hypergraph g = random_hypergraph(60000, 60000, 2, 8, 88);
  const fs::path p = rs.dir.path / "big.hpb";
  stream::write_binary_file(p.string(), g);

  const int a = connect_unix(rs.sock);
  const int b = connect_unix(rs.sock);
  ASSERT_GE(a, 0);
  ASSERT_GE(b, 0);
  json::Value load = req("load");
  load.set("path", json::Value(p.string()));
  const auto loaded = rpc(a, load);
  ASSERT_TRUE(ok_of(loaded)) << error_of(loaded);
  const std::string graph = loaded->find("graph")->as_string();

  json::Value part = req("partition");
  part.set("graph", json::Value(graph));
  part.set("k", json::Value(std::int64_t{4}));
  part.set("include_parts", json::Value(false));

  // Fire the slow partition on connection a, then race the same mutation
  // from connection b while a is still coarsening.
  ASSERT_EQ(write_frame(a, json::dump(part)), FrameError::kNone);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const auto rb = rpc(b, part);
  ASSERT_TRUE(rb.has_value());
  EXPECT_FALSE(ok_of(rb));
  EXPECT_NE(error_of(rb).find("busy"), std::string::npos);

  std::string payload;
  ASSERT_EQ(read_frame(a, payload), FrameError::kNone);
  EXPECT_TRUE(ok_of(json::parse(payload)));
  ::close(a);
  ::close(b);
}

// --- Daemon end-to-end (exec through hp::subprocess) ------------------------

namespace {

/// Read the daemon's stdout until the "ready" line (or a deadline).
bool await_ready(hp::subprocess::Child& daemon, std::string& collected) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  char buf[256];
  while (std::chrono::steady_clock::now() < deadline) {
    const ssize_t n = ::read(daemon.stdout_fd(), buf, sizeof(buf));
    if (n > 0) {
      collected.append(buf, static_cast<std::size_t>(n));
      if (collected.find("ready\n") != std::string::npos) return true;
      continue;
    }
    if (n == 0) return false;  // daemon exited
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

}  // namespace

TEST(DaemonE2eTest, FullClientSessionAgainstExecdDaemon) {
  TempDir dir;
  const std::string sock = (dir.path / "e2e.sock").string();
  {
    const Hypergraph g = random_hypergraph(400, 400, 2, 6, 99);
    stream::write_binary_file((dir.path / "g.hpb").string(), g);
  }

  hp::subprocess::SpawnOptions opts;
  opts.capture_stdout = true;
  auto daemon =
      hp::subprocess::spawn(HYPERPARTD_BIN, {"--socket", sock}, opts);
  ASSERT_TRUE(daemon.has_value() && daemon->valid());
  // Make the captured-stdout pipe non-blocking for the incremental reads.
  std::string banner;
  ASSERT_TRUE(daemon->read_stdout(banner, 0.0) || true);
  ASSERT_TRUE(await_ready(*daemon, banner)) << banner;

  const auto client = [&](const std::vector<std::string>& args) {
    std::vector<std::string> full{"--socket", sock};
    full.insert(full.end(), args.begin(), args.end());
    return hp::subprocess::run_capture(HYPERPARTC_BIN, full, 60.0);
  };

  const auto loaded =
      client({"load", "--path", (dir.path / "g.hpb").string()});
  ASSERT_TRUE(loaded.has_value());
  EXPECT_NE(loaded->find("\"ok\": true"), std::string::npos);

  const std::string graph = (dir.path / "g.hpb").string();
  const auto part =
      client({"partition", "--graph", graph, "--k", "4", "--eps", "0.1"});
  ASSERT_TRUE(part.has_value());
  EXPECT_NE(part->find("\"method\": \"full\""), std::string::npos);

  const auto update =
      client({"update", "--graph", graph, "--node-weight", "0=4",
              "--node-weight", "1=4"});
  ASSERT_TRUE(update.has_value());
  EXPECT_NE(update->find("\"applied\": 2"), std::string::npos);

  const auto repart =
      client({"repartition", "--graph", graph, "--k", "4", "--eps", "0.1"});
  ASSERT_TRUE(repart.has_value());
  EXPECT_NE(repart->find("\"method\": \"delta_fm\""), std::string::npos);

  // Structural verbs: one batched frame appending a weighted net and
  // tombstoning another; the response carries the bumped version.
  const auto churned =
      client({"update", "--graph", graph, "--add-net", "0,1,2@2",
              "--remove-net", "5"});
  ASSERT_TRUE(churned.has_value());
  EXPECT_NE(churned->find("\"structural\": 2"), std::string::npos) << *churned;
  EXPECT_NE(churned->find("\"version\": 2"), std::string::npos) << *churned;

  const auto evaluated =
      client({"evaluate", "--graph", graph, "--k", "4", "--eps", "0.1"});
  ASSERT_TRUE(evaluated.has_value());
  EXPECT_NE(evaluated->find("\"balanced\": true"), std::string::npos);

  // Snapshot pinning through the client: the pre-churn version is refused
  // (client exit 1, run via spawn because run_capture hides failing runs),
  // the current one answers.
  {
    hp::subprocess::SpawnOptions copts;
    copts.capture_stdout = true;
    auto stale = hp::subprocess::spawn(
        HYPERPARTC_BIN,
        {"--socket", sock, "evaluate", "--graph", graph, "--k", "4", "--eps",
         "0.1", "--version", "1"},
        copts);
    ASSERT_TRUE(stale.has_value());
    std::string out;
    ASSERT_TRUE(stale->read_stdout(out, 60.0));
    const auto st = stale->wait(60.0);
    EXPECT_EQ(st.exit_code, 1);
    EXPECT_NE(out.find("version mismatch"), std::string::npos) << out;
  }
  const auto pinned = client({"evaluate", "--graph", graph, "--k", "4",
                              "--eps", "0.1", "--version", "2"});
  ASSERT_TRUE(pinned.has_value());
  EXPECT_NE(pinned->find("\"ok\": true"), std::string::npos) << *pinned;

  const auto stats = client({"stats"});
  ASSERT_TRUE(stats.has_value());
  EXPECT_NE(stats->find("\"sessions\""), std::string::npos);

  const auto bye = client({"shutdown"});
  ASSERT_TRUE(bye.has_value());

  const auto status = daemon->wait(30.0);
  EXPECT_TRUE(status.ok()) << "exit=" << status.exit_code
                           << " signal=" << status.term_signal
                           << " timed_out=" << status.timed_out;
}

TEST(DaemonE2eTest, NonSocketFileAtSocketPathExitsTwo) {
  // Satellite regression: a mistyped --socket pointing at a real file must
  // never delete it — the daemon prints one error line and exits 2.
  TempDir dir;
  const fs::path path = dir.path / "oops.sock";
  {
    std::ofstream f(path);
    f << "not a socket\n";
  }
  hp::subprocess::SpawnOptions opts;
  opts.stdout_to_file = (dir.path / "daemon.log").string();  // + stderr
  auto daemon = hp::subprocess::spawn(HYPERPARTD_BIN,
                                      {"--socket", path.string()}, opts);
  ASSERT_TRUE(daemon.has_value() && daemon->valid());
  const auto status = daemon->wait(30.0);
  EXPECT_FALSE(status.timed_out);
  EXPECT_EQ(status.exit_code, 2);
  std::ifstream log(dir.path / "daemon.log");
  std::string collected((std::istreambuf_iterator<char>(log)),
                        std::istreambuf_iterator<char>());
  EXPECT_NE(collected.find("error:"), std::string::npos) << collected;
  EXPECT_NE(collected.find("not a socket"), std::string::npos) << collected;
  // The file survived, contents intact.
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "not a socket");
}

TEST(DaemonE2eTest, SigtermStopsTheDaemonGracefully) {
  TempDir dir;
  const std::string sock = (dir.path / "sig.sock").string();
  hp::subprocess::SpawnOptions opts;
  opts.capture_stdout = true;
  auto daemon =
      hp::subprocess::spawn(HYPERPARTD_BIN, {"--socket", sock}, opts);
  ASSERT_TRUE(daemon.has_value() && daemon->valid());
  std::string out;
  ASSERT_TRUE(await_ready(*daemon, out)) << out;

  daemon->kill_group(SIGTERM);
  const auto status = daemon->wait(30.0);
  EXPECT_TRUE(status.ok()) << "exit=" << status.exit_code
                           << " signal=" << status.term_signal;
}

TEST(CliStreamTest, StreamAlgoOnTextInputFailsAsUsageError) {
  // Satellite regression: --algo stream on a non-HPBH input must be a
  // one-line usage error (exit 2), not a crash deep in the mmap reader.
  const auto status = hp::subprocess::run(
      HYPERPART_CLI_BIN, {"definitely_missing.hgr", "--algo", "stream"}, {},
      30.0);
  EXPECT_FALSE(status.timed_out);
  EXPECT_EQ(status.term_signal, 0);
  EXPECT_EQ(status.exit_code, 2);
}
