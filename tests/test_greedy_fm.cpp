#include <gtest/gtest.h>

#include "hyperpart/algo/fm_refiner.hpp"
#include "hyperpart/algo/greedy.hpp"
#include "hyperpart/core/builder.hpp"
#include "hyperpart/io/generators.hpp"

namespace hp {
namespace {

/// Two dense clusters joined by one bridge edge: the planted bisection has
/// cost 1.
Hypergraph two_clusters(NodeId half) {
  HypergraphBuilder b;
  b.add_nodes(2 * half);
  for (NodeId side = 0; side < 2; ++side) {
    const NodeId base = side * half;
    for (NodeId i = 0; i + 1 < half; ++i) {
      b.add_edge({base + i, base + i + 1});
      b.add_edge({base + i, base + (i + 2) % half});
    }
  }
  b.add_edge2(half - 1, half);
  return b.build();
}

TEST(Greedy, RandomBalancedRespectsCapacity) {
  const Hypergraph g = random_hypergraph(30, 40, 2, 5, 1);
  for (PartId k : {2u, 3u, 5u}) {
    const auto balance = BalanceConstraint::for_graph(g, k, 0.1, true);
    const auto p = random_balanced_partition(g, balance, 42);
    ASSERT_TRUE(p.has_value());
    EXPECT_TRUE(p->complete());
    EXPECT_TRUE(balance.satisfied(g, *p));
  }
}

TEST(Greedy, GrowingRespectsCapacity) {
  const Hypergraph g = random_hypergraph(30, 40, 2, 5, 2);
  for (PartId k : {2u, 3u, 4u}) {
    const auto balance = BalanceConstraint::for_graph(g, k, 0.1, true);
    const auto p =
        greedy_growing_partition(g, balance, CostMetric::kConnectivity, 7);
    ASSERT_TRUE(p.has_value());
    EXPECT_TRUE(p->complete());
    EXPECT_TRUE(balance.satisfied(g, *p));
  }
}

TEST(Greedy, InfeasibleCapacityReturnsNullopt) {
  Hypergraph g = random_hypergraph(4, 2, 2, 2, 3);
  g.set_node_weights({5, 5, 5, 5});
  const auto balance = BalanceConstraint::with_capacity(2, 5);
  EXPECT_FALSE(random_balanced_partition(g, balance, 1).has_value());
}

TEST(Fm, NeverIncreasesCost) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Hypergraph g = random_hypergraph(40, 60, 2, 5, seed);
    const auto balance = BalanceConstraint::for_graph(g, 3, 0.1, true);
    auto p = random_balanced_partition(g, balance, seed + 50);
    ASSERT_TRUE(p.has_value());
    const Weight before = cost(g, *p, CostMetric::kConnectivity);
    const Weight after = fm_refine(g, *p, balance, {});
    EXPECT_LE(after, before);
    EXPECT_EQ(after, cost(g, *p, CostMetric::kConnectivity));
    EXPECT_TRUE(balance.satisfied(g, *p));
  }
}

TEST(Fm, FindsPlantedBisection) {
  const Hypergraph g = two_clusters(10);
  const auto balance = BalanceConstraint::for_graph(g, 2, 0.0);
  // Start from an alternating (bad) partition.
  std::vector<PartId> assign(20);
  for (NodeId v = 0; v < 20; ++v) assign[v] = v % 2;
  Partition p(std::move(assign), 2);
  const Weight after = fm_refine(g, p, balance, {});
  EXPECT_EQ(after, 1);
  EXPECT_TRUE(balance.satisfied(g, p));
}

TEST(Fm, CutNetMetricSupported) {
  const Hypergraph g = random_hypergraph(30, 40, 2, 6, 9);
  const auto balance = BalanceConstraint::for_graph(g, 4, 0.2, true);
  auto p = random_balanced_partition(g, balance, 3);
  ASSERT_TRUE(p.has_value());
  FmConfig cfg;
  cfg.metric = CostMetric::kCutNet;
  const Weight before = cost(g, *p, CostMetric::kCutNet);
  const Weight after = fm_refine(g, *p, balance, cfg);
  EXPECT_LE(after, before);
  EXPECT_EQ(after, cost(g, *p, CostMetric::kCutNet));
}

TEST(Fm, RespectsExtraConstraints) {
  const Hypergraph g = random_hypergraph(24, 30, 2, 4, 11);
  const auto balance = BalanceConstraint::for_graph(g, 2, 0.5, true);
  // Two constraint groups over the first and second halves.
  std::vector<NodeId> first;
  std::vector<NodeId> second;
  for (NodeId v = 0; v < 12; ++v) first.push_back(v);
  for (NodeId v = 12; v < 24; ++v) second.push_back(v);
  const ConstraintSet cs =
      ConstraintSet::for_subsets(g, {first, second}, 2, 0.0);
  // Start from a feasible assignment: alternate within each half.
  std::vector<PartId> assign(24);
  for (NodeId v = 0; v < 24; ++v) assign[v] = v % 2;
  Partition p(std::move(assign), 2);
  ASSERT_TRUE(cs.satisfied(g, p));
  FmConfig cfg;
  cfg.extra_constraints = &cs;
  fm_refine(g, p, balance, cfg);
  EXPECT_TRUE(cs.satisfied(g, p));
  EXPECT_TRUE(balance.satisfied(g, p));
}

}  // namespace
}  // namespace hp
